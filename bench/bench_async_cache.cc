// Demonstrates the async block-I/O subsystem: a BlockCache + IoScheduler
// stack under an oblivious workload issues strictly fewer physical block
// I/Os — and fewer virtual-disk-ms — than the uncached synchronous path.
//
// Two experiments:
//   AsyncCache/oblivious/...   the Figure-12 style oblivious sweep, run
//                              once directly on the simulated disk and
//                              once through a write-through BlockCache.
//                              Both runs use identical seeds, so the
//                              logical request streams are identical;
//                              only the physical stream differs.
//   AsyncCache/scheduler/...   a scattered read batch issued in
//                              submission order vs drained through the
//                              IoScheduler's elevator ordering.
//
// Counters (virtual milliseconds, from the rotational DiskModel):
//   uncached_io / cached_io    physical block I/Os seen by the sim disk
//   io_saved_frac              1 - cached/uncached (must be > 0)
//   uncached_ms / cached_ms    virtual time of the measured phase
//   cache_hit_rate             BlockCache hit fraction
//   direct_ms / elevator_ms    scheduler experiment virtual time

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/harness.h"
#include "oblivious/oblivious_store.h"
#include "storage/async/block_cache.h"
#include "storage/async/io_scheduler.h"
#include "storage/mem_block_device.h"
#include "storage/sim_device.h"
#include "util/random.h"

namespace steghide::bench {
namespace {

constexpr uint64_t kCapacityBlocks = 1024;  // N
constexpr uint64_t kBufferBlocks = 32;      // B
constexpr uint64_t kReads = 1500;

struct WorkloadCost {
  uint64_t physical_io = 0;
  double ms = 0.0;
};

/// Runs the oblivious sweep on `device` (the store's view of storage)
/// while `sim` is the simulated disk somewhere below it. Returns the
/// physical I/O count and virtual time of the measured phase; `cache`,
/// when present, has its stats reset at the same point so hit-rate and
/// I/O counters describe the same phase.
WorkloadCost RunObliviousSweep(storage::BlockDevice* device,
                               storage::SimBlockDevice* sim,
                               storage::BlockCache* cache = nullptr) {
  const uint64_t hierarchy = 2 * kCapacityBlocks - 2 * kBufferBlocks;
  oblivious::ObliviousStoreOptions opts;
  opts.buffer_blocks = kBufferBlocks;
  opts.capacity_blocks = kCapacityBlocks;
  opts.partition_base = 0;
  opts.scratch_base = hierarchy;
  opts.drbg_seed = 29;
  auto store = oblivious::ObliviousStore::Create(device, opts);
  if (!store.ok()) std::abort();
  (*store)->set_clock_fn([sim] { return sim->clock_ms(); });

  Bytes payload((*store)->payload_size(), 0x5d);
  for (uint64_t id = 0; id < kCapacityBlocks; ++id) {
    if (!(*store)->Insert(id, payload.data()).ok()) std::abort();
  }

  sim->ResetStats();
  if (cache != nullptr) cache->ResetStats();
  const double t0 = sim->clock_ms();
  const uint64_t io0 = sim->stats().total_ops();

  Rng rng(17);
  std::vector<uint64_t> order(kCapacityBlocks);
  for (uint64_t i = 0; i < kCapacityBlocks; ++i) order[i] = i;
  rng.Shuffle(order);
  Bytes out((*store)->payload_size());
  for (uint64_t i = 0; i < kReads; ++i) {
    if (!(*store)->Read(order[i % order.size()], out.data()).ok()) {
      std::abort();
    }
  }
  return WorkloadCost{sim->stats().total_ops() - io0, sim->clock_ms() - t0};
}

void BM_CachedVsUncached(benchmark::State& state, uint64_t cache_blocks) {
  for (auto _ : state) {
    const uint64_t hierarchy = 2 * kCapacityBlocks - 2 * kBufferBlocks;
    const uint64_t volume = hierarchy + kCapacityBlocks + 16;

    storage::MemBlockDevice mem_direct(volume, 4096);
    storage::SimBlockDevice sim_direct(&mem_direct,
                                       storage::DiskModelParams{});
    const WorkloadCost uncached =
        RunObliviousSweep(&sim_direct, &sim_direct);

    storage::MemBlockDevice mem_cached(volume, 4096);
    storage::SimBlockDevice sim_cached(&mem_cached,
                                       storage::DiskModelParams{});
    storage::BlockCacheOptions cache_opts;
    cache_opts.capacity_blocks = cache_blocks;
    cache_opts.shards = 4;
    storage::BlockCache cache(&sim_cached, cache_opts);
    const WorkloadCost cached = RunObliviousSweep(&cache, &sim_cached, &cache);

    // The acceptance bar of the async subsystem: the cached + scheduled
    // stack must issue strictly fewer physical I/Os for the identical
    // logical workload. Abort (→ smoke-test failure) on regression.
    if (cached.physical_io >= uncached.physical_io) {
      std::fprintf(stderr,
                   "cache regression: %llu physical I/Os cached vs %llu "
                   "uncached\n",
                   static_cast<unsigned long long>(cached.physical_io),
                   static_cast<unsigned long long>(uncached.physical_io));
      std::abort();
    }

    state.counters["uncached_io"] = static_cast<double>(uncached.physical_io);
    state.counters["cached_io"] = static_cast<double>(cached.physical_io);
    state.counters["io_saved_frac"] =
        1.0 - static_cast<double>(cached.physical_io) /
                  static_cast<double>(uncached.physical_io);
    state.counters["uncached_ms"] = uncached.ms;
    state.counters["cached_ms"] = cached.ms;
    state.counters["speedup"] = uncached.ms / cached.ms;
    state.counters["cache_hit_rate"] = cache.stats().HitRate();
  }
}

void BM_SchedulerElevator(benchmark::State& state, uint64_t batch_size) {
  for (auto _ : state) {
    constexpr uint64_t kVolume = 1 << 16;
    Rng rng(23);
    std::vector<uint64_t> ids(batch_size);
    for (uint64_t& id : ids) id = rng.Uniform(kVolume);

    storage::MemBlockDevice mem(kVolume, 4096);
    Bytes out(batch_size * 4096);

    // Direct issue in submission order.
    storage::SimBlockDevice sim_direct(&mem, storage::DiskModelParams{});
    if (!sim_direct.ReadBlocks(ids, out.data()).ok()) std::abort();
    const double direct_ms = sim_direct.clock_ms();

    // Same batch drained through the scheduler's elevator ordering.
    storage::SimBlockDevice sim_sched(&mem, storage::DiskModelParams{});
    storage::IoScheduler scheduler(&sim_sched);
    storage::IoBatch batch;
    for (uint64_t i = 0; i < batch_size; ++i) {
      batch.Read(ids[i], out.data() + i * 4096);
    }
    if (!scheduler.Run(std::move(batch)).ok()) std::abort();
    const double elevator_ms = sim_sched.clock_ms();

    state.counters["direct_ms"] = direct_ms;
    state.counters["elevator_ms"] = elevator_ms;
    state.counters["elevator_speedup"] = direct_ms / elevator_ms;
    state.counters["physical_reads"] =
        static_cast<double>(scheduler.stats().physical_reads);
    state.counters["coalesced_reads"] =
        static_cast<double>(scheduler.stats().coalesced_reads);
  }
}

}  // namespace
}  // namespace steghide::bench

int main(int argc, char** argv) {
  using namespace steghide::bench;
  for (uint64_t cache_blocks : {256, 1024, 4096}) {
    benchmark::RegisterBenchmark(
        ("AsyncCache/oblivious/cache_blocks:" + std::to_string(cache_blocks))
            .c_str(),
        [cache_blocks](benchmark::State& s) {
          BM_CachedVsUncached(s, cache_blocks);
        })
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
  for (uint64_t batch : {64, 256, 1024}) {
    benchmark::RegisterBenchmark(
        ("AsyncCache/scheduler/batch:" + std::to_string(batch)).c_str(),
        [batch](benchmark::State& s) { BM_SchedulerElevator(s, batch); })
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
  return RunBenchmarks(argc, argv);
}
