// E9: validates the closed-form overhead of §4.1.5 — the Figure-6 update
// algorithm needs E = N/D iterations in expectation, where N is the
// volume size and D the number of dummy blocks.
//
// Counters: measured_iterations (empirical mean), analytic_n_over_d, and
// the implied I/O overhead (2 I/Os per iteration vs 2 for a conventional
// update).

#include <benchmark/benchmark.h>

#include "bench/harness.h"

#include "bench/common.h"
#include "workload/file_population.h"
#include "workload/update_stream.h"

namespace steghide::bench {
namespace {

constexpr uint64_t kVolumeBlocks = 16384;  // 64 MB

void RunAnalyticCheck(benchmark::State& state, double utilization) {
  for (auto _ : state) {
    Rng rng(static_cast<uint64_t>(utilization * 1000));
    auto sys = MakeSystem(SystemKind::kStegHideStar, kVolumeBlocks,
                          7000 + static_cast<uint64_t>(utilization * 100));
    const uint64_t target_bytes = static_cast<uint64_t>(
        utilization * static_cast<double>(kVolumeBlocks) * 4080.0);
    auto pop = workload::CreatePopulationBytes(*sys.adapter, rng,
                                               target_bytes, 4ull << 20);
    if (!pop.ok()) std::abort();

    sys.nvagent->ResetUpdateStats();
    const auto ops = workload::MakeUniformUpdateStream(
        *pop, sys.adapter->payload_size(), rng, /*count=*/400, 1);
    if (!workload::ApplyUpdateStream(*sys.adapter, ops, rng).ok()) {
      std::abort();
    }

    const auto& st = sys.nvagent->update_stats();
    const double n_over_d =
        static_cast<double>(kVolumeBlocks) /
        static_cast<double>(sys.nvagent->bitmap().dummy_count());
    state.counters["measured_iterations"] = st.MeanIterations();
    state.counters["analytic_n_over_d"] = n_over_d;
    state.counters["relative_error"] =
        std::abs(st.MeanIterations() - n_over_d) / n_over_d;
    state.counters["io_per_update"] =
        static_cast<double>(st.io_reads + st.io_writes) /
        static_cast<double>(st.data_updates);
  }
}

}  // namespace
}  // namespace steghide::bench

int main(int argc, char** argv) {
  using namespace steghide::bench;
  for (int pct : {5, 10, 20, 30, 40, 50, 60}) {
    benchmark::RegisterBenchmark(
        ("AnalyticOverhead/utilization_pct:" + std::to_string(pct)).c_str(),
        [pct](benchmark::State& s) { RunAnalyticCheck(s, pct / 100.0); })
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
  return RunBenchmarks(argc, argv);
}
