#ifndef STEGHIDE_BENCH_COMMON_H_
#define STEGHIDE_BENCH_COMMON_H_

#include <memory>
#include <string>

#include "agent/nonvolatile_agent.h"
#include "agent/volatile_agent.h"
#include "baseline/plain_fs.h"
#include "baseline/stegfs2003.h"
#include "storage/mem_block_device.h"
#include "storage/sim_device.h"
#include "workload/adapters.h"

namespace steghide::bench {

/// The five systems of Table 3.
enum class SystemKind {
  kStegHide,      // Construction 2, volatile agent (implemented system)
  kStegHideStar,  // Construction 1, non-volatile agent
  kStegFs2003,    // previous StegFS [12]
  kCleanDisk,     // fresh native FS, contiguous files
  kFragDisk,      // aged native FS, 8-block fragments
};

inline const char* SystemName(SystemKind kind) {
  switch (kind) {
    case SystemKind::kStegHide:
      return "StegHide";
    case SystemKind::kStegHideStar:
      return "StegHide*";
    case SystemKind::kStegFs2003:
      return "StegFS";
    case SystemKind::kCleanDisk:
      return "CleanDisk";
    case SystemKind::kFragDisk:
      return "FragDisk";
  }
  return "?";
}

inline constexpr SystemKind kAllSystems[] = {
    SystemKind::kStegHide, SystemKind::kStegHideStar, SystemKind::kStegFs2003,
    SystemKind::kCleanDisk, SystemKind::kFragDisk};

/// One fully wired system over a simulated disk. All benchmark times are
/// read from sim->clock_ms() (virtual milliseconds), never from wall
/// time — see DESIGN.md §1.
struct SystemUnderTest {
  std::unique_ptr<storage::MemBlockDevice> mem;
  std::unique_ptr<storage::SimBlockDevice> sim;
  std::unique_ptr<stegfs::StegFsCore> core;
  std::unique_ptr<agent::VolatileAgent> vagent;
  std::unique_ptr<agent::NonVolatileAgent> nvagent;
  std::unique_ptr<baseline::StegFs2003> steg2003;
  std::unique_ptr<baseline::PlainFs> plain;
  std::unique_ptr<workload::FsAdapter> adapter;

  double clock_ms() const { return sim->clock_ms(); }
};

/// Builds a formatted system. For the volatile agent (`kStegHide`) a
/// workload user "bench" is logged in with one dummy file of
/// `steghide_dummy_blocks` blocks — its relocation pool. Other systems
/// ignore that parameter.
inline SystemUnderTest MakeSystem(SystemKind kind, uint64_t volume_blocks,
                                  uint64_t seed,
                                  uint64_t steghide_dummy_blocks = 4096) {
  SystemUnderTest sys;
  sys.mem = std::make_unique<storage::MemBlockDevice>(volume_blocks, 4096);
  sys.sim = std::make_unique<storage::SimBlockDevice>(
      sys.mem.get(), storage::DiskModelParams{});

  switch (kind) {
    case SystemKind::kCleanDisk:
      sys.plain = std::make_unique<baseline::PlainFs>(
          sys.sim.get(), baseline::PlainFs::CleanDisk());
      sys.adapter = std::make_unique<workload::PlainFsAdapter>(
          sys.plain.get(), "CleanDisk");
      return sys;
    case SystemKind::kFragDisk:
      sys.plain = std::make_unique<baseline::PlainFs>(
          sys.sim.get(), baseline::PlainFs::FragDisk());
      sys.adapter = std::make_unique<workload::PlainFsAdapter>(
          sys.plain.get(), "FragDisk");
      return sys;
    default:
      break;
  }

  sys.core = std::make_unique<stegfs::StegFsCore>(
      sys.sim.get(), stegfs::StegFsOptions{seed, true});
  if (!sys.core->Format().ok()) std::abort();
  // Formatting is out of scope for every measurement.
  sys.sim->ResetStats();

  switch (kind) {
    case SystemKind::kStegHide: {
      sys.vagent = std::make_unique<agent::VolatileAgent>(sys.core.get());
      // Dummy files are capped at the maximum file size; provision the
      // pool as several files, as a real user population would.
      constexpr uint64_t kChunk = 8192;
      for (uint64_t left = steghide_dummy_blocks; left > 0;) {
        const uint64_t take = std::min(left, kChunk);
        if (!sys.vagent->CreateDummyFile("bench", take).ok()) std::abort();
        left -= take;
      }
      sys.adapter = std::make_unique<workload::VolatileAgentAdapter>(
          sys.vagent.get(), "bench");
      break;
    }
    case SystemKind::kStegHideStar: {
      sys.nvagent = std::make_unique<agent::NonVolatileAgent>(
          sys.core.get(), agent::NonVolatileAgent::Options{});
      sys.adapter = std::make_unique<workload::NonVolatileAgentAdapter>(
          sys.nvagent.get());
      break;
    }
    case SystemKind::kStegFs2003: {
      sys.steg2003 = std::make_unique<baseline::StegFs2003>(sys.core.get());
      sys.adapter =
          std::make_unique<workload::StegFs2003Adapter>(sys.steg2003.get());
      break;
    }
    default:
      std::abort();
  }
  return sys;
}

}  // namespace steghide::bench

#endif  // STEGHIDE_BENCH_COMMON_H_
