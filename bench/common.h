#ifndef STEGHIDE_BENCH_COMMON_H_
#define STEGHIDE_BENCH_COMMON_H_

#include <chrono>
#include <cstdio>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "agent/dispatch/request_dispatcher.h"
#include "agent/nonvolatile_agent.h"
#include "obs/metrics.h"
#include "stegfs/block_codec.h"
#include "obs/snapshotter.h"
#include "obs/trace_log.h"
#include "agent/oblivious_agent.h"
#include "agent/volatile_agent.h"
#include "workload/concurrency.h"
#include "baseline/plain_fs.h"
#include "baseline/stegfs2003.h"
#include "storage/mem_block_device.h"
#include "storage/retry_device.h"
#include "storage/sim_device.h"
#include "storage/volume_set.h"
#include "workload/adapters.h"

namespace steghide::bench {

/// The five systems of Table 3.
enum class SystemKind {
  kStegHide,      // Construction 2, volatile agent (implemented system)
  kStegHideStar,  // Construction 1, non-volatile agent
  kStegFs2003,    // previous StegFS [12]
  kCleanDisk,     // fresh native FS, contiguous files
  kFragDisk,      // aged native FS, 8-block fragments
};

inline const char* SystemName(SystemKind kind) {
  switch (kind) {
    case SystemKind::kStegHide:
      return "StegHide";
    case SystemKind::kStegHideStar:
      return "StegHide*";
    case SystemKind::kStegFs2003:
      return "StegFS";
    case SystemKind::kCleanDisk:
      return "CleanDisk";
    case SystemKind::kFragDisk:
      return "FragDisk";
  }
  return "?";
}

inline constexpr SystemKind kAllSystems[] = {
    SystemKind::kStegHide, SystemKind::kStegHideStar, SystemKind::kStegFs2003,
    SystemKind::kCleanDisk, SystemKind::kFragDisk};

/// One fully wired system over a simulated disk. All benchmark times are
/// read from sim->clock_ms() (virtual milliseconds), never from wall
/// time — see DESIGN.md §1.
struct SystemUnderTest {
  std::unique_ptr<storage::MemBlockDevice> mem;
  std::unique_ptr<storage::SimBlockDevice> sim;
  std::unique_ptr<stegfs::StegFsCore> core;
  std::unique_ptr<agent::VolatileAgent> vagent;
  std::unique_ptr<agent::NonVolatileAgent> nvagent;
  std::unique_ptr<baseline::StegFs2003> steg2003;
  std::unique_ptr<baseline::PlainFs> plain;
  std::unique_ptr<workload::FsAdapter> adapter;

  double clock_ms() const { return sim->clock_ms(); }
};

/// Builds a formatted system. For the volatile agent (`kStegHide`) a
/// workload user "bench" is logged in with one dummy file of
/// `steghide_dummy_blocks` blocks — its relocation pool. Other systems
/// ignore that parameter.
inline SystemUnderTest MakeSystem(SystemKind kind, uint64_t volume_blocks,
                                  uint64_t seed,
                                  uint64_t steghide_dummy_blocks = 4096) {
  SystemUnderTest sys;
  sys.mem = std::make_unique<storage::MemBlockDevice>(volume_blocks, 4096);
  sys.sim = std::make_unique<storage::SimBlockDevice>(
      sys.mem.get(), storage::DiskModelParams{});

  switch (kind) {
    case SystemKind::kCleanDisk:
      sys.plain = std::make_unique<baseline::PlainFs>(
          sys.sim.get(), baseline::PlainFs::CleanDisk());
      sys.adapter = std::make_unique<workload::PlainFsAdapter>(
          sys.plain.get(), "CleanDisk");
      return sys;
    case SystemKind::kFragDisk:
      sys.plain = std::make_unique<baseline::PlainFs>(
          sys.sim.get(), baseline::PlainFs::FragDisk());
      sys.adapter = std::make_unique<workload::PlainFsAdapter>(
          sys.plain.get(), "FragDisk");
      return sys;
    default:
      break;
  }

  sys.core = std::make_unique<stegfs::StegFsCore>(
      sys.sim.get(), stegfs::StegFsOptions{seed, true});
  if (!sys.core->Format().ok()) std::abort();
  // Formatting is out of scope for every measurement.
  sys.sim->ResetStats();

  switch (kind) {
    case SystemKind::kStegHide: {
      sys.vagent = std::make_unique<agent::VolatileAgent>(sys.core.get());
      // Dummy files are capped at the maximum file size; provision the
      // pool as several files, as a real user population would.
      constexpr uint64_t kChunk = 8192;
      for (uint64_t left = steghide_dummy_blocks; left > 0;) {
        const uint64_t take = std::min(left, kChunk);
        if (!sys.vagent->CreateDummyFile("bench", take).ok()) std::abort();
        left -= take;
      }
      sys.adapter = std::make_unique<workload::VolatileAgentAdapter>(
          sys.vagent.get(), "bench");
      break;
    }
    case SystemKind::kStegHideStar: {
      sys.nvagent = std::make_unique<agent::NonVolatileAgent>(
          sys.core.get(), agent::NonVolatileAgent::Options{});
      sys.adapter = std::make_unique<workload::NonVolatileAgentAdapter>(
          sys.nvagent.get());
      break;
    }
    case SystemKind::kStegFs2003: {
      sys.steg2003 = std::make_unique<baseline::StegFs2003>(sys.core.get());
      sys.adapter =
          std::make_unique<workload::StegFs2003Adapter>(sys.steg2003.get());
      break;
    }
    default:
      std::abort();
  }
  return sys;
}

/// The full Section-5 system (StegFS partition + oblivious cache) on two
/// simulated spindles, for the multi-user dispatcher sweeps. Virtual
/// time is reported as the *sum* of both disks' clocks: every I/O is
/// issued by one thread, so the sum equals the busy time of the
/// single-device layout the paper also permits (both partitions on one
/// disk).
struct ObliviousSystemUnderTest {
  std::unique_ptr<storage::MemBlockDevice> steg_mem;
  std::unique_ptr<storage::MemBlockDevice> cache_mem;
  std::unique_ptr<storage::SimBlockDevice> steg_sim;
  std::unique_ptr<storage::SimBlockDevice> cache_sim;
  /// Sharded cache volume (cache_shards >= 1): K Mem+Sim stacks striped
  /// by a ShardedBlockDevice, replacing cache_mem/cache_sim. Its
  /// parallel clock (max per-shard delta across each join) is what the
  /// cache contributes to clock_ms().
  std::unique_ptr<storage::VolumeSet> cache_volumes;
  std::unique_ptr<stegfs::StegFsCore> core;
  std::unique_ptr<agent::ObliviousAgent> agent;
  std::vector<agent::ObliviousAgent::FileId> files;  // one per user
  /// Keeps the process-wide crypto instruments (crypto.bytes/batches,
  /// dispatch gauges) registered while an instrumented run is alive.
  obs::Registration crypto_metrics;

  double clock_ms() const {
    return steg_sim->clock_ms() +
           (cache_volumes ? cache_volumes->clock_ms()
                          : cache_sim->clock_ms());
  }
};

/// Builds a formatted oblivious system serving `users` files of
/// `file_blocks` payload blocks each (content: block index), with the
/// oblivious cache sized to hold every block and the store buffer set to
/// `buffer_blocks` (= the dispatcher's max group size). When `prewarm`,
/// every file is read once so the measured phase serves pure level-scan
/// traffic (no first-touch miss-fills). With `deamortize`, the cache
/// device grows a shadow mirror and re-orders run as incremental
/// double-buffered chains (the dispatcher pumps them in idle gaps).
/// `registry`/`trace` (both optional) wire the whole funnel's
/// observability: the store, scheduler, agent and reader register their
/// instruments, the simulated devices export per-spindle utilization
/// ("steg.*", "cache.*" / "cache.shard<k>.*"), and the trace log's
/// virtual clock is bound to this system's summed disk clocks.
/// `cache_replicas`/`cache_fault_plan`/`replication` (sharded cache
/// only) mirror every cache shard R ways behind a ReplicatedBlockDevice
/// and script per-(shard, replica) fault injection; `io_retry` arms the
/// store scheduler's bounded retry budget so transient device errors
/// that survive the replica layer (e.g. a degraded shard's last healthy
/// replica hiccuping) are re-driven instead of failing the request.
/// `cache_remote` marks cache replicas served over the loopback
/// block-RPC transport (their local stack moves behind a server thread
/// and the mirror talks to a RemoteBlockDevice client);
/// `cache_transport_fault_plan` scripts partition/delay/drop faults on
/// those links, and `remote_options` sets the client RPC deadline and
/// reconnect budget.
inline ObliviousSystemUnderTest MakeObliviousSystem(
    uint64_t users, uint64_t file_blocks, uint64_t seed,
    uint64_t buffer_blocks, bool prewarm, bool deamortize = false,
    size_t cache_shards = 0, obs::Registry* registry = nullptr,
    obs::TraceLog* trace = nullptr, size_t cache_replicas = 1,
    std::function<storage::FaultPlan(size_t, size_t)> cache_fault_plan =
        nullptr,
    std::optional<storage::RetryPolicy> io_retry = std::nullopt,
    storage::ReplicationOptions replication = {},
    std::function<bool(size_t, size_t)> cache_remote = nullptr,
    std::function<storage::FaultPlan(size_t, size_t)>
        cache_transport_fault_plan = nullptr,
    storage::remote::RemoteDeviceOptions remote_options = {}) {
  ObliviousSystemUnderTest sys;

  uint64_t capacity = 2 * buffer_blocks;
  while (capacity < users * file_blocks) capacity *= 2;
  const uint64_t hierarchy = 2 * capacity - 2 * buffer_blocks;

  const uint64_t steg_blocks = users * file_blocks * 2 + 8192;
  sys.steg_mem = std::make_unique<storage::MemBlockDevice>(steg_blocks, 4096);
  sys.steg_sim = std::make_unique<storage::SimBlockDevice>(
      sys.steg_mem.get(), storage::DiskModelParams{});

  // Shadow phase shift: under the g % K stripe, offsetting the shadow
  // mirror by one block puts every slot's ping-pong twin on a different
  // spindle than its primary (hierarchy is a power-of-two multiple of
  // the shard counts swept, so the phase difference is 1 mod K).
  const uint64_t shadow_shift = cache_shards > 1 ? 1 : 0;
  const uint64_t cache_blocks = hierarchy + capacity +
                                (deamortize ? hierarchy : 0) +
                                2 * shadow_shift + 16;
  storage::BlockDevice* cache_device = nullptr;
  if (cache_shards >= 1) {
    storage::VolumeSet::Options vopts;
    vopts.shards = cache_shards;
    vopts.replicas = cache_replicas;
    vopts.total_blocks = cache_blocks;
    vopts.fault_plan = std::move(cache_fault_plan);
    vopts.replication = replication;
    vopts.remote = std::move(cache_remote);
    vopts.transport_fault_plan = std::move(cache_transport_fault_plan);
    vopts.remote_options = remote_options;
    sys.cache_volumes = std::make_unique<storage::VolumeSet>(vopts);
    cache_device = &sys.cache_volumes->device();
  } else {
    sys.cache_mem =
        std::make_unique<storage::MemBlockDevice>(cache_blocks, 4096);
    sys.cache_sim = std::make_unique<storage::SimBlockDevice>(
        sys.cache_mem.get(), storage::DiskModelParams{});
    cache_device = sys.cache_sim.get();
  }

  sys.core = std::make_unique<stegfs::StegFsCore>(
      sys.steg_sim.get(), stegfs::StegFsOptions{seed, true});
  if (!sys.core->Format().ok()) std::abort();

  oblivious::ObliviousStoreOptions opts;
  opts.buffer_blocks = buffer_blocks;
  opts.capacity_blocks = capacity;
  opts.partition_base = 0;
  // Layout: [hierarchy][shadow mirror][scratch] — keeping each level's
  // shadow one hierarchy-length away (instead of behind scratch) trims
  // the mixed-epoch seek spread of double-buffered serving.
  opts.shadow_base = hierarchy + shadow_shift;
  opts.scratch_base =
      deamortize ? 2 * hierarchy + 2 * shadow_shift : hierarchy;
  opts.deamortize_reorders = deamortize;
  opts.drbg_seed = seed ^ 0x6f626c69;
  opts.charge_index_io = true;  // §5.1.2 spilled-index serving variant
  opts.io_retry = io_retry;
  opts.registry = registry;
  opts.trace = trace;
  auto agent =
      agent::ObliviousAgent::Create(sys.core.get(), cache_device, opts);
  if (!agent.ok()) std::abort();
  sys.agent = std::move(agent).value();
  {
    storage::SimBlockDevice* steg = sys.steg_sim.get();
    if (sys.cache_volumes) {
      storage::ShardedBlockDevice* cache = &sys.cache_volumes->device();
      sys.agent->store().set_clock_fn(
          [steg, cache] { return steg->clock_ms() + cache->clock_ms(); });
      if (trace != nullptr) {
        trace->set_clock_fn(
            [steg, cache] { return steg->clock_ms() + cache->clock_ms(); });
      }
    } else {
      storage::SimBlockDevice* cache = sys.cache_sim.get();
      sys.agent->store().set_clock_fn(
          [steg, cache] { return steg->clock_ms() + cache->clock_ms(); });
      if (trace != nullptr) {
        trace->set_clock_fn(
            [steg, cache] { return steg->clock_ms() + cache->clock_ms(); });
      }
    }
  }
  if (registry != nullptr) {
    sys.crypto_metrics = stegfs::RegisterCryptoMetrics(registry);
    sys.steg_sim->RegisterMetrics(registry, "steg");
    if (sys.cache_volumes) {
      if (sys.cache_volumes->replica_count() > 1) {
        // Replicated layout: per-replica sim/fault counters plus the
        // per-shard replication health gauges, all under "cache.".
        sys.cache_volumes->RegisterMetrics(registry, "cache");
      } else {
        for (size_t k = 0; k < sys.cache_volumes->shard_count(); ++k) {
          sys.cache_volumes->sim(k).RegisterMetrics(
              registry, "cache.shard" + std::to_string(k));
        }
      }
    } else {
      sys.cache_sim->RegisterMetrics(registry, "cache");
    }
  }

  // Dummy pool for the Figure-6 relocating updates (provisioned in
  // max-file-size chunks, as a user population would).
  constexpr uint64_t kChunk = 8192;
  for (uint64_t left = users * file_blocks + 2048; left > 0;) {
    const uint64_t take = std::min(left, kChunk);
    if (!sys.agent->CreateDummyFile("bench", take).ok()) std::abort();
    left -= take;
  }

  const size_t payload = sys.core->payload_size();
  Bytes data(file_blocks * payload);
  for (uint64_t u = 0; u < users; ++u) {
    auto id = sys.agent->CreateHiddenFile("bench");
    if (!id.ok()) std::abort();
    for (uint64_t b = 0; b < file_blocks; ++b) {
      std::fill(data.begin() + b * payload, data.begin() + (b + 1) * payload,
                static_cast<uint8_t>(u + b));
    }
    if (!sys.agent->Write(*id, 0, data).ok()) std::abort();
    sys.files.push_back(*id);
  }
  if (prewarm) {
    for (uint64_t u = 0; u < users; ++u) {
      if (!sys.agent->Read(sys.files[u], 0, file_blocks * payload).ok()) {
        std::abort();
      }
    }
  }
  return sys;
}

/// One dispatched serving phase for the Fig10b/Fig11c sweeps: `users`
/// threads each run `task(session, file, user)` through RequestDispatcher
/// sessions (group commit up to `buffer`). With `deamortize`, re-orders
/// run as incremental double-buffered chains pumped from the
/// dispatcher's idle gaps; any tail chain is drained inside the measured
/// window so the throughput comparison charges every block of re-order
/// work to somebody. Stats are reset after system setup, so the
/// harvested counters — including the running-max max_stall_ms —
/// describe the measured serving phase only, not population/prewarm.
struct DispatchRun {
  /// Whether the store actually ran deamortized (Create() falls back to
  /// the blocking schedule on shallow hierarchies).
  bool deamortized = false;
  /// Spindles the cache I/O fanned out across (1 = single volume) and
  /// whether the ping-pong shadow regions landed on distinct spindles.
  size_t io_shards = 1;
  bool shadow_separated = false;
  double virtual_ms = 0;
  double retrieve_ms = 0;
  double sort_ms = 0;
  double max_stall_ms = 0;
  /// p99 of the per-flush/per-step stall histogram (virtual ms).
  double stall_p99_ms = 0;
  /// p99 of the cache scheduler's per-drain queue depth (requests).
  double queue_depth_p99 = 0;
  double reorder_steps = 0;
  uint64_t scan_passes = 0;
  /// Wall-clock time the scan passes spent decrypting probes (never on
  /// the virtual disk clock) and the serving phase's share of the
  /// process-wide crypto traffic (delta over the measured window).
  double crypto_wall_ms = 0;
  uint64_t crypto_bytes = 0;
  uint64_t crypto_batches = 0;
  std::vector<double> reorder_ms;
  agent::DispatcherStats dstats;
};

/// `registry`/`trace` (optional, typically harness GlobalMetrics() /
/// GlobalTrace() for the measured configuration only) instrument the run:
/// the trace log is cleared and armed for the serving phase, a
/// StatsSnapshotter folds periodic counter samples into the timeline
/// from the dispatcher's pump, and the registry is latched before
/// teardown so end-of-process dumps keep the final values.
inline DispatchRun RunDispatchedServing(
    uint64_t users, uint64_t file_blocks, uint64_t seed, uint64_t buffer,
    bool deamortize,
    const std::function<Status(agent::RequestDispatcher::Session&,
                               agent::ObliviousAgent::FileId, uint64_t)>&
        task,
    size_t cache_shards = 0, obs::Registry* registry = nullptr,
    obs::TraceLog* trace = nullptr) {
  auto sys = MakeObliviousSystem(users, file_blocks, seed, buffer, true,
                                 deamortize, cache_shards, registry, trace);
  agent::DispatcherOptions options;
  options.max_batch = buffer;
  // Wide wall-clock window: group composition then depends on the
  // deterministic fill target (min(open sessions, B)), not on CI
  // scheduling jitter; under load the target is reached long before the
  // window, so the wall cost is nil.
  options.commit_window = std::chrono::milliseconds(50);
  options.clock_fn = [&sys] { return sys.clock_ms(); };
  options.registry = registry;
  options.trace = trace;
  std::unique_ptr<obs::StatsSnapshotter> snapshotter;
  if (registry != nullptr && trace != nullptr) {
    snapshotter = std::make_unique<obs::StatsSnapshotter>(
        registry, trace, /*interval_ms=*/50.0);
    options.snapshotter = snapshotter.get();
  }
  sys.agent->store().ResetStats();
  if (trace != nullptr) {
    // Arm for the serving phase only; each instrumented run restarts the
    // timeline, so the exported trace shows the last configuration.
    trace->Clear();
    trace->set_enabled(true);
  }
  const double t0 = sys.clock_ms();
  const stegfs::CryptoTrafficSnapshot crypto0 = stegfs::GlobalCryptoTraffic();
  agent::RequestDispatcher dispatcher(sys.agent.get(), options);
  {
    std::vector<std::unique_ptr<agent::RequestDispatcher::Session>> sessions;
    for (uint64_t u = 0; u < users; ++u) {
      sessions.push_back(dispatcher.OpenSession());
    }
    std::vector<std::function<Status()>> tasks;
    for (uint64_t u = 0; u < users; ++u) {
      tasks.push_back([&, u]() -> Status {
        return task(*sessions[u], sys.files[u], u);
      });
    }
    for (const Status& status : workload::RunOnThreads(std::move(tasks))) {
      if (!status.ok()) std::abort();
    }
  }
  dispatcher.Stop();
  // Charge the tail: deamortized chains may still owe work after the
  // last request; it belongs to this serving phase's bill.
  bool more = true;
  while (more) {
    if (!sys.agent->store().StepReorder(1u << 20, &more).ok()) std::abort();
  }

  DispatchRun run;
  run.deamortized = sys.agent->store().deamortized();
  run.io_shards = sys.agent->store().io_shard_count();
  run.shadow_separated = sys.agent->store().shadow_spindle_separated();
  run.virtual_ms = sys.clock_ms() - t0;
  const auto stats = sys.agent->store().stats();
  run.retrieve_ms = stats.retrieve_ms;
  run.sort_ms = stats.sort_ms;
  run.max_stall_ms = stats.max_stall_ms;
  run.stall_p99_ms = stats.stall_p99_ms;
  run.queue_depth_p99 = sys.agent->store().io_stats().queue_depth_p99;
  run.reorder_steps = static_cast<double>(stats.reorder_steps);
  run.scan_passes = stats.scan_passes;
  run.crypto_wall_ms = stats.crypto_wall_ms;
  const stegfs::CryptoTrafficSnapshot crypto1 = stegfs::GlobalCryptoTraffic();
  run.crypto_bytes = crypto1.bytes - crypto0.bytes;
  run.crypto_batches = crypto1.batches - crypto0.batches;
  run.reorder_ms = stats.reorder_ms;
  run.dstats = dispatcher.stats();
  if (trace != nullptr) trace->set_enabled(false);
  // Latch while the instruments are still alive: sys tears down at
  // return, and the end-of-process --metrics dump wants final values.
  if (registry != nullptr) registry->Latch();
  return run;
}

}  // namespace steghide::bench

#endif  // STEGHIDE_BENCH_COMMON_H_
