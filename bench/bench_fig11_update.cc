// Reproduces Figure 11 of the paper: update performance.
//  (a) update time vs space utilization (10-50 %)       (Fig. 11a / E3)
//  (b) update time vs consecutive blocks (1-5), u=25 %  (Fig. 11b / E4)
//  (c) update time vs concurrency (1-32), range 5       (Fig. 11c / E5)
//
// Counters report VIRTUAL disk milliseconds (mean_update_ms /
// mean_access_s); ignore wall-clock columns.

#include <benchmark/benchmark.h>

#include <chrono>

#include "bench/harness.h"

#include "agent/dispatch/request_dispatcher.h"
#include "bench/common.h"
#include "workload/concurrency.h"
#include "workload/file_population.h"
#include "workload/update_stream.h"

namespace steghide::bench {
namespace {

// A "steganographic volume utilization" sweep needs the data to be a
// controlled fraction of the volume.
constexpr uint64_t kUtilVolumeBlocks = 16384;  // 64 MB
constexpr uint64_t kConcVolumeBlocks = 163840;
// Headroom for file headers and indirect blocks, which occupy volume
// space on top of the data blocks.
constexpr uint64_t kHeaderMargin = 256;

// Data blocks that make the volume `util` full.
uint64_t DataBlocksFor(double util) {
  return static_cast<uint64_t>(
      util * static_cast<double>(kUtilVolumeBlocks - kHeaderMargin));
}

// StegHide provisions its whole usable volume as the dummy pool; data
// allocation then claims from it, leaving exactly (1-util) of it dummy —
// the same utilization semantics as the non-volatile agent's bitmap over
// the volume.
uint64_t DummyPoolFor(double /*util*/) {
  return kUtilVolumeBlocks - kHeaderMargin;
}

// Populates `sys` to utilization `util` of the volume and returns the
// population. For StegHide the dummy pool was provisioned by the caller.
workload::FilePopulation Populate(SystemUnderTest& sys, double util,
                                  uint64_t /*volume_blocks*/, Rng& rng) {
  const uint64_t target_bytes = DataBlocksFor(util) * 4080;
  auto pop = workload::CreatePopulationBytes(*sys.adapter, rng, target_bytes,
                                             4ull << 20);
  if (!pop.ok()) std::abort();
  return std::move(pop).value();
}

void RunUtilizationSweep(benchmark::State& state, SystemKind kind,
                         double util) {
  for (auto _ : state) {
    Rng rng(100 + static_cast<uint64_t>(util * 100));
    auto sys = MakeSystem(kind, kUtilVolumeBlocks,
                          4000 + static_cast<uint64_t>(util * 100),
                          DummyPoolFor(util));
    auto pop = Populate(sys, util, kUtilVolumeBlocks, rng);

    const auto ops = workload::MakeUniformUpdateStream(
        pop, sys.adapter->payload_size(), rng, /*count=*/150,
        /*range_blocks=*/1);
    const double t0 = sys.clock_ms();
    if (!workload::ApplyUpdateStream(*sys.adapter, ops, rng).ok()) {
      std::abort();
    }
    state.counters["mean_update_ms"] =
        (sys.clock_ms() - t0) / static_cast<double>(ops.size());
  }
}

void RunRangeSweep(benchmark::State& state, SystemKind kind, uint64_t range) {
  constexpr double kUtil = 0.25;  // the paper fixes utilization at 25 %
  for (auto _ : state) {
    Rng rng(200 + range);
    auto sys = MakeSystem(kind, kUtilVolumeBlocks, 5000 + range,
                          DummyPoolFor(kUtil));
    auto pop = Populate(sys, kUtil, kUtilVolumeBlocks, rng);

    const auto ops = workload::MakeUniformUpdateStream(
        pop, sys.adapter->payload_size(), rng, /*count=*/100, range);
    const double t0 = sys.clock_ms();
    if (!workload::ApplyUpdateStream(*sys.adapter, ops, rng).ok()) {
      std::abort();
    }
    state.counters["mean_update_ms"] =
        (sys.clock_ms() - t0) / static_cast<double>(ops.size());
  }
}

void RunConcurrencySweep(benchmark::State& state, SystemKind kind,
                         uint64_t users) {
  constexpr uint64_t kRange = 5;  // the paper fixes the range at 5 blocks
  for (auto _ : state) {
    Rng rng(300 + users);
    const uint64_t est_blocks = users * (8ull << 20) / 4080 + 16;
    auto sys = MakeSystem(kind, kConcVolumeBlocks, 6000 + users,
                          est_blocks * 2 + 1024);
    workload::PopulationSpec spec;
    spec.file_count = users;
    auto pop = workload::CreatePopulation(*sys.adapter, rng, spec);
    if (!pop.ok()) std::abort();

    // One range-5 update per user, each within his own file, interleaved
    // block by block.
    const size_t payload = sys.adapter->payload_size();
    std::vector<std::unique_ptr<workload::IoTask>> tasks;
    for (uint64_t u = 0; u < users; ++u) {
      const uint64_t file_blocks = (pop->sizes[u] + payload - 1) / payload;
      workload::UpdateOp op;
      op.file = pop->ids[u];
      op.range_blocks = std::min<uint64_t>(kRange, file_blocks);
      op.first_block = rng.Uniform(file_blocks - op.range_blocks + 1);
      tasks.push_back(std::make_unique<workload::UpdateRangeTask>(
          sys.adapter.get(), op, 900 + u));
    }
    const double t0 = sys.clock_ms();
    auto finish =
        workload::RunConcurrently(tasks, [&] { return sys.clock_ms(); });
    if (!finish.ok()) std::abort();
    double sum = 0;
    for (double f : *finish) sum += f - t0;
    state.counters["mean_access_s"] =
        sum / static_cast<double>(users) / 1e3;
  }
}

// Dispatcher update sweep: `users` real threads each apply a range-5
// update (the paper's Fig 11(c) unit) plus follow-up single-block
// updates to their own file through RequestDispatcher sessions, against
// the identical request multiset served one request at a time. The
// Figure-6 relocating updates on the StegFS partition are inherently
// sequential (each reshapes the selection domain of the next), so the
// batching win here comes from the oblivious-cache side: grouped RMW
// prefetches and one MultiWrite refresh group per commit. Expect a
// smaller factor than the read sweep — that asymmetry is the result.
void RunDispatchUpdateSweep(benchmark::State& state, uint64_t users) {
  constexpr uint64_t kFileBlocks = 16;
  constexpr uint64_t kRange = 5;  // the paper fixes the range at 5
  constexpr uint64_t kOpsPerUser = 8;
  const uint64_t kBuffer =
      std::min<uint64_t>(128, std::max<uint64_t>(32, users));
  for (auto _ : state) {
    const uint64_t requests = users * kOpsPerUser;

    // The per-user update targets, identical for both paths.
    Rng rng(7000 + users);
    std::vector<std::vector<uint64_t>> targets(users);
    for (uint64_t u = 0; u < users; ++u) {
      const uint64_t first = rng.Uniform(kFileBlocks - kRange + 1);
      for (uint64_t i = 0; i < kRange; ++i) targets[u].push_back(first + i);
      for (uint64_t i = kRange; i < kOpsPerUser; ++i) {
        targets[u].push_back(rng.Uniform(kFileBlocks));
      }
    }

    auto serial =
        MakeObliviousSystem(users, kFileBlocks, 9500 + users, kBuffer, true);
    const size_t payload = serial.core->payload_size();
    const Bytes fresh(payload, 0x7e);
    const double serial_t0 = serial.clock_ms();
    for (uint64_t op = 0; op < kOpsPerUser; ++op) {
      for (uint64_t u = 0; u < users; ++u) {
        if (!serial.agent
                 ->Write(serial.files[u], targets[u][op] * payload,
                         fresh.data(), payload)
                 .ok()) {
          std::abort();
        }
      }
    }
    const double serial_ms = serial.clock_ms() - serial_t0;

    // Dispatched serving, twice: the blocking-re-order twin (the PR 4
    // configuration) and the deamortized double-buffered one, through
    // the shared runner (tail chains drained inside the measured
    // window, stats reset after setup).
    const auto update_task = [&](agent::RequestDispatcher::Session& s,
                                 agent::ObliviousAgent::FileId file,
                                 uint64_t user) -> Status {
      for (uint64_t op = 0; op < kOpsPerUser; ++op) {
        STEGHIDE_RETURN_IF_ERROR(
            s.Write(file, targets[user][op] * payload, fresh));
      }
      return Status::OK();
    };
    const DispatchRun blocking =
        RunDispatchedServing(users, kFileBlocks, 9500 + users, kBuffer,
                             /*deamortize=*/false, update_task);
    const DispatchRun deamort =
        RunDispatchedServing(users, kFileBlocks, 9500 + users, kBuffer,
                             /*deamortize=*/true, update_task);

    state.counters["users"] = static_cast<double>(users);
    state.counters["requests"] = static_cast<double>(requests);
    state.counters["virtual_ms"] = deamort.virtual_ms;
    state.counters["serial_virtual_ms"] = serial_ms;
    state.counters["blocking_virtual_ms"] = blocking.virtual_ms;
    state.counters["updates_per_vsec"] =
        static_cast<double>(requests) / (deamort.virtual_ms / 1e3);
    state.counters["serial_updates_per_vsec"] =
        static_cast<double>(requests) / (serial_ms / 1e3);
    state.counters["blocking_updates_per_vsec"] =
        static_cast<double>(requests) / (blocking.virtual_ms / 1e3);
    state.counters["speedup_vs_serial"] = serial_ms / deamort.virtual_ms;
    // The blocking-vs-deamortized ratios only mean something when the
    // twin really deamortized; shallow hierarchies (small user counts)
    // fall back to the blocking schedule, and emitting a ratio of two
    // blocking runs would just gate layout noise.
    if (deamort.deamortized) {
      state.counters["speedup_vs_blocking_reorder"] =
          blocking.virtual_ms / deamort.virtual_ms;
    }
    state.counters["mean_batch_fill"] = deamort.dstats.MeanFill();
    state.counters["p50_latency_ms"] = deamort.dstats.p50_latency_ms;
    state.counters["p99_latency_ms"] = deamort.dstats.p99_latency_ms;
    state.counters["blocking_p99_latency_ms"] = blocking.dstats.p99_latency_ms;
    if (deamort.deamortized && deamort.dstats.p99_latency_ms > 0) {
      state.counters["p99_improvement_vs_blocking"] =
          blocking.dstats.p99_latency_ms / deamort.dstats.p99_latency_ms;
    }
    state.counters["sort_ms"] = deamort.sort_ms;
    state.counters["blocking_sort_ms"] = blocking.sort_ms;
    state.counters["max_stall_ms"] = deamort.max_stall_ms;
    state.counters["blocking_max_stall_ms"] = blocking.max_stall_ms;
    state.counters["reorder_steps"] = deamort.reorder_steps;
    for (size_t l = 0; l < deamort.reorder_ms.size(); ++l) {
      state.counters["reorder_ms_l" + std::to_string(l + 1)] =
          deamort.reorder_ms[l];
    }
  }
}

}  // namespace
}  // namespace steghide::bench

int main(int argc, char** argv) {
  using namespace steghide::bench;
  for (SystemKind kind : kAllSystems) {
    for (int u10 : {1, 2, 3, 4, 5}) {
      const double util = u10 / 10.0;
      benchmark::RegisterBenchmark(
          (std::string("Fig11a/") + SystemName(kind) +
           "/utilization_pct:" + std::to_string(u10 * 10)).c_str(),
          [kind, util](benchmark::State& s) {
            RunUtilizationSweep(s, kind, util);
          })
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }
  for (SystemKind kind : kAllSystems) {
    for (uint64_t range : {1, 2, 3, 4, 5}) {
      benchmark::RegisterBenchmark(
          (std::string("Fig11b/") + SystemName(kind) +
           "/consecutive_blocks:" + std::to_string(range)).c_str(),
          [kind, range](benchmark::State& s) { RunRangeSweep(s, kind, range); })
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }
  for (SystemKind kind : kAllSystems) {
    for (uint64_t users : {1, 2, 4, 8, 16, 32}) {
      benchmark::RegisterBenchmark(
          (std::string("Fig11c/") + SystemName(kind) +
           "/users:" + std::to_string(users)).c_str(),
          [kind, users](benchmark::State& s) {
            RunConcurrencySweep(s, kind, users);
          })
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }
  // Multi-threaded dispatcher update sweep past the paper's 32 users.
  for (uint64_t users : {8, 32, 128, 256}) {
    benchmark::RegisterBenchmark(
        ("Fig11cDispatch/users:" + std::to_string(users)).c_str(),
        [users](benchmark::State& s) { RunDispatchUpdateSweep(s, users); })
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
  return RunBenchmarks(argc, argv);
}
