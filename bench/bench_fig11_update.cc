// Reproduces Figure 11 of the paper: update performance.
//  (a) update time vs space utilization (10-50 %)       (Fig. 11a / E3)
//  (b) update time vs consecutive blocks (1-5), u=25 %  (Fig. 11b / E4)
//  (c) update time vs concurrency (1-32), range 5       (Fig. 11c / E5)
//
// Counters report VIRTUAL disk milliseconds (mean_update_ms /
// mean_access_s); ignore wall-clock columns.

#include <benchmark/benchmark.h>

#include "bench/harness.h"

#include "bench/common.h"
#include "workload/concurrency.h"
#include "workload/file_population.h"
#include "workload/update_stream.h"

namespace steghide::bench {
namespace {

// A "steganographic volume utilization" sweep needs the data to be a
// controlled fraction of the volume.
constexpr uint64_t kUtilVolumeBlocks = 16384;  // 64 MB
constexpr uint64_t kConcVolumeBlocks = 163840;
// Headroom for file headers and indirect blocks, which occupy volume
// space on top of the data blocks.
constexpr uint64_t kHeaderMargin = 256;

// Data blocks that make the volume `util` full.
uint64_t DataBlocksFor(double util) {
  return static_cast<uint64_t>(
      util * static_cast<double>(kUtilVolumeBlocks - kHeaderMargin));
}

// StegHide provisions its whole usable volume as the dummy pool; data
// allocation then claims from it, leaving exactly (1-util) of it dummy —
// the same utilization semantics as the non-volatile agent's bitmap over
// the volume.
uint64_t DummyPoolFor(double /*util*/) {
  return kUtilVolumeBlocks - kHeaderMargin;
}

// Populates `sys` to utilization `util` of the volume and returns the
// population. For StegHide the dummy pool was provisioned by the caller.
workload::FilePopulation Populate(SystemUnderTest& sys, double util,
                                  uint64_t /*volume_blocks*/, Rng& rng) {
  const uint64_t target_bytes = DataBlocksFor(util) * 4080;
  auto pop = workload::CreatePopulationBytes(*sys.adapter, rng, target_bytes,
                                             4ull << 20);
  if (!pop.ok()) std::abort();
  return std::move(pop).value();
}

void RunUtilizationSweep(benchmark::State& state, SystemKind kind,
                         double util) {
  for (auto _ : state) {
    Rng rng(100 + static_cast<uint64_t>(util * 100));
    auto sys = MakeSystem(kind, kUtilVolumeBlocks,
                          4000 + static_cast<uint64_t>(util * 100),
                          DummyPoolFor(util));
    auto pop = Populate(sys, util, kUtilVolumeBlocks, rng);

    const auto ops = workload::MakeUniformUpdateStream(
        pop, sys.adapter->payload_size(), rng, /*count=*/150,
        /*range_blocks=*/1);
    const double t0 = sys.clock_ms();
    if (!workload::ApplyUpdateStream(*sys.adapter, ops, rng).ok()) {
      std::abort();
    }
    state.counters["mean_update_ms"] =
        (sys.clock_ms() - t0) / static_cast<double>(ops.size());
  }
}

void RunRangeSweep(benchmark::State& state, SystemKind kind, uint64_t range) {
  constexpr double kUtil = 0.25;  // the paper fixes utilization at 25 %
  for (auto _ : state) {
    Rng rng(200 + range);
    auto sys = MakeSystem(kind, kUtilVolumeBlocks, 5000 + range,
                          DummyPoolFor(kUtil));
    auto pop = Populate(sys, kUtil, kUtilVolumeBlocks, rng);

    const auto ops = workload::MakeUniformUpdateStream(
        pop, sys.adapter->payload_size(), rng, /*count=*/100, range);
    const double t0 = sys.clock_ms();
    if (!workload::ApplyUpdateStream(*sys.adapter, ops, rng).ok()) {
      std::abort();
    }
    state.counters["mean_update_ms"] =
        (sys.clock_ms() - t0) / static_cast<double>(ops.size());
  }
}

void RunConcurrencySweep(benchmark::State& state, SystemKind kind,
                         uint64_t users) {
  constexpr uint64_t kRange = 5;  // the paper fixes the range at 5 blocks
  for (auto _ : state) {
    Rng rng(300 + users);
    const uint64_t est_blocks = users * (8ull << 20) / 4080 + 16;
    auto sys = MakeSystem(kind, kConcVolumeBlocks, 6000 + users,
                          est_blocks * 2 + 1024);
    workload::PopulationSpec spec;
    spec.file_count = users;
    auto pop = workload::CreatePopulation(*sys.adapter, rng, spec);
    if (!pop.ok()) std::abort();

    // One range-5 update per user, each within his own file, interleaved
    // block by block.
    const size_t payload = sys.adapter->payload_size();
    std::vector<std::unique_ptr<workload::IoTask>> tasks;
    for (uint64_t u = 0; u < users; ++u) {
      const uint64_t file_blocks = (pop->sizes[u] + payload - 1) / payload;
      workload::UpdateOp op;
      op.file = pop->ids[u];
      op.range_blocks = std::min<uint64_t>(kRange, file_blocks);
      op.first_block = rng.Uniform(file_blocks - op.range_blocks + 1);
      tasks.push_back(std::make_unique<workload::UpdateRangeTask>(
          sys.adapter.get(), op, 900 + u));
    }
    const double t0 = sys.clock_ms();
    auto finish =
        workload::RunConcurrently(tasks, [&] { return sys.clock_ms(); });
    if (!finish.ok()) std::abort();
    double sum = 0;
    for (double f : *finish) sum += f - t0;
    state.counters["mean_access_s"] =
        sum / static_cast<double>(users) / 1e3;
  }
}

}  // namespace
}  // namespace steghide::bench

int main(int argc, char** argv) {
  using namespace steghide::bench;
  for (SystemKind kind : kAllSystems) {
    for (int u10 : {1, 2, 3, 4, 5}) {
      const double util = u10 / 10.0;
      benchmark::RegisterBenchmark(
          (std::string("Fig11a/") + SystemName(kind) +
           "/utilization_pct:" + std::to_string(u10 * 10)).c_str(),
          [kind, util](benchmark::State& s) {
            RunUtilizationSweep(s, kind, util);
          })
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }
  for (SystemKind kind : kAllSystems) {
    for (uint64_t range : {1, 2, 3, 4, 5}) {
      benchmark::RegisterBenchmark(
          (std::string("Fig11b/") + SystemName(kind) +
           "/consecutive_blocks:" + std::to_string(range)).c_str(),
          [kind, range](benchmark::State& s) { RunRangeSweep(s, kind, range); })
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }
  for (SystemKind kind : kAllSystems) {
    for (uint64_t users : {1, 2, 4, 8, 16, 32}) {
      benchmark::RegisterBenchmark(
          (std::string("Fig11c/") + SystemName(kind) +
           "/users:" + std::to_string(users)).c_str(),
          [kind, users](benchmark::State& s) {
            RunConcurrencySweep(s, kind, users);
          })
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }
  return RunBenchmarks(argc, argv);
}
