// Reproduces Figure 10 of the paper: data-retrieval performance.
//  (a) access time vs file size, single user        (Fig. 10a / E1)
//  (b) access time vs number of concurrent users    (Fig. 10b / E2)
//
// All reported values are VIRTUAL disk milliseconds from the DiskModel
// (counters access_time_s / mean_access_s); wall-clock columns are
// meaningless here. Volume: 512 MB, 4 KB blocks; files (4,8] MB as in
// Table 2.

#include <benchmark/benchmark.h>

#include "bench/harness.h"

#include "bench/common.h"
#include "workload/concurrency.h"
#include "workload/file_population.h"

namespace steghide::bench {
namespace {

constexpr uint64_t kVolumeBlocks = 131072;  // 512 MB

void RunFileSizeSweep(benchmark::State& state, SystemKind kind,
                      uint64_t file_mb) {
  for (auto _ : state) {
    const uint64_t file_bytes = file_mb << 20;
    const uint64_t data_blocks = file_bytes / 4080 + 16;
    auto sys = MakeSystem(kind, kVolumeBlocks, 1000 + file_mb,
                          /*steghide_dummy_blocks=*/data_blocks + 4096);
    auto id = sys.adapter->CreateFile(file_bytes);
    if (!id.ok()) std::abort();

    const double t0 = sys.clock_ms();
    workload::FileReadTask task(sys.adapter.get(), *id, file_bytes);
    for (;;) {
      auto done = task.Step();
      if (!done.ok()) std::abort();
      if (*done) break;
    }
    state.counters["access_time_s"] = (sys.clock_ms() - t0) / 1e3;
  }
}

void RunConcurrencySweep(benchmark::State& state, SystemKind kind,
                         uint64_t users) {
  for (auto _ : state) {
    Rng rng(2000 + users);
    // Each user retrieves one (4,8] MB file (Table 2).
    const uint64_t est_blocks = users * (8ull << 20) / 4080 + 16;
    auto sys = MakeSystem(kind, kVolumeBlocks, 3000 + users,
                          /*steghide_dummy_blocks=*/est_blocks + 4096);
    workload::PopulationSpec spec;
    spec.file_count = users;
    auto pop = workload::CreatePopulation(*sys.adapter, rng, spec);
    if (!pop.ok()) std::abort();

    std::vector<std::unique_ptr<workload::IoTask>> tasks;
    for (size_t u = 0; u < users; ++u) {
      tasks.push_back(std::make_unique<workload::FileReadTask>(
          sys.adapter.get(), pop->ids[u], pop->sizes[u]));
    }
    const double t0 = sys.clock_ms();
    auto finish =
        workload::RunConcurrently(tasks, [&] { return sys.clock_ms(); });
    if (!finish.ok()) std::abort();
    double sum = 0;
    for (double f : *finish) sum += f - t0;
    state.counters["mean_access_s"] =
        sum / static_cast<double>(users) / 1e3;
  }
}

}  // namespace
}  // namespace steghide::bench

int main(int argc, char** argv) {
  using namespace steghide::bench;
  for (SystemKind kind : kAllSystems) {
    for (uint64_t mb : {2, 4, 6, 8, 10}) {
      benchmark::RegisterBenchmark(
          (std::string("Fig10a/") + SystemName(kind) +
           "/file_mb:" + std::to_string(mb)).c_str(),
          [kind, mb](benchmark::State& s) { RunFileSizeSweep(s, kind, mb); })
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }
  for (SystemKind kind : kAllSystems) {
    for (uint64_t users : {1, 2, 4, 8, 16, 32}) {
      benchmark::RegisterBenchmark(
          (std::string("Fig10b/") + SystemName(kind) +
           "/users:" + std::to_string(users)).c_str(),
          [kind, users](benchmark::State& s) {
            RunConcurrencySweep(s, kind, users);
          })
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }
  return RunBenchmarks(argc, argv);
}
