// Reproduces Figure 10 of the paper: data-retrieval performance.
//  (a) access time vs file size, single user        (Fig. 10a / E1)
//  (b) access time vs number of concurrent users    (Fig. 10b / E2)
//
// All reported values are VIRTUAL disk milliseconds from the DiskModel
// (counters access_time_s / mean_access_s); wall-clock columns are
// meaningless here. Volume: 512 MB, 4 KB blocks; files (4,8] MB as in
// Table 2.

#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <map>

#include "bench/harness.h"
#include "stegfs/block_codec.h"

#include "agent/dispatch/request_dispatcher.h"
#include "bench/common.h"
#include "workload/concurrency.h"
#include "workload/file_population.h"

namespace steghide::bench {
namespace {

constexpr uint64_t kVolumeBlocks = 131072;  // 512 MB

void RunFileSizeSweep(benchmark::State& state, SystemKind kind,
                      uint64_t file_mb) {
  for (auto _ : state) {
    const uint64_t file_bytes = file_mb << 20;
    const uint64_t data_blocks = file_bytes / 4080 + 16;
    auto sys = MakeSystem(kind, kVolumeBlocks, 1000 + file_mb,
                          /*steghide_dummy_blocks=*/data_blocks + 4096);
    auto id = sys.adapter->CreateFile(file_bytes);
    if (!id.ok()) std::abort();

    const double t0 = sys.clock_ms();
    workload::FileReadTask task(sys.adapter.get(), *id, file_bytes);
    for (;;) {
      auto done = task.Step();
      if (!done.ok()) std::abort();
      if (*done) break;
    }
    state.counters["access_time_s"] = (sys.clock_ms() - t0) / 1e3;
  }
}

void RunConcurrencySweep(benchmark::State& state, SystemKind kind,
                         uint64_t users) {
  for (auto _ : state) {
    Rng rng(2000 + users);
    // Each user retrieves one (4,8] MB file (Table 2).
    const uint64_t est_blocks = users * (8ull << 20) / 4080 + 16;
    auto sys = MakeSystem(kind, kVolumeBlocks, 3000 + users,
                          /*steghide_dummy_blocks=*/est_blocks + 4096);
    workload::PopulationSpec spec;
    spec.file_count = users;
    auto pop = workload::CreatePopulation(*sys.adapter, rng, spec);
    if (!pop.ok()) std::abort();

    std::vector<std::unique_ptr<workload::IoTask>> tasks;
    for (size_t u = 0; u < users; ++u) {
      tasks.push_back(std::make_unique<workload::FileReadTask>(
          sys.adapter.get(), pop->ids[u], pop->sizes[u]));
    }
    const double t0 = sys.clock_ms();
    auto finish =
        workload::RunConcurrently(tasks, [&] { return sys.clock_ms(); });
    if (!finish.ok()) std::abort();
    double sum = 0;
    for (double f : *finish) sum += f - t0;
    state.counters["mean_access_s"] =
        sum / static_cast<double>(users) / 1e3;
  }
}

// Dispatcher sweep (the multi-user serving path): `users` real threads
// each read their own pre-warmed 16-block file through RequestDispatcher
// sessions, so concurrent requests group-commit into cross-file
// level-scan groups of up to B = 32. The per-request baseline serves the
// identical request multiset one request at a time (round-robin over
// users, the RunConcurrently interleave), and a blocking-re-order twin
// of the dispatcher (the PR 4 configuration) isolates what the
// deamortized double-buffered re-orders buy. All times are virtual disk
// ms; requests/sec is requests per virtual second.
void RunDispatchSweep(benchmark::State& state, uint64_t users) {
  constexpr uint64_t kFileBlocks = 16;
  // Store B = dispatcher max_batch: groups can hold every user's
  // outstanding request up to 128 (the agent-buffer envelope of the
  // Figure 12 sweep), so batch fill scales with the population.
  const uint64_t kBuffer = std::min<uint64_t>(128, std::max<uint64_t>(32, users));
  for (auto _ : state) {
    const uint64_t requests = users * kFileBlocks;

    // Per-request serving baseline on a twin system.
    auto serial =
        MakeObliviousSystem(users, kFileBlocks, 9000 + users, kBuffer, true);
    const size_t payload = serial.core->payload_size();
    const auto serial_before = serial.agent->store().stats();
    const double serial_t0 = serial.clock_ms();
    for (uint64_t block = 0; block < kFileBlocks; ++block) {
      for (uint64_t u = 0; u < users; ++u) {
        if (!serial.agent->Read(serial.files[u], block * payload, payload)
                 .ok()) {
          std::abort();
        }
      }
    }
    const double serial_ms = serial.clock_ms() - serial_t0;
    const auto sst = serial.agent->store().stats();

    // Blocking-re-order dispatcher (the PR 4 baseline) and the
    // deamortized dispatcher on identically seeded twins.
    const auto read_task = [payload](agent::RequestDispatcher::Session& s,
                                     agent::ObliviousAgent::FileId file,
                                     uint64_t) -> Status {
      for (uint64_t block = 0; block < kFileBlocks; ++block) {
        STEGHIDE_RETURN_IF_ERROR(
            s.Read(file, block * payload, payload).status());
      }
      return Status::OK();
    };
    const DispatchRun blocking =
        RunDispatchedServing(users, kFileBlocks, 9000 + users, kBuffer,
                             /*deamortize=*/false, read_task);
    // Only the measured (deamortized) configuration gets the process
    // observability sinks: the serial/blocking twins stay uninstrumented
    // so the exported timeline/metrics describe one system.
    const DispatchRun deamort = RunDispatchedServing(
        users, kFileBlocks, 9000 + users, kBuffer,
        /*deamortize=*/true, read_task, /*cache_shards=*/0, GlobalMetrics(),
        GlobalTrace());

    state.counters["users"] = static_cast<double>(users);
    state.counters["requests"] = static_cast<double>(requests);
    // Headline counters describe the deamortized dispatcher (the serving
    // configuration); the blocking twin keeps its own prefixed set.
    state.counters["virtual_ms"] = deamort.virtual_ms;
    state.counters["serial_virtual_ms"] = serial_ms;
    state.counters["blocking_virtual_ms"] = blocking.virtual_ms;
    state.counters["requests_per_vsec"] =
        static_cast<double>(requests) / (deamort.virtual_ms / 1e3);
    state.counters["serial_requests_per_vsec"] =
        static_cast<double>(requests) / (serial_ms / 1e3);
    state.counters["blocking_requests_per_vsec"] =
        static_cast<double>(requests) / (blocking.virtual_ms / 1e3);
    state.counters["speedup_vs_serial"] = serial_ms / deamort.virtual_ms;
    // The blocking-vs-deamortized ratios only mean something when the
    // twin really deamortized; shallow hierarchies (small user counts)
    // fall back to the blocking schedule, and emitting a ratio of two
    // blocking runs would just gate layout noise.
    if (deamort.deamortized) {
      state.counters["speedup_vs_blocking_reorder"] =
          blocking.virtual_ms / deamort.virtual_ms;
    }
    state.counters["mean_batch_fill"] = deamort.dstats.MeanFill();
    state.counters["max_batch_fill"] =
        static_cast<double>(deamort.dstats.max_fill);
    state.counters["scan_passes"] = static_cast<double>(deamort.scan_passes);
    state.counters["serial_scan_passes"] =
        static_cast<double>(sst.scan_passes - serial_before.scan_passes);
    state.counters["p50_latency_ms"] = deamort.dstats.p50_latency_ms;
    state.counters["p90_latency_ms"] = deamort.dstats.p90_latency_ms;
    state.counters["p99_latency_ms"] = deamort.dstats.p99_latency_ms;
    state.counters["blocking_p50_latency_ms"] = blocking.dstats.p50_latency_ms;
    state.counters["blocking_p99_latency_ms"] = blocking.dstats.p99_latency_ms;
    if (deamort.deamortized && deamort.dstats.p99_latency_ms > 0) {
      state.counters["p99_improvement_vs_blocking"] =
          blocking.dstats.p99_latency_ms / deamort.dstats.p99_latency_ms;
    }
    // Retrieval vs re-order split (Figure 12(b) axis) and the new
    // deamortization counters: per-level re-order time, incremental step
    // count, and the longest serving stall attributable to re-orders.
    state.counters["retrieve_ms"] = deamort.retrieve_ms;
    state.counters["sort_ms"] = deamort.sort_ms;
    state.counters["blocking_retrieve_ms"] = blocking.retrieve_ms;
    state.counters["blocking_sort_ms"] = blocking.sort_ms;
    state.counters["serial_retrieve_ms"] =
        sst.retrieve_ms - serial_before.retrieve_ms;
    state.counters["serial_sort_ms"] = sst.sort_ms - serial_before.sort_ms;
    state.counters["max_stall_ms"] = deamort.max_stall_ms;
    state.counters["stall_p99_ms"] = deamort.stall_p99_ms;
    state.counters["blocking_max_stall_ms"] = blocking.max_stall_ms;
    state.counters["blocking_stall_p99_ms"] = blocking.stall_p99_ms;
    state.counters["queue_depth_p99"] = deamort.queue_depth_p99;
    // Crypto cost of the serving phase: wall time spent decrypting scan
    // probes (off the virtual disk clock) and the batched traffic that
    // the hardware path amortizes.
    state.counters["crypto_wall_ms"] = deamort.crypto_wall_ms;
    state.counters["crypto_mb"] =
        static_cast<double>(deamort.crypto_bytes) / (1024.0 * 1024.0);
    state.counters["crypto_batches"] =
        static_cast<double>(deamort.crypto_batches);
    state.counters["reorder_steps"] = deamort.reorder_steps;
    for (size_t l = 0; l < deamort.reorder_ms.size(); ++l) {
      state.counters["reorder_ms_l" + std::to_string(l + 1)] =
          deamort.reorder_ms[l];
    }
  }
}

// Sharded-volume sweep: the deamortized dispatcher serving path with the
// oblivious cache striped across K spindles (ShardedBlockDevice over K
// independent DiskModel clocks). Virtual time on the cache side is the
// parallel clock — each fan-out costs the slowest shard of the join —
// so the counters directly measure what disk parallelism buys the
// serving funnel. K=1 runs the same sharded machinery as the scaling
// baseline; speedup_vs_1shard is this run's throughput over that
// baseline's (computed once per user count and reused).
void RunShardSweep(benchmark::State& state, size_t shards, uint64_t users) {
  constexpr uint64_t kFileBlocks = 16;
  const uint64_t kBuffer =
      std::min<uint64_t>(128, std::max<uint64_t>(32, users));
  // Payload size is a pure function of the 4 KB block size shared by
  // every device in the sweep.
  const size_t payload = stegfs::BlockCodec(4096).payload_size();
  for (auto _ : state) {
    const uint64_t requests = users * kFileBlocks;
    const auto read_task = [payload](agent::RequestDispatcher::Session& s,
                                     agent::ObliviousAgent::FileId file,
                                     uint64_t) -> Status {
      for (uint64_t block = 0; block < kFileBlocks; ++block) {
        STEGHIDE_RETURN_IF_ERROR(
            s.Read(file, block * payload, payload).status());
      }
      return Status::OK();
    };

    // One-shard scaling baseline, computed lazily and shared across the
    // K registrations of the same user count (the benchmarks run
    // sequentially in one process).
    static std::map<uint64_t, double> one_shard_ms;
    if (one_shard_ms.find(users) == one_shard_ms.end()) {
      const DispatchRun base =
          RunDispatchedServing(users, kFileBlocks, 9500 + users, kBuffer,
                               /*deamortize=*/true, read_task,
                               /*cache_shards=*/1);
      one_shard_ms[users] = base.virtual_ms;
    }

    const DispatchRun run =
        RunDispatchedServing(users, kFileBlocks, 9500 + users, kBuffer,
                             /*deamortize=*/true, read_task,
                             /*cache_shards=*/shards);

    state.counters["users"] = static_cast<double>(users);
    state.counters["shards"] = static_cast<double>(run.io_shards);
    state.counters["shadow_separated"] = run.shadow_separated ? 1.0 : 0.0;
    state.counters["virtual_ms"] = run.virtual_ms;
    state.counters["requests_per_vsec"] =
        static_cast<double>(requests) / (run.virtual_ms / 1e3);
    state.counters["speedup_vs_1shard"] =
        one_shard_ms[users] / run.virtual_ms;
    state.counters["mean_batch_fill"] = run.dstats.MeanFill();
    state.counters["scan_passes"] = static_cast<double>(run.scan_passes);
    state.counters["p50_latency_ms"] = run.dstats.p50_latency_ms;
    state.counters["p99_latency_ms"] = run.dstats.p99_latency_ms;
    state.counters["retrieve_ms"] = run.retrieve_ms;
    state.counters["sort_ms"] = run.sort_ms;
    state.counters["max_stall_ms"] = run.max_stall_ms;
    state.counters["crypto_wall_ms"] = run.crypto_wall_ms;
    state.counters["crypto_mb"] =
        static_cast<double>(run.crypto_bytes) / (1024.0 * 1024.0);
    state.counters["crypto_batches"] =
        static_cast<double>(run.crypto_batches);
  }
}

// Degraded-mode sweep: the Fig10bShard serving path (K cache spindles,
// R = 2 mirrored replicas per shard) with one replica of shard 0 killed
// at the half-way mark, plus a mild transient-EIO read plan on the
// surviving replica so the store scheduler's retry budget is exercised
// while the shard is down to one mirror. The acceptance bar is
// failed_requests == 0: every request after the kill is served by
// failover / degraded writes / bounded retries. After the serving phase
// the dead replica is revived and the repair sweep re-mirrors it; repair
// cost is reported in virtual ms alongside the replication counters.
void RunDegradedSweep(benchmark::State& state, size_t shards,
                      uint64_t users) {
  constexpr uint64_t kFileBlocks = 16;
  const uint64_t kBuffer =
      std::min<uint64_t>(128, std::max<uint64_t>(32, users));
  const size_t payload = stegfs::BlockCodec(4096).payload_size();
  for (auto _ : state) {
    const uint64_t requests = users * kFileBlocks;

    // Only the surviving replica of the shard we kill carries a fault
    // plan: a sparse transient read error (one op in 197, reads only).
    // While both mirrors are healthy those fires are absorbed by
    // failover; once replica 1 is dead they surface through the
    // replicated layer and must be re-driven by the scheduler's retry
    // budget instead of failing the request.
    const auto fault_plan = [](size_t shard,
                               size_t replica) -> storage::FaultPlan {
      storage::FaultPlan plan;
      if (shard == 0 && replica == 0) {
        plan.seed = 77;
        storage::FaultSpec flaky;
        flaky.kind = storage::FaultSpec::Kind::kTransientError;
        flaky.ops = storage::FaultSpec::OpFilter::kRead;
        flaky.every_nth = 197;
        plan.faults.push_back(flaky);
      }
      return plan;
    };
    storage::RetryPolicy retry;
    // Generous budget: a vectored re-drive can consume several of the
    // surviving replica's scheduled fires before one attempt clears.
    retry.max_attempts = 12;
    storage::ReplicationOptions replication;
    // Transient hiccups on the last healthy mirror must stay in
    // rotation; only the scripted death should cost a replica.
    replication.quarantine_after = 64;

    auto sys = MakeObliviousSystem(
        users, kFileBlocks, 9700 + users, kBuffer, true,
        /*deamortize=*/true, shards, GlobalMetrics(), GlobalTrace(),
        /*cache_replicas=*/2, fault_plan, retry, replication);

    agent::DispatcherOptions options;
    options.max_batch = kBuffer;
    options.commit_window = std::chrono::milliseconds(50);
    options.clock_fn = [&sys] { return sys.clock_ms(); };
    options.registry = GlobalMetrics();
    options.trace = GlobalTrace();
    // The repair pump rides the dispatcher's idle-maintenance seam; it
    // is a no-op until the dead replica is re-admitted below.
    options.extra_maintenance =
        [&sys](uint64_t budget) -> Result<bool> {
      if (!sys.cache_volumes->repair_pending()) return false;
      return sys.cache_volumes->PumpRepair(budget);
    };
    sys.agent->store().ResetStats();
    if (obs::TraceLog* trace = GlobalTrace(); trace != nullptr) {
      trace->Clear();
      trace->set_enabled(true);
    }

    const double t0 = sys.clock_ms();
    std::atomic<uint64_t> done{0};
    std::atomic<uint64_t> failed{0};
    double kill_ms = 0;
    {
      agent::RequestDispatcher dispatcher(sys.agent.get(), options);
      std::vector<std::unique_ptr<agent::RequestDispatcher::Session>>
          sessions;
      for (uint64_t u = 0; u < users; ++u) {
        sessions.push_back(dispatcher.OpenSession());
      }
      std::vector<std::function<Status()>> tasks;
      for (uint64_t u = 0; u < users; ++u) {
        tasks.push_back([&, u]() -> Status {
          for (uint64_t block = 0; block < kFileBlocks; ++block) {
            if (!sessions[u]
                     ->Read(sys.files[u], block * payload, payload)
                     .ok()) {
              failed.fetch_add(1, std::memory_order_relaxed);
            }
            // Pull the plug on shard 0's second mirror half-way through
            // the request stream (Kill() is thread-safe by contract).
            if (done.fetch_add(1, std::memory_order_relaxed) + 1 ==
                requests / 2) {
              kill_ms = sys.clock_ms() - t0;
              sys.cache_volumes->KillReplica(0, 1);
            }
          }
          return Status::OK();
        });
      }
      for (const Status& status :
           workload::RunOnThreads(std::move(tasks))) {
        if (!status.ok()) std::abort();
      }
      dispatcher.Stop();
    }
    // Drain the re-order tail (retries absorb any remaining transient
    // fires on the degraded shard).
    bool more = true;
    while (more) {
      if (!sys.agent->store().StepReorder(1u << 20, &more).ok()) {
        std::abort();
      }
    }
    const double serving_ms = sys.clock_ms() - t0;

    // Fail back: revive the dead replica and re-mirror it. Transient
    // fires on the repair source surface as failed pump slices; the
    // sweep resumes where it left off, so we just re-drive.
    uint64_t repair_retries = 0;
    const double repair_t0 = sys.clock_ms();
    if (!sys.cache_volumes->ReviveAndRepair(0, 1).ok()) std::abort();
    for (;;) {
      auto pending = sys.cache_volumes->PumpRepair(64);
      if (!pending.ok()) {
        ++repair_retries;
        continue;
      }
      if (!*pending) break;
    }
    const double repair_ms = sys.clock_ms() - repair_t0;
    const auto rstats = sys.cache_volumes->replicated(0)->stats();
    const auto iostats = sys.agent->store().io_stats();
    uint64_t injected = 0;
    for (size_t k = 0; k < shards; ++k) {
      for (size_t r = 0; r < 2; ++r) {
        injected += sys.cache_volumes->fault(k, r)->stats().injected_errors;
      }
    }

    state.counters["users"] = static_cast<double>(users);
    state.counters["shards"] = static_cast<double>(shards);
    state.counters["replicas"] = 2.0;
    state.counters["requests"] = static_cast<double>(requests);
    state.counters["failed_requests"] =
        static_cast<double>(failed.load());
    state.counters["virtual_ms"] = serving_ms;
    state.counters["requests_per_vsec"] =
        static_cast<double>(requests) / (serving_ms / 1e3);
    state.counters["kill_ms"] = kill_ms;
    state.counters["injected_errors"] = static_cast<double>(injected);
    state.counters["io_retries"] = static_cast<double>(iostats.retries);
    state.counters["io_retry_exhausted"] =
        static_cast<double>(iostats.retry_exhausted);
    state.counters["failovers"] = static_cast<double>(rstats.failovers);
    state.counters["quarantines"] =
        static_cast<double>(rstats.quarantines);
    state.counters["failover_ms_max"] = rstats.failover_ms_max;
    state.counters["failover_ms_mean"] = rstats.failover_ms_mean;
    state.counters["repair_ms"] = repair_ms;
    state.counters["repair_blocks"] =
        static_cast<double>(rstats.repair_blocks);
    state.counters["repairs_completed"] =
        static_cast<double>(rstats.repairs_completed);
    state.counters["repair_retries"] =
        static_cast<double>(repair_retries);
    if (obs::TraceLog* trace = GlobalTrace(); trace != nullptr) {
      trace->set_enabled(false);
    }
    if (obs::Registry* registry = GlobalMetrics(); registry != nullptr) {
      registry->Latch();
    }
  }
}

// Distributed-volume sweep: the Fig10bDegraded serving path with shard
// 0's second mirror served over the loopback block-RPC transport and
// the mirror running in quorum mode (W = R = 1, per-block version
// stamps). Half-way through the request stream the remote link is
// partitioned: every RPC to it fails fast, quorum writes keep
// succeeding on the local replica, and quorum reads only ever serve
// version-current stamps. The acceptance bars are failed_requests == 0
// AND quorum_stale_reads == 0 (both hard-gated by bench_diff.py). After
// the serving phase the link heals, the endpoint restarts, and the
// repair sweep re-converges the remote mirror; RPC and transport
// counters ride along.
void RunRemoteSweep(benchmark::State& state, size_t shards,
                    uint64_t users) {
  constexpr uint64_t kFileBlocks = 16;
  const uint64_t kBuffer =
      std::min<uint64_t>(128, std::max<uint64_t>(32, users));
  const size_t payload = stegfs::BlockCodec(4096).payload_size();
  for (auto _ : state) {
    const uint64_t requests = users * kFileBlocks;

    storage::RetryPolicy retry;
    retry.max_attempts = 12;
    storage::ReplicationOptions replication;
    replication.quorum = true;
    replication.write_quorum = 1;
    replication.read_quorum = 1;
    // The partitioned remote fails fast on every touch; keep it lagging
    // long enough to exercise degraded quorum serving, but let sustained
    // failures bench it so serving stops paying the fail-fast errors.
    replication.quarantine_after = 64;
    storage::remote::RemoteDeviceOptions remote_options;
    remote_options.rpc_deadline_ms = 5000.0;
    remote_options.retry.max_attempts = 2;

    auto sys = MakeObliviousSystem(
        users, kFileBlocks, 9800 + users, kBuffer, true,
        /*deamortize=*/true, shards, GlobalMetrics(), GlobalTrace(),
        /*cache_replicas=*/2,
        [](size_t, size_t) { return storage::FaultPlan{}; }, retry,
        replication,
        /*cache_remote=*/[](size_t k, size_t r) { return k == 0 && r == 1; },
        /*cache_transport_fault_plan=*/nullptr, remote_options);

    agent::DispatcherOptions options;
    options.max_batch = kBuffer;
    options.commit_window = std::chrono::milliseconds(50);
    options.clock_fn = [&sys] { return sys.clock_ms(); };
    options.registry = GlobalMetrics();
    options.trace = GlobalTrace();
    options.extra_maintenance =
        [&sys](uint64_t budget) -> Result<bool> {
      if (!sys.cache_volumes->repair_pending()) return false;
      return sys.cache_volumes->PumpRepair(budget);
    };
    sys.agent->store().ResetStats();
    if (obs::TraceLog* trace = GlobalTrace(); trace != nullptr) {
      trace->Clear();
      trace->set_enabled(true);
    }

    const double t0 = sys.clock_ms();
    std::atomic<uint64_t> done{0};
    std::atomic<uint64_t> failed{0};
    double partition_ms = 0;
    {
      agent::RequestDispatcher dispatcher(sys.agent.get(), options);
      std::vector<std::unique_ptr<agent::RequestDispatcher::Session>>
          sessions;
      for (uint64_t u = 0; u < users; ++u) {
        sessions.push_back(dispatcher.OpenSession());
      }
      std::vector<std::function<Status()>> tasks;
      for (uint64_t u = 0; u < users; ++u) {
        tasks.push_back([&, u]() -> Status {
          for (uint64_t block = 0; block < kFileBlocks; ++block) {
            if (!sessions[u]
                     ->Read(sys.files[u], block * payload, payload)
                     .ok()) {
              failed.fetch_add(1, std::memory_order_relaxed);
            }
            // Black-hole the remote link half-way through the request
            // stream (Partition() is thread-safe by contract).
            if (done.fetch_add(1, std::memory_order_relaxed) + 1 ==
                requests / 2) {
              partition_ms = sys.clock_ms() - t0;
              sys.cache_volumes->PartitionReplica(0, 1);
            }
          }
          return Status::OK();
        });
      }
      for (const Status& status :
           workload::RunOnThreads(std::move(tasks))) {
        if (!status.ok()) std::abort();
      }
      dispatcher.Stop();
    }
    bool more = true;
    while (more) {
      if (!sys.agent->store().StepReorder(1u << 20, &more).ok()) {
        std::abort();
      }
    }
    const double serving_ms = sys.clock_ms() - t0;

    // Reconnect: heal the link (ReviveAndRepair does), restart anything
    // crashed, and re-converge the remote mirror byte-identically.
    const double repair_t0 = sys.clock_ms();
    if (!sys.cache_volumes->ReviveAndRepair(0, 1).ok()) std::abort();
    for (;;) {
      auto pending = sys.cache_volumes->PumpRepair(64);
      if (!pending.ok()) std::abort();
      if (!*pending) break;
    }
    const double repair_ms = sys.clock_ms() - repair_t0;
    const auto rstats = sys.cache_volumes->replicated(0)->stats();
    const auto iostats = sys.agent->store().io_stats();
    const auto remote_stats =
        sys.cache_volumes->remote_device(0, 1)->stats();
    const auto transport_stats =
        sys.cache_volumes->transport_fault(0, 1)->stats();

    state.counters["users"] = static_cast<double>(users);
    state.counters["shards"] = static_cast<double>(shards);
    state.counters["replicas"] = 2.0;
    state.counters["requests"] = static_cast<double>(requests);
    state.counters["failed_requests"] =
        static_cast<double>(failed.load());
    state.counters["quorum_stale_reads"] =
        static_cast<double>(rstats.quorum_stale_reads);
    state.counters["write_quorum_failures"] =
        static_cast<double>(rstats.write_quorum_failures);
    state.counters["quorum_widened"] =
        static_cast<double>(rstats.quorum_widened);
    state.counters["read_repairs"] =
        static_cast<double>(rstats.read_repairs);
    state.counters["virtual_ms"] = serving_ms;
    state.counters["requests_per_vsec"] =
        static_cast<double>(requests) / (serving_ms / 1e3);
    state.counters["partition_ms"] = partition_ms;
    state.counters["io_retries"] = static_cast<double>(iostats.retries);
    state.counters["io_retry_exhausted"] =
        static_cast<double>(iostats.retry_exhausted);
    state.counters["failovers"] = static_cast<double>(rstats.failovers);
    state.counters["quarantines"] =
        static_cast<double>(rstats.quarantines);
    state.counters["failover_ms_max"] = rstats.failover_ms_max;
    state.counters["failover_ms_p99"] = rstats.failover_ms_p99;
    state.counters["rpcs"] = static_cast<double>(remote_stats.rpcs);
    state.counters["rpc_retries"] =
        static_cast<double>(remote_stats.rpc_retries);
    state.counters["rpc_timeouts"] =
        static_cast<double>(remote_stats.timeouts);
    state.counters["reconnects"] =
        static_cast<double>(remote_stats.reconnects);
    state.counters["partitioned_frames"] =
        static_cast<double>(transport_stats.partitioned_frames);
    state.counters["repair_ms"] = repair_ms;
    state.counters["repair_blocks"] =
        static_cast<double>(rstats.repair_blocks);
    state.counters["repairs_completed"] =
        static_cast<double>(rstats.repairs_completed);
    if (obs::TraceLog* trace = GlobalTrace(); trace != nullptr) {
      trace->set_enabled(false);
    }
    if (obs::Registry* registry = GlobalMetrics(); registry != nullptr) {
      registry->Latch();
    }
  }
}

}  // namespace
}  // namespace steghide::bench

int main(int argc, char** argv) {
  using namespace steghide::bench;
  for (SystemKind kind : kAllSystems) {
    for (uint64_t mb : {2, 4, 6, 8, 10}) {
      benchmark::RegisterBenchmark(
          (std::string("Fig10a/") + SystemName(kind) +
           "/file_mb:" + std::to_string(mb)).c_str(),
          [kind, mb](benchmark::State& s) { RunFileSizeSweep(s, kind, mb); })
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }
  for (SystemKind kind : kAllSystems) {
    for (uint64_t users : {1, 2, 4, 8, 16, 32}) {
      benchmark::RegisterBenchmark(
          (std::string("Fig10b/") + SystemName(kind) +
           "/users:" + std::to_string(users)).c_str(),
          [kind, users](benchmark::State& s) {
            RunConcurrencySweep(s, kind, users);
          })
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }
  // Multi-threaded dispatcher sweep: user counts past the paper's 32,
  // dispatched vs per-request serving on the oblivious system.
  for (uint64_t users : {8, 32, 128, 256}) {
    benchmark::RegisterBenchmark(
        ("Fig10bDispatch/users:" + std::to_string(users)).c_str(),
        [users](benchmark::State& s) { RunDispatchSweep(s, users); })
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
  // Sharded-volume sweep: same serving path, cache striped over K
  // spindles; the acceptance bar is >=2.5x requests_per_vsec at K=4.
  for (size_t shards : {1, 2, 4, 8}) {
    benchmark::RegisterBenchmark(
        ("Fig10bShard/shards:" + std::to_string(shards) + "/users:256")
            .c_str(),
        [shards](benchmark::State& s) { RunShardSweep(s, shards, 256); })
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
  // Degraded-mode serving: one replica of one shard dies mid-run; the
  // acceptance bar is failed_requests == 0 (gated by bench_diff.py).
  benchmark::RegisterBenchmark(
      "Fig10bDegraded/shards:4/users:256",
      [](benchmark::State& s) { RunDegradedSweep(s, 4, 256); })
      ->Iterations(1)
      ->Unit(benchmark::kMillisecond);
  // Distributed volumes: one mirror behind the loopback block-RPC
  // transport, quorum serving, a partition injected mid-run. The
  // acceptance bars are failed_requests == 0 and quorum_stale_reads == 0
  // (both gated by bench_diff.py).
  benchmark::RegisterBenchmark(
      "Fig10bRemote/shards:4/users:256",
      [](benchmark::State& s) { RunRemoteSweep(s, 4, 256); })
      ->Iterations(1)
      ->Unit(benchmark::kMillisecond);
  return RunBenchmarks(argc, argv);
}
