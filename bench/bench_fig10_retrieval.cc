// Reproduces Figure 10 of the paper: data-retrieval performance.
//  (a) access time vs file size, single user        (Fig. 10a / E1)
//  (b) access time vs number of concurrent users    (Fig. 10b / E2)
//
// All reported values are VIRTUAL disk milliseconds from the DiskModel
// (counters access_time_s / mean_access_s); wall-clock columns are
// meaningless here. Volume: 512 MB, 4 KB blocks; files (4,8] MB as in
// Table 2.

#include <benchmark/benchmark.h>

#include <chrono>

#include "bench/harness.h"

#include "agent/dispatch/request_dispatcher.h"
#include "bench/common.h"
#include "workload/concurrency.h"
#include "workload/file_population.h"

namespace steghide::bench {
namespace {

constexpr uint64_t kVolumeBlocks = 131072;  // 512 MB

void RunFileSizeSweep(benchmark::State& state, SystemKind kind,
                      uint64_t file_mb) {
  for (auto _ : state) {
    const uint64_t file_bytes = file_mb << 20;
    const uint64_t data_blocks = file_bytes / 4080 + 16;
    auto sys = MakeSystem(kind, kVolumeBlocks, 1000 + file_mb,
                          /*steghide_dummy_blocks=*/data_blocks + 4096);
    auto id = sys.adapter->CreateFile(file_bytes);
    if (!id.ok()) std::abort();

    const double t0 = sys.clock_ms();
    workload::FileReadTask task(sys.adapter.get(), *id, file_bytes);
    for (;;) {
      auto done = task.Step();
      if (!done.ok()) std::abort();
      if (*done) break;
    }
    state.counters["access_time_s"] = (sys.clock_ms() - t0) / 1e3;
  }
}

void RunConcurrencySweep(benchmark::State& state, SystemKind kind,
                         uint64_t users) {
  for (auto _ : state) {
    Rng rng(2000 + users);
    // Each user retrieves one (4,8] MB file (Table 2).
    const uint64_t est_blocks = users * (8ull << 20) / 4080 + 16;
    auto sys = MakeSystem(kind, kVolumeBlocks, 3000 + users,
                          /*steghide_dummy_blocks=*/est_blocks + 4096);
    workload::PopulationSpec spec;
    spec.file_count = users;
    auto pop = workload::CreatePopulation(*sys.adapter, rng, spec);
    if (!pop.ok()) std::abort();

    std::vector<std::unique_ptr<workload::IoTask>> tasks;
    for (size_t u = 0; u < users; ++u) {
      tasks.push_back(std::make_unique<workload::FileReadTask>(
          sys.adapter.get(), pop->ids[u], pop->sizes[u]));
    }
    const double t0 = sys.clock_ms();
    auto finish =
        workload::RunConcurrently(tasks, [&] { return sys.clock_ms(); });
    if (!finish.ok()) std::abort();
    double sum = 0;
    for (double f : *finish) sum += f - t0;
    state.counters["mean_access_s"] =
        sum / static_cast<double>(users) / 1e3;
  }
}

// Dispatcher sweep (the multi-user serving path): `users` real threads
// each read their own pre-warmed 16-block file through RequestDispatcher
// sessions, so concurrent requests group-commit into cross-file
// level-scan groups of up to B = 32. The per-request baseline serves the
// identical request multiset one request at a time (round-robin over
// users, the RunConcurrently interleave). All times are virtual disk ms;
// requests/sec is requests per virtual second.
void RunDispatchSweep(benchmark::State& state, uint64_t users) {
  constexpr uint64_t kFileBlocks = 16;
  // Store B = dispatcher max_batch: groups can hold every user's
  // outstanding request up to 128 (the agent-buffer envelope of the
  // Figure 12 sweep), so batch fill scales with the population.
  const uint64_t kBuffer = std::min<uint64_t>(128, std::max<uint64_t>(32, users));
  for (auto _ : state) {
    const uint64_t requests = users * kFileBlocks;

    // Per-request serving baseline on a twin system.
    auto serial =
        MakeObliviousSystem(users, kFileBlocks, 9000 + users, kBuffer, true);
    const size_t payload = serial.core->payload_size();
    const auto serial_before = serial.agent->store().stats();
    const double serial_t0 = serial.clock_ms();
    for (uint64_t block = 0; block < kFileBlocks; ++block) {
      for (uint64_t u = 0; u < users; ++u) {
        if (!serial.agent->Read(serial.files[u], block * payload, payload)
                 .ok()) {
          std::abort();
        }
      }
    }
    const double serial_ms = serial.clock_ms() - serial_t0;
    const uint64_t serial_scans =
        serial.agent->store().stats().scan_passes - serial_before.scan_passes;

    // Dispatched serving: one thread per user, group commit up to B.
    auto sys =
        MakeObliviousSystem(users, kFileBlocks, 9000 + users, kBuffer, true);
    agent::DispatcherOptions options;
    options.max_batch = kBuffer;
    // Wide wall-clock window: group composition then depends on the
    // deterministic fill target (min(open sessions, B)), not on CI
    // scheduling jitter; under load the target is reached long before
    // the window, so the wall cost is nil.
    options.commit_window = std::chrono::milliseconds(50);
    options.clock_fn = [&sys] { return sys.clock_ms(); };
    const auto before = sys.agent->store().stats();
    const double t0 = sys.clock_ms();
    agent::RequestDispatcher dispatcher(sys.agent.get(), options);
    {
      std::vector<std::unique_ptr<agent::RequestDispatcher::Session>> sessions;
      for (uint64_t u = 0; u < users; ++u) {
        sessions.push_back(dispatcher.OpenSession());
      }
      std::vector<std::function<Status()>> tasks;
      for (uint64_t u = 0; u < users; ++u) {
        tasks.push_back([&, u]() -> Status {
          for (uint64_t block = 0; block < kFileBlocks; ++block) {
            STEGHIDE_RETURN_IF_ERROR(
                sessions[u]->Read(sys.files[u], block * payload, payload)
                    .status());
          }
          return Status::OK();
        });
      }
      for (const Status& status : workload::RunOnThreads(std::move(tasks))) {
        if (!status.ok()) std::abort();
      }
    }
    dispatcher.Stop();
    const double dispatch_ms = sys.clock_ms() - t0;
    const uint64_t scans =
        sys.agent->store().stats().scan_passes - before.scan_passes;
    const agent::DispatcherStats dstats = dispatcher.stats();

    state.counters["users"] = static_cast<double>(users);
    state.counters["requests"] = static_cast<double>(requests);
    state.counters["virtual_ms"] = dispatch_ms;
    state.counters["serial_virtual_ms"] = serial_ms;
    state.counters["requests_per_vsec"] =
        static_cast<double>(requests) / (dispatch_ms / 1e3);
    state.counters["serial_requests_per_vsec"] =
        static_cast<double>(requests) / (serial_ms / 1e3);
    state.counters["speedup_vs_serial"] = serial_ms / dispatch_ms;
    state.counters["mean_batch_fill"] = dstats.MeanFill();
    state.counters["max_batch_fill"] = static_cast<double>(dstats.max_fill);
    state.counters["scan_passes"] = static_cast<double>(scans);
    state.counters["serial_scan_passes"] = static_cast<double>(serial_scans);
    state.counters["p50_latency_ms"] = dstats.p50_latency_ms;
    state.counters["p99_latency_ms"] = dstats.p99_latency_ms;
    // Retrieval vs re-order split (Figure 12(b) axis): the re-order work
    // is identical on both paths, so it bounds the speedup batching can
    // deliver.
    const auto dst = sys.agent->store().stats();
    const auto sst = serial.agent->store().stats();
    state.counters["retrieve_ms"] = dst.retrieve_ms - before.retrieve_ms;
    state.counters["sort_ms"] = dst.sort_ms - before.sort_ms;
    state.counters["serial_retrieve_ms"] =
        sst.retrieve_ms - serial_before.retrieve_ms;
    state.counters["serial_sort_ms"] = sst.sort_ms - serial_before.sort_ms;
  }
}

}  // namespace
}  // namespace steghide::bench

int main(int argc, char** argv) {
  using namespace steghide::bench;
  for (SystemKind kind : kAllSystems) {
    for (uint64_t mb : {2, 4, 6, 8, 10}) {
      benchmark::RegisterBenchmark(
          (std::string("Fig10a/") + SystemName(kind) +
           "/file_mb:" + std::to_string(mb)).c_str(),
          [kind, mb](benchmark::State& s) { RunFileSizeSweep(s, kind, mb); })
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }
  for (SystemKind kind : kAllSystems) {
    for (uint64_t users : {1, 2, 4, 8, 16, 32}) {
      benchmark::RegisterBenchmark(
          (std::string("Fig10b/") + SystemName(kind) +
           "/users:" + std::to_string(users)).c_str(),
          [kind, users](benchmark::State& s) {
            RunConcurrencySweep(s, kind, users);
          })
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }
  // Multi-threaded dispatcher sweep: user counts past the paper's 32,
  // dispatched vs per-request serving on the oblivious system.
  for (uint64_t users : {8, 32, 128, 256}) {
    benchmark::RegisterBenchmark(
        ("Fig10bDispatch/users:" + std::to_string(users)).c_str(),
        [users](benchmark::State& s) { RunDispatchSweep(s, users); })
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
  return RunBenchmarks(argc, argv);
}
