// E10/E11: operationalises Definition 1 (§3.2.4). An attacker armed with
// chi-square and KS tests compares a suspect observation against a
// dummy-only reference:
//
//   UpdateAnalysis/StegHide     hot-block updates hidden by Figure 6
//                               -> expect distinguished = 0
//   UpdateAnalysis/StegFS2003   same workload on the 2003 baseline
//                               -> expect distinguished = 1
//   TrafficAnalysis/Oblivious   hot reads through the oblivious store
//                               -> expect distinguished = 0
//   TrafficAnalysis/Direct      hot reads at fixed locations
//                               -> expect distinguished = 1
//
// Counters: distinguished (0/1), chi2_p, ks_p.

#include <benchmark/benchmark.h>

#include "bench/harness.h"

#include "agent/volatile_agent.h"
#include "analysis/distinguisher.h"
#include "analysis/snapshot_diff.h"
#include "baseline/stegfs2003.h"
#include "oblivious/oblivious_store.h"
#include "storage/mem_block_device.h"
#include "storage/snapshot.h"
#include "storage/trace_device.h"
#include "util/random.h"

namespace steghide::bench {
namespace {

constexpr uint64_t kBlocks = 2048;
constexpr int kRounds = 120;

analysis::DistinguisherOptions Opts() {
  analysis::DistinguisherOptions opts;
  opts.alpha = 0.01;
  opts.num_bins = 16;
  return opts;
}

void ReportVerdict(benchmark::State& state,
                   const analysis::DistinguisherVerdict& verdict) {
  state.counters["distinguished"] = verdict.distinguished ? 1.0 : 0.0;
  state.counters["chi2_p"] = verdict.position_chi2.p_value;
  state.counters["ks_p"] = verdict.position_ks.p_value;
}

std::vector<uint64_t> StegHideUpdateCampaign(uint64_t seed,
                                             int real_per_round) {
  storage::MemBlockDevice dev(kBlocks, 4096);
  stegfs::StegFsCore core(&dev, stegfs::StegFsOptions{seed, true});
  if (!core.Format().ok()) std::abort();
  agent::VolatileAgent agent(&core);
  if (!agent.CreateDummyFile("u", 600).ok()) std::abort();
  auto id = agent.CreateHiddenFile("u");
  if (!id.ok()) std::abort();
  const size_t payload = core.payload_size();
  if (!agent.Write(*id, 0, Bytes(payload * 200, 1)).ok()) std::abort();

  analysis::UpdateAnalysisObserver observer(kBlocks);
  auto prev = storage::Snapshot::Capture(dev);
  const Bytes fresh(payload, 0x42);
  for (int round = 0; round < kRounds; ++round) {
    for (int op = 0; op < 5; ++op) {
      if (op < real_per_round) {
        // Worst case: one hot logical block, as in a repeated table write.
        if (!agent.Write(*id, 3 * payload, fresh).ok()) std::abort();
      } else {
        if (!agent.IdleDummyUpdates(1).ok()) std::abort();
      }
    }
    auto next = storage::Snapshot::Capture(dev);
    if (!observer.ObserveDiff(*prev, *next).ok()) std::abort();
    prev = std::move(next);
  }
  return observer.counts();
}

void BM_UpdateStegHide(benchmark::State& state) {
  for (auto _ : state) {
    const auto reference = StegHideUpdateCampaign(1, 0);
    const auto suspect = StegHideUpdateCampaign(2, 2);
    ReportVerdict(state, analysis::DistinguishUpdateCounts(suspect, reference,
                                                           Opts()));
  }
}

void BM_UpdateStegFs2003(benchmark::State& state) {
  for (auto _ : state) {
    storage::MemBlockDevice dev(kBlocks, 4096);
    stegfs::StegFsCore core(&dev, stegfs::StegFsOptions{3, true});
    if (!core.Format().ok()) std::abort();
    baseline::StegFs2003 fs(&core);
    auto id = fs.CreateFile();
    if (!id.ok()) std::abort();
    const size_t payload = core.payload_size();
    if (!fs.Write(*id, 0, Bytes(payload * 200, 1)).ok()) std::abort();

    analysis::UpdateAnalysisObserver observer(kBlocks);
    auto prev = storage::Snapshot::Capture(dev);
    const Bytes fresh(payload, 0x42);
    for (int round = 0; round < kRounds; ++round) {
      for (int op = 0; op < 2; ++op) {
        if (!fs.UpdateBlock(*id, 3, fresh.data()).ok()) std::abort();
      }
      auto next = storage::Snapshot::Capture(dev);
      if (!observer.ObserveDiff(*prev, *next).ok()) std::abort();
      prev = std::move(next);
    }
    const auto reference = StegHideUpdateCampaign(4, 0);
    ReportVerdict(state, analysis::DistinguishUpdateCounts(
                             observer.counts(), reference, Opts()));
  }
}

storage::IoTrace ObliviousReadCampaign(uint64_t seed, bool hot) {
  storage::MemBlockDevice mem(1024, 4096);
  storage::TraceBlockDevice traced(&mem);
  oblivious::ObliviousStoreOptions opts;
  opts.buffer_blocks = 8;
  opts.capacity_blocks = 256;
  opts.partition_base = 0;
  opts.scratch_base = 600;
  opts.drbg_seed = seed;
  auto store = oblivious::ObliviousStore::Create(&traced, opts);
  if (!store.ok()) std::abort();
  Bytes payload((*store)->payload_size(), 1);
  for (uint64_t id = 0; id < 256; ++id) {
    if (!(*store)->Insert(id, payload.data()).ok()) std::abort();
  }
  traced.ClearTrace();
  Rng rng(seed);
  Bytes out((*store)->payload_size());
  for (int i = 0; i < 1500; ++i) {
    if (hot && rng.Bernoulli(0.7)) {
      if (!(*store)->Read(7, out.data()).ok()) std::abort();
    } else {
      if (!(*store)->DummyRead().ok()) std::abort();
    }
  }
  return traced.trace();
}

void BM_TrafficOblivious(benchmark::State& state) {
  for (auto _ : state) {
    const auto reference = ObliviousReadCampaign(10, false);
    const auto suspect = ObliviousReadCampaign(20, true);
    analysis::DistinguisherOptions opts = Opts();
    opts.num_bins = 32;
    ReportVerdict(state, analysis::DistinguishTraces(suspect, reference,
                                                     1024, opts));
  }
}

void BM_TrafficDirect(benchmark::State& state) {
  for (auto _ : state) {
    storage::MemBlockDevice mem(1024, 4096);
    storage::TraceBlockDevice traced(&mem);
    Bytes buf(4096);
    Rng rng(30);
    storage::IoTrace reference;
    for (int i = 0; i < 4000; ++i) {
      if (!traced.ReadBlock(rng.Uniform(1024), buf.data()).ok()) std::abort();
    }
    reference = traced.trace();
    traced.ClearTrace();
    for (int i = 0; i < 4000; ++i) {
      const uint64_t b = rng.Bernoulli(0.7) ? 42 : rng.Uniform(1024);
      if (!traced.ReadBlock(b, buf.data()).ok()) std::abort();
    }
    analysis::DistinguisherOptions opts = Opts();
    opts.num_bins = 32;
    ReportVerdict(state, analysis::DistinguishTraces(traced.trace(),
                                                     reference, 1024, opts));
  }
}

}  // namespace
}  // namespace steghide::bench

int main(int argc, char** argv) {
  using namespace steghide::bench;
  benchmark::RegisterBenchmark("Definition1/UpdateAnalysis/StegHide",
                               BM_UpdateStegHide)
      ->Iterations(1)
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark("Definition1/UpdateAnalysis/StegFS2003",
                               BM_UpdateStegFs2003)
      ->Iterations(1)
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark("Definition1/TrafficAnalysis/ObliviousStore",
                               BM_TrafficOblivious)
      ->Iterations(1)
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark("Definition1/TrafficAnalysis/DirectReads",
                               BM_TrafficDirect)
      ->Iterations(1)
      ->Unit(benchmark::kMillisecond);
  return RunBenchmarks(argc, argv);
}
