// Reproduces Figure 12 of the paper: oblivious-storage performance.
//  (a) per-block access time vs buffer size, against plain StegFS (E7)
//  (b) split of the access time into retrieving vs sorting overhead (E8)
//
// Same N/B scaling as bench_table4 (see DESIGN.md §1). Counters report
// virtual milliseconds:
//   obli_access_ms    mean time per oblivious read
//   stegfs_access_ms  mean time for one random StegFS block read
//   slowdown_vs_stegfs  Fig 12(a)'s 5-12x band
//   retrieve_frac / sort_frac  Fig 12(b)'s split (sort < 30 %)

#include <benchmark/benchmark.h>

#include "bench/harness.h"

#include "oblivious/oblivious_store.h"
#include "storage/mem_block_device.h"
#include "storage/sim_device.h"
#include "util/random.h"

namespace steghide::bench {
namespace {

constexpr uint64_t kCapacityBlocks = 8192;  // N = 32 MB

void RunObliviousAccess(benchmark::State& state, uint64_t buffer_blocks) {
  for (auto _ : state) {
    const uint64_t hierarchy = 2 * kCapacityBlocks - 2 * buffer_blocks;
    storage::MemBlockDevice mem(hierarchy + kCapacityBlocks + 16, 4096);
    storage::SimBlockDevice sim(&mem, storage::DiskModelParams{});

    oblivious::ObliviousStoreOptions opts;
    opts.buffer_blocks = buffer_blocks;
    opts.capacity_blocks = kCapacityBlocks;
    opts.partition_base = 0;
    opts.scratch_base = hierarchy;
    opts.drbg_seed = 5 + buffer_blocks;
    auto store = oblivious::ObliviousStore::Create(&sim, opts);
    if (!store.ok()) std::abort();
    (*store)->set_clock_fn([&] { return sim.clock_ms(); });

    Bytes payload((*store)->payload_size(), 0x3c);
    for (uint64_t id = 0; id < kCapacityBlocks; ++id) {
      if (!(*store)->Insert(id, payload.data()).ok()) std::abort();
    }
    (*store)->ResetStats();
    const double measure_start = sim.clock_ms();

    // "Reads through the whole oblivious storage" — a full sweep in
    // random order.
    Rng rng(11 + buffer_blocks);
    std::vector<uint64_t> order(kCapacityBlocks);
    for (uint64_t i = 0; i < kCapacityBlocks; ++i) order[i] = i;
    rng.Shuffle(order);
    Bytes out((*store)->payload_size());
    constexpr uint64_t kReads = 2500;  // sampled sweep, same distribution
    for (uint64_t i = 0; i < kReads; ++i) {
      if (!(*store)->Read(order[i % order.size()], out.data()).ok()) {
        std::abort();
      }
    }

    const auto& st = (*store)->stats();
    const double total_ms = sim.clock_ms() - measure_start;
    const double obli_ms = total_ms / static_cast<double>(kReads);

    // Plain StegFS baseline: one uniformly random block read per request
    // on an identical simulated disk.
    storage::MemBlockDevice base_mem(kCapacityBlocks, 4096);
    storage::SimBlockDevice base_sim(&base_mem, storage::DiskModelParams{});
    Bytes blk(4096);
    for (int i = 0; i < 500; ++i) {
      if (!base_sim.ReadBlock(rng.Uniform(kCapacityBlocks), blk.data()).ok()) {
        std::abort();
      }
    }
    const double stegfs_ms = base_sim.clock_ms() / 500.0;

    state.counters["height"] = (*store)->height();
    state.counters["obli_access_ms"] = obli_ms;
    state.counters["stegfs_access_ms"] = stegfs_ms;
    state.counters["slowdown_vs_stegfs"] = obli_ms / stegfs_ms;
    const double accounted = st.retrieve_ms + st.sort_ms;
    state.counters["retrieve_frac"] =
        accounted > 0 ? st.retrieve_ms / accounted : 0.0;
    state.counters["sort_frac"] =
        accounted > 0 ? st.sort_ms / accounted : 0.0;
    state.counters["sort_io_share"] =
        static_cast<double>(st.reorder_reads + st.reorder_writes) /
        static_cast<double>(st.TotalIo());
  }
}

// Batch-size sweep: the same sweep workload served through
// ObliviousStore::MultiRead in groups of k. The per-request touch count
// is unchanged (one slot per non-empty level), so the win shows up as
//  * scan_passes dropping by ~k (one planner/executor sweep per group),
//  * a lower overhead *factor* under charge_index_io (the spilled
//    per-level index is read once per pass instead of once per request),
//  * and fewer virtual ms per read (the elevator-sorted per-level passes
//    amortize seeks on the rotational model).
void RunBatchedAccess(benchmark::State& state, uint64_t buffer_blocks,
                      uint64_t batch_k) {
  for (auto _ : state) {
    const uint64_t hierarchy = 2 * kCapacityBlocks - 2 * buffer_blocks;
    storage::MemBlockDevice mem(hierarchy + kCapacityBlocks + 16, 4096);
    storage::SimBlockDevice sim(&mem, storage::DiskModelParams{});

    oblivious::ObliviousStoreOptions opts;
    opts.buffer_blocks = buffer_blocks;
    opts.capacity_blocks = kCapacityBlocks;
    opts.partition_base = 0;
    opts.scratch_base = hierarchy;
    opts.drbg_seed = 5 + buffer_blocks;
    opts.charge_index_io = true;  // the §5.1.2 spilled-index variant
    auto store = oblivious::ObliviousStore::Create(&sim, opts);
    if (!store.ok()) std::abort();
    (*store)->set_clock_fn([&] { return sim.clock_ms(); });

    Bytes payload((*store)->payload_size(), 0x3c);
    for (uint64_t id = 0; id < kCapacityBlocks; ++id) {
      if (!(*store)->Insert(id, payload.data()).ok()) std::abort();
    }
    (*store)->ResetStats();
    const double measure_start = sim.clock_ms();

    // Identical request distribution for every k: uniform random ids,
    // grouped batch_k at a time.
    Rng rng(17 + buffer_blocks);
    constexpr uint64_t kReads = 2048;  // divisible by every swept k
    std::vector<uint64_t> ids(batch_k);
    Bytes outs(batch_k * (*store)->payload_size());
    for (uint64_t done = 0; done < kReads; done += batch_k) {
      for (uint64_t i = 0; i < batch_k; ++i) {
        ids[i] = rng.Uniform(kCapacityBlocks);
      }
      if (!(*store)->MultiRead(ids, outs.data()).ok()) std::abort();
    }

    const auto& st = (*store)->stats();
    const double total_ms = sim.clock_ms() - measure_start;
    state.counters["height"] = (*store)->height();
    state.counters["batch_k"] = static_cast<double>(batch_k);
    state.counters["obli_access_ms"] = total_ms / static_cast<double>(kReads);
    state.counters["scan_passes"] = static_cast<double>(st.scan_passes);
    state.counters["batched_requests"] =
        static_cast<double>(st.batched_requests);
    state.counters["probes_saved"] = static_cast<double>(st.probes_saved);
    state.counters["overhead_factor"] = st.OverheadFactor();
    state.counters["probe_index_io_per_read"] =
        static_cast<double>(st.level_probe_reads + st.index_io) /
        static_cast<double>(st.user_reads);
  }
}

}  // namespace
}  // namespace steghide::bench

int main(int argc, char** argv) {
  using namespace steghide::bench;
  for (uint64_t buffer : {64, 128, 256, 512, 1024}) {
    benchmark::RegisterBenchmark(
        ("Fig12/buffer_blocks:" + std::to_string(buffer) +
         "/paper_buffer_mb:" + std::to_string(buffer / 8)).c_str(),
        [buffer](benchmark::State& s) { RunObliviousAccess(s, buffer); })
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
  // k ∈ {1, 4, 16, B}: k = 1 is the legacy one-request-per-pass cost,
  // k = B the largest group one buffer admits.
  constexpr uint64_t kBatchBuffer = 256;
  for (uint64_t k : {uint64_t{1}, uint64_t{4}, uint64_t{16}, kBatchBuffer}) {
    benchmark::RegisterBenchmark(
        ("Fig12Batch/buffer_blocks:" + std::to_string(kBatchBuffer) +
         "/batch_k:" + std::to_string(k)).c_str(),
        [k](benchmark::State& s) { RunBatchedAccess(s, kBatchBuffer, k); })
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
  return RunBenchmarks(argc, argv);
}
