// Reproduces Table 4 of the paper: oblivious-storage height and overhead
// factor as a function of the agent's buffer size (E6).
//
// Scale note (DESIGN.md §1): the paper used N = 1 GB with buffers of
// 8-128 MB. The mechanism depends only on the ratio N/B (height
// k = log2(N/B)), so we run N = 32 MB with buffers 256 KB - 4 MB, which
// yields the same N/B sweep 128...8 and therefore the same heights 7...3
// and overhead factors ~10k.
//
// Counters: height, overhead_factor (mean device I/Os per request;
// Table 4 reports 10k), plus the analytic 10k reference.

#include <benchmark/benchmark.h>

#include "bench/harness.h"

#include "oblivious/oblivious_store.h"
#include "storage/mem_block_device.h"
#include "storage/sim_device.h"
#include "util/random.h"

namespace steghide::bench {
namespace {

constexpr uint64_t kCapacityBlocks = 8192;  // N = 32 MB of 4 KB blocks

void RunOverhead(benchmark::State& state, uint64_t buffer_blocks) {
  for (auto _ : state) {
    const uint64_t hierarchy = 2 * kCapacityBlocks - 2 * buffer_blocks;
    storage::MemBlockDevice mem(hierarchy + kCapacityBlocks + 16, 4096);
    storage::SimBlockDevice sim(&mem, storage::DiskModelParams{});

    oblivious::ObliviousStoreOptions opts;
    opts.buffer_blocks = buffer_blocks;
    opts.capacity_blocks = kCapacityBlocks;
    opts.partition_base = 0;
    opts.scratch_base = hierarchy;
    opts.drbg_seed = 42 + buffer_blocks;
    auto store = oblivious::ObliviousStore::Create(&sim, opts);
    if (!store.ok()) std::abort();
    (*store)->set_clock_fn([&] { return sim.clock_ms(); });

    // Fill the store to capacity (the paper reads through a full store).
    Bytes payload((*store)->payload_size(), 0x5a);
    for (uint64_t id = 0; id < kCapacityBlocks; ++id) {
      if (!(*store)->Insert(id, payload.data()).ok()) std::abort();
    }
    (*store)->ResetStats();

    // Steady-state random reads.
    Rng rng(7 + buffer_blocks);
    Bytes out((*store)->payload_size());
    for (int i = 0; i < 2000; ++i) {
      if (!(*store)->Read(rng.Uniform(kCapacityBlocks), out.data()).ok()) {
        std::abort();
      }
    }

    const auto& st = (*store)->stats();
    const int k = (*store)->height();
    state.counters["height"] = k;
    state.counters["overhead_factor"] = st.OverheadFactor();
    state.counters["paper_overhead_10k"] = 10.0 * k;
    state.counters["probe_io_per_read"] =
        static_cast<double>(st.level_probe_reads) /
        static_cast<double>(st.user_reads);
    state.counters["sort_io_per_read"] =
        static_cast<double>(st.reorder_reads + st.reorder_writes) /
        static_cast<double>(st.user_reads);
  }
}

// Batch-size sweep over the same steady-state workload, spilled-index
// variant (charge_index_io): the Table-4 overhead factor falls with k
// because the per-level index read amortizes over the group while the
// slot touches stay one per level per request.
void RunBatchedOverhead(benchmark::State& state, uint64_t buffer_blocks,
                        uint64_t batch_k) {
  for (auto _ : state) {
    const uint64_t hierarchy = 2 * kCapacityBlocks - 2 * buffer_blocks;
    storage::MemBlockDevice mem(hierarchy + kCapacityBlocks + 16, 4096);
    storage::SimBlockDevice sim(&mem, storage::DiskModelParams{});

    oblivious::ObliviousStoreOptions opts;
    opts.buffer_blocks = buffer_blocks;
    opts.capacity_blocks = kCapacityBlocks;
    opts.partition_base = 0;
    opts.scratch_base = hierarchy;
    opts.drbg_seed = 42 + buffer_blocks;
    opts.charge_index_io = true;
    auto store = oblivious::ObliviousStore::Create(&sim, opts);
    if (!store.ok()) std::abort();
    (*store)->set_clock_fn([&] { return sim.clock_ms(); });

    Bytes payload((*store)->payload_size(), 0x5a);
    for (uint64_t id = 0; id < kCapacityBlocks; ++id) {
      if (!(*store)->Insert(id, payload.data()).ok()) std::abort();
    }
    (*store)->ResetStats();

    Rng rng(7 + buffer_blocks);
    constexpr uint64_t kReads = 2048;
    std::vector<uint64_t> ids(batch_k);
    Bytes outs(batch_k * (*store)->payload_size());
    for (uint64_t done = 0; done < kReads; done += batch_k) {
      for (uint64_t i = 0; i < batch_k; ++i) {
        ids[i] = rng.Uniform(kCapacityBlocks);
      }
      if (!(*store)->MultiRead(ids, outs.data()).ok()) std::abort();
    }

    const auto& st = (*store)->stats();
    const int k = (*store)->height();
    state.counters["height"] = k;
    state.counters["batch_k"] = static_cast<double>(batch_k);
    state.counters["overhead_factor"] = st.OverheadFactor();
    state.counters["scan_passes"] = static_cast<double>(st.scan_passes);
    state.counters["probes_saved"] = static_cast<double>(st.probes_saved);
    state.counters["index_io_per_read"] =
        static_cast<double>(st.index_io) / static_cast<double>(st.user_reads);
  }
}

}  // namespace
}  // namespace steghide::bench

int main(int argc, char** argv) {
  using namespace steghide::bench;
  // Same N/B ratios as the paper's 8M..128M buffers against 1 GB.
  for (uint64_t buffer : {64, 128, 256, 512, 1024}) {
    benchmark::RegisterBenchmark(
        ("Table4/buffer_blocks:" + std::to_string(buffer) +
         "/paper_buffer_mb:" + std::to_string(buffer / 8)).c_str(),
        [buffer](benchmark::State& s) { RunOverhead(s, buffer); })
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
  constexpr uint64_t kBatchBuffer = 256;
  for (uint64_t k : {uint64_t{1}, uint64_t{4}, uint64_t{16}, kBatchBuffer}) {
    benchmark::RegisterBenchmark(
        ("Table4Batch/buffer_blocks:" + std::to_string(kBatchBuffer) +
         "/batch_k:" + std::to_string(k)).c_str(),
        [k](benchmark::State& s) { RunBatchedOverhead(s, kBatchBuffer, k); })
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
  return RunBenchmarks(argc, argv);
}
