// E12: ablations over the design choices called out in DESIGN.md and in
// the paper's future-work section (§5.2 mentions relaxing the security
// requirement to cut cost; §4.1.5 trades space for update throughput).
//
//   Relocation/{on,off}     in-place updates (off = StegFS 2003) are ~2x
//                           cheaper but break Definition 1 (see
//                           bench_security_distinguisher).
//   DummyRate/idle_ratio:R  idle dummy updates per real update: pure
//                           cover-traffic cost.
//   IndexIo/{memory,disk}   per-level hash index in agent memory vs
//                           spilled to disk (§5.1.2's fallback).
//   ObliSkew/theta:T        oblivious-store buffer hit rate under Zipf
//                           request skew — why the multi-tier cache keeps
//                           hot workloads cheap.

#include <benchmark/benchmark.h>

#include "bench/harness.h"

#include "bench/common.h"
#include "oblivious/oblivious_store.h"
#include "workload/file_population.h"
#include "workload/update_stream.h"
#include "workload/zipf.h"

namespace steghide::bench {
namespace {

constexpr uint64_t kVolumeBlocks = 16384;

void BM_Relocation(benchmark::State& state, bool relocate) {
  for (auto _ : state) {
    Rng rng(1);
    auto sys = MakeSystem(
        relocate ? SystemKind::kStegHideStar : SystemKind::kStegFs2003,
        kVolumeBlocks, 11);
    auto pop = workload::CreatePopulationBytes(
        *sys.adapter, rng, kVolumeBlocks / 4 * 4080, 4ull << 20);
    if (!pop.ok()) std::abort();
    const auto ops = workload::MakeUniformUpdateStream(
        *pop, sys.adapter->payload_size(), rng, 200, 1);
    const double t0 = sys.clock_ms();
    if (!workload::ApplyUpdateStream(*sys.adapter, ops, rng).ok()) {
      std::abort();
    }
    state.counters["mean_update_ms"] = (sys.clock_ms() - t0) / 200.0;
  }
}

void BM_DummyRate(benchmark::State& state, int idle_per_real) {
  for (auto _ : state) {
    Rng rng(2);
    auto sys = MakeSystem(SystemKind::kStegHideStar, kVolumeBlocks, 13);
    auto pop = workload::CreatePopulationBytes(
        *sys.adapter, rng, kVolumeBlocks / 4 * 4080, 4ull << 20);
    if (!pop.ok()) std::abort();
    const auto ops = workload::MakeUniformUpdateStream(
        *pop, sys.adapter->payload_size(), rng, 150, 1);
    const double t0 = sys.clock_ms();
    for (const auto& op : ops) {
      if (!workload::ApplyUpdate(*sys.adapter, op, rng).ok()) std::abort();
      if (!sys.nvagent->IdleDummyUpdates(idle_per_real).ok()) std::abort();
    }
    state.counters["ms_per_real_update"] =
        (sys.clock_ms() - t0) / static_cast<double>(ops.size());
  }
}

void BM_IndexIo(benchmark::State& state, bool on_disk) {
  for (auto _ : state) {
    constexpr uint64_t kN = 2048;
    constexpr uint64_t kB = 64;
    storage::MemBlockDevice mem(2 * kN + kN, 4096);
    storage::SimBlockDevice sim(&mem, storage::DiskModelParams{});
    oblivious::ObliviousStoreOptions opts;
    opts.buffer_blocks = kB;
    opts.capacity_blocks = kN;
    opts.partition_base = 0;
    opts.scratch_base = 2 * kN - 2 * kB;
    opts.charge_index_io = on_disk;
    opts.drbg_seed = 17;
    auto store = oblivious::ObliviousStore::Create(&sim, opts);
    if (!store.ok()) std::abort();
    (*store)->set_clock_fn([&] { return sim.clock_ms(); });

    Bytes payload((*store)->payload_size(), 1);
    for (uint64_t id = 0; id < kN; ++id) {
      if (!(*store)->Insert(id, payload.data()).ok()) std::abort();
    }
    (*store)->ResetStats();
    const double t0 = sim.clock_ms();
    Rng rng(19);
    Bytes out((*store)->payload_size());
    for (int i = 0; i < 1000; ++i) {
      if (!(*store)->Read(rng.Uniform(kN), out.data()).ok()) std::abort();
    }
    state.counters["access_ms"] = (sim.clock_ms() - t0) / 1000.0;
    state.counters["overhead_factor"] = (*store)->stats().OverheadFactor();
  }
}

void BM_ObliSkew(benchmark::State& state, double theta) {
  for (auto _ : state) {
    constexpr uint64_t kN = 2048;
    constexpr uint64_t kB = 128;
    storage::MemBlockDevice mem(2 * kN + kN, 4096);
    storage::SimBlockDevice sim(&mem, storage::DiskModelParams{});
    oblivious::ObliviousStoreOptions opts;
    opts.buffer_blocks = kB;
    opts.capacity_blocks = kN;
    opts.partition_base = 0;
    opts.scratch_base = 2 * kN - 2 * kB;
    opts.drbg_seed = 23;
    auto store = oblivious::ObliviousStore::Create(&sim, opts);
    if (!store.ok()) std::abort();
    (*store)->set_clock_fn([&] { return sim.clock_ms(); });

    Bytes payload((*store)->payload_size(), 1);
    for (uint64_t id = 0; id < kN; ++id) {
      if (!(*store)->Insert(id, payload.data()).ok()) std::abort();
    }
    (*store)->ResetStats();
    const double t0 = sim.clock_ms();
    workload::ZipfGenerator zipf(kN, theta);
    Rng rng(29);
    Bytes out((*store)->payload_size());
    for (int i = 0; i < 1500; ++i) {
      if (!(*store)->Read(zipf.Next(rng), out.data()).ok()) std::abort();
    }
    const auto& st = (*store)->stats();
    state.counters["access_ms"] = (sim.clock_ms() - t0) / 1500.0;
    state.counters["buffer_hit_rate"] =
        static_cast<double>(st.buffer_hits) /
        static_cast<double>(st.user_reads);
  }
}

}  // namespace
}  // namespace steghide::bench

int main(int argc, char** argv) {
  using namespace steghide::bench;
  for (bool on : {true, false}) {
    benchmark::RegisterBenchmark(
        (std::string("Ablation/Relocation/") + (on ? "on" : "off_2003")).c_str(),
        [on](benchmark::State& s) { BM_Relocation(s, on); })
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
  for (int rate : {0, 1, 2, 4}) {
    benchmark::RegisterBenchmark(
        ("Ablation/DummyRate/idle_per_real:" + std::to_string(rate)).c_str(),
        [rate](benchmark::State& s) { BM_DummyRate(s, rate); })
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
  for (bool disk : {false, true}) {
    benchmark::RegisterBenchmark(
        (std::string("Ablation/IndexIo/") + (disk ? "on_disk" : "in_memory")).c_str(),
        [disk](benchmark::State& s) { BM_IndexIo(s, disk); })
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
  for (double theta : {0.0, 0.8, 1.2}) {
    benchmark::RegisterBenchmark(
        ("Ablation/ObliSkew/theta_x10:" +
         std::to_string(static_cast<int>(theta * 10))).c_str(),
        [theta](benchmark::State& s) { BM_ObliSkew(s, theta); })
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
  return RunBenchmarks(argc, argv);
}
