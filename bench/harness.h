#ifndef STEGHIDE_BENCH_HARNESS_H_
#define STEGHIDE_BENCH_HARNESS_H_

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <sstream>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace_export.h"
#include "obs/trace_log.h"

namespace steghide::bench {

/// Shared entry point for every bench binary. Handles the flags the
/// Google Benchmark flag parser does not know about:
///
///   --json=<path>     write the per-benchmark counters (the virtual-
///                     disk-ms numbers behind each figure point) as
///                     JSON, in addition to the normal console output.
///                     This is what CI archives for regression tracking.
///   --trace=<path>    arm the process-wide obs::TraceLog and write the
///                     collected request/span timeline as Chrome
///                     trace_event JSON (Perfetto-loadable) on exit.
///                     Benches that support tracing clear + re-arm the
///                     log per instrumented run, so the export shows the
///                     last instrumented configuration.
///   --metrics=<path>  register instrumented runs against the
///                     process-wide obs::Registry and write the final
///                     latched name->value snapshot as JSON on exit.
///
/// Mains register their benchmarks, then `return RunBenchmarks(argc,
/// argv);`.

namespace internal {
inline std::string g_trace_path;    // NOLINT: set once in RunBenchmarks
inline std::string g_metrics_path;  // NOLINT
}  // namespace internal

/// Span/timeline sink for instrumented runs; null unless --trace was
/// given, so benches wire observability only when asked.
inline obs::TraceLog* GlobalTrace() {
  return internal::g_trace_path.empty() ? nullptr : &obs::TraceLog::Default();
}

/// Metrics sink for instrumented runs; null unless --metrics was given.
inline obs::Registry* GlobalMetrics() {
  return internal::g_metrics_path.empty() ? nullptr
                                          : &obs::Registry::Default();
}
class JsonTeeReporter : public benchmark::ConsoleReporter {
 public:
  struct Record {
    std::string name;
    int64_t iterations = 0;
    double real_time = 0.0;
    std::string time_unit;
    std::vector<std::pair<std::string, double>> counters;
  };

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      Record rec;
      rec.name = run.benchmark_name();
      rec.iterations = run.iterations;
      rec.real_time = run.GetAdjustedRealTime();
      rec.time_unit = benchmark::GetTimeUnitString(run.time_unit);
      for (const auto& [key, counter] : run.counters) {
        rec.counters.emplace_back(key, static_cast<double>(counter));
      }
      records_.push_back(std::move(rec));
    }
    benchmark::ConsoleReporter::ReportRuns(runs);
  }

  /// Writes `{"benchmarks": [...]}`. Returns false on I/O failure.
  bool WriteJson(const std::string& path) const {
    std::ofstream out(path);
    if (!out) return false;
    out << "{\n  \"benchmarks\": [\n";
    for (size_t i = 0; i < records_.size(); ++i) {
      const Record& rec = records_[i];
      out << "    {\n      \"name\": \"" << Escape(rec.name) << "\",\n"
          << "      \"iterations\": " << rec.iterations << ",\n"
          << "      \"real_time\": " << Number(rec.real_time) << ",\n"
          << "      \"time_unit\": \"" << rec.time_unit << "\",\n"
          << "      \"counters\": {";
      for (size_t c = 0; c < rec.counters.size(); ++c) {
        out << (c == 0 ? "\n" : ",\n") << "        \""
            << Escape(rec.counters[c].first)
            << "\": " << Number(rec.counters[c].second);
      }
      out << (rec.counters.empty() ? "}" : "\n      }") << "\n    }"
          << (i + 1 < records_.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    return out.good();
  }

 private:
  static std::string Escape(const std::string& s) {
    std::string escaped;
    for (char c : s) {
      if (c == '"' || c == '\\') escaped.push_back('\\');
      escaped.push_back(c);
    }
    return escaped;
  }

  /// JSON has no inf/nan literals; clamp them to null-safe 0.
  static std::string Number(double v) {
    if (!std::isfinite(v)) return "0";
    std::ostringstream os;
    os << std::setprecision(12) << v;
    return os.str();
  }

  std::vector<Record> records_;
};

inline int RunBenchmarks(int argc, char** argv) {
  std::string json_path;
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    constexpr const char kJsonFlag[] = "--json=";
    constexpr const char kTraceFlag[] = "--trace=";
    constexpr const char kMetricsFlag[] = "--metrics=";
    if (std::strncmp(argv[i], kJsonFlag, sizeof(kJsonFlag) - 1) == 0) {
      json_path = argv[i] + sizeof(kJsonFlag) - 1;
    } else if (std::strncmp(argv[i], kTraceFlag, sizeof(kTraceFlag) - 1) ==
               0) {
      internal::g_trace_path = argv[i] + sizeof(kTraceFlag) - 1;
    } else if (std::strncmp(argv[i], kMetricsFlag,
                            sizeof(kMetricsFlag) - 1) == 0) {
      internal::g_metrics_path = argv[i] + sizeof(kMetricsFlag) - 1;
    } else {
      args.push_back(argv[i]);
    }
  }
  int filtered_argc = static_cast<int>(args.size());
  benchmark::Initialize(&filtered_argc, args.data());

  JsonTeeReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  if (!json_path.empty() && !reporter.WriteJson(json_path)) {
    std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
    return 1;
  }
  if (obs::TraceLog* trace = GlobalTrace(); trace != nullptr) {
    if (!obs::WriteChromeTrace(*trace, internal::g_trace_path)) {
      std::fprintf(stderr, "failed to write %s\n",
                   internal::g_trace_path.c_str());
      return 1;
    }
  }
  if (obs::Registry* registry = GlobalMetrics(); registry != nullptr) {
    if (!obs::WriteMetricsJson(*registry, internal::g_metrics_path)) {
      std::fprintf(stderr, "failed to write %s\n",
                   internal::g_metrics_path.c_str());
      return 1;
    }
  }
  return 0;
}

}  // namespace steghide::bench

#endif  // STEGHIDE_BENCH_HARNESS_H_
