// Observability overhead guard: the instrumented hot path must stay
// within a few percent of an uninstrumented twin.
//
// The migration to obs:: cells left instruments compiled
// unconditionally into the serving hot paths — a cache-hit read now
// costs its map lookup + payload copy PLUS two CounterCell bumps and
// one disabled-ScopedSpan check. There is deliberately no build-time
// off switch, so this bench is the guard that the "off" cost (registry
// wired or not, trace log disabled — the production default) stays
// noise-level: it measures a synthetic twin of the block-cache hit path
// with and without exactly the instrumentation the real path carries,
// min-of-rounds on both sides, and ABORTS when the relative overhead
// exceeds the budget. Running under `ctest -L bench_smoke` makes the
// regression un-mergeable rather than merely visible.
//
// Wall-clock is the measured quantity here — the one bench where that
// is correct: instrument cost is real CPU, invisible to the virtual
// disk clock.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <list>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "bench/harness.h"
#include "obs/metrics.h"
#include "obs/trace_log.h"

namespace steghide::bench {
namespace {

// Sanitizers inflate atomic ops by an order of magnitude; the guard
// then checks only that instrumentation is not catastrophically slow.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
constexpr double kMaxOverhead = 0.50;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
constexpr double kMaxOverhead = 0.50;
#else
constexpr double kMaxOverhead = 0.05;
#endif
#else
constexpr double kMaxOverhead = 0.05;
#endif

constexpr size_t kPayload = 4096;
constexpr size_t kBlocks = 64;
constexpr int kIters = 20000;
constexpr int kRounds = 12;

// The shared "service" work of one cache-hit read, mirroring
// BlockCache::ReadBlock's hit branch: shard mutex, map lookup, payload
// copy out of the cached entry, LRU touch. Both twins run exactly this.
struct HitPath {
  struct Entry {
    uint64_t id;
    std::vector<uint8_t> data;
  };
  std::mutex mu;
  std::list<Entry> lru;
  std::unordered_map<uint64_t, std::list<Entry>::iterator> cache;
  std::vector<uint8_t> out = std::vector<uint8_t>(kPayload);

  HitPath() {
    for (uint64_t id = 0; id < kBlocks; ++id) {
      lru.push_front(Entry{id, std::vector<uint8_t>(
                                   kPayload, static_cast<uint8_t>(id))});
      cache.emplace(id, lru.begin());
    }
  }

  void Serve(uint64_t id) {
    std::lock_guard<std::mutex> lock(mu);
    const auto it = cache.find(id);
    std::memcpy(out.data(), it->second->data.data(), kPayload);
    lru.splice(lru.begin(), lru, it->second);
    benchmark::DoNotOptimize(out.data());
  }
};

// One timed burst of the uninstrumented twin.
double PlainRoundMs(HitPath& path) {
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < kIters; ++i) {
    path.Serve(static_cast<uint64_t>(i) % kBlocks);
  }
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

// One timed burst of the instrumented twin: the same serve plus exactly
// what the real hit path carries — cache-hit + user-read counter bumps
// and the disabled-span pointer check (spans live at group granularity
// in the real funnel; the per-hit cost is the inert ScopedSpan).
double InstrumentedRoundMs(HitPath& path, obs::CounterCell& hits,
                           obs::CounterCell& reads, obs::TraceLog* log) {
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < kIters; ++i) {
    obs::ScopedSpan span(log, "cache.hit", 0);
    path.Serve(static_cast<uint64_t>(i) % kBlocks);
    hits.Increment();
    reads.Increment();
  }
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

void ObsOverheadGuard(benchmark::State& state) {
  for (auto _ : state) {
    HitPath plain_path;
    HitPath instr_path;
    obs::Registry registry;
    obs::CounterCell hits, reads;
    obs::Registration reg(&registry);
    reg.Counter("cache.hits", &hits);
    reg.Counter("store.user_reads", &reads);
    obs::TraceLog log;  // wired but disabled: the production default
    log.set_enabled(false);

    // Min-of-rounds on each side absorbs scheduler noise; interleaving
    // the twins keeps thermal/frequency drift symmetric.
    double plain_min = 1e100, instr_min = 1e100;
    for (int round = 0; round < kRounds; ++round) {
      plain_min = std::min(plain_min, PlainRoundMs(plain_path));
      instr_min = std::min(
          instr_min, InstrumentedRoundMs(instr_path, hits, reads, &log));
    }

    const double overhead = (instr_min - plain_min) / plain_min;
    state.counters["plain_ns_per_op"] = plain_min * 1e6 / kIters;
    state.counters["instrumented_ns_per_op"] = instr_min * 1e6 / kIters;
    state.counters["overhead_pct"] = overhead * 100.0;
    state.counters["max_overhead_pct"] = kMaxOverhead * 100.0;

    if (overhead > kMaxOverhead) {
      std::fprintf(stderr,
                   "obs overhead guard FAILED: instrumented hot path is "
                   "%.2f%% slower than the uninstrumented twin "
                   "(budget %.0f%%; plain %.1f ns/op, instrumented "
                   "%.1f ns/op)\n",
                   overhead * 100.0, kMaxOverhead * 100.0,
                   plain_min * 1e6 / kIters, instr_min * 1e6 / kIters);
      std::abort();
    }
    // The counters must actually have counted — a twin that optimized
    // the instruments away would make the guard vacuous.
    if (hits.value() != static_cast<uint64_t>(kIters) * kRounds) {
      std::abort();
    }
  }
}

BENCHMARK(ObsOverheadGuard)->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace steghide::bench

int main(int argc, char** argv) {
  return steghide::bench::RunBenchmarks(argc, argv);
}
