// Bytes-per-cycle microbench for the crypto hot paths: AES-CBC block
// sealing/opening through the BlockCodec batch API and SHA-256, each run
// once with the hardware kernels forced off (impl:scalar) and once with
// the dispatcher's resolved path (impl:accel — identical to scalar on
// CPUs without AES-NI/SHA-NI, in which case accel_speedup hovers at 1).
//
// Unlike the figure benches, the interesting axis here IS wall time —
// cycles spent in the kernels, read from the TSC around the batch call —
// so bytes_per_cycle/accel_speedup are the counters CI archives and
// bench_diff.py gates. Throughput numbers from the virtual disk clock
// never see these cycles (crypto runs off the simulated spindle).

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdint>
#include <map>
#include <string>

#include "bench/harness.h"
#include "crypto/cbc.h"
#include "crypto/cpu_features.h"
#include "crypto/drbg.h"
#include "crypto/sha256.h"
#include "stegfs/block_codec.h"

#if defined(__x86_64__) || defined(_M_X64)
#include <x86intrin.h>
#endif

namespace steghide::bench {
namespace {

/// Monotonic cycle counter: TSC on x86-64, the generic virtual counter
/// on aarch64 (a fixed-frequency timebase — "cycles" are timebase ticks
/// there, which still make scalar-vs-accel ratios meaningful).
inline uint64_t Cycles() {
#if defined(__x86_64__) || defined(_M_X64)
  return __rdtsc();
#elif defined(__aarch64__)
  uint64_t v;
  asm volatile("mrs %0, cntvct_el0" : "=r"(v));
  return v;
#else
  return static_cast<uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
#endif
}

constexpr size_t kBlockSize = 4096;
constexpr size_t kBatchBlocks = 256;  // 1 MB of sealed blocks per call

/// Per-(benchmark, impl) bytes/cycle, kept across registrations so the
/// accel run can report its speedup over the scalar twin (benchmarks run
/// sequentially in one process; scalar registers first).
std::map<std::string, double>& ScalarBaseline() {
  static std::map<std::string, double> baseline;
  return baseline;
}

void Record(benchmark::State& state, const std::string& op, bool accel,
            double bytes_per_cycle) {
  state.counters["bytes_per_cycle"] = bytes_per_cycle;
  state.counters["accel"] = accel ? 1.0 : 0.0;
  if (!accel) {
    ScalarBaseline()[op] = bytes_per_cycle;
  } else if (const auto it = ScalarBaseline().find(op);
             it != ScalarBaseline().end() && it->second > 0) {
    state.counters["accel_speedup"] = bytes_per_cycle / it->second;
  }
}

enum class CbcOp { kSeal, kOpen };

void RunCbcBatch(benchmark::State& state, CbcOp op, bool accel) {
  crypto::ScopedCryptoImpl force(accel ? crypto::CryptoImpl::kAccel
                                       : crypto::CryptoImpl::kScalar);
  stegfs::BlockCodec codec(kBlockSize);
  crypto::HashDrbg drbg(uint64_t{2026});
  crypto::CbcCipher cipher;
  if (!cipher.SetKey(drbg.Generate(16)).ok()) std::abort();

  const size_t payload = codec.payload_size();
  const Bytes payloads = drbg.Generate(kBatchBlocks * payload);
  Bytes blocks(kBatchBlocks * kBlockSize);
  Bytes out(kBatchBlocks * payload);
  if (!codec.SealBlocks(cipher, drbg, payloads.data(), kBatchBlocks,
                        blocks.data())
           .ok()) {
    std::abort();
  }

  uint64_t cycles = 0;
  uint64_t bytes = 0;
  for (auto _ : state) {
    const uint64_t c0 = Cycles();
    const Status status =
        op == CbcOp::kSeal
            ? codec.SealBlocks(cipher, drbg, payloads.data(), kBatchBlocks,
                               blocks.data())
            : codec.OpenBlocks(cipher, blocks.data(), kBatchBlocks,
                               out.data());
    cycles += Cycles() - c0;
    if (!status.ok()) std::abort();
    bytes += kBatchBlocks * payload;
    benchmark::DoNotOptimize(blocks.data());
    benchmark::DoNotOptimize(out.data());
  }

  const std::string name(op == CbcOp::kSeal ? "CbcSeal" : "CbcOpen");
  Record(state, name, accel,
         cycles > 0 ? static_cast<double>(bytes) / cycles : 0.0);
  state.SetBytesProcessed(static_cast<int64_t>(bytes));
}

void RunSha256(benchmark::State& state, bool accel) {
  crypto::ScopedCryptoImpl force(accel ? crypto::CryptoImpl::kAccel
                                       : crypto::CryptoImpl::kScalar);
  crypto::HashDrbg drbg(uint64_t{2027});
  const Bytes data = drbg.Generate(kBatchBlocks * kBlockSize);

  uint64_t cycles = 0;
  uint64_t bytes = 0;
  for (auto _ : state) {
    const uint64_t c0 = Cycles();
    crypto::Sha256::Digest digest = crypto::Sha256::Hash(data);
    cycles += Cycles() - c0;
    bytes += data.size();
    benchmark::DoNotOptimize(digest);
  }

  Record(state, "Sha256", accel,
         cycles > 0 ? static_cast<double>(bytes) / cycles : 0.0);
  state.SetBytesProcessed(static_cast<int64_t>(bytes));
}

}  // namespace
}  // namespace steghide::bench

int main(int argc, char** argv) {
  using namespace steghide::bench;
  // Scalar first: the accel twin reads its baseline from the same map.
  for (const bool accel : {false, true}) {
    const char* impl = accel ? "accel" : "scalar";
    benchmark::RegisterBenchmark(
        (std::string("Crypto/CbcSeal/impl:") + impl).c_str(),
        [accel](benchmark::State& s) {
          RunCbcBatch(s, CbcOp::kSeal, accel);
        });
    benchmark::RegisterBenchmark(
        (std::string("Crypto/CbcOpen/impl:") + impl).c_str(),
        [accel](benchmark::State& s) {
          RunCbcBatch(s, CbcOp::kOpen, accel);
        });
    benchmark::RegisterBenchmark(
        (std::string("Crypto/Sha256/impl:") + impl).c_str(),
        [accel](benchmark::State& s) { RunSha256(s, accel); });
  }
  return RunBenchmarks(argc, argv);
}
