#!/usr/bin/env python3
"""Summarize a --trace Chrome-trace JSON as a virtual-time breakdown.

The bench harness's --trace=<path> flag dumps the obs::TraceLog as
Chrome trace_event JSON (load it in Perfetto / chrome://tracing for the
interactive view). This tool prints the terminal companion: a per-track,
per-phase table of virtual milliseconds, so a CI log answers "where did
the virtual time go — scan vs re-order vs cache drains vs per-shard
device work?" without opening a UI.

Span names follow "<component>.<phase>" ("store.scan",
"dispatch.commit", "io.drain"); per-shard scheduler lanes are tracks
named "io/shard<k>". Attribute args (level, shards, reqs, stall) are
aggregated where present. Nested spans overlap by construction (a
store.scan contains its io.drain), so rows are per-(track, name) and do
not sum to wall totals; the table orders by total virtual ms.

Usage:
  tools/trace_summary.py trace.json
  tools/trace_summary.py trace.json --top 25
"""

import argparse
import collections
import json
import sys


def load_events(path):
    with open(path) as fh:
        doc = json.load(fh)
    return doc.get("traceEvents", [])


def track_names(events):
    """tid -> thread_name from the metadata records."""
    names = {}
    for ev in events:
        if ev.get("ph") == "M" and ev.get("name") == "thread_name":
            names[ev.get("tid", 0)] = ev.get("args", {}).get("name", "?")
    return names


class Row:
    __slots__ = ("count", "virtual_ms", "wall_ms", "levels", "max_arg")

    def __init__(self):
        self.count = 0
        self.virtual_ms = 0.0
        self.wall_ms = 0.0
        self.levels = collections.Counter()
        self.max_arg = {}


def summarize(events, names):
    """(track, span name) -> Row over all complete ('X') events."""
    rows = collections.defaultdict(Row)
    for ev in events:
        if ev.get("ph") != "X":
            continue
        track = names.get(ev.get("tid", 0), str(ev.get("tid", 0)))
        row = rows[(track, ev.get("name", "?"))]
        row.count += 1
        row.virtual_ms += ev.get("dur", 0) / 1000.0  # us -> virtual ms
        args = ev.get("args", {})
        row.wall_ms += args.get("wall_us", 0) / 1000.0
        if "level" in args:
            row.levels[args["level"]] += 1
        for key in ("reqs", "n", "records", "passes", "stall", "shards"):
            if key in args:
                row.max_arg[key] = max(row.max_arg.get(key, 0), args[key])
    return rows


def span_table(rows, top):
    out = []
    ordered = sorted(rows.items(), key=lambda kv: -kv[1].virtual_ms)
    header = (f"{'track':<14} {'span':<22} {'count':>7} "
              f"{'virtual_ms':>12} {'wall_ms':>10}  attributes")
    out.append(header)
    out.append("-" * len(header))
    for (track, name), row in ordered[:top]:
        attrs = []
        if row.levels:
            per_level = ",".join(
                f"L{lvl}:{cnt}" for lvl, cnt in sorted(row.levels.items()))
            attrs.append(f"levels[{per_level}]")
        for key, value in sorted(row.max_arg.items()):
            attrs.append(f"max_{key}={value}")
        out.append(f"{track:<14} {name:<22} {row.count:>7} "
                   f"{row.virtual_ms:>12.3f} {row.wall_ms:>10.3f}  "
                   f"{' '.join(attrs)}")
    return "\n".join(out)


def shard_table(rows):
    """Per-shard device/drain utilization from the io/shard<k> tracks."""
    shards = collections.defaultdict(lambda: [0, 0.0])
    for (track, _name), row in rows.items():
        if "/shard" not in track:
            continue
        entry = shards[track]
        entry[0] += row.count
        entry[1] += row.virtual_ms
    if not shards:
        return ""
    out = ["", f"{'shard track':<18} {'drains':>8} {'virtual_ms':>12}"]
    out.append("-" * 40)
    for track in sorted(shards):
        count, ms = shards[track]
        out.append(f"{track:<18} {count:>8} {ms:>12.3f}")
    return "\n".join(out)


def request_stats(events):
    """Async dispatch.request intervals -> count and virtual latency."""
    begins, latencies = {}, []
    for ev in events:
        if ev.get("ph") == "b":
            begins[ev.get("id")] = ev.get("ts", 0)
        elif ev.get("ph") == "e":
            t0 = begins.pop(ev.get("id"), None)
            if t0 is not None:
                latencies.append((ev.get("ts", 0) - t0) / 1000.0)
    if not latencies:
        return ""
    latencies.sort()

    def pct(q):
        idx = min(len(latencies) - 1, int(q / 100.0 * len(latencies)))
        return latencies[idx]

    return ("\nrequests: {n}  virtual latency ms  "
            "p50={p50:.3f}  p90={p90:.3f}  p99={p99:.3f}  max={mx:.3f}"
            .format(n=len(latencies), p50=pct(50), p90=pct(90),
                    p99=pct(99), mx=latencies[-1]))


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", help="Chrome-trace JSON from --trace=")
    parser.add_argument("--top", type=int, default=20,
                        help="max span rows to print")
    args = parser.parse_args()

    events = load_events(args.trace)
    if not events:
        print(f"{args.trace}: no traceEvents", file=sys.stderr)
        return 1
    names = track_names(events)
    rows = summarize(events, names)

    counters = sum(1 for ev in events if ev.get("ph") == "C")
    print(f"{args.trace}: {len(events)} events, "
          f"{len(names)} tracks, {counters} counter samples")
    print()
    print(span_table(rows, args.top))
    shard = shard_table(rows)
    if shard:
        print(shard)
    req = request_stats(events)
    if req:
        print(req)
    return 0


if __name__ == "__main__":
    sys.exit(main())
