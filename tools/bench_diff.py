#!/usr/bin/env python3
"""Diff bench counter JSON against a baseline run.

Every bench binary writes per-benchmark counters with --json=<path>; the
scheduled bench.yml job archives them. This tool compares the current
directory of JSON files against the previous scheduled run's artifact
and flags regressions in the lower-is-better metrics:

  * any counter *_ms     — the virtual-disk-ms behind each figure point
  * overhead_factor      — Table 4's mean device I/Os per request

Only virtual-clock counters are compared — the benchmark's own
real_time is host wall-clock and noisy across CI runners. The workloads
are seeded and measured on the virtual disk clock, so these numbers are
deterministic for identical code: any delta is a real behavior change,
which keeps a tight threshold meaningful.

Exit status 1 when any metric is worse than --max-regression (relative).
Emits GitHub workflow annotations (::error / ::notice) so regressions
surface on the PR without digging through logs.
"""

import argparse
import json
import math
import pathlib
import sys


def load_metrics(path):
    """benchmark name -> {metric -> value} for one JSON counter file."""
    with open(path) as fh:
        doc = json.load(fh)
    out = {}
    for record in doc.get("benchmarks", []):
        metrics = {}
        for key, value in record.get("counters", {}).items():
            if key == "overhead_factor" or key.endswith("_ms"):
                if isinstance(value, (int, float)) and math.isfinite(value):
                    metrics[key] = float(value)
        out[record.get("name", "?")] = metrics
    return out


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True,
                        help="directory of baseline *.json counter files")
    parser.add_argument("--current", required=True,
                        help="directory of current *.json counter files")
    parser.add_argument("--max-regression", type=float, default=0.10,
                        help="relative worsening that fails the diff")
    parser.add_argument("--min-abs", type=float, default=1e-6,
                        help="baseline values below this are not compared")
    args = parser.parse_args()

    baseline_dir = pathlib.Path(args.baseline)
    current_dir = pathlib.Path(args.current)
    regressions, improvements, skipped = [], [], []

    for current_file in sorted(current_dir.glob("*.json")):
        baseline_file = baseline_dir / current_file.name
        if not baseline_file.exists():
            skipped.append(f"{current_file.name}: no baseline file")
            continue
        base = load_metrics(baseline_file)
        cur = load_metrics(current_file)
        for name, metrics in sorted(cur.items()):
            if name not in base:
                skipped.append(f"{current_file.name} :: {name}: new benchmark")
                continue
            for metric, value in sorted(metrics.items()):
                ref = base[name].get(metric)
                if ref is None or ref < args.min_abs:
                    continue
                rel = (value - ref) / ref
                line = (f"{current_file.name} :: {name} :: {metric}: "
                        f"{ref:.6g} -> {value:.6g} ({rel:+.1%})")
                if rel > args.max_regression:
                    regressions.append(line)
                elif rel < -args.max_regression:
                    improvements.append(line)

    for line in skipped:
        print(f"skip      {line}")
    for line in improvements:
        print(f"improved  {line}")
        print(f"::notice::bench improved: {line}")
    for line in regressions:
        print(f"REGRESSED {line}")
        print(f"::error::bench regression >"
              f"{args.max_regression:.0%}: {line}")

    if regressions:
        print(f"{len(regressions)} metric(s) regressed beyond "
              f"{args.max_regression:.0%}")
        return 1
    print("no bench regressions beyond threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
