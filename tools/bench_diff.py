#!/usr/bin/env python3
"""Diff bench counter JSON against a baseline run.

Every bench binary writes per-benchmark counters with --json=<path>; the
scheduled bench.yml job archives them. This tool compares the current
directory of JSON files against the previous scheduled run's artifact
and flags regressions in the lower-is-better metrics:

  * any counter *_ms     — the virtual-disk-ms behind each figure point
  * overhead_factor      — Table 4's mean device I/Os per request

and in the higher-is-better throughput metrics of the dispatcher
sweeps:

  * any counter *_per_vsec — requests/updates per virtual second
  * speedup_vs_serial      — dispatched vs per-request serving

Deamortization counters are gated direction-aware like the throughput
metrics (only a worsening fails): max_stall_ms (longest serving stall
attributable to re-order work) is lower-is-better, and the dispatch
sweeps' p99_latency_ms joins the gate — its stamps are virtual-clock
and, under saturation, dominated by the deterministic re-order
schedule, unlike the OS-scheduling-sensitive p50. p90_latency_ms and
stall_p99_ms (the dispatch sweep's stall-distribution tail) are gated
the same way, so a latency-distribution regression fails even when the
mean survives. The derived speedup_vs_blocking_reorder /
p99_improvement_vs_blocking ratios are archived but exempt: their
constituents are gated individually, and an improvement confined to the
blocking twin must not fail the diff. queue_depth_p99 is archived but
exempt (group arrival interleaving shifts it at the margin).

Only virtual-clock counters are compared — the benchmark's own
real_time is host wall-clock and noisy across CI runners. The workloads
are seeded and measured on the virtual disk clock, so these numbers are
deterministic for identical code: any delta is a real behavior change,
which keeps a tight threshold meaningful. The dispatcher sweeps run
real threads; their virtual-clock *totals* depend only weakly on
arrival interleaving (group fill is deterministic under saturation), so
the throughput metrics stay gated — but p50 percentiles and
mean_batch_fill shift with OS scheduling at the group boundaries, so
they are recorded in the artifacts yet exempt from the pass/fail
threshold.

The crypto counters are split by determinism. crypto_mb and
crypto_batches (the serving phase's decrypt traffic and how many kernel
batches carried it) are pure functions of the seeded workload, so they
are gated lower-is-better: more bytes decrypted or more, smaller,
batches for the same requests is a real batching regression.
accel_speedup (bench_crypto's scalar-vs-accelerated bytes/cycle ratio)
is gated higher-is-better — both sides are measured on the same host in
the same process, so the ratio is stable where the raw cycle counts are
not. crypto_wall_ms and bytes_per_cycle are archived but exempt: they
are host wall-clock/TSC measurements, which vary across CI runners.

The degraded-mode sweep (Fig10bDegraded) additionally carries hard
zero-gates: counters in ZERO_GATED (failed_requests — requests the
fault-tolerance stack failed to serve — and io_retry_exhausted) fail
the diff whenever the *current* run reports a nonzero value, baseline
or not. Its throughput joins the direction-aware *_per_vsec gate like
every other sweep.

Exit status 1 when any metric is worse than --max-regression (relative).
Emits GitHub workflow annotations (::error / ::notice) so regressions
surface on the PR without digging through logs.
"""

import argparse
import json
import math
import pathlib
import sys


#: Counters where a *drop* is the regression.
HIGHER_IS_BETTER = ("speedup_vs_serial", "accel_speedup")

#: Deterministic lower-is-better counters that match neither the *_ms
#: nor the overhead_factor pattern: the seeded serving phase's crypto
#: traffic (bytes decrypted, kernel batches that carried them).
LOWER_IS_BETTER = ("crypto_mb", "crypto_batches")

#: Archived, never gated: scheduling-dependent fill and queue depth,
#: the derived blocking-vs-deamortized ratios — their constituents
#: (blocking_*_ms, *_per_vsec, p90/p99_latency_ms, max_stall_ms,
#: stall_p99_ms) are each tracked on their own, and gating the ratio too
#: would fail CI when only the blocking twin improves — and the host
#: wall-clock crypto measurements (crypto_wall_ms, bytes_per_cycle),
#: which vary across runners; their cross-runner-stable ratio
#: accel_speedup carries the gate instead.
EXEMPT = ("mean_batch_fill", "speedup_vs_blocking_reorder",
          "p99_improvement_vs_blocking", "queue_depth_p99",
          "crypto_wall_ms", "bytes_per_cycle")

#: Hard zero-gates: a nonzero *current* value fails the diff outright,
#: with or without a baseline. These are correctness counters — a served
#: request that failed, a retry budget that ran dry, or a quorum read
#: that returned a stale version stamp (data loss) — not performance, so
#: no relative threshold applies.
ZERO_GATED = ("failed_requests", "io_retry_exhausted",
              "quorum_stale_reads", "write_quorum_failures")


def is_higher_better(key):
    return key.endswith("_per_vsec") or key in HIGHER_IS_BETTER


def is_tracked(key):
    if key in EXEMPT:
        return False
    if key.endswith("_latency_ms"):
        # Dispatch tail percentiles are virtual-clock and
        # re-order-schedule dominated: gated (lower is better). p50
        # stays scheduling-sensitive noise.
        return (key.endswith("p99_latency_ms") or
                key.endswith("p90_latency_ms"))
    return (key == "overhead_factor" or key.endswith("_ms") or
            key in LOWER_IS_BETTER or is_higher_better(key))


def load_metrics(path):
    """benchmark name -> {metric -> value} for one JSON counter file."""
    with open(path) as fh:
        doc = json.load(fh)
    out = {}
    for record in doc.get("benchmarks", []):
        metrics = {}
        for key, value in record.get("counters", {}).items():
            if is_tracked(key):
                if isinstance(value, (int, float)) and math.isfinite(value):
                    metrics[key] = float(value)
        out[record.get("name", "?")] = metrics
    return out


def zero_gate_violations(path):
    """ZERO_GATED counters with nonzero values in one counter file."""
    with open(path) as fh:
        doc = json.load(fh)
    violations = []
    for record in doc.get("benchmarks", []):
        for key in ZERO_GATED:
            value = record.get("counters", {}).get(key)
            if isinstance(value, (int, float)) and value > 0:
                violations.append(f"{path.name} :: "
                                  f"{record.get('name', '?')} :: "
                                  f"{key}: {value:.6g} (must be 0)")
    return violations


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True,
                        help="directory of baseline *.json counter files")
    parser.add_argument("--current", required=True,
                        help="directory of current *.json counter files")
    parser.add_argument("--max-regression", type=float, default=0.10,
                        help="relative worsening that fails the diff")
    parser.add_argument("--min-abs", type=float, default=1e-6,
                        help="baseline values below this are not compared")
    args = parser.parse_args()

    baseline_dir = pathlib.Path(args.baseline)
    current_dir = pathlib.Path(args.current)
    regressions, improvements, skipped, fresh = [], [], [], []

    zero_failures = []
    for current_file in sorted(current_dir.glob("*.json")):
        # Correctness counters gate on the current run alone — a new
        # benchmark with failed requests must not pass just because no
        # baseline exists yet.
        zero_failures.extend(zero_gate_violations(current_file))
        baseline_file = baseline_dir / current_file.name
        if not baseline_file.exists():
            fresh.append(f"{current_file.name}: new counter file "
                         f"(no baseline)")
            continue
        base = load_metrics(baseline_file)
        cur = load_metrics(current_file)
        for name, metrics in sorted(cur.items()):
            if name not in base:
                fresh.append(f"{current_file.name} :: {name}: new benchmark")
                continue
            for metric, value in sorted(metrics.items()):
                ref = base[name].get(metric)
                if ref is None:
                    # A tracked counter with no baseline value: cannot be
                    # gated this run, but the artifact this run archives
                    # becomes the next scheduled run's baseline, so it
                    # enters the gate there. Surface it instead of
                    # silently skipping so a renamed counter cannot fall
                    # out of the diff unnoticed.
                    fresh.append(f"{current_file.name} :: {name} :: "
                                 f"{metric}: new counter "
                                 f"(current {value:.6g})")
                    continue
                if ref < args.min_abs:
                    skipped.append(f"{current_file.name} :: {name} :: "
                                   f"{metric}: baseline below --min-abs")
                    continue
                # Orient so that positive `rel` is always "worse".
                rel = (value - ref) / ref
                if is_higher_better(metric):
                    rel = -rel
                line = (f"{current_file.name} :: {name} :: {metric}: "
                        f"{ref:.6g} -> {value:.6g} "
                        f"({abs(rel):.1%} {'worse' if rel > 0 else 'better'})")
                if rel > args.max_regression:
                    regressions.append(line)
                elif rel < -args.max_regression:
                    improvements.append(line)

    for line in skipped:
        print(f"skip      {line}")
    for line in fresh:
        print(f"fresh     {line}")
        print(f"::notice::bench counter has no baseline yet (gating "
              f"starts next scheduled run): {line}")
    for line in improvements:
        print(f"improved  {line}")
        print(f"::notice::bench improved: {line}")
    for line in regressions:
        print(f"REGRESSED {line}")
        print(f"::error::bench regression >"
              f"{args.max_regression:.0%}: {line}")
    for line in zero_failures:
        print(f"FAILED    {line}")
        print(f"::error::bench correctness gate: {line}")

    if regressions or zero_failures:
        if regressions:
            print(f"{len(regressions)} metric(s) regressed beyond "
                  f"{args.max_regression:.0%}")
        if zero_failures:
            print(f"{len(zero_failures)} correctness counter(s) nonzero")
        return 1
    print("no bench regressions beyond threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
