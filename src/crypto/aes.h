#ifndef STEGHIDE_CRYPTO_AES_H_
#define STEGHIDE_CRYPTO_AES_H_

#include <array>
#include <cstdint>

#include "util/bytes.h"
#include "util/status.h"

namespace steghide::crypto {

/// AES block cipher (FIPS 197) with 128/192/256-bit keys. This is the
/// block cipher the paper specifies for encrypting every storage block
/// (Section 6.1).
///
/// The key schedule is always expanded by the portable 32-bit-table code;
/// per-block work dispatches to AES-NI / ARMv8 kernels when SetKey ran
/// while the accelerated path was active (cpu_features.h), with the
/// table-based implementation as the pinned fallback. The serialized
/// schedules below are byte-for-byte what the hardware units consume —
/// `dec_rk_` is the equivalent-inverse-cipher layout (FIPS 197 §5.3.5)
/// that `aesdec`/`aesd+aesimc` expect.
///
/// The class only exposes single-block ECB primitives; modes of operation
/// live in cbc.h.
class Aes {
 public:
  static constexpr size_t kBlockSize = 16;
  static constexpr int kMaxRounds = 14;

  Aes() = default;

  /// Expands `key` (16, 24 or 32 bytes). Any other size yields
  /// InvalidArgument and leaves the cipher unusable.
  Status SetKey(const uint8_t* key, size_t key_len);
  Status SetKey(const Bytes& key) { return SetKey(key.data(), key.size()); }

  bool has_key() const { return rounds_ != 0; }

  /// Encrypts one 16-byte block. `in` and `out` may alias.
  void EncryptBlock(const uint8_t in[kBlockSize],
                    uint8_t out[kBlockSize]) const;

  /// Decrypts one 16-byte block. `in` and `out` may alias.
  void DecryptBlock(const uint8_t in[kBlockSize],
                    uint8_t out[kBlockSize]) const;

  /// Serialized round-key schedules and dispatch state for the hardware
  /// CBC kernels (cbc.cc); not part of the public crypto API.
  const uint8_t* enc_round_keys() const { return enc_rk_; }
  const uint8_t* dec_round_keys() const { return dec_rk_; }
  int rounds() const { return rounds_; }
  bool accelerated() const { return accel_; }

 private:
  // Up to 15 round keys of 4 words each (AES-256: 14 rounds + initial).
  uint32_t enc_keys_[60] = {};
  uint32_t dec_keys_[60] = {};
  // The same schedules as big-endian byte dumps, the layout the hardware
  // AES units load directly.
  uint8_t enc_rk_[16 * (kMaxRounds + 1)] = {};
  uint8_t dec_rk_[16 * (kMaxRounds + 1)] = {};
  int rounds_ = 0;
  bool accel_ = false;
};

}  // namespace steghide::crypto

#endif  // STEGHIDE_CRYPTO_AES_H_
