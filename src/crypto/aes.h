#ifndef STEGHIDE_CRYPTO_AES_H_
#define STEGHIDE_CRYPTO_AES_H_

#include <array>
#include <cstdint>

#include "util/bytes.h"
#include "util/status.h"

namespace steghide::crypto {

/// AES block cipher (FIPS 197) with 128/192/256-bit keys, implemented with
/// 32-bit lookup tables. This is the block cipher the paper specifies for
/// encrypting every storage block (Section 6.1).
///
/// The class only exposes single-block ECB primitives; modes of operation
/// live in cbc.h.
class Aes {
 public:
  static constexpr size_t kBlockSize = 16;

  Aes() = default;

  /// Expands `key` (16, 24 or 32 bytes). Any other size yields
  /// InvalidArgument and leaves the cipher unusable.
  Status SetKey(const uint8_t* key, size_t key_len);
  Status SetKey(const Bytes& key) { return SetKey(key.data(), key.size()); }

  bool has_key() const { return rounds_ != 0; }

  /// Encrypts one 16-byte block. `in` and `out` may alias.
  void EncryptBlock(const uint8_t in[kBlockSize],
                    uint8_t out[kBlockSize]) const;

  /// Decrypts one 16-byte block. `in` and `out` may alias.
  void DecryptBlock(const uint8_t in[kBlockSize],
                    uint8_t out[kBlockSize]) const;

 private:
  // Up to 15 round keys of 4 words each (AES-256: 14 rounds + initial).
  uint32_t enc_keys_[60] = {};
  uint32_t dec_keys_[60] = {};
  int rounds_ = 0;
};

}  // namespace steghide::crypto

#endif  // STEGHIDE_CRYPTO_AES_H_
