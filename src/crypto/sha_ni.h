#ifndef STEGHIDE_CRYPTO_SHA_NI_H_
#define STEGHIDE_CRYPTO_SHA_NI_H_

#include <cstddef>
#include <cstdint>

namespace steghide::crypto::shani {

/// True when this translation unit was built with real SHA-NI kernels.
bool Compiled();

/// Runs the SHA-256 compression function over `nblocks` consecutive
/// 64-byte message blocks, updating `state` (the eight working words in
/// FIPS 180-2 order) in place. Must only be called when
/// CpuCryptoSupport().sha256 is true.
void Compress(uint32_t state[8], const uint8_t* blocks, size_t nblocks);

}  // namespace steghide::crypto::shani

#endif  // STEGHIDE_CRYPTO_SHA_NI_H_
