#ifndef STEGHIDE_CRYPTO_DRBG_STREAMS_H_
#define STEGHIDE_CRYPTO_DRBG_STREAMS_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>

#include "crypto/drbg.h"
#include "util/bytes.h"

namespace steghide::crypto {

/// A family of per-thread HashDrbg streams over one root seed — the fix
/// for the crypto-path serialization point where every IV and decoy draw
/// from dispatcher workers, shard pool threads, and the maintenance pump
/// contended on a single stream mutex.
///
/// Determinism model:
///  - The first thread to draw is handed the *root* stream itself, so a
///    single-threaded caller consumes exactly the byte stream of a plain
///    HashDrbg(seed) — trace-pinned suites and golden experiments see no
///    change.
///  - Every later thread gets an independent stream forked from the root
///    *seed state* by arrival index (HashDrbg::ForkSeed with the
///    "steghide-thread-stream" domain): same seed + same stream index ⇒
///    same stream, bytewise, regardless of what any other stream drew.
///    Which OS thread lands on which index is scheduling-dependent, which
///    is inherent to concurrent draws and exactly the freedom the
///    trace-equivalence suites already grant to draw interleaving.
///
/// Thread safety: ForThread() is safe from any thread; after the first
/// call on a given thread it is a thread-local lookup with no shared
/// state touched. Each stream is itself a HashDrbg with its own
/// (uncontended) lock.
class DrbgStreams {
 public:
  explicit DrbgStreams(const Bytes& seed);
  explicit DrbgStreams(uint64_t seed);

  DrbgStreams(const DrbgStreams&) = delete;
  DrbgStreams& operator=(const DrbgStreams&) = delete;

  /// The calling thread's stream, created on first use.
  HashDrbg& ForThread();

  /// The root stream (arrival index 0), regardless of calling thread.
  /// Draws on it interleave with the first-arriving thread's.
  HashDrbg& root() { return root_; }

  /// Number of distinct streams handed out so far.
  size_t stream_count() const;

 private:
  HashDrbg* Acquire();

  /// Process-unique id keying the per-thread cache; never reused, so a
  /// stale cache entry for a destroyed family can never be looked up.
  const uint64_t family_id_;
  HashDrbg root_;
  mutable std::mutex mu_;
  bool root_taken_ = false;
  std::deque<std::unique_ptr<HashDrbg>> forks_;
};

}  // namespace steghide::crypto

#endif  // STEGHIDE_CRYPTO_DRBG_STREAMS_H_
