#include "crypto/drbg_streams.h"

#include <atomic>
#include <unordered_map>

namespace steghide::crypto {

namespace {

uint64_t NextFamilyId() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

DrbgStreams::DrbgStreams(const Bytes& seed)
    : family_id_(NextFamilyId()), root_(seed) {}

DrbgStreams::DrbgStreams(uint64_t seed)
    : family_id_(NextFamilyId()), root_(seed) {}

HashDrbg& DrbgStreams::ForThread() {
  // family id -> this thread's stream. Entries for destroyed families go
  // stale but are keyed by never-reused ids, so they can only waste a map
  // slot, never dangle into a lookup.
  thread_local std::unordered_map<uint64_t, HashDrbg*> cache;
  auto it = cache.find(family_id_);
  if (it != cache.end()) return *it->second;
  HashDrbg* stream = Acquire();
  cache.emplace(family_id_, stream);
  return *stream;
}

HashDrbg* DrbgStreams::Acquire() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!root_taken_) {
    root_taken_ = true;
    return &root_;
  }
  // Arrival index 0 is the root itself; forks count from 1. The deque
  // keeps stream addresses stable for the thread-local caches.
  const uint64_t index = forks_.size() + 1;
  forks_.push_back(root_.Fork("steghide-thread-stream", index));
  return forks_.back().get();
}

size_t DrbgStreams::stream_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return (root_taken_ ? 1 : 0) + forks_.size();
}

}  // namespace steghide::crypto
