#include "crypto/aes.h"

#include <cstring>

#include "crypto/cpu_features.h"
#if defined(__aarch64__)
#include "crypto/aes_armv8.h"
#else
#include "crypto/aes_ni.h"
#endif

namespace steghide::crypto {

namespace {
#if defined(__aarch64__)
namespace hw = aesarm;
#else
namespace hw = aesni;
#endif
}  // namespace

namespace {

// Forward S-box (FIPS 197, Figure 7).
constexpr uint8_t kSbox[256] = {
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b,
    0xfe, 0xd7, 0xab, 0x76, 0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0,
    0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0, 0xb7, 0xfd, 0x93, 0x26,
    0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2,
    0xeb, 0x27, 0xb2, 0x75, 0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0,
    0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84, 0x53, 0xd1, 0x00, 0xed,
    0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f,
    0x50, 0x3c, 0x9f, 0xa8, 0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5,
    0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2, 0xcd, 0x0c, 0x13, 0xec,
    0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14,
    0xde, 0x5e, 0x0b, 0xdb, 0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c,
    0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79, 0xe7, 0xc8, 0x37, 0x6d,
    0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f,
    0x4b, 0xbd, 0x8b, 0x8a, 0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e,
    0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e, 0xe1, 0xf8, 0x98, 0x11,
    0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f,
    0xb0, 0x54, 0xbb, 0x16};

struct InvSbox {
  uint8_t v[256];
  constexpr InvSbox() : v{} {
    for (int i = 0; i < 256; ++i) v[kSbox[i]] = static_cast<uint8_t>(i);
  }
};
constexpr InvSbox kInvSbox;

// GF(2^8) multiply by x (i.e. {02}).
constexpr uint8_t Xtime(uint8_t a) {
  return static_cast<uint8_t>((a << 1) ^ ((a & 0x80) ? 0x1b : 0x00));
}

constexpr uint8_t GfMul(uint8_t a, uint8_t b) {
  uint8_t r = 0;
  for (int i = 0; i < 8; ++i) {
    if (b & 1) r ^= a;
    a = Xtime(a);
    b >>= 1;
  }
  return r;
}

// Encryption T-table: Te0[x] = S[x]*{02,01,01,03} laid out so that the
// round transform is four table lookups + xor per output word. The other
// three tables are byte rotations of Te0.
struct EncTables {
  uint32_t t0[256];
  constexpr EncTables() : t0{} {
    for (int i = 0; i < 256; ++i) {
      const uint8_t s = kSbox[i];
      const uint8_t s2 = Xtime(s);
      const uint8_t s3 = static_cast<uint8_t>(s2 ^ s);
      t0[i] = (static_cast<uint32_t>(s2) << 24) |
              (static_cast<uint32_t>(s) << 16) |
              (static_cast<uint32_t>(s) << 8) | s3;
    }
  }
};
constexpr EncTables kEnc;

// Decryption T-table: Td0[x] = InvS[x]*{0e,09,0d,0b}.
struct DecTables {
  uint32_t t0[256];
  constexpr DecTables() : t0{} {
    for (int i = 0; i < 256; ++i) {
      const uint8_t s = kInvSbox.v[i];
      t0[i] = (static_cast<uint32_t>(GfMul(s, 0x0e)) << 24) |
              (static_cast<uint32_t>(GfMul(s, 0x09)) << 16) |
              (static_cast<uint32_t>(GfMul(s, 0x0d)) << 8) |
              GfMul(s, 0x0b);
    }
  }
};
constexpr DecTables kDec;

uint32_t Rotr8(uint32_t x) { return (x >> 8) | (x << 24); }

uint32_t Te(int which, uint8_t idx) {
  uint32_t v = kEnc.t0[idx];
  for (int i = 0; i < which; ++i) v = Rotr8(v);
  return v;
}

uint32_t Td(int which, uint8_t idx) {
  uint32_t v = kDec.t0[idx];
  for (int i = 0; i < which; ++i) v = Rotr8(v);
  return v;
}

uint32_t SubWord(uint32_t w) {
  return (static_cast<uint32_t>(kSbox[(w >> 24) & 0xff]) << 24) |
         (static_cast<uint32_t>(kSbox[(w >> 16) & 0xff]) << 16) |
         (static_cast<uint32_t>(kSbox[(w >> 8) & 0xff]) << 8) |
         kSbox[w & 0xff];
}

uint32_t RotWord(uint32_t w) { return (w << 8) | (w >> 24); }

// InvMixColumns applied to one word (used to derive decryption round keys).
uint32_t InvMixColumn(uint32_t w) {
  const uint8_t a = static_cast<uint8_t>(w >> 24);
  const uint8_t b = static_cast<uint8_t>(w >> 16);
  const uint8_t c = static_cast<uint8_t>(w >> 8);
  const uint8_t d = static_cast<uint8_t>(w);
  return (static_cast<uint32_t>(
              GfMul(a, 0x0e) ^ GfMul(b, 0x0b) ^ GfMul(c, 0x0d) ^ GfMul(d, 0x09))
          << 24) |
         (static_cast<uint32_t>(
              GfMul(a, 0x09) ^ GfMul(b, 0x0e) ^ GfMul(c, 0x0b) ^ GfMul(d, 0x0d))
          << 16) |
         (static_cast<uint32_t>(
              GfMul(a, 0x0d) ^ GfMul(b, 0x09) ^ GfMul(c, 0x0e) ^ GfMul(d, 0x0b))
          << 8) |
         static_cast<uint32_t>(GfMul(a, 0x0b) ^ GfMul(b, 0x0d) ^
                               GfMul(c, 0x09) ^ GfMul(d, 0x0e));
}

constexpr uint32_t kRcon[10] = {0x01000000, 0x02000000, 0x04000000, 0x08000000,
                                0x10000000, 0x20000000, 0x40000000, 0x80000000,
                                0x1b000000, 0x36000000};

}  // namespace

Status Aes::SetKey(const uint8_t* key, size_t key_len) {
  int nk;  // key length in words
  switch (key_len) {
    case 16:
      nk = 4;
      rounds_ = 10;
      break;
    case 24:
      nk = 6;
      rounds_ = 12;
      break;
    case 32:
      nk = 8;
      rounds_ = 14;
      break;
    default:
      rounds_ = 0;
      return Status::InvalidArgument("AES key must be 16, 24 or 32 bytes");
  }

  const int total_words = 4 * (rounds_ + 1);
  for (int i = 0; i < nk; ++i) enc_keys_[i] = LoadBigEndian32(key + 4 * i);
  for (int i = nk; i < total_words; ++i) {
    uint32_t temp = enc_keys_[i - 1];
    if (i % nk == 0) {
      temp = SubWord(RotWord(temp)) ^ kRcon[i / nk - 1];
    } else if (nk > 6 && i % nk == 4) {
      temp = SubWord(temp);
    }
    enc_keys_[i] = enc_keys_[i - nk] ^ temp;
  }

  // Decryption keys: reversed round order, InvMixColumns on the inner
  // rounds (equivalent inverse cipher, FIPS 197 §5.3.5).
  for (int i = 0; i < total_words; ++i) {
    const int round = i / 4;
    const int src_round = rounds_ - round;
    uint32_t w = enc_keys_[4 * src_round + i % 4];
    if (round != 0 && round != rounds_) w = InvMixColumn(w);
    dec_keys_[i] = w;
  }

  // Big-endian word dumps of both schedules give exactly the round-key
  // byte layout the AES-NI/ARMv8 kernels load, so the scalar expansion
  // above stays the single source of truth for both paths.
  for (int i = 0; i < total_words; ++i) {
    StoreBigEndian32(enc_rk_ + 4 * i, enc_keys_[i]);
    StoreBigEndian32(dec_rk_ + 4 * i, dec_keys_[i]);
  }
  accel_ = AesAccelerated();
  return Status::OK();
}

void Aes::EncryptBlock(const uint8_t in[kBlockSize],
                       uint8_t out[kBlockSize]) const {
  if (accel_) {
    hw::EncryptBlock(enc_rk_, rounds_, in, out);
    return;
  }
  uint32_t s0 = LoadBigEndian32(in) ^ enc_keys_[0];
  uint32_t s1 = LoadBigEndian32(in + 4) ^ enc_keys_[1];
  uint32_t s2 = LoadBigEndian32(in + 8) ^ enc_keys_[2];
  uint32_t s3 = LoadBigEndian32(in + 12) ^ enc_keys_[3];

  const uint32_t* rk = enc_keys_ + 4;
  for (int round = 1; round < rounds_; ++round, rk += 4) {
    const uint32_t t0 = Te(0, s0 >> 24) ^ Te(1, (s1 >> 16) & 0xff) ^
                        Te(2, (s2 >> 8) & 0xff) ^ Te(3, s3 & 0xff) ^ rk[0];
    const uint32_t t1 = Te(0, s1 >> 24) ^ Te(1, (s2 >> 16) & 0xff) ^
                        Te(2, (s3 >> 8) & 0xff) ^ Te(3, s0 & 0xff) ^ rk[1];
    const uint32_t t2 = Te(0, s2 >> 24) ^ Te(1, (s3 >> 16) & 0xff) ^
                        Te(2, (s0 >> 8) & 0xff) ^ Te(3, s1 & 0xff) ^ rk[2];
    const uint32_t t3 = Te(0, s3 >> 24) ^ Te(1, (s0 >> 16) & 0xff) ^
                        Te(2, (s1 >> 8) & 0xff) ^ Te(3, s2 & 0xff) ^ rk[3];
    s0 = t0;
    s1 = t1;
    s2 = t2;
    s3 = t3;
  }

  // Final round: SubBytes + ShiftRows + AddRoundKey (no MixColumns).
  const auto final_word = [&](uint32_t a, uint32_t b, uint32_t c, uint32_t d,
                              uint32_t k) {
    return (static_cast<uint32_t>(kSbox[a >> 24]) << 24 |
            static_cast<uint32_t>(kSbox[(b >> 16) & 0xff]) << 16 |
            static_cast<uint32_t>(kSbox[(c >> 8) & 0xff]) << 8 |
            kSbox[d & 0xff]) ^
           k;
  };
  const uint32_t o0 = final_word(s0, s1, s2, s3, rk[0]);
  const uint32_t o1 = final_word(s1, s2, s3, s0, rk[1]);
  const uint32_t o2 = final_word(s2, s3, s0, s1, rk[2]);
  const uint32_t o3 = final_word(s3, s0, s1, s2, rk[3]);

  StoreBigEndian32(out, o0);
  StoreBigEndian32(out + 4, o1);
  StoreBigEndian32(out + 8, o2);
  StoreBigEndian32(out + 12, o3);
}

void Aes::DecryptBlock(const uint8_t in[kBlockSize],
                       uint8_t out[kBlockSize]) const {
  if (accel_) {
    hw::DecryptBlock(dec_rk_, rounds_, in, out);
    return;
  }
  uint32_t s0 = LoadBigEndian32(in) ^ dec_keys_[0];
  uint32_t s1 = LoadBigEndian32(in + 4) ^ dec_keys_[1];
  uint32_t s2 = LoadBigEndian32(in + 8) ^ dec_keys_[2];
  uint32_t s3 = LoadBigEndian32(in + 12) ^ dec_keys_[3];

  const uint32_t* rk = dec_keys_ + 4;
  for (int round = 1; round < rounds_; ++round, rk += 4) {
    const uint32_t t0 = Td(0, s0 >> 24) ^ Td(1, (s3 >> 16) & 0xff) ^
                        Td(2, (s2 >> 8) & 0xff) ^ Td(3, s1 & 0xff) ^ rk[0];
    const uint32_t t1 = Td(0, s1 >> 24) ^ Td(1, (s0 >> 16) & 0xff) ^
                        Td(2, (s3 >> 8) & 0xff) ^ Td(3, s2 & 0xff) ^ rk[1];
    const uint32_t t2 = Td(0, s2 >> 24) ^ Td(1, (s1 >> 16) & 0xff) ^
                        Td(2, (s0 >> 8) & 0xff) ^ Td(3, s3 & 0xff) ^ rk[2];
    const uint32_t t3 = Td(0, s3 >> 24) ^ Td(1, (s2 >> 16) & 0xff) ^
                        Td(2, (s1 >> 8) & 0xff) ^ Td(3, s0 & 0xff) ^ rk[3];
    s0 = t0;
    s1 = t1;
    s2 = t2;
    s3 = t3;
  }

  const auto final_word = [&](uint32_t a, uint32_t b, uint32_t c, uint32_t d,
                              uint32_t k) {
    return (static_cast<uint32_t>(kInvSbox.v[a >> 24]) << 24 |
            static_cast<uint32_t>(kInvSbox.v[(b >> 16) & 0xff]) << 16 |
            static_cast<uint32_t>(kInvSbox.v[(c >> 8) & 0xff]) << 8 |
            kInvSbox.v[d & 0xff]) ^
           k;
  };
  const uint32_t o0 = final_word(s0, s3, s2, s1, rk[0]);
  const uint32_t o1 = final_word(s1, s0, s3, s2, rk[1]);
  const uint32_t o2 = final_word(s2, s1, s0, s3, rk[2]);
  const uint32_t o3 = final_word(s3, s2, s1, s0, rk[3]);

  StoreBigEndian32(out, o0);
  StoreBigEndian32(out + 4, o1);
  StoreBigEndian32(out + 8, o2);
  StoreBigEndian32(out + 12, o3);
}

}  // namespace steghide::crypto
