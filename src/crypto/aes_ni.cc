#include "crypto/aes_ni.h"

#include <cstdlib>

// The real kernels need the AES-NI instruction set, which the build adds
// for this file only (see src/crypto/CMakeLists.txt); the rest of the
// binary stays portable and the dispatcher guarantees these functions are
// only reached when CPUID reports support.
#if defined(__x86_64__) && defined(__AES__)
#define STEGHIDE_HAVE_AESNI 1
#include <immintrin.h>
#endif

namespace steghide::crypto::aesni {

#if defined(STEGHIDE_HAVE_AESNI)

namespace {

constexpr int kMaxRounds = 14;

inline void LoadKeys(const uint8_t* rk, int rounds, __m128i* k) {
  for (int r = 0; r <= rounds; ++r) {
    k[r] = _mm_loadu_si128(reinterpret_cast<const __m128i*>(rk + 16 * r));
  }
}

inline __m128i EncryptOne(const __m128i* k, int rounds, __m128i x) {
  x = _mm_xor_si128(x, k[0]);
  for (int r = 1; r < rounds; ++r) x = _mm_aesenc_si128(x, k[r]);
  return _mm_aesenclast_si128(x, k[rounds]);
}

inline __m128i DecryptOne(const __m128i* k, int rounds, __m128i x) {
  x = _mm_xor_si128(x, k[0]);
  for (int r = 1; r < rounds; ++r) x = _mm_aesdec_si128(x, k[r]);
  return _mm_aesdeclast_si128(x, k[rounds]);
}

// Four interleaved chains: each aesenc result is needed by the next round
// of the *same* chain only, so four independent chains keep the pipelined
// AES units busy where a single CBC chain would stall on the data
// dependency.
void EncryptChains4(const __m128i* k, int rounds, const uint8_t* const* ivs,
                    const uint8_t* const* ins, uint8_t* const* outs,
                    size_t nblocks) {
  __m128i chain[4];
  for (int i = 0; i < 4; ++i) {
    chain[i] = _mm_loadu_si128(reinterpret_cast<const __m128i*>(ivs[i]));
  }
  for (size_t b = 0; b < nblocks; ++b) {
    __m128i x[4];
    for (int i = 0; i < 4; ++i) {
      const __m128i m =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(ins[i] + 16 * b));
      x[i] = _mm_xor_si128(_mm_xor_si128(m, chain[i]), k[0]);
    }
    for (int r = 1; r < rounds; ++r) {
      for (int i = 0; i < 4; ++i) x[i] = _mm_aesenc_si128(x[i], k[r]);
    }
    for (int i = 0; i < 4; ++i) {
      chain[i] = _mm_aesenclast_si128(x[i], k[rounds]);
      _mm_storeu_si128(reinterpret_cast<__m128i*>(outs[i] + 16 * b),
                       chain[i]);
    }
  }
}

// Eight chains per iteration, two per ymm register. Only reached when
// CPUID reports VAES + AVX2 with OS-enabled ymm state.
__attribute__((target("vaes,avx2,aes"))) void EncryptChains8Vaes(
    const uint8_t* rk, int rounds, const uint8_t* const* ivs,
    const uint8_t* const* ins, uint8_t* const* outs, size_t nblocks) {
  __m256i k[kMaxRounds + 1] = {};
  for (int r = 0; r <= rounds; ++r) {
    k[r] = _mm256_broadcastsi128_si256(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(rk + 16 * r)));
  }
  __m256i chain[4];
  for (int j = 0; j < 4; ++j) {
    chain[j] = _mm256_set_m128i(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(ivs[2 * j + 1])),
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(ivs[2 * j])));
  }
  for (size_t b = 0; b < nblocks; ++b) {
    __m256i x[4];
    for (int j = 0; j < 4; ++j) {
      const __m256i m = _mm256_set_m128i(
          _mm_loadu_si128(
              reinterpret_cast<const __m128i*>(ins[2 * j + 1] + 16 * b)),
          _mm_loadu_si128(
              reinterpret_cast<const __m128i*>(ins[2 * j] + 16 * b)));
      x[j] = _mm256_xor_si256(_mm256_xor_si256(m, chain[j]), k[0]);
    }
    for (int r = 1; r < rounds; ++r) {
      for (int j = 0; j < 4; ++j) x[j] = _mm256_aesenc_epi128(x[j], k[r]);
    }
    for (int j = 0; j < 4; ++j) {
      chain[j] = _mm256_aesenclast_epi128(x[j], k[rounds]);
      _mm_storeu_si128(reinterpret_cast<__m128i*>(outs[2 * j] + 16 * b),
                       _mm256_castsi256_si128(chain[j]));
      _mm_storeu_si128(reinterpret_cast<__m128i*>(outs[2 * j + 1] + 16 * b),
                       _mm256_extracti128_si256(chain[j], 1));
    }
  }
  _mm256_zeroupper();
}

}  // namespace

bool Compiled() { return true; }

void EncryptBlock(const uint8_t* rk, int rounds, const uint8_t* in,
                  uint8_t* out) {
  __m128i k[kMaxRounds + 1] = {};
  LoadKeys(rk, rounds, k);
  const __m128i x = EncryptOne(
      k, rounds, _mm_loadu_si128(reinterpret_cast<const __m128i*>(in)));
  _mm_storeu_si128(reinterpret_cast<__m128i*>(out), x);
}

void DecryptBlock(const uint8_t* dk, int rounds, const uint8_t* in,
                  uint8_t* out) {
  __m128i k[kMaxRounds + 1] = {};
  LoadKeys(dk, rounds, k);
  const __m128i x = DecryptOne(
      k, rounds, _mm_loadu_si128(reinterpret_cast<const __m128i*>(in)));
  _mm_storeu_si128(reinterpret_cast<__m128i*>(out), x);
}

void CbcEncrypt(const uint8_t* rk, int rounds, const uint8_t iv[16],
                const uint8_t* in, uint8_t* out, size_t nblocks) {
  __m128i k[kMaxRounds + 1] = {};
  LoadKeys(rk, rounds, k);
  __m128i chain = _mm_loadu_si128(reinterpret_cast<const __m128i*>(iv));
  for (size_t b = 0; b < nblocks; ++b) {
    const __m128i m =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(in + 16 * b));
    chain = EncryptOne(k, rounds, _mm_xor_si128(m, chain));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + 16 * b), chain);
  }
}

void CbcDecrypt(const uint8_t* dk, int rounds, const uint8_t iv[16],
                const uint8_t* in, uint8_t* out, size_t nblocks) {
  __m128i k[kMaxRounds + 1] = {};
  LoadKeys(dk, rounds, k);
  __m128i prev = _mm_loadu_si128(reinterpret_cast<const __m128i*>(iv));
  size_t b = 0;
  // Within a chain decryption is data-parallel: pipeline 8 blocks per
  // iteration. All 8 ciphertext blocks are loaded before any plaintext is
  // stored, so exact in == out aliasing is safe.
  for (; b + 8 <= nblocks; b += 8) {
    __m128i c[8], x[8];
    for (int i = 0; i < 8; ++i) {
      c[i] = _mm_loadu_si128(
          reinterpret_cast<const __m128i*>(in + 16 * (b + i)));
      x[i] = _mm_xor_si128(c[i], k[0]);
    }
    for (int r = 1; r < rounds; ++r) {
      for (int i = 0; i < 8; ++i) x[i] = _mm_aesdec_si128(x[i], k[r]);
    }
    for (int i = 0; i < 8; ++i) x[i] = _mm_aesdeclast_si128(x[i], k[rounds]);
    x[0] = _mm_xor_si128(x[0], prev);
    for (int i = 1; i < 8; ++i) x[i] = _mm_xor_si128(x[i], c[i - 1]);
    prev = c[7];
    for (int i = 0; i < 8; ++i) {
      _mm_storeu_si128(reinterpret_cast<__m128i*>(out + 16 * (b + i)), x[i]);
    }
  }
  for (; b < nblocks; ++b) {
    const __m128i c =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(in + 16 * b));
    const __m128i x = _mm_xor_si128(DecryptOne(k, rounds, c), prev);
    prev = c;
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + 16 * b), x);
  }
}

void CbcEncryptChains(const uint8_t* rk, int rounds,
                      const uint8_t* const* ivs, const uint8_t* const* ins,
                      uint8_t* const* outs, size_t nblocks, size_t nchains,
                      bool use_vaes) {
  size_t c = 0;
  if (use_vaes) {
    for (; c + 8 <= nchains; c += 8) {
      EncryptChains8Vaes(rk, rounds, ivs + c, ins + c, outs + c, nblocks);
    }
  }
  __m128i k[kMaxRounds + 1] = {};
  LoadKeys(rk, rounds, k);
  for (; c + 4 <= nchains; c += 4) {
    EncryptChains4(k, rounds, ivs + c, ins + c, outs + c, nblocks);
  }
  for (; c < nchains; ++c) {
    CbcEncrypt(rk, rounds, ivs[c], ins[c], outs[c], nblocks);
  }
}

#else  // !STEGHIDE_HAVE_AESNI

bool Compiled() { return false; }

void EncryptBlock(const uint8_t*, int, const uint8_t*, uint8_t*) {
  std::abort();
}
void DecryptBlock(const uint8_t*, int, const uint8_t*, uint8_t*) {
  std::abort();
}
void CbcEncrypt(const uint8_t*, int, const uint8_t[16], const uint8_t*,
                uint8_t*, size_t) {
  std::abort();
}
void CbcDecrypt(const uint8_t*, int, const uint8_t[16], const uint8_t*,
                uint8_t*, size_t) {
  std::abort();
}
void CbcEncryptChains(const uint8_t*, int, const uint8_t* const*,
                      const uint8_t* const*, uint8_t* const*, size_t, size_t,
                      bool) {
  std::abort();
}

#endif  // STEGHIDE_HAVE_AESNI

}  // namespace steghide::crypto::aesni
