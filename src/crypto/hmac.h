#ifndef STEGHIDE_CRYPTO_HMAC_H_
#define STEGHIDE_CRYPTO_HMAC_H_

#include "crypto/sha256.h"
#include "util/bytes.h"

namespace steghide::crypto {

/// HMAC-SHA256 (RFC 2104). Used for keyed derivations: subkeys of a file
/// access key, header-location derivation, and the hash-index nonce keys of
/// the oblivious store.
class HmacSha256 {
 public:
  explicit HmacSha256(const uint8_t* key, size_t key_len);
  explicit HmacSha256(const Bytes& key) : HmacSha256(key.data(), key.size()) {}

  void Update(const uint8_t* data, size_t n) { inner_.Update(data, n); }
  void Update(const Bytes& data) { inner_.Update(data); }
  void Update(std::string_view s) { inner_.Update(s); }

  Sha256::Digest Finish();

  /// One-shot convenience.
  static Sha256::Digest Mac(const Bytes& key, const Bytes& message);
  static Sha256::Digest Mac(const Bytes& key, std::string_view message);

 private:
  uint8_t opad_key_[Sha256::kBlockSize];
  Sha256 inner_;
};

}  // namespace steghide::crypto

#endif  // STEGHIDE_CRYPTO_HMAC_H_
