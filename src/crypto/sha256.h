#ifndef STEGHIDE_CRYPTO_SHA256_H_
#define STEGHIDE_CRYPTO_SHA256_H_

#include <array>
#include <cstdint>
#include <string_view>

#include "util/bytes.h"

namespace steghide::crypto {

/// SHA-256 as specified in FIPS 180-2. The paper uses SHA-256 both as the
/// basis of its pseudo-random number generator and (in our reproduction)
/// to derive block locations and subkeys from file access keys.
class Sha256 {
 public:
  static constexpr size_t kDigestSize = 32;
  static constexpr size_t kBlockSize = 64;

  using Digest = std::array<uint8_t, kDigestSize>;

  Sha256();

  /// Absorbs `n` bytes.
  void Update(const uint8_t* data, size_t n);
  void Update(const Bytes& data) { Update(data.data(), data.size()); }
  void Update(std::string_view s) {
    Update(reinterpret_cast<const uint8_t*>(s.data()), s.size());
  }

  /// Produces the digest. The object must not be used afterwards except
  /// via Reset().
  Digest Finish();

  /// Returns the object to its initial state.
  void Reset();

  /// One-shot convenience.
  static Digest Hash(const uint8_t* data, size_t n);
  static Digest Hash(const Bytes& data) { return Hash(data.data(), data.size()); }
  static Digest Hash(std::string_view s) {
    return Hash(reinterpret_cast<const uint8_t*>(s.data()), s.size());
  }

 private:
  /// Runs the compression function over `nblocks` consecutive 64-byte
  /// blocks — a single SHA-NI/ARMv8 kernel call on the accelerated path,
  /// the scalar round function per block otherwise.
  void CompressBlocks(const uint8_t* blocks, size_t nblocks);
  void CompressScalar(const uint8_t block[kBlockSize]);

  uint32_t h_[8];
  uint8_t buffer_[kBlockSize];
  size_t buffer_len_ = 0;
  uint64_t total_len_ = 0;
  // Latched per object at Reset() so one hash never mixes paths.
  bool accel_ = false;
};

}  // namespace steghide::crypto

#endif  // STEGHIDE_CRYPTO_SHA256_H_
