#include "crypto/sha_ni.h"

#include <cstdlib>

#if defined(__x86_64__) && defined(__SHA__)
#define STEGHIDE_HAVE_SHANI 1
#include <immintrin.h>
#endif

namespace steghide::crypto::shani {

#if defined(STEGHIDE_HAVE_SHANI)

namespace {

// FIPS 180-2 round constants, packed four per register for the
// two-rounds-at-a-time SHA256RNDS2 flow.
alignas(16) constexpr uint32_t kK[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

}  // namespace

bool Compiled() { return true; }

void Compress(uint32_t state[8], const uint8_t* blocks, size_t nblocks) {
  // Register layout follows Intel's reference flow: the eight working
  // words live as ABEF/CDGH pairs so SHA256RNDS2 can consume them
  // directly.
  __m128i tmp = _mm_loadu_si128(reinterpret_cast<const __m128i*>(&state[0]));
  __m128i state1 =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(&state[4]));
  const __m128i mask =
      _mm_set_epi64x(0x0c0d0e0f08090a0bULL, 0x0405060700010203ULL);

  tmp = _mm_shuffle_epi32(tmp, 0xB1);                  // CDAB
  state1 = _mm_shuffle_epi32(state1, 0x1B);            // EFGH
  __m128i state0 = _mm_alignr_epi8(tmp, state1, 8);    // ABEF
  state1 = _mm_blend_epi16(state1, tmp, 0xF0);         // CDGH

  while (nblocks-- > 0) {
    const __m128i abef_save = state0;
    const __m128i cdgh_save = state1;

    // m[j] holds message dwords W[4t .. 4t+3] as a ring buffer.
    __m128i m[4];
    for (int j = 0; j < 4; ++j) {
      m[j] = _mm_shuffle_epi8(
          _mm_loadu_si128(
              reinterpret_cast<const __m128i*>(blocks + 16 * j)),
          mask);
    }

    for (int i = 0; i < 16; ++i) {
      if (i >= 4) {
        // W[t] = W[t-16] + s0(W[t-15]) + W[t-7] + s1(W[t-2]), four at a
        // time: MSG1 folds the s0 terms, ALIGNR supplies W[t-7..t-4],
        // MSG2 folds the (serially dependent) s1 terms.
        const __m128i m1 = m[(i + 1) & 3];
        const __m128i m2 = m[(i + 2) & 3];
        const __m128i m3 = m[(i + 3) & 3];
        m[i & 3] = _mm_sha256msg2_epu32(
            _mm_add_epi32(_mm_sha256msg1_epu32(m[i & 3], m1),
                          _mm_alignr_epi8(m3, m2, 4)),
            m3);
      }
      __m128i wk = _mm_add_epi32(
          m[i & 3],
          _mm_load_si128(reinterpret_cast<const __m128i*>(&kK[4 * i])));
      state1 = _mm_sha256rnds2_epu32(state1, state0, wk);
      wk = _mm_shuffle_epi32(wk, 0x0E);
      state0 = _mm_sha256rnds2_epu32(state0, state1, wk);
    }

    state0 = _mm_add_epi32(state0, abef_save);
    state1 = _mm_add_epi32(state1, cdgh_save);
    blocks += 64;
  }

  tmp = _mm_shuffle_epi32(state0, 0x1B);               // FEBA
  state1 = _mm_shuffle_epi32(state1, 0xB1);            // DCHG
  state0 = _mm_blend_epi16(tmp, state1, 0xF0);         // DCBA
  state1 = _mm_alignr_epi8(state1, tmp, 8);            // HGFE

  _mm_storeu_si128(reinterpret_cast<__m128i*>(&state[0]), state0);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(&state[4]), state1);
}

#else  // !STEGHIDE_HAVE_SHANI

bool Compiled() { return false; }

void Compress(uint32_t[8], const uint8_t*, size_t) { std::abort(); }

#endif  // STEGHIDE_HAVE_SHANI

}  // namespace steghide::crypto::shani
