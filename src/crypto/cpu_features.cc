#include "crypto/cpu_features.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "crypto/aes_armv8.h"
#include "crypto/aes_ni.h"
#include "crypto/sha_ni.h"

#if defined(__x86_64__) || defined(_M_X64)
#include <cpuid.h>
#define STEGHIDE_X86_64 1
#elif defined(__aarch64__) && defined(__linux__)
#include <sys/auxv.h>
#define STEGHIDE_AARCH64_LINUX 1
#endif

namespace steghide::crypto {

namespace {

CpuCrypto Probe() {
  CpuCrypto out;
#if defined(STEGHIDE_X86_64)
  unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (!__get_cpuid(1, &eax, &ebx, &ecx, &edx)) return out;
  out.aes = (ecx & (1u << 25)) != 0;  // AESNI
  const bool osxsave = (ecx & (1u << 27)) != 0;
  const bool avx = (ecx & (1u << 28)) != 0;

  unsigned eax7 = 0, ebx7 = 0, ecx7 = 0, edx7 = 0;
  if (__get_cpuid_count(7, 0, &eax7, &ebx7, &ecx7, &edx7)) {
    out.sha256 = (ebx7 & (1u << 29)) != 0;  // SHA extensions
    const bool avx2 = (ebx7 & (1u << 5)) != 0;
    const bool vaes = (ecx7 & (1u << 9)) != 0;
    // VAES on ymm additionally needs the OS to save AVX state (xcr0
    // bits 1 and 2: XMM + YMM).
    bool ymm_enabled = false;
    if (osxsave && avx) {
      unsigned lo = 0, hi = 0;
      __asm__ volatile("xgetbv" : "=a"(lo), "=d"(hi) : "c"(0));
      ymm_enabled = (lo & 0x6) == 0x6;
    }
    out.vaes = out.aes && vaes && avx2 && ymm_enabled;
  }
#elif defined(STEGHIDE_AARCH64_LINUX)
  const unsigned long hwcap = getauxval(AT_HWCAP);
  // HWCAP_AES = 1<<3, HWCAP_SHA2 = 1<<6 (asm/hwcap.h); spelled out so the
  // probe compiles against old headers.
  out.aes = (hwcap & (1ul << 3)) != 0;
  out.sha256 = (hwcap & (1ul << 6)) != 0;
#endif
  return out;
}

// -1 = resolve from env/hardware, otherwise a CryptoImpl value installed
// by ScopedCryptoImpl.
std::atomic<int> g_override{-1};

CryptoImpl ResolveFromEnv() {
  const char* env = std::getenv("STEGHIDE_CRYPTO_IMPL");
  if (env != nullptr && std::strcmp(env, "scalar") == 0) {
    return CryptoImpl::kScalar;
  }
  // "accel" and unset both request the hardware path; per-primitive
  // fallback handles CPUs that lack an extension.
  return CryptoImpl::kAccel;
}

}  // namespace

const CpuCrypto& CpuCryptoSupport() {
  static const CpuCrypto features = Probe();
  return features;
}

CryptoImpl ActiveCryptoImpl() {
  const int forced = g_override.load(std::memory_order_relaxed);
  if (forced >= 0) return static_cast<CryptoImpl>(forced);
  static const CryptoImpl resolved = ResolveFromEnv();
  return resolved;
}

bool AesAccelerated() {
  // The hardware may support an extension the binary was not built with
  // (kernels compile only under their per-file ISA flags), so gate on
  // both the probe and the compiled-in kernels.
#if defined(__aarch64__)
  static const bool compiled = aesarm::Compiled();
#else
  static const bool compiled = aesni::Compiled();
#endif
  return compiled && ActiveCryptoImpl() == CryptoImpl::kAccel &&
         CpuCryptoSupport().aes;
}

bool Sha256Accelerated() {
#if defined(__aarch64__)
  static const bool compiled = shaarm::Compiled();
#else
  static const bool compiled = shani::Compiled();
#endif
  return compiled && ActiveCryptoImpl() == CryptoImpl::kAccel &&
         CpuCryptoSupport().sha256;
}

const char* CryptoImplName(CryptoImpl impl) {
  return impl == CryptoImpl::kScalar ? "scalar" : "accel";
}

ScopedCryptoImpl::ScopedCryptoImpl(CryptoImpl impl)
    : previous_(g_override.exchange(static_cast<int>(impl),
                                    std::memory_order_relaxed)) {}

ScopedCryptoImpl::~ScopedCryptoImpl() {
  g_override.store(previous_, std::memory_order_relaxed);
}

}  // namespace steghide::crypto
