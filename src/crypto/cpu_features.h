#ifndef STEGHIDE_CRYPTO_CPU_FEATURES_H_
#define STEGHIDE_CRYPTO_CPU_FEATURES_H_

namespace steghide::crypto {

/// Which crypto implementation the dispatcher resolved to.
enum class CryptoImpl {
  kScalar,  // portable table/word implementations
  kAccel,   // AES-NI/SHA-NI (x86) or ARMv8 crypto extensions
};

/// Hardware crypto capabilities of the running CPU, probed once (CPUID +
/// XGETBV on x86, hwcaps on aarch64) and cached.
struct CpuCrypto {
  bool aes = false;     // AES-NI / ARMv8 AES instructions usable
  bool vaes = false;    // 256-bit VAES (requires AVX2 + OS ymm state)
  bool sha256 = false;  // SHA-NI / ARMv8 SHA2 instructions usable
};

/// Cached capability probe. Reflects the hardware only, not the policy.
const CpuCrypto& CpuCryptoSupport();

/// The active implementation policy, resolved exactly once from the
/// hardware probe and the STEGHIDE_CRYPTO_IMPL environment variable
/// ("scalar" forces the portable path everywhere; "accel" requests the
/// hardware path, silently falling back per-primitive where the CPU lacks
/// it; unset/other defaults to "accel").
CryptoImpl ActiveCryptoImpl();

/// Per-primitive outcome of the policy: true when the corresponding
/// hardware kernel will actually be used.
bool AesAccelerated();
bool Sha256Accelerated();

const char* CryptoImplName(CryptoImpl impl);

/// Test/bench override: forces the policy for the lifetime of the object
/// and restores the previous one on destruction. Only affects objects that
/// key/reset *after* construction (Aes::SetKey and Sha256 latch the policy
/// per object). Not thread-safe against concurrent overrides; tests
/// install it on the main thread before spawning workers.
class ScopedCryptoImpl {
 public:
  explicit ScopedCryptoImpl(CryptoImpl impl);
  ~ScopedCryptoImpl();

  ScopedCryptoImpl(const ScopedCryptoImpl&) = delete;
  ScopedCryptoImpl& operator=(const ScopedCryptoImpl&) = delete;

 private:
  int previous_;
};

}  // namespace steghide::crypto

#endif  // STEGHIDE_CRYPTO_CPU_FEATURES_H_
