#include "crypto/key.h"

#include <cassert>
#include <cstring>

#include "crypto/hmac.h"

namespace steghide::crypto {

Bytes DeriveSubkey(const Bytes& master, std::string_view label,
                   size_t out_len) {
  assert(out_len <= Sha256::kDigestSize);
  HmacSha256 mac(master);
  mac.Update(label);
  const auto digest = mac.Finish();
  return Bytes(digest.begin(), digest.begin() + out_len);
}

uint64_t DeriveUint64(const Bytes& master, std::string_view label) {
  HmacSha256 mac(master);
  mac.Update(label);
  const auto digest = mac.Finish();
  return LoadBigEndian64(digest.data());
}

Bytes KeyFromPassphrase(std::string_view passphrase, std::string_view salt,
                        int iterations, size_t out_len) {
  assert(out_len <= Sha256::kDigestSize);
  Bytes pass(passphrase.begin(), passphrase.end());
  HmacSha256 first(pass);
  first.Update(salt);
  auto u = first.Finish();
  auto acc = u;
  for (int i = 1; i < iterations; ++i) {
    HmacSha256 mac(pass);
    mac.Update(u.data(), u.size());
    u = mac.Finish();
    for (size_t b = 0; b < acc.size(); ++b) acc[b] ^= u[b];
  }
  return Bytes(acc.begin(), acc.begin() + out_len);
}

}  // namespace steghide::crypto
