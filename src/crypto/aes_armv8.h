#ifndef STEGHIDE_CRYPTO_AES_ARMV8_H_
#define STEGHIDE_CRYPTO_AES_ARMV8_H_

#include <cstddef>
#include <cstdint>

// ARMv8 crypto-extension kernels (AES + SHA2), mirror images of the
// aesni/shani interfaces so the dispatch sites in aes.cc/cbc.cc/sha256.cc
// pick a namespace per architecture and stay otherwise identical. The
// round-key layout is the same serialized scalar schedule: ARM `aesd` +
// `aesimc` consume the equivalent-inverse-cipher keys exactly like x86
// `aesdec`.

namespace steghide::crypto::aesarm {

bool Compiled();

void EncryptBlock(const uint8_t* rk, int rounds, const uint8_t* in,
                  uint8_t* out);
void DecryptBlock(const uint8_t* dk, int rounds, const uint8_t* in,
                  uint8_t* out);

void CbcEncrypt(const uint8_t* rk, int rounds, const uint8_t iv[16],
                const uint8_t* in, uint8_t* out, size_t nblocks);
void CbcDecrypt(const uint8_t* dk, int rounds, const uint8_t iv[16],
                const uint8_t* in, uint8_t* out, size_t nblocks);

void CbcEncryptChains(const uint8_t* rk, int rounds,
                      const uint8_t* const* ivs, const uint8_t* const* ins,
                      uint8_t* const* outs, size_t nblocks, size_t nchains,
                      bool use_vaes);

}  // namespace steghide::crypto::aesarm

namespace steghide::crypto::shaarm {

bool Compiled();

void Compress(uint32_t state[8], const uint8_t* blocks, size_t nblocks);

}  // namespace steghide::crypto::shaarm

#endif  // STEGHIDE_CRYPTO_AES_ARMV8_H_
