#ifndef STEGHIDE_CRYPTO_KEY_H_
#define STEGHIDE_CRYPTO_KEY_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "util/bytes.h"

namespace steghide::crypto {

/// Default symmetric key length for the file system (AES-128).
inline constexpr size_t kDefaultKeyLen = 16;

/// Derives a labelled subkey from `master`:
///   subkey = HMAC-SHA256(master, label)[0 : out_len]
/// with out_len <= 32. Distinct labels give computationally independent
/// keys, which is how a FileAccessKey expands into its location / header /
/// content components (Section 4.2.1 of the paper).
Bytes DeriveSubkey(const Bytes& master, std::string_view label,
                   size_t out_len = kDefaultKeyLen);

/// Derives a 64-bit value from `master` and a label; used for header
/// location derivation (location = H(FAK, path) mod disk size).
uint64_t DeriveUint64(const Bytes& master, std::string_view label);

/// Stretches a human passphrase into a master key using iterated
/// HMAC-SHA256 (a fixed-iteration PBKDF2-like loop; this reproduction is
/// not concerned with GPU-resistance tuning).
Bytes KeyFromPassphrase(std::string_view passphrase, std::string_view salt,
                        int iterations = 10000,
                        size_t out_len = kDefaultKeyLen);

}  // namespace steghide::crypto

#endif  // STEGHIDE_CRYPTO_KEY_H_
