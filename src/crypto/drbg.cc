#include "crypto/drbg.h"

#include <cassert>
#include <cstring>

namespace steghide::crypto {

HashDrbg::HashDrbg(const Bytes& seed) {
  Sha256 h;
  h.Update("steghide-drbg-init");
  h.Update(seed);
  v_ = h.Finish();
  seed_v_ = v_;
  block_offset_ = Sha256::kDigestSize;  // force generation on first use
}

HashDrbg::HashDrbg(uint64_t seed) : HashDrbg([&] {
      Bytes b(8);
      StoreBigEndian64(b.data(), seed);
      return b;
    }()) {}

void HashDrbg::Reseed(const Bytes& seed) {
  std::lock_guard<std::mutex> lock(mu_);
  Sha256 h;
  h.Update("steghide-drbg-reseed");
  h.Update(v_.data(), v_.size());
  h.Update(seed);
  v_ = h.Finish();
  seed_v_ = v_;
  block_offset_ = Sha256::kDigestSize;
}

Bytes HashDrbg::ForkSeed(std::string_view domain, uint64_t id) const {
  Sha256 h;
  h.Update("steghide-drbg-fork");
  {
    std::lock_guard<std::mutex> lock(mu_);
    h.Update(seed_v_.data(), seed_v_.size());
  }
  h.Update(domain);
  uint8_t id_bytes[8];
  StoreBigEndian64(id_bytes, id);
  h.Update(id_bytes, sizeof(id_bytes));
  const Sha256::Digest d = h.Finish();
  return Bytes(d.begin(), d.end());
}

std::unique_ptr<HashDrbg> HashDrbg::Fork(std::string_view domain,
                                         uint64_t id) const {
  return std::make_unique<HashDrbg>(ForkSeed(domain, id));
}

void HashDrbg::Ratchet() {
  // block_i = H(V || i), the counter-mode output stage of Hash_DRBG.
  uint8_t ctr[8];
  StoreBigEndian64(ctr, counter_++);
  Sha256 h;
  h.Update(v_.data(), v_.size());
  h.Update(ctr, sizeof(ctr));
  block_ = h.Finish();
  block_offset_ = 0;
}

void HashDrbg::GenerateLocked(uint8_t* out, size_t n) {
  while (n > 0) {
    if (block_offset_ >= Sha256::kDigestSize) Ratchet();
    const size_t take =
        std::min(n, Sha256::kDigestSize - block_offset_);
    std::memcpy(out, block_.data() + block_offset_, take);
    block_offset_ += take;
    out += take;
    n -= take;
  }
}

uint64_t HashDrbg::NextUint64Locked() {
  uint8_t buf[8];
  GenerateLocked(buf, sizeof(buf));
  return LoadBigEndian64(buf);
}

void HashDrbg::Generate(uint8_t* out, size_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  GenerateLocked(out, n);
}

Bytes HashDrbg::Generate(size_t n) {
  Bytes out(n);
  Generate(out.data(), n);
  return out;
}

uint64_t HashDrbg::NextUint64() {
  std::lock_guard<std::mutex> lock(mu_);
  return NextUint64Locked();
}

uint64_t HashDrbg::Uniform(uint64_t bound) {
  assert(bound > 0);
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t threshold = -bound % bound;
  for (;;) {
    // The rejection loop draws under one lock hold, so a bounded draw is
    // one atomic consumption of the stream, exactly as it is
    // single-threaded.
    const uint64_t r = NextUint64Locked();
    if (r >= threshold) return r % bound;
  }
}

double HashDrbg::NextDouble() {
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

}  // namespace steghide::crypto
