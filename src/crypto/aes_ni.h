#ifndef STEGHIDE_CRYPTO_AES_NI_H_
#define STEGHIDE_CRYPTO_AES_NI_H_

#include <cstddef>
#include <cstdint>

namespace steghide::crypto::aesni {

// x86-64 AES-NI kernels. Round keys come serialized from the scalar
// Aes key schedule (big-endian word dump): `rk` is the standard FIPS 197
// encryption schedule, `dk` the equivalent-inverse-cipher schedule
// (round order reversed, InvMixColumns applied to the inner round keys) —
// exactly the layout `aesdec` expects, so the scalar expansion stays the
// single source of truth for both paths.
//
// Every kernel must only be called when CpuCryptoSupport().aes is true
// (.vaes for the use_vaes encrypt path); on other platforms the
// definitions are aborting stubs.

/// True when this translation unit was built with real AES-NI kernels.
bool Compiled();

void EncryptBlock(const uint8_t* rk, int rounds, const uint8_t* in,
                  uint8_t* out);
void DecryptBlock(const uint8_t* dk, int rounds, const uint8_t* in,
                  uint8_t* out);

/// One CBC chain of `nblocks` 16-byte blocks. Encryption is inherently
/// serial within the chain; decryption pipelines 8 blocks across the AES
/// units. `in` and `out` may alias exactly.
void CbcEncrypt(const uint8_t* rk, int rounds, const uint8_t iv[16],
                const uint8_t* in, uint8_t* out, size_t nblocks);
void CbcDecrypt(const uint8_t* dk, int rounds, const uint8_t iv[16],
                const uint8_t* in, uint8_t* out, size_t nblocks);

/// `nchains` independent CBC chains of `nblocks` blocks each: chain i runs
/// ins[i] -> outs[i] under ivs[i]. Interleaves 4 chains across the AES
/// units (8 chains per iteration on VAES hardware when `use_vaes`), which
/// is what makes batched sealing run at decrypt-like throughput despite
/// CBC encryption being serial per chain.
void CbcEncryptChains(const uint8_t* rk, int rounds,
                      const uint8_t* const* ivs, const uint8_t* const* ins,
                      uint8_t* const* outs, size_t nblocks, size_t nchains,
                      bool use_vaes);

}  // namespace steghide::crypto::aesni

#endif  // STEGHIDE_CRYPTO_AES_NI_H_
