#ifndef STEGHIDE_CRYPTO_DRBG_H_
#define STEGHIDE_CRYPTO_DRBG_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string_view>

#include "crypto/sha256.h"
#include "util/bytes.h"

namespace steghide::crypto {

/// Deterministic pseudo-random generator built from SHA-256, mirroring the
/// paper's construction (Section 6.1: "the pseudo-random number generator
/// is constructed from SHA256"). Structure follows the Hash_DRBG outline of
/// NIST SP 800-90A: a secret state V is hashed with a counter to produce
/// output, and reseeded by hashing in new material.
///
/// Security-relevant randomness in the reproduction — IVs, target-block
/// selection in the update engine, dummy-read choices, shuffle tags — is
/// drawn from this generator. Workload-level randomness uses util::Rng.
///
/// Thread safety: every draw is internally serialized, so a generator
/// shared between layers (StegFsCore's DRBG feeds the update engine, the
/// session layer, and the oblivious read path) stays well-defined when
/// agent sessions run on real threads. Each draw is atomic; the
/// *interleaving* of draws across threads is scheduling-dependent, which
/// is inherent to concurrent operation — deterministic tests pin the
/// issue order instead.
class HashDrbg {
 public:
  /// Seeds from arbitrary bytes. An empty seed is permitted (fixed state);
  /// tests use it for reproducibility.
  explicit HashDrbg(const Bytes& seed);
  explicit HashDrbg(uint64_t seed);

  /// Mixes additional entropy into the state.
  void Reseed(const Bytes& seed);

  /// Fills `out` with `n` pseudo-random bytes.
  void Generate(uint8_t* out, size_t n);
  Bytes Generate(size_t n);

  /// Uniform 64-bit value.
  uint64_t NextUint64();

  /// Uniform integer in [0, bound), bound > 0, rejection-sampled.
  uint64_t Uniform(uint64_t bound);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Seed material for an independent child stream, derived from this
  /// generator's *seed state* (the state right after construction or the
  /// last Reseed) together with `domain` and `id`. Deterministic: the same
  /// (seed, reseed history, domain, id) always yields the same child,
  /// regardless of how much output the parent has produced — and deriving
  /// a fork consumes no parent output.
  Bytes ForkSeed(std::string_view domain, uint64_t id) const;

  /// Convenience wrapper: a heap-allocated child stream seeded with
  /// ForkSeed (HashDrbg itself is immovable because of its mutex).
  std::unique_ptr<HashDrbg> Fork(std::string_view domain, uint64_t id) const;

 private:
  void Ratchet();
  void GenerateLocked(uint8_t* out, size_t n);
  uint64_t NextUint64Locked();

  mutable std::mutex mu_;
  Sha256::Digest v_;          // secret state
  Sha256::Digest seed_v_;     // V right after seeding/reseeding (for forks)
  Sha256::Digest block_;      // current output block
  size_t block_offset_ = 0;   // consumed bytes of block_
  uint64_t counter_ = 0;
};

}  // namespace steghide::crypto

#endif  // STEGHIDE_CRYPTO_DRBG_H_
