#include "crypto/hmac.h"

#include <cstring>

namespace steghide::crypto {

HmacSha256::HmacSha256(const uint8_t* key, size_t key_len) {
  uint8_t key_block[Sha256::kBlockSize] = {};
  if (key_len > Sha256::kBlockSize) {
    const auto digest = Sha256::Hash(key, key_len);
    std::memcpy(key_block, digest.data(), digest.size());
  } else {
    std::memcpy(key_block, key, key_len);
  }

  uint8_t ipad_key[Sha256::kBlockSize];
  for (size_t i = 0; i < Sha256::kBlockSize; ++i) {
    ipad_key[i] = key_block[i] ^ 0x36;
    opad_key_[i] = key_block[i] ^ 0x5c;
  }
  inner_.Update(ipad_key, sizeof(ipad_key));
}

Sha256::Digest HmacSha256::Finish() {
  const auto inner_digest = inner_.Finish();
  Sha256 outer;
  outer.Update(opad_key_, sizeof(opad_key_));
  outer.Update(inner_digest.data(), inner_digest.size());
  return outer.Finish();
}

Sha256::Digest HmacSha256::Mac(const Bytes& key, const Bytes& message) {
  HmacSha256 h(key);
  h.Update(message);
  return h.Finish();
}

Sha256::Digest HmacSha256::Mac(const Bytes& key, std::string_view message) {
  HmacSha256 h(key);
  h.Update(message);
  return h.Finish();
}

}  // namespace steghide::crypto
