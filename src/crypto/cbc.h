#ifndef STEGHIDE_CRYPTO_CBC_H_
#define STEGHIDE_CRYPTO_CBC_H_

#include <array>
#include <cstdint>

#include "crypto/aes.h"
#include "util/bytes.h"
#include "util/status.h"

namespace steghide::crypto {

/// 16-byte initialization vector. Every storage block starts with one
/// (Figure 5 of the paper); rewriting a block with a fresh IV changes the
/// whole ciphertext, which is what makes dummy updates indistinguishable
/// from real ones.
using Iv = std::array<uint8_t, Aes::kBlockSize>;

/// AES-CBC over whole multiples of the AES block size, without padding.
/// The steganographic file system always encrypts fixed-size block
/// payloads, so padding is unnecessary; callers must pass sizes that are a
/// multiple of 16.
///
/// On hardware with AES instructions (cpu_features.h) the single-chain
/// calls run on pipelined kernels, and the *Chains batch entry points
/// additionally interleave independent chains across the AES units — CBC
/// encryption is serial within a chain, so batching independently-IV'd
/// storage blocks is what recovers hardware throughput on the seal path.
class CbcCipher {
 public:
  CbcCipher() = default;

  Status SetKey(const uint8_t* key, size_t key_len) {
    return aes_.SetKey(key, key_len);
  }
  Status SetKey(const Bytes& key) { return aes_.SetKey(key); }

  /// Encrypts `n` bytes (n % 16 == 0) of `in` into `out` (may alias),
  /// chaining from `iv`.
  Status Encrypt(const Iv& iv, const uint8_t* in, size_t n, uint8_t* out) const;

  /// Decrypts `n` bytes (n % 16 == 0) of `in` into `out` (may alias).
  Status Decrypt(const Iv& iv, const uint8_t* in, size_t n, uint8_t* out) const;

  /// Encrypts `nchains` independent CBC chains of `n` bytes each
  /// (n % 16 == 0): chain i runs ins[i] -> outs[i] under the 16-byte IV at
  /// ivs[i]. Byte-for-byte equivalent to nchains sequential Encrypt calls.
  Status EncryptChains(const uint8_t* const* ivs, const uint8_t* const* ins,
                       uint8_t* const* outs, size_t n, size_t nchains) const;

  /// Decrypting twin of EncryptChains.
  Status DecryptChains(const uint8_t* const* ivs, const uint8_t* const* ins,
                       uint8_t* const* outs, size_t n, size_t nchains) const;

 private:
  Aes aes_;
};

}  // namespace steghide::crypto

#endif  // STEGHIDE_CRYPTO_CBC_H_
