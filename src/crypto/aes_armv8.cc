#include "crypto/aes_armv8.h"

#include <cstdlib>

// Built with -march=armv8-a+crypto on aarch64 (see src/crypto/
// CMakeLists.txt); runtime hwcap dispatch guarantees the kernels are only
// reached on hardware that has the extensions.
#if defined(__aarch64__) && \
    (defined(__ARM_FEATURE_CRYPTO) ||  \
     (defined(__ARM_FEATURE_AES) && defined(__ARM_FEATURE_SHA2)))
#define STEGHIDE_HAVE_ARMV8_CRYPTO 1
#include <arm_neon.h>
#endif

namespace steghide::crypto::aesarm {

#if defined(STEGHIDE_HAVE_ARMV8_CRYPTO)

namespace {

constexpr int kMaxRounds = 14;

inline void LoadKeys(const uint8_t* rk, int rounds, uint8x16_t* k) {
  for (int r = 0; r <= rounds; ++r) k[r] = vld1q_u8(rk + 16 * r);
}

// AESE folds AddRoundKey in *before* SubBytes/ShiftRows, so the flat
// operation sequence with the serialized scalar schedules matches the
// x86 aesenc/aesdec flow exactly (same keys, same order).
inline uint8x16_t EncryptOne(const uint8x16_t* k, int rounds, uint8x16_t x) {
  for (int r = 0; r < rounds - 1; ++r) {
    x = vaesmcq_u8(vaeseq_u8(x, k[r]));
  }
  return veorq_u8(vaeseq_u8(x, k[rounds - 1]), k[rounds]);
}

inline uint8x16_t DecryptOne(const uint8x16_t* k, int rounds, uint8x16_t x) {
  for (int r = 0; r < rounds - 1; ++r) {
    x = vaesimcq_u8(vaesdq_u8(x, k[r]));
  }
  return veorq_u8(vaesdq_u8(x, k[rounds - 1]), k[rounds]);
}

}  // namespace

bool Compiled() { return true; }

void EncryptBlock(const uint8_t* rk, int rounds, const uint8_t* in,
                  uint8_t* out) {
  uint8x16_t k[kMaxRounds + 1] = {};
  LoadKeys(rk, rounds, k);
  vst1q_u8(out, EncryptOne(k, rounds, vld1q_u8(in)));
}

void DecryptBlock(const uint8_t* dk, int rounds, const uint8_t* in,
                  uint8_t* out) {
  uint8x16_t k[kMaxRounds + 1] = {};
  LoadKeys(dk, rounds, k);
  vst1q_u8(out, DecryptOne(k, rounds, vld1q_u8(in)));
}

void CbcEncrypt(const uint8_t* rk, int rounds, const uint8_t iv[16],
                const uint8_t* in, uint8_t* out, size_t nblocks) {
  uint8x16_t k[kMaxRounds + 1] = {};
  LoadKeys(rk, rounds, k);
  uint8x16_t chain = vld1q_u8(iv);
  for (size_t b = 0; b < nblocks; ++b) {
    chain = EncryptOne(k, rounds, veorq_u8(vld1q_u8(in + 16 * b), chain));
    vst1q_u8(out + 16 * b, chain);
  }
}

void CbcDecrypt(const uint8_t* dk, int rounds, const uint8_t iv[16],
                const uint8_t* in, uint8_t* out, size_t nblocks) {
  uint8x16_t k[kMaxRounds + 1] = {};
  LoadKeys(dk, rounds, k);
  uint8x16_t prev = vld1q_u8(iv);
  size_t b = 0;
  // Pipeline 4 independent blocks per iteration; ciphertext is fully
  // loaded before plaintext stores, so in == out aliasing is safe.
  for (; b + 4 <= nblocks; b += 4) {
    uint8x16_t c[4], x[4];
    for (int i = 0; i < 4; ++i) c[i] = vld1q_u8(in + 16 * (b + i));
    for (int i = 0; i < 4; ++i) x[i] = c[i];
    for (int r = 0; r < rounds - 1; ++r) {
      for (int i = 0; i < 4; ++i) x[i] = vaesimcq_u8(vaesdq_u8(x[i], k[r]));
    }
    for (int i = 0; i < 4; ++i) {
      x[i] = veorq_u8(vaesdq_u8(x[i], k[rounds - 1]), k[rounds]);
    }
    x[0] = veorq_u8(x[0], prev);
    for (int i = 1; i < 4; ++i) x[i] = veorq_u8(x[i], c[i - 1]);
    prev = c[3];
    for (int i = 0; i < 4; ++i) vst1q_u8(out + 16 * (b + i), x[i]);
  }
  for (; b < nblocks; ++b) {
    const uint8x16_t c = vld1q_u8(in + 16 * b);
    const uint8x16_t x = veorq_u8(DecryptOne(k, rounds, c), prev);
    prev = c;
    vst1q_u8(out + 16 * b, x);
  }
}

void CbcEncryptChains(const uint8_t* rk, int rounds,
                      const uint8_t* const* ivs, const uint8_t* const* ins,
                      uint8_t* const* outs, size_t nblocks, size_t nchains,
                      bool /*use_vaes*/) {
  uint8x16_t k[kMaxRounds + 1] = {};
  LoadKeys(rk, rounds, k);
  size_t c = 0;
  for (; c + 4 <= nchains; c += 4) {
    uint8x16_t chain[4];
    for (int i = 0; i < 4; ++i) chain[i] = vld1q_u8(ivs[c + i]);
    for (size_t b = 0; b < nblocks; ++b) {
      uint8x16_t x[4];
      for (int i = 0; i < 4; ++i) {
        x[i] = veorq_u8(vld1q_u8(ins[c + i] + 16 * b), chain[i]);
      }
      for (int r = 0; r < rounds - 1; ++r) {
        for (int i = 0; i < 4; ++i) x[i] = vaesmcq_u8(vaeseq_u8(x[i], k[r]));
      }
      for (int i = 0; i < 4; ++i) {
        chain[i] = veorq_u8(vaeseq_u8(x[i], k[rounds - 1]), k[rounds]);
        vst1q_u8(outs[c + i] + 16 * b, chain[i]);
      }
    }
  }
  for (; c < nchains; ++c) {
    CbcEncrypt(rk, rounds, ivs[c], ins[c], outs[c], nblocks);
  }
}

#else  // !STEGHIDE_HAVE_ARMV8_CRYPTO

bool Compiled() { return false; }

void EncryptBlock(const uint8_t*, int, const uint8_t*, uint8_t*) {
  std::abort();
}
void DecryptBlock(const uint8_t*, int, const uint8_t*, uint8_t*) {
  std::abort();
}
void CbcEncrypt(const uint8_t*, int, const uint8_t[16], const uint8_t*,
                uint8_t*, size_t) {
  std::abort();
}
void CbcDecrypt(const uint8_t*, int, const uint8_t[16], const uint8_t*,
                uint8_t*, size_t) {
  std::abort();
}
void CbcEncryptChains(const uint8_t*, int, const uint8_t* const*,
                      const uint8_t* const*, uint8_t* const*, size_t, size_t,
                      bool) {
  std::abort();
}

#endif  // STEGHIDE_HAVE_ARMV8_CRYPTO

}  // namespace steghide::crypto::aesarm

namespace steghide::crypto::shaarm {

#if defined(STEGHIDE_HAVE_ARMV8_CRYPTO)

namespace {

alignas(16) constexpr uint32_t kK[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

}  // namespace

bool Compiled() { return true; }

void Compress(uint32_t state[8], const uint8_t* blocks, size_t nblocks) {
  uint32x4_t state0 = vld1q_u32(&state[0]);  // ABCD
  uint32x4_t state1 = vld1q_u32(&state[4]);  // EFGH

  while (nblocks-- > 0) {
    const uint32x4_t abcd_save = state0;
    const uint32x4_t efgh_save = state1;

    uint32x4_t m[4];
    for (int j = 0; j < 4; ++j) {
      m[j] = vreinterpretq_u32_u8(vrev32q_u8(vld1q_u8(blocks + 16 * j)));
    }

    for (int i = 0; i < 16; ++i) {
      if (i >= 4) {
        m[i & 3] = vsha256su1q_u32(
            vsha256su0q_u32(m[i & 3], m[(i + 1) & 3]), m[(i + 2) & 3],
            m[(i + 3) & 3]);
      }
      const uint32x4_t wk = vaddq_u32(m[i & 3], vld1q_u32(&kK[4 * i]));
      const uint32x4_t abcd = state0;
      state0 = vsha256hq_u32(state0, state1, wk);
      state1 = vsha256h2q_u32(state1, abcd, wk);
    }

    state0 = vaddq_u32(state0, abcd_save);
    state1 = vaddq_u32(state1, efgh_save);
    blocks += 64;
  }

  vst1q_u32(&state[0], state0);
  vst1q_u32(&state[4], state1);
}

#else  // !STEGHIDE_HAVE_ARMV8_CRYPTO

bool Compiled() { return false; }

void Compress(uint32_t[8], const uint8_t*, size_t) { std::abort(); }

#endif  // STEGHIDE_HAVE_ARMV8_CRYPTO

}  // namespace steghide::crypto::shaarm
