#include "crypto/cbc.h"

#include <cstring>

namespace steghide::crypto {

Status CbcCipher::Encrypt(const Iv& iv, const uint8_t* in, size_t n,
                          uint8_t* out) const {
  if (!aes_.has_key()) return Status::FailedPrecondition("CBC key not set");
  if (n % Aes::kBlockSize != 0) {
    return Status::InvalidArgument("CBC length must be a multiple of 16");
  }
  uint8_t chain[Aes::kBlockSize];
  std::memcpy(chain, iv.data(), sizeof(chain));
  for (size_t off = 0; off < n; off += Aes::kBlockSize) {
    uint8_t block[Aes::kBlockSize];
    std::memcpy(block, in + off, sizeof(block));
    XorBytes(block, chain, sizeof(block));
    aes_.EncryptBlock(block, out + off);
    std::memcpy(chain, out + off, sizeof(chain));
  }
  return Status::OK();
}

Status CbcCipher::Decrypt(const Iv& iv, const uint8_t* in, size_t n,
                          uint8_t* out) const {
  if (!aes_.has_key()) return Status::FailedPrecondition("CBC key not set");
  if (n % Aes::kBlockSize != 0) {
    return Status::InvalidArgument("CBC length must be a multiple of 16");
  }
  uint8_t chain[Aes::kBlockSize];
  std::memcpy(chain, iv.data(), sizeof(chain));
  for (size_t off = 0; off < n; off += Aes::kBlockSize) {
    uint8_t cipher_block[Aes::kBlockSize];
    std::memcpy(cipher_block, in + off, sizeof(cipher_block));
    uint8_t plain[Aes::kBlockSize];
    aes_.DecryptBlock(cipher_block, plain);
    XorBytes(plain, chain, sizeof(plain));
    std::memcpy(out + off, plain, sizeof(plain));
    std::memcpy(chain, cipher_block, sizeof(chain));
  }
  return Status::OK();
}

}  // namespace steghide::crypto
