#include "crypto/cbc.h"

#include <cstring>

#include "crypto/cpu_features.h"
#if defined(__aarch64__)
#include "crypto/aes_armv8.h"
#else
#include "crypto/aes_ni.h"
#endif

namespace steghide::crypto {

namespace {
#if defined(__aarch64__)
namespace hw = aesarm;
#else
namespace hw = aesni;
#endif
}  // namespace

Status CbcCipher::Encrypt(const Iv& iv, const uint8_t* in, size_t n,
                          uint8_t* out) const {
  if (!aes_.has_key()) return Status::FailedPrecondition("CBC key not set");
  if (n % Aes::kBlockSize != 0) {
    return Status::InvalidArgument("CBC length must be a multiple of 16");
  }
  if (aes_.accelerated()) {
    hw::CbcEncrypt(aes_.enc_round_keys(), aes_.rounds(), iv.data(), in, out,
                   n / Aes::kBlockSize);
    return Status::OK();
  }
  uint8_t chain[Aes::kBlockSize];
  std::memcpy(chain, iv.data(), sizeof(chain));
  for (size_t off = 0; off < n; off += Aes::kBlockSize) {
    uint8_t block[Aes::kBlockSize];
    std::memcpy(block, in + off, sizeof(block));
    XorBytes(block, chain, sizeof(block));
    aes_.EncryptBlock(block, out + off);
    std::memcpy(chain, out + off, sizeof(chain));
  }
  return Status::OK();
}

Status CbcCipher::Decrypt(const Iv& iv, const uint8_t* in, size_t n,
                          uint8_t* out) const {
  if (!aes_.has_key()) return Status::FailedPrecondition("CBC key not set");
  if (n % Aes::kBlockSize != 0) {
    return Status::InvalidArgument("CBC length must be a multiple of 16");
  }
  if (aes_.accelerated()) {
    hw::CbcDecrypt(aes_.dec_round_keys(), aes_.rounds(), iv.data(), in, out,
                   n / Aes::kBlockSize);
    return Status::OK();
  }
  uint8_t chain[Aes::kBlockSize];
  std::memcpy(chain, iv.data(), sizeof(chain));
  for (size_t off = 0; off < n; off += Aes::kBlockSize) {
    uint8_t cipher_block[Aes::kBlockSize];
    std::memcpy(cipher_block, in + off, sizeof(cipher_block));
    uint8_t plain[Aes::kBlockSize];
    aes_.DecryptBlock(cipher_block, plain);
    XorBytes(plain, chain, sizeof(plain));
    std::memcpy(out + off, plain, sizeof(plain));
    std::memcpy(chain, cipher_block, sizeof(chain));
  }
  return Status::OK();
}

Status CbcCipher::EncryptChains(const uint8_t* const* ivs,
                                const uint8_t* const* ins,
                                uint8_t* const* outs, size_t n,
                                size_t nchains) const {
  if (!aes_.has_key()) return Status::FailedPrecondition("CBC key not set");
  if (n % Aes::kBlockSize != 0) {
    return Status::InvalidArgument("CBC length must be a multiple of 16");
  }
  if (aes_.accelerated()) {
    hw::CbcEncryptChains(aes_.enc_round_keys(), aes_.rounds(), ivs, ins, outs,
                         n / Aes::kBlockSize, nchains,
                         CpuCryptoSupport().vaes);
    return Status::OK();
  }
  for (size_t c = 0; c < nchains; ++c) {
    Iv iv;
    std::memcpy(iv.data(), ivs[c], iv.size());
    STEGHIDE_RETURN_IF_ERROR(Encrypt(iv, ins[c], n, outs[c]));
  }
  return Status::OK();
}

Status CbcCipher::DecryptChains(const uint8_t* const* ivs,
                                const uint8_t* const* ins,
                                uint8_t* const* outs, size_t n,
                                size_t nchains) const {
  if (!aes_.has_key()) return Status::FailedPrecondition("CBC key not set");
  if (n % Aes::kBlockSize != 0) {
    return Status::InvalidArgument("CBC length must be a multiple of 16");
  }
  if (aes_.accelerated()) {
    // Decryption is parallel *within* a chain, so the per-chain kernel is
    // already pipelined; chains just run back to back.
    for (size_t c = 0; c < nchains; ++c) {
      hw::CbcDecrypt(aes_.dec_round_keys(), aes_.rounds(), ivs[c], ins[c],
                     outs[c], n / Aes::kBlockSize);
    }
    return Status::OK();
  }
  for (size_t c = 0; c < nchains; ++c) {
    Iv iv;
    std::memcpy(iv.data(), ivs[c], iv.size());
    STEGHIDE_RETURN_IF_ERROR(Decrypt(iv, ins[c], n, outs[c]));
  }
  return Status::OK();
}

}  // namespace steghide::crypto
