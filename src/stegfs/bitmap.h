#ifndef STEGHIDE_STEGFS_BITMAP_H_
#define STEGHIDE_STEGFS_BITMAP_H_

#include <cstdint>
#include <vector>

#include "util/bytes.h"
#include "util/result.h"

namespace steghide::stegfs {

/// Data-vs-dummy block map used by the non-volatile agent (Construction 1).
/// A set bit marks a block that carries real data (file header, indirect or
/// content block); clear bits are abandoned/dummy blocks.
///
/// The paper's non-volatile agent "possesses a non-volatile memory for
/// keeping some secrets on the file system"; this bitmap is that secret,
/// so it lives in agent memory and can be serialized (the caller is
/// responsible for encrypting the serialization if it is written to an
/// untrusted medium).
class BlockBitmap {
 public:
  explicit BlockBitmap(uint64_t num_blocks);

  uint64_t num_blocks() const { return num_blocks_; }

  bool IsData(uint64_t block_id) const;
  bool IsDummy(uint64_t block_id) const { return !IsData(block_id); }

  void MarkData(uint64_t block_id);
  void MarkDummy(uint64_t block_id);

  /// Number of data blocks (set bits).
  uint64_t data_count() const { return data_count_; }
  /// Number of dummy blocks.
  uint64_t dummy_count() const { return num_blocks_ - data_count_; }
  /// Fraction of the volume carrying data, the "space utilization" of
  /// Figure 11(a).
  double utilization() const {
    return num_blocks_ == 0
               ? 0.0
               : static_cast<double>(data_count_) /
                     static_cast<double>(num_blocks_);
  }

  /// Flat serialization: num_blocks (8 bytes BE) + packed bits.
  Bytes Serialize() const;
  static Result<BlockBitmap> Deserialize(const Bytes& data);

 private:
  uint64_t num_blocks_;
  uint64_t data_count_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace steghide::stegfs

#endif  // STEGHIDE_STEGFS_BITMAP_H_
