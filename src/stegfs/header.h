#ifndef STEGHIDE_STEGFS_HEADER_H_
#define STEGHIDE_STEGFS_HEADER_H_

#include <cstdint>
#include <vector>

#include "stegfs/format.h"
#include "stegfs/keys.h"
#include "util/bytes.h"
#include "util/result.h"

namespace steghide::stegfs {

/// In-memory image of a hidden file: the decrypted header tree flattened
/// into a logical-to-physical block map.
///
/// Mirrors the paper's design point that "the file header is always placed
/// in the cache and is written out only when the file is saved": agents
/// mutate this object freely (block relocations update `block_ptrs`) and
/// only pay header/indirect I/O on flush.
///
/// `is_dummy` is in-memory state only. On disk, dummy and real files are
/// byte-for-byte indistinguishable; the role is asserted by the user when
/// the FAK is disclosed.
struct HiddenFile {
  FileAccessKey fak;
  bool is_dummy = false;
  uint64_t file_size = 0;

  /// Logical data-block index -> physical block id.
  std::vector<uint64_t> block_ptrs;

  /// Physical locations of the indirect blocks currently backing the
  /// pointer tree on disk. Maintained at flush time.
  std::vector<uint64_t> indirect_locs;

  /// True when in-memory state diverges from the on-disk header tree.
  bool dirty = false;

  /// Opaque agent-assigned identifier (e.g. the volatile agent's FileId),
  /// so registry callbacks can map a HiddenFile& back to its bookkeeping.
  /// Not persisted.
  uint64_t agent_tag = 0;

  uint64_t num_data_blocks() const { return block_ptrs.size(); }

  /// Indirect blocks required to hold the pointers beyond the direct
  /// range.
  static uint64_t IndirectNeeded(uint64_t num_data_blocks, size_t block_size);
};

/// Serialises the header-block payload (magic, size, direct and indirect
/// pointer tables). `payload` must be PayloadSize(block_size) bytes.
void SerializeHeader(const HiddenFile& file, size_t block_size,
                     uint8_t* payload);

/// Parses and validates a decrypted header payload. Returns
/// PermissionDenied if the magic does not match, which callers surface as
/// "no such file" — a wrong key and an absent file are indistinguishable
/// by design.
Status ParseHeader(const uint8_t* payload, size_t block_size,
                   HiddenFile* out);

/// Serialises the payload of indirect block `index` (pointers
/// [kNumDirectPtrs + index*P, ...+P) of the file).
void SerializeIndirect(const HiddenFile& file, uint64_t index,
                       size_t block_size, uint8_t* payload);

/// Parses indirect block `index`, filling the corresponding range of
/// `out->block_ptrs` (which ParseHeader has already sized).
void ParseIndirect(const uint8_t* payload, uint64_t index, size_t block_size,
                   HiddenFile* out);

}  // namespace steghide::stegfs

#endif  // STEGHIDE_STEGFS_HEADER_H_
