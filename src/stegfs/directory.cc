#include "stegfs/directory.h"

#include <algorithm>

namespace steghide::stegfs {

namespace {
constexpr uint32_t kDirMagic = 0x53474449;  // "SGDI"
constexpr size_t kMaxNameLen = 4096;
}  // namespace

Status Directory::Add(Entry entry) {
  if (entry.name.empty() || entry.name.size() > kMaxNameLen) {
    return Status::InvalidArgument("entry name empty or too long");
  }
  if (Contains(entry.name)) {
    return Status::AlreadyExists("entry '" + entry.name + "' exists");
  }
  entries_.push_back(std::move(entry));
  return Status::OK();
}

Status Directory::Remove(std::string_view name) {
  const auto it =
      std::find_if(entries_.begin(), entries_.end(),
                   [&](const Entry& e) { return e.name == name; });
  if (it == entries_.end()) {
    return Status::NotFound("entry '" + std::string(name) + "' not found");
  }
  entries_.erase(it);
  return Status::OK();
}

Result<Directory::Entry> Directory::Lookup(std::string_view name) const {
  for (const Entry& e : entries_) {
    if (e.name == name) return e;
  }
  return Status::NotFound("entry '" + std::string(name) + "' not found");
}

bool Directory::Contains(std::string_view name) const {
  return std::any_of(entries_.begin(), entries_.end(),
                     [&](const Entry& e) { return e.name == name; });
}

Bytes Directory::Serialize() const {
  Bytes out;
  out.resize(8);
  StoreBigEndian32(out.data(), kDirMagic);
  StoreBigEndian32(out.data() + 4, static_cast<uint32_t>(entries_.size()));
  for (const Entry& e : entries_) {
    uint8_t fixed[2];
    fixed[0] = static_cast<uint8_t>(e.name.size() >> 8);
    fixed[1] = static_cast<uint8_t>(e.name.size());
    out.insert(out.end(), fixed, fixed + 2);
    out.insert(out.end(), e.name.begin(), e.name.end());
    uint8_t loc[8];
    StoreBigEndian64(loc, e.fak.header_location);
    out.insert(out.end(), loc, loc + 8);
    uint8_t klen = static_cast<uint8_t>(e.fak.header_key.size());
    out.push_back(klen);
    out.insert(out.end(), e.fak.header_key.begin(), e.fak.header_key.end());
    klen = static_cast<uint8_t>(e.fak.content_key.size());
    out.push_back(klen);
    out.insert(out.end(), e.fak.content_key.begin(), e.fak.content_key.end());
    out.push_back(e.is_directory ? 1 : 0);
  }
  return out;
}

Result<Directory> Directory::Deserialize(const Bytes& data) {
  size_t pos = 0;
  auto need = [&](size_t n) -> Status {
    if (pos + n > data.size()) {
      return Status::Corruption("directory: truncated");
    }
    return Status::OK();
  };

  STEGHIDE_RETURN_IF_ERROR(need(8));
  if (LoadBigEndian32(data.data()) != kDirMagic) {
    return Status::Corruption("directory: bad magic");
  }
  const uint32_t count = LoadBigEndian32(data.data() + 4);
  pos = 8;

  Directory dir;
  for (uint32_t i = 0; i < count; ++i) {
    STEGHIDE_RETURN_IF_ERROR(need(2));
    const size_t name_len = (static_cast<size_t>(data[pos]) << 8) | data[pos + 1];
    pos += 2;
    if (name_len == 0 || name_len > kMaxNameLen) {
      return Status::Corruption("directory: bad name length");
    }
    STEGHIDE_RETURN_IF_ERROR(need(name_len));
    Entry entry;
    entry.name.assign(data.begin() + pos, data.begin() + pos + name_len);
    pos += name_len;

    STEGHIDE_RETURN_IF_ERROR(need(8));
    entry.fak.header_location = LoadBigEndian64(data.data() + pos);
    pos += 8;

    for (Bytes* key : {&entry.fak.header_key, &entry.fak.content_key}) {
      STEGHIDE_RETURN_IF_ERROR(need(1));
      const size_t klen = data[pos++];
      if (klen != 16 && klen != 24 && klen != 32) {
        return Status::Corruption("directory: bad key length");
      }
      STEGHIDE_RETURN_IF_ERROR(need(klen));
      key->assign(data.begin() + pos, data.begin() + pos + klen);
      pos += klen;
    }

    STEGHIDE_RETURN_IF_ERROR(need(1));
    entry.is_directory = data[pos++] != 0;
    STEGHIDE_RETURN_IF_ERROR(dir.Add(std::move(entry)));
  }
  if (pos != data.size()) {
    return Status::Corruption("directory: trailing bytes");
  }
  return dir;
}

}  // namespace steghide::stegfs
