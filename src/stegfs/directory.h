#ifndef STEGHIDE_STEGFS_DIRECTORY_H_
#define STEGHIDE_STEGFS_DIRECTORY_H_

#include <string>
#include <string_view>
#include <vector>

#include "stegfs/keys.h"
#include "util/result.h"

namespace steghide::stegfs {

/// Hidden directory: a name -> FAK table that itself lives inside a
/// hidden file, giving the hierarchical "protected directory" structure
/// of StegFS [12]. Whoever holds the directory's FAK can enumerate and
/// open everything beneath it; without it, neither the names nor the
/// existence of the subtree can be established.
///
/// The class is pure data (serializable table); Store/Load helpers at the
/// bottom bind it to an agent. Entries may reference sub-directories,
/// forming an arbitrarily deep tree from one root FAK.
class Directory {
 public:
  struct Entry {
    std::string name;
    FileAccessKey fak;
    bool is_directory = false;

    bool operator==(const Entry&) const = default;
  };

  /// Adds an entry; fails with AlreadyExists on a duplicate name.
  Status Add(Entry entry);

  /// Removes an entry by name; NotFound if absent.
  Status Remove(std::string_view name);

  /// Looks an entry up by name.
  Result<Entry> Lookup(std::string_view name) const;

  bool Contains(std::string_view name) const;
  const std::vector<Entry>& entries() const { return entries_; }
  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  /// Compact binary serialization (encrypted implicitly by living in a
  /// hidden file's content blocks).
  Bytes Serialize() const;
  static Result<Directory> Deserialize(const Bytes& data);

 private:
  std::vector<Entry> entries_;
};

/// Persists `dir` into the hidden file `id` through `agent` (any agent
/// exposing Write/Truncate, e.g. VolatileAgent or NonVolatileAgent).
template <typename Agent>
Status StoreDirectory(Agent& agent, typename Agent::FileId id,
                      const Directory& dir) {
  const Bytes data = dir.Serialize();
  STEGHIDE_RETURN_IF_ERROR(agent.Write(id, 0, data));
  // Shrink away any tail of a previously larger directory.
  return agent.Truncate(id, data.size());
}

/// Loads a directory from the hidden file `id`.
template <typename Agent>
Result<Directory> LoadDirectory(Agent& agent, typename Agent::FileId id) {
  STEGHIDE_ASSIGN_OR_RETURN(const uint64_t size, agent.FileSize(id));
  STEGHIDE_ASSIGN_OR_RETURN(const Bytes data,
                            agent.Read(id, 0, static_cast<size_t>(size)));
  return Directory::Deserialize(data);
}

}  // namespace steghide::stegfs

#endif  // STEGHIDE_STEGFS_DIRECTORY_H_
