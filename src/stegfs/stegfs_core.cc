#include "stegfs/stegfs_core.h"

#include <cassert>
#include <cstring>

namespace steghide::stegfs {

StegFsCore::StegFsCore(storage::BlockDevice* device,
                       const StegFsOptions& options)
    : device_(device),
      codec_(device->block_size()),
      drbg_streams_(options.drbg_seed),
      format_rng_(options.drbg_seed ^ 0x666f726d61745f5fULL),
      fast_format_(options.fast_format) {
  assert(device->block_size() >= kMinBlockSize);
}

Status StegFsCore::Format() {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  Bytes block(codec_.block_size());
  for (uint64_t b = 0; b < device_->num_blocks(); ++b) {
    if (fast_format_) {
      format_rng_.Fill(block.data(), block.size());
    } else {
      drbg().Generate(block.data(), block.size());
    }
    STEGHIDE_RETURN_IF_ERROR(device_->WriteBlock(b, block.data()));
  }
  return Status::OK();
}

Result<const crypto::CbcCipher*> StegFsCore::CipherFor(const Bytes& key) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  auto it = cipher_cache_.find(key);
  if (it != cipher_cache_.end()) return it->second.get();
  auto cipher = std::make_unique<crypto::CbcCipher>();
  STEGHIDE_RETURN_IF_ERROR(cipher->SetKey(key));
  const crypto::CbcCipher* ptr = cipher.get();
  cipher_cache_.emplace(key, std::move(cipher));
  return ptr;
}

Result<HiddenFile> StegFsCore::LoadFile(const FileAccessKey& fak) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  if (fak.header_location >= num_blocks()) {
    return Status::OutOfRange("header location beyond volume");
  }
  STEGHIDE_ASSIGN_OR_RETURN(const crypto::CbcCipher* header_cipher,
                            CipherFor(fak.header_key));
  Bytes block;
  STEGHIDE_RETURN_IF_ERROR(ReadRaw(fak.header_location, block));
  Bytes payload(codec_.payload_size());
  STEGHIDE_RETURN_IF_ERROR(
      codec_.Open(*header_cipher, block.data(), payload.data()));

  HiddenFile file;
  file.fak = fak;
  STEGHIDE_RETURN_IF_ERROR(
      ParseHeader(payload.data(), codec_.block_size(), &file));

  // Pull in indirect blocks to complete the pointer map — one vectored
  // read and one batched open for the whole tree.
  if (!file.indirect_locs.empty()) {
    Bytes tree;
    STEGHIDE_RETURN_IF_ERROR(ReadRawBatch(file.indirect_locs, tree));
    const size_t count = file.indirect_locs.size();
    if (tree_payloads_.size() < count * codec_.payload_size()) {
      tree_payloads_.resize(count * codec_.payload_size());
    }
    STEGHIDE_RETURN_IF_ERROR(codec_.OpenBlocks(*header_cipher, tree.data(),
                                               count, tree_payloads_.data()));
    for (uint64_t i = 0; i < count; ++i) {
      ParseIndirect(tree_payloads_.data() + i * codec_.payload_size(), i,
                    codec_.block_size(), &file);
    }
  }
  return file;
}

Status StegFsCore::StoreFile(HiddenFile& file) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  if (file.num_data_blocks() > MaxFileBlocks(codec_.block_size())) {
    return Status::InvalidArgument(
        "file exceeds the maximum representable size");
  }
  const uint64_t indirect_needed =
      HiddenFile::IndirectNeeded(file.num_data_blocks(), codec_.block_size());
  if (file.indirect_locs.size() != indirect_needed) {
    return Status::FailedPrecondition(
        "indirect block locations not sized for file");
  }
  STEGHIDE_ASSIGN_OR_RETURN(const crypto::CbcCipher* header_cipher,
                            CipherFor(file.fak.header_key));

  // Serialize header + tree into consecutive payloads, seal them as one
  // multi-chain batch, and write the images with a single vectored
  // request (header first, as before).
  const size_t ps = codec_.payload_size();
  const size_t count = 1 + file.indirect_locs.size();
  std::vector<uint64_t> ids;
  ids.reserve(count);
  Bytes images(count * codec_.block_size());
  if (tree_payloads_.size() < count * ps) tree_payloads_.resize(count * ps);

  SerializeHeader(file, codec_.block_size(), tree_payloads_.data());
  ids.push_back(file.fak.header_location);
  for (uint64_t i = 0; i < file.indirect_locs.size(); ++i) {
    SerializeIndirect(file, i, codec_.block_size(),
                      tree_payloads_.data() + (i + 1) * ps);
    ids.push_back(file.indirect_locs[i]);
  }
  STEGHIDE_RETURN_IF_ERROR(codec_.SealBlocks(
      *header_cipher, drbg(), tree_payloads_.data(), count, images.data()));
  STEGHIDE_RETURN_IF_ERROR(device_->WriteBlocks(ids, images.data()));
  file.dirty = false;
  return Status::OK();
}

Status StegFsCore::ReadFileBlock(const HiddenFile& file, uint64_t logical,
                                 uint8_t* out_payload) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  if (logical >= file.num_data_blocks()) {
    return Status::OutOfRange("logical block beyond end of file");
  }
  const uint64_t physical = file.block_ptrs[logical];
  Bytes block;
  STEGHIDE_RETURN_IF_ERROR(ReadRaw(physical, block));
  if (file.is_dummy) {
    // Dummy content is unkeyed randomness; hand back the raw data field.
    std::memcpy(out_payload, block.data() + kIvSize, codec_.payload_size());
    return Status::OK();
  }
  STEGHIDE_ASSIGN_OR_RETURN(const crypto::CbcCipher* cipher,
                            CipherFor(file.fak.content_key));
  return codec_.Open(*cipher, block.data(), out_payload);
}

Status StegFsCore::ReadFileBlockSet(const HiddenFile& file,
                                    std::span<const uint64_t> logicals,
                                    uint8_t* out_payloads) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  if (logicals.empty()) return Status::OK();
  std::vector<uint64_t> physical;
  physical.reserve(logicals.size());
  for (const uint64_t logical : logicals) {
    if (logical >= file.num_data_blocks()) {
      return Status::OutOfRange("logical block beyond end of file");
    }
    physical.push_back(file.block_ptrs[logical]);
  }
  Bytes blocks;
  STEGHIDE_RETURN_IF_ERROR(ReadRawBatch(physical, blocks));

  if (file.is_dummy) {
    // Dummy content is unkeyed randomness; hand back the raw data fields.
    for (size_t i = 0; i < logicals.size(); ++i) {
      std::memcpy(out_payloads + i * codec_.payload_size(),
                  blocks.data() + i * codec_.block_size() + kIvSize,
                  codec_.payload_size());
    }
    return Status::OK();
  }
  STEGHIDE_ASSIGN_OR_RETURN(const crypto::CbcCipher* cipher,
                            CipherFor(file.fak.content_key));
  // Both sides are contiguous: the whole miss-fill decrypts as one
  // multi-chain batch.
  return codec_.OpenBlocks(*cipher, blocks.data(), logicals.size(),
                           out_payloads);
}

Status StegFsCore::ReadFileBlocks(const HiddenFile& file, uint64_t logical,
                                  uint64_t count, uint8_t* out_payloads) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  if (count == 0) return Status::OK();
  // Overflow-safe form of `logical + count > num_data_blocks`.
  if (logical >= file.num_data_blocks() ||
      count > file.num_data_blocks() - logical) {
    return Status::OutOfRange("logical block beyond end of file");
  }
  std::vector<uint64_t> logicals(count);
  for (uint64_t i = 0; i < count; ++i) logicals[i] = logical + i;
  return ReadFileBlockSet(file, logicals, out_payloads);
}

Status StegFsCore::WriteDataBlockAt(const HiddenFile& file, uint64_t physical,
                                    const uint8_t* payload) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  Bytes block(codec_.block_size());
  if (file.is_dummy) {
    codec_.Randomize(drbg(), block.data());
  } else {
    STEGHIDE_ASSIGN_OR_RETURN(const crypto::CbcCipher* cipher,
                              CipherFor(file.fak.content_key));
    STEGHIDE_RETURN_IF_ERROR(
        codec_.Seal(*cipher, drbg(), payload, block.data()));
  }
  return WriteRaw(physical, block);
}

Status StegFsCore::ReadRaw(uint64_t physical, Bytes& out) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  return device_->ReadBlock(physical, out);
}

Status StegFsCore::ReadRawBatch(std::span<const uint64_t> physical,
                                Bytes& out) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  return device_->ReadBlocks(physical, out);
}

Status StegFsCore::WriteRaw(uint64_t physical, const Bytes& block) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  return device_->WriteBlock(physical, block);
}

Status StegFsCore::RandomizeBlock(uint64_t physical) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  Bytes block(codec_.block_size());
  codec_.Randomize(drbg(), block.data());
  return WriteRaw(physical, block);
}

}  // namespace steghide::stegfs
