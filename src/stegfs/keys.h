#ifndef STEGHIDE_STEGFS_KEYS_H_
#define STEGHIDE_STEGFS_KEYS_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "crypto/drbg.h"
#include "util/bytes.h"
#include "util/result.h"

namespace steghide::stegfs {

/// File access key — the FAK of Section 4.2.1. It "comprises 3 components:
/// the location of the file header, a header key for encrypting the header
/// information, and a content key for encrypting the file content."
///
/// The components are *independent* secrets, which is what enables
/// plausible deniability: the owner of a hidden file can disclose the
/// header location and header key while presenting a wrong content key,
/// and claim the file is one of his dummy files. Nothing on disk can
/// contradict him.
struct FileAccessKey {
  uint64_t header_location = 0;
  Bytes header_key;   // 16 bytes (AES-128)
  Bytes content_key;  // 16 bytes; ignored for dummy files

  /// Generates a fresh FAK with an independently random location in
  /// [0, num_blocks) and random keys.
  static FileAccessKey Random(crypto::HashDrbg& drbg, uint64_t num_blocks);

  /// Deterministically derives a FAK from a passphrase and path, so a user
  /// can re-derive his keys anywhere-anytime without storing them. The
  /// header location is the first of a probe sequence; see
  /// DeriveLocationCandidate.
  static FileAccessKey FromPassphrase(std::string_view passphrase,
                                      std::string_view path,
                                      uint64_t num_blocks);

  /// i-th candidate header location for a passphrase-derived FAK; used to
  /// probe past occupied slots at create/open time.
  static uint64_t DeriveLocationCandidate(std::string_view passphrase,
                                          std::string_view path, uint64_t i,
                                          uint64_t num_blocks);

  /// Serializes to "location:headerkeyhex:contentkeyhex" so examples can
  /// print and re-read keys. Not a security boundary.
  std::string Serialize() const;
  static Result<FileAccessKey> Deserialize(std::string_view text);

  /// The deniable view of this key: same location and header key, but a
  /// freshly random content key. Handing this to an adversary makes the
  /// file indistinguishable from a dummy file.
  FileAccessKey WithDecoyContentKey(crypto::HashDrbg& drbg) const;

  bool operator==(const FileAccessKey&) const = default;
};

}  // namespace steghide::stegfs

#endif  // STEGHIDE_STEGFS_KEYS_H_
