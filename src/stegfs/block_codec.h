#ifndef STEGHIDE_STEGFS_BLOCK_CODEC_H_
#define STEGHIDE_STEGFS_BLOCK_CODEC_H_

#include "crypto/cbc.h"
#include "crypto/drbg.h"
#include "stegfs/format.h"
#include "util/bytes.h"
#include "util/status.h"

namespace steghide::stegfs {

/// Seals and opens on-disk blocks in the IV ∥ E_key(data field) format of
/// Figure 5. Stateless except for the block size.
class BlockCodec {
 public:
  explicit BlockCodec(size_t block_size) : block_size_(block_size) {}

  size_t block_size() const { return block_size_; }
  size_t payload_size() const { return PayloadSize(block_size_); }

  /// Encrypts `payload` (payload_size() bytes) under `cipher` with a fresh
  /// random IV drawn from `drbg`, producing a full block image in
  /// `out_block` (block_size() bytes).
  Status Seal(const crypto::CbcCipher& cipher, crypto::HashDrbg& drbg,
              const uint8_t* payload, uint8_t* out_block) const;

  /// Decrypts a full block image into `out_payload` (payload_size()
  /// bytes).
  Status Open(const crypto::CbcCipher& cipher, const uint8_t* block,
              uint8_t* out_payload) const;

  /// Dummy update on a block image: decrypts, draws a fresh IV, and
  /// re-encrypts in place, leaving the plaintext untouched. Every
  /// ciphertext byte changes, exactly like a real content update.
  Status Refresh(const crypto::CbcCipher& cipher, crypto::HashDrbg& drbg,
                 uint8_t* block) const;

  /// Overwrites the whole block image with fresh randomness — the state of
  /// an abandoned block, and also a valid dummy update for blocks whose
  /// plaintext is meaningless (dummy-file content).
  void Randomize(crypto::HashDrbg& drbg, uint8_t* block) const;

 private:
  size_t block_size_;
};

}  // namespace steghide::stegfs

#endif  // STEGHIDE_STEGFS_BLOCK_CODEC_H_
