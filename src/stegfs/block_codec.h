#ifndef STEGHIDE_STEGFS_BLOCK_CODEC_H_
#define STEGHIDE_STEGFS_BLOCK_CODEC_H_

#include <span>

#include "crypto/cbc.h"
#include "crypto/drbg.h"
#include "obs/metrics.h"
#include "stegfs/format.h"
#include "util/bytes.h"
#include "util/status.h"

namespace steghide::stegfs {

/// Seals and opens on-disk blocks in the IV ∥ E_key(data field) format of
/// Figure 5. Stateless except for the block size.
///
/// The *Blocks/*Scatter entry points process whole batches of
/// independently-IV'd blocks through CbcCipher's multi-chain kernels —
/// one call per IoBatch instead of one AES setup per block — and are
/// bytewise equivalent to the corresponding sequence of single-block
/// calls: batched IV draws consume the DRBG stream in exactly the same
/// order (the Hash_DRBG output stream is position-independent), so
/// batching can never change the attacker-visible trace.
class BlockCodec {
 public:
  explicit BlockCodec(size_t block_size) : block_size_(block_size) {}

  size_t block_size() const { return block_size_; }
  size_t payload_size() const { return PayloadSize(block_size_); }

  /// Encrypts `payload` (payload_size() bytes) under `cipher` with a fresh
  /// random IV drawn from `drbg`, producing a full block image in
  /// `out_block` (block_size() bytes).
  Status Seal(const crypto::CbcCipher& cipher, crypto::HashDrbg& drbg,
              const uint8_t* payload, uint8_t* out_block) const;

  /// Decrypts a full block image into `out_payload` (payload_size()
  /// bytes).
  Status Open(const crypto::CbcCipher& cipher, const uint8_t* block,
              uint8_t* out_payload) const;

  /// Seals `n` consecutive payloads at `payloads` into `n` consecutive
  /// block images at `out_blocks`. Equivalent to n Seal calls.
  Status SealBlocks(const crypto::CbcCipher& cipher, crypto::HashDrbg& drbg,
                    const uint8_t* payloads, size_t n,
                    uint8_t* out_blocks) const;

  /// Scattered seal: payloads[i] -> out_blocks[i].
  Status SealScatter(const crypto::CbcCipher& cipher, crypto::HashDrbg& drbg,
                     std::span<const uint8_t* const> payloads,
                     std::span<uint8_t* const> out_blocks) const;

  /// Opens `n` consecutive block images at `blocks` into `n` consecutive
  /// payloads at `out_payloads`. Equivalent to n Open calls.
  Status OpenBlocks(const crypto::CbcCipher& cipher, const uint8_t* blocks,
                    size_t n, uint8_t* out_payloads) const;

  /// Scattered open: blocks[i] -> out_payloads[i]. This is the shape of a
  /// level-scan pass: the real probes sit interleaved with decoys across
  /// per-pass buffers.
  Status OpenScatter(const crypto::CbcCipher& cipher,
                     std::span<const uint8_t* const> blocks,
                     std::span<uint8_t* const> out_payloads) const;

  /// Dummy update on a block image: decrypts, draws a fresh IV, and
  /// re-encrypts in place, leaving the plaintext untouched. Every
  /// ciphertext byte changes, exactly like a real content update.
  Status Refresh(const crypto::CbcCipher& cipher, crypto::HashDrbg& drbg,
                 uint8_t* block) const;

  /// Refreshes `n` consecutive block images in place. `scratch` (when
  /// given) holds the transient plaintext between open and re-seal and is
  /// resized as needed — callers on the dummy-update hot path keep one
  /// across calls so a refresh allocates nothing.
  Status RefreshBlocks(const crypto::CbcCipher& cipher,
                       crypto::HashDrbg& drbg, uint8_t* blocks, size_t n,
                       Bytes* scratch = nullptr) const;

  /// Overwrites the whole block image with fresh randomness — the state of
  /// an abandoned block, and also a valid dummy update for blocks whose
  /// plaintext is meaningless (dummy-file content).
  void Randomize(crypto::HashDrbg& drbg, uint8_t* block) const;

 private:
  size_t block_size_;
};

/// Process-wide crypto traffic instruments fed by every BlockCodec entry
/// point: "crypto.bytes" (payload bytes through AES, a refresh counts both
/// passes), "crypto.blocks", "crypto.batches" (one per API call — the
/// batching win shows as blocks/batches), plus "crypto.accel_aes" /
/// "crypto.accel_sha256" dispatch gauges (1 = hardware path active).
/// Borrow-registers into `registry`; keep the Registration alive for the
/// export window. Call once per registry: the cells are global, a second
/// registration of the same names would collide.
obs::Registration RegisterCryptoMetrics(obs::Registry* registry);

/// Snapshot of the global crypto counters (tests/benches).
struct CryptoTrafficSnapshot {
  uint64_t bytes = 0;
  uint64_t blocks = 0;
  uint64_t batches = 0;
};
CryptoTrafficSnapshot GlobalCryptoTraffic();

}  // namespace steghide::stegfs

#endif  // STEGHIDE_STEGFS_BLOCK_CODEC_H_
