#include "stegfs/keys.h"

#include <charconv>

#include "crypto/key.h"

namespace steghide::stegfs {

FileAccessKey FileAccessKey::Random(crypto::HashDrbg& drbg,
                                    uint64_t num_blocks) {
  FileAccessKey fak;
  fak.header_location = drbg.Uniform(num_blocks);
  fak.header_key = drbg.Generate(crypto::kDefaultKeyLen);
  fak.content_key = drbg.Generate(crypto::kDefaultKeyLen);
  return fak;
}

FileAccessKey FileAccessKey::FromPassphrase(std::string_view passphrase,
                                            std::string_view path,
                                            uint64_t num_blocks) {
  const Bytes master = crypto::KeyFromPassphrase(passphrase, path,
                                                 /*iterations=*/2048,
                                                 crypto::kDefaultKeyLen);
  FileAccessKey fak;
  fak.header_location = DeriveLocationCandidate(passphrase, path, 0,
                                                num_blocks);
  fak.header_key = crypto::DeriveSubkey(master, "header-key");
  fak.content_key = crypto::DeriveSubkey(master, "content-key");
  return fak;
}

uint64_t FileAccessKey::DeriveLocationCandidate(std::string_view passphrase,
                                                std::string_view path,
                                                uint64_t i,
                                                uint64_t num_blocks) {
  const Bytes master = crypto::KeyFromPassphrase(passphrase, path,
                                                 /*iterations=*/2048,
                                                 crypto::kDefaultKeyLen);
  const std::string label = "header-location:" + std::to_string(i);
  return crypto::DeriveUint64(master, label) % num_blocks;
}

std::string FileAccessKey::Serialize() const {
  return std::to_string(header_location) + ":" + ToHex(header_key) + ":" +
         ToHex(content_key);
}

Result<FileAccessKey> FileAccessKey::Deserialize(std::string_view text) {
  const size_t c1 = text.find(':');
  if (c1 == std::string_view::npos) {
    return Status::InvalidArgument("FAK: missing ':'");
  }
  const size_t c2 = text.find(':', c1 + 1);
  if (c2 == std::string_view::npos) {
    return Status::InvalidArgument("FAK: missing second ':'");
  }
  FileAccessKey fak;
  const std::string_view loc = text.substr(0, c1);
  const auto [ptr, ec] =
      std::from_chars(loc.data(), loc.data() + loc.size(), fak.header_location);
  if (ec != std::errc() || ptr != loc.data() + loc.size()) {
    return Status::InvalidArgument("FAK: bad location");
  }
  fak.header_key = FromHex(text.substr(c1 + 1, c2 - c1 - 1));
  fak.content_key = FromHex(text.substr(c2 + 1));
  if (fak.header_key.size() != crypto::kDefaultKeyLen ||
      fak.content_key.size() != crypto::kDefaultKeyLen) {
    return Status::InvalidArgument("FAK: bad key length");
  }
  return fak;
}

FileAccessKey FileAccessKey::WithDecoyContentKey(
    crypto::HashDrbg& drbg) const {
  FileAccessKey decoy = *this;
  decoy.content_key = drbg.Generate(crypto::kDefaultKeyLen);
  return decoy;
}

}  // namespace steghide::stegfs
