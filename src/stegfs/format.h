#ifndef STEGHIDE_STEGFS_FORMAT_H_
#define STEGHIDE_STEGFS_FORMAT_H_

#include <cstddef>
#include <cstdint>

#include "crypto/aes.h"
#include "storage/block_device.h"

namespace steghide::stegfs {

/// On-disk layout (Figure 5 of the paper).
///
/// Every block on the volume, whether it carries hidden data or abandoned
/// random bytes, has the same shape:
///
///   +----------------+------------------------------------+
///   | IV (16 bytes)  | data field (block_size - 16 bytes) |
///   +----------------+------------------------------------+
///
/// The data field is encrypted with AES-CBC seeded by the IV. Re-writing a
/// block with a fresh IV changes every ciphertext byte, so an observer
/// cannot tell a pure IV refresh (dummy update) from a content change.
inline constexpr size_t kIvSize = crypto::Aes::kBlockSize;

/// Usable payload bytes per block.
inline constexpr size_t PayloadSize(size_t block_size) {
  return block_size - kIvSize;
}

/// Hidden files are trees: a header block (the root, at a location
/// derivable from the file access key) holding direct pointers and
/// pointers to indirect blocks, which in turn hold data-block pointers.
///
/// Header data-field layout (all integers big-endian):
///   0   magic (8)            = kHeaderMagic; verifies the header key
///   8   file_size (8)        logical byte length
///   16  num_data_blocks (8)
///   24  flags (4)            reserved, always 0. Deliberately, a file's
///                            dummy-vs-real role is *never* recorded on
///                            disk: the headers of real and dummy files
///                            are structurally identical, otherwise
///                            disclosing a header key would prove which
///                            kind the file is and break deniability.
///   28  reserved (4)
///   32  direct pointers      kNumDirectPtrs x 8
///   ..  indirect pointers    kNumIndirectPtrs x 8
/// The remainder of the data field is zero, which after encryption is
/// indistinguishable from abandoned randomness.
inline constexpr uint64_t kHeaderMagic = 0x5354454748445231ULL;  // "STEGHDR1"

inline constexpr size_t kNumDirectPtrs = 400;
inline constexpr size_t kNumIndirectPtrs = 60;

/// Pointers per indirect block.
inline constexpr size_t PtrsPerIndirect(size_t block_size) {
  return PayloadSize(block_size) / 8;
}

/// Maximum data blocks a single file can span.
inline constexpr uint64_t MaxFileBlocks(size_t block_size) {
  return kNumDirectPtrs + kNumIndirectPtrs * PtrsPerIndirect(block_size);
}

/// Sentinel for "no block".
inline constexpr uint64_t kNullBlock = ~uint64_t{0};

/// Minimum block size that fits the header layout (and sanity floor).
inline constexpr size_t kMinBlockSize =
    kIvSize + 32 + 8 * (kNumDirectPtrs + kNumIndirectPtrs);

static_assert(storage::kDefaultBlockSize >= kMinBlockSize);

}  // namespace steghide::stegfs

#endif  // STEGHIDE_STEGFS_FORMAT_H_
