#include "stegfs/block_codec.h"

#include <cstring>

namespace steghide::stegfs {

Status BlockCodec::Seal(const crypto::CbcCipher& cipher,
                        crypto::HashDrbg& drbg, const uint8_t* payload,
                        uint8_t* out_block) const {
  crypto::Iv iv;
  drbg.Generate(iv.data(), iv.size());
  std::memcpy(out_block, iv.data(), kIvSize);
  return cipher.Encrypt(iv, payload, payload_size(), out_block + kIvSize);
}

Status BlockCodec::Open(const crypto::CbcCipher& cipher, const uint8_t* block,
                        uint8_t* out_payload) const {
  crypto::Iv iv;
  std::memcpy(iv.data(), block, kIvSize);
  return cipher.Decrypt(iv, block + kIvSize, payload_size(), out_payload);
}

Status BlockCodec::Refresh(const crypto::CbcCipher& cipher,
                           crypto::HashDrbg& drbg, uint8_t* block) const {
  Bytes payload(payload_size());
  STEGHIDE_RETURN_IF_ERROR(Open(cipher, block, payload.data()));
  return Seal(cipher, drbg, payload.data(), block);
}

void BlockCodec::Randomize(crypto::HashDrbg& drbg, uint8_t* block) const {
  drbg.Generate(block, block_size_);
}

}  // namespace steghide::stegfs
