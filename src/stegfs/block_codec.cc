#include "stegfs/block_codec.h"

#include <algorithm>
#include <cstring>

#include "crypto/cpu_features.h"

namespace steghide::stegfs {

namespace {

// Chains handed to the cipher per kernel invocation. Bounds the on-stack
// pointer tables (3 × 64 × 8 B) and the per-chunk IV draw while still
// keeping the VAES/interleaved kernels saturated.
constexpr size_t kChainChunk = 64;

struct CryptoCells {
  obs::CounterCell bytes;
  obs::CounterCell blocks;
  obs::CounterCell batches;
};

CryptoCells& Cells() {
  static CryptoCells cells;
  return cells;
}

void Count(size_t nblocks, size_t payload_bytes_per_block, size_t passes = 1) {
  CryptoCells& c = Cells();
  c.bytes.Add(static_cast<uint64_t>(nblocks) * payload_bytes_per_block *
              passes);
  c.blocks.Add(nblocks);
  c.batches.Increment();
}

}  // namespace

Status BlockCodec::Seal(const crypto::CbcCipher& cipher,
                        crypto::HashDrbg& drbg, const uint8_t* payload,
                        uint8_t* out_block) const {
  crypto::Iv iv;
  drbg.Generate(iv.data(), iv.size());
  std::memcpy(out_block, iv.data(), kIvSize);
  Count(1, payload_size());
  return cipher.Encrypt(iv, payload, payload_size(), out_block + kIvSize);
}

Status BlockCodec::Open(const crypto::CbcCipher& cipher, const uint8_t* block,
                        uint8_t* out_payload) const {
  crypto::Iv iv;
  std::memcpy(iv.data(), block, kIvSize);
  Count(1, payload_size());
  return cipher.Decrypt(iv, block + kIvSize, payload_size(), out_payload);
}

Status BlockCodec::SealBlocks(const crypto::CbcCipher& cipher,
                              crypto::HashDrbg& drbg, const uint8_t* payloads,
                              size_t n, uint8_t* out_blocks) const {
  const size_t ps = payload_size();
  uint8_t iv_buf[kChainChunk * kIvSize];
  const uint8_t* ivs[kChainChunk];
  const uint8_t* ins[kChainChunk];
  uint8_t* outs[kChainChunk];
  for (size_t done = 0; done < n;) {
    const size_t take = std::min(n - done, kChainChunk);
    // One draw for the whole chunk consumes the DRBG stream byte-for-byte
    // as `take` single-IV draws would (the output stream is
    // position-independent), so batching is invisible to the trace.
    drbg.Generate(iv_buf, take * kIvSize);
    for (size_t i = 0; i < take; ++i) {
      uint8_t* block = out_blocks + (done + i) * block_size_;
      std::memcpy(block, iv_buf + i * kIvSize, kIvSize);
      ivs[i] = block;
      ins[i] = payloads + (done + i) * ps;
      outs[i] = block + kIvSize;
    }
    STEGHIDE_RETURN_IF_ERROR(cipher.EncryptChains(ivs, ins, outs, ps, take));
    done += take;
  }
  Count(n, ps);
  return Status::OK();
}

Status BlockCodec::SealScatter(const crypto::CbcCipher& cipher,
                               crypto::HashDrbg& drbg,
                               std::span<const uint8_t* const> payloads,
                               std::span<uint8_t* const> out_blocks) const {
  if (payloads.size() != out_blocks.size()) {
    return Status::InvalidArgument("seal batch size mismatch");
  }
  const size_t ps = payload_size();
  uint8_t iv_buf[kChainChunk * kIvSize];
  const uint8_t* ivs[kChainChunk];
  const uint8_t* ins[kChainChunk];
  uint8_t* outs[kChainChunk];
  const size_t n = payloads.size();
  for (size_t done = 0; done < n;) {
    const size_t take = std::min(n - done, kChainChunk);
    drbg.Generate(iv_buf, take * kIvSize);
    for (size_t i = 0; i < take; ++i) {
      uint8_t* block = out_blocks[done + i];
      std::memcpy(block, iv_buf + i * kIvSize, kIvSize);
      ivs[i] = block;
      ins[i] = payloads[done + i];
      outs[i] = block + kIvSize;
    }
    STEGHIDE_RETURN_IF_ERROR(cipher.EncryptChains(ivs, ins, outs, ps, take));
    done += take;
  }
  Count(n, ps);
  return Status::OK();
}

Status BlockCodec::OpenBlocks(const crypto::CbcCipher& cipher,
                              const uint8_t* blocks, size_t n,
                              uint8_t* out_payloads) const {
  const size_t ps = payload_size();
  const uint8_t* ivs[kChainChunk];
  const uint8_t* ins[kChainChunk];
  uint8_t* outs[kChainChunk];
  for (size_t done = 0; done < n;) {
    const size_t take = std::min(n - done, kChainChunk);
    for (size_t i = 0; i < take; ++i) {
      const uint8_t* block = blocks + (done + i) * block_size_;
      ivs[i] = block;
      ins[i] = block + kIvSize;
      outs[i] = out_payloads + (done + i) * ps;
    }
    STEGHIDE_RETURN_IF_ERROR(cipher.DecryptChains(ivs, ins, outs, ps, take));
    done += take;
  }
  Count(n, ps);
  return Status::OK();
}

Status BlockCodec::OpenScatter(const crypto::CbcCipher& cipher,
                               std::span<const uint8_t* const> blocks,
                               std::span<uint8_t* const> out_payloads) const {
  if (blocks.size() != out_payloads.size()) {
    return Status::InvalidArgument("open batch size mismatch");
  }
  const size_t ps = payload_size();
  const uint8_t* ivs[kChainChunk];
  const uint8_t* ins[kChainChunk];
  uint8_t* outs[kChainChunk];
  const size_t n = blocks.size();
  for (size_t done = 0; done < n;) {
    const size_t take = std::min(n - done, kChainChunk);
    for (size_t i = 0; i < take; ++i) {
      const uint8_t* block = blocks[done + i];
      ivs[i] = block;
      ins[i] = block + kIvSize;
      outs[i] = out_payloads[done + i];
    }
    STEGHIDE_RETURN_IF_ERROR(cipher.DecryptChains(ivs, ins, outs, ps, take));
    done += take;
  }
  Count(n, ps);
  return Status::OK();
}

Status BlockCodec::Refresh(const crypto::CbcCipher& cipher,
                           crypto::HashDrbg& drbg, uint8_t* block) const {
  return RefreshBlocks(cipher, drbg, block, 1);
}

Status BlockCodec::RefreshBlocks(const crypto::CbcCipher& cipher,
                                 crypto::HashDrbg& drbg, uint8_t* blocks,
                                 size_t n, Bytes* scratch) const {
  const size_t ps = payload_size();
  Bytes local;
  Bytes& plain = scratch != nullptr ? *scratch : local;
  const size_t chunk = std::min(n, kChainChunk);
  if (plain.size() < chunk * ps) plain.resize(chunk * ps);
  for (size_t done = 0; done < n;) {
    const size_t take = std::min(n - done, kChainChunk);
    uint8_t* chunk_blocks = blocks + done * block_size_;
    STEGHIDE_RETURN_IF_ERROR(
        OpenBlocks(cipher, chunk_blocks, take, plain.data()));
    STEGHIDE_RETURN_IF_ERROR(
        SealBlocks(cipher, drbg, plain.data(), take, chunk_blocks));
    done += take;
  }
  return Status::OK();
}

void BlockCodec::Randomize(crypto::HashDrbg& drbg, uint8_t* block) const {
  drbg.Generate(block, block_size_);
}

obs::Registration RegisterCryptoMetrics(obs::Registry* registry) {
  obs::Registration reg(registry);
  CryptoCells& c = Cells();
  reg.Counter("crypto.bytes", &c.bytes);
  reg.Counter("crypto.blocks", &c.blocks);
  reg.Counter("crypto.batches", &c.batches);
  reg.Callback("crypto.accel_aes", [] {
    return crypto::AesAccelerated() ? 1.0 : 0.0;
  });
  reg.Callback("crypto.accel_sha256", [] {
    return crypto::Sha256Accelerated() ? 1.0 : 0.0;
  });
  return reg;
}

CryptoTrafficSnapshot GlobalCryptoTraffic() {
  CryptoCells& c = Cells();
  CryptoTrafficSnapshot snap;
  snap.bytes = c.bytes.value();
  snap.blocks = c.blocks.value();
  snap.batches = c.batches.value();
  return snap;
}

}  // namespace steghide::stegfs
