#ifndef STEGHIDE_STEGFS_STEGFS_CORE_H_
#define STEGHIDE_STEGFS_STEGFS_CORE_H_

#include <map>
#include <memory>
#include <mutex>

#include "crypto/cbc.h"
#include "crypto/drbg.h"
#include "crypto/drbg_streams.h"
#include "stegfs/block_codec.h"
#include "stegfs/header.h"
#include "stegfs/keys.h"
#include "storage/block_device.h"
#include "util/random.h"
#include "util/result.h"

namespace steghide::stegfs {

struct StegFsOptions {
  /// Seed for the core's security DRBG (IVs, randomisation). Experiments
  /// pass explicit seeds for reproducibility.
  uint64_t drbg_seed = 1;
  /// Formatting fills the volume with fast non-cryptographic randomness
  /// instead of DRBG output. A deployment would use the DRBG; the
  /// statistical properties that matter to the simulated attacker are
  /// identical, and formatting a gigabyte volume becomes ~10x faster.
  bool fast_format = true;
};

/// Shared machinery of the steganographic file system from [12] (Pang,
/// Tan, Zhou, ICDE 2003): the encrypted-scattered-block volume and the
/// header-tree hidden files. The agents in src/agent build the paper's new
/// mechanisms (update hiding, oblivious reads) on top of this.
///
/// StegFsCore performs raw block I/O through the supplied BlockDevice —
/// typically a SimBlockDevice so that every access is charged on the
/// virtual disk clock.
///
/// Thread safety: public operations are serialized by one internal
/// (recursive) mutex at whole-operation granularity — a header-tree load,
/// a vectored data-block read, a raw write each run as one critical
/// section, which also means the underlying device keeps seeing
/// single-issuer call sequences. drbg() returns the calling thread's
/// stream of a DrbgStreams family (root for the first-arriving thread,
/// deterministic forks for later ones), so concurrent draws never
/// contend on one generator lock and never couple their byte streams;
/// single-threaded use is byte-identical to the old shared generator.
/// Pointers/references returned by accessors (device(), codec()) must
/// only be used by code that already holds a higher-level serialization
/// (the dispatcher's single I/O thread or an agent lock).
class StegFsCore {
 public:
  /// Does not take ownership of `device`.
  StegFsCore(storage::BlockDevice* device, const StegFsOptions& options);

  storage::BlockDevice& device() { return *device_; }
  const BlockCodec& codec() const { return codec_; }
  /// The calling thread's DRBG stream.
  crypto::HashDrbg& drbg() { return drbg_streams_.ForThread(); }
  /// The whole stream family (introspection / tests).
  crypto::DrbgStreams& drbg_streams() { return drbg_streams_; }
  uint64_t num_blocks() const { return device_->num_blocks(); }
  size_t payload_size() const { return codec_.payload_size(); }

  /// Fills every block of the volume with randomness — the "number of
  /// randomly selected blocks [that] are initially filled with random data
  /// and abandoned" step, extended (as in [12]) to the entire volume so
  /// that a hidden block and an abandoned block are indistinguishable.
  Status Format();

  /// Returns a cached CBC cipher keyed by `key` (AES-128/192/256 by
  /// length).
  Result<const crypto::CbcCipher*> CipherFor(const Bytes& key);

  // ---- Header-tree I/O ------------------------------------------------

  /// Loads the file rooted at fak.header_location. Fails with
  /// PermissionDenied when the header key does not open a valid header —
  /// deliberately the same observable outcome as "no such file".
  Result<HiddenFile> LoadFile(const FileAccessKey& fak);

  /// Writes the header block and all indirect blocks of `file` at their
  /// recorded locations (fak.header_location / file.indirect_locs) and
  /// clears the dirty flag. The caller must have sized `indirect_locs`
  /// correctly (agents allocate/release indirect blocks before flushing).
  Status StoreFile(HiddenFile& file);

  // ---- Data-block I/O -------------------------------------------------

  /// Reads logical block `logical` of `file` into `out_payload`
  /// (payload_size() bytes). For dummy files the "payload" is the raw
  /// (meaningless) data field.
  Status ReadFileBlock(const HiddenFile& file, uint64_t logical,
                       uint8_t* out_payload);

  /// Vectored variant: reads `count` consecutive logical blocks starting
  /// at `logical`, depositing payloads at out_payloads + i *
  /// payload_size(). Issues one ReadBlocks against the device so caching
  /// and scheduling decorators see the whole request.
  Status ReadFileBlocks(const HiddenFile& file, uint64_t logical,
                        uint64_t count, uint8_t* out_payloads);

  /// Scattered vectored variant: reads the (not necessarily consecutive)
  /// logical blocks `logicals[i]`, depositing payloads at
  /// out_payloads + i * payload_size(). One ReadBlocks against the
  /// device — the miss-fill path of batched oblivious retrieval.
  Status ReadFileBlockSet(const HiddenFile& file,
                          std::span<const uint64_t> logicals,
                          uint8_t* out_payloads);

  /// Seals `payload` under the file's content key and writes it at
  /// physical block `physical`. Does not touch file.block_ptrs; the
  /// caller (the update engine) owns relocation bookkeeping.
  Status WriteDataBlockAt(const HiddenFile& file, uint64_t physical,
                          const uint8_t* payload);

  /// Reads a raw block image (IV + ciphertext) without decryption.
  Status ReadRaw(uint64_t physical, Bytes& out);
  /// Vectored raw read: block `physical[i]` lands at out.data() + i *
  /// block_size. Resizes `out`.
  Status ReadRawBatch(std::span<const uint64_t> physical, Bytes& out);
  /// Writes a raw block image.
  Status WriteRaw(uint64_t physical, const Bytes& block);

  /// Overwrites `physical` with fresh randomness (abandoned state).
  Status RandomizeBlock(uint64_t physical);

 private:
  storage::BlockDevice* device_;
  BlockCodec codec_;
  crypto::DrbgStreams drbg_streams_;
  Rng format_rng_;
  bool fast_format_;
  /// Header/indirect payload staging reused across LoadFile/StoreFile
  /// calls (guarded by mu_ like the operations themselves).
  Bytes tree_payloads_;
  std::map<Bytes, std::unique_ptr<crypto::CbcCipher>> cipher_cache_;
  /// Serializes public operations. Recursive because the compound
  /// operations (LoadFile, StoreFile, ReadFileBlockSet, ...) are built
  /// from the public raw-I/O and cipher-cache primitives.
  mutable std::recursive_mutex mu_;
};

}  // namespace steghide::stegfs

#endif  // STEGHIDE_STEGFS_STEGFS_CORE_H_
