#include "stegfs/header.h"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace steghide::stegfs {

namespace {
constexpr size_t kOffMagic = 0;
constexpr size_t kOffFileSize = 8;
constexpr size_t kOffNumBlocks = 16;
constexpr size_t kOffFlags = 24;
constexpr size_t kOffDirect = 32;
constexpr size_t OffIndirect() { return kOffDirect + 8 * kNumDirectPtrs; }
}  // namespace

uint64_t HiddenFile::IndirectNeeded(uint64_t num_data_blocks,
                                    size_t block_size) {
  if (num_data_blocks <= kNumDirectPtrs) return 0;
  const uint64_t rest = num_data_blocks - kNumDirectPtrs;
  const uint64_t per = PtrsPerIndirect(block_size);
  return (rest + per - 1) / per;
}

void SerializeHeader(const HiddenFile& file, size_t block_size,
                     uint8_t* payload) {
  assert(file.num_data_blocks() <= MaxFileBlocks(block_size));
  assert(file.indirect_locs.size() ==
         HiddenFile::IndirectNeeded(file.num_data_blocks(), block_size));
  std::memset(payload, 0, PayloadSize(block_size));
  StoreBigEndian64(payload + kOffMagic, kHeaderMagic);
  StoreBigEndian64(payload + kOffFileSize, file.file_size);
  StoreBigEndian64(payload + kOffNumBlocks, file.num_data_blocks());
  StoreBigEndian32(payload + kOffFlags, 0);

  const uint64_t direct =
      std::min<uint64_t>(file.num_data_blocks(), kNumDirectPtrs);
  for (uint64_t i = 0; i < direct; ++i) {
    StoreBigEndian64(payload + kOffDirect + 8 * i, file.block_ptrs[i]);
  }
  for (uint64_t i = 0; i < file.indirect_locs.size(); ++i) {
    StoreBigEndian64(payload + OffIndirect() + 8 * i, file.indirect_locs[i]);
  }
}

Status ParseHeader(const uint8_t* payload, size_t block_size,
                   HiddenFile* out) {
  if (LoadBigEndian64(payload + kOffMagic) != kHeaderMagic) {
    return Status::PermissionDenied("not a file header under this key");
  }
  out->file_size = LoadBigEndian64(payload + kOffFileSize);
  const uint64_t num_blocks = LoadBigEndian64(payload + kOffNumBlocks);
  if (num_blocks > MaxFileBlocks(block_size)) {
    return Status::Corruption("header: block count out of range");
  }
  out->block_ptrs.assign(num_blocks, kNullBlock);
  const uint64_t direct = std::min<uint64_t>(num_blocks, kNumDirectPtrs);
  for (uint64_t i = 0; i < direct; ++i) {
    out->block_ptrs[i] = LoadBigEndian64(payload + kOffDirect + 8 * i);
  }
  const uint64_t indirect = HiddenFile::IndirectNeeded(num_blocks, block_size);
  out->indirect_locs.assign(indirect, kNullBlock);
  for (uint64_t i = 0; i < indirect; ++i) {
    out->indirect_locs[i] = LoadBigEndian64(payload + OffIndirect() + 8 * i);
  }
  out->dirty = false;
  return Status::OK();
}

void SerializeIndirect(const HiddenFile& file, uint64_t index,
                       size_t block_size, uint8_t* payload) {
  const uint64_t per = PtrsPerIndirect(block_size);
  const uint64_t begin = kNumDirectPtrs + index * per;
  const uint64_t end =
      std::min<uint64_t>(begin + per, file.num_data_blocks());
  assert(begin < end);
  std::memset(payload, 0, PayloadSize(block_size));
  for (uint64_t i = begin; i < end; ++i) {
    StoreBigEndian64(payload + 8 * (i - begin), file.block_ptrs[i]);
  }
}

void ParseIndirect(const uint8_t* payload, uint64_t index, size_t block_size,
                   HiddenFile* out) {
  const uint64_t per = PtrsPerIndirect(block_size);
  const uint64_t begin = kNumDirectPtrs + index * per;
  const uint64_t end =
      std::min<uint64_t>(begin + per, out->num_data_blocks());
  for (uint64_t i = begin; i < end; ++i) {
    out->block_ptrs[i] = LoadBigEndian64(payload + 8 * (i - begin));
  }
}

}  // namespace steghide::stegfs
