#include "stegfs/bitmap.h"

#include <cassert>

namespace steghide::stegfs {

BlockBitmap::BlockBitmap(uint64_t num_blocks)
    : num_blocks_(num_blocks), words_((num_blocks + 63) / 64, 0) {}

bool BlockBitmap::IsData(uint64_t block_id) const {
  assert(block_id < num_blocks_);
  return (words_[block_id / 64] >> (block_id % 64)) & 1;
}

void BlockBitmap::MarkData(uint64_t block_id) {
  assert(block_id < num_blocks_);
  uint64_t& w = words_[block_id / 64];
  const uint64_t mask = uint64_t{1} << (block_id % 64);
  if (!(w & mask)) {
    w |= mask;
    ++data_count_;
  }
}

void BlockBitmap::MarkDummy(uint64_t block_id) {
  assert(block_id < num_blocks_);
  uint64_t& w = words_[block_id / 64];
  const uint64_t mask = uint64_t{1} << (block_id % 64);
  if (w & mask) {
    w &= ~mask;
    --data_count_;
  }
}

Bytes BlockBitmap::Serialize() const {
  Bytes out(8 + words_.size() * 8);
  StoreBigEndian64(out.data(), num_blocks_);
  for (size_t i = 0; i < words_.size(); ++i) {
    StoreBigEndian64(out.data() + 8 + 8 * i, words_[i]);
  }
  return out;
}

Result<BlockBitmap> BlockBitmap::Deserialize(const Bytes& data) {
  if (data.size() < 8) return Status::Corruption("bitmap: truncated");
  const uint64_t n = LoadBigEndian64(data.data());
  BlockBitmap bm(n);
  if (data.size() != 8 + bm.words_.size() * 8) {
    return Status::Corruption("bitmap: size mismatch");
  }
  for (size_t i = 0; i < bm.words_.size(); ++i) {
    bm.words_[i] = LoadBigEndian64(data.data() + 8 + 8 * i);
  }
  // Recount set bits; trailing bits past num_blocks_ must be zero.
  uint64_t count = 0;
  for (uint64_t b = 0; b < n; ++b) count += bm.IsData(b) ? 1 : 0;
  bm.data_count_ = count;
  return bm;
}

}  // namespace steghide::stegfs
