#ifndef STEGHIDE_WORKLOAD_UPDATE_STREAM_H_
#define STEGHIDE_WORKLOAD_UPDATE_STREAM_H_

#include <vector>

#include "util/random.h"
#include "workload/file_population.h"
#include "workload/fs_adapter.h"

namespace steghide::workload {

/// One update request: `range_blocks` consecutive logical blocks of a
/// file, starting at `first_block` — the unit of the Figure 11
/// experiments ("an update is performed on a large range of data which may
/// occupy more than one consecutive data blocks").
struct UpdateOp {
  FsAdapter::FileId file = 0;
  uint64_t first_block = 0;
  uint64_t range_blocks = 1;
};

/// Draws `count` update ops over the population: uniformly random file,
/// uniformly random aligned position, fixed range.
std::vector<UpdateOp> MakeUniformUpdateStream(const FilePopulation& pop,
                                              size_t payload_size, Rng& rng,
                                              uint64_t count,
                                              uint64_t range_blocks);

/// Draws ops with Zipf-skewed file popularity (extension workload; the
/// paper's streams are uniform).
std::vector<UpdateOp> MakeZipfUpdateStream(const FilePopulation& pop,
                                           size_t payload_size, Rng& rng,
                                           uint64_t count,
                                           uint64_t range_blocks,
                                           double zipf_theta);

/// Applies one op through the adapter (block-sized writes of fresh
/// workload bytes).
Status ApplyUpdate(FsAdapter& fs, const UpdateOp& op, Rng& rng);

/// Applies a whole stream; returns OK on success.
Status ApplyUpdateStream(FsAdapter& fs, const std::vector<UpdateOp>& ops,
                         Rng& rng);

}  // namespace steghide::workload

#endif  // STEGHIDE_WORKLOAD_UPDATE_STREAM_H_
