#ifndef STEGHIDE_WORKLOAD_FS_ADAPTER_H_
#define STEGHIDE_WORKLOAD_FS_ADAPTER_H_

#include <cstdint>

#include "util/bytes.h"
#include "util/result.h"

namespace steghide::workload {

/// Uniform facade over the five systems compared in the paper's
/// evaluation (Table 3): StegHide (volatile agent), StegHide*
/// (non-volatile agent), StegFS [12], CleanDisk and FragDisk. Benchmarks
/// drive all systems through this interface so that every system sees an
/// identical workload.
class FsAdapter {
 public:
  using FileId = uint64_t;

  virtual ~FsAdapter() = default;

  /// Creates a file and writes `size_bytes` of workload data.
  virtual Result<FileId> CreateFile(uint64_t size_bytes) = 0;

  /// Reads [offset, offset+n) of the file.
  virtual Result<Bytes> Read(FileId id, uint64_t offset, size_t n) = 0;

  /// Updates one whole logical block in place (content `payload`,
  /// payload_size() bytes). This is the unit operation of the Figure 11
  /// experiments.
  virtual Status UpdateBlock(FileId id, uint64_t logical,
                             const uint8_t* payload) = 0;

  virtual Result<uint64_t> FileSize(FileId id) const = 0;

  /// Usable bytes per block for this system.
  virtual size_t payload_size() const = 0;

  /// Human-readable system name ("StegHide", "CleanDisk", ...).
  virtual const char* name() const = 0;
};

}  // namespace steghide::workload

#endif  // STEGHIDE_WORKLOAD_FS_ADAPTER_H_
