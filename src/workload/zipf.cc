#include "workload/zipf.h"

#include <algorithm>
#include <cmath>

namespace steghide::workload {

ZipfGenerator::ZipfGenerator(size_t n, double theta) {
  cdf_.resize(n == 0 ? 1 : n);
  double acc = 0.0;
  for (size_t i = 0; i < cdf_.size(); ++i) {
    acc += 1.0 / std::pow(static_cast<double>(i + 1), theta);
    cdf_[i] = acc;
  }
  for (double& v : cdf_) v /= acc;
}

size_t ZipfGenerator::Next(Rng& rng) const {
  const double u = rng.NextDouble();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<size_t>(
      std::min<std::ptrdiff_t>(it - cdf_.begin(),
                               static_cast<std::ptrdiff_t>(cdf_.size()) - 1));
}

}  // namespace steghide::workload
