#ifndef STEGHIDE_WORKLOAD_ZIPF_H_
#define STEGHIDE_WORKLOAD_ZIPF_H_

#include <cstdint>
#include <vector>

#include "util/random.h"

namespace steghide::workload {

/// Zipf-distributed index sampler over [0, n): item i has probability
/// proportional to 1 / (i+1)^theta. theta = 0 degenerates to uniform.
/// Used for skewed-popularity extension workloads.
class ZipfGenerator {
 public:
  ZipfGenerator(size_t n, double theta);

  /// Draws one index using `rng`.
  size_t Next(Rng& rng) const;

  size_t n() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;  // cumulative probabilities
};

}  // namespace steghide::workload

#endif  // STEGHIDE_WORKLOAD_ZIPF_H_
