#ifndef STEGHIDE_WORKLOAD_CONCURRENCY_H_
#define STEGHIDE_WORKLOAD_CONCURRENCY_H_

#include <functional>
#include <memory>
#include <vector>

#include "util/random.h"
#include "workload/fs_adapter.h"
#include "workload/update_stream.h"

namespace steghide::workload {

/// One user's in-flight request, advanced one block at a time.
class IoTask {
 public:
  virtual ~IoTask() = default;

  /// Performs one block-granularity step. Returns true when the task has
  /// completed (the call that returns true performed the final step).
  virtual Result<bool> Step() = 0;
};

/// Sequentially reads a whole file, one block per step.
class FileReadTask : public IoTask {
 public:
  FileReadTask(FsAdapter* fs, FsAdapter::FileId id, uint64_t size_bytes);
  Result<bool> Step() override;

 private:
  FsAdapter* fs_;
  FsAdapter::FileId id_;
  uint64_t size_bytes_;
  uint64_t offset_ = 0;
};

/// Applies one UpdateOp, one block per step.
class UpdateRangeTask : public IoTask {
 public:
  UpdateRangeTask(FsAdapter* fs, const UpdateOp& op, uint64_t rng_seed);
  Result<bool> Step() override;

 private:
  FsAdapter* fs_;
  UpdateOp op_;
  Rng rng_;
  uint64_t done_ = 0;
};

/// Simulates `tasks.size()` concurrent users sharing one disk: requests
/// are interleaved round-robin at block granularity, which is how
/// concurrency destroys the sequential layout advantage of CleanDisk and
/// FragDisk in Figures 10(b) and 11(c). Returns, per task, the virtual
/// clock value at its completion; `clock` samples the shared
/// SimBlockDevice.
Result<std::vector<double>> RunConcurrently(
    std::vector<std::unique_ptr<IoTask>>& tasks,
    const std::function<double()>& clock);

/// Real-thread counterpart of RunConcurrently: runs every user function
/// on its own std::thread and joins them all, returning the per-user
/// status in input order. The functions typically drive
/// agent::RequestDispatcher sessions, whose group commit is what turns
/// genuine thread concurrency into batched level-scan passes.
std::vector<Status> RunOnThreads(std::vector<std::function<Status()>> users);

}  // namespace steghide::workload

#endif  // STEGHIDE_WORKLOAD_CONCURRENCY_H_
