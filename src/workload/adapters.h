#ifndef STEGHIDE_WORKLOAD_ADAPTERS_H_
#define STEGHIDE_WORKLOAD_ADAPTERS_H_

#include <string>

#include "agent/nonvolatile_agent.h"
#include "agent/volatile_agent.h"
#include "baseline/plain_fs.h"
#include "baseline/stegfs2003.h"
#include "workload/fs_adapter.h"

namespace steghide::workload {

/// StegHide — Construction 2, the volatile agent. Files are created for a
/// fixed workload user, which must already have a dummy file disclosed
/// (relocation targets come from it).
class VolatileAgentAdapter : public FsAdapter {
 public:
  VolatileAgentAdapter(agent::VolatileAgent* agent,
                       agent::VolatileAgent::UserId user)
      : agent_(agent), user_(std::move(user)) {}

  Result<FileId> CreateFile(uint64_t size_bytes) override;
  Result<Bytes> Read(FileId id, uint64_t offset, size_t n) override;
  Status UpdateBlock(FileId id, uint64_t logical,
                     const uint8_t* payload) override;
  Result<uint64_t> FileSize(FileId id) const override {
    return agent_->FileSize(id);
  }
  size_t payload_size() const override {
    return agent_->core().payload_size();
  }
  const char* name() const override { return "StegHide"; }

 private:
  agent::VolatileAgent* agent_;
  agent::VolatileAgent::UserId user_;
};

/// StegHide* — Construction 1, the non-volatile agent.
class NonVolatileAgentAdapter : public FsAdapter {
 public:
  explicit NonVolatileAgentAdapter(agent::NonVolatileAgent* agent)
      : agent_(agent) {}

  Result<FileId> CreateFile(uint64_t size_bytes) override;
  Result<Bytes> Read(FileId id, uint64_t offset, size_t n) override;
  Status UpdateBlock(FileId id, uint64_t logical,
                     const uint8_t* payload) override;
  Result<uint64_t> FileSize(FileId id) const override {
    return agent_->FileSize(id);
  }
  size_t payload_size() const override {
    return agent_->core().payload_size();
  }
  const char* name() const override { return "StegHide*"; }

 private:
  agent::NonVolatileAgent* agent_;
};

/// StegFS — the 2003 baseline.
class StegFs2003Adapter : public FsAdapter {
 public:
  explicit StegFs2003Adapter(baseline::StegFs2003* fs) : fs_(fs) {}

  Result<FileId> CreateFile(uint64_t size_bytes) override;
  Result<Bytes> Read(FileId id, uint64_t offset, size_t n) override;
  Status UpdateBlock(FileId id, uint64_t logical,
                     const uint8_t* payload) override {
    return fs_->UpdateBlock(id, logical, payload);
  }
  Result<uint64_t> FileSize(FileId id) const override {
    return fs_->FileSize(id);
  }
  size_t payload_size() const override { return fs_->core().payload_size(); }
  const char* name() const override { return "StegFS"; }

 private:
  baseline::StegFs2003* fs_;
};

/// CleanDisk / FragDisk — the native file-system models.
class PlainFsAdapter : public FsAdapter {
 public:
  PlainFsAdapter(baseline::PlainFs* fs, std::string name)
      : fs_(fs), name_(std::move(name)) {}

  Result<FileId> CreateFile(uint64_t size_bytes) override {
    return fs_->CreateFile(size_bytes);
  }
  Result<Bytes> Read(FileId id, uint64_t offset, size_t n) override {
    return fs_->Read(id, offset, n);
  }
  Status UpdateBlock(FileId id, uint64_t logical,
                     const uint8_t* payload) override {
    return fs_->UpdateBlock(id, logical, payload);
  }
  Result<uint64_t> FileSize(FileId id) const override {
    return fs_->FileSize(id);
  }
  size_t payload_size() const override { return fs_->payload_size(); }
  const char* name() const override { return name_.c_str(); }

 private:
  baseline::PlainFs* fs_;
  std::string name_;
};

}  // namespace steghide::workload

#endif  // STEGHIDE_WORKLOAD_ADAPTERS_H_
