#include "workload/adapters.h"

#include <algorithm>
#include <functional>

namespace steghide::workload {

namespace {
// Files are populated with zeros; the steganographic systems encrypt, so
// content does not affect the I/O pattern, and the baselines are
// content-agnostic.
Status FillFile(FsAdapter::FileId id, uint64_t size_bytes, size_t payload,
                const std::function<Status(FsAdapter::FileId, uint64_t,
                                           const uint8_t*, size_t)>& write) {
  const Bytes zeros(payload, 0);
  uint64_t written = 0;
  while (written < size_bytes) {
    const size_t n =
        static_cast<size_t>(std::min<uint64_t>(payload, size_bytes - written));
    STEGHIDE_RETURN_IF_ERROR(write(id, written, zeros.data(), n));
    written += n;
  }
  return Status::OK();
}
}  // namespace

Result<FsAdapter::FileId> VolatileAgentAdapter::CreateFile(
    uint64_t size_bytes) {
  STEGHIDE_ASSIGN_OR_RETURN(const FileId id, agent_->CreateHiddenFile(user_));
  STEGHIDE_RETURN_IF_ERROR(FillFile(
      id, size_bytes, payload_size(),
      [this](FileId f, uint64_t off, const uint8_t* d, size_t n) {
        return agent_->Write(f, off, d, n);
      }));
  return id;
}

Result<Bytes> VolatileAgentAdapter::Read(FileId id, uint64_t offset,
                                         size_t n) {
  return agent_->Read(id, offset, n);
}

Status VolatileAgentAdapter::UpdateBlock(FileId id, uint64_t logical,
                                         const uint8_t* payload) {
  return agent_->Write(id, logical * payload_size(), payload, payload_size());
}

Result<FsAdapter::FileId> NonVolatileAgentAdapter::CreateFile(
    uint64_t size_bytes) {
  STEGHIDE_ASSIGN_OR_RETURN(const FileId id, agent_->CreateFile());
  STEGHIDE_RETURN_IF_ERROR(FillFile(
      id, size_bytes, payload_size(),
      [this](FileId f, uint64_t off, const uint8_t* d, size_t n) {
        return agent_->Write(f, off, d, n);
      }));
  return id;
}

Result<Bytes> NonVolatileAgentAdapter::Read(FileId id, uint64_t offset,
                                            size_t n) {
  return agent_->Read(id, offset, n);
}

Status NonVolatileAgentAdapter::UpdateBlock(FileId id, uint64_t logical,
                                            const uint8_t* payload) {
  return agent_->Write(id, logical * payload_size(), payload, payload_size());
}

Result<FsAdapter::FileId> StegFs2003Adapter::CreateFile(uint64_t size_bytes) {
  STEGHIDE_ASSIGN_OR_RETURN(const FileId id, fs_->CreateFile());
  STEGHIDE_RETURN_IF_ERROR(FillFile(
      id, size_bytes, payload_size(),
      [this](FileId f, uint64_t off, const uint8_t* d, size_t n) {
        return fs_->Write(f, off, d, n);
      }));
  return id;
}

Result<Bytes> StegFs2003Adapter::Read(FileId id, uint64_t offset, size_t n) {
  return fs_->Read(id, offset, n);
}

}  // namespace steghide::workload
