#include "workload/concurrency.h"

#include <algorithm>
#include <thread>

namespace steghide::workload {

FileReadTask::FileReadTask(FsAdapter* fs, FsAdapter::FileId id,
                           uint64_t size_bytes)
    : fs_(fs), id_(id), size_bytes_(size_bytes) {}

Result<bool> FileReadTask::Step() {
  if (offset_ >= size_bytes_) return true;
  const size_t n = static_cast<size_t>(std::min<uint64_t>(
      fs_->payload_size(), size_bytes_ - offset_));
  STEGHIDE_ASSIGN_OR_RETURN(const Bytes chunk, fs_->Read(id_, offset_, n));
  (void)chunk;
  offset_ += n;
  return offset_ >= size_bytes_;
}

UpdateRangeTask::UpdateRangeTask(FsAdapter* fs, const UpdateOp& op,
                                 uint64_t rng_seed)
    : fs_(fs), op_(op), rng_(rng_seed) {}

Result<bool> UpdateRangeTask::Step() {
  if (done_ >= op_.range_blocks) return true;
  Bytes payload(fs_->payload_size());
  rng_.Fill(payload.data(), payload.size());
  STEGHIDE_RETURN_IF_ERROR(
      fs_->UpdateBlock(op_.file, op_.first_block + done_, payload.data()));
  ++done_;
  return done_ >= op_.range_blocks;
}

Result<std::vector<double>> RunConcurrently(
    std::vector<std::unique_ptr<IoTask>>& tasks,
    const std::function<double()>& clock) {
  std::vector<double> finish_times(tasks.size(), 0.0);
  std::vector<bool> done(tasks.size(), false);
  size_t remaining = tasks.size();
  while (remaining > 0) {
    for (size_t i = 0; i < tasks.size(); ++i) {
      if (done[i]) continue;
      STEGHIDE_ASSIGN_OR_RETURN(const bool finished, tasks[i]->Step());
      if (finished) {
        done[i] = true;
        finish_times[i] = clock ? clock() : 0.0;
        --remaining;
      }
    }
  }
  return finish_times;
}

std::vector<Status> RunOnThreads(std::vector<std::function<Status()>> users) {
  std::vector<Status> statuses(users.size(), Status::OK());
  std::vector<std::thread> threads;
  threads.reserve(users.size());
  for (size_t i = 0; i < users.size(); ++i) {
    threads.emplace_back(
        [&statuses, &users, i] { statuses[i] = users[i](); });
  }
  for (std::thread& thread : threads) thread.join();
  return statuses;
}

}  // namespace steghide::workload
