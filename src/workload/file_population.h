#ifndef STEGHIDE_WORKLOAD_FILE_POPULATION_H_
#define STEGHIDE_WORKLOAD_FILE_POPULATION_H_

#include <vector>

#include "util/random.h"
#include "workload/fs_adapter.h"

namespace steghide::workload {

/// A created set of workload files.
struct FilePopulation {
  std::vector<FsAdapter::FileId> ids;
  std::vector<uint64_t> sizes;

  uint64_t total_bytes() const;
};

struct PopulationSpec {
  uint64_t file_count = 1;
  /// File sizes drawn uniformly from (min_bytes, max_bytes] — the paper's
  /// workload uses (4, 8] MB (Table 2).
  uint64_t min_bytes = 4ull << 20;
  uint64_t max_bytes = 8ull << 20;
};

/// Creates `spec.file_count` files through the adapter with sizes drawn
/// from `rng`.
Result<FilePopulation> CreatePopulation(FsAdapter& fs, Rng& rng,
                                        const PopulationSpec& spec);

/// Creates files until the device utilisation reaches approximately
/// `target_bytes` in total (used for the Figure 11(a) utilisation sweep).
Result<FilePopulation> CreatePopulationBytes(FsAdapter& fs, Rng& rng,
                                             uint64_t target_bytes,
                                             uint64_t file_bytes);

}  // namespace steghide::workload

#endif  // STEGHIDE_WORKLOAD_FILE_POPULATION_H_
