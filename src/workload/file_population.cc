#include "workload/file_population.h"

#include <numeric>

namespace steghide::workload {

uint64_t FilePopulation::total_bytes() const {
  return std::accumulate(sizes.begin(), sizes.end(), uint64_t{0});
}

Result<FilePopulation> CreatePopulation(FsAdapter& fs, Rng& rng,
                                        const PopulationSpec& spec) {
  FilePopulation pop;
  pop.ids.reserve(spec.file_count);
  pop.sizes.reserve(spec.file_count);
  for (uint64_t i = 0; i < spec.file_count; ++i) {
    const uint64_t size =
        rng.UniformRange(spec.min_bytes + 1, spec.max_bytes);
    STEGHIDE_ASSIGN_OR_RETURN(const FsAdapter::FileId id,
                              fs.CreateFile(size));
    pop.ids.push_back(id);
    pop.sizes.push_back(size);
  }
  return pop;
}

Result<FilePopulation> CreatePopulationBytes(FsAdapter& fs, Rng& rng,
                                             uint64_t target_bytes,
                                             uint64_t file_bytes) {
  (void)rng;
  FilePopulation pop;
  uint64_t created = 0;
  while (created < target_bytes) {
    const uint64_t size = std::min(file_bytes, target_bytes - created);
    STEGHIDE_ASSIGN_OR_RETURN(const FsAdapter::FileId id,
                              fs.CreateFile(size));
    pop.ids.push_back(id);
    pop.sizes.push_back(size);
    created += size;
  }
  return pop;
}

}  // namespace steghide::workload
