#include "workload/update_stream.h"

#include <algorithm>

#include "workload/zipf.h"

namespace steghide::workload {

namespace {
UpdateOp DrawOp(const FilePopulation& pop, size_t payload_size, Rng& rng,
                uint64_t range_blocks, size_t file_index) {
  UpdateOp op;
  op.file = pop.ids[file_index];
  const uint64_t file_blocks = std::max<uint64_t>(
      1, (pop.sizes[file_index] + payload_size - 1) / payload_size);
  op.range_blocks = std::min<uint64_t>(range_blocks, file_blocks);
  op.first_block = rng.Uniform(file_blocks - op.range_blocks + 1);
  return op;
}
}  // namespace

std::vector<UpdateOp> MakeUniformUpdateStream(const FilePopulation& pop,
                                              size_t payload_size, Rng& rng,
                                              uint64_t count,
                                              uint64_t range_blocks) {
  std::vector<UpdateOp> ops;
  ops.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    const size_t file_index =
        static_cast<size_t>(rng.Uniform(pop.ids.size()));
    ops.push_back(DrawOp(pop, payload_size, rng, range_blocks, file_index));
  }
  return ops;
}

std::vector<UpdateOp> MakeZipfUpdateStream(const FilePopulation& pop,
                                           size_t payload_size, Rng& rng,
                                           uint64_t count,
                                           uint64_t range_blocks,
                                           double zipf_theta) {
  ZipfGenerator zipf(pop.ids.size(), zipf_theta);
  std::vector<UpdateOp> ops;
  ops.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    const size_t file_index = static_cast<size_t>(zipf.Next(rng));
    ops.push_back(DrawOp(pop, payload_size, rng, range_blocks, file_index));
  }
  return ops;
}

Status ApplyUpdate(FsAdapter& fs, const UpdateOp& op, Rng& rng) {
  Bytes payload(fs.payload_size());
  for (uint64_t b = 0; b < op.range_blocks; ++b) {
    rng.Fill(payload.data(), payload.size());
    STEGHIDE_RETURN_IF_ERROR(
        fs.UpdateBlock(op.file, op.first_block + b, payload.data()));
  }
  return Status::OK();
}

Status ApplyUpdateStream(FsAdapter& fs, const std::vector<UpdateOp>& ops,
                         Rng& rng) {
  for (const UpdateOp& op : ops) {
    STEGHIDE_RETURN_IF_ERROR(ApplyUpdate(fs, op, rng));
  }
  return Status::OK();
}

}  // namespace steghide::workload
