#include "baseline/plain_fs.h"

#include <algorithm>
#include <cstring>

namespace steghide::baseline {

PlainFs::PlainFs(storage::BlockDevice* device, const Options& options)
    : device_(device), options_(options), rng_(options.seed) {
  if (options_.fragment_blocks > 0) {
    const uint64_t num_extents =
        device_->num_blocks() / options_.fragment_blocks;
    free_extents_.resize(num_extents);
    for (uint64_t i = 0; i < num_extents; ++i) free_extents_[i] = i;
    // A well-used disk hands out extents in effectively arbitrary order.
    rng_.Shuffle(free_extents_);
  }
}

Result<PlainFs::FileId> PlainFs::CreateFile(uint64_t size_bytes) {
  const size_t bs = device_->block_size();
  const uint64_t need = (size_bytes + bs - 1) / bs;

  PlainFile file;
  file.size = size_bytes;
  file.blocks.reserve(need);

  if (options_.fragment_blocks == 0) {
    if (bump_ + need > device_->num_blocks()) {
      return Status::NoSpace("volume full");
    }
    for (uint64_t i = 0; i < need; ++i) file.blocks.push_back(bump_ + i);
    bump_ += need;
  } else {
    uint64_t remaining = need;
    while (remaining > 0) {
      if (free_extents_.empty()) return Status::NoSpace("volume full");
      const uint64_t extent = free_extents_.back();
      free_extents_.pop_back();
      const uint64_t base = extent * options_.fragment_blocks;
      const uint64_t take =
          std::min<uint64_t>(remaining, options_.fragment_blocks);
      for (uint64_t i = 0; i < take; ++i) file.blocks.push_back(base + i);
      remaining -= take;
    }
  }

  const FileId id = next_id_++;
  files_.emplace(id, std::move(file));
  return id;
}

Result<const PlainFs::PlainFile*> PlainFs::Lookup(FileId id) const {
  const auto it = files_.find(id);
  if (it == files_.end()) return Status::NotFound("unknown file");
  return &it->second;
}

Result<PlainFs::PlainFile*> PlainFs::Lookup(FileId id) {
  const auto it = files_.find(id);
  if (it == files_.end()) return Status::NotFound("unknown file");
  return &it->second;
}

Result<Bytes> PlainFs::Read(FileId id, uint64_t offset, size_t n) {
  STEGHIDE_ASSIGN_OR_RETURN(const PlainFile* file, Lookup(id));
  if (offset >= file->size) return Bytes{};
  const uint64_t end = std::min<uint64_t>(offset + n, file->size);
  const size_t bs = device_->block_size();

  Bytes out;
  out.reserve(end - offset);
  Bytes buf(bs);
  for (uint64_t logical = offset / bs; logical * bs < end; ++logical) {
    STEGHIDE_RETURN_IF_ERROR(
        device_->ReadBlock(file->blocks[logical], buf.data()));
    const uint64_t begin = logical * bs;
    const uint64_t lo = std::max<uint64_t>(offset, begin);
    const uint64_t hi = std::min<uint64_t>(end, begin + bs);
    out.insert(out.end(), buf.data() + (lo - begin), buf.data() + (hi - begin));
  }
  return out;
}

Status PlainFs::Write(FileId id, uint64_t offset, const uint8_t* data,
                      size_t n) {
  STEGHIDE_ASSIGN_OR_RETURN(PlainFile * file, Lookup(id));
  if (offset + n > file->blocks.size() * device_->block_size()) {
    return Status::OutOfRange("write beyond allocated size");
  }
  const size_t bs = device_->block_size();
  const uint64_t end = offset + n;
  Bytes buf(bs);
  for (uint64_t logical = offset / bs; logical * bs < end; ++logical) {
    const uint64_t begin = logical * bs;
    const uint64_t lo = std::max<uint64_t>(offset, begin);
    const uint64_t hi = std::min<uint64_t>(end, begin + bs);
    const uint64_t physical = file->blocks[logical];
    // Conventional read-modify-write in place.
    STEGHIDE_RETURN_IF_ERROR(device_->ReadBlock(physical, buf.data()));
    std::memcpy(buf.data() + (lo - begin), data + (lo - offset), hi - lo);
    STEGHIDE_RETURN_IF_ERROR(device_->WriteBlock(physical, buf.data()));
  }
  file->size = std::max<uint64_t>(file->size, end);
  return Status::OK();
}

Status PlainFs::UpdateBlock(FileId id, uint64_t logical,
                            const uint8_t* payload) {
  STEGHIDE_ASSIGN_OR_RETURN(PlainFile * file, Lookup(id));
  if (logical >= file->blocks.size()) {
    return Status::OutOfRange("logical block beyond file");
  }
  const uint64_t physical = file->blocks[logical];
  Bytes buf(device_->block_size());
  STEGHIDE_RETURN_IF_ERROR(device_->ReadBlock(physical, buf.data()));
  std::memcpy(buf.data(), payload, buf.size());
  return device_->WriteBlock(physical, buf.data());
}

Result<uint64_t> PlainFs::FileSize(FileId id) const {
  STEGHIDE_ASSIGN_OR_RETURN(const PlainFile* file, Lookup(id));
  return file->size;
}

Result<uint64_t> PlainFs::FileBlocks(FileId id) const {
  STEGHIDE_ASSIGN_OR_RETURN(const PlainFile* file, Lookup(id));
  return file->blocks.size();
}

}  // namespace steghide::baseline
