#include "baseline/stegfs2003.h"

#include <algorithm>
#include <cstring>

namespace steghide::baseline {

using stegfs::FileAccessKey;
using stegfs::HiddenFile;

StegFs2003::StegFs2003(stegfs::StegFsCore* core)
    : core_(core), bitmap_(core->num_blocks()) {}

Result<uint64_t> StegFs2003::AllocateBlock() {
  if (bitmap_.dummy_count() == 0) return Status::NoSpace("volume full");
  uint64_t b;
  do {
    b = core_->drbg().Uniform(core_->num_blocks());
  } while (bitmap_.IsData(b));
  bitmap_.MarkData(b);
  return b;
}

Result<StegFs2003::FileId> StegFs2003::CreateFile() {
  auto file = std::make_unique<HiddenFile>();
  file->fak = FileAccessKey::Random(core_->drbg(), core_->num_blocks());
  STEGHIDE_ASSIGN_OR_RETURN(file->fak.header_location, AllocateBlock());
  file->dirty = true;
  STEGHIDE_RETURN_IF_ERROR(core_->StoreFile(*file));
  const FileId id = next_id_++;
  files_.emplace(id, std::move(file));
  return id;
}

Result<StegFs2003::FileId> StegFs2003::OpenFile(const FileAccessKey& fak) {
  STEGHIDE_ASSIGN_OR_RETURN(HiddenFile file, core_->LoadFile(fak));
  bitmap_.MarkData(fak.header_location);
  for (uint64_t b : file.indirect_locs) bitmap_.MarkData(b);
  for (uint64_t b : file.block_ptrs) bitmap_.MarkData(b);
  auto holder = std::make_unique<HiddenFile>(std::move(file));
  const FileId id = next_id_++;
  files_.emplace(id, std::move(holder));
  return id;
}

Result<HiddenFile*> StegFs2003::Lookup(FileId id) {
  const auto it = files_.find(id);
  if (it == files_.end()) return Status::NotFound("unknown file handle");
  return it->second.get();
}

Result<const HiddenFile*> StegFs2003::Lookup(FileId id) const {
  const auto it = files_.find(id);
  if (it == files_.end()) return Status::NotFound("unknown file handle");
  return static_cast<const HiddenFile*>(it->second.get());
}

Result<Bytes> StegFs2003::Read(FileId id, uint64_t offset, size_t n) {
  STEGHIDE_ASSIGN_OR_RETURN(HiddenFile * file, Lookup(id));
  if (offset >= file->file_size) return Bytes{};
  const uint64_t end = std::min<uint64_t>(offset + n, file->file_size);
  const size_t payload = core_->payload_size();
  Bytes out;
  out.reserve(end - offset);
  Bytes buf(payload);
  for (uint64_t logical = offset / payload; logical * payload < end;
       ++logical) {
    STEGHIDE_RETURN_IF_ERROR(core_->ReadFileBlock(*file, logical, buf.data()));
    const uint64_t begin = logical * payload;
    const uint64_t lo = std::max<uint64_t>(offset, begin);
    const uint64_t hi = std::min<uint64_t>(end, begin + payload);
    out.insert(out.end(), buf.data() + (lo - begin), buf.data() + (hi - begin));
  }
  return out;
}

Status StegFs2003::Write(FileId id, uint64_t offset, const uint8_t* data,
                         size_t n) {
  if (n == 0) return Status::OK();
  STEGHIDE_ASSIGN_OR_RETURN(HiddenFile * file, Lookup(id));
  const size_t payload = core_->payload_size();
  const uint64_t end = offset + n;

  if (offset > file->file_size) {
    const Bytes zeros(payload, 0);
    while (file->num_data_blocks() * payload < offset) {
      STEGHIDE_ASSIGN_OR_RETURN(const uint64_t b, AllocateBlock());
      STEGHIDE_RETURN_IF_ERROR(
          core_->WriteDataBlockAt(*file, b, zeros.data()));
      file->block_ptrs.push_back(b);
      file->dirty = true;
    }
  }

  Bytes buf(payload);
  for (uint64_t logical = offset / payload; logical * payload < end;
       ++logical) {
    const uint64_t begin = logical * payload;
    const uint64_t lo = std::max<uint64_t>(offset, begin);
    const uint64_t hi = std::min<uint64_t>(end, begin + payload);

    if (logical < file->num_data_blocks()) {
      // Read-modify-write at the block's fixed location — no relocation,
      // no cover traffic. This is exactly what update analysis exploits.
      STEGHIDE_RETURN_IF_ERROR(
          core_->ReadFileBlock(*file, logical, buf.data()));
      std::memcpy(buf.data() + (lo - begin), data + (lo - offset), hi - lo);
      STEGHIDE_RETURN_IF_ERROR(core_->WriteDataBlockAt(
          *file, file->block_ptrs[logical], buf.data()));
    } else {
      std::fill(buf.begin(), buf.end(), 0);
      std::memcpy(buf.data() + (lo - begin), data + (lo - offset), hi - lo);
      STEGHIDE_ASSIGN_OR_RETURN(const uint64_t b, AllocateBlock());
      STEGHIDE_RETURN_IF_ERROR(core_->WriteDataBlockAt(*file, b, buf.data()));
      file->block_ptrs.push_back(b);
      file->dirty = true;
    }
  }
  if (end > file->file_size) {
    file->file_size = end;
    file->dirty = true;
  }
  return Status::OK();
}

Status StegFs2003::UpdateBlock(FileId id, uint64_t logical,
                               const uint8_t* payload) {
  STEGHIDE_ASSIGN_OR_RETURN(HiddenFile * file, Lookup(id));
  if (logical >= file->num_data_blocks()) {
    return Status::OutOfRange("logical block beyond file");
  }
  Bytes buf(core_->payload_size());
  STEGHIDE_RETURN_IF_ERROR(core_->ReadFileBlock(*file, logical, buf.data()));
  std::memcpy(buf.data(), payload, buf.size());
  return core_->WriteDataBlockAt(*file, file->block_ptrs[logical], buf.data());
}

Status StegFs2003::Flush(FileId id) {
  STEGHIDE_ASSIGN_OR_RETURN(HiddenFile * file, Lookup(id));
  const uint64_t needed = HiddenFile::IndirectNeeded(
      file->num_data_blocks(), core_->codec().block_size());
  while (file->indirect_locs.size() < needed) {
    STEGHIDE_ASSIGN_OR_RETURN(const uint64_t b, AllocateBlock());
    file->indirect_locs.push_back(b);
  }
  while (file->indirect_locs.size() > needed) {
    bitmap_.MarkDummy(file->indirect_locs.back());
    file->indirect_locs.pop_back();
  }
  return core_->StoreFile(*file);
}

Result<FileAccessKey> StegFs2003::GetFak(FileId id) const {
  STEGHIDE_ASSIGN_OR_RETURN(const HiddenFile* file, Lookup(id));
  return file->fak;
}

Result<uint64_t> StegFs2003::FileSize(FileId id) const {
  STEGHIDE_ASSIGN_OR_RETURN(const HiddenFile* file, Lookup(id));
  return file->file_size;
}

}  // namespace steghide::baseline
