#ifndef STEGHIDE_BASELINE_PLAIN_FS_H_
#define STEGHIDE_BASELINE_PLAIN_FS_H_

#include <cstdint>
#include <map>
#include <vector>

#include "storage/block_device.h"
#include "util/random.h"
#include "util/result.h"

namespace steghide::baseline {

/// Model of a native (non-steganographic) file system, covering both
/// baselines of Table 3:
///
///  * CleanDisk  — "a fresh Linux file system, whose files reside on
///    contiguous data blocks": fragment_blocks = 0, extents allocated by a
///    bump pointer, so whole files are sequential on disk.
///  * FragDisk   — "a well used file system whose storage is fragmented,
///    and we simulate it by breaking each file into fragments of 8
///    blocks": fragment_blocks = 8, fragments placed at shuffled positions
///    across the volume.
///
/// Updates are conventional read-modify-write in place (two I/Os), with no
/// encryption, relocation or dummy traffic — this is the performance
/// yardstick the steganographic systems are charged against.
class PlainFs {
 public:
  struct Options {
    /// 0 = contiguous layout (CleanDisk); otherwise the fragment size in
    /// blocks (FragDisk uses 8).
    uint64_t fragment_blocks = 0;
    /// Seed for the fragment-placement shuffle.
    uint64_t seed = 42;
  };

  using FileId = uint64_t;

  /// `device` is borrowed and must outlive the file system.
  PlainFs(storage::BlockDevice* device, const Options& options);

  static Options CleanDisk() { return Options{0, 42}; }
  static Options FragDisk() { return Options{8, 42}; }

  /// Allocates a file of `size_bytes` (rounded up to whole blocks).
  Result<FileId> CreateFile(uint64_t size_bytes);

  Result<Bytes> Read(FileId id, uint64_t offset, size_t n);
  Status Write(FileId id, uint64_t offset, const uint8_t* data, size_t n);
  Status Write(FileId id, uint64_t offset, const Bytes& data) {
    return Write(id, offset, data.data(), data.size());
  }

  /// Conventional single-block update: read the block, modify, write it
  /// back in place.
  Status UpdateBlock(FileId id, uint64_t logical, const uint8_t* payload);

  Result<uint64_t> FileSize(FileId id) const;
  Result<uint64_t> FileBlocks(FileId id) const;

  size_t payload_size() const { return device_->block_size(); }

 private:
  struct PlainFile {
    uint64_t size = 0;
    std::vector<uint64_t> blocks;  // logical -> physical
  };

  Result<const PlainFile*> Lookup(FileId id) const;
  Result<PlainFile*> Lookup(FileId id);

  storage::BlockDevice* device_;
  Options options_;
  Rng rng_;
  std::vector<uint64_t> free_extents_;  // fragmented mode: shuffled extents
  uint64_t bump_ = 0;                   // contiguous mode: next free block
  std::map<FileId, PlainFile> files_;
  FileId next_id_ = 1;
};

}  // namespace steghide::baseline

#endif  // STEGHIDE_BASELINE_PLAIN_FS_H_
