#ifndef STEGHIDE_BASELINE_STEGFS2003_H_
#define STEGHIDE_BASELINE_STEGFS2003_H_

#include <map>
#include <memory>

#include "stegfs/bitmap.h"
#include "stegfs/stegfs_core.h"
#include "util/result.h"

namespace steghide::baseline {

/// The authors' previous system, "StegFS" of [12] (ICDE 2003), used as a
/// baseline throughout the paper's evaluation.
///
/// It already hides the *existence* of files: blocks are encrypted,
/// scattered uniformly, and reachable only through the FAK-rooted header
/// tree. What it lacks are the mechanisms this paper adds — updates are
/// conventional in-place read-modify-writes with no relocation and no
/// dummy traffic, so consecutive snapshots expose exactly which blocks
/// carry live data (the Figure 1 attack), and reads go straight to the
/// data's fixed locations.
class StegFs2003 {
 public:
  using FileId = uint64_t;

  /// `core` is borrowed; the volume must be freshly formatted.
  explicit StegFs2003(stegfs::StegFsCore* core);

  /// Creates an empty hidden file with a random FAK.
  Result<FileId> CreateFile();

  /// Opens an existing file by FAK.
  Result<FileId> OpenFile(const stegfs::FileAccessKey& fak);

  Result<Bytes> Read(FileId id, uint64_t offset, size_t n);

  /// In-place writes; appended blocks are scattered uniformly at random
  /// (that part is inherited by the 2004 design).
  Status Write(FileId id, uint64_t offset, const uint8_t* data, size_t n);
  Status Write(FileId id, uint64_t offset, const Bytes& data) {
    return Write(id, offset, data.data(), data.size());
  }

  Status Flush(FileId id);
  Result<stegfs::FileAccessKey> GetFak(FileId id) const;
  Result<uint64_t> FileSize(FileId id) const;

  /// Direct single-block in-place update (read + write), the baseline
  /// against which the Figure-6 overhead is measured.
  Status UpdateBlock(FileId id, uint64_t logical, const uint8_t* payload);

  double utilization() const { return bitmap_.utilization(); }
  stegfs::StegFsCore& core() { return *core_; }

 private:
  Result<stegfs::HiddenFile*> Lookup(FileId id);
  Result<const stegfs::HiddenFile*> Lookup(FileId id) const;
  /// Uniformly random free block, claimed in the bitmap.
  Result<uint64_t> AllocateBlock();

  stegfs::StegFsCore* core_;
  stegfs::BlockBitmap bitmap_;
  std::map<FileId, std::unique_ptr<stegfs::HiddenFile>> files_;
  FileId next_id_ = 1;
};

}  // namespace steghide::baseline

#endif  // STEGHIDE_BASELINE_STEGFS2003_H_
