#include "obs/trace_export.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace steghide::obs {
namespace {

constexpr int kPid = 1;

void AppendEscaped(std::string* out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

std::string Number(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

void AppendArgs(std::string* out, const TraceEvent& e, bool with_wall) {
  *out += "\"args\":{";
  bool first = true;
  for (uint8_t i = 0; i < e.num_args; ++i) {
    if (!first) *out += ',';
    first = false;
    *out += '"';
    AppendEscaped(out, e.args[i].key);
    *out += "\":";
    *out += std::to_string(e.args[i].value);
  }
  if (with_wall) {
    if (!first) *out += ',';
    first = false;
    *out += "\"wall_us\":";
    *out += std::to_string(e.wall_us);
  }
  *out += '}';
}

}  // namespace

std::string ChromeTraceJson(const TraceLog& log) {
  const std::vector<TraceEvent> events = log.events();
  const std::vector<std::string> tracks = log.tracks();

  std::string out;
  out.reserve(events.size() * 128 + 1024);
  out += "{\"traceEvents\":[";
  bool first = true;
  auto comma = [&] {
    if (!first) out += ',';
    first = false;
  };

  comma();
  out +=
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,"
      "\"args\":{\"name\":\"steghide\"}}";
  for (size_t tid = 0; tid < tracks.size(); ++tid) {
    comma();
    out += "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":";
    out += std::to_string(kPid);
    out += ",\"tid\":";
    out += std::to_string(tid);
    out += ",\"args\":{\"name\":\"";
    AppendEscaped(&out, tracks[tid]);
    out += "\"}}";
  }

  for (const TraceEvent& e : events) {
    comma();
    out += "{\"name\":\"";
    AppendEscaped(&out, e.label());
    out += "\",\"pid\":";
    out += std::to_string(kPid);
    out += ",\"tid\":";
    out += std::to_string(e.track);
    out += ",\"ts\":";
    out += Number(e.ts_ms * 1000.0);  // virtual ms -> trace microseconds
    switch (e.kind) {
      case TraceEvent::Kind::kSpan:
        out += ",\"ph\":\"X\",\"dur\":";
        out += Number(e.dur_ms * 1000.0);
        out += ',';
        AppendArgs(&out, e, /*with_wall=*/true);
        break;
      case TraceEvent::Kind::kInstant:
        out += ",\"ph\":\"i\",\"s\":\"t\",";
        AppendArgs(&out, e, /*with_wall=*/false);
        break;
      case TraceEvent::Kind::kAsyncBegin:
      case TraceEvent::Kind::kAsyncEnd:
        out += ",\"ph\":\"";
        out += (e.kind == TraceEvent::Kind::kAsyncBegin) ? 'b' : 'e';
        out += "\",\"cat\":\"request\",\"id\":";
        out += std::to_string(e.id);
        out += ',';
        AppendArgs(&out, e, /*with_wall=*/false);
        break;
      case TraceEvent::Kind::kCounter:
        out += ",\"ph\":\"C\",\"args\":{\"value\":";
        out += Number(e.value);
        out += "}}";
        continue;  // closed inline (single-key args)
    }
    out += '}';
  }

  out += "],\"displayTimeUnit\":\"ms\"";
  if (log.dropped() > 0) {
    out += ",\"metadata\":{\"dropped_events\":";
    out += std::to_string(log.dropped());
    out += '}';
  }
  out += '}';
  return out;
}

bool WriteChromeTrace(const TraceLog& log, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << ChromeTraceJson(log);
  return static_cast<bool>(out);
}

std::string MetricsJson(const Registry& registry) {
  const std::map<std::string, double> snapshot = registry.Snapshot();
  std::string out = "{";
  bool first = true;
  for (const auto& [name, value] : snapshot) {
    if (!first) out += ',';
    first = false;
    out += "\n  \"";
    AppendEscaped(&out, name);
    out += "\": ";
    out += Number(value);
  }
  out += "\n}\n";
  return out;
}

bool WriteMetricsJson(const Registry& registry, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << MetricsJson(registry);
  return static_cast<bool>(out);
}

}  // namespace steghide::obs
