#include "obs/snapshotter.h"

#include <utility>

namespace steghide::obs {

StatsSnapshotter::StatsSnapshotter(const Registry* registry, TraceLog* log,
                                   double interval_ms,
                                   std::vector<std::string> prefixes)
    : registry_(registry),
      log_(log),
      interval_ms_(interval_ms),
      prefixes_(std::move(prefixes)) {}

bool StatsSnapshotter::Wants(const std::string& name) const {
  if (prefixes_.empty()) return true;
  for (const std::string& prefix : prefixes_) {
    if (name.rfind(prefix, 0) == 0) return true;
  }
  return false;
}

void StatsSnapshotter::MaybeSample() {
  if (registry_ == nullptr || log_ == nullptr || !log_->enabled()) return;
  const double now = log_->Now();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (now < next_due_ms_) return;
    next_due_ms_ = now + interval_ms_;
  }
  SampleNow();
}

void StatsSnapshotter::SampleNow() {
  if (registry_ == nullptr || log_ == nullptr || !log_->enabled()) return;
  const std::map<std::string, double> snapshot = registry_->Snapshot();
  for (const auto& [name, value] : snapshot) {
    if (Wants(name)) log_->CounterSample(name, value);
  }
  std::lock_guard<std::mutex> lock(mu_);
  ++samples_;
}

uint64_t StatsSnapshotter::samples() const {
  std::lock_guard<std::mutex> lock(mu_);
  return samples_;
}

}  // namespace steghide::obs
