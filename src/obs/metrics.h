#ifndef STEGHIDE_OBS_METRICS_H_
#define STEGHIDE_OBS_METRICS_H_

// Metrics registry: named counters / gauges / histograms with an atomic,
// sharded hot path.
//
// Components own their instruments as plain value members (an
// `IoSchedulerCells` struct of CounterCells, say) and keep exposing the
// historical plain-struct `stats()` accessors as snapshot views assembled
// from atomic loads — concurrent readers never see torn values and writers
// never take a lock. A `Registry` additionally gives every instrument a
// flat dotted name ("dispatcher.requests") so benches and the
// StatsSnapshotter can export one `name -> value` map without knowing the
// component graph.
//
// Instrument lifetime: the registry either *owns* an instrument
// (OwnedCounter/OwnedGauge/OwnedHistogram, stable addresses for the
// registry's lifetime) or *borrows* a component-owned cell through a
// `Registration` RAII token that unregisters in the component's
// destructor. `Latch()` folds the current snapshot into owned gauges so an
// end-of-process dump survives component teardown.

#include <atomic>
#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace steghide::obs {

// Monotonic counter, striped across cache lines so concurrent writers on
// shard/dispatcher threads do not bounce one line. Reads sum the stripes
// (relaxed loads): a snapshot taken mid-increment is merely slightly
// stale, never torn.
class CounterCell {
 public:
  CounterCell() = default;
  CounterCell(const CounterCell&) = delete;
  CounterCell& operator=(const CounterCell&) = delete;

  void Add(uint64_t delta) {
    const size_t slot = SlotIndex();
    std::atomic<uint64_t>& v = stripes_[slot].v;
    if (slot < kExclusiveSlots) {
      // This slot is written by exactly one thread, so a relaxed
      // load+store pair (no lock prefix) is exact — and roughly 10x
      // cheaper than fetch_add, which is what keeps the instrumented
      // hot path inside the overhead-guard bench's budget.
      v.store(v.load(std::memory_order_relaxed) + delta,
              std::memory_order_relaxed);
    } else {
      v.fetch_add(delta, std::memory_order_relaxed);
    }
  }
  void Increment() { Add(1); }
  /// Modular subtraction (stripes sum mod 2^64): valid as long as the
  /// logical value stays non-negative, e.g. reclassifying one count.
  void Subtract(uint64_t delta) { Add(~delta + 1); }

  uint64_t value() const {
    uint64_t total = 0;
    for (const Stripe& s : stripes_) {
      total += s.v.load(std::memory_order_relaxed);
    }
    return total;
  }

  void Reset() {
    for (Stripe& s : stripes_) s.v.store(0, std::memory_order_relaxed);
  }

 private:
  // The first kExclusiveSlots threads to ever touch a counter each own a
  // private slot (fast non-RMW path in Add); later threads hash onto the
  // shared fetch_add stripes, which keeps many-thread dispatch sweeps at
  // the old striped-contention behavior. Slot ids are process-global and
  // never recycled, so a thread's slot is exclusive across all cells.
  static constexpr size_t kExclusiveSlots = 16;
  static constexpr size_t kSharedStripes = 8;
  static constexpr size_t kStripes = kExclusiveSlots + kSharedStripes;
  struct alignas(64) Stripe {
    std::atomic<uint64_t> v{0};
  };
  // Inline so Add() compiles down to a TLS load, a predictable branch,
  // and the slot update — the overhead-guard bench holds the hot path to
  // a few percent of its uninstrumented twin, and an out-of-line call
  // here was the single biggest cost.
  static size_t SlotIndex() {
    thread_local const size_t slot = ClaimSlot();
    return slot;
  }
  static size_t ClaimSlot();  // once per thread; out-of-line is fine

  std::array<Stripe, kStripes> stripes_{};
};

// Last-value-wins gauge (a double, e.g. "reorder.pending_steps").
class GaugeCell {
 public:
  GaugeCell() = default;
  GaugeCell(const GaugeCell&) = delete;
  GaugeCell& operator=(const GaugeCell&) = delete;

  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double delta) {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { Set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

// Lock-free log-linear histogram (HdrHistogram-style): 64 sub-buckets per
// power of two gives a <= 1/64 relative bucket width, so any reported
// percentile is within ~0.8% of the exact order statistic (midpoint
// representative). Values are doubles >= 0; negative/NaN clamp to the
// underflow bucket. Record() is two relaxed fetch_adds plus CAS min/max —
// cheap enough for per-request latency stamps.
class HistogramCell {
 public:
  HistogramCell() = default;
  HistogramCell(const HistogramCell&) = delete;
  HistogramCell& operator=(const HistogramCell&) = delete;

  void Record(double v);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double max() const { return max_.load(std::memory_order_relaxed); }
  double min() const;  // 0 when empty
  double mean() const;

  // Mirrors the nearest-rank convention of a reference
  // `sorted[min(n-1, floor(q/100 * n))]` so tests can compare against a
  // plain sort. q in [0, 100].
  double Percentile(double q) const;

  void Reset();

 private:
  // frexp exponents in (kMinExp, kMaxExp] get 64 sub-buckets each;
  // anything at or below 2^(kMinExp-1) (including 0) lands in the
  // underflow bucket, anything above 2^kMaxExp in the overflow bucket.
  // Virtual-clock spans run micro-ms to minutes: ~2^-20 .. 2^40 covers
  // every instrumented quantity with headroom.
  static constexpr int kMinExp = -20;
  static constexpr int kMaxExp = 40;
  static constexpr size_t kSubBuckets = 64;
  static constexpr size_t kBuckets =
      static_cast<size_t>(kMaxExp - kMinExp) * kSubBuckets + 2;

  static size_t BucketFor(double v);
  static double BucketMidpoint(size_t bucket);

  std::array<std::atomic<uint64_t>, kBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{0.0};
  std::atomic<double> max_{0.0};
  std::atomic<bool> has_value_{false};
};

class Registry;

// RAII bundle of borrowed-instrument registrations; unregisters everything
// on destruction (component teardown). A default-constructed (or
// nullptr-registry) Registration turns every call into a no-op, which is
// how components stay zero-cost when observability is off.
class Registration {
 public:
  Registration() = default;
  explicit Registration(Registry* registry) : registry_(registry) {}
  ~Registration() { Release(); }

  Registration(Registration&& other) noexcept { *this = std::move(other); }
  Registration& operator=(Registration&& other) noexcept;
  Registration(const Registration&) = delete;
  Registration& operator=(const Registration&) = delete;

  bool attached() const { return registry_ != nullptr; }
  Registry* registry() const { return registry_; }

  void Counter(const std::string& name, const CounterCell* cell);
  void Gauge(const std::string& name, const GaugeCell* cell);
  void Histogram(const std::string& name, const HistogramCell* cell);
  // For values only reachable through a component lock (e.g. doubles
  // accumulated under a store mutex). Must be safe to invoke from any
  // thread; must not call back into the Registry.
  void Callback(const std::string& name, std::function<double()> fn);

  void Release();

 private:
  Registry* registry_ = nullptr;
  std::vector<std::string> names_;
};

// Flat name -> instrument map. Thread-safe. Snapshot() expands histograms
// into <name>.count/.mean/.p50/.p90/.p99/.max sub-keys.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  // Process-wide registry used by bench --metrics dumps.
  static Registry& Default();

  // Owned instruments: create-or-get by name; pointers stay valid for the
  // registry's lifetime.
  CounterCell* OwnedCounter(const std::string& name);
  GaugeCell* OwnedGauge(const std::string& name);
  HistogramCell* OwnedHistogram(const std::string& name);

  std::map<std::string, double> Snapshot() const;

  // Copies the current snapshot into latched values that survive
  // unregistration, so end-of-run dumps can outlive the components.
  void Latch();

  // Drops every registration, owned instrument, and latched value.
  void Clear();

  size_t size() const;

 private:
  friend class Registration;

  struct Source {
    const CounterCell* counter = nullptr;
    const GaugeCell* gauge = nullptr;
    const HistogramCell* histogram = nullptr;
    std::function<double()> callback;
  };

  void Register(const std::string& name, Source source);
  void Unregister(const std::string& name);
  static void Expand(const std::string& name, const Source& source,
                     std::map<std::string, double>* out);

  mutable std::mutex mu_;
  std::map<std::string, Source> sources_;
  std::map<std::string, double> latched_;
  std::deque<CounterCell> owned_counters_;
  std::deque<GaugeCell> owned_gauges_;
  std::deque<HistogramCell> owned_histograms_;
};

}  // namespace steghide::obs

#endif  // STEGHIDE_OBS_METRICS_H_
