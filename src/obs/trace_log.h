#ifndef STEGHIDE_OBS_TRACE_LOG_H_
#define STEGHIDE_OBS_TRACE_LOG_H_

// Request-span trace log.
//
// A TraceLog collects timeline events (spans, async request intervals,
// counter samples) stamped on the *virtual* disk clock, with wall-clock
// durations carried alongside as span arguments. Tracks map to Chrome
// trace_event tids, so the exported JSON renders one lane per dispatcher
// worker / shard / reorder chain in Perfetto.
//
// Leakage neutrality: the log only ever *records* — nothing downstream
// reads it back during serving, so enabling tracing cannot perturb the
// attacker-visible device trace (pinned by the trace-equivalence suites
// running with observability on).
//
// Cost when disabled: ScopedSpan checks one relaxed atomic and does
// nothing else, so instrumented code paths are safe to leave in
// production hot loops.

#include <atomic>
#include <array>
#include <chrono>
#include <cstdint>
#include <functional>
#include <initializer_list>
#include <mutex>
#include <string>
#include <vector>

namespace steghide::obs {

struct TraceArg {
  const char* key = nullptr;  // string literal
  int64_t value = 0;
};

struct TraceEvent {
  enum class Kind : uint8_t {
    kSpan,        // complete event: [ts_ms, ts_ms + dur_ms] on `track`
    kInstant,     // point event
    kAsyncBegin,  // async interval open, matched by `id`
    kAsyncEnd,    // async interval close
    kCounter,     // sampled value (StatsSnapshotter)
  };

  const char* name = "";    // string literal, or empty when owned_name set
  std::string owned_name;   // for dynamically built names (counter samples)
  Kind kind = Kind::kSpan;
  uint32_t track = 0;
  uint64_t id = 0;          // async interval id (request sequence number)
  double ts_ms = 0.0;       // virtual clock
  double dur_ms = 0.0;      // virtual duration (spans only)
  int64_t wall_us = 0;      // wall-clock duration (spans only)
  double value = 0.0;       // counter sample
  std::array<TraceArg, 4> args{};
  uint8_t num_args = 0;

  const char* label() const {
    return owned_name.empty() ? name : owned_name.c_str();
  }
};

class TraceLog {
 public:
  static constexpr size_t kDefaultCapacity = 1u << 18;  // ~256k events

  explicit TraceLog(size_t capacity = kDefaultCapacity);
  TraceLog(const TraceLog&) = delete;
  TraceLog& operator=(const TraceLog&) = delete;

  // Process-wide log used by bench --trace dumps.
  static TraceLog& Default();

  // The virtual clock, e.g. [sim_device] { return device->clock_ms(); }.
  // Set before enabling; sampled under the log mutex.
  void set_clock_fn(std::function<double()> fn);

  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  // Returns a stable track id for the exporter's tid. Re-registering the
  // same name returns the existing id.
  uint32_t RegisterTrack(const std::string& name);

  double Now() const;  // virtual clock sample; 0 when no clock_fn is set

  void Append(TraceEvent event);
  void Instant(const char* name, uint32_t track,
               std::initializer_list<TraceArg> args = {});
  void AsyncBegin(const char* name, uint64_t id, uint32_t track,
                  std::initializer_list<TraceArg> args = {});
  void AsyncEnd(const char* name, uint64_t id, uint32_t track);
  void CounterSample(std::string name, double value);

  std::vector<TraceEvent> events() const;
  std::vector<std::string> tracks() const;
  size_t size() const;
  uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }
  // Drops buffered events (tracks and clock survive).
  void Clear();

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
  std::vector<std::string> tracks_;
  std::function<double()> clock_fn_;
  std::atomic<bool> enabled_{false};
  std::atomic<uint64_t> dropped_{0};
};

// RAII span: stamps the virtual clock on entry, appends one kSpan event
// with virtual duration + wall_us on exit. `name` and arg keys must be
// string literals (the log stores the pointers). A null log or a disabled
// log reduces the whole object to a pointer compare.
class ScopedSpan {
 public:
  // The null/disabled check is inline so an inert span on the serving hot
  // path costs a pointer compare + relaxed load, no function call (the
  // overhead-guard bench enforces this).
  ScopedSpan(TraceLog* log, const char* name, uint32_t track,
             std::initializer_list<TraceArg> args = {}) {
    if (log != nullptr && log->enabled()) Begin(log, name, track, args);
  }
  ~ScopedSpan() {
    if (log_ != nullptr) End();
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  bool active() const { return log_ != nullptr; }
  void AddArg(const char* key, int64_t value);

 private:
  void Begin(TraceLog* log, const char* name, uint32_t track,
             std::initializer_list<TraceArg> args);
  void End();

  // POD members only (the TraceEvent, with its std::string, is built in
  // End()): an inert span initializes two words and nothing else.
  TraceLog* log_ = nullptr;
  const char* name_ = "";
  uint32_t track_ = 0;
  uint8_t num_args_ = 0;
  double ts_ms_ = 0.0;
  std::array<TraceArg, 4> args_;  // [0, num_args_) valid, tail untouched
  std::chrono::steady_clock::time_point wall_start_{};
};

}  // namespace steghide::obs

#endif  // STEGHIDE_OBS_TRACE_LOG_H_
