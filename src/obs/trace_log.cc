#include "obs/trace_log.h"

#include <utility>

namespace steghide::obs {

TraceLog::TraceLog(size_t capacity) : capacity_(capacity) {
  tracks_.push_back("main");  // track 0
}

TraceLog& TraceLog::Default() {
  static TraceLog* instance = new TraceLog();
  return *instance;
}

void TraceLog::set_clock_fn(std::function<double()> fn) {
  std::lock_guard<std::mutex> lock(mu_);
  clock_fn_ = std::move(fn);
}

uint32_t TraceLog::RegisterTrack(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t i = 0; i < tracks_.size(); ++i) {
    if (tracks_[i] == name) return static_cast<uint32_t>(i);
  }
  tracks_.push_back(name);
  return static_cast<uint32_t>(tracks_.size() - 1);
}

double TraceLog::Now() const {
  std::lock_guard<std::mutex> lock(mu_);
  return clock_fn_ ? clock_fn_() : 0.0;
}

void TraceLog::Append(TraceEvent event) {
  std::lock_guard<std::mutex> lock(mu_);
  if (events_.size() >= capacity_) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  events_.push_back(std::move(event));
}

void TraceLog::Instant(const char* name, uint32_t track,
                       std::initializer_list<TraceArg> args) {
  if (!enabled()) return;
  TraceEvent e;
  e.name = name;
  e.kind = TraceEvent::Kind::kInstant;
  e.track = track;
  e.ts_ms = Now();
  for (const TraceArg& a : args) {
    if (e.num_args < e.args.size()) e.args[e.num_args++] = a;
  }
  Append(std::move(e));
}

void TraceLog::AsyncBegin(const char* name, uint64_t id, uint32_t track,
                          std::initializer_list<TraceArg> args) {
  if (!enabled()) return;
  TraceEvent e;
  e.name = name;
  e.kind = TraceEvent::Kind::kAsyncBegin;
  e.track = track;
  e.id = id;
  e.ts_ms = Now();
  for (const TraceArg& a : args) {
    if (e.num_args < e.args.size()) e.args[e.num_args++] = a;
  }
  Append(std::move(e));
}

void TraceLog::AsyncEnd(const char* name, uint64_t id, uint32_t track) {
  if (!enabled()) return;
  TraceEvent e;
  e.name = name;
  e.kind = TraceEvent::Kind::kAsyncEnd;
  e.track = track;
  e.id = id;
  e.ts_ms = Now();
  Append(std::move(e));
}

void TraceLog::CounterSample(std::string name, double value) {
  if (!enabled()) return;
  TraceEvent e;
  e.owned_name = std::move(name);
  e.kind = TraceEvent::Kind::kCounter;
  e.ts_ms = Now();
  e.value = value;
  Append(std::move(e));
}

std::vector<TraceEvent> TraceLog::events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

std::vector<std::string> TraceLog::tracks() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tracks_;
}

size_t TraceLog::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

void TraceLog::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
  dropped_.store(0, std::memory_order_relaxed);
}

void ScopedSpan::Begin(TraceLog* log, const char* name, uint32_t track,
                       std::initializer_list<TraceArg> args) {
  log_ = log;
  name_ = name;
  track_ = track;
  ts_ms_ = log->Now();
  for (const TraceArg& a : args) {
    if (num_args_ < args_.size()) {
      args_[num_args_++] = a;
    }
  }
  wall_start_ = std::chrono::steady_clock::now();
}

void ScopedSpan::End() {
  TraceEvent event;
  event.name = name_;
  event.kind = TraceEvent::Kind::kSpan;
  event.track = track_;
  event.ts_ms = ts_ms_;
  event.dur_ms = log_->Now() - ts_ms_;
  event.wall_us = std::chrono::duration_cast<std::chrono::microseconds>(
                      std::chrono::steady_clock::now() - wall_start_)
                      .count();
  for (uint8_t i = 0; i < num_args_; ++i) {
    event.args[i] = args_[i];
  }
  event.num_args = num_args_;
  log_->Append(std::move(event));
}

void ScopedSpan::AddArg(const char* key, int64_t value) {
  if (log_ == nullptr) return;
  if (num_args_ < args_.size()) {
    args_[num_args_] = TraceArg{key, value};
    ++num_args_;
  }
}

}  // namespace steghide::obs
