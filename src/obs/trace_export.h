#ifndef STEGHIDE_OBS_TRACE_EXPORT_H_
#define STEGHIDE_OBS_TRACE_EXPORT_H_

// Exporters: Chrome trace_event / Perfetto JSON for TraceLog, and a flat
// JSON object for a Registry snapshot. Timestamps are the *virtual* disk
// clock in microseconds (ts = ts_ms * 1000); wall-clock span durations
// ride along as a "wall_us" arg.

#include <string>

#include "obs/metrics.h"
#include "obs/trace_log.h"

namespace steghide::obs {

// {"traceEvents":[...],"displayTimeUnit":"ms"} — loadable in Perfetto /
// chrome://tracing. One tid per TraceLog track, named via 'M' metadata.
std::string ChromeTraceJson(const TraceLog& log);
bool WriteChromeTrace(const TraceLog& log, const std::string& path);

// Flat {"name": value, ...} of Registry::Snapshot().
std::string MetricsJson(const Registry& registry);
bool WriteMetricsJson(const Registry& registry, const std::string& path);

}  // namespace steghide::obs

#endif  // STEGHIDE_OBS_TRACE_EXPORT_H_
