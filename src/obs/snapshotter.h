#ifndef STEGHIDE_OBS_SNAPSHOTTER_H_
#define STEGHIDE_OBS_SNAPSHOTTER_H_

// Periodic metrics sampler: folds Registry snapshots into the TraceLog as
// counter-track events, so the exported timeline carries queue depths /
// chain progress next to the spans. Driven opportunistically — callers
// (the dispatcher worker loop) invoke MaybeSample() from their pump and
// the snapshotter rate-limits itself on the virtual clock.

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace_log.h"

namespace steghide::obs {

class StatsSnapshotter {
 public:
  // Samples every `interval_ms` of virtual time. When `prefixes` is
  // non-empty only instrument names starting with one of them are
  // emitted (histograms expand before matching, so "dispatcher." catches
  // "dispatcher.latency_ms.p99").
  StatsSnapshotter(const Registry* registry, TraceLog* log,
                   double interval_ms,
                   std::vector<std::string> prefixes = {});

  // Cheap when the log is disabled or the interval has not elapsed.
  void MaybeSample();
  void SampleNow();

  uint64_t samples() const;

 private:
  bool Wants(const std::string& name) const;

  const Registry* registry_;
  TraceLog* log_;
  const double interval_ms_;
  const std::vector<std::string> prefixes_;
  mutable std::mutex mu_;
  double next_due_ms_ = 0.0;
  uint64_t samples_ = 0;
};

}  // namespace steghide::obs

#endif  // STEGHIDE_OBS_SNAPSHOTTER_H_
