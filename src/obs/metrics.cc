#include "obs/metrics.h"

#include <algorithm>
#include <cmath>

namespace steghide::obs {

size_t CounterCell::ClaimSlot() {
  static std::atomic<size_t> next{0};
  const size_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id < kExclusiveSlots
             ? id
             : kExclusiveSlots + (id - kExclusiveSlots) % kSharedStripes;
}

void HistogramCell::Record(double v) {
  buckets_[BucketFor(v)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v,
                                     std::memory_order_relaxed)) {
  }
  if (!has_value_.exchange(true, std::memory_order_relaxed)) {
    // First recorder seeds min/max; racing recorders fall through to the
    // CAS loops below, so the seed can only be tightened, never lost.
    min_.store(v, std::memory_order_relaxed);
    max_.store(v, std::memory_order_relaxed);
  }
  double lo = min_.load(std::memory_order_relaxed);
  while (v < lo &&
         !min_.compare_exchange_weak(lo, v, std::memory_order_relaxed)) {
  }
  double hi = max_.load(std::memory_order_relaxed);
  while (v > hi &&
         !max_.compare_exchange_weak(hi, v, std::memory_order_relaxed)) {
  }
}

double HistogramCell::min() const {
  return has_value_.load(std::memory_order_relaxed)
             ? min_.load(std::memory_order_relaxed)
             : 0.0;
}

double HistogramCell::mean() const {
  const uint64_t n = count();
  return n == 0 ? 0.0 : sum() / static_cast<double>(n);
}

double HistogramCell::Percentile(double q) const {
  const uint64_t n = count_.load(std::memory_order_relaxed);
  if (n == 0) return 0.0;
  q = std::clamp(q, 0.0, 100.0);
  const uint64_t index = std::min<uint64_t>(
      n - 1, static_cast<uint64_t>(q / 100.0 * static_cast<double>(n)));
  uint64_t cumulative = 0;
  for (size_t b = 0; b < kBuckets; ++b) {
    cumulative += buckets_[b].load(std::memory_order_relaxed);
    if (cumulative > index) {
      // Exact endpoints beat the midpoint approximation when the order
      // statistic is pinned by the observed range.
      if (b == BucketFor(min())) return std::max(min(), 0.0);
      if (index == n - 1) return max();
      return BucketMidpoint(b);
    }
  }
  return max();
}

void HistogramCell::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(0.0, std::memory_order_relaxed);
  max_.store(0.0, std::memory_order_relaxed);
  has_value_.store(false, std::memory_order_relaxed);
}

size_t HistogramCell::BucketFor(double v) {
  if (!(v > 0.0) || !std::isfinite(v)) return 0;
  int exp = 0;
  const double frac = std::frexp(v, &exp);  // v = frac * 2^exp, frac in [0.5,1)
  if (exp <= kMinExp) return 0;
  if (exp > kMaxExp) return kBuckets - 1;
  size_t sub = static_cast<size_t>((frac - 0.5) * 2.0 *
                                   static_cast<double>(kSubBuckets));
  sub = std::min(sub, kSubBuckets - 1);
  return 1 + static_cast<size_t>(exp - kMinExp - 1) * kSubBuckets + sub;
}

double HistogramCell::BucketMidpoint(size_t bucket) {
  if (bucket == 0) return 0.0;
  if (bucket == kBuckets - 1) return std::ldexp(1.0, kMaxExp);
  const size_t linear = bucket - 1;
  const int exp = kMinExp + 1 + static_cast<int>(linear / kSubBuckets);
  const double sub = static_cast<double>(linear % kSubBuckets);
  const double frac =
      0.5 + (sub + 0.5) * 0.5 / static_cast<double>(kSubBuckets);
  return std::ldexp(frac, exp);
}

Registration& Registration::operator=(Registration&& other) noexcept {
  if (this != &other) {
    Release();
    registry_ = other.registry_;
    names_ = std::move(other.names_);
    other.registry_ = nullptr;
    other.names_.clear();
  }
  return *this;
}

void Registration::Counter(const std::string& name, const CounterCell* cell) {
  if (registry_ == nullptr) return;
  Registry::Source source;
  source.counter = cell;
  registry_->Register(name, std::move(source));
  names_.push_back(name);
}

void Registration::Gauge(const std::string& name, const GaugeCell* cell) {
  if (registry_ == nullptr) return;
  Registry::Source source;
  source.gauge = cell;
  registry_->Register(name, std::move(source));
  names_.push_back(name);
}

void Registration::Histogram(const std::string& name,
                             const HistogramCell* cell) {
  if (registry_ == nullptr) return;
  Registry::Source source;
  source.histogram = cell;
  registry_->Register(name, std::move(source));
  names_.push_back(name);
}

void Registration::Callback(const std::string& name,
                            std::function<double()> fn) {
  if (registry_ == nullptr) return;
  Registry::Source source;
  source.callback = std::move(fn);
  registry_->Register(name, std::move(source));
  names_.push_back(name);
}

void Registration::Release() {
  if (registry_ != nullptr) {
    for (const std::string& name : names_) registry_->Unregister(name);
  }
  registry_ = nullptr;
  names_.clear();
}

Registry& Registry::Default() {
  static Registry* instance = new Registry();
  return *instance;
}

CounterCell* Registry::OwnedCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sources_.find(name);
  if (it != sources_.end() && it->second.counter != nullptr) {
    return const_cast<CounterCell*>(it->second.counter);
  }
  owned_counters_.emplace_back();
  Source source;
  source.counter = &owned_counters_.back();
  sources_[name] = std::move(source);
  return &owned_counters_.back();
}

GaugeCell* Registry::OwnedGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sources_.find(name);
  if (it != sources_.end() && it->second.gauge != nullptr) {
    return const_cast<GaugeCell*>(it->second.gauge);
  }
  owned_gauges_.emplace_back();
  Source source;
  source.gauge = &owned_gauges_.back();
  sources_[name] = std::move(source);
  return &owned_gauges_.back();
}

HistogramCell* Registry::OwnedHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sources_.find(name);
  if (it != sources_.end() && it->second.histogram != nullptr) {
    return const_cast<HistogramCell*>(it->second.histogram);
  }
  owned_histograms_.emplace_back();
  Source source;
  source.histogram = &owned_histograms_.back();
  sources_[name] = std::move(source);
  return &owned_histograms_.back();
}

void Registry::Expand(const std::string& name, const Source& source,
                      std::map<std::string, double>* out) {
  if (source.counter != nullptr) {
    (*out)[name] = static_cast<double>(source.counter->value());
  } else if (source.gauge != nullptr) {
    (*out)[name] = source.gauge->value();
  } else if (source.histogram != nullptr) {
    const HistogramCell& h = *source.histogram;
    (*out)[name + ".count"] = static_cast<double>(h.count());
    (*out)[name + ".mean"] = h.mean();
    (*out)[name + ".p50"] = h.Percentile(50.0);
    (*out)[name + ".p90"] = h.Percentile(90.0);
    (*out)[name + ".p99"] = h.Percentile(99.0);
    (*out)[name + ".max"] = h.max();
  } else if (source.callback) {
    (*out)[name] = source.callback();
  }
}

std::map<std::string, double> Registry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, double> out = latched_;
  for (const auto& [name, source] : sources_) {
    Expand(name, source, &out);
  }
  return out;
}

void Registry::Latch() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, source] : sources_) {
    Expand(name, source, &latched_);
  }
}

void Registry::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  sources_.clear();
  latched_.clear();
  owned_counters_.clear();
  owned_gauges_.clear();
  owned_histograms_.clear();
}

size_t Registry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sources_.size();
}

void Registry::Register(const std::string& name, Source source) {
  std::lock_guard<std::mutex> lock(mu_);
  sources_[name] = std::move(source);
}

void Registry::Unregister(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sources_.find(name);
  if (it == sources_.end()) return;
  // Keep the final value readable after the component dies: latch before
  // dropping the borrowed pointer.
  Expand(name, it->second, &latched_);
  sources_.erase(it);
}

}  // namespace steghide::obs
