#include "analysis/chi_square.h"

#include <cmath>

namespace steghide::analysis {

namespace {

// Regularised incomplete gamma via series (x < a+1) or continued fraction
// (x >= a+1); standard formulation after Numerical Recipes gammp/gammq.
double GammaPSeries(double a, double x) {
  const double gln = std::lgamma(a);
  double ap = a;
  double sum = 1.0 / a;
  double del = sum;
  for (int i = 0; i < 500; ++i) {
    ap += 1.0;
    del *= x / ap;
    sum += del;
    if (std::fabs(del) < std::fabs(sum) * 1e-12) break;
  }
  return sum * std::exp(-x + a * std::log(x) - gln);
}

double GammaQContinuedFraction(double a, double x) {
  const double gln = std::lgamma(a);
  const double kTiny = 1e-300;
  double b = x + 1.0 - a;
  double c = 1.0 / kTiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= 500; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = b + an / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < 1e-12) break;
  }
  return std::exp(-x + a * std::log(x) - gln) * h;
}

}  // namespace

double RegularizedGammaQ(double a, double x) {
  if (x < 0.0 || a <= 0.0) return 1.0;
  if (x == 0.0) return 1.0;
  if (x < a + 1.0) return 1.0 - GammaPSeries(a, x);
  return GammaQContinuedFraction(a, x);
}

double ChiSquareSurvival(double statistic, double dof) {
  if (dof <= 0.0) return 1.0;
  return RegularizedGammaQ(dof / 2.0, statistic / 2.0);
}

ChiSquareResult ChiSquareUniformTest(const std::vector<uint64_t>& counts) {
  std::vector<double> expected(counts.size(), 1.0);
  return ChiSquareGoodnessOfFit(counts, expected);
}

ChiSquareResult ChiSquareGoodnessOfFit(const std::vector<uint64_t>& counts,
                                       const std::vector<double>& expected) {
  ChiSquareResult result;
  if (counts.size() != expected.size() || counts.size() < 2) return result;

  double total_observed = 0.0;
  double total_expected = 0.0;
  for (size_t i = 0; i < counts.size(); ++i) {
    total_observed += static_cast<double>(counts[i]);
    total_expected += expected[i];
  }
  if (total_observed == 0.0 || total_expected == 0.0) return result;

  double stat = 0.0;
  for (size_t i = 0; i < counts.size(); ++i) {
    const double e = expected[i] / total_expected * total_observed;
    if (e <= 0.0) continue;
    const double diff = static_cast<double>(counts[i]) - e;
    stat += diff * diff / e;
  }
  result.statistic = stat;
  result.dof = static_cast<double>(counts.size() - 1);
  result.p_value = ChiSquareSurvival(stat, result.dof);
  return result;
}

ChiSquareResult ChiSquareTwoSampleTest(const std::vector<uint64_t>& a,
                                       const std::vector<uint64_t>& b) {
  ChiSquareResult result;
  if (a.size() != b.size() || a.size() < 2) return result;

  double total_a = 0.0;
  double total_b = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    total_a += static_cast<double>(a[i]);
    total_b += static_cast<double>(b[i]);
  }
  if (total_a == 0.0 || total_b == 0.0) return result;

  // Standard two-sample chi-square with scaling constants for unequal
  // sample sizes (K1 = sqrt(Nb/Na), K2 = sqrt(Na/Nb)).
  const double k1 = std::sqrt(total_b / total_a);
  const double k2 = std::sqrt(total_a / total_b);
  double stat = 0.0;
  size_t used_bins = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double ai = static_cast<double>(a[i]);
    const double bi = static_cast<double>(b[i]);
    if (ai + bi == 0.0) continue;
    ++used_bins;
    const double diff = k1 * ai - k2 * bi;
    stat += diff * diff / (ai + bi);
  }
  if (used_bins < 2) return result;
  result.statistic = stat;
  result.dof = static_cast<double>(used_bins - 1);
  result.p_value = ChiSquareSurvival(stat, result.dof);
  return result;
}

}  // namespace steghide::analysis
