#ifndef STEGHIDE_ANALYSIS_DISTINGUISHER_H_
#define STEGHIDE_ANALYSIS_DISTINGUISHER_H_

#include <string>
#include <vector>

#include "analysis/chi_square.h"
#include "analysis/ks_test.h"
#include "storage/trace_device.h"

namespace steghide::analysis {

/// Operationalisation of Definition 1 (§3.2.4): an attacker holding a
/// sample of observed accesses tries to decide whether real user activity
/// is hidden inside what should be a pure dummy stream. The attacker
/// "wins" (the system is insecure) when a statistical test distinguishes
/// the suspect observation from the dummy-only reference at significance
/// `alpha`.
struct DistinguisherVerdict {
  /// Binned positional homogeneity (two-sample chi-square).
  ChiSquareResult position_chi2;
  /// Positional distribution equality (two-sample KS on addresses).
  KsResult position_ks;
  /// True when any test rejects at the configured alpha: the attacker
  /// distinguished the traces.
  bool distinguished = false;
  double alpha = 0.01;

  std::string ToString() const;
};

struct DistinguisherOptions {
  /// Significance level of each test.
  double alpha = 0.01;
  /// Bins for the positional chi-square.
  size_t num_bins = 64;
};

/// Update-analysis attacker: compares per-block update counts extracted
/// from snapshot diffs (`suspect`) against a dummy-only reference
/// campaign of similar length (`reference`).
DistinguisherVerdict DistinguishUpdateCounts(
    const std::vector<uint64_t>& suspect,
    const std::vector<uint64_t>& reference, const DistinguisherOptions& opts);

/// Traffic-analysis attacker: compares two observed I/O request streams
/// (suspect vs dummy-only) over a volume of `num_blocks`, optionally
/// restricted to one operation kind.
DistinguisherVerdict DistinguishTraces(const storage::IoTrace& suspect,
                                       const storage::IoTrace& reference,
                                       uint64_t num_blocks,
                                       const DistinguisherOptions& opts);

/// Helper: per-block counts of write operations in a trace.
std::vector<uint64_t> WriteCountsByBlock(const storage::IoTrace& trace,
                                         uint64_t num_blocks);
/// Helper: per-block counts of read operations in a trace.
std::vector<uint64_t> ReadCountsByBlock(const storage::IoTrace& trace,
                                        uint64_t num_blocks);

}  // namespace steghide::analysis

#endif  // STEGHIDE_ANALYSIS_DISTINGUISHER_H_
