#ifndef STEGHIDE_ANALYSIS_KS_TEST_H_
#define STEGHIDE_ANALYSIS_KS_TEST_H_

#include <vector>

namespace steghide::analysis {

/// Outcome of a Kolmogorov–Smirnov test.
struct KsResult {
  double statistic = 0.0;  // max CDF distance D
  double p_value = 1.0;

  bool RejectAt(double alpha) const { return p_value < alpha; }
};

/// Two-sample KS test: were the samples drawn from the same continuous
/// distribution? Used on positional traces (e.g. the sequence of updated
/// block addresses), complementing the binned chi-square view.
KsResult KsTwoSampleTest(std::vector<double> a, std::vector<double> b);

/// One-sample KS test against the uniform distribution on [0, 1).
KsResult KsUniformTest(std::vector<double> samples);

/// Asymptotic Kolmogorov survival function Q_KS(lambda).
double KolmogorovSurvival(double lambda);

}  // namespace steghide::analysis

#endif  // STEGHIDE_ANALYSIS_KS_TEST_H_
