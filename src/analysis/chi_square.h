#ifndef STEGHIDE_ANALYSIS_CHI_SQUARE_H_
#define STEGHIDE_ANALYSIS_CHI_SQUARE_H_

#include <cstdint>
#include <vector>

namespace steghide::analysis {

/// Outcome of a chi-square goodness-of-fit / homogeneity test.
struct ChiSquareResult {
  double statistic = 0.0;
  double dof = 0.0;
  /// P(X >= statistic) under the null hypothesis.
  double p_value = 1.0;

  bool RejectAt(double alpha) const { return p_value < alpha; }
};

/// Tests whether `counts` is consistent with a uniform distribution over
/// its bins. Bins with zero expected count are impossible here (expected =
/// total / bins); callers should bin so that the expectation is >= ~5.
ChiSquareResult ChiSquareUniformTest(const std::vector<uint64_t>& counts);

/// Tests whether `counts` is consistent with the given expected
/// frequencies (need not be normalised).
ChiSquareResult ChiSquareGoodnessOfFit(const std::vector<uint64_t>& counts,
                                       const std::vector<double>& expected);

/// Two-sample homogeneity test: were `a` and `b` drawn from the same
/// distribution over the bins? This is the Definition-1 comparison: the
/// attacker holds one trace known to be dummy-only and one suspect trace.
ChiSquareResult ChiSquareTwoSampleTest(const std::vector<uint64_t>& a,
                                       const std::vector<uint64_t>& b);

/// Upper regularised incomplete gamma function Q(a, x), exposed for the
/// statistics tests.
double RegularizedGammaQ(double a, double x);

/// Survival function of the chi-square distribution with `dof` degrees of
/// freedom.
double ChiSquareSurvival(double statistic, double dof);

}  // namespace steghide::analysis

#endif  // STEGHIDE_ANALYSIS_CHI_SQUARE_H_
