#include "analysis/snapshot_diff.h"

namespace steghide::analysis {

Result<std::vector<uint64_t>> DiffSnapshots(const storage::Snapshot& before,
                                            const storage::Snapshot& after) {
  if (before.num_blocks() != after.num_blocks()) {
    return Status::InvalidArgument("snapshots cover different volumes");
  }
  std::vector<uint64_t> changed;
  for (uint64_t b = 0; b < before.num_blocks(); ++b) {
    if (before.fingerprint(b) != after.fingerprint(b)) changed.push_back(b);
  }
  return changed;
}

Status UpdateAnalysisObserver::ObserveDiff(const storage::Snapshot& before,
                                           const storage::Snapshot& after) {
  if (before.num_blocks() != counts_.size() ||
      after.num_blocks() != counts_.size()) {
    return Status::InvalidArgument("snapshot size mismatch");
  }
  STEGHIDE_ASSIGN_OR_RETURN(const std::vector<uint64_t> changed,
                            DiffSnapshots(before, after));
  for (uint64_t b : changed) {
    ++counts_[b];
    ++total_;
  }
  return Status::OK();
}

std::vector<uint64_t> UpdateAnalysisObserver::BinnedCounts(
    size_t num_bins) const {
  return BinCounts(counts_, num_bins);
}

std::vector<uint64_t> BinCounts(const std::vector<uint64_t>& counts,
                                size_t num_bins) {
  std::vector<uint64_t> bins(num_bins, 0);
  if (counts.empty() || num_bins == 0) return bins;
  for (size_t i = 0; i < counts.size(); ++i) {
    const size_t bin = i * num_bins / counts.size();
    bins[bin] += counts[i];
  }
  return bins;
}

}  // namespace steghide::analysis
