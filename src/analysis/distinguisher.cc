#include "analysis/distinguisher.h"

#include <sstream>

#include "analysis/snapshot_diff.h"

namespace steghide::analysis {

std::string DistinguisherVerdict::ToString() const {
  std::ostringstream os;
  os << (distinguished ? "DISTINGUISHED" : "indistinguishable")
     << " (alpha=" << alpha << ", chi2 p=" << position_chi2.p_value
     << ", ks p=" << position_ks.p_value << ")";
  return os.str();
}

namespace {

std::vector<double> CountsToPositions(const std::vector<uint64_t>& counts) {
  // Expands per-block counts back into a positional sample, normalised to
  // [0, 1) for the KS test.
  std::vector<double> positions;
  const double n = static_cast<double>(counts.size());
  for (size_t i = 0; i < counts.size(); ++i) {
    for (uint64_t c = 0; c < counts[i]; ++c) {
      positions.push_back(static_cast<double>(i) / n);
    }
  }
  return positions;
}

DistinguisherVerdict Compare(const std::vector<uint64_t>& suspect,
                             const std::vector<uint64_t>& reference,
                             const DistinguisherOptions& opts) {
  DistinguisherVerdict verdict;
  verdict.alpha = opts.alpha;
  verdict.position_chi2 = ChiSquareTwoSampleTest(
      BinCounts(suspect, opts.num_bins), BinCounts(reference, opts.num_bins));
  verdict.position_ks = KsTwoSampleTest(CountsToPositions(suspect),
                                        CountsToPositions(reference));
  verdict.distinguished = verdict.position_chi2.RejectAt(opts.alpha) ||
                          verdict.position_ks.RejectAt(opts.alpha);
  return verdict;
}

}  // namespace

DistinguisherVerdict DistinguishUpdateCounts(
    const std::vector<uint64_t>& suspect,
    const std::vector<uint64_t>& reference, const DistinguisherOptions& opts) {
  return Compare(suspect, reference, opts);
}

std::vector<uint64_t> WriteCountsByBlock(const storage::IoTrace& trace,
                                         uint64_t num_blocks) {
  std::vector<uint64_t> counts(num_blocks, 0);
  for (const auto& ev : trace) {
    if (ev.kind == storage::TraceEvent::Kind::kWrite &&
        ev.block_id < num_blocks) {
      ++counts[ev.block_id];
    }
  }
  return counts;
}

std::vector<uint64_t> ReadCountsByBlock(const storage::IoTrace& trace,
                                        uint64_t num_blocks) {
  std::vector<uint64_t> counts(num_blocks, 0);
  for (const auto& ev : trace) {
    if (ev.kind == storage::TraceEvent::Kind::kRead &&
        ev.block_id < num_blocks) {
      ++counts[ev.block_id];
    }
  }
  return counts;
}

DistinguisherVerdict DistinguishTraces(const storage::IoTrace& suspect,
                                       const storage::IoTrace& reference,
                                       uint64_t num_blocks,
                                       const DistinguisherOptions& opts) {
  // Writes and reads are analysed together positionally: concatenate both
  // kinds' per-block counts so a skew in either betrays the stream.
  std::vector<uint64_t> s = WriteCountsByBlock(suspect, num_blocks);
  std::vector<uint64_t> sr = ReadCountsByBlock(suspect, num_blocks);
  s.insert(s.end(), sr.begin(), sr.end());
  std::vector<uint64_t> r = WriteCountsByBlock(reference, num_blocks);
  std::vector<uint64_t> rr = ReadCountsByBlock(reference, num_blocks);
  r.insert(r.end(), rr.begin(), rr.end());
  return Compare(s, r, opts);
}

}  // namespace steghide::analysis
