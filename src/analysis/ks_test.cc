#include "analysis/ks_test.h"

#include <algorithm>
#include <cmath>

namespace steghide::analysis {

double KolmogorovSurvival(double lambda) {
  if (lambda <= 0.0) return 1.0;
  // Q_KS(l) = 2 * sum_{j>=1} (-1)^{j-1} exp(-2 j^2 l^2); converges fast.
  double sum = 0.0;
  double sign = 1.0;
  for (int j = 1; j <= 100; ++j) {
    const double term = std::exp(-2.0 * j * j * lambda * lambda);
    sum += sign * term;
    if (term < 1e-12) break;
    sign = -sign;
  }
  return std::clamp(2.0 * sum, 0.0, 1.0);
}

KsResult KsTwoSampleTest(std::vector<double> a, std::vector<double> b) {
  KsResult result;
  if (a.empty() || b.empty()) return result;
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());

  const double na = static_cast<double>(a.size());
  const double nb = static_cast<double>(b.size());
  size_t ia = 0;
  size_t ib = 0;
  double d = 0.0;
  while (ia < a.size() && ib < b.size()) {
    const double va = a[ia];
    const double vb = b[ib];
    if (va <= vb) ++ia;
    if (vb <= va) ++ib;
    const double cdf_a = static_cast<double>(ia) / na;
    const double cdf_b = static_cast<double>(ib) / nb;
    d = std::max(d, std::fabs(cdf_a - cdf_b));
  }
  result.statistic = d;
  const double ne = na * nb / (na + nb);
  const double sqrt_ne = std::sqrt(ne);
  result.p_value =
      KolmogorovSurvival((sqrt_ne + 0.12 + 0.11 / sqrt_ne) * d);
  return result;
}

KsResult KsUniformTest(std::vector<double> samples) {
  KsResult result;
  if (samples.empty()) return result;
  std::sort(samples.begin(), samples.end());
  const double n = static_cast<double>(samples.size());
  double d = 0.0;
  for (size_t i = 0; i < samples.size(); ++i) {
    const double cdf = std::clamp(samples[i], 0.0, 1.0);
    const double lo = static_cast<double>(i) / n;
    const double hi = static_cast<double>(i + 1) / n;
    d = std::max({d, std::fabs(cdf - lo), std::fabs(hi - cdf)});
  }
  result.statistic = d;
  const double sqrt_n = std::sqrt(n);
  result.p_value = KolmogorovSurvival((sqrt_n + 0.12 + 0.11 / sqrt_n) * d);
  return result;
}

}  // namespace steghide::analysis
