#ifndef STEGHIDE_ANALYSIS_SNAPSHOT_DIFF_H_
#define STEGHIDE_ANALYSIS_SNAPSHOT_DIFF_H_

#include <cstdint>
#include <vector>

#include "storage/snapshot.h"
#include "util/result.h"

namespace steghide::analysis {

/// Block ids whose content changed between two snapshots — what the
/// update-analysis attacker of §3.1 extracts from consecutive scans of the
/// raw storage.
Result<std::vector<uint64_t>> DiffSnapshots(const storage::Snapshot& before,
                                            const storage::Snapshot& after);

/// Accumulates the attacker's view over a campaign of snapshots: how many
/// times each block was observed to change. Uniform counts are consistent
/// with dummy-only traffic; any block (or region) updated significantly
/// more often than the rest betrays live data.
class UpdateAnalysisObserver {
 public:
  explicit UpdateAnalysisObserver(uint64_t num_blocks)
      : counts_(num_blocks, 0) {}

  /// Records the diff between two consecutive snapshots.
  Status ObserveDiff(const storage::Snapshot& before,
                     const storage::Snapshot& after);

  const std::vector<uint64_t>& counts() const { return counts_; }
  uint64_t total_updates() const { return total_; }
  uint64_t num_blocks() const { return counts_.size(); }

  /// Aggregates per-block counts into `num_bins` contiguous ranges, the
  /// granularity at which the chi-square test is run (per-block expected
  /// counts are usually below the test's validity threshold).
  std::vector<uint64_t> BinnedCounts(size_t num_bins) const;

 private:
  std::vector<uint64_t> counts_;
  uint64_t total_ = 0;
};

/// Bins arbitrary per-position counts into `num_bins` contiguous ranges.
std::vector<uint64_t> BinCounts(const std::vector<uint64_t>& counts,
                                size_t num_bins);

}  // namespace steghide::analysis

#endif  // STEGHIDE_ANALYSIS_SNAPSHOT_DIFF_H_
