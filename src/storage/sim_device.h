#ifndef STEGHIDE_STORAGE_SIM_DEVICE_H_
#define STEGHIDE_STORAGE_SIM_DEVICE_H_

#include <memory>

#include "obs/metrics.h"
#include "storage/block_device.h"
#include "storage/disk_model.h"

namespace steghide::storage {

/// Aggregate I/O counters of a SimBlockDevice.
struct IoStats {
  uint64_t reads = 0;
  uint64_t writes = 0;
  uint64_t sequential = 0;
  uint64_t random = 0;
  double busy_ms = 0.0;

  uint64_t total_ops() const { return reads + writes; }
};

/// Decorates a backing device with the DiskModel: every read/write is
/// forwarded to the backing store and charged on the virtual clock.
/// Experiments create one SimBlockDevice per volume and read elapsed
/// virtual time via clock_ms().
class SimBlockDevice : public BlockDevice {
 public:
  /// Does not take ownership of `backing`, which must outlive this object.
  SimBlockDevice(BlockDevice* backing, const DiskModelParams& params);

  using BlockDevice::ReadBlock;
  using BlockDevice::WriteBlock;

  Status ReadBlock(uint64_t block_id, uint8_t* out) override;
  Status WriteBlock(uint64_t block_id, const uint8_t* data) override;
  uint64_t num_blocks() const override { return backing_->num_blocks(); }
  size_t block_size() const override { return backing_->block_size(); }
  Status Flush() override { return backing_->Flush(); }

  double clock_ms() const { return model_.clock_ms(); }

  /// Torn-read-free snapshot: counters live in sharded atomic cells, so a
  /// reader racing the issuing thread sees consistent (merely stale)
  /// values, never garbage.
  IoStats stats() const {
    IoStats s;
    s.reads = cells_.reads.value();
    s.writes = cells_.writes.value();
    s.sequential = cells_.sequential.value();
    s.random = cells_.random.value();
    s.busy_ms = cells_.busy_ms.value();
    return s;
  }
  DiskModel& model() { return model_; }

  /// Resets counters but not the clock (experiments often measure phases).
  void ResetStats() {
    cells_.reads.Reset();
    cells_.writes.Reset();
    cells_.sequential.Reset();
    cells_.random.Reset();
    cells_.busy_ms.Reset();
  }

  /// Registers this device's instruments under `prefix` (e.g. "io.shard0").
  void RegisterMetrics(obs::Registry* registry, const std::string& prefix);

  BlockDevice* backing() { return backing_; }

 private:
  struct IoCells {
    obs::CounterCell reads;
    obs::CounterCell writes;
    obs::CounterCell sequential;
    obs::CounterCell random;
    obs::GaugeCell busy_ms;
  };

  void Charge(uint64_t block_id);

  BlockDevice* backing_;
  DiskModel model_;
  IoCells cells_;
  obs::Registration registration_;
};

}  // namespace steghide::storage

#endif  // STEGHIDE_STORAGE_SIM_DEVICE_H_
