#include "storage/snapshot.h"

#include <cstring>

namespace steghide::storage {

uint64_t Snapshot::FingerprintBlock(const uint8_t* data, size_t n) {
  // FNV-1a over 8-byte lanes with a finalizing mix (splitmix64). Collision
  // probability at experiment scale (~2^20 blocks) is negligible for a
  // 64-bit digest.
  uint64_t h = 0xcbf29ce484222325ULL;
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    uint64_t lane;
    std::memcpy(&lane, data + i, 8);
    h = (h ^ lane) * 0x100000001b3ULL;
  }
  for (; i < n; ++i) h = (h ^ data[i]) * 0x100000001b3ULL;
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebULL;
  h ^= h >> 31;
  return h;
}

Result<Snapshot> Snapshot::Capture(BlockDevice& device) {
  std::vector<uint64_t> fps(device.num_blocks());
  Bytes buf(device.block_size());
  for (uint64_t b = 0; b < device.num_blocks(); ++b) {
    STEGHIDE_RETURN_IF_ERROR(device.ReadBlock(b, buf.data()));
    fps[b] = FingerprintBlock(buf.data(), buf.size());
  }
  return Snapshot(std::move(fps));
}

}  // namespace steghide::storage
