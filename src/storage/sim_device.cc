#include "storage/sim_device.h"

namespace steghide::storage {

SimBlockDevice::SimBlockDevice(BlockDevice* backing,
                               const DiskModelParams& params)
    : backing_(backing),
      model_(params, backing->num_blocks(), backing->block_size()) {}

void SimBlockDevice::Charge(uint64_t block_id) {
  const uint64_t seq_before = model_.sequential_accesses();
  cells_.busy_ms.Add(model_.Access(block_id));
  if (model_.sequential_accesses() > seq_before) {
    cells_.sequential.Increment();
  } else {
    cells_.random.Increment();
  }
}

Status SimBlockDevice::ReadBlock(uint64_t block_id, uint8_t* out) {
  STEGHIDE_RETURN_IF_ERROR(backing_->ReadBlock(block_id, out));
  Charge(block_id);
  cells_.reads.Increment();
  return Status::OK();
}

Status SimBlockDevice::WriteBlock(uint64_t block_id, const uint8_t* data) {
  STEGHIDE_RETURN_IF_ERROR(backing_->WriteBlock(block_id, data));
  Charge(block_id);
  cells_.writes.Increment();
  return Status::OK();
}

void SimBlockDevice::RegisterMetrics(obs::Registry* registry,
                                     const std::string& prefix) {
  registration_ = obs::Registration(registry);
  registration_.Counter(prefix + ".reads", &cells_.reads);
  registration_.Counter(prefix + ".writes", &cells_.writes);
  registration_.Counter(prefix + ".sequential", &cells_.sequential);
  registration_.Counter(prefix + ".random", &cells_.random);
  registration_.Gauge(prefix + ".busy_ms", &cells_.busy_ms);
  registration_.Callback(prefix + ".clock_ms",
                         [this] { return model_.clock_ms(); });
}

}  // namespace steghide::storage
