#include "storage/sim_device.h"

namespace steghide::storage {

SimBlockDevice::SimBlockDevice(BlockDevice* backing,
                               const DiskModelParams& params)
    : backing_(backing),
      model_(params, backing->num_blocks(), backing->block_size()) {}

void SimBlockDevice::Charge(uint64_t block_id) {
  const uint64_t seq_before = model_.sequential_accesses();
  stats_.busy_ms += model_.Access(block_id);
  if (model_.sequential_accesses() > seq_before) {
    ++stats_.sequential;
  } else {
    ++stats_.random;
  }
}

Status SimBlockDevice::ReadBlock(uint64_t block_id, uint8_t* out) {
  STEGHIDE_RETURN_IF_ERROR(backing_->ReadBlock(block_id, out));
  Charge(block_id);
  ++stats_.reads;
  return Status::OK();
}

Status SimBlockDevice::WriteBlock(uint64_t block_id, const uint8_t* data) {
  STEGHIDE_RETURN_IF_ERROR(backing_->WriteBlock(block_id, data));
  Charge(block_id);
  ++stats_.writes;
  return Status::OK();
}

}  // namespace steghide::storage
