#ifndef STEGHIDE_STORAGE_THREAD_CHECK_H_
#define STEGHIDE_STORAGE_THREAD_CHECK_H_

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <thread>

namespace steghide::storage {

/// Debug-mode enforcement of the single-issuer device contract
/// (block_device.h): raw devices are not thread-safe, so calls into them
/// must never *overlap* — though the issuing thread may legitimately
/// change over a run (benchmarks populate a volume on the main thread,
/// then hand the device to the dispatcher's I/O thread).
///
/// The checker therefore flags concurrent entry rather than pinning one
/// thread id forever: each guarded scope marks the device busy on entry
/// and aborts with a diagnostic when a second thread enters while the
/// first is still inside. Overlap from the *same* thread (recursion) is
/// tolerated, since it cannot race.
///
/// Release builds (NDEBUG) compile the checker away entirely.
class SerialCallChecker {
 public:
#ifndef NDEBUG
  class Guard {
   public:
    Guard(SerialCallChecker& checker, const char* what) : checker_(checker) {
      // Ownership is established by the CAS itself (empty -> self), so a
      // loser can never observe a stale owner id and mistake a genuine
      // cross-thread overlap for recursion.
      const std::thread::id self = std::this_thread::get_id();
      std::thread::id expected{};
      if (!checker_.owner_.compare_exchange_strong(
              expected, self, std::memory_order_acquire) &&
          expected != self) {
        std::fprintf(stderr,
                     "steghide: concurrent %s calls violate the "
                     "single-issuer device contract (block_device.h); "
                     "route I/O through one thread or a synchronized "
                     "decorator\n",
                     what);
        std::abort();
      }
      // Only the owning thread reaches here; depth_ needs no atomicity.
      ++checker_.depth_;
    }
    ~Guard() {
      if (--checker_.depth_ == 0) {
        checker_.owner_.store(std::thread::id{}, std::memory_order_release);
      }
    }

    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;

   private:
    SerialCallChecker& checker_;
  };

 private:
  friend class Guard;
  std::atomic<std::thread::id> owner_{};
  int depth_ = 0;  // touched only while owner_ == this thread
#else
  class Guard {
   public:
    Guard(SerialCallChecker&, const char*) {}
  };
#endif
};

}  // namespace steghide::storage

#define STEGHIDE_SERIAL_CALL_GUARD(checker, what) \
  ::steghide::storage::SerialCallChecker::Guard \
      steghide_serial_call_guard_(checker, what)

#endif  // STEGHIDE_STORAGE_THREAD_CHECK_H_
