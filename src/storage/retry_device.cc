#include "storage/retry_device.h"

namespace steghide::storage {

Status RetryingBlockDevice::Retry(const std::function<Status()>& call) {
  Status status = call();
  if (status.ok()) return status;
  for (int attempt = 1; attempt < policy_.max_attempts; ++attempt) {
    if (status.code() != StatusCode::kIoError) return status;
    if (latency_fn_) latency_fn_(policy_.BackoffFor(attempt - 1));
    cells_.retries.Increment();
    status = call();
    if (status.ok()) {
      cells_.recovered.Increment();
      return status;
    }
  }
  if (policy_.max_attempts > 1 && status.code() == StatusCode::kIoError) {
    cells_.exhausted.Increment();
  }
  return status;
}

Status RetryingBlockDevice::ReadBlock(uint64_t block_id, uint8_t* out) {
  return Retry([&] { return backing_->ReadBlock(block_id, out); });
}

Status RetryingBlockDevice::WriteBlock(uint64_t block_id,
                                       const uint8_t* data) {
  return Retry([&] { return backing_->WriteBlock(block_id, data); });
}

Status RetryingBlockDevice::ReadBlocks(std::span<const uint64_t> ids,
                                       uint8_t* out) {
  return Retry([&] { return backing_->ReadBlocks(ids, out); });
}

Status RetryingBlockDevice::WriteBlocks(std::span<const uint64_t> ids,
                                        const uint8_t* data) {
  return Retry([&] { return backing_->WriteBlocks(ids, data); });
}

Status RetryingBlockDevice::Flush() {
  return Retry([&] { return backing_->Flush(); });
}

void RetryingBlockDevice::RegisterMetrics(obs::Registry* registry,
                                          const std::string& prefix) {
  registration_ = obs::Registration(registry);
  registration_.Counter(prefix + ".retries", &cells_.retries);
  registration_.Counter(prefix + ".recovered", &cells_.recovered);
  registration_.Counter(prefix + ".exhausted", &cells_.exhausted);
}

}  // namespace steghide::storage
