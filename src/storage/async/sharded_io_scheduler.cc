#include "storage/async/sharded_io_scheduler.h"

#include <algorithm>
#include <functional>
#include <string>
#include <utility>

namespace steghide::storage {

ShardedIoScheduler::ShardedIoScheduler(ShardedBlockDevice* device)
    : device_(device) {
  inner_.reserve(device_->shard_count());
  for (size_t k = 0; k < device_->shard_count(); ++k) {
    inner_.push_back(std::make_unique<IoScheduler>(device_->shard(k)));
  }
}

IoFuture ShardedIoScheduler::Submit(IoBatch batch) {
  // Split by shard, preserving submission order within each shard; all
  // accesses of one block land on one shard, so the per-shard scheduler
  // sees every dependency the caller encoded in the batch order.
  std::vector<IoBatch> split(inner_.size());
  for (const IoRequest& req : batch.requests) {
    IoRequest local = req;
    local.block_id = device_->LocalBlock(req.block_id);
    split[device_->ShardOf(req.block_id)].requests.push_back(local);
  }
  for (size_t k = 0; k < inner_.size(); ++k) {
    if (!split[k].empty()) inner_[k]->Submit(std::move(split[k]));
  }
  IoFuture future;
  pending_.push_back(future.state_);
  return future;
}

Status ShardedIoScheduler::Drain() {
  if (pending_.empty()) {
    bool any = false;
    for (const auto& shard : inner_) any = any || !shard->idle();
    if (!any) return Status::OK();
  }
  drains_.Increment();
  obs::ScopedSpan span(trace_, "io.drain_all", trace_track_,
                       {{"shards", static_cast<int64_t>(inner_.size())}});
  std::vector<std::function<Status()>> jobs(inner_.size());
  for (size_t k = 0; k < inner_.size(); ++k) {
    if (inner_[k]->idle()) continue;
    IoScheduler* shard = inner_[k].get();
    jobs[k] = [shard] { return shard->Drain(); };
  }
  // The join barrier inside RunOnShards orders every shard's physical
  // I/O before the futures complete below.
  Status status = device_->RunOnShards(std::move(jobs));
  for (auto& state : pending_) {
    state->done = true;
    state->status = status;
  }
  pending_.clear();
  return status;
}

void ShardedIoScheduler::set_preserve_pattern(bool on) {
  for (auto& shard : inner_) shard->set_preserve_pattern(on);
}

void ShardedIoScheduler::set_retry_policy(const RetryPolicy& policy) {
  for (auto& shard : inner_) shard->set_retry_policy(policy);
}

void ShardedIoScheduler::set_shard_retry_policy(size_t k,
                                                const RetryPolicy& policy) {
  inner_[k]->set_retry_policy(policy);
}

bool ShardedIoScheduler::preserve_pattern() const {
  return inner_.front()->preserve_pattern();
}

bool ShardedIoScheduler::idle() const {
  if (!pending_.empty()) return false;
  for (const auto& shard : inner_) {
    if (!shard->idle()) return false;
  }
  return true;
}

IoSchedulerStats ShardedIoScheduler::stats() const {
  // Safe to call while shard threads are mid-drain: each per-shard
  // stats() is assembled from atomic cells, so the aggregate can lag a
  // racing drain but never tears.
  IoSchedulerStats total;
  for (const auto& shard : inner_) {
    const IoSchedulerStats s = shard->stats();
    total.submitted_reads += s.submitted_reads;
    total.submitted_writes += s.submitted_writes;
    total.physical_reads += s.physical_reads;
    total.physical_writes += s.physical_writes;
    total.coalesced_reads += s.coalesced_reads;
    total.forwarded_reads += s.forwarded_reads;
    total.superseded_writes += s.superseded_writes;
    total.retries += s.retries;
    total.retry_exhausted += s.retry_exhausted;
    // The bottleneck spindle defines the depth of a parallel drain.
    total.queue_depth_p99 = std::max(total.queue_depth_p99, s.queue_depth_p99);
    total.queue_depth_max = std::max(total.queue_depth_max, s.queue_depth_max);
  }
  total.drains = drains_.value();
  return total;
}

void ShardedIoScheduler::ResetStats() {
  for (auto& shard : inner_) shard->ResetStats();
  drains_.Reset();
}

void ShardedIoScheduler::set_trace(obs::TraceLog* log, uint32_t track) {
  trace_ = log;
  trace_track_ = track;
  for (size_t k = 0; k < inner_.size(); ++k) {
    uint32_t shard_track = 0;
    if (log != nullptr) {
      const std::string base =
          track < log->tracks().size() ? log->tracks()[track] : "io";
      shard_track = log->RegisterTrack(base + "/shard" + std::to_string(k));
    }
    inner_[k]->set_trace(log, shard_track);
  }
}

void ShardedIoScheduler::RegisterMetrics(obs::Registry* registry,
                                         const std::string& prefix) {
  registration_ = obs::Registration(registry);
  registration_.Counter(prefix + ".drains", &drains_);
  for (size_t k = 0; k < inner_.size(); ++k) {
    inner_[k]->RegisterMetrics(registry,
                               prefix + ".shard" + std::to_string(k));
  }
}

}  // namespace steghide::storage
