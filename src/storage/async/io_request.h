#ifndef STEGHIDE_STORAGE_ASYNC_IO_REQUEST_H_
#define STEGHIDE_STORAGE_ASYNC_IO_REQUEST_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "util/status.h"

namespace steghide::storage {

/// One block-granular I/O operation in flight. Buffers are borrowed from
/// the submitter and must stay valid until the owning batch completes.
struct IoRequest {
  enum class Op : uint8_t { kRead, kWrite };

  Op op = Op::kRead;
  uint64_t block_id = 0;
  /// Destination for kRead (block_size bytes). Null for kWrite.
  uint8_t* out = nullptr;
  /// Source for kWrite (block_size bytes). Null for kRead.
  const uint8_t* data = nullptr;

  static IoRequest Read(uint64_t block_id, uint8_t* out) {
    return IoRequest{Op::kRead, block_id, out, nullptr};
  }
  static IoRequest Write(uint64_t block_id, const uint8_t* data) {
    return IoRequest{Op::kWrite, block_id, nullptr, data};
  }
};

/// An ordered group of requests submitted together. Order within a batch
/// carries the submitter's data dependencies (a read after a write of the
/// same block sees the written data); the scheduler is free to reorder
/// the *physical* issue sequence as long as it preserves them.
struct IoBatch {
  std::vector<IoRequest> requests;

  void Read(uint64_t block_id, uint8_t* out) {
    requests.push_back(IoRequest::Read(block_id, out));
  }
  void Write(uint64_t block_id, const uint8_t* data) {
    requests.push_back(IoRequest::Write(block_id, data));
  }
  bool empty() const { return requests.empty(); }
  size_t size() const { return requests.size(); }
};

/// Completion handle for a submitted batch. Shared-state future: the
/// scheduler marks it done (with the batch's overall status) when the
/// batch has been issued to the backing device.
class IoFuture {
 public:
  IoFuture() : state_(std::make_shared<State>()) {}

  bool done() const { return state_->done; }
  /// Status of the whole batch; only meaningful once done().
  const Status& status() const { return state_->status; }

 private:
  friend class IoScheduler;
  friend class ShardedIoScheduler;
  struct State {
    bool done = false;
    Status status;
  };
  std::shared_ptr<State> state_;
};

/// Submission interface of the async storage stack. Submit() enqueues a
/// batch and returns immediately with a future; Drain() issues everything
/// pending and completes the futures. Single-threaded deferred execution:
/// there is no background thread — the caller chooses when the queue
/// drains, which keeps the virtual-disk-clock experiments deterministic.
class AsyncBlockDevice {
 public:
  virtual ~AsyncBlockDevice() = default;

  /// Enqueues `batch`; the returned future completes at the next Drain().
  virtual IoFuture Submit(IoBatch batch) = 0;

  /// Issues every pending request against the backing device and
  /// completes the outstanding futures. Returns the first error.
  virtual Status Drain() = 0;
};

}  // namespace steghide::storage

#endif  // STEGHIDE_STORAGE_ASYNC_IO_REQUEST_H_
