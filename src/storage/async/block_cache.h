#ifndef STEGHIDE_STORAGE_ASYNC_BLOCK_CACHE_H_
#define STEGHIDE_STORAGE_ASYNC_BLOCK_CACHE_H_

#include <list>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/metrics.h"
#include "storage/block_device.h"

namespace steghide::storage {

struct BlockCacheOptions {
  /// Total cached blocks across all shards.
  uint64_t capacity_blocks = 1024;
  /// Number of LRU shards; rounded up to a power of two, at least 1.
  size_t shards = 4;
  /// false: write-through — every write reaches the backing device
  /// immediately and the cache keeps a clean copy. true: write-back —
  /// writes dirty the cache and reach the backing device on eviction or
  /// Flush() only.
  bool write_back = false;
};

struct BlockCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  /// Dirty blocks pushed to the backing device (write-back mode).
  uint64_t writebacks = 0;

  double HitRate() const {
    const uint64_t total = hits + misses;
    return total == 0 ? 0.0
                      : static_cast<double>(hits) / static_cast<double>(total);
  }
};

/// Sharded LRU block cache decorator. Sits anywhere in the storage
/// decorator stack; the attacker model decides where:
///
///   agent → BlockCache → TraceBlockDevice → SimBlockDevice → Mem/File
///
/// records (and charges) only the post-cache *physical* I/O — the request
/// stream an attacker monitoring the storage actually sees. Composing the
/// other way (Trace above Cache) records the logical request stream
/// instead, which is useful for asserting workload behaviour in tests but
/// is not the paper's attacker surface.
///
/// Concurrency: the cache is fully thread-safe. Shard state (LRU lists,
/// maps, stats) is guarded by per-shard locks, and every path that
/// reaches the backing device — misses, write-through writes, eviction
/// write-backs, Flush — funnels through one internal backing mutex, so a
/// non-thread-safe backing device (block_device.h single-issuer
/// contract) sees strictly serialized calls. Lock order is always
/// shard → backing; Flush takes all shard locks in index order before
/// the backing lock, and no path acquires a second shard lock while
/// holding one, so the hierarchy is acyclic.
class BlockCache : public BlockDevice {
 public:
  /// Does not take ownership of `backing`.
  BlockCache(BlockDevice* backing, const BlockCacheOptions& options);

  using BlockDevice::ReadBlock;
  using BlockDevice::WriteBlock;
  using BlockDevice::ReadBlocks;

  Status ReadBlock(uint64_t block_id, uint8_t* out) override;
  Status WriteBlock(uint64_t block_id, const uint8_t* data) override;
  Status ReadBlocks(std::span<const uint64_t> ids, uint8_t* out) override;
  Status WriteBlocks(std::span<const uint64_t> ids,
                     const uint8_t* data) override;
  uint64_t num_blocks() const override { return backing_->num_blocks(); }
  size_t block_size() const override { return backing_->block_size(); }

  /// Writes back every dirty block (ascending block order), then flushes
  /// the backing device. Write-back users must call this before reading
  /// the backing device directly or dropping the cache.
  Status Flush() override;

  /// Drops every entry. Refuses (FailedPrecondition) while dirty blocks
  /// exist, so cached writes cannot be lost silently — Flush() first.
  Status Invalidate();

  /// True if `block_id` is currently cached (test/introspection hook;
  /// does not touch LRU order).
  bool Contains(uint64_t block_id) const;

  uint64_t cached_blocks() const;
  /// Snapshot of the atomic counter cells — safe from any thread while
  /// other threads are hitting the cache.
  BlockCacheStats stats() const;
  void ResetStats();
  /// Registers hit/miss/eviction/writeback counters under `prefix`.
  void RegisterMetrics(obs::Registry* registry, const std::string& prefix);
  BlockDevice* backing() { return backing_; }

 private:
  struct Entry {
    uint64_t block_id = 0;
    Bytes data;
    bool dirty = false;
  };
  struct Shard {
    mutable std::mutex mu;
    std::list<Entry> lru;  // front = most recently used
    std::unordered_map<uint64_t, std::list<Entry>::iterator> map;
    /// Bumped on every entry mutation (insert, update, eviction,
    /// invalidate). ReadBlocks snapshots it per miss and refuses to
    /// install a fetched image if the shard changed while the backing
    /// fetch ran unlocked — a concurrent write (or dirty eviction) may
    /// have made that image stale.
    uint64_t epoch = 0;  // guarded by mu
  };

  size_t ShardIndexFor(uint64_t block_id) const {
    return (block_id * 0x9E3779B97F4A7C15ull >> 32) & shard_mask_;
  }
  Shard& ShardFor(uint64_t block_id);
  const Shard& ShardFor(uint64_t block_id) const;

  /// Inserts or refreshes an entry, evicting the shard's LRU tail when
  /// over budget. Caller holds the shard lock.
  Status InsertLocked(Shard& shard, uint64_t block_id, const uint8_t* data,
                      bool dirty);

  /// Serialized wrappers around the backing device, so concurrent shard
  /// operations never issue overlapping calls downstream.
  Status BackingRead(uint64_t block_id, uint8_t* out);
  Status BackingReadBlocks(std::span<const uint64_t> ids, uint8_t* out);
  Status BackingWrite(uint64_t block_id, const uint8_t* data);
  Status BackingWriteBlocks(std::span<const uint64_t> ids,
                            const uint8_t* data);

  /// Counters live outside the shard locks as striped atomic cells:
  /// writers on different shards never contend, and stats() needs no
  /// locks at all.
  struct Cells {
    obs::CounterCell hits;
    obs::CounterCell misses;
    obs::CounterCell evictions;
    obs::CounterCell writebacks;
  };

  BlockDevice* backing_;
  /// Guards all calls into backing_ (acquired after any shard lock).
  std::mutex backing_mu_;
  bool write_back_;
  uint64_t per_shard_capacity_;
  size_t shard_mask_;
  std::vector<Shard> shards_;
  Cells cells_;
  obs::Registration registration_;
};

}  // namespace steghide::storage

#endif  // STEGHIDE_STORAGE_ASYNC_BLOCK_CACHE_H_
