#include "storage/async/block_cache.h"

#include <algorithm>
#include <cstring>

namespace steghide::storage {

namespace {
size_t RoundUpPow2(size_t v) {
  size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}
}  // namespace

BlockCache::BlockCache(BlockDevice* backing, const BlockCacheOptions& options)
    : backing_(backing), write_back_(options.write_back) {
  const size_t shards = RoundUpPow2(std::max<size_t>(1, options.shards));
  shard_mask_ = shards - 1;
  const uint64_t capacity = std::max<uint64_t>(1, options.capacity_blocks);
  per_shard_capacity_ = (capacity + shards - 1) / shards;
  shards_ = std::vector<Shard>(shards);
}

BlockCache::Shard& BlockCache::ShardFor(uint64_t block_id) {
  // ShardIndexFor's Fibonacci mixing spreads adjacent block ids across
  // shards, so a sequential scan does not hammer one LRU list.
  return shards_[ShardIndexFor(block_id)];
}

const BlockCache::Shard& BlockCache::ShardFor(uint64_t block_id) const {
  return shards_[ShardIndexFor(block_id)];
}

Status BlockCache::BackingRead(uint64_t block_id, uint8_t* out) {
  std::lock_guard<std::mutex> lock(backing_mu_);
  return backing_->ReadBlock(block_id, out);
}

Status BlockCache::BackingReadBlocks(std::span<const uint64_t> ids,
                                     uint8_t* out) {
  std::lock_guard<std::mutex> lock(backing_mu_);
  return backing_->ReadBlocks(ids, out);
}

Status BlockCache::BackingWrite(uint64_t block_id, const uint8_t* data) {
  std::lock_guard<std::mutex> lock(backing_mu_);
  return backing_->WriteBlock(block_id, data);
}

Status BlockCache::BackingWriteBlocks(std::span<const uint64_t> ids,
                                      const uint8_t* data) {
  std::lock_guard<std::mutex> lock(backing_mu_);
  return backing_->WriteBlocks(ids, data);
}

Status BlockCache::InsertLocked(Shard& shard, uint64_t block_id,
                                const uint8_t* data, bool dirty) {
  ++shard.epoch;
  const size_t bs = block_size();
  const auto it = shard.map.find(block_id);
  if (it != shard.map.end()) {
    Entry& entry = *it->second;
    std::memcpy(entry.data.data(), data, bs);
    entry.dirty = dirty || entry.dirty;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return Status::OK();
  }
  shard.lru.push_front(Entry{block_id, Bytes(data, data + bs), dirty});
  shard.map[block_id] = shard.lru.begin();
  while (shard.lru.size() > per_shard_capacity_) {
    Entry& victim = shard.lru.back();
    if (victim.dirty) {
      STEGHIDE_RETURN_IF_ERROR(
          BackingWrite(victim.block_id, victim.data.data()));
      cells_.writebacks.Increment();
    }
    shard.map.erase(victim.block_id);
    shard.lru.pop_back();
    cells_.evictions.Increment();
  }
  return Status::OK();
}

Status BlockCache::ReadBlock(uint64_t block_id, uint8_t* out) {
  Shard& shard = ShardFor(block_id);
  std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = shard.map.find(block_id);
  if (it != shard.map.end()) {
    std::memcpy(out, it->second->data.data(), block_size());
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    cells_.hits.Increment();
    return Status::OK();
  }
  cells_.misses.Increment();
  STEGHIDE_RETURN_IF_ERROR(BackingRead(block_id, out));
  return InsertLocked(shard, block_id, out, /*dirty=*/false);
}

Status BlockCache::WriteBlock(uint64_t block_id, const uint8_t* data) {
  // Take the shard lock before touching the backing device, so the
  // backing write and the cache update are one atomic step per shard
  // (same-block writers cannot leave the cache stale).
  Shard& shard = ShardFor(block_id);
  std::lock_guard<std::mutex> lock(shard.mu);
  if (!write_back_) {
    STEGHIDE_RETURN_IF_ERROR(BackingWrite(block_id, data));
  } else {
    // The backing device is not consulted until eviction/Flush, so the
    // range check it would have done happens here.
    STEGHIDE_RETURN_IF_ERROR(CheckRange(block_id));
  }
  return InsertLocked(shard, block_id, data, /*dirty=*/write_back_);
}

Status BlockCache::ReadBlocks(std::span<const uint64_t> ids, uint8_t* out) {
  const size_t bs = block_size();
  std::vector<uint64_t> miss_ids;
  std::vector<size_t> miss_shard;  // shard index per distinct miss
  std::vector<std::pair<size_t, size_t>> miss_fill;  // (out index, miss index)
  std::unordered_map<uint64_t, size_t> miss_index;
  // Shard index -> epoch we expect at install time; advanced by our own
  // installs so only *foreign* mutations during the unlocked backing
  // fetch invalidate the remaining misses of a shard.
  std::unordered_map<size_t, uint64_t> expected_epoch;
  for (size_t i = 0; i < ids.size(); ++i) {
    const size_t shard_index = ShardIndexFor(ids[i]);
    Shard& shard = shards_[shard_index];
    std::lock_guard<std::mutex> lock(shard.mu);
    const auto it = shard.map.find(ids[i]);
    if (it != shard.map.end()) {
      std::memcpy(out + i * bs, it->second->data.data(), bs);
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      cells_.hits.Increment();
      continue;
    }
    cells_.misses.Increment();
    const auto [mit, inserted] = miss_index.try_emplace(ids[i], miss_ids.size());
    if (inserted) {
      miss_ids.push_back(ids[i]);
      miss_shard.push_back(shard_index);
      expected_epoch[shard_index] = shard.epoch;
    }
    miss_fill.emplace_back(i, mit->second);
  }
  if (miss_ids.empty()) return Status::OK();

  // One vectored fetch for the distinct misses, in first-miss order — the
  // physical sequence a trace below the cache records.
  Bytes fetched(miss_ids.size() * bs);
  STEGHIDE_RETURN_IF_ERROR(BackingReadBlocks(miss_ids, fetched.data()));
  for (const auto& [out_i, miss_i] : miss_fill) {
    std::memcpy(out + out_i * bs, fetched.data() + miss_i * bs, bs);
  }
  for (size_t m = 0; m < miss_ids.size(); ++m) {
    Shard& shard = shards_[miss_shard[m]];
    std::lock_guard<std::mutex> lock(shard.mu);
    // The shard locks were dropped for the backing fetch. If anything
    // *else* mutated this shard since classification — a concurrent
    // write to the block (its image is newer), or a dirty eviction that
    // pushed a newer image to the backing device and erased the entry —
    // the fetched image may be stale: skip the install rather than cache
    // it as clean. (A spurious skip just costs one future miss.)
    uint64_t& expected = expected_epoch[miss_shard[m]];
    if (shard.epoch != expected) continue;
    if (shard.map.find(miss_ids[m]) != shard.map.end()) continue;
    STEGHIDE_RETURN_IF_ERROR(InsertLocked(shard, miss_ids[m],
                                          fetched.data() + m * bs,
                                          /*dirty=*/false));
    expected = shard.epoch;  // our own install is not foreign
  }
  return Status::OK();
}

Status BlockCache::WriteBlocks(std::span<const uint64_t> ids,
                               const uint8_t* data) {
  const size_t bs = block_size();
  if (!write_back_) {
    // Write-through must make the backing write and the cache update one
    // atomic step (same rule as WriteBlock), or a concurrent same-block
    // writer can leave the cache permanently stale against the backing
    // device. Hold every shard lock for the whole vectored write, as
    // Flush does — other paths take at most one shard lock, so the
    // index-ordered acquisition cannot deadlock.
    std::vector<std::unique_lock<std::mutex>> locks;
    locks.reserve(shards_.size());
    for (Shard& shard : shards_) locks.emplace_back(shard.mu);
    STEGHIDE_RETURN_IF_ERROR(BackingWriteBlocks(ids, data));
    for (size_t i = 0; i < ids.size(); ++i) {
      STEGHIDE_RETURN_IF_ERROR(InsertLocked(ShardFor(ids[i]), ids[i],
                                            data + i * bs, /*dirty=*/false));
    }
    return Status::OK();
  }
  for (uint64_t id : ids) STEGHIDE_RETURN_IF_ERROR(CheckRange(id));
  for (size_t i = 0; i < ids.size(); ++i) {
    Shard& shard = ShardFor(ids[i]);
    std::lock_guard<std::mutex> lock(shard.mu);
    STEGHIDE_RETURN_IF_ERROR(
        InsertLocked(shard, ids[i], data + i * bs, /*dirty=*/true));
  }
  return Status::OK();
}

Status BlockCache::Flush() {
  // Hold every shard lock for the whole pass (other paths take at most
  // one, so the lock order cannot deadlock), collect the dirty set in
  // ascending block order, and push it as one vectored write — the
  // decorators below see the flush as a single disk sweep.
  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(shards_.size());
  for (Shard& shard : shards_) locks.emplace_back(shard.mu);

  std::vector<uint64_t> dirty_ids;
  for (Shard& shard : shards_) {
    for (const Entry& entry : shard.lru) {
      if (entry.dirty) dirty_ids.push_back(entry.block_id);
    }
  }
  std::sort(dirty_ids.begin(), dirty_ids.end());

  if (!dirty_ids.empty()) {
    const size_t bs = block_size();
    Bytes images(dirty_ids.size() * bs);
    for (size_t i = 0; i < dirty_ids.size(); ++i) {
      const Shard& shard = ShardFor(dirty_ids[i]);
      std::memcpy(images.data() + i * bs,
                  shard.map.at(dirty_ids[i])->data.data(), bs);
    }
    STEGHIDE_RETURN_IF_ERROR(BackingWriteBlocks(dirty_ids, images.data()));
    for (uint64_t id : dirty_ids) {
      Shard& shard = ShardFor(id);
      shard.map.at(id)->dirty = false;
      cells_.writebacks.Increment();
    }
  }
  std::lock_guard<std::mutex> backing_lock(backing_mu_);
  return backing_->Flush();
}

Status BlockCache::Invalidate() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (const Entry& entry : shard.lru) {
      if (entry.dirty) {
        return Status::FailedPrecondition(
            "cache holds dirty blocks; Flush() before Invalidate()");
      }
    }
  }
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    ++shard.epoch;
    shard.lru.clear();
    shard.map.clear();
  }
  return Status::OK();
}

bool BlockCache::Contains(uint64_t block_id) const {
  const Shard& shard = ShardFor(block_id);
  std::lock_guard<std::mutex> lock(shard.mu);
  return shard.map.find(block_id) != shard.map.end();
}

uint64_t BlockCache::cached_blocks() const {
  uint64_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.map.size();
  }
  return total;
}

BlockCacheStats BlockCache::stats() const {
  BlockCacheStats total;
  total.hits = cells_.hits.value();
  total.misses = cells_.misses.value();
  total.evictions = cells_.evictions.value();
  total.writebacks = cells_.writebacks.value();
  return total;
}

void BlockCache::ResetStats() {
  cells_.hits.Reset();
  cells_.misses.Reset();
  cells_.evictions.Reset();
  cells_.writebacks.Reset();
}

void BlockCache::RegisterMetrics(obs::Registry* registry,
                                 const std::string& prefix) {
  registration_ = obs::Registration(registry);
  registration_.Counter(prefix + ".hits", &cells_.hits);
  registration_.Counter(prefix + ".misses", &cells_.misses);
  registration_.Counter(prefix + ".evictions", &cells_.evictions);
  registration_.Counter(prefix + ".writebacks", &cells_.writebacks);
  registration_.Callback(prefix + ".cached_blocks",
                         [this] { return static_cast<double>(cached_blocks()); });
}

}  // namespace steghide::storage
