#include "storage/async/io_scheduler.h"

#include <cstring>

namespace steghide::storage {

IoFuture IoScheduler::Submit(IoBatch batch) {
  IoFuture future;
  for (const IoRequest& req : batch.requests) {
    if (req.op == IoRequest::Op::kRead) {
      ++stats_.submitted_reads;
    } else {
      ++stats_.submitted_writes;
    }
  }
  queue_.push_back(Pending{std::move(batch), future.state_});
  return future;
}

Status IoScheduler::IssueVerbatim(const IoBatch& batch) {
  // Walk the batch once, folding maximal same-op runs whose buffers are
  // laid out contiguously (the common shape: a caller reading a probe set
  // into one Bytes buffer) into a single vectored call. Everything else
  // is issued block by block, still in submission order.
  const size_t bs = backing_->block_size();
  const auto& reqs = batch.requests;
  size_t i = 0;
  while (i < reqs.size()) {
    size_t j = i + 1;
    if (reqs[i].op == IoRequest::Op::kRead) {
      // Adjacent-pair comparison only: forming `prev + bs` is at most a
      // one-past-the-end pointer even for unrelated buffers.
      while (j < reqs.size() && reqs[j].op == IoRequest::Op::kRead &&
             reqs[j].out == reqs[j - 1].out + bs) {
        ++j;
      }
      std::vector<uint64_t> ids;
      ids.reserve(j - i);
      for (size_t r = i; r < j; ++r) ids.push_back(reqs[r].block_id);
      STEGHIDE_RETURN_IF_ERROR(backing_->ReadBlocks(ids, reqs[i].out));
      stats_.physical_reads += j - i;
    } else {
      while (j < reqs.size() && reqs[j].op == IoRequest::Op::kWrite &&
             reqs[j].data == reqs[j - 1].data + bs) {
        ++j;
      }
      std::vector<uint64_t> ids;
      ids.reserve(j - i);
      for (size_t r = i; r < j; ++r) ids.push_back(reqs[r].block_id);
      STEGHIDE_RETURN_IF_ERROR(backing_->WriteBlocks(ids, reqs[i].data));
      stats_.physical_writes += j - i;
    }
    i = j;
  }
  return Status::OK();
}

Status IoScheduler::Drain() {
  if (queue_.empty()) return Status::OK();
  ++stats_.drains;

  if (preserve_pattern_) {
    Status status;
    for (const Pending& pending : queue_) {
      status = IssueVerbatim(pending.batch);
      if (!status.ok()) break;
    }
    for (Pending& pending : queue_) {
      pending.state->done = true;
      pending.state->status = status;
    }
    queue_.clear();
    return status;
  }

  // Plan: walk the merged submission order once, folding requests into
  // per-block read fan-out lists and last-image writes. std::map keys are
  // iterated in ascending block order, which *is* the elevator schedule.
  std::map<uint64_t, std::vector<uint8_t*>> reads;
  std::map<uint64_t, const uint8_t*> writes;

  for (Pending& pending : queue_) {
    for (const IoRequest& req : pending.batch.requests) {
      if (req.op == IoRequest::Op::kRead) {
        const auto w = writes.find(req.block_id);
        if (w != writes.end()) {
          // Read-after-write forwarding: the pending write is the newest
          // image of this block; no physical read needed.
          std::memcpy(req.out, w->second, backing_->block_size());
          ++stats_.forwarded_reads;
          continue;
        }
        auto [it, inserted] = reads.try_emplace(req.block_id);
        if (!inserted) ++stats_.coalesced_reads;
        it->second.push_back(req.out);
      } else {
        auto [it, inserted] = writes.try_emplace(req.block_id, req.data);
        if (!inserted) {
          // Later write supersedes: any read submitted between the two
          // was forwarded above, so the earlier image is unobservable.
          it->second = req.data;
          ++stats_.superseded_writes;
        }
      }
    }
  }

  // Issue phase: reads first (they must see pre-drain content — every
  // pending write postdates every pending read of the same block, or the
  // read would have been forwarded), then writes, each in ascending
  // block order.
  Status status;
  for (auto& [block_id, dests] : reads) {
    status = backing_->ReadBlock(block_id, dests.front());
    if (!status.ok()) break;
    ++stats_.physical_reads;
    for (size_t i = 1; i < dests.size(); ++i) {
      std::memcpy(dests[i], dests.front(), backing_->block_size());
    }
  }
  if (status.ok()) {
    for (const auto& [block_id, data] : writes) {
      status = backing_->WriteBlock(block_id, data);
      if (!status.ok()) break;
      ++stats_.physical_writes;
    }
  }

  // A drain is all-or-nothing from the futures' point of view: on error
  // every batch in the window reports the failure.
  for (Pending& pending : queue_) {
    pending.state->done = true;
    pending.state->status = status;
  }
  queue_.clear();
  return status;
}

Status IoScheduler::Run(IoBatch batch) {
  IoFuture future = Submit(std::move(batch));
  STEGHIDE_RETURN_IF_ERROR(Drain());
  return future.status();
}

}  // namespace steghide::storage
