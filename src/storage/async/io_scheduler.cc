#include "storage/async/io_scheduler.h"

#include <cstring>
#include <iterator>

namespace steghide::storage {

IoFuture IoScheduler::Submit(IoBatch batch) {
  IoFuture future;
  for (const IoRequest& req : batch.requests) {
    if (req.op == IoRequest::Op::kRead) {
      cells_.submitted_reads.Increment();
    } else {
      cells_.submitted_writes.Increment();
    }
  }
  queue_.push_back(Pending{std::move(batch), future.state_});
  return future;
}

Status IoScheduler::IssueBacking(std::span<const uint64_t> ids, uint8_t* out,
                                 const uint8_t* data) {
  int attempt = 0;
  for (;;) {
    Status status = data != nullptr ? backing_->WriteBlocks(ids, data)
                                    : backing_->ReadBlocks(ids, out);
    if (status.ok()) return status;
    // Only true I/O failures are retriable, and only a whole-call
    // re-drive is safe: block reads/writes are idempotent per call, so
    // re-issuing a torn batch completes it without changing the per-
    // block image. The retry burns no separate backoff clock — the
    // re-issued physical I/O itself is the (virtual-time) cost.
    if (!retry_.has_value() || status.code() != StatusCode::kIoError ||
        attempt + 1 >= retry_->max_attempts) {
      if (attempt > 0) cells_.retry_exhausted.Increment();
      return status;
    }
    ++attempt;
    cells_.retries.Increment();
    if (trace_ != nullptr) {
      trace_->Instant("io.retry", trace_track_,
                      {{"attempt", static_cast<int64_t>(attempt)},
                       {"blocks", static_cast<int64_t>(ids.size())}});
    }
  }
}

Status IoScheduler::IssueVerbatim(const IoBatch& batch) {
  // Walk the batch once, folding maximal same-op runs whose buffers are
  // laid out contiguously (the common shape: a caller reading a probe set
  // into one Bytes buffer) into a single vectored call. Everything else
  // is issued block by block, still in submission order.
  const size_t bs = backing_->block_size();
  const auto& reqs = batch.requests;
  size_t i = 0;
  while (i < reqs.size()) {
    size_t j = i + 1;
    if (reqs[i].op == IoRequest::Op::kRead) {
      // Adjacent-pair comparison only: forming `prev + bs` is at most a
      // one-past-the-end pointer even for unrelated buffers.
      while (j < reqs.size() && reqs[j].op == IoRequest::Op::kRead &&
             reqs[j].out == reqs[j - 1].out + bs) {
        ++j;
      }
      std::vector<uint64_t> ids;
      ids.reserve(j - i);
      for (size_t r = i; r < j; ++r) ids.push_back(reqs[r].block_id);
      STEGHIDE_RETURN_IF_ERROR(IssueBacking(ids, reqs[i].out, nullptr));
      cells_.physical_reads.Add(j - i);
    } else {
      while (j < reqs.size() && reqs[j].op == IoRequest::Op::kWrite &&
             reqs[j].data == reqs[j - 1].data + bs) {
        ++j;
      }
      std::vector<uint64_t> ids;
      ids.reserve(j - i);
      for (size_t r = i; r < j; ++r) ids.push_back(reqs[r].block_id);
      STEGHIDE_RETURN_IF_ERROR(IssueBacking(ids, nullptr, reqs[i].data));
      cells_.physical_writes.Add(j - i);
    }
    i = j;
  }
  return Status::OK();
}

Status IoScheduler::Drain() {
  if (queue_.empty()) return Status::OK();
  cells_.drains.Increment();
  size_t depth = 0;
  for (const Pending& pending : queue_) {
    depth += pending.batch.requests.size();
  }
  cells_.queue_depth.Record(static_cast<double>(depth));
  obs::ScopedSpan span(trace_, "io.drain", trace_track_,
                       {{"reqs", static_cast<int64_t>(depth)}});

  if (preserve_pattern_) {
    Status status;
    for (const Pending& pending : queue_) {
      status = IssueVerbatim(pending.batch);
      if (!status.ok()) break;
    }
    for (Pending& pending : queue_) {
      pending.state->done = true;
      pending.state->status = status;
    }
    queue_.clear();
    return status;
  }

  // Plan: walk the merged submission order once, folding requests into
  // per-block read fan-out lists and last-image writes. std::map keys are
  // iterated in ascending block order, which *is* the elevator schedule.
  std::map<uint64_t, std::vector<uint8_t*>> reads;
  std::map<uint64_t, const uint8_t*> writes;

  for (Pending& pending : queue_) {
    for (const IoRequest& req : pending.batch.requests) {
      if (req.op == IoRequest::Op::kRead) {
        const auto w = writes.find(req.block_id);
        if (w != writes.end()) {
          // Read-after-write forwarding: the pending write is the newest
          // image of this block; no physical read needed.
          std::memcpy(req.out, w->second, backing_->block_size());
          cells_.forwarded_reads.Increment();
          continue;
        }
        auto [it, inserted] = reads.try_emplace(req.block_id);
        if (!inserted) cells_.coalesced_reads.Increment();
        it->second.push_back(req.out);
      } else {
        auto [it, inserted] = writes.try_emplace(req.block_id, req.data);
        if (!inserted) {
          // Later write supersedes: any read submitted between the two
          // was forwarded above, so the earlier image is unobservable.
          it->second = req.data;
          cells_.superseded_writes.Increment();
        }
      }
    }
  }

  // Issue phase: reads first (they must see pre-drain content — every
  // pending write postdates every pending read of the same block, or the
  // read would have been forwarded), then writes, each in ascending
  // block order. Ascending map runs whose primary buffers happen to sit
  // contiguously fold into one vectored call, exactly like IssueVerbatim:
  // the default ReadBlocks/WriteBlocks issues per block in the same
  // ascending order, so the attacker-visible trace — and the per-block
  // physical counter semantics — are unchanged.
  const size_t bs = backing_->block_size();
  Status status;
  for (auto it = reads.begin(); it != reads.end();) {
    auto run_end = std::next(it);
    // Adjacent-pair comparison only: forming `prev + bs` is at most a
    // one-past-the-end pointer even for unrelated buffers.
    while (run_end != reads.end() &&
           run_end->second.front() == std::prev(run_end)->second.front() + bs) {
      ++run_end;
    }
    std::vector<uint64_t> ids;
    for (auto r = it; r != run_end; ++r) ids.push_back(r->first);
    status = IssueBacking(ids, it->second.front(), nullptr);
    if (!status.ok()) break;
    cells_.physical_reads.Add(ids.size());
    for (auto r = it; r != run_end; ++r) {
      const std::vector<uint8_t*>& dests = r->second;
      for (size_t i = 1; i < dests.size(); ++i) {
        std::memcpy(dests[i], dests.front(), bs);
      }
    }
    it = run_end;
  }
  if (status.ok()) {
    for (auto it = writes.begin(); it != writes.end();) {
      auto run_end = std::next(it);
      while (run_end != writes.end() &&
             run_end->second == std::prev(run_end)->second + bs) {
        ++run_end;
      }
      std::vector<uint64_t> ids;
      for (auto r = it; r != run_end; ++r) ids.push_back(r->first);
      status = IssueBacking(ids, nullptr, it->second);
      if (!status.ok()) break;
      cells_.physical_writes.Add(ids.size());
      it = run_end;
    }
  }

  // A drain is all-or-nothing from the futures' point of view: on error
  // every batch in the window reports the failure.
  for (Pending& pending : queue_) {
    pending.state->done = true;
    pending.state->status = status;
  }
  queue_.clear();
  return status;
}

IoSchedulerStats IoScheduler::stats() const {
  IoSchedulerStats s;
  s.submitted_reads = cells_.submitted_reads.value();
  s.submitted_writes = cells_.submitted_writes.value();
  s.physical_reads = cells_.physical_reads.value();
  s.physical_writes = cells_.physical_writes.value();
  s.coalesced_reads = cells_.coalesced_reads.value();
  s.forwarded_reads = cells_.forwarded_reads.value();
  s.superseded_writes = cells_.superseded_writes.value();
  s.drains = cells_.drains.value();
  s.retries = cells_.retries.value();
  s.retry_exhausted = cells_.retry_exhausted.value();
  s.queue_depth_p99 = cells_.queue_depth.Percentile(99.0);
  s.queue_depth_max = cells_.queue_depth.max();
  return s;
}

void IoScheduler::ResetStats() {
  cells_.submitted_reads.Reset();
  cells_.submitted_writes.Reset();
  cells_.physical_reads.Reset();
  cells_.physical_writes.Reset();
  cells_.coalesced_reads.Reset();
  cells_.forwarded_reads.Reset();
  cells_.superseded_writes.Reset();
  cells_.drains.Reset();
  cells_.retries.Reset();
  cells_.retry_exhausted.Reset();
  cells_.queue_depth.Reset();
}

void IoScheduler::RegisterMetrics(obs::Registry* registry,
                                  const std::string& prefix) {
  registration_ = obs::Registration(registry);
  registration_.Counter(prefix + ".submitted_reads", &cells_.submitted_reads);
  registration_.Counter(prefix + ".submitted_writes",
                        &cells_.submitted_writes);
  registration_.Counter(prefix + ".physical_reads", &cells_.physical_reads);
  registration_.Counter(prefix + ".physical_writes", &cells_.physical_writes);
  registration_.Counter(prefix + ".coalesced_reads", &cells_.coalesced_reads);
  registration_.Counter(prefix + ".forwarded_reads", &cells_.forwarded_reads);
  registration_.Counter(prefix + ".superseded_writes",
                        &cells_.superseded_writes);
  registration_.Counter(prefix + ".drains", &cells_.drains);
  registration_.Counter(prefix + ".retries", &cells_.retries);
  registration_.Counter(prefix + ".retry_exhausted",
                        &cells_.retry_exhausted);
  registration_.Histogram(prefix + ".queue_depth", &cells_.queue_depth);
}

Status IoSchedulerBase::Run(IoBatch batch) {
  IoFuture future = Submit(std::move(batch));
  STEGHIDE_RETURN_IF_ERROR(Drain());
  return future.status();
}

}  // namespace steghide::storage
