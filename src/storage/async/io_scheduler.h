#ifndef STEGHIDE_STORAGE_ASYNC_IO_SCHEDULER_H_
#define STEGHIDE_STORAGE_ASYNC_IO_SCHEDULER_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace_log.h"
#include "storage/async/io_request.h"
#include "storage/block_device.h"
#include "storage/retry_device.h"

namespace steghide::storage {

/// Counters describing what a drain pass did to the request stream.
/// Snapshot view: the live values are atomic cells inside the scheduler,
/// so this struct can be materialised from any thread while shard threads
/// keep draining.
struct IoSchedulerStats {
  uint64_t submitted_reads = 0;
  uint64_t submitted_writes = 0;
  /// Requests actually issued to the backing device.
  uint64_t physical_reads = 0;
  uint64_t physical_writes = 0;
  /// Duplicate reads of a block served by one physical read.
  uint64_t coalesced_reads = 0;
  /// Reads answered from a pending write's buffer (no physical I/O).
  uint64_t forwarded_reads = 0;
  /// Writes made obsolete by a later write to the same block.
  uint64_t superseded_writes = 0;
  uint64_t drains = 0;
  /// Physical issue attempts re-driven after a kIoError (see
  /// set_retry_policy), and the calls that burned the whole budget.
  uint64_t retries = 0;
  uint64_t retry_exhausted = 0;
  /// Pending requests per drain (distribution over drains; sharded
  /// schedulers report the deepest shard).
  double queue_depth_p99 = 0.0;
  double queue_depth_max = 0.0;
};

/// Common surface of the single-device IoScheduler and the sharded
/// fan-out scheduler (sharded_io_scheduler.h), so the oblivious store
/// can hold either behind one seam. stats() is by value: a sharded
/// scheduler materialises the aggregate over its shards on each call.
class IoSchedulerBase : public AsyncBlockDevice {
 public:
  /// See IoScheduler::set_preserve_pattern.
  virtual void set_preserve_pattern(bool on) = 0;
  virtual bool preserve_pattern() const = 0;

  /// Installs a retry budget for physical issues: a vectored call that
  /// fails with kIoError is re-driven whole, up to
  /// policy.max_attempts total attempts (block writes/reads are
  /// idempotent, so a torn batch is simply completed). Retries count in
  /// stats().retries and emit an "io.retry" trace instant; exhausting
  /// the budget surfaces the error to every pending future of the drain
  /// (all-or-nothing, as before). Sharded schedulers fan the policy out
  /// per shard.
  virtual void set_retry_policy(const RetryPolicy& policy) = 0;
  virtual bool idle() const = 0;
  virtual IoSchedulerStats stats() const = 0;
  virtual void ResetStats() = 0;

  /// Attaches a trace log: every Drain() emits an "io.drain" span on
  /// `track` (sharded schedulers assign one track per shard). Null
  /// detaches.
  virtual void set_trace(obs::TraceLog* log, uint32_t track) = 0;

  /// Registers this scheduler's instruments under `prefix`
  /// (e.g. "io" -> "io.physical_reads"). Null registry unregisters.
  virtual void RegisterMetrics(obs::Registry* registry,
                               const std::string& prefix) = 0;

  /// Synchronous convenience: Submit + Drain, returning the batch status.
  Status Run(IoBatch batch);
};

/// Deterministic request scheduler over any BlockDevice. Batches queue
/// via Submit(); Drain() merges everything pending into one conflict-free
/// plan and issues it:
///
///  * duplicate reads of a block collapse into one physical read whose
///    result fans out to every destination buffer;
///  * a read that follows a write of the same block is served from the
///    pending write's data (read-after-write forwarding, no I/O);
///  * repeated writes to a block keep only the last image (earlier ones
///    were never observable — any read between them was forwarded);
///  * physical reads are issued before physical writes, each group in
///    ascending block order. On a rotational backing device
///    (SimBlockDevice) the elevator ordering converts scattered batches
///    into near-sequential sweeps, which is directly visible in
///    virtual-disk-ms.
///
/// The issue order is the attacker-visible sequence when a
/// TraceBlockDevice sits *below* the scheduler; callers on the oblivious
/// path must therefore only batch requests whose mutual order is already
/// covered by the indistinguishability argument (e.g. the per-level
/// probes of one oblivious read).
class IoScheduler : public IoSchedulerBase {
 public:
  /// Does not take ownership of `backing`.
  explicit IoScheduler(BlockDevice* backing) : backing_(backing) {}

  IoFuture Submit(IoBatch batch) override;
  Status Drain() override;

  /// Pattern-preserving mode: Drain() issues every submitted request
  /// verbatim — submission order and duplicates included — instead of
  /// coalescing / forwarding / elevator-sorting. The oblivious level
  /// probes need this: their *count* is part of the attacker-visible
  /// pattern, so a coalesced duplicate (two decoys landing on one slot)
  /// would be an observably missing read. Contiguous request runs still
  /// go down as one vectored ReadBlocks/WriteBlocks, so caching
  /// decorators below continue to see whole batches.
  void set_preserve_pattern(bool on) override { preserve_pattern_ = on; }
  bool preserve_pattern() const override { return preserve_pattern_; }

  void set_retry_policy(const RetryPolicy& policy) override {
    retry_ = policy;
  }

  bool idle() const override { return queue_.empty(); }
  IoSchedulerStats stats() const override;
  void ResetStats() override;
  void set_trace(obs::TraceLog* log, uint32_t track) override {
    trace_ = log;
    trace_track_ = track;
  }
  void RegisterMetrics(obs::Registry* registry,
                       const std::string& prefix) override;
  BlockDevice* backing() { return backing_; }

 private:
  struct Pending {
    IoBatch batch;
    std::shared_ptr<IoFuture::State> state;
  };

  /// Atomic counter cells: bumped on whichever thread drains (a shard
  /// thread, in the sharded scheduler), summed lock-free by stats().
  struct Cells {
    obs::CounterCell submitted_reads;
    obs::CounterCell submitted_writes;
    obs::CounterCell physical_reads;
    obs::CounterCell physical_writes;
    obs::CounterCell coalesced_reads;
    obs::CounterCell forwarded_reads;
    obs::CounterCell superseded_writes;
    obs::CounterCell drains;
    obs::CounterCell retries;
    obs::CounterCell retry_exhausted;
    obs::HistogramCell queue_depth;
  };

  /// Issues one batch verbatim (pattern-preserving drain).
  Status IssueVerbatim(const IoBatch& batch);
  /// The single funnel to the backing device: one vectored call, re-
  /// driven under the retry budget. Exactly one of out/data is non-null.
  Status IssueBacking(std::span<const uint64_t> ids, uint8_t* out,
                      const uint8_t* data);

  BlockDevice* backing_;
  std::vector<Pending> queue_;
  std::optional<RetryPolicy> retry_;
  Cells cells_;
  obs::Registration registration_;
  obs::TraceLog* trace_ = nullptr;
  uint32_t trace_track_ = 0;
  bool preserve_pattern_ = false;
};

}  // namespace steghide::storage

#endif  // STEGHIDE_STORAGE_ASYNC_IO_SCHEDULER_H_
