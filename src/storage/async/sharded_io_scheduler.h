#ifndef STEGHIDE_STORAGE_ASYNC_SHARDED_IO_SCHEDULER_H_
#define STEGHIDE_STORAGE_ASYNC_SHARDED_IO_SCHEDULER_H_

#include <memory>
#include <vector>

#include "storage/async/io_scheduler.h"
#include "storage/volume_set.h"

namespace steghide::storage {

/// Scheduler fan-out over a ShardedBlockDevice: one inner IoScheduler per
/// shard, each backed directly by that shard's device so its elevator /
/// verbatim issue plan runs against the shard's own spindle.
///
/// Submit() splits every batch by shard (global ids remapped to shard-
/// local ones) and forwards the per-shard sub-batches in submission
/// order; Drain() drains all shard queues *in parallel* on the device's
/// shard threads and joins before completing the submitted futures, so a
/// scan pass's group completion still happens-after every physical I/O.
///
/// Correctness carries over from the single-device scheduler because the
/// stripe map sends every access of one block to one shard: read-after-
/// write forwarding, superseded-write elimination, and per-shard issue
/// order (pattern preservation) are all per-block properties. What an
/// attacker on shard k observes is exactly the single-volume schedule
/// restricted to blocks congruent to k — pinned by the trace-equivalence
/// suite.
///
/// stats() returns the sum over shards, except `drains`, which counts
/// this scheduler's own Drain() calls (one parallel drain touches every
/// shard); per-shard counters stay available via shard_stats().
class ShardedIoScheduler : public IoSchedulerBase {
 public:
  /// Does not take ownership of `device`.
  explicit ShardedIoScheduler(ShardedBlockDevice* device);

  IoFuture Submit(IoBatch batch) override;
  Status Drain() override;

  void set_preserve_pattern(bool on) override;
  bool preserve_pattern() const override;
  void set_retry_policy(const RetryPolicy& policy) override;
  /// Overrides the retry budget of one shard (a flaky spindle can get a
  /// deeper budget than its healthy peers). Apply after set_retry_policy:
  /// the global setter overwrites every shard.
  void set_shard_retry_policy(size_t k, const RetryPolicy& policy);
  bool idle() const override;
  IoSchedulerStats stats() const override;
  void ResetStats() override;

  /// Gives every shard its own trace track ("<base track name>/shard<k>")
  /// so drains render as parallel lanes in the exported timeline.
  void set_trace(obs::TraceLog* log, uint32_t track) override;
  /// Registers the aggregate under `prefix` and each shard's counters
  /// under "<prefix>.shard<k>".
  void RegisterMetrics(obs::Registry* registry,
                       const std::string& prefix) override;

  size_t shard_count() const { return inner_.size(); }
  IoSchedulerStats shard_stats(size_t k) const { return inner_[k]->stats(); }
  ShardedBlockDevice* device() { return device_; }

 private:
  ShardedBlockDevice* device_;
  std::vector<std::unique_ptr<IoScheduler>> inner_;
  /// Futures of batches submitted since the last drain; completed with
  /// the drain's overall status (all-or-nothing, like IoScheduler).
  std::vector<std::shared_ptr<IoFuture::State>> pending_;
  /// Atomic: bumped on the submitting thread, read by stats() from bench
  /// threads while shard threads are mid-drain.
  obs::CounterCell drains_;
  obs::Registration registration_;
  obs::TraceLog* trace_ = nullptr;
  uint32_t trace_track_ = 0;
};

}  // namespace steghide::storage

#endif  // STEGHIDE_STORAGE_ASYNC_SHARDED_IO_SCHEDULER_H_
