#include "storage/disk_model.h"

#include <algorithm>
#include <cmath>

namespace steghide::storage {

DiskModel::DiskModel(const DiskModelParams& params, uint64_t num_blocks,
                     size_t block_size)
    : params_(params), num_blocks_(num_blocks) {
  transfer_ms_per_block_ = static_cast<double>(block_size) /
                           (params_.transfer_mb_per_s * 1e6) * 1e3;
  avg_rotational_ms_ = 0.5 * 60.0 * 1e3 / params_.rpm;
  // Calibrate k so a seek across a third of the disk costs avg_seek_ms.
  const double third = std::max(1.0, static_cast<double>(num_blocks_) / 3.0);
  seek_coeff_ = (params_.avg_seek_ms - params_.track_to_track_ms) /
                std::sqrt(third);
}

double DiskModel::SeekTime(uint64_t distance) const {
  if (distance == 0) return 0.0;
  const double t = params_.track_to_track_ms +
                   seek_coeff_ * std::sqrt(static_cast<double>(distance));
  return std::min(t, params_.full_stroke_ms);
}

double DiskModel::PeekAccessCost(uint64_t block_id) const {
  if (has_position_ && block_id == head_block_) {
    // Streaming continuation: no seek or rotational delay, but each
    // request still pays command processing (block-at-a-time I/O, as the
    // evaluated file systems issue it).
    return params_.controller_overhead_ms + transfer_ms_per_block_;
  }
  const uint64_t distance =
      has_position_ ? (block_id > head_block_ ? block_id - head_block_
                                              : head_block_ - block_id)
                    : num_blocks_ / 3;
  double positioning = SeekTime(distance) + avg_rotational_ms_;
  if (has_position_ && block_id > head_block_) {
    // Short forward hop: the target sector is on (or next to) the
    // current track and reaches the head after the intervening sectors
    // pass under it, so the cost is angular — the media time of the
    // skipped blocks — not a seek plus half a rotation. This is what
    // makes an ascending elevator sweep over a region (the oblivious
    // level passes, a chunked merge) cheaper than the same probes in
    // random order. Never worse than the generic positioning model; the
    // crossover (~half a track) falls out of the existing calibration
    // parameters rather than a new knob.
    positioning = std::min(
        positioning, transfer_ms_per_block_ * static_cast<double>(distance));
  }
  return params_.controller_overhead_ms + positioning +
         transfer_ms_per_block_;
}

double DiskModel::Access(uint64_t block_id) {
  const double cost = PeekAccessCost(block_id);
  if (has_position_ && block_id == head_block_) {
    ++sequential_accesses_;
  } else {
    ++random_accesses_;
  }
  has_position_ = true;
  head_block_ = block_id + 1;
  clock_ms_.fetch_add(cost, std::memory_order_relaxed);
  return cost;
}

}  // namespace steghide::storage
