#include "storage/trace_device.h"

// TraceBlockDevice is header-only; this file exists so the build surface
// of the storage module stays uniform (one .cc per component).
