#ifndef STEGHIDE_STORAGE_MEM_BLOCK_DEVICE_H_
#define STEGHIDE_STORAGE_MEM_BLOCK_DEVICE_H_

#include <vector>

#include "storage/block_device.h"
#include "storage/thread_check.h"

namespace steghide::storage {

/// RAM-backed block device. Content is zero-initialised; the file-system
/// formatting step overwrites every block with random ciphertext, as the
/// paper requires (abandoned blocks are "initially filled with random
/// data").
///
/// Follows the single-issuer threading contract of block_device.h; debug
/// builds abort on overlapping calls from different threads.
class MemBlockDevice : public BlockDevice {
 public:
  MemBlockDevice(uint64_t num_blocks, size_t block_size = kDefaultBlockSize);

  using BlockDevice::ReadBlock;
  using BlockDevice::WriteBlock;
  using BlockDevice::ReadBlocks;

  Status ReadBlock(uint64_t block_id, uint8_t* out) override;
  Status WriteBlock(uint64_t block_id, const uint8_t* data) override;
  /// Vectored overrides guard the whole call (see file_block_device.h).
  Status ReadBlocks(std::span<const uint64_t> ids, uint8_t* out) override;
  Status WriteBlocks(std::span<const uint64_t> ids,
                     const uint8_t* data) override;
  uint64_t num_blocks() const override { return num_blocks_; }
  size_t block_size() const override { return block_size_; }

  /// Direct read-only view of a block, for snapshotting without copies.
  const uint8_t* BlockData(uint64_t block_id) const;

 private:
  uint64_t num_blocks_;
  size_t block_size_;
  std::vector<uint8_t> data_;
  SerialCallChecker serial_check_;
};

}  // namespace steghide::storage

#endif  // STEGHIDE_STORAGE_MEM_BLOCK_DEVICE_H_
