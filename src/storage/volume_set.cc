#include "storage/volume_set.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <string>
#include <utility>

namespace steghide::storage {

ShardPool::ShardPool(size_t shards) : slots_(shards) {
  threads_.reserve(shards);
  for (size_t k = 0; k < shards; ++k) {
    threads_.emplace_back([this, k] { WorkerLoop(k); });
  }
}

ShardPool::~ShardPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ShardPool::WorkerLoop(size_t shard) {
  for (;;) {
    std::function<Status()> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] { return stop_ || slots_[shard].has_job; });
      if (!slots_[shard].has_job) return;  // stop_ and nothing queued
      job = std::move(slots_[shard].job);
      slots_[shard].has_job = false;
    }
    Status result = job();
    {
      std::lock_guard<std::mutex> lock(mu_);
      slots_[shard].result = std::move(result);
      if (--outstanding_ == 0) done_cv_.notify_all();
    }
  }
}

Status ShardPool::Run(std::vector<std::function<Status()>> jobs) {
  assert(jobs.size() == slots_.size());
  size_t queued = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t k = 0; k < jobs.size(); ++k) {
      if (!jobs[k]) continue;
      slots_[k].job = std::move(jobs[k]);
      slots_[k].has_job = true;
      slots_[k].result = Status::OK();
      ++queued;
    }
    outstanding_ = queued;
  }
  if (queued == 0) return Status::OK();
  work_cv_.notify_all();
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] { return outstanding_ == 0; });
  for (Slot& slot : slots_) {
    if (!slot.result.ok()) return std::move(slot.result);
  }
  return Status::OK();
}

ShardedBlockDevice::ShardedBlockDevice(std::vector<BlockDevice*> shards)
    : shards_(std::move(shards)),
      block_size_(shards_.empty() ? kDefaultBlockSize
                                  : shards_.front()->block_size()),
      pool_(shards_.size()),
      split_local_(shards_.size()),
      split_pos_(shards_.size()),
      staging_(shards_.size()) {
  assert(!shards_.empty());
  uint64_t min_blocks = shards_.front()->num_blocks();
  for (BlockDevice* shard : shards_) {
    assert(shard->block_size() == block_size_);
    if (shard->num_blocks() < min_blocks) min_blocks = shard->num_blocks();
  }
  num_blocks_ = min_blocks * shards_.size();
}

Status ShardedBlockDevice::RunOnShards(
    std::vector<std::function<Status()>> jobs) {
  const size_t k_shards = shards_.size();
  std::vector<double> before(k_shards, 0.0);
  const bool timed = static_cast<bool>(shard_clock_);
  if (timed) {
    for (size_t k = 0; k < k_shards; ++k) before[k] = shard_clock_(k);
  }
  Status status = pool_.Run(std::move(jobs));
  if (timed) {
    double max_delta = 0.0;
    for (size_t k = 0; k < k_shards; ++k) {
      const double delta = shard_clock_(k) - before[k];
      if (delta > max_delta) max_delta = delta;
    }
    // Only the issuer mutates the clock; concurrent readers (latency
    // stamps on other threads) see a torn-free atomic value.
    clock_ms_.store(clock_ms_.load(std::memory_order_relaxed) + max_delta,
                    std::memory_order_relaxed);
  }
  return status;
}

Status ShardedBlockDevice::ReadBlock(uint64_t block_id, uint8_t* out) {
  STEGHIDE_RETURN_IF_ERROR(CheckRange(block_id));
  const size_t shard = static_cast<size_t>(ShardOf(block_id));
  const uint64_t local = LocalBlock(block_id);
  std::vector<std::function<Status()>> jobs(shards_.size());
  jobs[shard] = [this, shard, local, out] {
    return shards_[shard]->ReadBlock(local, out);
  };
  return RunOnShards(std::move(jobs));
}

Status ShardedBlockDevice::WriteBlock(uint64_t block_id,
                                      const uint8_t* data) {
  STEGHIDE_RETURN_IF_ERROR(CheckRange(block_id));
  const size_t shard = static_cast<size_t>(ShardOf(block_id));
  const uint64_t local = LocalBlock(block_id);
  std::vector<std::function<Status()>> jobs(shards_.size());
  jobs[shard] = [this, shard, local, data] {
    return shards_[shard]->WriteBlock(local, data);
  };
  return RunOnShards(std::move(jobs));
}

Status ShardedBlockDevice::FanOut(std::span<const uint64_t> ids, uint8_t* out,
                                  const uint8_t* data) {
  const size_t k_shards = shards_.size();
  const size_t bs = block_size_;
  for (size_t k = 0; k < k_shards; ++k) {
    split_local_[k].clear();
    split_pos_[k].clear();
  }
  for (size_t i = 0; i < ids.size(); ++i) {
    STEGHIDE_RETURN_IF_ERROR(CheckRange(ids[i]));
    const size_t shard = static_cast<size_t>(ShardOf(ids[i]));
    split_local_[shard].push_back(LocalBlock(ids[i]));
    split_pos_[shard].push_back(i);
  }
  std::vector<std::function<Status()>> jobs(k_shards);
  for (size_t k = 0; k < k_shards; ++k) {
    if (split_local_[k].empty()) continue;
    jobs[k] = [this, k, out, data, bs] {
      // Stage through a contiguous per-shard buffer so the shard sees one
      // vectored call (whole-batch visibility for decorators below), then
      // scatter/gather against the caller's strided layout. The staging
      // buffer and the addressed slices of the caller's buffer are owned
      // exclusively by this shard between dispatch and join.
      const std::vector<uint64_t>& local = split_local_[k];
      const std::vector<size_t>& pos = split_pos_[k];
      staging_[k].resize(local.size() * bs);
      if (out != nullptr) {
        STEGHIDE_RETURN_IF_ERROR(
            shards_[k]->ReadBlocks(local, staging_[k].data()));
        for (size_t i = 0; i < pos.size(); ++i) {
          std::memcpy(out + pos[i] * bs, staging_[k].data() + i * bs, bs);
        }
      } else {
        for (size_t i = 0; i < pos.size(); ++i) {
          std::memcpy(staging_[k].data() + i * bs, data + pos[i] * bs, bs);
        }
        STEGHIDE_RETURN_IF_ERROR(
            shards_[k]->WriteBlocks(local, staging_[k].data()));
      }
      return Status::OK();
    };
  }
  return RunOnShards(std::move(jobs));
}

Status ShardedBlockDevice::ReadBlocks(std::span<const uint64_t> ids,
                                      uint8_t* out) {
  if (ids.empty()) return Status::OK();
  return FanOut(ids, out, nullptr);
}

Status ShardedBlockDevice::WriteBlocks(std::span<const uint64_t> ids,
                                       const uint8_t* data) {
  if (ids.empty()) return Status::OK();
  return FanOut(ids, nullptr, data);
}

Status ShardedBlockDevice::Flush() {
  std::vector<std::function<Status()>> jobs(shards_.size());
  for (size_t k = 0; k < shards_.size(); ++k) {
    jobs[k] = [this, k] { return shards_[k]->Flush(); };
  }
  return RunOnShards(std::move(jobs));
}

VolumeSet::VolumeSet(const Options& options) {
  shards_ = options.shards == 0 ? 1 : options.shards;
  replicas_ = options.replicas == 0 ? 1 : options.replicas;
  const uint64_t per_shard =
      (options.total_blocks + shards_ - 1) / shards_;
  if (options.remote) {
    tfaults_.resize(shards_ * replicas_);
    endpoints_.resize(shards_ * replicas_);
    remotes_.resize(shards_ * replicas_);
  }
  std::vector<BlockDevice*> tops;
  tops.reserve(shards_);
  for (size_t k = 0; k < shards_; ++k) {
    // Per-replica stack, bottom up: Mem -> [Fault] -> [Trace] -> Sim.
    // The fault layer sits below the trace so the per-replica attacker
    // view records exactly the ops that reached the platter; the sim
    // sits on top so failed attempts still cost virtual time upstream
    // retries can measure. A remote replica keeps that whole stack —
    // it becomes the server side behind a loopback endpoint, with the
    // endpoint's thread as its sole issuer — and contributes a
    // RemoteBlockDevice client as its top instead.
    std::vector<BlockDevice*> replica_tops;
    for (size_t r = 0; r < replicas_; ++r) {
      mems_.push_back(
          std::make_unique<MemBlockDevice>(per_shard, options.block_size));
      BlockDevice* top = mems_.back().get();
      if (options.fault_plan) {
        faults_.push_back(std::make_unique<FaultInjectionBlockDevice>(
            top, options.fault_plan(k, r)));
        top = faults_.back().get();
      }
      if (options.traced) {
        traces_.push_back(std::make_unique<TraceBlockDevice>(top));
        top = traces_.back().get();
      }
      sims_.push_back(std::make_unique<SimBlockDevice>(top, options.disk));
      if (options.fault_plan) {
        // Latency-spike charges land on this replica's spindle clock.
        DiskModel* model = &sims_.back()->model();
        faults_.back()->set_latency_fn(
            [model](double ms) { model->AdvanceClock(ms); });
      }
      top = sims_.back().get();
      if (options.remote && options.remote(k, r)) {
        top = MakeRemote(k, r, top, options);
      }
      replica_tops.push_back(top);
    }
    if (replicas_ > 1) {
      reps_.push_back(std::make_unique<ReplicatedBlockDevice>(
          std::move(replica_tops), options.replication));
      tops.push_back(reps_.back().get());
    } else {
      tops.push_back(replica_tops.front());
    }
  }
  device_ = std::make_unique<ShardedBlockDevice>(std::move(tops));
  // Shard clock = the busiest replica of the shard: mirrored writes hit
  // independent spindles, so within a shard (as across shards) the join
  // costs the slowest member, not the sum.
  device_->set_shard_clock_fn([this](size_t k) {
    double ms = 0.0;
    for (size_t r = 0; r < replicas_; ++r) {
      ms = std::max(ms, sims_[Slot(k, r)]->clock_ms());
    }
    return ms;
  });
  if (replicas_ > 1) {
    for (size_t k = 0; k < shards_; ++k) {
      ReplicatedBlockDevice* rep = reps_[k].get();
      rep->set_clock_fn([this, k] {
        double ms = 0.0;
        for (size_t r = 0; r < replicas_; ++r) {
          ms = std::max(ms, sims_[Slot(k, r)]->clock_ms());
        }
        return ms;
      });
    }
  }
}

BlockDevice* VolumeSet::MakeRemote(size_t k, size_t r, BlockDevice* backing,
                                   const Options& options) {
  const size_t slot = Slot(k, r);
  DiskModel* model = &sims_[slot]->model();

  endpoints_[slot] = std::make_unique<remote::LoopbackEndpoint>(backing);
  remote::LoopbackEndpoint* endpoint = endpoints_[slot].get();

  FaultPlan plan;
  if (options.transport_fault_plan) plan = options.transport_fault_plan(k, r);
  tfaults_[slot] =
      std::make_unique<remote::TransportFaultController>(std::move(plan));
  remote::TransportFaultController* ctrl = tfaults_[slot].get();
  // kDelayRpc charges land on the replica's spindle clock, like the
  // block-layer latency spikes.
  ctrl->set_latency_fn([model](double ms) { model->AdvanceClock(ms); });
  endpoint->set_transport_wrapper(
      [ctrl](std::unique_ptr<remote::Transport> t) {
        return ctrl->Wrap(std::move(t),
                          remote::TransportFaultController::Side::kServer);
      });

  remote::RemoteDeviceOptions ropts = options.remote_options;
  // Decorrelate the replica clients' reconnect backoff.
  ropts.retry = ropts.retry.WithJitterSeed(0x524d545645ULL + slot);
  Result<std::unique_ptr<remote::RemoteBlockDevice>> client =
      remote::RemoteBlockDevice::Create(
          [endpoint, ctrl]() -> Result<std::unique_ptr<remote::Transport>> {
            Result<std::unique_ptr<remote::Transport>> conn =
                endpoint->Connect();
            if (!conn.ok()) return conn.status();
            return ctrl->Wrap(std::move(conn).value(),
                              remote::TransportFaultController::Side::kClient);
          },
          ropts);
  // The loopback endpoint is up and fault-free at construction, so the
  // handshake cannot fail short of resource exhaustion.
  assert(client.ok());
  remotes_[slot] = std::move(client).value();
  remotes_[slot]->set_backoff_fn(
      [model](double ms) { model->AdvanceClock(ms); });
  return remotes_[slot].get();
}

Status VolumeSet::ReviveAndRepair(size_t k, size_t r) {
  if (reps_.empty()) {
    return Status::FailedPrecondition("volume set is not replicated");
  }
  if (fault(k, r) != nullptr) fault(k, r)->Revive();
  if (remote_endpoint(k, r) != nullptr && remote_endpoint(k, r)->crashed()) {
    remote_endpoint(k, r)->Restart();
  }
  if (transport_fault(k, r) != nullptr &&
      transport_fault(k, r)->partitioned()) {
    transport_fault(k, r)->Heal();
  }
  // The replica may still be marked healthy if it died without any
  // traffic catching it; force the quarantine so repair has a defined
  // starting state. (Quorum mode may have demoted it to lagging
  // already; StartRepair accepts that directly.)
  if (reps_[k]->replica_state(r) == ReplicaState::kHealthy) {
    reps_[k]->Quarantine(r);
  }
  return reps_[k]->StartRepair(r);
}

bool VolumeSet::repair_pending() const {
  for (const auto& rep : reps_) {
    if (rep->repair_pending()) return true;
  }
  return false;
}

Result<bool> VolumeSet::PumpRepair(uint64_t budget_blocks) {
  if (reps_.empty()) return false;
  std::vector<std::function<Status()>> jobs(shards_);
  bool any = false;
  for (size_t k = 0; k < shards_; ++k) {
    ReplicatedBlockDevice* rep = reps_[k].get();
    if (!rep->repair_pending()) continue;
    any = true;
    jobs[k] = [rep, budget_blocks] {
      bool more = false;
      return rep->RepairStep(budget_blocks, &more);
    };
  }
  if (!any) return false;
  STEGHIDE_RETURN_IF_ERROR(device_->RunOnShards(std::move(jobs)));
  return repair_pending();
}

void VolumeSet::RegisterMetrics(obs::Registry* registry,
                                const std::string& prefix) {
  for (size_t k = 0; k < shards_; ++k) {
    const std::string shard_prefix = prefix + ".shard" + std::to_string(k);
    for (size_t r = 0; r < replicas_; ++r) {
      const std::string rep_prefix =
          replicas_ > 1 ? shard_prefix + ".r" + std::to_string(r)
                        : shard_prefix;
      sims_[Slot(k, r)]->RegisterMetrics(registry, rep_prefix);
      if (fault(k, r) != nullptr) {
        fault(k, r)->RegisterMetrics(registry, rep_prefix + ".fault");
      }
      if (is_remote(k, r)) {
        remote_device(k, r)->RegisterMetrics(registry,
                                             rep_prefix + ".remote");
        transport_fault(k, r)->RegisterMetrics(registry,
                                               rep_prefix + ".transport");
        remote_endpoint(k, r)->server().RegisterMetrics(
            registry, rep_prefix + ".server");
      }
    }
    if (!reps_.empty()) {
      reps_[k]->RegisterMetrics(registry, shard_prefix);
    }
  }
}

}  // namespace steghide::storage
