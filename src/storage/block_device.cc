#include "storage/block_device.h"

namespace steghide::storage {

Status BlockDevice::ReadBlock(uint64_t block_id, Bytes& out) {
  out.resize(block_size());
  return ReadBlock(block_id, out.data());
}

Status BlockDevice::WriteBlock(uint64_t block_id, const Bytes& data) {
  if (data.size() != block_size()) {
    return Status::InvalidArgument("write buffer size != block size");
  }
  return WriteBlock(block_id, data.data());
}

Status BlockDevice::ReadBlocks(std::span<const uint64_t> ids, uint8_t* out) {
  const size_t bs = block_size();
  for (size_t i = 0; i < ids.size(); ++i) {
    STEGHIDE_RETURN_IF_ERROR(ReadBlock(ids[i], out + i * bs));
  }
  return Status::OK();
}

Status BlockDevice::WriteBlocks(std::span<const uint64_t> ids,
                                const uint8_t* data) {
  const size_t bs = block_size();
  for (size_t i = 0; i < ids.size(); ++i) {
    STEGHIDE_RETURN_IF_ERROR(WriteBlock(ids[i], data + i * bs));
  }
  return Status::OK();
}

Status BlockDevice::ReadBlocks(std::span<const uint64_t> ids, Bytes& out) {
  out.resize(ids.size() * block_size());
  return ReadBlocks(ids, out.data());
}

Status BlockDevice::CheckRange(uint64_t block_id) const {
  if (block_id >= num_blocks()) {
    return Status::OutOfRange("block id " + std::to_string(block_id) +
                              " >= device size " +
                              std::to_string(num_blocks()));
  }
  return Status::OK();
}

}  // namespace steghide::storage
