#ifndef STEGHIDE_STORAGE_FILE_BLOCK_DEVICE_H_
#define STEGHIDE_STORAGE_FILE_BLOCK_DEVICE_H_

#include <string>

#include "storage/block_device.h"
#include "storage/thread_check.h"
#include "util/result.h"

namespace steghide::storage {

/// Block device backed by a host file, so a formatted steganographic
/// volume can persist across runs (the paper's implementation stores the
/// volume on a raw disk partition; a file is the portable equivalent).
///
/// Follows the single-issuer threading contract of block_device.h; debug
/// builds abort on overlapping calls from different threads. Concurrent
/// users go through a synchronized decorator (BlockCache) or the
/// dispatcher's single I/O thread.
class FileBlockDevice : public BlockDevice {
 public:
  /// Creates (or truncates) `path` sized for `num_blocks` blocks.
  static Result<FileBlockDevice> Create(const std::string& path,
                                        uint64_t num_blocks,
                                        size_t block_size = kDefaultBlockSize);

  /// Opens an existing volume file. The file size must be a multiple of
  /// `block_size`.
  static Result<FileBlockDevice> Open(const std::string& path,
                                      size_t block_size = kDefaultBlockSize);

  FileBlockDevice(FileBlockDevice&& other) noexcept;
  FileBlockDevice& operator=(FileBlockDevice&& other) noexcept;
  FileBlockDevice(const FileBlockDevice&) = delete;
  FileBlockDevice& operator=(const FileBlockDevice&) = delete;
  ~FileBlockDevice() override;

  using BlockDevice::ReadBlock;
  using BlockDevice::WriteBlock;
  using BlockDevice::ReadBlocks;

  Status ReadBlock(uint64_t block_id, uint8_t* out) override;
  Status WriteBlock(uint64_t block_id, const uint8_t* data) override;
  /// Vectored overrides guard the *whole* call, so two interleaved
  /// batches from different threads trip the checker even when their
  /// per-block steps happen not to overlap.
  Status ReadBlocks(std::span<const uint64_t> ids, uint8_t* out) override;
  Status WriteBlocks(std::span<const uint64_t> ids,
                     const uint8_t* data) override;
  uint64_t num_blocks() const override { return num_blocks_; }
  size_t block_size() const override { return block_size_; }
  Status Flush() override;

 private:
  FileBlockDevice(int fd, uint64_t num_blocks, size_t block_size)
      : fd_(fd), num_blocks_(num_blocks), block_size_(block_size) {}

  int fd_ = -1;
  uint64_t num_blocks_ = 0;
  size_t block_size_ = kDefaultBlockSize;
  /// Debug-only issuing-thread assertion; transient state, deliberately
  /// reset (not transferred) on move.
  SerialCallChecker serial_check_;
};

}  // namespace steghide::storage

#endif  // STEGHIDE_STORAGE_FILE_BLOCK_DEVICE_H_
