#ifndef STEGHIDE_STORAGE_FAULT_DEVICE_H_
#define STEGHIDE_STORAGE_FAULT_DEVICE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <limits>
#include <vector>

#include "obs/metrics.h"
#include "storage/block_device.h"

namespace steghide::storage {

/// One scripted fault. A spec is *data-independent by construction*: it
/// triggers on the per-block operation index, the block address, and the
/// plan seed — never on block contents — so a faulted run's error/latency
/// pattern is identical across request streams that issue the same
/// (op, block) sequence. That is what lets the trace-equivalence suites
/// pin obliviousness with fault injection enabled.
struct FaultSpec {
  enum class Kind : uint8_t {
    /// The matching op fails with kIoError; a retry is a *new* op index,
    /// so (unless the trigger matches again) it succeeds.
    kTransientError,
    /// Once triggered, every later op touching [first_block, last_block]
    /// with a matching direction fails forever (a bad sector / region).
    kStickyError,
    /// The matching read succeeds but returns seeded byte flips
    /// (silent bit-rot: Status stays OK).
    kCorrupt,
    /// The matching write persists only a seeded-length prefix of the
    /// block's bytes, then fails — a torn sector. Firing mid-way through
    /// a vectored write additionally leaves the batch itself partially
    /// persisted (earlier blocks durable, later ones not).
    kTorn,
    /// The matching op succeeds after charging `latency_ms` through the
    /// latency hook (e.g. a sick spindle's retry-and-recover stalls).
    kLatency,
    /// The whole device dies at the trigger: every later op fails until
    /// Revive() is called.
    kDeath,
    /// Transport-layer kinds, interpreted by TransportFaultController
    /// (storage/remote/transport.h) against the RPC frame stream rather
    /// than the block-op stream. At the block layer they are no-ops, so
    /// one FaultPlan can script both layers of a replica.
    ///
    /// The link drops every frame from the trigger on (both directions
    /// fail fast with kDeadlineExceeded) until Heal() is called — a
    /// network partition.
    kPartition,
    /// The matching frame is delivered after charging `latency_ms`
    /// through the latency hook — a slow or congested link.
    kDelayRpc,
    /// The connection is closed under the matching frame; in-flight and
    /// later ops on it fail with kIoError until the client reconnects.
    kDropConnection,
  };
  enum class OpFilter : uint8_t { kAny, kRead, kWrite };

  Kind kind = Kind::kTransientError;
  OpFilter ops = OpFilter::kAny;
  /// Inclusive local-block range the spec applies to.
  uint64_t first_block = 0;
  uint64_t last_block = std::numeric_limits<uint64_t>::max();
  /// Op-count trigger: fires on op indices i >= start_after with
  /// (i - start_after) % every_nth == 0 (every_nth 0 behaves like 1).
  uint64_t every_nth = 1;
  uint64_t start_after = 0;
  /// Total firing cap (0 = unlimited). A transient spec with
  /// max_fires = 1 is "this op fails exactly once".
  uint64_t max_fires = 0;
  /// Extra virtual milliseconds for kLatency.
  double latency_ms = 0.0;
};

/// A seeded, scriptable fault schedule.
struct FaultPlan {
  std::vector<FaultSpec> faults;
  /// Drives the corruption/torn byte patterns (deterministic per
  /// (seed, op index, block)).
  uint64_t seed = 0;
};

/// Counter snapshot of everything the device injected.
struct FaultStats {
  uint64_t ops = 0;
  uint64_t injected_errors = 0;
  uint64_t corrupted_blocks = 0;
  uint64_t torn_writes = 0;
  uint64_t latency_events = 0;
};

/// Decorator that executes a FaultPlan against the op stream flowing into
/// `backing`. Composable anywhere in the decorator stack (typically
/// directly above the leaf, below the trace/sim layers, so an injected
/// failure never reaches the platter or the attacker trace).
///
/// Threading: follows the single-issuer contract of block_device.h for
/// all I/O entry points; only Kill()/Revive()/dead() and the stats
/// snapshot are thread-safe (a bench thread can pull the plug while the
/// shard thread is mid-run).
class FaultInjectionBlockDevice : public BlockDevice {
 public:
  /// Does not take ownership of `backing`.
  explicit FaultInjectionBlockDevice(BlockDevice* backing,
                                     FaultPlan plan = {});

  using BlockDevice::ReadBlock;
  using BlockDevice::WriteBlock;

  Status ReadBlock(uint64_t block_id, uint8_t* out) override;
  Status WriteBlock(uint64_t block_id, const uint8_t* data) override;
  Status ReadBlocks(std::span<const uint64_t> ids, uint8_t* out) override;
  Status WriteBlocks(std::span<const uint64_t> ids,
                     const uint8_t* data) override;
  uint64_t num_blocks() const override { return backing_->num_blocks(); }
  size_t block_size() const override { return backing_->block_size(); }
  Status Flush() override;

  /// Whole-device death, independent of the plan (a bench kills one
  /// replica mid-run). Thread-safe.
  void Kill() { dead_.store(true, std::memory_order_relaxed); }
  /// Clears manual *and* plan-triggered death. Thread-safe.
  void Revive() { dead_.store(false, std::memory_order_relaxed); }
  bool dead() const { return dead_.load(std::memory_order_relaxed); }

  /// Sink for kLatency charges (typically DiskModel::AdvanceClock of the
  /// sim layer above). Unset = latency specs only count.
  void set_latency_fn(std::function<void(double)> fn) {
    latency_fn_ = std::move(fn);
  }

  FaultStats stats() const {
    FaultStats s;
    s.ops = cells_.ops.value();
    s.injected_errors = cells_.injected_errors.value();
    s.corrupted_blocks = cells_.corrupted_blocks.value();
    s.torn_writes = cells_.torn_writes.value();
    s.latency_events = cells_.latency_events.value();
    return s;
  }
  void RegisterMetrics(obs::Registry* registry, const std::string& prefix);

  BlockDevice* backing() { return backing_; }

 private:
  struct SpecState {
    bool latched = false;  // sticky region tripped
    uint64_t fires = 0;
  };
  struct Cells {
    obs::CounterCell ops;
    obs::CounterCell injected_errors;
    obs::CounterCell corrupted_blocks;
    obs::CounterCell torn_writes;
    obs::CounterCell latency_events;
  };

  /// One physical block op: consumes an op index, evaluates the plan,
  /// forwards to the backing device when allowed. Exactly one of
  /// out/data is non-null.
  Status Op(uint64_t block_id, uint8_t* out, const uint8_t* data);
  /// Deterministic per-(seed, op, block) byte stream for corruption and
  /// torn lengths.
  uint64_t Mix(uint64_t op_index, uint64_t block_id) const;

  BlockDevice* backing_;
  FaultPlan plan_;
  std::vector<SpecState> states_;
  uint64_t op_index_ = 0;
  std::atomic<bool> dead_{false};
  std::function<void(double)> latency_fn_;
  Cells cells_;
  obs::Registration registration_;
  std::vector<uint8_t> scratch_;  // torn-write staging
};

}  // namespace steghide::storage

#endif  // STEGHIDE_STORAGE_FAULT_DEVICE_H_
