#ifndef STEGHIDE_STORAGE_SNAPSHOT_H_
#define STEGHIDE_STORAGE_SNAPSHOT_H_

#include <cstdint>
#include <vector>

#include "storage/block_device.h"
#include "util/result.h"

namespace steghide::storage {

/// A point-in-time fingerprint of every block on a volume — the tool of
/// the paper's *first* attacker class, who "can scan the whole raw storage
/// repeatedly" and compare consecutive snapshots (update analysis,
/// Section 3.1).
///
/// Stores a 64-bit non-cryptographic fingerprint per block (the attacker
/// only needs change detection, not content). Capturing reads the device
/// out-of-band: pass the backing store, not the SimBlockDevice, so that
/// attacker scans do not consume the defender's virtual disk time.
class Snapshot {
 public:
  static Result<Snapshot> Capture(BlockDevice& device);

  uint64_t num_blocks() const { return fingerprints_.size(); }
  uint64_t fingerprint(uint64_t block_id) const {
    return fingerprints_[block_id];
  }

  /// 64-bit mix of a block's content.
  static uint64_t FingerprintBlock(const uint8_t* data, size_t n);

 private:
  explicit Snapshot(std::vector<uint64_t> fingerprints)
      : fingerprints_(std::move(fingerprints)) {}

  std::vector<uint64_t> fingerprints_;
};

}  // namespace steghide::storage

#endif  // STEGHIDE_STORAGE_SNAPSHOT_H_
