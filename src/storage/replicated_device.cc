#include "storage/replicated_device.h"

#include <algorithm>
#include <cassert>

namespace steghide::storage {

ReplicatedBlockDevice::ReplicatedBlockDevice(
    std::vector<BlockDevice*> replicas, ReplicationOptions options)
    : replicas_(std::move(replicas)),
      options_(options),
      block_size_(replicas_.empty() ? kDefaultBlockSize
                                    : replicas_.front()->block_size()),
      states_(replicas_.size()),
      consecutive_read_errors_(replicas_.size(), 0) {
  assert(!replicas_.empty());
  uint64_t min_blocks = replicas_.front()->num_blocks();
  for (BlockDevice* replica : replicas_) {
    assert(replica->block_size() == block_size_);
    if (replica->num_blocks() < min_blocks) min_blocks = replica->num_blocks();
  }
  num_blocks_ = min_blocks;
  cells_.healthy_replicas.Set(static_cast<double>(replicas_.size()));
}

void ReplicatedBlockDevice::SetState(size_t r, ReplicaState state) {
  states_[r].store(static_cast<uint8_t>(state), std::memory_order_relaxed);
  cells_.healthy_replicas.Set(static_cast<double>(healthy_count()));
}

size_t ReplicatedBlockDevice::healthy_count() const {
  size_t n = 0;
  for (size_t r = 0; r < replicas_.size(); ++r) {
    if (replica_state(r) == ReplicaState::kHealthy) ++n;
  }
  return n;
}

void ReplicatedBlockDevice::Quarantine(size_t r) { QuarantineLocked(r); }

void ReplicatedBlockDevice::QuarantineLocked(size_t r) {
  if (replica_state(r) == ReplicaState::kQuarantined) return;
  SetState(r, ReplicaState::kQuarantined);
  cells_.quarantines.Increment();
}

bool ReplicatedBlockDevice::ServingOrder(std::vector<size_t>* order) {
  order->clear();
  for (size_t r = 0; r < replicas_.size(); ++r) {
    if (replica_state(r) == ReplicaState::kHealthy) order->push_back(r);
  }
  if (order->empty()) return false;
  // Data-independent replica choice: rotate the healthy list by a
  // counter of read calls. The first entry serves; the rest are the
  // failover order.
  const size_t shift = static_cast<size_t>(rr_++ % order->size());
  std::rotate(order->begin(), order->begin() + shift, order->end());
  return true;
}

Status ReplicatedBlockDevice::ReadFrom(std::span<const uint64_t> ids,
                                       uint8_t* out) {
  cells_.reads.Add(ids.size());
  std::vector<size_t> order;
  if (!ServingOrder(&order)) {
    return Status::IoError("replicated device: no healthy replicas");
  }
  const double t0 = clock_fn_ ? clock_fn_() : 0.0;
  Status status;
  for (size_t attempt = 0; attempt < order.size(); ++attempt) {
    const size_t r = order[attempt];
    status = replicas_[r]->ReadBlocks(ids, out);
    if (status.ok()) {
      consecutive_read_errors_[r] = 0;
      if (attempt > 0) {
        cells_.failovers.Increment();
        if (clock_fn_) cells_.failover_ms.Record(clock_fn_() - t0);
      }
      return status;
    }
    // Transient hiccups stay in rotation; a replica that keeps failing
    // gets benched so serving stops paying its failover latency.
    if (++consecutive_read_errors_[r] >= options_.quarantine_after) {
      QuarantineLocked(r);
    }
  }
  return status;
}

Status ReplicatedBlockDevice::WriteTo(std::span<const uint64_t> ids,
                                      const uint8_t* data) {
  cells_.writes.Add(ids.size());
  bool healthy_ok = false;
  Status healthy_error;
  for (size_t r = 0; r < replicas_.size(); ++r) {
    const ReplicaState state = replica_state(r);
    if (state == ReplicaState::kQuarantined) continue;
    Status status;
    for (int attempt = 0; attempt < std::max(1, options_.write_attempts);
         ++attempt) {
      status = replicas_[r]->WriteBlocks(ids, data);
      if (status.ok() || status.code() != StatusCode::kIoError) break;
    }
    if (status.ok()) {
      if (state == ReplicaState::kHealthy) healthy_ok = true;
      continue;
    }
    // A replica that missed a write is stale: it must never serve a read
    // again until a repair sweep re-mirrors it (this is also how a
    // repairing replica drops back to quarantined on error).
    QuarantineLocked(r);
    if (state == ReplicaState::kHealthy && healthy_error.ok()) {
      healthy_error = status;
    }
  }
  if (healthy_ok) return Status::OK();
  // No serving replica durably holds the new image; surface the failure
  // (a successful write confined to a mid-repair replica does not count
  // — its content is not servable yet).
  return healthy_error.ok()
             ? Status::IoError("replicated device: no healthy replicas")
             : healthy_error;
}

Status ReplicatedBlockDevice::ReadBlock(uint64_t block_id, uint8_t* out) {
  STEGHIDE_RETURN_IF_ERROR(CheckRange(block_id));
  return ReadFrom(std::span<const uint64_t>(&block_id, 1), out);
}

Status ReplicatedBlockDevice::WriteBlock(uint64_t block_id,
                                         const uint8_t* data) {
  STEGHIDE_RETURN_IF_ERROR(CheckRange(block_id));
  return WriteTo(std::span<const uint64_t>(&block_id, 1), data);
}

Status ReplicatedBlockDevice::ReadBlocks(std::span<const uint64_t> ids,
                                         uint8_t* out) {
  if (ids.empty()) return Status::OK();
  for (uint64_t id : ids) STEGHIDE_RETURN_IF_ERROR(CheckRange(id));
  return ReadFrom(ids, out);
}

Status ReplicatedBlockDevice::WriteBlocks(std::span<const uint64_t> ids,
                                          const uint8_t* data) {
  if (ids.empty()) return Status::OK();
  for (uint64_t id : ids) STEGHIDE_RETURN_IF_ERROR(CheckRange(id));
  return WriteTo(ids, data);
}

Status ReplicatedBlockDevice::Flush() {
  bool healthy_ok = false;
  Status healthy_error;
  for (size_t r = 0; r < replicas_.size(); ++r) {
    const ReplicaState state = replica_state(r);
    if (state == ReplicaState::kQuarantined) continue;
    const Status status = replicas_[r]->Flush();
    if (status.ok()) {
      if (state == ReplicaState::kHealthy) healthy_ok = true;
      continue;
    }
    QuarantineLocked(r);
    if (state == ReplicaState::kHealthy && healthy_error.ok()) {
      healthy_error = status;
    }
  }
  if (healthy_ok) return Status::OK();
  return healthy_error.ok()
             ? Status::IoError("replicated device: no healthy replicas")
             : healthy_error;
}

Status ReplicatedBlockDevice::StartRepair(size_t r) {
  if (r >= replicas_.size()) {
    return Status::InvalidArgument("no such replica");
  }
  if (replica_state(r) != ReplicaState::kQuarantined) {
    return Status::FailedPrecondition("replica is not quarantined");
  }
  SetState(r, ReplicaState::kRepairing);
  // The sweep restarts from block 0 — also when a second replica joins
  // an in-flight repair; re-copying a prefix is correct (write-all keeps
  // it consistent) and keeps the scrub order a fixed public schedule.
  repair_cursor_ = 0;
  consecutive_read_errors_[r] = 0;
  return Status::OK();
}

bool ReplicatedBlockDevice::repair_pending() const {
  for (size_t r = 0; r < replicas_.size(); ++r) {
    if (replica_state(r) == ReplicaState::kRepairing) return true;
  }
  return false;
}

Status ReplicatedBlockDevice::RepairStep(uint64_t budget_blocks, bool* more) {
  if (more != nullptr) *more = false;
  if (!repair_pending()) return Status::OK();
  // Lowest-index healthy source: like the scrub order, a fixed public
  // choice — repair traffic cannot leak which blocks changed while the
  // replica was out.
  size_t source = replicas_.size();
  for (size_t r = 0; r < replicas_.size(); ++r) {
    if (replica_state(r) == ReplicaState::kHealthy) {
      source = r;
      break;
    }
  }
  if (source == replicas_.size()) {
    return Status::FailedPrecondition("repair has no healthy source");
  }
  repair_buf_.resize(block_size_);
  const uint64_t end = std::min(num_blocks_, repair_cursor_ + budget_blocks);
  for (uint64_t b = repair_cursor_; b < end; ++b) {
    STEGHIDE_RETURN_IF_ERROR(replicas_[source]->ReadBlock(b,
                                                          repair_buf_.data()));
    for (size_t r = 0; r < replicas_.size(); ++r) {
      if (replica_state(r) != ReplicaState::kRepairing) continue;
      const Status status = replicas_[r]->WriteBlock(b, repair_buf_.data());
      if (!status.ok()) QuarantineLocked(r);
    }
    cells_.repair_blocks.Increment();
    repair_cursor_ = b + 1;
  }
  if (repair_cursor_ >= num_blocks_) {
    for (size_t r = 0; r < replicas_.size(); ++r) {
      if (replica_state(r) != ReplicaState::kRepairing) continue;
      STEGHIDE_RETURN_IF_ERROR(replicas_[r]->Flush());
      SetState(r, ReplicaState::kHealthy);
      cells_.repairs_completed.Increment();
    }
    repair_cursor_ = 0;
    return Status::OK();
  }
  if (more != nullptr) *more = repair_pending();
  return Status::OK();
}

ReplicationStats ReplicatedBlockDevice::stats() const {
  ReplicationStats s;
  s.reads = cells_.reads.value();
  s.writes = cells_.writes.value();
  s.failovers = cells_.failovers.value();
  s.quarantines = cells_.quarantines.value();
  s.repairs_completed = cells_.repairs_completed.value();
  s.repair_blocks = cells_.repair_blocks.value();
  s.healthy_replicas = healthy_count();
  s.failover_ms_max = cells_.failover_ms.max();
  s.failover_ms_mean = cells_.failover_ms.mean();
  return s;
}

void ReplicatedBlockDevice::RegisterMetrics(obs::Registry* registry,
                                            const std::string& prefix) {
  registration_ = obs::Registration(registry);
  registration_.Counter(prefix + ".reads", &cells_.reads);
  registration_.Counter(prefix + ".writes", &cells_.writes);
  registration_.Counter(prefix + ".failovers", &cells_.failovers);
  registration_.Counter(prefix + ".quarantines", &cells_.quarantines);
  registration_.Counter(prefix + ".repairs_completed",
                        &cells_.repairs_completed);
  registration_.Counter(prefix + ".repair_blocks", &cells_.repair_blocks);
  registration_.Gauge(prefix + ".healthy_replicas", &cells_.healthy_replicas);
  registration_.Histogram(prefix + ".failover_ms", &cells_.failover_ms);
}

}  // namespace steghide::storage
