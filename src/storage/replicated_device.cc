#include "storage/replicated_device.h"

#include <algorithm>
#include <cassert>

namespace steghide::storage {

namespace {

bool RetriableWrite(const Status& status) {
  // kDeadlineExceeded is what a partitioned/timed-out remote replica
  // surfaces; it is as transient as kIoError.
  return status.code() == StatusCode::kIoError ||
         status.code() == StatusCode::kDeadlineExceeded;
}

}  // namespace

ReplicatedBlockDevice::ReplicatedBlockDevice(
    std::vector<BlockDevice*> replicas, ReplicationOptions options)
    : replicas_(std::move(replicas)),
      options_(options),
      block_size_(replicas_.empty() ? kDefaultBlockSize
                                    : replicas_.front()->block_size()),
      states_(replicas_.size()),
      consecutive_read_errors_(replicas_.size(), 0),
      consecutive_write_errors_(replicas_.size(), 0) {
  assert(!replicas_.empty());
  uint64_t min_blocks = replicas_.front()->num_blocks();
  for (BlockDevice* replica : replicas_) {
    assert(replica->block_size() == block_size_);
    if (replica->num_blocks() < min_blocks) min_blocks = replica->num_blocks();
  }
  num_blocks_ = min_blocks;
  if (options_.quorum) {
    write_quorum_ = std::clamp<size_t>(options_.write_quorum, 1,
                                       replicas_.size());
    read_quorum_ = std::clamp<size_t>(options_.read_quorum, 1,
                                      replicas_.size());
    latest_ver_.assign(num_blocks_, 0);
    replica_ver_.assign(replicas_.size(),
                        std::vector<uint64_t>(num_blocks_, 0));
    stale_count_.assign(replicas_.size(), 0);
  }
  cells_.healthy_replicas.Set(static_cast<double>(replicas_.size()));
}

void ReplicatedBlockDevice::SetState(size_t r, ReplicaState state) {
  states_[r].store(static_cast<uint8_t>(state), std::memory_order_relaxed);
  cells_.healthy_replicas.Set(static_cast<double>(healthy_count()));
  cells_.lagging_replicas.Set(static_cast<double>(lagging_count()));
}

size_t ReplicatedBlockDevice::healthy_count() const {
  size_t n = 0;
  for (size_t r = 0; r < replicas_.size(); ++r) {
    if (replica_state(r) == ReplicaState::kHealthy) ++n;
  }
  return n;
}

size_t ReplicatedBlockDevice::lagging_count() const {
  size_t n = 0;
  for (size_t r = 0; r < replicas_.size(); ++r) {
    if (replica_state(r) == ReplicaState::kLagging) ++n;
  }
  return n;
}

void ReplicatedBlockDevice::Quarantine(size_t r) { QuarantineLocked(r); }

void ReplicatedBlockDevice::QuarantineLocked(size_t r) {
  if (replica_state(r) == ReplicaState::kQuarantined) return;
  SetState(r, ReplicaState::kQuarantined);
  cells_.quarantines.Increment();
}

bool ReplicatedBlockDevice::ServingOrder(std::vector<size_t>* order,
                                         bool include_lagging) {
  order->clear();
  for (size_t r = 0; r < replicas_.size(); ++r) {
    const ReplicaState state = replica_state(r);
    if (state == ReplicaState::kHealthy ||
        (include_lagging && state == ReplicaState::kLagging)) {
      order->push_back(r);
    }
  }
  if (order->empty()) return false;
  // Data-independent replica choice: rotate the serving list by a
  // counter of read calls. The first entry serves; the rest are the
  // failover order.
  const size_t shift = static_cast<size_t>(rr_++ % order->size());
  std::rotate(order->begin(), order->begin() + shift, order->end());
  return true;
}

// ---------------------------------------------------------------------------
// Strict mode (write-all / read-one)

Status ReplicatedBlockDevice::ReadFrom(std::span<const uint64_t> ids,
                                       uint8_t* out) {
  cells_.reads.Add(ids.size());
  std::vector<size_t> order;
  if (!ServingOrder(&order, /*include_lagging=*/false)) {
    return Status::IoError("replicated device: no healthy replicas");
  }
  const double t0 = clock_fn_ ? clock_fn_() : 0.0;
  Status status;
  for (size_t attempt = 0; attempt < order.size(); ++attempt) {
    const size_t r = order[attempt];
    status = replicas_[r]->ReadBlocks(ids, out);
    if (status.ok()) {
      consecutive_read_errors_[r] = 0;
      if (attempt > 0) {
        cells_.failovers.Increment();
        if (clock_fn_) cells_.failover_ms.Record(clock_fn_() - t0);
      }
      return status;
    }
    // Transient hiccups stay in rotation; a replica that keeps failing
    // gets benched so serving stops paying its failover latency.
    if (++consecutive_read_errors_[r] >= options_.quarantine_after) {
      QuarantineLocked(r);
    }
  }
  return status;
}

Status ReplicatedBlockDevice::WriteTo(std::span<const uint64_t> ids,
                                      const uint8_t* data) {
  cells_.writes.Add(ids.size());
  bool healthy_ok = false;
  Status healthy_error;
  for (size_t r = 0; r < replicas_.size(); ++r) {
    const ReplicaState state = replica_state(r);
    if (state == ReplicaState::kQuarantined) continue;
    Status status;
    for (int attempt = 0; attempt < std::max(1, options_.write_attempts);
         ++attempt) {
      status = replicas_[r]->WriteBlocks(ids, data);
      if (status.ok() || !RetriableWrite(status)) break;
    }
    if (status.ok()) {
      if (state == ReplicaState::kHealthy) healthy_ok = true;
      continue;
    }
    // A replica that missed a write is stale: it must never serve a read
    // again until a repair sweep re-mirrors it (this is also how a
    // repairing replica drops back to quarantined on error).
    QuarantineLocked(r);
    if (state == ReplicaState::kHealthy && healthy_error.ok()) {
      healthy_error = status;
    }
  }
  if (healthy_ok) return Status::OK();
  // No serving replica durably holds the new image; surface the failure
  // (a successful write confined to a mid-repair replica does not count
  // — its content is not servable yet).
  return healthy_error.ok()
             ? Status::IoError("replicated device: no healthy replicas")
             : healthy_error;
}

// ---------------------------------------------------------------------------
// Quorum mode

bool ReplicatedBlockDevice::CurrentForAll(
    size_t r, std::span<const uint64_t> ids) const {
  // Cheap whole-replica check first: a replica with no stale blocks is
  // current for any id set.
  if (stale_count_[r] == 0) return true;
  const std::vector<uint64_t>& vers = replica_ver_[r];
  for (uint64_t id : ids) {
    if (vers[id] != latest_ver_[id]) return false;
  }
  return true;
}

void ReplicatedBlockDevice::MarkCurrent(size_t r, uint64_t id) {
  uint64_t& v = replica_ver_[r][id];
  if (v != latest_ver_[id]) {
    v = latest_ver_[id];
    --stale_count_[r];
  }
}

void ReplicatedBlockDevice::BumpVersions(std::span<const uint64_t> ids) {
  for (uint64_t id : ids) {
    const uint64_t next = ++latest_ver_[id];
    for (size_t r = 0; r < replicas_.size(); ++r) {
      // Replicas current for this block a moment ago are now stale
      // until their write lands; already-stale ones stay counted once.
      if (replica_ver_[r][id] + 1 == next) ++stale_count_[r];
    }
  }
}

void ReplicatedBlockDevice::NoteWriteFailure(size_t r) {
  const ReplicaState state = replica_state(r);
  if (++consecutive_write_errors_[r] >= options_.quarantine_after) {
    QuarantineLocked(r);
    return;
  }
  if (state == ReplicaState::kHealthy) SetState(r, ReplicaState::kLagging);
}

void ReplicatedBlockDevice::MaybePromote(size_t r) {
  if (replica_state(r) == ReplicaState::kLagging && stale_count_[r] == 0) {
    SetState(r, ReplicaState::kHealthy);
  }
}

Status ReplicatedBlockDevice::QuorumWriteTo(std::span<const uint64_t> ids,
                                            const uint8_t* data) {
  cells_.writes.Add(ids.size());
  BumpVersions(ids);
  size_t acks = 0;
  Status first_error;
  for (size_t r = 0; r < replicas_.size(); ++r) {
    const ReplicaState state = replica_state(r);
    if (state == ReplicaState::kQuarantined) continue;
    Status status;
    for (int attempt = 0; attempt < std::max(1, options_.write_attempts);
         ++attempt) {
      status = replicas_[r]->WriteBlocks(ids, data);
      if (status.ok() || !RetriableWrite(status)) break;
    }
    if (status.ok()) {
      consecutive_write_errors_[r] = 0;
      for (uint64_t id : ids) MarkCurrent(r, id);
      // A mid-repair replica's ack is not servable until its sweep
      // finishes, so it does not count toward the quorum.
      if (state != ReplicaState::kRepairing) ++acks;
      MaybePromote(r);
      continue;
    }
    if (first_error.ok()) first_error = status;
    // The stamps already record exactly which blocks this replica
    // missed (BumpVersions), so it can keep serving its current blocks
    // as a lagging replica instead of being benched outright.
    NoteWriteFailure(r);
  }
  if (acks >= write_quorum_) return Status::OK();
  cells_.write_quorum_failures.Increment();
  return first_error.ok()
             ? Status::IoError("replicated device: write quorum not met")
             : first_error;
}

Status ReplicatedBlockDevice::QuorumReadFrom(std::span<const uint64_t> ids,
                                             uint8_t* out) {
  cells_.reads.Add(ids.size());
  std::vector<size_t> order;
  if (!ServingOrder(&order, /*include_lagging=*/true)) {
    return Status::IoError("replicated device: no healthy replicas");
  }
  const size_t quorum_window = std::min(read_quorum_, order.size());
  const double t0 = clock_fn_ ? clock_fn_() : 0.0;
  const size_t bs = block_size_;

  // Fast path: a replica that is current for the entire batch serves it
  // in one vectored call, in rotation-failover order.
  Status last_error;
  bool widened = false;
  for (size_t attempt = 0; attempt < order.size(); ++attempt) {
    const size_t r = order[attempt];
    if (!CurrentForAll(r, ids)) continue;
    if (attempt >= quorum_window) widened = true;
    Status status = replicas_[r]->ReadBlocks(ids, out);
    if (status.ok()) {
      consecutive_read_errors_[r] = 0;
      if (attempt > 0) {
        cells_.failovers.Increment();
        if (clock_fn_) cells_.failover_ms.Record(clock_fn_() - t0);
      }
      if (widened) cells_.quorum_widened.Increment();
      ReadRepair(ids, out, std::vector<bool>(ids.size(), true));
      return Status::OK();
    }
    last_error = status;
    if (++consecutive_read_errors_[r] >= options_.quarantine_after) {
      QuarantineLocked(r);
    }
  }

  // Assembly path: no single serving replica holds the whole batch at
  // the latest stamps (mid-partition, mid-repair). Serve each block
  // from a replica that is current *for that block*; only if no current
  // replica is reachable does a stale stamp get served — and counted,
  // because that is data loss.
  std::vector<bool> served_current(ids.size(), false);
  bool any_failover = false;
  for (size_t i = 0; i < ids.size(); ++i) {
    const uint64_t id = ids[i];
    uint8_t* dst = out + i * bs;
    bool done = false;
    for (size_t attempt = 0; attempt < order.size() && !done; ++attempt) {
      const size_t r = order[attempt];
      if (replica_ver_[r][id] != latest_ver_[id]) continue;
      if (attempt >= quorum_window) widened = true;
      if (attempt > 0) any_failover = true;
      Status status = replicas_[r]->ReadBlock(id, dst);
      if (status.ok()) {
        consecutive_read_errors_[r] = 0;
        served_current[i] = true;
        done = true;
        break;
      }
      last_error = status;
      if (++consecutive_read_errors_[r] >= options_.quarantine_after) {
        QuarantineLocked(r);
      }
    }
    if (done) continue;
    // Stale fallback: newest reachable stamp wins. Deterministic tie
    // break on replica index keeps the choice data-independent.
    size_t best = replicas_.size();
    uint64_t best_ver = 0;
    for (size_t attempt = 0; attempt < order.size(); ++attempt) {
      const size_t r = order[attempt];
      if (best == replicas_.size() || replica_ver_[r][id] > best_ver) {
        best = r;
        best_ver = replica_ver_[r][id];
      }
    }
    if (best == replicas_.size()) {
      return last_error.ok()
                 ? Status::IoError("replicated device: no healthy replicas")
                 : last_error;
    }
    Status status = replicas_[best]->ReadBlock(id, dst);
    if (!status.ok()) {
      if (++consecutive_read_errors_[best] >= options_.quarantine_after) {
        QuarantineLocked(best);
      }
      return status;
    }
    consecutive_read_errors_[best] = 0;
    cells_.quorum_stale_reads.Increment();
  }
  if (any_failover) {
    cells_.failovers.Increment();
    if (clock_fn_) cells_.failover_ms.Record(clock_fn_() - t0);
  }
  if (widened) cells_.quorum_widened.Increment();
  ReadRepair(ids, out, served_current);
  return Status::OK();
}

void ReplicatedBlockDevice::ReadRepair(std::span<const uint64_t> ids,
                                       const uint8_t* out,
                                       const std::vector<bool>& served_current) {
  const size_t bs = block_size_;
  std::vector<uint64_t> fix_ids;
  for (size_t r = 0; r < replicas_.size(); ++r) {
    if (replica_state(r) != ReplicaState::kLagging) continue;
    fix_ids.clear();
    repair_buf_.clear();
    for (size_t i = 0; i < ids.size(); ++i) {
      if (!served_current[i]) continue;  // never propagate a stale read
      if (replica_ver_[r][ids[i]] == latest_ver_[ids[i]]) continue;
      fix_ids.push_back(ids[i]);
      repair_buf_.insert(repair_buf_.end(), out + i * bs, out + (i + 1) * bs);
    }
    if (fix_ids.empty()) continue;
    Status status = replicas_[r]->WriteBlocks(
        std::span<const uint64_t>(fix_ids), repair_buf_.data());
    if (status.ok()) {
      consecutive_write_errors_[r] = 0;
      for (uint64_t id : fix_ids) MarkCurrent(r, id);
      cells_.read_repairs.Add(fix_ids.size());
      MaybePromote(r);
    } else {
      NoteWriteFailure(r);
    }
  }
}

Status ReplicatedBlockDevice::QuorumFlush() {
  size_t acks = 0;
  Status first_error;
  for (size_t r = 0; r < replicas_.size(); ++r) {
    const ReplicaState state = replica_state(r);
    if (state == ReplicaState::kQuarantined) continue;
    const Status status = replicas_[r]->Flush();
    if (status.ok()) {
      consecutive_write_errors_[r] = 0;
      if (state != ReplicaState::kRepairing) ++acks;
      continue;
    }
    if (first_error.ok()) first_error = status;
    NoteWriteFailure(r);
  }
  if (acks >= write_quorum_) return Status::OK();
  cells_.write_quorum_failures.Increment();
  return first_error.ok()
             ? Status::IoError("replicated device: flush quorum not met")
             : first_error;
}

// ---------------------------------------------------------------------------
// Entry points

Status ReplicatedBlockDevice::ReadBlock(uint64_t block_id, uint8_t* out) {
  STEGHIDE_RETURN_IF_ERROR(CheckRange(block_id));
  const std::span<const uint64_t> ids(&block_id, 1);
  return options_.quorum ? QuorumReadFrom(ids, out) : ReadFrom(ids, out);
}

Status ReplicatedBlockDevice::WriteBlock(uint64_t block_id,
                                         const uint8_t* data) {
  STEGHIDE_RETURN_IF_ERROR(CheckRange(block_id));
  const std::span<const uint64_t> ids(&block_id, 1);
  return options_.quorum ? QuorumWriteTo(ids, data) : WriteTo(ids, data);
}

Status ReplicatedBlockDevice::ReadBlocks(std::span<const uint64_t> ids,
                                         uint8_t* out) {
  if (ids.empty()) return Status::OK();
  for (uint64_t id : ids) STEGHIDE_RETURN_IF_ERROR(CheckRange(id));
  return options_.quorum ? QuorumReadFrom(ids, out) : ReadFrom(ids, out);
}

Status ReplicatedBlockDevice::WriteBlocks(std::span<const uint64_t> ids,
                                          const uint8_t* data) {
  if (ids.empty()) return Status::OK();
  for (uint64_t id : ids) STEGHIDE_RETURN_IF_ERROR(CheckRange(id));
  return options_.quorum ? QuorumWriteTo(ids, data) : WriteTo(ids, data);
}

Status ReplicatedBlockDevice::Flush() {
  if (options_.quorum) return QuorumFlush();
  bool healthy_ok = false;
  Status healthy_error;
  for (size_t r = 0; r < replicas_.size(); ++r) {
    const ReplicaState state = replica_state(r);
    if (state == ReplicaState::kQuarantined) continue;
    const Status status = replicas_[r]->Flush();
    if (status.ok()) {
      if (state == ReplicaState::kHealthy) healthy_ok = true;
      continue;
    }
    QuarantineLocked(r);
    if (state == ReplicaState::kHealthy && healthy_error.ok()) {
      healthy_error = status;
    }
  }
  if (healthy_ok) return Status::OK();
  return healthy_error.ok()
             ? Status::IoError("replicated device: no healthy replicas")
             : healthy_error;
}

// ---------------------------------------------------------------------------
// Repair

Status ReplicatedBlockDevice::StartRepair(size_t r) {
  if (r >= replicas_.size()) {
    return Status::InvalidArgument("no such replica");
  }
  const ReplicaState state = replica_state(r);
  const bool admissible =
      state == ReplicaState::kQuarantined ||
      (options_.quorum && state == ReplicaState::kLagging);
  if (!admissible) {
    return Status::FailedPrecondition("replica is not quarantined");
  }
  SetState(r, ReplicaState::kRepairing);
  // The sweep restarts from block 0 — also when a second replica joins
  // an in-flight repair; re-copying a prefix is correct (live writes
  // keep it consistent) and keeps the scrub order a fixed public
  // schedule.
  repair_cursor_ = 0;
  consecutive_read_errors_[r] = 0;
  consecutive_write_errors_[r] = 0;
  return Status::OK();
}

bool ReplicatedBlockDevice::repair_pending() const {
  for (size_t r = 0; r < replicas_.size(); ++r) {
    if (replica_state(r) == ReplicaState::kRepairing) return true;
  }
  return false;
}

Status ReplicatedBlockDevice::RepairStep(uint64_t budget_blocks, bool* more) {
  if (more != nullptr) *more = false;
  if (!repair_pending()) return Status::OK();
  repair_buf_.resize(block_size_);
  const uint64_t end = std::min(num_blocks_, repair_cursor_ + budget_blocks);
  for (uint64_t b = repair_cursor_; b < end; ++b) {
    // Source selection is a fixed public choice — repair traffic cannot
    // leak which blocks changed while the replica was out. Strict mode:
    // the lowest-index healthy replica (healthy == complete). Quorum
    // mode: the lowest-index serving replica whose stamp for *this*
    // block is current, so repair converges even when no replica is
    // complete but the serving set jointly is.
    size_t source = replicas_.size();
    for (size_t r = 0; r < replicas_.size(); ++r) {
      const ReplicaState state = replica_state(r);
      if (options_.quorum) {
        const bool serving = state == ReplicaState::kHealthy ||
                             state == ReplicaState::kLagging;
        if (serving && replica_ver_[r][b] == latest_ver_[b]) {
          source = r;
          break;
        }
      } else if (state == ReplicaState::kHealthy) {
        source = r;
        break;
      }
    }
    if (source == replicas_.size()) {
      return Status::FailedPrecondition("repair has no healthy source");
    }
    STEGHIDE_RETURN_IF_ERROR(replicas_[source]->ReadBlock(b,
                                                          repair_buf_.data()));
    for (size_t r = 0; r < replicas_.size(); ++r) {
      if (replica_state(r) != ReplicaState::kRepairing) continue;
      const Status status = replicas_[r]->WriteBlock(b, repair_buf_.data());
      if (!status.ok()) {
        QuarantineLocked(r);
      } else if (options_.quorum) {
        MarkCurrent(r, b);
      }
    }
    cells_.repair_blocks.Increment();
    repair_cursor_ = b + 1;
  }
  if (repair_cursor_ >= num_blocks_) {
    bool restart = false;
    for (size_t r = 0; r < replicas_.size(); ++r) {
      if (replica_state(r) != ReplicaState::kRepairing) continue;
      if (options_.quorum && stale_count_[r] != 0) {
        // A live write raced the sweep and missed this replica behind
        // the cursor; one more pass picks the block up. The restart
        // decision depends only on write/fault timing, never contents.
        restart = true;
        continue;
      }
      const Status status = replicas_[r]->Flush();
      if (!status.ok()) {
        QuarantineLocked(r);
        continue;
      }
      SetState(r, ReplicaState::kHealthy);
      cells_.repairs_completed.Increment();
    }
    repair_cursor_ = 0;
    if (more != nullptr) *more = restart && repair_pending();
    return Status::OK();
  }
  if (more != nullptr) *more = repair_pending();
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Stats

ReplicationStats ReplicatedBlockDevice::stats() const {
  ReplicationStats s;
  s.reads = cells_.reads.value();
  s.writes = cells_.writes.value();
  s.failovers = cells_.failovers.value();
  s.quarantines = cells_.quarantines.value();
  s.repairs_completed = cells_.repairs_completed.value();
  s.repair_blocks = cells_.repair_blocks.value();
  s.read_repairs = cells_.read_repairs.value();
  s.quorum_widened = cells_.quorum_widened.value();
  s.quorum_stale_reads = cells_.quorum_stale_reads.value();
  s.write_quorum_failures = cells_.write_quorum_failures.value();
  s.healthy_replicas = healthy_count();
  s.lagging_replicas = lagging_count();
  s.failover_ms_max = cells_.failover_ms.max();
  s.failover_ms_mean = cells_.failover_ms.mean();
  s.failover_ms_p50 = cells_.failover_ms.Percentile(50);
  s.failover_ms_p99 = cells_.failover_ms.Percentile(99);
  return s;
}

void ReplicatedBlockDevice::RegisterMetrics(obs::Registry* registry,
                                            const std::string& prefix) {
  registration_ = obs::Registration(registry);
  registration_.Counter(prefix + ".reads", &cells_.reads);
  registration_.Counter(prefix + ".writes", &cells_.writes);
  registration_.Counter(prefix + ".failovers", &cells_.failovers);
  registration_.Counter(prefix + ".quarantines", &cells_.quarantines);
  registration_.Counter(prefix + ".repairs_completed",
                        &cells_.repairs_completed);
  registration_.Counter(prefix + ".repair_blocks", &cells_.repair_blocks);
  registration_.Counter(prefix + ".read_repairs", &cells_.read_repairs);
  registration_.Counter(prefix + ".quorum_widened", &cells_.quorum_widened);
  registration_.Counter(prefix + ".quorum_stale_reads",
                        &cells_.quorum_stale_reads);
  registration_.Counter(prefix + ".write_quorum_failures",
                        &cells_.write_quorum_failures);
  registration_.Gauge(prefix + ".healthy_replicas", &cells_.healthy_replicas);
  registration_.Gauge(prefix + ".lagging_replicas", &cells_.lagging_replicas);
  registration_.Histogram(prefix + ".failover_ms", &cells_.failover_ms);
}

}  // namespace steghide::storage
