#ifndef STEGHIDE_STORAGE_REPLICATED_DEVICE_H_
#define STEGHIDE_STORAGE_REPLICATED_DEVICE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <vector>

#include "obs/metrics.h"
#include "storage/block_device.h"

namespace steghide::storage {

/// Mirroring policy knobs.
struct ReplicationOptions {
  /// Immediate same-replica attempts per write before the replica is
  /// declared stale and quarantined (a replica that misses one write can
  /// never serve reads again until repaired).
  int write_attempts = 2;
  /// Consecutive failed *reads* after which a replica is quarantined
  /// instead of merely failed over (transient hiccups stay in rotation).
  int quarantine_after = 3;
};

enum class ReplicaState : uint8_t { kHealthy, kQuarantined, kRepairing };

/// Counter snapshot of the mirror's life so far.
struct ReplicationStats {
  uint64_t reads = 0;
  uint64_t writes = 0;
  /// Reads answered by a replica other than the first one tried.
  uint64_t failovers = 0;
  uint64_t quarantines = 0;
  uint64_t repairs_completed = 0;
  uint64_t repair_blocks = 0;
  size_t healthy_replicas = 0;
  double failover_ms_max = 0.0;
  double failover_ms_mean = 0.0;
};

/// R-way mirrored block device: write-all / read-one over equally sized
/// replicas, with failover, quarantine, degraded-mode serving, and
/// incremental repair.
///
/// *Oblivious replication*: every choice this layer makes is
/// data-independent. The serving replica for a read is picked by a
/// rotation counter over the currently-healthy set (a function of the op
/// count and the fault history, never of block contents); writes go to
/// every serviceable replica in index order; repair copies blocks in
/// plain ascending order from the lowest-index healthy source. An
/// attacker tracing any single replica therefore sees a stream whose
/// shape depends only on the request pattern and the (data-independent)
/// fault schedule — pinned by the per-replica distinguisher suites.
///
/// Threading: I/O entry points and RepairStep follow the single-issuer
/// contract (in the VolumeSet they all run on the owning shard's pool
/// thread); replica_state()/healthy_count()/stats() are thread-safe
/// snapshots.
class ReplicatedBlockDevice : public BlockDevice {
 public:
  /// Does not take ownership of `replicas`, which must share one block
  /// size and outlive this object. All replicas start healthy.
  explicit ReplicatedBlockDevice(std::vector<BlockDevice*> replicas,
                                 ReplicationOptions options = {});

  using BlockDevice::ReadBlock;
  using BlockDevice::WriteBlock;

  Status ReadBlock(uint64_t block_id, uint8_t* out) override;
  Status WriteBlock(uint64_t block_id, const uint8_t* data) override;
  Status ReadBlocks(std::span<const uint64_t> ids, uint8_t* out) override;
  Status WriteBlocks(std::span<const uint64_t> ids,
                     const uint8_t* data) override;
  uint64_t num_blocks() const override { return num_blocks_; }
  size_t block_size() const override { return block_size_; }
  Status Flush() override;

  size_t replica_count() const { return replicas_.size(); }
  BlockDevice* replica(size_t r) { return replicas_[r]; }
  ReplicaState replica_state(size_t r) const {
    return static_cast<ReplicaState>(
        states_[r].load(std::memory_order_relaxed));
  }
  size_t healthy_count() const;

  /// Manual quarantine (tests; an external health checker).
  void Quarantine(size_t r);

  /// Re-admits a quarantined replica for repair: it immediately receives
  /// all new writes (so the repaired prefix can never go stale) and a
  /// full sequential copy pass re-mirrors it from the lowest-index
  /// healthy replica. The caller must have revived/replaced the
  /// underlying device first.
  Status StartRepair(size_t r);
  /// Copies up to `budget_blocks` blocks into every repairing replica;
  /// *more = work remains. Completing the sweep promotes the replicas to
  /// healthy. Fixed ascending scrub order: repair traffic is
  /// data-independent by construction.
  Status RepairStep(uint64_t budget_blocks, bool* more);
  bool repair_pending() const;
  /// Next block the repair sweep will copy (progress indicator).
  uint64_t repair_cursor() const { return repair_cursor_; }

  /// Virtual-clock sampler for the failover latency histogram.
  void set_clock_fn(std::function<double()> fn) { clock_fn_ = std::move(fn); }

  ReplicationStats stats() const;
  void RegisterMetrics(obs::Registry* registry, const std::string& prefix);

 private:
  struct Cells {
    obs::CounterCell reads;
    obs::CounterCell writes;
    obs::CounterCell failovers;
    obs::CounterCell quarantines;
    obs::CounterCell repairs_completed;
    obs::CounterCell repair_blocks;
    obs::GaugeCell healthy_replicas;
    obs::HistogramCell failover_ms;
  };

  void SetState(size_t r, ReplicaState state);
  void QuarantineLocked(size_t r);
  /// Serving replicas in rotation order starting at the rr counter.
  /// Returns false when none are healthy.
  bool ServingOrder(std::vector<size_t>* order);
  Status ReadFrom(std::span<const uint64_t> ids, uint8_t* out);
  Status WriteTo(std::span<const uint64_t> ids, const uint8_t* data);

  std::vector<BlockDevice*> replicas_;
  ReplicationOptions options_;
  uint64_t num_blocks_;
  size_t block_size_;
  /// Atomic so a bench thread can poll degraded state mid-run.
  std::vector<std::atomic<uint8_t>> states_;
  /// Issuer-thread-only serving state.
  uint64_t rr_ = 0;
  std::vector<int> consecutive_read_errors_;
  uint64_t repair_cursor_ = 0;
  std::vector<uint8_t> repair_buf_;
  std::function<double()> clock_fn_;
  Cells cells_;
  obs::Registration registration_;
};

}  // namespace steghide::storage

#endif  // STEGHIDE_STORAGE_REPLICATED_DEVICE_H_
