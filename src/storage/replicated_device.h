#ifndef STEGHIDE_STORAGE_REPLICATED_DEVICE_H_
#define STEGHIDE_STORAGE_REPLICATED_DEVICE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <vector>

#include "obs/metrics.h"
#include "storage/block_device.h"

namespace steghide::storage {

/// Mirroring policy knobs.
struct ReplicationOptions {
  /// Immediate same-replica attempts per write before the replica is
  /// declared stale (a missed write quarantines the replica in strict
  /// mode; in quorum mode it marks the blocks stale and demotes the
  /// replica to lagging).
  int write_attempts = 2;
  /// Consecutive failed *reads* after which a replica is quarantined
  /// instead of merely failed over (transient hiccups stay in rotation).
  /// In quorum mode the same threshold applies to consecutive failed
  /// writes/flushes before a lagging replica is quarantined.
  int quarantine_after = 3;
  /// Quorum mode: per-block version stamps, lagging replicas, W/R
  /// quorums, and read-repair. false = the strict write-all/read-one
  /// mirror (a replica that misses one write is quarantined until a
  /// full repair sweep).
  bool quorum = false;
  /// Acks (from healthy or lagging replicas) required for a write or
  /// flush to succeed. Clamped to [1, R]. Quorum mode only.
  size_t write_quorum = 1;
  /// Replicas consulted per read before the search is counted as
  /// "widened" beyond the quorum. Clamped to [1, R]. Quorum mode only.
  size_t read_quorum = 1;
};

enum class ReplicaState : uint8_t {
  kHealthy,
  kQuarantined,
  kRepairing,
  /// Quorum mode: reachable but missing some writes (e.g. the far side
  /// of a healed partition). Still serves reads for blocks it holds at
  /// the latest version, receives all new writes, and re-converges via
  /// read-repair or a repair sweep.
  kLagging,
};

/// Counter snapshot of the mirror's life so far.
struct ReplicationStats {
  uint64_t reads = 0;
  uint64_t writes = 0;
  /// Reads answered by a replica other than the first one tried.
  uint64_t failovers = 0;
  uint64_t quarantines = 0;
  uint64_t repairs_completed = 0;
  uint64_t repair_blocks = 0;
  /// Quorum mode: stale blocks pushed back to lagging replicas on the
  /// read path.
  uint64_t read_repairs = 0;
  /// Quorum mode: reads that had to consult replicas beyond the first
  /// read_quorum rotation candidates.
  uint64_t quorum_widened = 0;
  /// Quorum mode: blocks served from a replica whose stamp is behind
  /// the latest version — this is data loss and must never happen while
  /// a write-quorum's worth of current replicas exists (hard-gated to
  /// zero in the benches).
  uint64_t quorum_stale_reads = 0;
  /// Quorum mode: writes that could not collect write_quorum acks.
  uint64_t write_quorum_failures = 0;
  size_t healthy_replicas = 0;
  size_t lagging_replicas = 0;
  /// Failover latency distribution (virtual ms), all quantiles from the
  /// same registry HistogramCell the metrics export reads.
  double failover_ms_max = 0.0;
  double failover_ms_mean = 0.0;
  double failover_ms_p50 = 0.0;
  double failover_ms_p99 = 0.0;
};

/// R-way mirrored block device with failover, quarantine, degraded-mode
/// serving, and incremental repair. Two consistency modes:
///
///  * strict (default): write-all / read-one. A replica that misses a
///    single write is quarantined until a full repair sweep re-mirrors
///    it. Total loss of any replica fails nothing; a write error on the
///    last healthy replica fails the write.
///  * quorum: every block carries a version stamp (client-side, per
///    mirror). Writes succeed on W acks; replicas that miss writes are
///    demoted to *lagging* and only ever serve blocks they hold at the
///    latest stamp, so quorum reads can never return stale data. Reads
///    consult up to R rotation candidates and fall back per-block to
///    any replica that is current for that block; fresh data is pushed
///    back to reachable lagging replicas (read-repair). This is what
///    lets a partitioned or crashed *remote* replica degrade service
///    instead of failing it, and re-converge byte-identically after
///    reconnect.
///
/// *Oblivious replication*: every choice this layer makes is
/// data-independent. The serving replica for a read is picked by a
/// rotation counter over the serving set (a function of the op count
/// and the fault history, never of block contents); version stamps are
/// functions of the (public) write pattern and fault schedule; writes
/// go to every serviceable replica in index order; repair copies blocks
/// in plain ascending order from a per-block version-current source. An
/// attacker tracing any single replica therefore sees a stream whose
/// shape depends only on the request pattern and the (data-independent)
/// fault schedule — pinned by the per-replica distinguisher suites.
///
/// Threading: I/O entry points and RepairStep follow the single-issuer
/// contract (in the VolumeSet they all run on the owning shard's pool
/// thread); replica_state()/healthy_count()/stats() are thread-safe
/// snapshots.
class ReplicatedBlockDevice : public BlockDevice {
 public:
  /// Does not take ownership of `replicas`, which must share one block
  /// size and outlive this object. All replicas start healthy and (in
  /// quorum mode) version-current.
  explicit ReplicatedBlockDevice(std::vector<BlockDevice*> replicas,
                                 ReplicationOptions options = {});

  using BlockDevice::ReadBlock;
  using BlockDevice::WriteBlock;

  Status ReadBlock(uint64_t block_id, uint8_t* out) override;
  Status WriteBlock(uint64_t block_id, const uint8_t* data) override;
  Status ReadBlocks(std::span<const uint64_t> ids, uint8_t* out) override;
  Status WriteBlocks(std::span<const uint64_t> ids,
                     const uint8_t* data) override;
  uint64_t num_blocks() const override { return num_blocks_; }
  size_t block_size() const override { return block_size_; }
  Status Flush() override;

  size_t replica_count() const { return replicas_.size(); }
  BlockDevice* replica(size_t r) { return replicas_[r]; }
  ReplicaState replica_state(size_t r) const {
    return static_cast<ReplicaState>(
        states_[r].load(std::memory_order_relaxed));
  }
  size_t healthy_count() const;
  size_t lagging_count() const;

  /// Manual quarantine (tests; an external health checker).
  void Quarantine(size_t r);

  /// Re-admits a quarantined (or, in quorum mode, lagging) replica for
  /// repair: it immediately receives all new writes (so the repaired
  /// prefix can never go stale) and a full sequential copy pass
  /// re-mirrors it. The caller must have revived/replaced the
  /// underlying device first.
  Status StartRepair(size_t r);
  /// Copies up to `budget_blocks` blocks into every repairing replica;
  /// *more = work remains. Completing the sweep promotes the replicas to
  /// healthy (in quorum mode, only once every block is verifiably at the
  /// latest stamp — a sweep raced by failed live writes restarts).
  /// Fixed ascending scrub order: repair traffic is data-independent by
  /// construction.
  Status RepairStep(uint64_t budget_blocks, bool* more);
  bool repair_pending() const;
  /// Next block the repair sweep will copy (progress indicator).
  uint64_t repair_cursor() const { return repair_cursor_; }

  /// Quorum mode: number of blocks replica `r` holds at a stale stamp.
  /// Issuer-thread only (like the version bookkeeping it reads).
  uint64_t stale_blocks(size_t r) const {
    return options_.quorum ? stale_count_[r] : 0;
  }

  /// Virtual-clock sampler for the failover latency histogram.
  void set_clock_fn(std::function<double()> fn) { clock_fn_ = std::move(fn); }

  ReplicationStats stats() const;
  void RegisterMetrics(obs::Registry* registry, const std::string& prefix);

 private:
  struct Cells {
    obs::CounterCell reads;
    obs::CounterCell writes;
    obs::CounterCell failovers;
    obs::CounterCell quarantines;
    obs::CounterCell repairs_completed;
    obs::CounterCell repair_blocks;
    obs::CounterCell read_repairs;
    obs::CounterCell quorum_widened;
    obs::CounterCell quorum_stale_reads;
    obs::CounterCell write_quorum_failures;
    obs::GaugeCell healthy_replicas;
    obs::GaugeCell lagging_replicas;
    obs::HistogramCell failover_ms;
  };

  void SetState(size_t r, ReplicaState state);
  void QuarantineLocked(size_t r);
  /// Serving replicas in rotation order starting at the rr counter.
  /// Strict mode serves from healthy replicas only; quorum mode also
  /// admits lagging ones (their per-block stamps gate what they serve).
  /// Returns false when the set is empty.
  bool ServingOrder(std::vector<size_t>* order, bool include_lagging);

  // Strict-mode paths (exactly the historical write-all/read-one).
  Status ReadFrom(std::span<const uint64_t> ids, uint8_t* out);
  Status WriteTo(std::span<const uint64_t> ids, const uint8_t* data);

  // Quorum-mode paths.
  bool CurrentForAll(size_t r, std::span<const uint64_t> ids) const;
  /// Marks `id` written at the latest stamp on replica `r`.
  void MarkCurrent(size_t r, uint64_t id);
  /// Bumps the latest stamp of every id and accounts the new staleness.
  void BumpVersions(std::span<const uint64_t> ids);
  /// Demotion ladder for a failed write/flush on replica `r`.
  void NoteWriteFailure(size_t r);
  void MaybePromote(size_t r);
  Status QuorumReadFrom(std::span<const uint64_t> ids, uint8_t* out);
  Status QuorumWriteTo(std::span<const uint64_t> ids, const uint8_t* data);
  Status QuorumFlush();
  /// Pushes the (version-current) blocks just read back to reachable
  /// lagging replicas. `served_current[i]` guards against propagating a
  /// stale fallback.
  void ReadRepair(std::span<const uint64_t> ids, const uint8_t* out,
                  const std::vector<bool>& served_current);

  std::vector<BlockDevice*> replicas_;
  ReplicationOptions options_;
  uint64_t num_blocks_;
  size_t block_size_;
  size_t write_quorum_ = 1;
  size_t read_quorum_ = 1;
  /// Atomic so a bench thread can poll degraded state mid-run.
  std::vector<std::atomic<uint8_t>> states_;
  /// Issuer-thread-only serving state.
  uint64_t rr_ = 0;
  std::vector<int> consecutive_read_errors_;
  std::vector<int> consecutive_write_errors_;
  uint64_t repair_cursor_ = 0;
  std::vector<uint8_t> repair_buf_;
  /// Quorum mode version bookkeeping (issuer-thread only).
  std::vector<uint64_t> latest_ver_;                // [num_blocks]
  std::vector<std::vector<uint64_t>> replica_ver_;  // [R][num_blocks]
  std::vector<uint64_t> stale_count_;               // [R]
  std::function<double()> clock_fn_;
  Cells cells_;
  obs::Registration registration_;
};

}  // namespace steghide::storage

#endif  // STEGHIDE_STORAGE_REPLICATED_DEVICE_H_
