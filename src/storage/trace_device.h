#ifndef STEGHIDE_STORAGE_TRACE_DEVICE_H_
#define STEGHIDE_STORAGE_TRACE_DEVICE_H_

#include <vector>

#include "storage/block_device.h"

namespace steghide::storage {

/// One observed I/O operation. This is exactly the information the
/// paper's second attacker class sees: the request stream between the
/// agent and the raw storage (op direction and block address), but not the
/// plaintext or keys.
struct TraceEvent {
  enum class Kind : uint8_t { kRead, kWrite };
  Kind kind;
  uint64_t block_id;

  bool operator==(const TraceEvent&) const = default;
};

using IoTrace = std::vector<TraceEvent>;

/// Decorates a device, recording every operation in order. Used by the
/// analysis module to run traffic-analysis distinguishers over the
/// observed request stream.
class TraceBlockDevice : public BlockDevice {
 public:
  /// Does not take ownership of `backing`.
  explicit TraceBlockDevice(BlockDevice* backing) : backing_(backing) {}

  using BlockDevice::ReadBlock;
  using BlockDevice::WriteBlock;

  Status ReadBlock(uint64_t block_id, uint8_t* out) override {
    STEGHIDE_RETURN_IF_ERROR(backing_->ReadBlock(block_id, out));
    if (enabled_) trace_.push_back({TraceEvent::Kind::kRead, block_id});
    return Status::OK();
  }

  Status WriteBlock(uint64_t block_id, const uint8_t* data) override {
    STEGHIDE_RETURN_IF_ERROR(backing_->WriteBlock(block_id, data));
    if (enabled_) trace_.push_back({TraceEvent::Kind::kWrite, block_id});
    return Status::OK();
  }

  uint64_t num_blocks() const override { return backing_->num_blocks(); }
  size_t block_size() const override { return backing_->block_size(); }
  Status Flush() override { return backing_->Flush(); }

  const IoTrace& trace() const { return trace_; }
  void ClearTrace() { trace_.clear(); }

  /// Pauses/resumes recording (e.g. to skip the formatting phase, which an
  /// attacker is assumed to have already seen).
  void set_enabled(bool enabled) { enabled_ = enabled; }

 private:
  BlockDevice* backing_;
  IoTrace trace_;
  bool enabled_ = true;
};

}  // namespace steghide::storage

#endif  // STEGHIDE_STORAGE_TRACE_DEVICE_H_
