#ifndef STEGHIDE_STORAGE_REMOTE_TRANSPORT_H_
#define STEGHIDE_STORAGE_REMOTE_TRANSPORT_H_

// Byte-stream transport under the block-RPC protocol, plus the
// transport-layer half of the fault-injection story.
//
// SocketTransport wraps one end of a socketpair(AF_UNIX, SOCK_STREAM):
// the loopback stand-in for a TCP connection that keeps every protocol
// property (stream framing, EOF on close, blocking semantics,
// poll-based deadlines) without touching the network.
//
// TransportFaultController scripts kPartition/kDelayRpc/kDropConnection
// FaultSpecs against the RPC *frame* stream the way
// FaultInjectionBlockDevice scripts block faults against the op stream:
// triggers consume a per-frame index and are data-independent by
// construction. The controller outlives individual connections, so a
// fault schedule spans reconnects, and it keeps an optional
// (direction, type, length) frame log that the distinguisher suite
// compares across content-differing twin runs.

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "obs/metrics.h"
#include "storage/fault_device.h"
#include "util/result.h"
#include "util/status.h"

namespace steghide::storage::remote {

class FaultyTransport;

/// Blocking byte-stream endpoint. Send/Recv transfer exactly `n` bytes
/// or fail; `deadline_ms` bounds the whole transfer in wall-clock
/// milliseconds (0 = no deadline) and expiry surfaces as
/// kDeadlineExceeded. Send/Recv follow the single-issuer contract per
/// direction; Close() is thread-safe and wakes a blocked peer call.
class Transport {
 public:
  virtual ~Transport() = default;
  virtual Status Send(const uint8_t* data, size_t n, double deadline_ms) = 0;
  virtual Status Recv(uint8_t* out, size_t n, double deadline_ms) = 0;
  virtual void Close() = 0;
};

/// Transport over a connected SOCK_STREAM file descriptor (owned).
class SocketTransport : public Transport {
 public:
  explicit SocketTransport(int fd) : fd_(fd) {}
  ~SocketTransport() override;

  /// A connected AF_UNIX stream pair — the loopback "network".
  static Status MakePair(std::unique_ptr<SocketTransport>* first,
                         std::unique_ptr<SocketTransport>* second);

  Status Send(const uint8_t* data, size_t n, double deadline_ms) override;
  Status Recv(uint8_t* out, size_t n, double deadline_ms) override;
  /// shutdown(2)s the socket (both directions): any blocked or later
  /// Send/Recv on either end fails promptly. The fd itself is closed in
  /// the destructor, so no fd-reuse race with a concurrent call.
  void Close() override;

 private:
  Status Io(bool is_send, uint8_t* rbuf, const uint8_t* sbuf, size_t n,
            double deadline_ms);

  std::atomic<int> fd_{-1};
};

/// One delivered frame, as the "network" saw it. dir 0 = client→server
/// (requests), 1 = server→client (replies).
struct FrameRecord {
  uint8_t dir = 0;
  uint8_t type = 0;  // FrameType byte
  uint32_t len = 0;  // header + payload
  bool operator==(const FrameRecord&) const = default;
};

struct TransportFaultStats {
  uint64_t frames = 0;           // frames that reached the controller
  uint64_t partitioned_frames = 0;
  uint64_t delayed_frames = 0;
  uint64_t dropped_connections = 0;
};

/// Scripts transport-kind FaultSpecs against the frame stream and
/// wraps per-connection transports with the decorator that enforces
/// them. Block-layer spec kinds in the same plan are ignored here (and
/// transport kinds are ignored by FaultInjectionBlockDevice), so one
/// FaultPlan can script a replica end to end. Fault state, the frame
/// index, and the frame log persist across reconnects.
///
/// Thread-safe: the client issuer, the server thread, and a bench
/// thread calling Partition()/Heal() may race.
class TransportFaultController {
 public:
  enum class Side : uint8_t { kClient = 0, kServer = 1 };

  explicit TransportFaultController(FaultPlan plan = {});

  /// Decorates one end of a fresh connection. Fault evaluation runs on
  /// client-side sends (the per-frame trigger stream); a partition
  /// fails traffic on both sides. Either side records frames committed
  /// to the wire (post fault evaluation, pre transfer — so a record
  /// happens-before the peer can react, making log order deterministic)
  /// into the frame log. The controller must outlive the wrapper.
  std::unique_ptr<Transport> Wrap(std::unique_ptr<Transport> inner,
                                  Side side = Side::kClient);

  /// Manual partition latch, same effect as a kPartition spec firing:
  /// every frame on a wrapped transport fails fast with
  /// kDeadlineExceeded (simulating a black-holed link without waiting
  /// out real timeouts) until Heal().
  void Partition();
  void Heal();
  bool partitioned() const;

  /// Sink for kDelayRpc charges (typically the replica sim clock).
  void set_latency_fn(std::function<void(double)> fn);
  /// Delivered-frame log for the RPC-stream distinguisher; unset = off.
  /// The log must outlive the controller's wrappers.
  void set_frame_log(std::vector<FrameRecord>* log);

  TransportFaultStats stats() const;
  void RegisterMetrics(obs::Registry* registry, const std::string& prefix);

 private:
  friend class FaultyTransport;

  struct SpecState {
    uint64_t fires = 0;
  };

  /// Client-side pre-send hook: consumes a frame index, evaluates the
  /// plan. On injection returns the error the wrapper must surface;
  /// `drop_connection` asks the wrapper to close its inner transport.
  Status OnClientSend(const uint8_t* frame, size_t n, bool* drop_connection);
  /// Both sides: partition check for the non-triggering paths.
  Status CheckPartition();
  void RecordDelivered(Side side, const uint8_t* frame, size_t n);
  /// Live-wrapper registry, so Partition() can sever blocked calls.
  void Register(FaultyTransport* t);
  void Deregister(FaultyTransport* t);

  mutable std::mutex mu_;
  FaultPlan plan_;
  std::vector<SpecState> states_;
  uint64_t frame_index_ = 0;
  bool partitioned_ = false;
  std::function<void(double)> latency_fn_;
  std::vector<FrameRecord>* frame_log_ = nullptr;
  std::vector<FaultyTransport*> live_;

  struct Cells {
    obs::CounterCell frames;
    obs::CounterCell partitioned_frames;
    obs::CounterCell delayed_frames;
    obs::CounterCell dropped_connections;
  };
  Cells cells_;
  obs::Registration registration_;
};

}  // namespace steghide::storage::remote

#endif  // STEGHIDE_STORAGE_REMOTE_TRANSPORT_H_
