#include "storage/remote/remote_device.h"

#include <algorithm>
#include <cstring>
#include <utility>

namespace steghide::storage::remote {

Result<std::unique_ptr<RemoteBlockDevice>> RemoteBlockDevice::Create(
    ConnectFn connect, RemoteDeviceOptions options) {
  std::unique_ptr<RemoteBlockDevice> device(
      new RemoteBlockDevice(std::move(connect), options));
  // The initial connection gets the same bounded budget an RPC gets; no
  // backoff sink exists yet, so attempts are back-to-back.
  const int attempts = std::max(1, options.retry.max_attempts);
  Status last = Status::IoError("remote: connect never attempted");
  for (int attempt = 0; attempt < attempts; ++attempt) {
    last = device->Connect();
    if (last.ok()) {
      return Result<std::unique_ptr<RemoteBlockDevice>>(std::move(device));
    }
  }
  return last;
}

Status RemoteBlockDevice::Connect() {
  transport_.reset();
  Result<std::unique_ptr<Transport>> conn = connect_();
  if (!conn.ok()) {
    cells_.connect_failures.Increment();
    return conn.status();
  }
  transport_ = std::move(conn).value();
  // Hello handshake: fetches (and on reconnect, re-verifies) geometry,
  // and doubles as a liveness probe for the fresh connection.
  std::vector<uint8_t> hello = BuildHello(next_request_id_++);
  Status server_status;
  Status transfer = Exchange(hello, nullptr, 0, &server_status);
  if (!transfer.ok()) {
    if (transfer.IsDeadlineExceeded()) cells_.timeouts.Increment();
    transport_.reset();
    cells_.connect_failures.Increment();
    return transfer;
  }
  if (connected_once_) {
    cells_.reconnects.Increment();
  } else {
    connected_once_ = true;
  }
  return Status::OK();
}

Status RemoteBlockDevice::Exchange(const std::vector<uint8_t>& frame,
                                   uint8_t* read_out, size_t read_len,
                                   Status* server_status) {
  const double deadline = options_.rpc_deadline_ms;
  const uint64_t want_id = GetU64(frame.data() + 8);
  STEGHIDE_RETURN_IF_ERROR(
      transport_->Send(frame.data(), frame.size(), deadline));
  cells_.bytes_sent.Add(frame.size());

  uint8_t hdr[kFrameHeaderSize];
  STEGHIDE_RETURN_IF_ERROR(transport_->Recv(hdr, kFrameHeaderSize, deadline));
  FrameHeader h;
  STEGHIDE_RETURN_IF_ERROR(DecodeFrameHeader(hdr, &h));
  reply_payload_.resize(h.payload_len);
  if (h.payload_len != 0) {
    STEGHIDE_RETURN_IF_ERROR(
        transport_->Recv(reply_payload_.data(), h.payload_len, deadline));
  }
  cells_.bytes_received.Add(kFrameHeaderSize + h.payload_len);
  if (h.request_id != want_id) {
    // The protocol is one-outstanding, so a mismatch means the stream
    // lost sync — unrecoverable on this connection.
    return Status::Corruption("remote: reply request_id mismatch");
  }
  const std::span<const uint8_t> payload(reply_payload_.data(),
                                         reply_payload_.size());
  if (h.type == FrameType::kHelloReply) {
    uint64_t nb = 0;
    uint32_t bs = 0;
    STEGHIDE_RETURN_IF_ERROR(ParseHelloReply(payload, &nb, &bs));
    if (geometry_known_ && (nb != num_blocks_ || bs != block_size_)) {
      return Status::Internal("remote: served geometry changed on reconnect");
    }
    num_blocks_ = nb;
    block_size_ = bs;
    geometry_known_ = true;
    *server_status = Status::OK();
    return Status::OK();
  }
  if (h.type != FrameType::kReply) {
    return Status::Corruption("remote: unexpected reply frame type");
  }
  Status in_band;
  std::span<const uint8_t> data;
  STEGHIDE_RETURN_IF_ERROR(ParseReply(payload, &in_band, &data));
  if (in_band.ok() && read_out != nullptr) {
    if (data.size() != read_len) {
      return Status::Corruption("remote: read reply payload size mismatch");
    }
    std::memcpy(read_out, data.data(), read_len);
  }
  *server_status = in_band;
  return Status::OK();
}

Status RemoteBlockDevice::Rpc(FrameType type, std::span<const uint64_t> ids,
                              const uint8_t* write_data, uint8_t* read_out) {
  const char* span_name = type == FrameType::kRead    ? "remote.read"
                          : type == FrameType::kWrite ? "remote.write"
                                                      : "remote.flush";
  obs::ScopedSpan span(trace_, span_name, track_,
                       {{"blocks", static_cast<int64_t>(ids.size())}});
  cells_.rpcs.Increment();

  const int attempts = std::max(1, options_.retry.max_attempts);
  Status last = Status::IoError("remote: rpc never attempted");
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      cells_.rpc_retries.Increment();
      if (backoff_fn_) backoff_fn_(options_.retry.BackoffFor(attempt - 1));
    }
    if (transport_ == nullptr) {
      Status c = Connect();
      if (!c.ok()) {
        last = c;
        continue;
      }
    }
    std::vector<uint8_t> frame;
    const uint64_t request_id = next_request_id_++;
    switch (type) {
      case FrameType::kRead:
        frame = BuildRead(request_id, ids);
        break;
      case FrameType::kWrite:
        frame = BuildWrite(request_id, ids, write_data, block_size_);
        break;
      default:
        frame = BuildFlush(request_id);
        break;
    }
    Status server_status;
    Status transfer = Exchange(frame, read_out, ids.size() * block_size_,
                               &server_status);
    if (transfer.ok()) {
      // In-band errors (the remote volume failing an op) are the
      // caller's to handle; the connection is still good.
      if (span.active()) {
        span.AddArg("attempts", attempt + 1);
        span.AddArg("ok", server_status.ok() ? 1 : 0);
      }
      return server_status;
    }
    // Transport failure: the connection is suspect. Drop it and
    // re-drive — safe because block RPCs are idempotent.
    if (transfer.IsDeadlineExceeded()) cells_.timeouts.Increment();
    transport_.reset();
    last = transfer;
  }
  if (span.active()) {
    span.AddArg("attempts", attempts);
    span.AddArg("ok", 0);
  }
  return last;
}

Status RemoteBlockDevice::ReadBlock(uint64_t block_id, uint8_t* out) {
  STEGHIDE_RETURN_IF_ERROR(CheckRange(block_id));
  const uint64_t ids[1] = {block_id};
  return Rpc(FrameType::kRead, ids, nullptr, out);
}

Status RemoteBlockDevice::WriteBlock(uint64_t block_id, const uint8_t* data) {
  STEGHIDE_RETURN_IF_ERROR(CheckRange(block_id));
  const uint64_t ids[1] = {block_id};
  return Rpc(FrameType::kWrite, ids, data, nullptr);
}

Status RemoteBlockDevice::ReadBlocks(std::span<const uint64_t> ids,
                                     uint8_t* out) {
  for (uint64_t id : ids) STEGHIDE_RETURN_IF_ERROR(CheckRange(id));
  return Rpc(FrameType::kRead, ids, nullptr, out);
}

Status RemoteBlockDevice::WriteBlocks(std::span<const uint64_t> ids,
                                      const uint8_t* data) {
  for (uint64_t id : ids) STEGHIDE_RETURN_IF_ERROR(CheckRange(id));
  return Rpc(FrameType::kWrite, ids, data, nullptr);
}

Status RemoteBlockDevice::Flush() {
  return Rpc(FrameType::kFlush, {}, nullptr, nullptr);
}

RemoteStats RemoteBlockDevice::stats() const {
  RemoteStats s;
  s.rpcs = cells_.rpcs.value();
  s.rpc_retries = cells_.rpc_retries.value();
  s.bytes_sent = cells_.bytes_sent.value();
  s.bytes_received = cells_.bytes_received.value();
  s.timeouts = cells_.timeouts.value();
  s.reconnects = cells_.reconnects.value();
  s.connect_failures = cells_.connect_failures.value();
  return s;
}

void RemoteBlockDevice::RegisterMetrics(obs::Registry* registry,
                                        const std::string& prefix) {
  registration_ = obs::Registration(registry);
  registration_.Counter(prefix + ".rpcs", &cells_.rpcs);
  registration_.Counter(prefix + ".rpc_retries", &cells_.rpc_retries);
  registration_.Counter(prefix + ".bytes_sent", &cells_.bytes_sent);
  registration_.Counter(prefix + ".bytes_received", &cells_.bytes_received);
  registration_.Counter(prefix + ".timeouts", &cells_.timeouts);
  registration_.Counter(prefix + ".reconnects", &cells_.reconnects);
  registration_.Counter(prefix + ".connect_failures",
                        &cells_.connect_failures);
}

}  // namespace steghide::storage::remote
