#ifndef STEGHIDE_STORAGE_REMOTE_BLOCK_SERVER_H_
#define STEGHIDE_STORAGE_REMOTE_BLOCK_SERVER_H_

// Server half of the block-RPC protocol.
//
// A BlockServer answers wire.h frames against a local BlockDevice; a
// LoopbackEndpoint owns the server thread and the "listening socket" of
// the loopback deployment: clients call Connect() for a fresh
// socketpair connection, and Crash()/Restart() model the remote host
// dying and coming back with its volume intact — the scenario the
// crash/recovery suite drives.

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>

#include "obs/metrics.h"
#include "storage/block_device.h"
#include "storage/remote/transport.h"
#include "util/result.h"

namespace steghide::storage::remote {

/// Frame loop over one connection. The thread calling Serve() is the
/// sole issuer into `backing` for the duration, satisfying the
/// BlockDevice threading contract without any locking below.
class BlockServer {
 public:
  /// Does not take ownership of `backing`.
  explicit BlockServer(BlockDevice* backing) : backing_(backing) {}

  /// Services requests until the peer disconnects or the transport
  /// fails. Malformed frames stop the connection (a stream protocol
  /// cannot resynchronize); backing-device errors are answered in-band
  /// as encoded Status replies and do NOT stop the loop.
  void Serve(Transport* transport);

  uint64_t requests_served() const { return cells_.requests.value(); }
  void RegisterMetrics(obs::Registry* registry, const std::string& prefix);

 private:
  Status ServeOne(Transport* transport);

  BlockDevice* backing_;
  std::vector<uint8_t> payload_;  // request staging, reused across frames
  std::vector<uint8_t> data_;     // read-reply staging
  std::vector<uint64_t> ids_;

  struct Cells {
    obs::CounterCell connections;
    obs::CounterCell requests;
    obs::CounterCell bytes_in;
    obs::CounterCell bytes_out;
  };
  Cells cells_;
  obs::Registration registration_;

  friend class LoopbackEndpoint;
};

/// In-process stand-in for "a block server on another host": one server
/// thread accepting successive loopback connections to a BlockServer.
///
/// Connect()/Crash()/Restart() are thread-safe. The backing device is
/// only ever touched from the endpoint's server thread.
class LoopbackEndpoint {
 public:
  /// Does not take ownership of `backing`. The server thread starts
  /// immediately.
  explicit LoopbackEndpoint(BlockDevice* backing);
  ~LoopbackEndpoint();

  /// Client end of a fresh connection. Fails with kFailedPrecondition
  /// while the server is crashed.
  Result<std::unique_ptr<Transport>> Connect();

  /// Decorates the server end of every future connection (e.g. with the
  /// TransportFaultController's server-side wrapper, so both directions
  /// of the frame stream hit the fault schedule and the frame log).
  /// Thread-safe, but meant to be installed before the first Connect().
  void set_transport_wrapper(
      std::function<std::unique_ptr<Transport>(std::unique_ptr<Transport>)>
          fn);

  /// The remote host dies: the live connection is severed mid-whatever
  /// it was doing and Connect() refuses until Restart(). The backing
  /// volume keeps its durable state (what a machine reboot preserves).
  void Crash();
  void Restart();
  bool crashed() const;

  BlockServer& server() { return server_; }

 private:
  void ServerLoop();

  BlockServer server_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::function<std::unique_ptr<Transport>(std::unique_ptr<Transport>)>
      wrap_fn_;
  std::deque<std::unique_ptr<Transport>> pending_;
  Transport* live_ = nullptr;  // connection currently in Serve()
  bool crashed_ = false;
  bool shutdown_ = false;
  std::thread thread_;
};

}  // namespace steghide::storage::remote

#endif  // STEGHIDE_STORAGE_REMOTE_BLOCK_SERVER_H_
