#include "storage/remote/wire.h"

#include <cstring>
#include <string>

namespace steghide::storage::remote {

namespace {

void PutU32At(uint8_t* p, uint32_t v) {
  p[0] = static_cast<uint8_t>(v);
  p[1] = static_cast<uint8_t>(v >> 8);
  p[2] = static_cast<uint8_t>(v >> 16);
  p[3] = static_cast<uint8_t>(v >> 24);
}

void PutU64At(uint8_t* p, uint64_t v) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<uint8_t>(v >> (8 * i));
}

bool ValidFrameType(uint8_t t) {
  return t >= static_cast<uint8_t>(FrameType::kHello) &&
         t <= static_cast<uint8_t>(FrameType::kReply);
}

}  // namespace

void PutU32(std::vector<uint8_t>& out, uint32_t v) {
  size_t at = out.size();
  out.resize(at + 4);
  PutU32At(out.data() + at, v);
}

void PutU64(std::vector<uint8_t>& out, uint64_t v) {
  size_t at = out.size();
  out.resize(at + 8);
  PutU64At(out.data() + at, v);
}

uint32_t GetU32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | static_cast<uint32_t>(p[1]) << 8 |
         static_cast<uint32_t>(p[2]) << 16 | static_cast<uint32_t>(p[3]) << 24;
}

uint64_t GetU64(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = v << 8 | p[i];
  return v;
}

void EncodeFrameHeader(FrameType type, uint64_t request_id,
                       uint32_t payload_len, uint8_t* out) {
  PutU32At(out, kWireMagic);
  out[4] = static_cast<uint8_t>(type);
  out[5] = 0;  // flags
  out[6] = 0;  // reserved
  out[7] = 0;
  PutU64At(out + 8, request_id);
  PutU32At(out + 16, payload_len);
}

Status DecodeFrameHeader(const uint8_t* in, FrameHeader* out) {
  if (GetU32(in) != kWireMagic) {
    return Status::Corruption("remote: bad frame magic");
  }
  if (!ValidFrameType(in[4])) {
    return Status::Corruption("remote: unknown frame type " +
                              std::to_string(in[4]));
  }
  out->type = static_cast<FrameType>(in[4]);
  out->request_id = GetU64(in + 8);
  out->payload_len = GetU32(in + 16);
  if (out->payload_len > kMaxFramePayload) {
    return Status::Corruption("remote: oversized frame payload");
  }
  return Status::OK();
}

namespace {

std::vector<uint8_t> StartFrame(FrameType type, uint64_t request_id,
                                size_t payload_len) {
  std::vector<uint8_t> frame(kFrameHeaderSize);
  frame.reserve(kFrameHeaderSize + payload_len);
  EncodeFrameHeader(type, request_id, static_cast<uint32_t>(payload_len),
                    frame.data());
  return frame;
}

}  // namespace

std::vector<uint8_t> BuildHello(uint64_t request_id) {
  return StartFrame(FrameType::kHello, request_id, 0);
}

std::vector<uint8_t> BuildHelloReply(uint64_t request_id,
                                     uint64_t num_blocks,
                                     uint32_t block_size) {
  std::vector<uint8_t> frame = StartFrame(FrameType::kHelloReply, request_id,
                                          12);
  PutU64(frame, num_blocks);
  PutU32(frame, block_size);
  return frame;
}

std::vector<uint8_t> BuildRead(uint64_t request_id,
                               std::span<const uint64_t> ids) {
  std::vector<uint8_t> frame =
      StartFrame(FrameType::kRead, request_id, 4 + 8 * ids.size());
  PutU32(frame, static_cast<uint32_t>(ids.size()));
  for (uint64_t id : ids) PutU64(frame, id);
  return frame;
}

std::vector<uint8_t> BuildWrite(uint64_t request_id,
                                std::span<const uint64_t> ids,
                                const uint8_t* data, size_t block_size) {
  const size_t data_len = ids.size() * block_size;
  std::vector<uint8_t> frame =
      StartFrame(FrameType::kWrite, request_id, 4 + 8 * ids.size() + data_len);
  PutU32(frame, static_cast<uint32_t>(ids.size()));
  for (uint64_t id : ids) PutU64(frame, id);
  frame.insert(frame.end(), data, data + data_len);
  return frame;
}

std::vector<uint8_t> BuildFlush(uint64_t request_id) {
  return StartFrame(FrameType::kFlush, request_id, 0);
}

std::vector<uint8_t> BuildReply(uint64_t request_id, const Status& status,
                                const uint8_t* data, size_t data_len) {
  const std::string& msg = status.message();
  std::vector<uint8_t> frame = StartFrame(
      FrameType::kReply, request_id, 8 + msg.size() + data_len);
  PutU32(frame, static_cast<uint32_t>(status.code()));
  PutU32(frame, static_cast<uint32_t>(msg.size()));
  frame.insert(frame.end(), msg.begin(), msg.end());
  if (data_len != 0) frame.insert(frame.end(), data, data + data_len);
  return frame;
}

Status ParseHelloReply(std::span<const uint8_t> payload,
                       uint64_t* num_blocks, uint32_t* block_size) {
  if (payload.size() != 12) {
    return Status::Corruption("remote: malformed hello reply");
  }
  *num_blocks = GetU64(payload.data());
  *block_size = GetU32(payload.data() + 8);
  return Status::OK();
}

Status ParseIds(std::span<const uint8_t> payload, size_t block_size,
                bool with_data, std::vector<uint64_t>* ids,
                const uint8_t** data) {
  if (payload.size() < 4) {
    return Status::Corruption("remote: truncated request payload");
  }
  const uint32_t count = GetU32(payload.data());
  const size_t want =
      4 + 8 * static_cast<size_t>(count) +
      (with_data ? static_cast<size_t>(count) * block_size : 0);
  if (payload.size() != want) {
    return Status::Corruption("remote: request payload length mismatch");
  }
  ids->resize(count);
  for (uint32_t i = 0; i < count; ++i) {
    (*ids)[i] = GetU64(payload.data() + 4 + 8 * static_cast<size_t>(i));
  }
  if (data != nullptr) {
    *data = with_data ? payload.data() + 4 + 8 * static_cast<size_t>(count)
                      : nullptr;
  }
  return Status::OK();
}

Status ParseReply(std::span<const uint8_t> payload, Status* status,
                  std::span<const uint8_t>* data) {
  if (payload.size() < 8) {
    return Status::Corruption("remote: truncated reply payload");
  }
  const uint32_t code = GetU32(payload.data());
  const uint32_t msg_len = GetU32(payload.data() + 4);
  if (payload.size() < 8 + static_cast<size_t>(msg_len)) {
    return Status::Corruption("remote: reply message overruns payload");
  }
  if (code > static_cast<uint32_t>(StatusCode::kDeadlineExceeded)) {
    return Status::Corruption("remote: unknown status code in reply");
  }
  if (code == 0) {
    *status = Status::OK();
  } else {
    *status = Status(
        static_cast<StatusCode>(code),
        std::string(reinterpret_cast<const char*>(payload.data()) + 8,
                    msg_len));
  }
  *data = payload.subspan(8 + msg_len);
  return Status::OK();
}

}  // namespace steghide::storage::remote
