#ifndef STEGHIDE_STORAGE_REMOTE_REMOTE_DEVICE_H_
#define STEGHIDE_STORAGE_REMOTE_REMOTE_DEVICE_H_

// Client half of the block-RPC protocol: a BlockDevice whose backing
// volume lives behind a Transport.
//
// Every call becomes one synchronous RPC (vectored calls stay vectored:
// one kRead/kWrite frame carries the whole batch). Each socket transfer
// runs under a wall-clock deadline, and a transport failure —
// timeout, dropped connection, partition — burns one attempt of a
// RetryPolicy-bounded reconnect-and-re-drive loop. Re-driving is safe
// for the same reason RetryingBlockDevice may retry: the BlockDevice
// contract is idempotent per call. Server-side errors (the remote
// volume returning kIoError) are NOT transport failures; they come back
// in-band and are surfaced to the caller untouched, so the replication
// and retry layers above see exactly what a local replica would give
// them.
//
// Threading: single issuer, like every other device. The reconnect
// machinery is issuer-thread state; only stats()/metrics are safe to
// read concurrently.

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace_log.h"
#include "storage/block_device.h"
#include "storage/remote/transport.h"
#include "storage/remote/wire.h"
#include "storage/retry_device.h"
#include "util/result.h"

namespace steghide::storage::remote {

struct RemoteDeviceOptions {
  /// Wall-clock budget for each socket send/recv of one RPC; 0 waits
  /// forever (only sane on a fault-free loopback).
  double rpc_deadline_ms = 2000.0;
  /// Reconnect-and-re-drive budget per RPC. max_attempts includes the
  /// first try; backoff is charged through the backoff hook between
  /// attempts. Give each replica a distinct jitter seed
  /// (retry.WithJitterSeed) so R clients retrying one fault spread out.
  RetryPolicy retry{.max_attempts = 4, .backoff_ms = 1.0,
                    .backoff_multiplier = 2.0};
};

struct RemoteStats {
  uint64_t rpcs = 0;
  uint64_t rpc_retries = 0;
  uint64_t bytes_sent = 0;
  uint64_t bytes_received = 0;
  uint64_t timeouts = 0;
  uint64_t reconnects = 0;
  uint64_t connect_failures = 0;
};

class RemoteBlockDevice : public BlockDevice {
 public:
  /// Opens a fresh transport to the server. Called for the initial
  /// connection and again on every reconnect.
  using ConnectFn =
      std::function<Result<std::unique_ptr<Transport>>(void)>;

  /// Connects eagerly and fetches the served geometry via a Hello
  /// handshake (retrying within the policy budget), so num_blocks()/
  /// block_size() are valid from construction like every local device.
  static Result<std::unique_ptr<RemoteBlockDevice>> Create(
      ConnectFn connect, RemoteDeviceOptions options = {});

  using BlockDevice::ReadBlock;
  using BlockDevice::WriteBlock;

  Status ReadBlock(uint64_t block_id, uint8_t* out) override;
  Status WriteBlock(uint64_t block_id, const uint8_t* data) override;
  Status ReadBlocks(std::span<const uint64_t> ids, uint8_t* out) override;
  Status WriteBlocks(std::span<const uint64_t> ids,
                     const uint8_t* data) override;
  uint64_t num_blocks() const override { return num_blocks_; }
  size_t block_size() const override { return block_size_; }
  Status Flush() override;

  /// Sink for reconnect-backoff charges (typically the replica's
  /// virtual clock), mirroring RetryingBlockDevice::set_latency_fn.
  void set_backoff_fn(std::function<void(double)> fn) {
    backoff_fn_ = std::move(fn);
  }

  /// One span per RPC on the given log (track "remote" is registered
  /// lazily on first use if `track` is not supplied).
  void set_trace(obs::TraceLog* log) {
    trace_ = log;
    track_ = log != nullptr ? log->RegisterTrack("remote") : 0;
  }
  void set_trace(obs::TraceLog* log, uint32_t track) {
    trace_ = log;
    track_ = track;
  }

  RemoteStats stats() const;
  void RegisterMetrics(obs::Registry* registry, const std::string& prefix);

  bool connected() const { return transport_ != nullptr; }

 private:
  RemoteBlockDevice(ConnectFn connect, RemoteDeviceOptions options)
      : connect_(std::move(connect)), options_(options) {}

  /// Opens a transport and runs the Hello handshake; verifies the
  /// geometry has not changed across a reconnect.
  Status Connect();
  /// One full request/response exchange over the live transport.
  /// `server_status` receives the in-band result.
  Status Exchange(const std::vector<uint8_t>& frame, uint8_t* read_out,
                  size_t read_len, Status* server_status);
  /// The RPC driver: (re)connects, exchanges, and re-drives on
  /// transport failure within the retry budget.
  Status Rpc(FrameType type, std::span<const uint64_t> ids,
             const uint8_t* write_data, uint8_t* read_out);

  ConnectFn connect_;
  RemoteDeviceOptions options_;
  std::unique_ptr<Transport> transport_;
  uint64_t num_blocks_ = 0;
  size_t block_size_ = 0;
  bool geometry_known_ = false;
  bool connected_once_ = false;
  uint64_t next_request_id_ = 1;
  std::vector<uint8_t> reply_payload_;  // reused across RPCs
  std::function<void(double)> backoff_fn_;
  obs::TraceLog* trace_ = nullptr;
  uint32_t track_ = 0;

  struct Cells {
    obs::CounterCell rpcs;
    obs::CounterCell rpc_retries;
    obs::CounterCell bytes_sent;
    obs::CounterCell bytes_received;
    obs::CounterCell timeouts;
    obs::CounterCell reconnects;
    obs::CounterCell connect_failures;
  };
  Cells cells_;
  obs::Registration registration_;
};

}  // namespace steghide::storage::remote

#endif  // STEGHIDE_STORAGE_REMOTE_REMOTE_DEVICE_H_
