#ifndef STEGHIDE_STORAGE_REMOTE_WIRE_H_
#define STEGHIDE_STORAGE_REMOTE_WIRE_H_

// Block-RPC wire format: length-prefixed frames over a byte stream.
//
// Every frame is a fixed 20-byte header followed by `payload_len` bytes:
//
//   [u32 magic "SGBR"][u8 type][u8 flags=0][u16 reserved=0]
//   [u64 request_id][u32 payload_len][payload...]
//
// all fixed-width fields little-endian. The protocol is synchronous
// request/response with one outstanding RPC per connection: the client
// sends kHello/kRead/kWrite/kFlush, the server answers kHelloReply or
// kReply with a matching request_id.
//
// Payloads:
//   kHello       — empty.
//   kHelloReply  — [u64 num_blocks][u32 block_size]: the served geometry.
//   kRead        — [u32 count][count x u64 block_id].
//   kWrite       — [u32 count][count x u64 block_id][count x block_size
//                  data bytes].
//   kFlush       — empty.
//   kReply       — [u32 status_code][u32 msg_len][msg bytes][data bytes]
//                  (data only for successful reads: count x block_size).
//
// Obliviousness: a frame's size is a function of (type, block count,
// block size) only — block ids and payload bytes are fixed-width — so
// the byte lengths on the wire leak nothing beyond what the already-
// pinned per-replica block trace leaks. The distinguisher suite pins
// this by comparing (direction, type, length) frame logs across runs
// with identical request patterns and different contents.

#include <cstdint>
#include <span>
#include <vector>

#include "util/status.h"

namespace steghide::storage::remote {

inline constexpr uint32_t kWireMagic = 0x52424753;  // "SGBR" little-endian
inline constexpr size_t kFrameHeaderSize = 20;
/// Upper bound on a payload a peer may announce; caps allocation when a
/// corrupt or hostile header arrives.
inline constexpr uint32_t kMaxFramePayload = 64u << 20;

enum class FrameType : uint8_t {
  kHello = 1,
  kHelloReply = 2,
  kRead = 3,
  kWrite = 4,
  kFlush = 5,
  kReply = 6,
};

struct FrameHeader {
  FrameType type = FrameType::kHello;
  uint64_t request_id = 0;
  uint32_t payload_len = 0;
};

/// Appends little-endian fixed-width values to a frame under
/// construction.
void PutU32(std::vector<uint8_t>& out, uint32_t v);
void PutU64(std::vector<uint8_t>& out, uint64_t v);
uint32_t GetU32(const uint8_t* p);
uint64_t GetU64(const uint8_t* p);

/// Serializes a header into the first kFrameHeaderSize bytes of a frame.
void EncodeFrameHeader(FrameType type, uint64_t request_id,
                       uint32_t payload_len, uint8_t* out);
/// Validates magic and payload bound; fills `out`.
Status DecodeFrameHeader(const uint8_t* in, FrameHeader* out);

/// Frame builders: each returns the complete frame (header + payload).
std::vector<uint8_t> BuildHello(uint64_t request_id);
std::vector<uint8_t> BuildHelloReply(uint64_t request_id,
                                     uint64_t num_blocks,
                                     uint32_t block_size);
std::vector<uint8_t> BuildRead(uint64_t request_id,
                               std::span<const uint64_t> ids);
std::vector<uint8_t> BuildWrite(uint64_t request_id,
                                std::span<const uint64_t> ids,
                                const uint8_t* data, size_t block_size);
std::vector<uint8_t> BuildFlush(uint64_t request_id);
/// `data`/`data_len` carry read payloads; both zero for writes/flushes
/// and for error replies.
std::vector<uint8_t> BuildReply(uint64_t request_id, const Status& status,
                                const uint8_t* data = nullptr,
                                size_t data_len = 0);

/// Payload parsers (operate on the bytes after the header).
Status ParseHelloReply(std::span<const uint8_t> payload,
                       uint64_t* num_blocks, uint32_t* block_size);
Status ParseIds(std::span<const uint8_t> payload, size_t block_size,
                bool with_data, std::vector<uint64_t>* ids,
                const uint8_t** data);
/// Decodes the embedded Status; `data` is set to the trailing payload
/// bytes (empty unless a successful read reply).
Status ParseReply(std::span<const uint8_t> payload, Status* status,
                  std::span<const uint8_t>* data);

}  // namespace steghide::storage::remote

#endif  // STEGHIDE_STORAGE_REMOTE_WIRE_H_
