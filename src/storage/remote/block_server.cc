#include "storage/remote/block_server.h"

#include <span>
#include <vector>

#include "storage/remote/wire.h"

namespace steghide::storage::remote {

// ---------------------------------------------------------------------------
// BlockServer

void BlockServer::Serve(Transport* transport) {
  cells_.connections.Increment();
  while (ServeOne(transport).ok()) {
  }
}

Status BlockServer::ServeOne(Transport* transport) {
  // No deadline on the server side: an idle connection just waits, and
  // a dead client surfaces as EOF when its end of the pair closes.
  uint8_t hdr[kFrameHeaderSize];
  STEGHIDE_RETURN_IF_ERROR(transport->Recv(hdr, kFrameHeaderSize, 0.0));
  FrameHeader h;
  STEGHIDE_RETURN_IF_ERROR(DecodeFrameHeader(hdr, &h));
  payload_.resize(h.payload_len);
  if (h.payload_len != 0) {
    STEGHIDE_RETURN_IF_ERROR(
        transport->Recv(payload_.data(), h.payload_len, 0.0));
  }
  cells_.requests.Increment();
  cells_.bytes_in.Add(kFrameHeaderSize + h.payload_len);

  const size_t bs = backing_->block_size();
  const std::span<const uint8_t> payload(payload_.data(), payload_.size());
  std::vector<uint8_t> reply;
  switch (h.type) {
    case FrameType::kHello:
      reply = BuildHelloReply(h.request_id, backing_->num_blocks(),
                              static_cast<uint32_t>(bs));
      break;
    case FrameType::kRead: {
      STEGHIDE_RETURN_IF_ERROR(
          ParseIds(payload, bs, /*with_data=*/false, &ids_, nullptr));
      data_.resize(ids_.size() * bs);
      // Backing-device errors travel in-band: the connection stays up,
      // the client's Status comes out of the reply.
      Status op = backing_->ReadBlocks(std::span<const uint64_t>(ids_),
                                       data_.data());
      reply = BuildReply(h.request_id, op, op.ok() ? data_.data() : nullptr,
                         op.ok() ? data_.size() : 0);
      break;
    }
    case FrameType::kWrite: {
      const uint8_t* wdata = nullptr;
      STEGHIDE_RETURN_IF_ERROR(
          ParseIds(payload, bs, /*with_data=*/true, &ids_, &wdata));
      Status op = backing_->WriteBlocks(std::span<const uint64_t>(ids_),
                                        wdata);
      reply = BuildReply(h.request_id, op);
      break;
    }
    case FrameType::kFlush:
      reply = BuildReply(h.request_id, backing_->Flush());
      break;
    case FrameType::kHelloReply:
    case FrameType::kReply:
      return Status::Corruption("remote: reply frame sent to server");
  }
  cells_.bytes_out.Add(reply.size());
  return transport->Send(reply.data(), reply.size(), 0.0);
}

void BlockServer::RegisterMetrics(obs::Registry* registry,
                                  const std::string& prefix) {
  registration_ = obs::Registration(registry);
  registration_.Counter(prefix + ".connections", &cells_.connections);
  registration_.Counter(prefix + ".requests", &cells_.requests);
  registration_.Counter(prefix + ".bytes_in", &cells_.bytes_in);
  registration_.Counter(prefix + ".bytes_out", &cells_.bytes_out);
}

// ---------------------------------------------------------------------------
// LoopbackEndpoint

LoopbackEndpoint::LoopbackEndpoint(BlockDevice* backing) : server_(backing) {
  thread_ = std::thread(&LoopbackEndpoint::ServerLoop, this);
}

LoopbackEndpoint::~LoopbackEndpoint() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
    if (live_ != nullptr) live_->Close();
    pending_.clear();
  }
  cv_.notify_all();
  thread_.join();
}

Result<std::unique_ptr<Transport>> LoopbackEndpoint::Connect() {
  std::unique_ptr<SocketTransport> client_end;
  std::unique_ptr<SocketTransport> server_end;
  STEGHIDE_RETURN_IF_ERROR(SocketTransport::MakePair(&client_end,
                                                     &server_end));
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) {
      return Status::FailedPrecondition("remote: endpoint shut down");
    }
    if (crashed_) {
      return Status::FailedPrecondition("remote: server crashed");
    }
    std::unique_ptr<Transport> server_t = std::move(server_end);
    if (wrap_fn_) server_t = wrap_fn_(std::move(server_t));
    pending_.push_back(std::move(server_t));
  }
  cv_.notify_all();
  return std::unique_ptr<Transport>(std::move(client_end));
}

void LoopbackEndpoint::set_transport_wrapper(
    std::function<std::unique_ptr<Transport>(std::unique_ptr<Transport>)>
        fn) {
  std::lock_guard<std::mutex> lock(mu_);
  wrap_fn_ = std::move(fn);
}

void LoopbackEndpoint::Crash() {
  std::lock_guard<std::mutex> lock(mu_);
  crashed_ = true;
  // Sever the live connection mid-op and refuse the queue: in-flight
  // RPCs fail over on the client, exactly like a host losing power.
  if (live_ != nullptr) live_->Close();
  pending_.clear();
}

void LoopbackEndpoint::Restart() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    crashed_ = false;
  }
  cv_.notify_all();
}

bool LoopbackEndpoint::crashed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return crashed_;
}

void LoopbackEndpoint::ServerLoop() {
  while (true) {
    std::unique_ptr<Transport> conn;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] {
        return shutdown_ || (!crashed_ && !pending_.empty());
      });
      if (shutdown_) return;
      conn = std::move(pending_.front());
      pending_.pop_front();
      live_ = conn.get();
    }
    server_.Serve(conn.get());
    {
      std::lock_guard<std::mutex> lock(mu_);
      live_ = nullptr;
    }
  }
}

}  // namespace steghide::storage::remote
