#include "storage/remote/transport.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>

#include "storage/remote/wire.h"

namespace steghide::storage::remote {

// ---------------------------------------------------------------------------
// SocketTransport

SocketTransport::~SocketTransport() {
  int fd = fd_.load(std::memory_order_relaxed);
  if (fd >= 0) ::close(fd);
}

Status SocketTransport::MakePair(std::unique_ptr<SocketTransport>* first,
                                 std::unique_ptr<SocketTransport>* second) {
  int fds[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
    return Status::IoError(std::string("socketpair: ") +
                           std::strerror(errno));
  }
  *first = std::make_unique<SocketTransport>(fds[0]);
  *second = std::make_unique<SocketTransport>(fds[1]);
  return Status::OK();
}

void SocketTransport::Close() {
  int fd = fd_.load(std::memory_order_relaxed);
  // shutdown (not close) so a thread blocked in poll/recv on this fd
  // wakes with EOF instead of racing a number reuse.
  if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
}

Status SocketTransport::Io(bool is_send, uint8_t* rbuf, const uint8_t* sbuf,
                           size_t n, double deadline_ms) {
  using Clock = std::chrono::steady_clock;
  const bool bounded = deadline_ms > 0.0;
  const Clock::time_point deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double, std::milli>(
                             bounded ? deadline_ms : 0.0));
  size_t done = 0;
  while (done < n) {
    const int fd = fd_.load(std::memory_order_relaxed);
    if (fd < 0) return Status::IoError("remote: transport closed");

    int timeout = -1;
    if (bounded) {
      auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
          deadline - Clock::now());
      if (left.count() <= 0) {
        return Status::DeadlineExceeded(
            is_send ? "remote: send deadline exceeded"
                    : "remote: recv deadline exceeded");
      }
      timeout = static_cast<int>(std::min<int64_t>(left.count() + 1,
                                                   60 * 1000));
    }
    struct pollfd pfd;
    pfd.fd = fd;
    pfd.events = is_send ? POLLOUT : POLLIN;
    pfd.revents = 0;
    const int pr = ::poll(&pfd, 1, timeout);
    if (pr < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("remote: poll: ") +
                             std::strerror(errno));
    }
    if (pr == 0) continue;  // re-check the deadline at the top

    ssize_t k;
    if (is_send) {
      k = ::send(fd, sbuf + done, n - done, MSG_NOSIGNAL);
    } else {
      k = ::recv(fd, rbuf + done, n - done, 0);
    }
    if (k < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      return Status::IoError(std::string(is_send ? "remote: send: "
                                                 : "remote: recv: ") +
                             std::strerror(errno));
    }
    if (k == 0) {
      // EOF: recv on a closed peer, or poll woke after shutdown().
      return Status::IoError("remote: connection closed by peer");
    }
    done += static_cast<size_t>(k);
  }
  return Status::OK();
}

Status SocketTransport::Send(const uint8_t* data, size_t n,
                             double deadline_ms) {
  return Io(/*is_send=*/true, nullptr, data, n, deadline_ms);
}

Status SocketTransport::Recv(uint8_t* out, size_t n, double deadline_ms) {
  return Io(/*is_send=*/false, out, nullptr, n, deadline_ms);
}

// ---------------------------------------------------------------------------
// TransportFaultController

namespace {

bool FrameDirectionMatches(FaultSpec::OpFilter filter, uint8_t frame_type) {
  switch (filter) {
    case FaultSpec::OpFilter::kAny:
      return true;
    case FaultSpec::OpFilter::kRead:
      return frame_type == static_cast<uint8_t>(FrameType::kRead);
    case FaultSpec::OpFilter::kWrite:
      return frame_type == static_cast<uint8_t>(FrameType::kWrite);
  }
  return false;
}

bool IsTransportKind(FaultSpec::Kind kind) {
  return kind == FaultSpec::Kind::kPartition ||
         kind == FaultSpec::Kind::kDelayRpc ||
         kind == FaultSpec::Kind::kDropConnection;
}

}  // namespace

/// Per-connection decorator enforcing the controller's schedule. The
/// client issuer drives Send/Recv; Close and CloseInner may arrive from
/// the controller or endpoint threads (SocketTransport::Close is a
/// thread-safe shutdown).
class FaultyTransport : public Transport {
 public:
  FaultyTransport(TransportFaultController* controller,
                  std::unique_ptr<Transport> inner,
                  TransportFaultController::Side side)
      : controller_(controller), inner_(std::move(inner)), side_(side) {
    controller_->Register(this);
  }
  ~FaultyTransport() override { controller_->Deregister(this); }

  Status Send(const uint8_t* data, size_t n, double deadline_ms) override {
    if (dropped_.load(std::memory_order_relaxed)) {
      return Status::IoError("remote: connection dropped");
    }
    if (side_ == TransportFaultController::Side::kClient) {
      bool drop = false;
      Status injected = controller_->OnClientSend(data, n, &drop);
      if (drop) {
        dropped_.store(true, std::memory_order_relaxed);
        inner_->Close();
      }
      if (!injected.ok()) return injected;
    } else {
      STEGHIDE_RETURN_IF_ERROR(controller_->CheckPartition());
    }
    // Record before the transfer: the record happens-before the peer can
    // see the frame, so with the protocol's one-outstanding alternation
    // the log order is deterministic (request, reply, request, ...) even
    // though two threads append.
    controller_->RecordDelivered(side_, data, n);
    return inner_->Send(data, n, deadline_ms);
  }

  Status Recv(uint8_t* out, size_t n, double deadline_ms) override {
    if (dropped_.load(std::memory_order_relaxed)) {
      return Status::IoError("remote: connection dropped");
    }
    STEGHIDE_RETURN_IF_ERROR(controller_->CheckPartition());
    return inner_->Recv(out, n, deadline_ms);
  }

  void Close() override { inner_->Close(); }

  /// Partition() severs live connections so a blocked Recv wakes
  /// immediately instead of waiting out its wall deadline.
  void CloseInner() { inner_->Close(); }

 private:
  TransportFaultController* controller_;
  std::unique_ptr<Transport> inner_;
  TransportFaultController::Side side_;
  std::atomic<bool> dropped_{false};
};

TransportFaultController::TransportFaultController(FaultPlan plan)
    : plan_(std::move(plan)), states_(plan_.faults.size()) {}

std::unique_ptr<Transport> TransportFaultController::Wrap(
    std::unique_ptr<Transport> inner, Side side) {
  return std::make_unique<FaultyTransport>(this, std::move(inner), side);
}

void TransportFaultController::Register(FaultyTransport* t) {
  std::lock_guard<std::mutex> lock(mu_);
  live_.push_back(t);
}

void TransportFaultController::Deregister(FaultyTransport* t) {
  std::lock_guard<std::mutex> lock(mu_);
  live_.erase(std::remove(live_.begin(), live_.end(), t), live_.end());
}

void TransportFaultController::Partition() {
  std::lock_guard<std::mutex> lock(mu_);
  partitioned_ = true;
  for (FaultyTransport* t : live_) t->CloseInner();
}

void TransportFaultController::Heal() {
  std::lock_guard<std::mutex> lock(mu_);
  partitioned_ = false;
}

bool TransportFaultController::partitioned() const {
  std::lock_guard<std::mutex> lock(mu_);
  return partitioned_;
}

void TransportFaultController::set_latency_fn(std::function<void(double)> fn) {
  std::lock_guard<std::mutex> lock(mu_);
  latency_fn_ = std::move(fn);
}

void TransportFaultController::set_frame_log(std::vector<FrameRecord>* log) {
  std::lock_guard<std::mutex> lock(mu_);
  frame_log_ = log;
}

Status TransportFaultController::OnClientSend(const uint8_t* frame, size_t n,
                                              bool* drop_connection) {
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t index = frame_index_++;
  cells_.frames.Increment();
  const uint8_t type = n > 4 ? frame[4] : 0;

  if (partitioned_) {
    cells_.partitioned_frames.Increment();
    return Status::DeadlineExceeded("remote: link partitioned");
  }

  for (size_t i = 0; i < plan_.faults.size(); ++i) {
    const FaultSpec& spec = plan_.faults[i];
    if (!IsTransportKind(spec.kind)) continue;  // block-layer spec
    if (!FrameDirectionMatches(spec.ops, type)) continue;
    if (index < spec.start_after) continue;
    const uint64_t nth = spec.every_nth == 0 ? 1 : spec.every_nth;
    if ((index - spec.start_after) % nth != 0) continue;
    SpecState& state = states_[i];
    if (spec.max_fires != 0 && state.fires >= spec.max_fires) continue;
    ++state.fires;

    switch (spec.kind) {
      case FaultSpec::Kind::kPartition:
        partitioned_ = true;
        cells_.partitioned_frames.Increment();
        for (FaultyTransport* t : live_) t->CloseInner();
        return Status::DeadlineExceeded("remote: link partitioned");
      case FaultSpec::Kind::kDelayRpc:
        cells_.delayed_frames.Increment();
        if (latency_fn_) latency_fn_(spec.latency_ms);
        break;  // delivered after the delay
      case FaultSpec::Kind::kDropConnection:
        cells_.dropped_connections.Increment();
        *drop_connection = true;
        return Status::IoError("remote: connection dropped by fault");
      default:
        break;
    }
  }
  return Status::OK();
}

Status TransportFaultController::CheckPartition() {
  std::lock_guard<std::mutex> lock(mu_);
  if (partitioned_) {
    return Status::DeadlineExceeded("remote: link partitioned");
  }
  return Status::OK();
}

void TransportFaultController::RecordDelivered(Side side,
                                               const uint8_t* frame,
                                               size_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  if (frame_log_ == nullptr) return;
  FrameRecord rec;
  rec.dir = static_cast<uint8_t>(side);
  rec.type = n > 4 ? frame[4] : 0;
  rec.len = static_cast<uint32_t>(n);
  frame_log_->push_back(rec);
}

TransportFaultStats TransportFaultController::stats() const {
  TransportFaultStats s;
  s.frames = cells_.frames.value();
  s.partitioned_frames = cells_.partitioned_frames.value();
  s.delayed_frames = cells_.delayed_frames.value();
  s.dropped_connections = cells_.dropped_connections.value();
  return s;
}

void TransportFaultController::RegisterMetrics(obs::Registry* registry,
                                               const std::string& prefix) {
  registration_ = obs::Registration(registry);
  registration_.Counter(prefix + ".frames", &cells_.frames);
  registration_.Counter(prefix + ".partitioned_frames",
                        &cells_.partitioned_frames);
  registration_.Counter(prefix + ".delayed_frames", &cells_.delayed_frames);
  registration_.Counter(prefix + ".dropped_connections",
                        &cells_.dropped_connections);
}

}  // namespace steghide::storage::remote
