#include "storage/fault_device.h"

#include <cstring>

namespace steghide::storage {

namespace {

bool DirectionMatches(FaultSpec::OpFilter filter, bool is_write) {
  switch (filter) {
    case FaultSpec::OpFilter::kAny:
      return true;
    case FaultSpec::OpFilter::kRead:
      return !is_write;
    case FaultSpec::OpFilter::kWrite:
      return is_write;
  }
  return false;
}

/// splitmix64: a full-period mixer, so per-op corruption patterns are
/// decorrelated even for adjacent (op, block) pairs.
uint64_t SplitMix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

FaultInjectionBlockDevice::FaultInjectionBlockDevice(BlockDevice* backing,
                                                     FaultPlan plan)
    : backing_(backing),
      plan_(std::move(plan)),
      states_(plan_.faults.size()) {}

uint64_t FaultInjectionBlockDevice::Mix(uint64_t op_index,
                                        uint64_t block_id) const {
  return SplitMix(plan_.seed ^ SplitMix(op_index ^ SplitMix(block_id)));
}

Status FaultInjectionBlockDevice::Op(uint64_t block_id, uint8_t* out,
                                     const uint8_t* data) {
  const bool is_write = data != nullptr;
  const uint64_t index = op_index_++;
  cells_.ops.Increment();

  if (dead_.load(std::memory_order_relaxed)) {
    cells_.injected_errors.Increment();
    return Status::IoError("fault injection: device dead");
  }

  bool corrupt = false;
  for (size_t i = 0; i < plan_.faults.size(); ++i) {
    const FaultSpec& spec = plan_.faults[i];
    SpecState& state = states_[i];
    const bool in_range =
        block_id >= spec.first_block && block_id <= spec.last_block;
    // A tripped sticky region fails every later matching op outright,
    // no op-count arithmetic involved.
    if (spec.kind == FaultSpec::Kind::kStickyError && state.latched &&
        in_range && DirectionMatches(spec.ops, is_write)) {
      cells_.injected_errors.Increment();
      return Status::IoError("fault injection: sticky error");
    }
    if (!in_range || !DirectionMatches(spec.ops, is_write)) continue;
    if (index < spec.start_after) continue;
    const uint64_t nth = spec.every_nth == 0 ? 1 : spec.every_nth;
    if ((index - spec.start_after) % nth != 0) continue;
    if (spec.max_fires != 0 && state.fires >= spec.max_fires) continue;
    ++state.fires;

    switch (spec.kind) {
      case FaultSpec::Kind::kTransientError:
        cells_.injected_errors.Increment();
        return Status::IoError("fault injection: transient error");
      case FaultSpec::Kind::kStickyError:
        state.latched = true;
        cells_.injected_errors.Increment();
        return Status::IoError("fault injection: sticky error");
      case FaultSpec::Kind::kDeath:
        dead_.store(true, std::memory_order_relaxed);
        cells_.injected_errors.Increment();
        return Status::IoError("fault injection: device died");
      case FaultSpec::Kind::kTorn: {
        if (!is_write) break;  // torn sectors are a write phenomenon
        // Persist a seeded-length prefix of the new image over the old
        // block, then fail: exactly what a power cut mid-sector leaves.
        const size_t bs = backing_->block_size();
        scratch_.resize(bs);
        STEGHIDE_RETURN_IF_ERROR(
            backing_->ReadBlock(block_id, scratch_.data()));
        const size_t torn_len = 1 + Mix(index, block_id) % (bs - 1);
        std::memcpy(scratch_.data(), data, torn_len);
        STEGHIDE_RETURN_IF_ERROR(
            backing_->WriteBlock(block_id, scratch_.data()));
        cells_.torn_writes.Increment();
        cells_.injected_errors.Increment();
        return Status::IoError("fault injection: torn write");
      }
      case FaultSpec::Kind::kCorrupt:
        if (!is_write) corrupt = true;
        break;
      case FaultSpec::Kind::kLatency:
        cells_.latency_events.Increment();
        if (latency_fn_) latency_fn_(spec.latency_ms);
        break;
      case FaultSpec::Kind::kPartition:
      case FaultSpec::Kind::kDelayRpc:
      case FaultSpec::Kind::kDropConnection:
        // Transport-layer kinds: interpreted by TransportFaultController
        // against the frame stream, a no-op on the block-op stream.
        break;
    }
  }

  if (is_write) {
    return backing_->WriteBlock(block_id, data);
  }
  STEGHIDE_RETURN_IF_ERROR(backing_->ReadBlock(block_id, out));
  if (corrupt) {
    // Flip a handful of seeded bytes: silent bit-rot the caller cannot
    // see in the Status, only in the payload (or via a replica scrub).
    const size_t bs = backing_->block_size();
    uint64_t r = Mix(index, block_id);
    const size_t flips = 1 + r % 8;
    for (size_t f = 0; f < flips; ++f) {
      r = SplitMix(r);
      out[r % bs] ^= static_cast<uint8_t>(0x01u << ((r >> 32) % 8));
    }
    cells_.corrupted_blocks.Increment();
  }
  return Status::OK();
}

Status FaultInjectionBlockDevice::ReadBlock(uint64_t block_id, uint8_t* out) {
  STEGHIDE_RETURN_IF_ERROR(CheckRange(block_id));
  return Op(block_id, out, nullptr);
}

Status FaultInjectionBlockDevice::WriteBlock(uint64_t block_id,
                                             const uint8_t* data) {
  STEGHIDE_RETURN_IF_ERROR(CheckRange(block_id));
  return Op(block_id, nullptr, data);
}

Status FaultInjectionBlockDevice::ReadBlocks(std::span<const uint64_t> ids,
                                             uint8_t* out) {
  // Per-block issue in submission order, like the BlockDevice default:
  // every block consumes its own op index, so "every Nth op" plans see
  // vectored and single-block traffic identically.
  const size_t bs = backing_->block_size();
  for (size_t i = 0; i < ids.size(); ++i) {
    STEGHIDE_RETURN_IF_ERROR(ReadBlock(ids[i], out + i * bs));
  }
  return Status::OK();
}

Status FaultInjectionBlockDevice::WriteBlocks(std::span<const uint64_t> ids,
                                              const uint8_t* data) {
  // A mid-batch failure leaves the earlier blocks durable — the torn
  // *batch* the retry/replication layers must cope with.
  const size_t bs = backing_->block_size();
  for (size_t i = 0; i < ids.size(); ++i) {
    STEGHIDE_RETURN_IF_ERROR(WriteBlock(ids[i], data + i * bs));
  }
  return Status::OK();
}

Status FaultInjectionBlockDevice::Flush() {
  if (dead_.load(std::memory_order_relaxed)) {
    cells_.injected_errors.Increment();
    return Status::IoError("fault injection: device dead");
  }
  return backing_->Flush();
}

void FaultInjectionBlockDevice::RegisterMetrics(obs::Registry* registry,
                                                const std::string& prefix) {
  registration_ = obs::Registration(registry);
  registration_.Counter(prefix + ".ops", &cells_.ops);
  registration_.Counter(prefix + ".injected_errors",
                        &cells_.injected_errors);
  registration_.Counter(prefix + ".corrupted_blocks",
                        &cells_.corrupted_blocks);
  registration_.Counter(prefix + ".torn_writes", &cells_.torn_writes);
  registration_.Counter(prefix + ".latency_events", &cells_.latency_events);
}

}  // namespace steghide::storage
