#include "storage/file_block_device.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <limits>

namespace steghide::storage {

namespace {
Status ErrnoStatus(const std::string& what) {
  return Status::IoError(what + ": " + std::strerror(errno));
}
}  // namespace

Result<FileBlockDevice> FileBlockDevice::Create(const std::string& path,
                                                uint64_t num_blocks,
                                                size_t block_size) {
  if (block_size == 0) {
    return Status::InvalidArgument("block size must be non-zero");
  }
  // off_t is signed; reject volumes whose byte size cannot be addressed.
  if (num_blocks > static_cast<uint64_t>(
                       std::numeric_limits<off_t>::max()) / block_size) {
    return Status::InvalidArgument("volume size overflows file offsets");
  }
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0600);
  if (fd < 0) return ErrnoStatus("open " + path);
  const off_t size = static_cast<off_t>(num_blocks * block_size);
  if (::ftruncate(fd, size) != 0) {
    ::close(fd);
    return ErrnoStatus("ftruncate " + path);
  }
  return FileBlockDevice(fd, num_blocks, block_size);
}

Result<FileBlockDevice> FileBlockDevice::Open(const std::string& path,
                                              size_t block_size) {
  if (block_size == 0) {
    return Status::InvalidArgument("block size must be non-zero");
  }
  const int fd = ::open(path.c_str(), O_RDWR);
  if (fd < 0) return ErrnoStatus("open " + path);
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return ErrnoStatus("fstat " + path);
  }
  if (st.st_size % static_cast<off_t>(block_size) != 0) {
    ::close(fd);
    return Status::InvalidArgument(path +
                                   " size is not a multiple of block size");
  }
  return FileBlockDevice(fd, static_cast<uint64_t>(st.st_size) / block_size,
                         block_size);
}

FileBlockDevice::FileBlockDevice(FileBlockDevice&& other) noexcept
    : fd_(other.fd_),
      num_blocks_(other.num_blocks_),
      block_size_(other.block_size_) {
  other.fd_ = -1;
}

FileBlockDevice& FileBlockDevice::operator=(FileBlockDevice&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = other.fd_;
    num_blocks_ = other.num_blocks_;
    block_size_ = other.block_size_;
    other.fd_ = -1;
  }
  return *this;
}

FileBlockDevice::~FileBlockDevice() {
  if (fd_ >= 0) ::close(fd_);
}

Status FileBlockDevice::ReadBlock(uint64_t block_id, uint8_t* out) {
  STEGHIDE_SERIAL_CALL_GUARD(serial_check_, "FileBlockDevice");
  STEGHIDE_RETURN_IF_ERROR(CheckRange(block_id));
  const off_t off = static_cast<off_t>(block_id * block_size_);
  size_t done = 0;
  while (done < block_size_) {
    const ssize_t n = ::pread(fd_, out + done, block_size_ - done,
                              off + static_cast<off_t>(done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("pread");
    }
    if (n == 0) return Status::IoError("short read past end of volume");
    done += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status FileBlockDevice::WriteBlock(uint64_t block_id, const uint8_t* data) {
  STEGHIDE_SERIAL_CALL_GUARD(serial_check_, "FileBlockDevice");
  STEGHIDE_RETURN_IF_ERROR(CheckRange(block_id));
  const off_t off = static_cast<off_t>(block_id * block_size_);
  size_t done = 0;
  while (done < block_size_) {
    const ssize_t n = ::pwrite(fd_, data + done, block_size_ - done,
                               off + static_cast<off_t>(done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("pwrite");
    }
    // POSIX allows a zero-progress pwrite (e.g. on some special files);
    // looping on it would spin forever.
    if (n == 0) return Status::IoError("pwrite made no progress");
    done += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status FileBlockDevice::ReadBlocks(std::span<const uint64_t> ids,
                                   uint8_t* out) {
  STEGHIDE_SERIAL_CALL_GUARD(serial_check_, "FileBlockDevice");
  return BlockDevice::ReadBlocks(ids, out);
}

Status FileBlockDevice::WriteBlocks(std::span<const uint64_t> ids,
                                    const uint8_t* data) {
  STEGHIDE_SERIAL_CALL_GUARD(serial_check_, "FileBlockDevice");
  return BlockDevice::WriteBlocks(ids, data);
}

Status FileBlockDevice::Flush() {
  STEGHIDE_SERIAL_CALL_GUARD(serial_check_, "FileBlockDevice");
  // A moved-from device owns no descriptor; flushing it is a no-op
  // rather than an EBADF from fsync(-1).
  if (fd_ < 0) return Status::OK();
  if (::fsync(fd_) != 0) return ErrnoStatus("fsync");
  return Status::OK();
}

}  // namespace steghide::storage
