#ifndef STEGHIDE_STORAGE_DISK_MODEL_H_
#define STEGHIDE_STORAGE_DISK_MODEL_H_

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace steghide::storage {

/// Calibration parameters for the rotational-disk timing model. Defaults
/// approximate the paper's testbed (Table 1: Ultra ATA/100 disk, 20 GB,
/// circa 2003): ~8.9 ms average seek, 7200 RPM, 40 MB/s media rate.
struct DiskModelParams {
  /// Fixed per-request command/controller overhead.
  double controller_overhead_ms = 0.3;
  /// Minimum (track-to-track) seek.
  double track_to_track_ms = 1.0;
  /// Average seek, i.e. the cost of a seek across one third of the disk.
  double avg_seek_ms = 8.9;
  /// Full-stroke seek cap.
  double full_stroke_ms = 17.0;
  /// Spindle speed; average rotational latency is half a revolution.
  double rpm = 7200.0;
  /// Sustained media transfer rate.
  double transfer_mb_per_s = 40.0;
};

/// Virtual-time model of a single-spindle disk.
///
/// All performance results in this reproduction are measured on the
/// model's virtual clock rather than host wall-time (see DESIGN.md §1).
/// The model captures the two effects the paper's evaluation hinges on:
///
///  1. a random block access pays seek + rotational latency + transfer,
///     while a sequential access pays transfer only — a gap of roughly two
///     orders of magnitude at 4 KB blocks; and
///  2. interleaved request streams (concurrency) destroy sequential runs,
///     which is why CleanDisk/FragDisk lose their advantage in
///     Figures 10(b) and 11(c).
///
/// Seek time is modelled as t2t + k*sqrt(distance), calibrated so that a
/// seek across one third of the disk costs avg_seek_ms, capped at
/// full_stroke_ms. Rotational latency uses the expected half revolution.
class DiskModel {
 public:
  DiskModel(const DiskModelParams& params, uint64_t num_blocks,
            size_t block_size);

  /// Accounts one block access at `block_id`, advances the head and the
  /// virtual clock, and returns the service time in ms.
  double Access(uint64_t block_id);

  /// Service time the *next* access to `block_id` would take, without
  /// performing it.
  double PeekAccessCost(uint64_t block_id) const;

  /// Advances the virtual clock without moving the head (e.g. agent-side
  /// computation that the experiment wants to account for).
  void AdvanceClock(double ms) {
    clock_ms_.fetch_add(ms, std::memory_order_relaxed);
  }

  /// The virtual clock is atomic so observer threads (latency stamps in
  /// the request dispatcher, progress sampling) can read it while the
  /// single issuing thread advances it. All other model state keeps the
  /// single-issuer contract of block_device.h.
  double clock_ms() const { return clock_ms_.load(std::memory_order_relaxed); }
  uint64_t sequential_accesses() const { return sequential_accesses_; }
  uint64_t random_accesses() const { return random_accesses_; }

  /// Forgets the head position, so the next access is charged as random.
  void InvalidateHeadPosition() { has_position_ = false; }

  const DiskModelParams& params() const { return params_; }

 private:
  double SeekTime(uint64_t distance) const;

  DiskModelParams params_;
  uint64_t num_blocks_;
  double transfer_ms_per_block_;
  double avg_rotational_ms_;
  double seek_coeff_;  // k in t2t + k*sqrt(d)

  std::atomic<double> clock_ms_{0.0};
  bool has_position_ = false;
  uint64_t head_block_ = 0;  // next block under the head
  uint64_t sequential_accesses_ = 0;
  uint64_t random_accesses_ = 0;
};

}  // namespace steghide::storage

#endif  // STEGHIDE_STORAGE_DISK_MODEL_H_
