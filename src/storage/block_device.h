#ifndef STEGHIDE_STORAGE_BLOCK_DEVICE_H_
#define STEGHIDE_STORAGE_BLOCK_DEVICE_H_

#include <cstdint>
#include <span>

#include "util/bytes.h"
#include "util/status.h"

namespace steghide::storage {

/// Default block size used throughout the reproduction; matches the
/// paper's workload parameters (Table 2: 4 KB disk blocks).
inline constexpr size_t kDefaultBlockSize = 4096;

/// Abstract fixed-block-size random-access storage volume — the "raw
/// storage" of the paper's system model (Figure 3). Implementations:
///
///  * MemBlockDevice   — RAM-backed, for tests and simulation.
///  * FileBlockDevice  — backed by a host file.
///  * SimBlockDevice   — decorates another device with a rotational-disk
///                       timing model and a virtual clock.
///  * TraceBlockDevice — decorates another device, recording the I/O
///                       sequence an attacker monitoring the storage would
///                       observe.
///
/// Block ids are zero-based.
///
/// ## Threading contract
///
/// Raw devices and per-stream decorators (Mem/File/Sim/Trace) are NOT
/// thread-safe: calls into one device object must never overlap. The
/// supported concurrency model is **single issuer** — exactly one thread
/// drives a device at any moment. The issuing thread may change over a
/// volume's lifetime (benchmarks format on the main thread, then hand
/// the stack to a RequestDispatcher's I/O thread); only *overlap* is a
/// contract violation. FileBlockDevice and MemBlockDevice enforce this
/// in debug builds via SerialCallChecker (thread_check.h) and abort with
/// a diagnostic on concurrent entry.
///
/// Layers that admit true multi-threaded callers synchronize above this
/// contract instead:
///
///  * BlockCache is fully thread-safe (sharded LRU locks plus an internal
///    backing mutex), so it can front a non-thread-safe device for
///    concurrent readers;
///  * StegFsCore / ObliviousStore serialize at operation / scan-pass
///    granularity;
///  * agent::RequestDispatcher funnels all user I/O through one issuing
///    thread, which is how the multi-user serving path satisfies this
///    contract without per-block locking.
class BlockDevice {
 public:
  virtual ~BlockDevice() = default;

  /// Reads block `block_id` into `out` (block_size() bytes).
  virtual Status ReadBlock(uint64_t block_id, uint8_t* out) = 0;

  /// Writes block_size() bytes of `data` to block `block_id`.
  virtual Status WriteBlock(uint64_t block_id, const uint8_t* data) = 0;

  /// Vectored read: block `ids[i]` lands at `out + i * block_size()`.
  /// `out` must hold ids.size() * block_size() bytes. The default issues
  /// the single-block calls in submission order, so decorators that do
  /// not override it (tracing, timing) keep their per-block semantics
  /// bit-for-bit; caching/scheduling decorators override it to batch.
  virtual Status ReadBlocks(std::span<const uint64_t> ids, uint8_t* out);

  /// Vectored write: block `ids[i]` is written from
  /// `data + i * block_size()`. Same ordering contract as ReadBlocks.
  virtual Status WriteBlocks(std::span<const uint64_t> ids,
                             const uint8_t* data);

  virtual uint64_t num_blocks() const = 0;
  virtual size_t block_size() const = 0;

  /// Persists buffered state, where applicable.
  virtual Status Flush() { return Status::OK(); }

  /// Convenience wrappers with bounds-checked Bytes buffers.
  Status ReadBlock(uint64_t block_id, Bytes& out);
  Status WriteBlock(uint64_t block_id, const Bytes& data);
  /// Vectored convenience: resizes `out` to ids.size() * block_size().
  Status ReadBlocks(std::span<const uint64_t> ids, Bytes& out);

 protected:
  /// Shared bounds check for implementations.
  Status CheckRange(uint64_t block_id) const;
};

}  // namespace steghide::storage

#endif  // STEGHIDE_STORAGE_BLOCK_DEVICE_H_
