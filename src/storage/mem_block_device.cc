#include "storage/mem_block_device.h"

#include <cstring>

namespace steghide::storage {

MemBlockDevice::MemBlockDevice(uint64_t num_blocks, size_t block_size)
    : num_blocks_(num_blocks),
      block_size_(block_size),
      data_(num_blocks * block_size, 0) {}

Status MemBlockDevice::ReadBlock(uint64_t block_id, uint8_t* out) {
  STEGHIDE_SERIAL_CALL_GUARD(serial_check_, "MemBlockDevice");
  STEGHIDE_RETURN_IF_ERROR(CheckRange(block_id));
  std::memcpy(out, data_.data() + block_id * block_size_, block_size_);
  return Status::OK();
}

Status MemBlockDevice::WriteBlock(uint64_t block_id, const uint8_t* data) {
  STEGHIDE_SERIAL_CALL_GUARD(serial_check_, "MemBlockDevice");
  STEGHIDE_RETURN_IF_ERROR(CheckRange(block_id));
  std::memcpy(data_.data() + block_id * block_size_, data, block_size_);
  return Status::OK();
}

Status MemBlockDevice::ReadBlocks(std::span<const uint64_t> ids,
                                  uint8_t* out) {
  STEGHIDE_SERIAL_CALL_GUARD(serial_check_, "MemBlockDevice");
  return BlockDevice::ReadBlocks(ids, out);
}

Status MemBlockDevice::WriteBlocks(std::span<const uint64_t> ids,
                                   const uint8_t* data) {
  STEGHIDE_SERIAL_CALL_GUARD(serial_check_, "MemBlockDevice");
  return BlockDevice::WriteBlocks(ids, data);
}

const uint8_t* MemBlockDevice::BlockData(uint64_t block_id) const {
  return data_.data() + block_id * block_size_;
}

}  // namespace steghide::storage
