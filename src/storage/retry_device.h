#ifndef STEGHIDE_STORAGE_RETRY_DEVICE_H_
#define STEGHIDE_STORAGE_RETRY_DEVICE_H_

#include <cstdint>
#include <functional>

#include "obs/metrics.h"
#include "storage/block_device.h"

namespace steghide::storage {

/// Bounded exponential-backoff retry budget, shared by the
/// RetryingBlockDevice decorator and the IoScheduler issue path.
struct RetryPolicy {
  /// Total attempts including the first; <= 1 disables retrying.
  int max_attempts = 3;
  /// Virtual milliseconds charged (through the latency hook) before the
  /// first retry; doubles by `backoff_multiplier` per further attempt.
  double backoff_ms = 0.5;
  double backoff_multiplier = 2.0;
  /// Deterministic jitter: each backoff is scaled by a factor drawn
  /// uniformly from [1 - jitter, 1 + jitter], derived only from
  /// (jitter_seed, retry_index). R replicas retrying the same transient
  /// fault get decorrelated schedules when given distinct seeds, while
  /// twin runs with equal seeds stay byte-identical. 0 disables jitter
  /// and reproduces the exact un-jittered ladder.
  double jitter = 0.0;
  uint64_t jitter_seed = 0;

  double BackoffFor(int retry_index) const {
    double ms = backoff_ms;
    for (int i = 0; i < retry_index; ++i) ms *= backoff_multiplier;
    if (jitter > 0.0) {
      // SplitMix64 over (seed, index): a stateless mix keeps BackoffFor
      // a pure function, so concurrent callers and replayed schedules
      // agree without shared RNG state.
      uint64_t z = jitter_seed + 0x9e3779b97f4a7c15ULL *
                                     (static_cast<uint64_t>(retry_index) + 1);
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      z ^= z >> 31;
      double unit = static_cast<double>(z >> 11) * 0x1.0p-53;  // [0, 1)
      ms *= 1.0 - jitter + 2.0 * jitter * unit;
    }
    return ms;
  }

  /// The same policy with a seed mixed in — how a mirror hands each of
  /// its R replicas a decorrelated copy of one configured budget.
  RetryPolicy WithJitterSeed(uint64_t seed) const {
    RetryPolicy p = *this;
    p.jitter_seed = seed;
    return p;
  }
};

/// Counter snapshot of a retry layer's activity.
struct RetryStats {
  uint64_t retries = 0;
  /// Calls that failed at least once but succeeded within the budget.
  uint64_t recovered = 0;
  /// Calls that burned the whole budget and surfaced the error.
  uint64_t exhausted = 0;
};

/// Decorator that retries kIoError failures of the backing device.
/// Retrying is safe here because the BlockDevice contract is idempotent
/// per call: re-reading a block is free of side effects, and re-writing
/// the same image over a torn write simply completes it. Non-I/O errors
/// (kInvalidArgument etc.) are never retried. Vectored calls are retried
/// whole, so a torn batch is re-driven from its first block — decorators
/// below see the same op multiset either way.
class RetryingBlockDevice : public BlockDevice {
 public:
  /// Does not take ownership of `backing`.
  explicit RetryingBlockDevice(BlockDevice* backing, RetryPolicy policy = {})
      : backing_(backing), policy_(policy) {}

  using BlockDevice::ReadBlock;
  using BlockDevice::WriteBlock;

  Status ReadBlock(uint64_t block_id, uint8_t* out) override;
  Status WriteBlock(uint64_t block_id, const uint8_t* data) override;
  Status ReadBlocks(std::span<const uint64_t> ids, uint8_t* out) override;
  Status WriteBlocks(std::span<const uint64_t> ids,
                     const uint8_t* data) override;
  uint64_t num_blocks() const override { return backing_->num_blocks(); }
  size_t block_size() const override { return backing_->block_size(); }
  Status Flush() override;

  const RetryPolicy& policy() const { return policy_; }
  void set_policy(const RetryPolicy& policy) { policy_ = policy; }

  /// Sink for backoff charges (typically DiskModel::AdvanceClock).
  void set_latency_fn(std::function<void(double)> fn) {
    latency_fn_ = std::move(fn);
  }

  RetryStats stats() const {
    RetryStats s;
    s.retries = cells_.retries.value();
    s.recovered = cells_.recovered.value();
    s.exhausted = cells_.exhausted.value();
    return s;
  }
  void RegisterMetrics(obs::Registry* registry, const std::string& prefix);

  BlockDevice* backing() { return backing_; }

 private:
  struct Cells {
    obs::CounterCell retries;
    obs::CounterCell recovered;
    obs::CounterCell exhausted;
  };

  Status Retry(const std::function<Status()>& call);

  BlockDevice* backing_;
  RetryPolicy policy_;
  std::function<void(double)> latency_fn_;
  Cells cells_;
  obs::Registration registration_;
};

}  // namespace steghide::storage

#endif  // STEGHIDE_STORAGE_RETRY_DEVICE_H_
