#ifndef STEGHIDE_STORAGE_VOLUME_SET_H_
#define STEGHIDE_STORAGE_VOLUME_SET_H_

#include <atomic>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "util/result.h"

#include "storage/block_device.h"
#include "storage/fault_device.h"
#include "storage/mem_block_device.h"
#include "storage/remote/block_server.h"
#include "storage/remote/remote_device.h"
#include "storage/remote/transport.h"
#include "storage/replicated_device.h"
#include "storage/sim_device.h"
#include "storage/trace_device.h"

namespace steghide::storage {

/// Fixed pool of shard worker threads with a fork/join surface. One
/// thread per shard lives for the pool's lifetime, so every I/O a shard
/// ever sees is issued by the same thread — the strongest form of the
/// single-issuer contract in block_device.h, and the property that makes
/// the sharded fan-out trivially race-free: shard k's thread is the sole
/// issuer for shard k's device, and Run() joins before returning, so no
/// two jobs for the same shard can ever overlap.
class ShardPool {
 public:
  explicit ShardPool(size_t shards);
  ~ShardPool();

  ShardPool(const ShardPool&) = delete;
  ShardPool& operator=(const ShardPool&) = delete;

  size_t size() const { return threads_.size(); }

  /// Runs jobs[k] on shard thread k (null entries are skipped) and blocks
  /// until every job has finished — the join barrier. Returns the first
  /// non-OK result in shard order. Not reentrant: one Run() at a time.
  Status Run(std::vector<std::function<Status()>> jobs);

 private:
  void WorkerLoop(size_t shard);

  struct Slot {
    std::function<Status()> job;
    bool has_job = false;
    Status result;
  };

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::vector<Slot> slots_;
  size_t outstanding_ = 0;
  bool stop_ = false;
  std::vector<std::thread> threads_;
};

/// Stripes a flat block space across K backing volumes, block-granular
/// round-robin: global block g lives on shard g % K at local offset
/// g / K. A sequence of ascending global ids therefore maps to ascending
/// (and for stride-K runs, sequential) local ids on every shard, which
/// preserves the rotational-disk locality the elevator schedule creates.
///
/// All I/O — single-block and vectored — is executed on the owning
/// shard's pool thread; vectored calls fan out to every involved shard in
/// parallel and join before returning. The facade itself follows the
/// single-issuer contract of block_device.h (callers must not overlap
/// calls into it); underneath, shard thread k is the sole issuer for
/// shards[k] over the device's whole lifetime.
///
/// Virtual time: with a per-shard clock sampler installed (normally each
/// shard's SimBlockDevice clock), the facade maintains a parallel virtual
/// clock — each fan-out advances it by the *maximum* per-shard clock
/// delta, i.e. the slowest spindle in the join, not the sum. This is the
/// clock the sharded benchmarks measure.
class ShardedBlockDevice : public BlockDevice {
 public:
  /// Does not take ownership of `shards`, which must all outlive this
  /// object, share one block size, and be non-empty.
  explicit ShardedBlockDevice(std::vector<BlockDevice*> shards);

  using BlockDevice::ReadBlock;
  using BlockDevice::WriteBlock;
  using BlockDevice::ReadBlocks;

  Status ReadBlock(uint64_t block_id, uint8_t* out) override;
  Status WriteBlock(uint64_t block_id, const uint8_t* data) override;
  Status ReadBlocks(std::span<const uint64_t> ids, uint8_t* out) override;
  Status WriteBlocks(std::span<const uint64_t> ids,
                     const uint8_t* data) override;
  uint64_t num_blocks() const override { return num_blocks_; }
  size_t block_size() const override { return block_size_; }
  Status Flush() override;

  size_t shard_count() const { return shards_.size(); }
  BlockDevice* shard(size_t k) { return shards_[k]; }

  uint64_t ShardOf(uint64_t block_id) const {
    return block_id % shards_.size();
  }
  uint64_t LocalBlock(uint64_t block_id) const {
    return block_id / shards_.size();
  }
  uint64_t GlobalBlock(size_t shard, uint64_t local) const {
    return local * shards_.size() + shard;
  }

  /// Installs the per-shard virtual-clock sampler feeding the parallel
  /// clock (typically `[&](size_t k) { return sims[k]->clock_ms(); }`).
  void set_shard_clock_fn(std::function<double(size_t)> fn) {
    shard_clock_ = std::move(fn);
  }
  /// Parallel virtual clock: sum over fan-outs of the max per-shard
  /// delta. Zero when no sampler is installed.
  double clock_ms() const {
    return clock_ms_.load(std::memory_order_relaxed);
  }

  /// Runs arbitrary per-shard jobs on the shard threads with the same
  /// join barrier and max-delta clock accounting as the built-in fan-out.
  /// Used by ShardedIoScheduler to drain per-shard queues in parallel.
  Status RunOnShards(std::vector<std::function<Status()>> jobs);

 private:
  /// Shared fan-out: exactly one of `out` / `data` is non-null.
  Status FanOut(std::span<const uint64_t> ids, uint8_t* out,
                const uint8_t* data);

  std::vector<BlockDevice*> shards_;
  uint64_t num_blocks_;
  size_t block_size_;
  ShardPool pool_;
  std::function<double(size_t)> shard_clock_;
  std::atomic<double> clock_ms_{0.0};
  // Fan-out scratch, indexed by shard. The split vectors are built by the
  // issuer; each staging buffer is touched only by its shard's thread,
  // strictly between the issuer's dispatch and the join.
  std::vector<std::vector<uint64_t>> split_local_;
  std::vector<std::vector<size_t>> split_pos_;
  std::vector<std::vector<uint8_t>> staging_;
};

/// Owns a ready-to-use sharded simulation stack for benchmarks and
/// tests: K shards of R mirrored replicas, each replica a
/// MemBlockDevice optionally wrapped in a FaultInjectionBlockDevice
/// (scripted spindle faults) and a TraceBlockDevice (per-replica
/// attacker view), always in a SimBlockDevice with its own DiskModel
/// clock. With R > 1 each shard's replicas sit behind a
/// ReplicatedBlockDevice (write-all / read-one, failover, repair); the
/// shard tops are striped by a ShardedBlockDevice whose parallel clock
/// samples the busiest replica of each shard.
class VolumeSet {
 public:
  struct Options {
    size_t shards = 4;
    /// Mirrored replicas per shard (1 = the plain striped layout).
    size_t replicas = 1;
    /// Global capacity; each shard gets ceil(total_blocks / shards).
    uint64_t total_blocks = 0;
    size_t block_size = kDefaultBlockSize;
    /// Insert a TraceBlockDevice above each replica's fault layer.
    bool traced = false;
    /// Insert a FaultInjectionBlockDevice at the bottom of every
    /// replica's stack, scripted per (shard, replica). Null = no fault
    /// layer. Return an empty plan for replicas that should only be
    /// killable by hand (Kill()/Revive()).
    std::function<FaultPlan(size_t shard, size_t replica)> fault_plan;
    /// Mirroring knobs (replicas > 1 only).
    ReplicationOptions replication;
    /// Per-shard spindle parameters (every replica gets its own clock).
    DiskModelParams disk;
    /// Marks replicas served over the loopback block-RPC transport: the
    /// replica's whole local stack moves behind a LoopbackEndpoint (its
    /// server thread becomes the sole issuer) and the mirror talks to a
    /// RemoteBlockDevice client instead. Null = every replica local.
    std::function<bool(size_t shard, size_t replica)> remote;
    /// Transport-layer fault schedule per remote replica (kPartition /
    /// kDelayRpc / kDropConnection specs; block-layer kinds in the plan
    /// are ignored here). Null = clean links.
    std::function<FaultPlan(size_t shard, size_t replica)>
        transport_fault_plan;
    /// Client-side RPC knobs shared by every remote replica; each
    /// client's retry policy gets a distinct jitter seed on top.
    remote::RemoteDeviceOptions remote_options;
  };

  explicit VolumeSet(const Options& options);

  ShardedBlockDevice& device() { return *device_; }
  size_t shard_count() const { return shards_; }
  size_t replica_count() const { return replicas_; }
  MemBlockDevice& mem(size_t k, size_t r = 0) { return *mems_[Slot(k, r)]; }
  SimBlockDevice& sim(size_t k, size_t r = 0) { return *sims_[Slot(k, r)]; }
  /// Null when Options::traced was false.
  TraceBlockDevice* trace(size_t k, size_t r = 0) {
    return traces_.empty() ? nullptr : traces_[Slot(k, r)].get();
  }
  /// Null when Options::fault_plan was null.
  FaultInjectionBlockDevice* fault(size_t k, size_t r = 0) {
    return faults_.empty() ? nullptr : faults_[Slot(k, r)].get();
  }
  /// Null when replicas == 1.
  ReplicatedBlockDevice* replicated(size_t k) {
    return reps_.empty() ? nullptr : reps_[k].get();
  }
  /// Remote-replica plumbing; all null unless Options::remote marked
  /// (k, r) as remote.
  remote::RemoteBlockDevice* remote_device(size_t k, size_t r) {
    return remotes_.empty() ? nullptr : remotes_[Slot(k, r)].get();
  }
  remote::LoopbackEndpoint* remote_endpoint(size_t k, size_t r) {
    return endpoints_.empty() ? nullptr : endpoints_[Slot(k, r)].get();
  }
  remote::TransportFaultController* transport_fault(size_t k, size_t r) {
    return tfaults_.empty() ? nullptr : tfaults_[Slot(k, r)].get();
  }
  bool is_remote(size_t k, size_t r) const {
    return !remotes_.empty() && remotes_[Slot(k, r)] != nullptr;
  }
  /// The facade's parallel virtual clock (max-delta over joins).
  double clock_ms() const { return device_->clock_ms(); }

  /// Pulls the plug on one replica (thread-safe; requires fault_plan).
  void KillReplica(size_t k, size_t r) { fault(k, r)->Kill(); }
  /// Black-holes a remote replica's link until HealReplica: every RPC
  /// fails fast with kDeadlineExceeded and in-flight transfers are
  /// severed (thread-safe; requires a remote replica).
  void PartitionReplica(size_t k, size_t r) {
    transport_fault(k, r)->Partition();
  }
  void HealReplica(size_t k, size_t r) { transport_fault(k, r)->Heal(); }
  /// The remote host dies mid-whatever-it-was-doing; the backing volume
  /// keeps its durable state (thread-safe; requires a remote replica).
  void CrashReplica(size_t k, size_t r) { remote_endpoint(k, r)->Crash(); }
  /// Revives the replica's device — fault layer, crashed endpoint, and
  /// partitioned link alike — and re-admits it to shard k's mirror for
  /// repair (requires replicas > 1).
  Status ReviveAndRepair(size_t k, size_t r);

  /// Any shard still owing repair copy work?
  bool repair_pending() const;
  /// Advances every shard's repair sweep by up to `budget_blocks`
  /// blocks, in parallel on the shard threads (same join barrier and
  /// clock accounting as serving I/O — the caller must be the device's
  /// single issuer). Returns whether repair work remains.
  Result<bool> PumpRepair(uint64_t budget_blocks);

  /// Registers per-replica sim counters under "<prefix>.shard<k>.r<r>",
  /// per-shard replication health under "<prefix>.shard<k>", fault
  /// counters under "<prefix>.shard<k>.r<r>.fault", and remote-replica
  /// plumbing under "<prefix>.shard<k>.r<r>.{remote,transport,server}".
  void RegisterMetrics(obs::Registry* registry, const std::string& prefix);

 private:
  size_t Slot(size_t k, size_t r) const { return k * replicas_ + r; }
  /// Moves the freshly built local stack of (k, r) behind a loopback
  /// endpoint and returns the RemoteBlockDevice client that replaces it
  /// as the replica top.
  BlockDevice* MakeRemote(size_t k, size_t r, BlockDevice* backing,
                          const Options& options);

  size_t shards_ = 0;
  size_t replicas_ = 1;
  // Declaration order is teardown order in reverse: the sharded facade
  // (and its pool threads) dies first, then the mirrors, then the RPC
  // clients, then the endpoints (joining their server threads), then
  // the fault controllers their wrappers point into, and only then the
  // local stacks everything was backed by.
  std::vector<std::unique_ptr<MemBlockDevice>> mems_;
  std::vector<std::unique_ptr<FaultInjectionBlockDevice>> faults_;
  std::vector<std::unique_ptr<TraceBlockDevice>> traces_;
  std::vector<std::unique_ptr<SimBlockDevice>> sims_;
  std::vector<std::unique_ptr<remote::TransportFaultController>> tfaults_;
  std::vector<std::unique_ptr<remote::LoopbackEndpoint>> endpoints_;
  std::vector<std::unique_ptr<remote::RemoteBlockDevice>> remotes_;
  std::vector<std::unique_ptr<ReplicatedBlockDevice>> reps_;
  std::unique_ptr<ShardedBlockDevice> device_;
};

}  // namespace steghide::storage

#endif  // STEGHIDE_STORAGE_VOLUME_SET_H_
