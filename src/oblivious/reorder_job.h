#ifndef STEGHIDE_OBLIVIOUS_REORDER_JOB_H_
#define STEGHIDE_OBLIVIOUS_REORDER_JOB_H_

#include <cstdint>
#include <vector>

#include "crypto/cbc.h"
#include "oblivious/hash_index.h"
#include "oblivious/merge_sort.h"
#include "stegfs/block_codec.h"
#include "storage/block_device.h"
#include "util/result.h"

namespace steghide::oblivious {

/// One resumable level re-order — the §5.1.2 dump + oblivious-shuffle
/// rebuilt as a state machine the deamortized path drives in bounded
/// Step(budget_blocks) increments while serving keeps probing the old
/// permutation.
///
/// The job owns an immutable *snapshot* of its inputs, taken by the
/// store when the re-order was triggered: the ascending live-slot sweep
/// of its input levels (device inputs) plus the flush set (in-memory
/// inputs), each pre-assigned a random sort tag and already
/// de-duplicated by the store with the blocking priority (in-memory >
/// source level > target level). Because the snapshot is fixed, later
/// serving activity — reads re-buffering records, hidden updates,
/// removals — cannot change which blocks the job touches: the job issues
/// exactly the ascending input reads and sequential destination writes
/// the blocking re-order would, merely interleaved with serving. Both
/// sequences are data-independent, which is why the interleaving leaves
/// the per-level touch multiset of the schedule unchanged (pinned by
/// tests/oblivious_incremental_test.cc). Removals that race the job are
/// reconciled by the store with tombstones at install time.
///
/// Phases:
///   kBuildRuns — read device-input chunks (vectored), decrypt, feed the
///                sorter; full runs spill to scratch sequentially.
///   kMerge     — the sorter's chunked multi-way merge into dst_base.
///   kDone      — slot order available via TakeOrder(); the store
///                performs the install flip (level metadata is never
///                touched from here).
///
/// Thread safety: driven under the store lock; the borrowed sorter is
/// Reset() at construction and must not be shared until done.
class ReorderJob {
 public:
  struct DeviceInput {
    uint64_t block = 0;  // absolute device position of the sealed record
    RecordId id = 0;
    uint64_t tag = 0;
  };
  struct MemoryInput {
    RecordId id = 0;
    Bytes payload;
    uint64_t tag = 0;
  };
  struct Inputs {
    /// Ascending live-slot sweep order (source level then target level,
    /// exactly the blocking read sequence).
    std::vector<DeviceInput> device;
    /// The flush set (agent buffer snapshot); read cost-free.
    std::vector<MemoryInput> memory;
  };
  enum class Phase { kBuildRuns, kMerge, kDone };

  ReorderJob(storage::BlockDevice* device, const stegfs::BlockCodec* codec,
             const crypto::CbcCipher* cipher, ExternalMergeSorter* sorter,
             size_t target_level, uint64_t dst_base, Inputs inputs);

  ReorderJob(const ReorderJob&) = delete;
  ReorderJob& operator=(const ReorderJob&) = delete;

  /// Advances by roughly `budget_blocks` device block I/Os. Granularity
  /// is one vectored chunk (input read, run spill, merge refill or
  /// output flush), so a step may overshoot by up to one chunk/run;
  /// `consumed` (optional) reports the true count. At least one block of
  /// progress is made per call until done.
  Status Step(uint64_t budget_blocks, uint64_t* consumed = nullptr);

  Phase phase() const { return phase_; }
  bool done() const { return phase_ == Phase::kDone; }
  size_t target_level() const { return target_level_; }
  uint64_t dst_base() const { return dst_base_; }

  /// Records this job installs (snapshot size, post-dedup).
  uint64_t record_count() const {
    return inputs_.device.size() + inputs_.memory.size();
  }

  /// Device-I/O estimate for the remaining work, for self-pacing.
  uint64_t remaining_blocks() const;

  /// Record ids in final slot order; call once, when done().
  std::vector<RecordId> TakeOrder() { return sorter_->TakeOrder(); }

  /// Device I/O issued so far by this job (input reads + sorter runs and
  /// merge traffic), split read/write for the store's counters. Zero
  /// until the job's first Step claims the shared sorter.
  uint64_t reads() const {
    return started_ ? input_reads_ + sorter_->stats().reads : 0;
  }
  uint64_t writes() const { return started_ ? sorter_->stats().writes : 0; }

 private:
  /// How many device inputs one vectored read covers.
  static constexpr uint64_t kInputChunkBlocks = 48;

  Status StepBuildRuns(uint64_t budget_blocks, uint64_t& used);

  storage::BlockDevice* device_;
  const stegfs::BlockCodec* codec_;
  const crypto::CbcCipher* cipher_;
  ExternalMergeSorter* sorter_;
  size_t target_level_;
  uint64_t dst_base_;
  Inputs inputs_;
  Phase phase_ = Phase::kBuildRuns;
  bool started_ = false;

  size_t next_memory_ = 0;  // next memory input to feed
  size_t next_device_ = 0;  // next device input to read
  uint64_t input_reads_ = 0;

  Bytes read_scratch_;      // vectored input staging
  Bytes payload_scratch_;
};

}  // namespace steghide::oblivious

#endif  // STEGHIDE_OBLIVIOUS_REORDER_JOB_H_
