#include "oblivious/steg_partition_reader.h"

#include <algorithm>

namespace steghide::oblivious {

StegPartitionReader::StegPartitionReader(stegfs::StegFsCore* core,
                                         ObliviousStore* store)
    : core_(core), store_(store) {}

Status StegPartitionReader::ReadBlock(const stegfs::HiddenFile& file,
                                      uint64_t logical, uint8_t* out_payload) {
  if (logical >= file.num_data_blocks()) {
    return Status::OutOfRange("read beyond end of file");
  }
  const RecordId id = MakeRecordId(file, logical);
  if (store_->Contains(id)) {
    ++stats_.cache_hits;
    return store_->Read(id, out_payload);
  }

  // Figure 8(a): randomise the fetch by interleaving decoy re-reads of
  // already-fetched blocks. The DRBG draws happen in loop order (the
  // distribution argument depends on it); the decoy I/O itself is issued
  // as one vectored read in the same sequence, so the observable stream
  // is unchanged while a cache/scheduler sees the whole batch.
  const uint64_t m = core_->num_blocks();
  std::vector<uint64_t> decoys;
  for (;;) {
    const uint64_t x = core_->drbg().Uniform(m);
    if (x >= fetched_.size()) break;
    decoys.push_back(fetched_[core_->drbg().Uniform(fetched_.size())]);
    ++stats_.decoy_reads;
  }
  if (!decoys.empty()) {
    // Chunked so a late-stage fetch (expected decoy count approaches the
    // partition size as S → M) never materialises a volume-sized buffer.
    constexpr size_t kDecoyChunk = 256;
    Bytes raw;
    for (size_t i = 0; i < decoys.size(); i += kDecoyChunk) {
      const size_t n = std::min(kDecoyChunk, decoys.size() - i);
      STEGHIDE_RETURN_IF_ERROR(core_->ReadRawBatch(
          std::span<const uint64_t>(decoys).subspan(i, n), raw));
    }
  }

  STEGHIDE_RETURN_IF_ERROR(core_->ReadFileBlock(file, logical, out_payload));
  ++stats_.real_fetches;
  fetched_.push_back(file.block_ptrs[logical]);
  return store_->Insert(id, out_payload);
}

Status StegPartitionReader::DummyStegRead() {
  Bytes raw;
  const uint64_t b3 = core_->drbg().Uniform(core_->num_blocks());
  STEGHIDE_RETURN_IF_ERROR(core_->ReadRaw(b3, raw));
  ++stats_.dummy_reads;
  return Status::OK();
}

Status StegPartitionReader::IdleDummyOp() {
  STEGHIDE_RETURN_IF_ERROR(store_->DummyRead());
  return DummyStegRead();
}

}  // namespace steghide::oblivious
