#include "oblivious/steg_partition_reader.h"

#include <algorithm>
#include <unordered_map>

namespace steghide::oblivious {

StegPartitionReader::StegPartitionReader(stegfs::StegFsCore* core,
                                         ObliviousStore* store)
    : core_(core), store_(store) {}

Status StegPartitionReader::ReadBlock(const stegfs::HiddenFile& file,
                                      uint64_t logical, uint8_t* out_payload) {
  return ReadBlockBatch(file, std::span<const uint64_t>(&logical, 1),
                        out_payload);
}

Status StegPartitionReader::ReadBlockBatch(const stegfs::HiddenFile& file,
                                           std::span<const uint64_t> logicals,
                                           uint8_t* out_payloads) {
  std::vector<BlockRef> refs(logicals.size());
  for (size_t i = 0; i < logicals.size(); ++i) {
    refs[i] = BlockRef{&file, logicals[i]};
  }
  return ReadRefBatch(refs, out_payloads);
}

Status StegPartitionReader::ReadRefBatch(std::span<const BlockRef> refs,
                                         uint8_t* out_payloads) {
  const size_t ps = core_->payload_size();
  for (const BlockRef& ref : refs) {
    if (ref.file == nullptr) {
      return Status::InvalidArgument("null file in block ref");
    }
    if (ref.logical >= ref.file->num_data_blocks()) {
      return Status::OutOfRange("read beyond end of file");
    }
  }

  // Epoch consistency: a batch spans several store critical sections
  // (Contains() per id, one MultiInsert, one MultiRead per chunk), and a
  // deamortized re-order chain may install a new level permutation
  // between them. That interleaving is safe by construction — presence
  // is install-invariant (installs move records between levels, never in
  // or out of the store), each store group plans and executes against a
  // single epoch under the store lock, and a record read mid-chain is
  // simply found wherever its current epoch placed it (old level, new
  // level, or the flush snapshot served as a ghost). The epoch stamp
  // below records mid-batch flips so tests can pin that reads kept
  // flowing across installs rather than being fenced out by them.
  const uint64_t epoch_at_start = store_->reorder_epoch();

  // Classify: cached blocks go to one oblivious group, distinct misses
  // to one fill pass. A block repeated among the misses is fetched once
  // (§5.1.1's at-most-once rule) and copied to its duplicates. Record
  // ids are unique across files (agent_tag is per open file), so one
  // id-keyed pass covers an arbitrary file mix.
  std::vector<const stegfs::HiddenFile*> miss_files;
  std::vector<uint64_t> miss_logicals;
  std::unordered_map<RecordId, size_t> miss_pos;
  cached_at_.clear();
  cached_ids_.clear();
  for (size_t i = 0; i < refs.size(); ++i) {
    const RecordId id = MakeRecordId(*refs[i].file, refs[i].logical);
    if (store_->Contains(id)) {
      cells_.cache_hits.Increment();
      cached_at_.push_back(i);
      cached_ids_.push_back(id);
    } else if (miss_pos.find(id) == miss_pos.end()) {
      miss_pos.emplace(id, miss_logicals.size());
      miss_files.push_back(refs[i].file);
      miss_logicals.push_back(refs[i].logical);
    }
  }

  if (!miss_logicals.empty()) {
    // Figure 8(a): randomise each fetch by interleaving decoy re-reads of
    // already-fetched blocks. The DRBG draws happen miss by miss with the
    // fetched set growing in between — exactly the sequential draw
    // sequence, on which the uniformity argument depends — while the
    // decoy I/O itself is issued as vectored reads afterwards, so the
    // observable stream keeps its distribution and a cache/scheduler
    // sees whole batches.
    const uint64_t m = core_->num_blocks();
    decoys_.clear();
    // This batch's fetches join the set S only after every I/O below
    // succeeds, so a failed batch cannot corrupt the fetched set; the
    // draws still see S grow between misses via the virtual
    // concatenation fetched_ ∥ new_fetches.
    new_fetches_.clear();
    for (size_t mi = 0; mi < miss_logicals.size(); ++mi) {
      for (;;) {
        const uint64_t fetched_count = fetched_.size() + new_fetches_.size();
        const uint64_t x = core_->drbg().Uniform(m);
        if (x >= fetched_count) break;
        const uint64_t pick = core_->drbg().Uniform(fetched_count);
        decoys_.push_back(pick < fetched_.size()
                              ? fetched_[pick]
                              : new_fetches_[pick - fetched_.size()]);
        cells_.decoy_reads.Increment();
      }
      new_fetches_.push_back(miss_files[mi]->block_ptrs[miss_logicals[mi]]);
    }
    if (!decoys_.empty()) {
      // Chunked so a late-stage fetch (expected decoy count approaches
      // the partition size as S → M) never materialises a volume-sized
      // buffer.
      constexpr size_t kDecoyChunk = 256;
      for (size_t i = 0; i < decoys_.size(); i += kDecoyChunk) {
        const size_t n = std::min(kDecoyChunk, decoys_.size() - i);
        STEGHIDE_RETURN_IF_ERROR(core_->ReadRawBatch(
            std::span<const uint64_t>(decoys_).subspan(i, n), decoy_scratch_));
      }
    }

    // One vectored fetch per file covering its distinct misses (one call
    // total in the single-file case), then one batched fill of the store
    // (deferred flush: a k-record fill costs at most one merge). The
    // per-file payloads scatter back into miss order so the fill and the
    // duplicate copies below stay file-agnostic.
    fetch_scratch_.resize(miss_logicals.size() * ps);
    miss_consumed_.assign(miss_logicals.size(), 0);
    for (size_t start = 0; start < miss_logicals.size(); ++start) {
      if (miss_consumed_[start]) continue;
      const stegfs::HiddenFile* file = miss_files[start];
      file_logicals_.clear();
      file_positions_.clear();
      for (size_t mi = start; mi < miss_logicals.size(); ++mi) {
        if (miss_consumed_[mi] || miss_files[mi] != file) continue;
        miss_consumed_[mi] = 1;
        file_logicals_.push_back(miss_logicals[mi]);
        file_positions_.push_back(mi);
      }
      file_scratch_.resize(file_logicals_.size() * ps);
      STEGHIDE_RETURN_IF_ERROR(core_->ReadFileBlockSet(
          *file, file_logicals_, file_scratch_.data()));
      for (size_t j = 0; j < file_positions_.size(); ++j) {
        std::copy_n(file_scratch_.data() + j * ps, ps,
                    fetch_scratch_.data() + file_positions_[j] * ps);
      }
    }

    miss_ids_.resize(miss_logicals.size());
    for (const auto& [id, pos] : miss_pos) miss_ids_[pos] = id;
    STEGHIDE_RETURN_IF_ERROR(
        store_->MultiInsert(miss_ids_, fetch_scratch_.data()));
    fetched_.insert(fetched_.end(), new_fetches_.begin(), new_fetches_.end());
    cells_.real_fetches.Add(new_fetches_.size());

    // Scatter fetched payloads to every position they serve.
    for (size_t i = 0; i < refs.size(); ++i) {
      const auto it = miss_pos.find(MakeRecordId(*refs[i].file, refs[i].logical));
      if (it == miss_pos.end()) continue;
      std::copy_n(fetch_scratch_.data() + it->second * ps, ps,
                  out_payloads + i * ps);
    }
  }

  if (!cached_ids_.empty()) {
    cached_scratch_.resize(cached_ids_.size() * ps);
    STEGHIDE_RETURN_IF_ERROR(
        store_->MultiRead(cached_ids_, cached_scratch_.data()));
    for (size_t c = 0; c < cached_at_.size(); ++c) {
      std::copy_n(cached_scratch_.data() + c * ps, ps,
                  out_payloads + cached_at_[c] * ps);
    }
  }
  cells_.reorder_epoch_flips.Add(store_->reorder_epoch() - epoch_at_start);
  return Status::OK();
}

Status StegPartitionReader::DummyStegRead() {
  const uint64_t b3 = core_->drbg().Uniform(core_->num_blocks());
  STEGHIDE_RETURN_IF_ERROR(core_->ReadRaw(b3, decoy_scratch_));
  cells_.dummy_reads.Increment();
  return Status::OK();
}

Status StegPartitionReader::IdleDummyOp() {
  // An idle window is exactly where deamortized re-order work belongs:
  // advance any pending chain by one slice (budget 0 = the store's
  // configured reorder_step_blocks) before spending the window's dummy
  // traffic. No-op when nothing is pending or deamortization is off.
  STEGHIDE_RETURN_IF_ERROR(store_->StepReorder(0));
  STEGHIDE_RETURN_IF_ERROR(store_->DummyRead());
  return DummyStegRead();
}

void StegPartitionReader::RegisterMetrics(obs::Registry* registry,
                                          const std::string& prefix) {
  registration_ = obs::Registration(registry);
  registration_.Counter(prefix + ".cache_hits", &cells_.cache_hits);
  registration_.Counter(prefix + ".real_fetches", &cells_.real_fetches);
  registration_.Counter(prefix + ".decoy_reads", &cells_.decoy_reads);
  registration_.Counter(prefix + ".dummy_reads", &cells_.dummy_reads);
  registration_.Counter(prefix + ".reorder_epoch_flips",
                        &cells_.reorder_epoch_flips);
}

}  // namespace steghide::oblivious
