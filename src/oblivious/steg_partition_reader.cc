#include "oblivious/steg_partition_reader.h"

#include <algorithm>
#include <unordered_map>

namespace steghide::oblivious {

StegPartitionReader::StegPartitionReader(stegfs::StegFsCore* core,
                                         ObliviousStore* store)
    : core_(core), store_(store) {}

Status StegPartitionReader::ReadBlock(const stegfs::HiddenFile& file,
                                      uint64_t logical, uint8_t* out_payload) {
  return ReadBlockBatch(file, std::span<const uint64_t>(&logical, 1),
                        out_payload);
}

Status StegPartitionReader::ReadBlockBatch(const stegfs::HiddenFile& file,
                                           std::span<const uint64_t> logicals,
                                           uint8_t* out_payloads) {
  const size_t ps = core_->payload_size();
  for (const uint64_t logical : logicals) {
    if (logical >= file.num_data_blocks()) {
      return Status::OutOfRange("read beyond end of file");
    }
  }

  // Classify: cached blocks go to one oblivious group, distinct misses
  // to one fill pass. A logical repeated among the misses is fetched
  // once (§5.1.1's at-most-once rule) and copied to its duplicates.
  std::vector<uint64_t> miss_logicals;
  std::unordered_map<RecordId, size_t> miss_pos;
  std::vector<size_t> cached_at;
  std::vector<RecordId> cached_ids;
  for (size_t i = 0; i < logicals.size(); ++i) {
    const RecordId id = MakeRecordId(file, logicals[i]);
    if (store_->Contains(id)) {
      ++stats_.cache_hits;
      cached_at.push_back(i);
      cached_ids.push_back(id);
    } else if (miss_pos.find(id) == miss_pos.end()) {
      miss_pos.emplace(id, miss_logicals.size());
      miss_logicals.push_back(logicals[i]);
    }
  }

  if (!miss_logicals.empty()) {
    // Figure 8(a): randomise each fetch by interleaving decoy re-reads of
    // already-fetched blocks. The DRBG draws happen miss by miss with the
    // fetched set growing in between — exactly the sequential draw
    // sequence, on which the uniformity argument depends — while the
    // decoy I/O itself is issued as vectored reads afterwards, so the
    // observable stream keeps its distribution and a cache/scheduler
    // sees whole batches.
    const uint64_t m = core_->num_blocks();
    std::vector<uint64_t> decoys;
    // This batch's fetches join the set S only after every I/O below
    // succeeds, so a failed batch cannot corrupt the fetched set; the
    // draws still see S grow between misses via the virtual
    // concatenation fetched_ ∥ new_fetches.
    std::vector<uint64_t> new_fetches;
    for (const uint64_t logical : miss_logicals) {
      for (;;) {
        const uint64_t fetched_count = fetched_.size() + new_fetches.size();
        const uint64_t x = core_->drbg().Uniform(m);
        if (x >= fetched_count) break;
        const uint64_t pick = core_->drbg().Uniform(fetched_count);
        decoys.push_back(pick < fetched_.size()
                             ? fetched_[pick]
                             : new_fetches[pick - fetched_.size()]);
        ++stats_.decoy_reads;
      }
      new_fetches.push_back(file.block_ptrs[logical]);
    }
    if (!decoys.empty()) {
      // Chunked so a late-stage fetch (expected decoy count approaches
      // the partition size as S → M) never materialises a volume-sized
      // buffer.
      constexpr size_t kDecoyChunk = 256;
      Bytes raw;
      for (size_t i = 0; i < decoys.size(); i += kDecoyChunk) {
        const size_t n = std::min(kDecoyChunk, decoys.size() - i);
        STEGHIDE_RETURN_IF_ERROR(core_->ReadRawBatch(
            std::span<const uint64_t>(decoys).subspan(i, n), raw));
      }
    }

    // One vectored fetch for every distinct miss, then one batched fill
    // of the store (deferred flush: a k-record fill costs one merge).
    Bytes fetched_payloads(miss_logicals.size() * ps);
    STEGHIDE_RETURN_IF_ERROR(core_->ReadFileBlockSet(
        file, miss_logicals, fetched_payloads.data()));
    std::vector<RecordId> miss_ids;
    miss_ids.reserve(miss_logicals.size());
    for (const uint64_t logical : miss_logicals) {
      miss_ids.push_back(MakeRecordId(file, logical));
    }
    STEGHIDE_RETURN_IF_ERROR(
        store_->MultiInsert(miss_ids, fetched_payloads.data()));
    fetched_.insert(fetched_.end(), new_fetches.begin(), new_fetches.end());
    stats_.real_fetches += new_fetches.size();

    // Scatter fetched payloads to every position they serve.
    for (size_t i = 0; i < logicals.size(); ++i) {
      const auto it = miss_pos.find(MakeRecordId(file, logicals[i]));
      if (it == miss_pos.end()) continue;
      std::copy_n(fetched_payloads.data() + it->second * ps, ps,
                  out_payloads + i * ps);
    }
  }

  if (!cached_ids.empty()) {
    Bytes cached_payloads(cached_ids.size() * ps);
    STEGHIDE_RETURN_IF_ERROR(
        store_->MultiRead(cached_ids, cached_payloads.data()));
    for (size_t c = 0; c < cached_at.size(); ++c) {
      std::copy_n(cached_payloads.data() + c * ps, ps,
                  out_payloads + cached_at[c] * ps);
    }
  }
  return Status::OK();
}

Status StegPartitionReader::DummyStegRead() {
  Bytes raw;
  const uint64_t b3 = core_->drbg().Uniform(core_->num_blocks());
  STEGHIDE_RETURN_IF_ERROR(core_->ReadRaw(b3, raw));
  ++stats_.dummy_reads;
  return Status::OK();
}

Status StegPartitionReader::IdleDummyOp() {
  STEGHIDE_RETURN_IF_ERROR(store_->DummyRead());
  return DummyStegRead();
}

}  // namespace steghide::oblivious
