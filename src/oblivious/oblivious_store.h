#ifndef STEGHIDE_OBLIVIOUS_OBLIVIOUS_STORE_H_
#define STEGHIDE_OBLIVIOUS_OBLIVIOUS_STORE_H_

#include <algorithm>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "crypto/cbc.h"
#include "crypto/drbg.h"
#include "crypto/drbg_streams.h"
#include "obs/metrics.h"
#include "obs/trace_log.h"
#include "oblivious/level.h"
#include "oblivious/merge_sort.h"
#include "oblivious/reorder_job.h"
#include "stegfs/block_codec.h"
#include "storage/async/io_scheduler.h"
#include "storage/block_device.h"
#include "storage/retry_device.h"
#include "util/result.h"

namespace steghide::oblivious {

struct ObliviousStoreOptions {
  /// Agent buffer size B, in blocks.
  uint64_t buffer_blocks = 16;
  /// Last-level size N, in blocks. Must be buffer_blocks * 2^k for some
  /// k >= 1; the hierarchy then has k levels of sizes 2B, 4B, ..., N and
  /// occupies 2N - 2B device blocks.
  uint64_t capacity_blocks = 1024;
  /// First device block of the level hierarchy.
  uint64_t partition_base = 0;
  /// First device block of the sort (scratch) partition; needs
  /// capacity_blocks blocks and must not overlap the hierarchy.
  uint64_t scratch_base = 0;
  /// Key sealing every record in the store; empty draws a random key.
  Bytes store_key;
  /// Seed for the store's DRBG (IVs, shuffle tags, dummy-probe slots).
  uint64_t drbg_seed = 7;
  /// Ablation: model the §5.1.2 variant whose per-level hash indices are
  /// too big for agent memory and live, encrypted, "in the front of the
  /// corresponding level". When set, every level scan pass pays one extra
  /// index-block read — shared by every request in the pass, which is
  /// where batching changes the overhead *factor* — and every re-order
  /// pays sequential index writes.
  bool charge_index_io = false;

  // ---- Deamortized re-orders ----------------------------------------------

  /// Run §5.1.2 re-orders incrementally against double-buffered levels:
  /// a flush/dump cascade becomes a chain of resumable ReorderJobs that
  /// build each level's next permutation in its shadow region while
  /// scans keep probing the old one, with an atomic flip at completion.
  /// Work is advanced by StepReorder() (the dispatcher's idle pump),
  /// self-paced serving taxes, and a hard drain backstop, so serving
  /// never stalls behind a whole rebuild.
  bool deamortize_reorders = false;
  /// First device block of the shadow mirror: a second hierarchy-shaped
  /// region (2N - 2B blocks, per-level offsets matching the primary) the
  /// double-buffered rebuilds ping-pong with. Required when
  /// deamortize_reorders; must not overlap hierarchy or scratch.
  uint64_t shadow_base = 0;
  /// Floor for the per-call Step budget (device block I/Os). The serving
  /// tax self-paces above this floor: remaining chain work is spread
  /// evenly over the stagings left before the hard flush backstop.
  uint64_t reorder_step_blocks = 64;
  /// Keep flush trigger points identical to the blocking schedule: when
  /// a flush fires while a chain is still running, drain it synchronously
  /// instead of deferring. Costs the coalescing win; used by the
  /// trace-equivalence tests, which pin per-level touch counts against
  /// the blocking schedule request by request.
  bool strict_reorder_schedule = false;
  /// Flush-coalescing cap, in records (0 = auto: N/4, floored at B and
  /// capped at 2048 — see DeferLimitRecords()): while a chain is
  /// running, flush triggers defer until the agent buffer holds this
  /// many records, then the chain is drained and one rebuild absorbs
  /// the whole set. A set larger than a level's capacity folds
  /// that level into the rebuild and installs directly into the first
  /// level that fits, so coalesced records *skip* the upper-level
  /// rewrites entirely — the duty-cycle win that lets the deamortized
  /// path beat the blocking schedule on total re-order volume, not just
  /// on stalls. Flush sizes depend only on chain timing, i.e. on the
  /// observable schedule, never on record contents.
  uint64_t defer_flush_limit = 0;

  // ---- Fault tolerance ----------------------------------------------------

  /// Optional retry budget for physical I/O: the scheduler re-drives any
  /// vectored issue that fails with kIoError, up to max_attempts total
  /// tries (see IoSchedulerBase::set_retry_policy). Retries are counted
  /// in io_stats().retries and traced as "io.retry" instants. Retry
  /// timing depends only on which physical ops fail — fault-plan
  /// territory, not record contents — so the pattern argument is
  /// unchanged. Nullopt = fail fast.
  std::optional<storage::RetryPolicy> io_retry;

  // ---- Observability ------------------------------------------------------

  /// Optional metrics registry: the store registers its counters (and its
  /// scheduler's, cache-adjacent instruments excluded) under
  /// "<obs_prefix>.*". Borrowed; must outlive the store. Null = private
  /// instruments only (stats() keeps working).
  obs::Registry* registry = nullptr;
  /// Optional trace log: scans, flushes and re-order steps emit spans on
  /// a "<obs_prefix>" track, and the scheduler gets an "io" (or per-shard
  /// "io/shardK") track. Borrowed; must outlive the store. Recording only
  /// — the attacker-visible device trace is unchanged (leakage-neutral,
  /// pinned by the trace-equivalence suites).
  obs::TraceLog* trace = nullptr;
  /// Instrument name prefix and trace track name.
  std::string obs_prefix = "store";
};

struct ObliviousStats {
  uint64_t user_reads = 0;
  uint64_t user_writes = 0;
  uint64_t dummy_reads = 0;
  uint64_t buffer_hits = 0;
  uint64_t level_probe_reads = 0;  // scan reads (real + decoy)
  uint64_t index_io = 0;           // charge_index_io extra operations
  uint64_t reorder_reads = 0;
  uint64_t reorder_writes = 0;
  uint64_t reorders = 0;
  uint64_t buffer_flushes = 0;
  /// Requests that arrived through MultiRead/MultiWrite groups of size
  /// greater than one.
  uint64_t batched_requests = 0;
  /// Planner/executor sweeps over the hierarchy. A group of k requests
  /// costs one pass; the legacy one-at-a-time path costs k.
  uint64_t scan_passes = 0;
  /// Index probes amortized away by grouping: under charge_index_io a
  /// pass reads each level's spilled index once instead of once per
  /// request, saving (group size - 1) reads per non-empty level.
  uint64_t probes_saved = 0;
  /// Incremental re-order bookkeeping (deamortize_reorders).
  uint64_t reorder_steps = 0;      // StepReorder / tax / drain slices
  uint64_t deferred_flushes = 0;   // flush triggers coalesced into a chain
  double retrieve_ms = 0.0;  // virtual time in scans
  double sort_ms = 0.0;      // virtual time in flush/dump/re-order
  /// Wall-clock (host) time spent decrypting scan-pass probes — the
  /// agent-side crypto cost the hardware path is meant to shrink. Not on
  /// the virtual disk clock.
  double crypto_wall_ms = 0.0;
  /// Per-level re-order time (reorder_ms[i] is level i+1), summing to
  /// sort_ms. Sized to the hierarchy height.
  std::vector<double> reorder_ms;
  /// Longest single serving stall attributable to re-order work: a
  /// blocking flush/dump, a hard drain backstop, or one serving tax
  /// slice. The deamortization headline — blocking mode reports the full
  /// largest-rebuild time here.
  double max_stall_ms = 0.0;
  /// Total serving-attributable re-order stall time.
  double stall_ms = 0.0;
  /// Distribution of individual stall events (virtual ms), from the
  /// store's stall histogram cell.
  double stall_p99_ms = 0.0;

  uint64_t TotalIo() const {
    return level_probe_reads + index_io + reorder_reads + reorder_writes;
  }
  /// Mean device I/Os per served request — the "overhead factor" of
  /// Table 4 (a conventional file system serves a read with one I/O).
  double OverheadFactor() const {
    const uint64_t requests = user_reads + user_writes + dummy_reads;
    return requests == 0
               ? 0.0
               : static_cast<double>(TotalIo()) / static_cast<double>(requests);
  }
};

/// The oblivious storage of Section 5 — a hierarchical, shuffled disk
/// cache whose observable access pattern is independent of the request
/// stream.
///
/// Records are fixed-size payloads (device block size minus IV) named by
/// 64-bit ids. Reading a cached record touches exactly one slot in every
/// non-empty level (the real slot where it is found, uniformly random
/// decoys elsewhere) and re-buffers the record; once the buffer holds B
/// records they are merged into level 1, and full levels cascade downward,
/// each merge re-encrypting and re-shuffling the destination level to a
/// fresh concealed permutation via external merge sort. Any record is
/// therefore read at most once per level between re-orders, which is the
/// oblivious-RAM argument for indistinguishability (§5.1.2).
///
/// Retrieval is organised as a planner/executor pipeline over request
/// *groups*: MultiRead/MultiWrite plan one probe set covering up to B
/// requests per level scan — one slot per level per request, duplicated
/// real slots replaced by decoys — and submit each level pass as a single
/// IoBatch through a pattern-preserving IoScheduler, drained once per
/// pass group. Single-request Read/Write are the k = 1 case of the same
/// path. The §5.1.2 buffer argument covers the grouping: every slot is
/// still read at most once between re-orders, and the per-request trace
/// stays one touch per non-empty level.
///
/// Deamortized re-orders (options.deamortize_reorders): a flush/dump
/// cascade is planned as a chain of resumable ReorderJobs over an
/// immutable snapshot (flush set + live-slot sweeps), executed
/// deepest-target-first in bounded Step increments against each level's
/// shadow region, with an atomic base flip per install. While the chain
/// runs, scans serve the *old* permutations; records of the snapshotted
/// flush set are served from agent memory behind a full decoy sweep
/// (the same per-level touch count the blocking schedule would show for
/// them), and levels already emptied by an earlier install are probed
/// with decoys over their projected occupancy. The union of serving
/// probes and re-order sweep I/O therefore keeps the blocking schedule's
/// per-level touch counts, and the sweep itself stays the data-
/// independent ascending-read + sequential-write pattern — the
/// obliviousness argument is interleaving-invariant. Unless
/// strict_reorder_schedule is set, a flush firing mid-chain defers
/// (coalescing up to 2B records into one rebuild) instead of stalling.
///
/// Thread safety: public operations serialize on one internal mutex at
/// *scan-pass granularity* — a MultiRead/MultiWrite group (its level
/// passes, buffer staging and deferred flush) is one critical section,
/// never interleaved per block. Concurrent callers therefore observe the
/// same trace shapes as a serial request stream; aggregation into large
/// groups is the dispatcher's job, not the lock's. StepReorder takes the
/// same lock, so rebuild increments never interleave inside a scan pass.
/// Accessors (stats(), Contains(), LevelOccupancy()) take the same lock
/// and return copies.
class ObliviousStore {
 public:
  /// `device` is borrowed and must outlive the store. Validates the
  /// geometry in `options`.
  static Result<std::unique_ptr<ObliviousStore>> Create(
      storage::BlockDevice* device, const ObliviousStoreOptions& options);

  /// Number of levels k = log2(N/B).
  int height() const { return static_cast<int>(levels_.size()); }

  /// Device blocks occupied by the hierarchy (2N - 2B).
  uint64_t hierarchy_blocks() const;

  /// True if `id` is cached (buffer or any level). Memory-only check.
  bool Contains(RecordId id) const {
    std::lock_guard<std::mutex> lock(mu_);
    return ContainsLocked(id);
  }

  /// Number of distinct records cached.
  uint64_t record_count() const {
    std::lock_guard<std::mutex> lock(mu_);
    return present_index_.size();
  }

  /// Reads record `id` into `out_payload` (payload_size bytes). The
  /// record must be present (callers check Contains() and fetch misses
  /// from the StegFS partition — see StegPartitionReader). Equivalent to
  /// MultiRead of a single-id group.
  Status Read(RecordId id, uint8_t* out_payload);

  /// Batched oblivious read: serves `ids` in groups of up to
  /// buffer_blocks requests per level-scan pass, amortizing the pass
  /// overhead. Record `ids[i]` lands at out_payloads + i * payload_size.
  /// Every id must be present (checked before any I/O). Duplicate ids are
  /// served from one decrypted copy but still touch one decoy slot per
  /// level, so the attacker-visible trace remains exactly one touch per
  /// level per request. Buffer flushes are deferred to group end.
  Status MultiRead(std::span<const RecordId> ids, uint8_t* out_payloads);

  /// Hidden update: indistinguishable from Read on the wire (same level
  /// touches), with the new payload entering through the buffer. The
  /// caller also repeats the write on the StegFS partition for
  /// persistence (§5.1.2). Equivalent to MultiWrite of a single-id group.
  Status Write(RecordId id, const uint8_t* payload);

  /// Batched hidden update: payload `i` is read from
  /// payloads + i * payload_size. Ids absent from the store take the
  /// Insert path (buffer-only, no level touches); present ids get the
  /// read-shaped scan unless already buffered. Later duplicates win.
  Status MultiWrite(std::span<const RecordId> ids, const uint8_t* payloads);

  /// First-time insertion of a record fetched from the StegFS partition.
  /// Buffer-only; no level touches (the fetch itself was the observable
  /// I/O).
  Status Insert(RecordId id, const uint8_t* payload);

  /// Batched first-time insertion (miss-fill): buffer-only like Insert,
  /// with the flush deferred to group end so a k-record fill costs at
  /// most one merge.
  Status MultiInsert(std::span<const RecordId> ids, const uint8_t* payloads);

  /// Evicts `id` from the cache: agent-side bookkeeping only, no device
  /// I/O. Any level slot holding the record turns stale — it keeps
  /// serving as decoy fodder until the next re-order drops it — and the
  /// id leaves the dummy-read sampling population immediately
  /// (swap-and-pop, O(1), sampling stays uniform).
  Status Remove(RecordId id);

  /// Dummy read: retrieves a uniformly random cached record through the
  /// full Read path. No-op when the store is empty.
  Status DummyRead();

  // ---- Deamortized re-order pump ------------------------------------------

  /// Advances pending incremental re-order work by roughly
  /// `budget_blocks` device I/Os (chunk-granular; see ReorderJob::Step);
  /// 0 means the configured reorder_step_blocks. This is the idle-gap
  /// hook for the dispatcher's I/O thread and the reader's idle dummy
  /// ops; serving also self-paces via an internal tax, so calling this
  /// is an optimization, never a correctness requirement. `more`
  /// (optional) reports whether work remains. No-op (more = false) when
  /// deamortize_reorders is off or no chain is active.
  Status StepReorder(uint64_t budget_blocks, bool* more = nullptr);

  /// True while an incremental re-order chain has unfinished work.
  bool reorder_pending() const {
    std::lock_guard<std::mutex> lock(mu_);
    return ChainActiveLocked();
  }

  /// Whether re-orders actually run deamortized: false when the option
  /// was off *or* when Create() overrode it for a shallow (< 3 level)
  /// hierarchy. Benches/tests check this instead of assuming the option
  /// stuck.
  bool deamortized() const { return options_.deamortize_reorders; }

  /// Counts level-permutation installs (blocking re-orders and chain job
  /// flips alike). Readers use it to reason about epoch consistency:
  /// everything inside one store critical section observes one epoch.
  uint64_t reorder_epoch() const {
    std::lock_guard<std::mutex> lock(mu_);
    return reorder_epoch_;
  }

  /// Snapshot: counters come from atomic cells (torn-read-free even
  /// against a concurrent scan), virtual-time doubles are copied under
  /// the store lock.
  ObliviousStats stats() const;
  void ResetStats();

  /// Scheduler counters (physical I/O, drains, per-drain queue depth —
  /// the sharded scheduler reports the deepest shard). Retries folded in
  /// from both re-drive layers: the scheduler (request path) and the
  /// maintenance-path RetryingBlockDevice (re-order / merge I/O).
  storage::IoSchedulerStats io_stats() const {
    storage::IoSchedulerStats s = scheduler_->stats();
    if (maintenance_retry_ != nullptr) {
      const storage::RetryStats m = maintenance_retry_->stats();
      s.retries += m.retries;
      s.retry_exhausted += m.exhausted;
    }
    return s;
  }

  /// Wires a virtual-clock sampler (e.g. SimBlockDevice::clock_ms) so the
  /// stats can split retrieve vs sort time, Figure 12(b).
  void set_clock_fn(std::function<double()> fn) {
    std::lock_guard<std::mutex> lock(mu_);
    clock_fn_ = std::move(fn);
  }

  size_t payload_size() const { return codec_.payload_size(); }

  /// Records currently staged in the agent buffer (including a pending
  /// flush snapshot still being installed by a re-order chain).
  uint64_t buffer_fill() const {
    std::lock_guard<std::mutex> lock(mu_);
    return buffer_.size() + flushing_.size();
  }

  /// Largest request group served by one scan pass (= buffer_blocks);
  /// longer spans are chunked internally.
  uint64_t max_batch() const { return options_.buffer_blocks; }

  /// Number of spindles the level-scan I/O fans out across: the shard
  /// count when the backing device is a ShardedBlockDevice, else 1.
  size_t io_shard_count() const { return io_shards_; }

  /// True when every double-buffered level's two ping-pong regions land
  /// on disjoint shards for every slot (i.e. the base/alt_base phase
  /// difference is nonzero mod the shard count), so shadow rebuild I/O
  /// never competes with serving probes for the same spindle. Trivially
  /// false for a single volume.
  bool shadow_spindle_separated() const;

  /// Level occupancies, for tests and introspection.
  std::vector<uint64_t> LevelOccupancy() const;

  /// Active region base of each level (tests pin the double-buffer
  /// ping-pong and map trace blocks back to levels).
  std::vector<uint64_t> LevelBases() const;

 private:
  ObliviousStore(storage::BlockDevice* device,
                 const ObliviousStoreOptions& options);

  double Clock() const { return clock_fn_ ? clock_fn_() : 0.0; }

  /// This thread's DRBG stream (decoy slots, shuffle tags, IVs).
  crypto::HashDrbg& Drbg() { return drbg_.ForThread(); }

  /// Registry/trace wiring, called from Create() after the scheduler and
  /// levels exist.
  void ConfigureObservability();

  /// Atomic counter cells behind the ObliviousStats snapshot. Bumped
  /// under mu_ today, but readable (and registry-exportable) without it.
  struct Cells {
    obs::CounterCell user_reads;
    obs::CounterCell user_writes;
    obs::CounterCell dummy_reads;
    obs::CounterCell buffer_hits;
    obs::CounterCell level_probe_reads;
    obs::CounterCell index_io;
    obs::CounterCell reorder_reads;
    obs::CounterCell reorder_writes;
    obs::CounterCell reorders;
    obs::CounterCell buffer_flushes;
    obs::CounterCell batched_requests;
    obs::CounterCell scan_passes;
    obs::CounterCell probes_saved;
    obs::CounterCell reorder_steps;
    obs::CounterCell deferred_flushes;
    /// Individual serving stalls (virtual ms each).
    obs::HistogramCell stall;
    /// Re-order chain progress, sampled at chain transitions.
    obs::GaugeCell chain_pending_steps;
    obs::GaugeCell chain_remaining_blocks;
  };

  /// One planned level-scan sweep serving a request group. Each pass is
  /// the probe set of one non-empty level: an optional leading index
  /// probe (charge_index_io) plus one slot probe per request, elevator-
  /// sorted within the pass (sorting a set of uniform draws is data-
  /// independent). `owner` maps a probe back to the request whose real
  /// slot it is, or kDecoy.
  ///
  /// The plan is a reusable scratch object: `count` passes are valid,
  /// `passes` and their probe vectors keep their capacity between groups
  /// so the hot scan path stops reallocating per level (visible in the
  /// k-sweep wall time).
  struct ScanPlan {
    static constexpr size_t kDecoy = ~size_t{0};
    struct Probe {
      uint64_t block = 0;
      size_t owner = kDecoy;
    };
    struct LevelPass {
      std::vector<Probe> probes;
    };
    std::vector<LevelPass> passes;
    size_t count = 0;  // passes[0..count) are live for the current group

    LevelPass& AppendPass() {
      if (count == passes.size()) passes.emplace_back();
      LevelPass& pass = passes[count++];
      pass.probes.clear();
      return pass;
    }
    void Reset() { count = 0; }
  };

  /// One job of an incremental cascade plus its install actions: the
  /// source levels to clear and whether this is the final flush job
  /// (clearing the flushing_ snapshot).
  struct ChainStep {
    std::unique_ptr<ReorderJob> job;
    std::vector<size_t> clears;
    bool is_flush = false;
  };
  /// An incremental flush/dump cascade: steps execute strictly in order
  /// (deepest target first, the flush job last), each installing its
  /// level before the next starts. Planned — snapshots, tags,
  /// projections and all — at the flush trigger, so the chain replays
  /// exactly the blocking recursion's re-orders.
  struct ReorderChain {
    std::deque<ChainStep> steps;
    // Last-seen job I/O counters, for incremental stats deltas.
    uint64_t front_reads_seen = 0;
    uint64_t front_writes_seen = 0;
  };
  /// Per-level projection of the chain's end state, used to keep the
  /// serving probe shape equal to the blocking schedule's while a level
  /// sits emptied (installed downward, not yet refilled): such levels
  /// are probed with decoys over [0, projected_occ) of the region that
  /// will become active.
  struct LevelProjection {
    bool involved = false;
    uint64_t projected_occ = 0;
    uint64_t projected_base = 0;
  };

  // Locked implementations of the public entry points; callers hold mu_.
  Status MultiReadLocked(std::span<const RecordId> ids,
                         uint8_t* out_payloads);
  Status MultiWriteLocked(std::span<const RecordId> ids,
                          const uint8_t* payloads);
  Status MultiInsertLocked(std::span<const RecordId> ids,
                           const uint8_t* payloads);

  bool ContainsLocked(RecordId id) const {
    return present_index_.find(id) != present_index_.end();
  }

  /// Plans the touch pattern for a request group into the reusable
  /// `plan_`. `scan[i]` is true for requests that probe the levels;
  /// `decoy_only[i]` marks requests that draw decoys in every level —
  /// duplicates of an earlier group member, and records of a pending
  /// flush snapshot (served from memory but keeping the blocking trace
  /// shape). DRBG draws happen in level-major, request-minor order.
  Status PlanScan(std::span<const RecordId> ids,
                  std::span<const uint8_t> scan,
                  std::span<const uint8_t> decoy_only);

  /// Executes `plan_`: one IoBatch per level pass through the pattern-
  /// preserving scheduler, one drain, then per-request decrypt+extract
  /// into out_payloads (group-indexed; nullptr skips extraction).
  Status ExecuteScan(uint8_t* out_payloads);

  /// Serves one group of at most buffer_blocks read requests.
  Status ReadGroup(std::span<const RecordId> ids, uint8_t* out_payloads);

  /// Serves one group of at most buffer_blocks write/insert requests.
  Status WriteGroup(std::span<const RecordId> ids, const uint8_t* payloads);

  /// Registers `id` as present (no-op when already cached). Fails with
  /// NoSpace at capacity.
  Status RegisterPresent(RecordId id);

  /// Stages a payload in the buffer without flushing.
  void BufferStage(RecordId id, const uint8_t* payload);

  /// Flushes the buffer once it holds at least B records. Group
  /// operations call this once per group, so the buffer may transiently
  /// hold up to 2B - 1 records — still within level 1's capacity.
  Status MaybeFlush();

  Status FlushBuffer();

  /// Dumps level `i` (1-based) into level i+1 (merging + re-shuffle).
  Status Dump(size_t i);

  /// Rebuilds `target` from its own live records, optional `source` level
  /// records (which win on duplicates) and optional in-memory records
  /// (which win over everything). Empties `source`. The blocking path.
  Status ReorderInto(Level& target, Level* source,
                     const std::vector<std::pair<RecordId, const Bytes*>>&
                         in_memory);

  /// charge_index_io: sequential index rewrite after re-ordering `level`.
  /// (The per-pass index read is planned inline by PlanScan, so it joins
  /// the level probes in one batched request.)
  Status ChargeIndexRebuild(const Level& level);

  // ---- Deamortized chain machinery (callers hold mu_) ---------------------

  bool ChainActiveLocked() const {
    return chain_ != nullptr && !chain_->steps.empty();
  }

  /// Records the buffer may coalesce before the hard flush backstop.
  /// Auto default: N/4 — flush sets then fold every level up to a
  /// quarter of the hierarchy, so coalesced records skip those levels'
  /// rewrites, and the pacing window for a bottom-level rebuild spans a
  /// quarter of the record population. Capped at 2048 records (8 MB of
  /// agent staging RAM at 4 KB blocks — the same real-RAM-does-not-
  /// shrink argument as the sort-run floor). When N/4 <= B the limit
  /// degenerates to B: shallow hierarchies keep the blocking flush
  /// schedule (coalescing there just rebuilds the bottom level per
  /// flush) and take only the pacing/latency win.
  uint64_t DeferLimitRecords() const {
    if (options_.defer_flush_limit != 0) return options_.defer_flush_limit;
    constexpr uint64_t kDeferCapRecords = 2048;
    return std::max<uint64_t>(
        options_.buffer_blocks,
        std::min<uint64_t>(kDeferCapRecords, options_.capacity_blocks / 4));
  }

  /// Plans the flush cascade at trigger time (snapshot + tags +
  /// projections), moving buffer_ into flushing_. Mirrors the blocking
  /// Dump recursion exactly.
  Status StartFlushChainLocked();

  /// Advances the chain by roughly `budget_blocks` I/Os, installing
  /// finished jobs. `stall` marks the time serving-attributable (tax or
  /// drain backstop) for the stall counters.
  Status StepChainLocked(uint64_t budget_blocks, bool stall);

  /// Runs the chain to completion (hard backstop / strict schedule).
  Status DrainChainLocked();

  /// Serving tax: self-paced chain advance spreading the remaining work
  /// over the stagings left before the hard backstop, proportional to
  /// the `staged` records the finishing op contributed.
  Status PaceChainLocked(uint64_t staged);

  /// Installs the finished front job: flips the level to its shadow
  /// region, applies tombstones, clears the dumped source, charges the
  /// index rebuild and retires chain state at the end.
  Status InstallFrontJobLocked();

  /// Refreshes the chain-progress gauges (pending steps, remaining
  /// device I/Os) at chain transitions.
  void UpdateChainGaugesLocked();

  storage::BlockDevice* device_;
  /// Maintenance-path re-drive layer: the reorder jobs, the external
  /// merge sorter and the index-rebuild charges bypass the scheduler and
  /// issue straight device calls; with io_retry set those go through this
  /// decorator, so a transient kIoError during a serving-tax re-order
  /// step is re-driven instead of failing the request that paid the tax.
  /// Null when io_retry is unset — maint_device_ is then device_ itself.
  std::unique_ptr<storage::RetryingBlockDevice> maintenance_retry_;
  storage::BlockDevice* maint_device_ = nullptr;
  ObliviousStoreOptions options_;
  stegfs::BlockCodec codec_;
  /// Per-thread DRBG stream family (root + deterministic forks). All
  /// draws happen under mu_, so this is about killing lock *handoff*
  /// cost and draw-order coupling between dispatcher threads, not data
  /// races; single-threaded callers always see the root stream, i.e. the
  /// exact byte stream the shared-DRBG design produced.
  crypto::DrbgStreams drbg_;
  crypto::CbcCipher cipher_;
  /// Single-device IoScheduler, or a ShardedIoScheduler fanning the
  /// per-level batches out across a ShardedBlockDevice's shard threads
  /// (chosen at construction from the device's dynamic type).
  std::unique_ptr<storage::IoSchedulerBase> scheduler_;
  size_t io_shards_ = 1;
  std::vector<Level> levels_;  // levels_[0] is level 1 (size 2B)

  std::unordered_map<RecordId, Bytes> buffer_;
  /// id -> position in present_list_; doubles as the presence set.
  std::unordered_map<RecordId, size_t> present_index_;
  std::vector<RecordId> present_list_;  // for uniform dummy-read sampling

  std::function<double()> clock_fn_;
  /// Virtual-time accumulators (doubles + the per-level vector) stay
  /// guarded by mu_; the uint64 counters live in cells_.
  ObliviousStats stats_;
  Cells cells_;
  obs::Registration registration_;
  obs::TraceLog* trace_ = nullptr;
  uint32_t trace_track_ = 0;

  /// Serializes public operations at scan-pass granularity. Plain (not
  /// recursive): public entry points delegate to *Locked impls and the
  /// private machinery never re-enters the public surface.
  mutable std::mutex mu_;

  // Per-group scratch reused across scan passes (guarded by mu_): the
  // plan, its per-pass read buffers, the decrypt staging block, and the
  // group classification vectors. Kept as members to cut allocation
  // churn on the hot path.
  ScanPlan plan_;
  std::vector<Bytes> pass_bufs_;
  Bytes payload_scratch_;
  /// Pointer tables for the sweep-wide scattered batch open.
  std::vector<const uint8_t*> open_blocks_scratch_;
  std::vector<uint8_t*> open_payloads_scratch_;
  std::vector<uint8_t> scan_scratch_;
  std::vector<uint8_t> dup_scratch_;
  std::vector<uint8_t> ghost_scratch_;

  /// Persistent re-order scratch: the external sorter (run buffer + seal
  /// staging reused across re-orders) and the dedup set.
  std::unique_ptr<ExternalMergeSorter> sorter_;
  std::unordered_set<RecordId> reorder_added_;

  // ---- Deamortized chain state (guarded by mu_) ---------------------------

  std::unique_ptr<ReorderChain> chain_;
  /// Flush snapshot being installed by the chain's level-1 job. Records
  /// here are served from memory behind a full decoy sweep ("ghosts"),
  /// so the trace keeps the blocking schedule's touch counts.
  std::unordered_map<RecordId, Bytes> flushing_;
  /// Ids Remove()d while the chain runs; erased from freshly installed
  /// indexes so a snapshot can never resurrect an evicted record.
  std::unordered_set<RecordId> chain_tombstones_;
  std::vector<LevelProjection> projection_;
  uint64_t reorder_epoch_ = 0;
};

}  // namespace steghide::oblivious

#endif  // STEGHIDE_OBLIVIOUS_OBLIVIOUS_STORE_H_
