#ifndef STEGHIDE_OBLIVIOUS_OBLIVIOUS_STORE_H_
#define STEGHIDE_OBLIVIOUS_OBLIVIOUS_STORE_H_

#include <functional>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "crypto/cbc.h"
#include "crypto/drbg.h"
#include "oblivious/level.h"
#include "stegfs/block_codec.h"
#include "storage/block_device.h"
#include "util/result.h"

namespace steghide::oblivious {

struct ObliviousStoreOptions {
  /// Agent buffer size B, in blocks.
  uint64_t buffer_blocks = 16;
  /// Last-level size N, in blocks. Must be buffer_blocks * 2^k for some
  /// k >= 1; the hierarchy then has k levels of sizes 2B, 4B, ..., N and
  /// occupies 2N - 2B device blocks.
  uint64_t capacity_blocks = 1024;
  /// First device block of the level hierarchy.
  uint64_t partition_base = 0;
  /// First device block of the sort (scratch) partition; needs
  /// capacity_blocks blocks and must not overlap the hierarchy.
  uint64_t scratch_base = 0;
  /// Key sealing every record in the store; empty draws a random key.
  Bytes store_key;
  /// Seed for the store's DRBG (IVs, shuffle tags, dummy-probe slots).
  uint64_t drbg_seed = 7;
  /// Ablation: model the §5.1.2 variant whose per-level hash indices are
  /// too big for agent memory and live, encrypted, "in the front of the
  /// corresponding level". When set, every level probe pays one extra
  /// index-block read and every re-order pays sequential index writes.
  bool charge_index_io = false;
};

struct ObliviousStats {
  uint64_t user_reads = 0;
  uint64_t user_writes = 0;
  uint64_t dummy_reads = 0;
  uint64_t buffer_hits = 0;
  uint64_t level_probe_reads = 0;  // scan reads (real + decoy)
  uint64_t index_io = 0;           // charge_index_io extra operations
  uint64_t reorder_reads = 0;
  uint64_t reorder_writes = 0;
  uint64_t reorders = 0;
  uint64_t buffer_flushes = 0;
  double retrieve_ms = 0.0;  // virtual time in scans
  double sort_ms = 0.0;      // virtual time in flush/dump/re-order

  uint64_t TotalIo() const {
    return level_probe_reads + index_io + reorder_reads + reorder_writes;
  }
  /// Mean device I/Os per served request — the "overhead factor" of
  /// Table 4 (a conventional file system serves a read with one I/O).
  double OverheadFactor() const {
    const uint64_t requests = user_reads + user_writes + dummy_reads;
    return requests == 0
               ? 0.0
               : static_cast<double>(TotalIo()) / static_cast<double>(requests);
  }
};

/// The oblivious storage of Section 5 — a hierarchical, shuffled disk
/// cache whose observable access pattern is independent of the request
/// stream.
///
/// Records are fixed-size payloads (device block size minus IV) named by
/// 64-bit ids. Reading a cached record touches exactly one slot in every
/// non-empty level (the real slot where it is found, uniformly random
/// decoys elsewhere) and re-buffers the record; once the buffer holds B
/// records they are merged into level 1, and full levels cascade downward,
/// each merge re-encrypting and re-shuffling the destination level to a
/// fresh concealed permutation via external merge sort. Any record is
/// therefore read at most once per level between re-orders, which is the
/// oblivious-RAM argument for indistinguishability (§5.1.2).
class ObliviousStore {
 public:
  /// `device` is borrowed and must outlive the store. Validates the
  /// geometry in `options`.
  static Result<std::unique_ptr<ObliviousStore>> Create(
      storage::BlockDevice* device, const ObliviousStoreOptions& options);

  /// Number of levels k = log2(N/B).
  int height() const { return static_cast<int>(levels_.size()); }

  /// Device blocks occupied by the hierarchy (2N - 2B).
  uint64_t hierarchy_blocks() const;

  /// True if `id` is cached (buffer or any level). Memory-only check.
  bool Contains(RecordId id) const;

  /// Number of distinct records cached.
  uint64_t record_count() const { return present_.size(); }

  /// Reads record `id` into `out_payload` (payload_size bytes). The
  /// record must be present (callers check Contains() and fetch misses
  /// from the StegFS partition — see StegPartitionReader).
  Status Read(RecordId id, uint8_t* out_payload);

  /// Hidden update: indistinguishable from Read on the wire (same level
  /// touches), with the new payload entering through the buffer. The
  /// caller also repeats the write on the StegFS partition for
  /// persistence (§5.1.2).
  Status Write(RecordId id, const uint8_t* payload);

  /// First-time insertion of a record fetched from the StegFS partition.
  /// Buffer-only; no level touches (the fetch itself was the observable
  /// I/O).
  Status Insert(RecordId id, const uint8_t* payload);

  /// Dummy read: retrieves a uniformly random cached record through the
  /// full Read path. No-op when the store is empty.
  Status DummyRead();

  const ObliviousStats& stats() const { return stats_; }
  void ResetStats() { stats_ = ObliviousStats(); }

  /// Wires a virtual-clock sampler (e.g. SimBlockDevice::clock_ms) so the
  /// stats can split retrieve vs sort time, Figure 12(b).
  void set_clock_fn(std::function<double()> fn) { clock_fn_ = std::move(fn); }

  size_t payload_size() const { return codec_.payload_size(); }

  /// Level occupancies, for tests and introspection.
  std::vector<uint64_t> LevelOccupancy() const;

 private:
  ObliviousStore(storage::BlockDevice* device,
                 const ObliviousStoreOptions& options);

  double Clock() const { return clock_fn_ ? clock_fn_() : 0.0; }

  /// Performs the per-level touch pattern for `id`; if `out_payload` is
  /// non-null the found record is copied there.
  Status ScanLevels(RecordId id, uint8_t* out_payload);

  /// Puts a payload in the buffer, flushing when it reaches B records.
  Status BufferInsert(RecordId id, const uint8_t* payload);

  Status FlushBuffer();

  /// Dumps level `i` (1-based) into level i+1 (merging + re-shuffle).
  Status Dump(size_t i);

  /// Rebuilds `target` from its own live records, optional `source` level
  /// records (which win on duplicates) and optional in-memory records
  /// (which win over everything). Empties `source`.
  Status ReorderInto(Level& target, Level* source,
                     const std::vector<std::pair<RecordId, const Bytes*>>&
                         in_memory);

  /// charge_index_io: sequential index rewrite after re-ordering `level`.
  /// (The per-probe index read is planned inline by ScanLevels, so it
  /// joins the level probes in one vectored request.)
  Status ChargeIndexRebuild(const Level& level);

  storage::BlockDevice* device_;
  ObliviousStoreOptions options_;
  stegfs::BlockCodec codec_;
  crypto::HashDrbg drbg_;
  crypto::CbcCipher cipher_;
  std::vector<Level> levels_;  // levels_[0] is level 1 (size 2B)

  std::unordered_map<RecordId, Bytes> buffer_;
  std::unordered_set<RecordId> present_;
  std::vector<RecordId> present_list_;  // for uniform dummy-read sampling

  std::function<double()> clock_fn_;
  ObliviousStats stats_;
};

}  // namespace steghide::oblivious

#endif  // STEGHIDE_OBLIVIOUS_OBLIVIOUS_STORE_H_
