#ifndef STEGHIDE_OBLIVIOUS_HASH_INDEX_H_
#define STEGHIDE_OBLIVIOUS_HASH_INDEX_H_

#include <cstdint>
#include <optional>
#include <unordered_map>

namespace steghide::oblivious {

/// Record identifier in the oblivious store (the "logical address" of
/// §5.1.2).
using RecordId = uint64_t;
inline constexpr RecordId kNullRecord = ~RecordId{0};

/// Per-level secondary hash index: logical record id -> slot within the
/// level.
///
/// Following §5.1.2, the lookup key is a keyed hash of the logical address
/// and a nonce "generated when the hash index is rebuilt", so even if the
/// index were spilled to disk, accesses to it would not correlate across
/// re-orders. We keep the index in agent memory (the paper's primary
/// configuration) but preserve the nonce-keyed structure; the I/O cost of
/// the spilled variant can be charged via
/// ObliviousStoreOptions::charge_index_io.
class HashIndex {
 public:
  HashIndex() = default;

  /// Clears all entries and installs a fresh nonce.
  void Rebuild(uint64_t nonce);

  /// Inserts or overwrites the slot for `id`.
  void Put(RecordId id, uint64_t slot);

  /// Slot of `id`, if present.
  std::optional<uint64_t> Get(RecordId id) const;

  void Erase(RecordId id);
  size_t size() const { return map_.size(); }
  uint64_t nonce() const { return nonce_; }

 private:
  uint64_t HashKey(RecordId id) const;

  uint64_t nonce_ = 0;
  // Keyed-hash -> slot. A 64-bit keyed hash makes collisions negligible at
  // cache scale (<= 2^24 records); Get() re-verifies nothing because ids
  // are agent-internal and trusted.
  std::unordered_map<uint64_t, uint64_t> map_;
};

}  // namespace steghide::oblivious

#endif  // STEGHIDE_OBLIVIOUS_HASH_INDEX_H_
