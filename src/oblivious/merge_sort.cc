#include "oblivious/merge_sort.h"

#include <algorithm>
#include <cstring>
#include <limits>
#include <numeric>

namespace steghide::oblivious {

namespace {
// Merge chunk floor, in blocks (192 KB per run at 4 KB blocks): every
// chunk boundary costs a cross-region disk jump (run ↔ run ↔
// destination), so the floor directly divides the re-order's seek count
// — the dominant term once the scan path is batched. At the paper's
// scale B/(fanin+1) is near the floor anyway, and when experiments
// shrink B to keep N/B constant, the agent's real RAM does not shrink
// with it.
constexpr uint64_t kMinChunkBlocks = 48;
}  // namespace

ExternalMergeSorter::ExternalMergeSorter(storage::BlockDevice* device,
                                         const stegfs::BlockCodec* codec,
                                         const crypto::CbcCipher* cipher,
                                         crypto::HashDrbg* drbg,
                                         uint64_t scratch_base,
                                         uint64_t run_blocks)
    : device_(device),
      codec_(codec),
      cipher_(cipher),
      drbg_(drbg),
      scratch_base_(scratch_base),
      run_blocks_(run_blocks == 0 ? 1 : run_blocks) {}

void ExternalMergeSorter::Reset() {
  pending_.clear();
  runs_.clear();
  scratch_used_ = 0;
  item_count_ = 0;
  cells_.reads.Reset();
  cells_.writes.Reset();
  merging_ = false;
  merge_done_ = false;
  mem_merge_ = false;
  dst_base_ = 0;
  out_pos_ = 0;
  chunk_ = 0;
  mem_next_ = 0;
  cursors_.clear();
  out_chunk_.clear();
  order_.clear();
}

Status ExternalMergeSorter::Add(uint64_t src_block, uint64_t tag,
                                uint64_t label) {
  Bytes block(codec_->block_size());
  STEGHIDE_RETURN_IF_ERROR(device_->ReadBlock(src_block, block.data()));
  cells_.reads.Increment();
  Bytes payload(codec_->payload_size());
  STEGHIDE_RETURN_IF_ERROR(codec_->Open(*cipher_, block.data(), payload.data()));
  return AddInMemory(payload, tag, label);
}

Status ExternalMergeSorter::AddInMemory(const uint8_t* payload, uint64_t tag,
                                        uint64_t label) {
  if (merging_) {
    return Status::FailedPrecondition("sorter is already merging");
  }
  pending_.push_back(
      Item{tag, label, Bytes(payload, payload + codec_->payload_size())});
  ++item_count_;
  if (pending_.size() >= run_blocks_) STEGHIDE_RETURN_IF_ERROR(SpillRun());
  return Status::OK();
}

Status ExternalMergeSorter::AddInMemory(const Bytes& payload, uint64_t tag,
                                        uint64_t label) {
  if (merging_) {
    return Status::FailedPrecondition("sorter is already merging");
  }
  if (payload.size() != codec_->payload_size()) {
    return Status::InvalidArgument("sorter payload size mismatch");
  }
  pending_.push_back(Item{tag, label, payload});
  ++item_count_;
  if (pending_.size() >= run_blocks_) STEGHIDE_RETURN_IF_ERROR(SpillRun());
  return Status::OK();
}

Status ExternalMergeSorter::SpillRun() {
  if (pending_.empty()) return Status::OK();
  std::sort(pending_.begin(), pending_.end(),
            [](const Item& a, const Item& b) { return a.tag < b.tag; });
  Run run;
  run.base = scratch_base_ + scratch_used_;
  run.tags.reserve(pending_.size());
  run.labels.reserve(pending_.size());
  // Seal the whole run, then write it with one vectored request — a
  // sequential sweep of the scratch region. State (scratch_used_, runs_,
  // pending_) commits only after the write succeeds, so a failed slice
  // of a deamortized re-order can be re-driven: the retry re-seals the
  // same items into the same scratch positions.
  seal_scratch_.resize(pending_.size() * codec_->block_size());
  std::vector<uint64_t> ids;
  ids.reserve(pending_.size());
  batch_in_.clear();
  batch_out_.clear();
  for (size_t i = 0; i < pending_.size(); ++i) {
    const Item& item = pending_[i];
    batch_in_.push_back(item.payload.data());
    batch_out_.push_back(seal_scratch_.data() + i * codec_->block_size());
    ids.push_back(run.base + i);
    run.tags.push_back(item.tag);
    run.labels.push_back(item.label);
  }
  STEGHIDE_RETURN_IF_ERROR(
      codec_->SealScatter(*cipher_, *drbg_, batch_in_, batch_out_));
  STEGHIDE_RETURN_IF_ERROR(device_->WriteBlocks(ids, seal_scratch_.data()));
  cells_.writes.Add(ids.size());
  scratch_used_ += ids.size();
  runs_.push_back(std::move(run));
  pending_.clear();
  return Status::OK();
}

Status ExternalMergeSorter::BeginMerge(uint64_t dst_base) {
  if (merging_) return Status::FailedPrecondition("merge already begun");

  if (runs_.empty()) {
    // Everything fits in the in-memory run: sort in place and stream the
    // destination writes out in chunks — no scratch traffic.
    merging_ = true;
    dst_base_ = dst_base;
    order_.reserve(item_count_);
    mem_merge_ = true;
    chunk_ = kMinChunkBlocks;
    std::sort(pending_.begin(), pending_.end(),
              [](const Item& a, const Item& b) { return a.tag < b.tag; });
    merge_done_ = pending_.empty();
    return Status::OK();
  }

  // Spill the tail so every item lives in some run on scratch, then arm
  // the single chunked multi-way merge. With run size B and level sizes
  // at most N, the fan-in is at most N/B = 2^k runs, so one pass always
  // suffices; per-run read chunks and an output write chunk keep the I/O
  // mostly sequential — the property behind Figure 12(b)'s "sorting is
  // cheap in time". The merge arms only after the spill succeeds, so a
  // failed slice of a deamortized re-order can re-drive BeginMerge.
  STEGHIDE_RETURN_IF_ERROR(SpillRun());
  merging_ = true;
  dst_base_ = dst_base;
  order_.reserve(item_count_);
  const size_t fanin = runs_.size();
  chunk_ = std::max<uint64_t>(kMinChunkBlocks, run_blocks_ / (fanin + 1));
  cursors_.clear();
  cursors_.reserve(fanin);
  for (size_t r = 0; r < fanin; ++r) cursors_.push_back(Cursor{r, 0, 0, {}});
  merge_done_ = item_count_ == 0;
  return Status::OK();
}

Status ExternalMergeSorter::RefillCursor(Cursor& c) {
  const Run& run = runs_[c.run];
  c.chunk_begin = c.next;
  const uint64_t end = std::min<uint64_t>(c.next + chunk_, run.tags.size());
  c.chunk_payloads.clear();
  std::vector<uint64_t> ids;
  ids.reserve(end - c.chunk_begin);
  for (uint64_t i = c.chunk_begin; i < end; ++i) {
    ids.push_back(run.base + i);
  }
  Bytes blocks;
  STEGHIDE_RETURN_IF_ERROR(device_->ReadBlocks(ids, blocks));
  cells_.reads.Add(ids.size());
  // One batched open for the whole look-ahead chunk.
  batch_in_.clear();
  batch_out_.clear();
  for (size_t i = 0; i < ids.size(); ++i) {
    c.chunk_payloads.emplace_back(codec_->payload_size());
    batch_in_.push_back(blocks.data() + i * codec_->block_size());
    batch_out_.push_back(c.chunk_payloads.back().data());
  }
  return codec_->OpenScatter(*cipher_, batch_in_, batch_out_);
}

Status ExternalMergeSorter::FlushOutput() {
  if (out_chunk_.empty()) return Status::OK();
  // out_pos_ advances only after the vectored write succeeds (and
  // out_chunk_ stays intact on failure), so a re-driven MergeStep
  // re-writes the same chunk at the same destination offsets.
  seal_scratch_.resize(out_chunk_.size() * codec_->block_size());
  std::vector<uint64_t> ids;
  ids.reserve(out_chunk_.size());
  batch_in_.clear();
  batch_out_.clear();
  for (size_t i = 0; i < out_chunk_.size(); ++i) {
    batch_in_.push_back(out_chunk_[i].data());
    batch_out_.push_back(seal_scratch_.data() + i * codec_->block_size());
    ids.push_back(dst_base_ + out_pos_ + i);
  }
  STEGHIDE_RETURN_IF_ERROR(
      codec_->SealScatter(*cipher_, *drbg_, batch_in_, batch_out_));
  STEGHIDE_RETURN_IF_ERROR(device_->WriteBlocks(ids, seal_scratch_.data()));
  cells_.writes.Add(ids.size());
  out_pos_ += ids.size();
  out_chunk_.clear();
  return Status::OK();
}

Status ExternalMergeSorter::MergeStep(uint64_t budget_blocks, bool* done,
                                      uint64_t* consumed) {
  if (!merging_) return Status::FailedPrecondition("BeginMerge not called");
  uint64_t used = 0;
  const auto charge = [&](uint64_t blocks) { used += blocks; };

  while (!merge_done_) {
    if (mem_merge_) {
      // Stream the sorted in-memory run to the destination, one sealed
      // vectored chunk at a time.
      const uint64_t left = pending_.size() - mem_next_;
      uint64_t n = std::min<uint64_t>(chunk_, left);
      if (used > 0 && used + n > budget_blocks) break;
      for (uint64_t i = 0; i < n; ++i) {
        out_chunk_.push_back(std::move(pending_[mem_next_].payload));
        order_.push_back(pending_[mem_next_].label);
        ++mem_next_;
      }
      STEGHIDE_RETURN_IF_ERROR(FlushOutput());
      charge(n);
      merge_done_ = mem_next_ >= pending_.size();
      if (used >= budget_blocks) break;
      continue;
    }

    // Pick the cursor with the smallest pending tag.
    Cursor* best = nullptr;
    for (Cursor& c : cursors_) {
      if (c.next >= runs_[c.run].tags.size()) continue;
      if (best == nullptr ||
          runs_[c.run].tags[c.next] < runs_[best->run].tags[best->next]) {
        best = &c;
      }
    }
    if (best == nullptr) {
      const uint64_t tail = out_chunk_.size();
      STEGHIDE_RETURN_IF_ERROR(FlushOutput());
      charge(tail);
      merge_done_ = true;
      break;
    }

    if (best->next >= best->chunk_begin + best->chunk_payloads.size() ||
        best->chunk_payloads.empty()) {
      const uint64_t need = std::min<uint64_t>(
          chunk_, runs_[best->run].tags.size() - best->next);
      // A refill is a whole-chunk read; stop at the budget boundary
      // unless nothing has been done yet (progress guarantee).
      if (used > 0 && used + need > budget_blocks) break;
      STEGHIDE_RETURN_IF_ERROR(RefillCursor(*best));
      charge(need);
    }
    order_.push_back(runs_[best->run].labels[best->next]);
    out_chunk_.push_back(
        std::move(best->chunk_payloads[best->next - best->chunk_begin]));
    ++best->next;
    if (out_chunk_.size() >= chunk_) {
      const uint64_t tail = out_chunk_.size();
      if (used > 0 && used + tail > budget_blocks) break;
      STEGHIDE_RETURN_IF_ERROR(FlushOutput());
      charge(tail);
    }
    if (used >= budget_blocks) break;
  }

  if (done) *done = merge_done_;
  if (consumed) *consumed = used;
  return Status::OK();
}

uint64_t ExternalMergeSorter::merge_remaining_blocks() const {
  if (!merging_ || merge_done_) return 0;
  if (mem_merge_) return pending_.size() - mem_next_;
  // Each unemitted item costs ~1 run read + 1 destination write; the
  // buffered output chunk still owes its write.
  const uint64_t emitted = order_.size();
  return 2 * (item_count_ - emitted) + out_chunk_.size();
}

std::vector<uint64_t> ExternalMergeSorter::TakeOrder() {
  std::vector<uint64_t> order = std::move(order_);
  order_.clear();
  return order;
}

Result<std::vector<uint64_t>> ExternalMergeSorter::Finish(uint64_t dst_base) {
  STEGHIDE_RETURN_IF_ERROR(BeginMerge(dst_base));
  bool done = false;
  while (!done) {
    STEGHIDE_RETURN_IF_ERROR(
        MergeStep(std::numeric_limits<uint64_t>::max(), &done));
  }
  std::vector<uint64_t> order = TakeOrder();
  // Keep the legacy Finish() contract: the sorter is immediately reusable
  // for the next blocking re-order.
  const Stats kept = stats();
  Reset();
  cells_.reads.Add(kept.reads);
  cells_.writes.Add(kept.writes);
  return order;
}

}  // namespace steghide::oblivious
