#include "oblivious/merge_sort.h"

#include <algorithm>
#include <cstring>
#include <numeric>

namespace steghide::oblivious {

ExternalMergeSorter::ExternalMergeSorter(storage::BlockDevice* device,
                                         const stegfs::BlockCodec* codec,
                                         const crypto::CbcCipher* cipher,
                                         crypto::HashDrbg* drbg,
                                         uint64_t scratch_base,
                                         uint64_t run_blocks)
    : device_(device),
      codec_(codec),
      cipher_(cipher),
      drbg_(drbg),
      scratch_base_(scratch_base),
      run_blocks_(run_blocks == 0 ? 1 : run_blocks) {}

Status ExternalMergeSorter::Add(uint64_t src_block, uint64_t tag,
                                uint64_t label) {
  Bytes block(codec_->block_size());
  STEGHIDE_RETURN_IF_ERROR(device_->ReadBlock(src_block, block.data()));
  ++stats_.reads;
  Bytes payload(codec_->payload_size());
  STEGHIDE_RETURN_IF_ERROR(codec_->Open(*cipher_, block.data(), payload.data()));
  return AddInMemory(payload, tag, label);
}

Status ExternalMergeSorter::AddInMemory(const Bytes& payload, uint64_t tag,
                                        uint64_t label) {
  if (payload.size() != codec_->payload_size()) {
    return Status::InvalidArgument("sorter payload size mismatch");
  }
  pending_.push_back(Item{tag, label, payload});
  if (pending_.size() >= run_blocks_) STEGHIDE_RETURN_IF_ERROR(SpillRun());
  return Status::OK();
}

Status ExternalMergeSorter::SpillRun() {
  if (pending_.empty()) return Status::OK();
  std::sort(pending_.begin(), pending_.end(),
            [](const Item& a, const Item& b) { return a.tag < b.tag; });
  Run run;
  run.base = scratch_base_ + scratch_used_;
  run.tags.reserve(pending_.size());
  run.labels.reserve(pending_.size());
  // Seal the whole run, then write it with one vectored request — a
  // sequential sweep of the scratch region.
  Bytes images(pending_.size() * codec_->block_size());
  std::vector<uint64_t> ids;
  ids.reserve(pending_.size());
  for (size_t i = 0; i < pending_.size(); ++i) {
    const Item& item = pending_[i];
    STEGHIDE_RETURN_IF_ERROR(
        codec_->Seal(*cipher_, *drbg_, item.payload.data(),
                     images.data() + i * codec_->block_size()));
    ids.push_back(scratch_base_ + scratch_used_);
    ++scratch_used_;
    run.tags.push_back(item.tag);
    run.labels.push_back(item.label);
  }
  STEGHIDE_RETURN_IF_ERROR(device_->WriteBlocks(ids, images.data()));
  stats_.writes += ids.size();
  runs_.push_back(std::move(run));
  pending_.clear();
  return Status::OK();
}

Result<std::vector<uint64_t>> ExternalMergeSorter::Finish(uint64_t dst_base) {
  // Fast path: everything fits in the in-memory run — sort and write
  // straight to the destination, no scratch traffic.
  if (runs_.empty()) {
    std::sort(pending_.begin(), pending_.end(),
              [](const Item& a, const Item& b) { return a.tag < b.tag; });
    std::vector<uint64_t> order;
    order.reserve(pending_.size());
    Bytes block(codec_->block_size());
    for (uint64_t i = 0; i < pending_.size(); ++i) {
      STEGHIDE_RETURN_IF_ERROR(codec_->Seal(*cipher_, *drbg_,
                                            pending_[i].payload.data(),
                                            block.data()));
      STEGHIDE_RETURN_IF_ERROR(
          device_->WriteBlock(dst_base + i, block.data()));
      ++stats_.writes;
      order.push_back(pending_[i].label);
    }
    pending_.clear();
    return order;
  }

  // Spill the tail so every item lives in some run on scratch.
  STEGHIDE_RETURN_IF_ERROR(SpillRun());

  // Single chunked multi-way merge. With run size B and level sizes at
  // most N, the fan-in is at most N/B = 2^k runs, so one pass always
  // suffices; per-run read chunks and an output write chunk keep the I/O
  // mostly sequential — the property behind Figure 12(b)'s "sorting is
  // cheap in time". Chunks are floored at 48 blocks (192 KB per run):
  // every chunk boundary costs a cross-region disk jump (run ↔ run ↔
  // destination), so the floor directly divides the re-order's seek
  // count — the dominant term once the scan path is batched. At the
  // paper's scale B/(fanin+1) is near the floor anyway, and when
  // experiments shrink B to keep N/B constant, the agent's real RAM does
  // not shrink with it.
  constexpr uint64_t kMinChunkBlocks = 48;
  const size_t fanin = runs_.size();
  const uint64_t chunk =
      std::max<uint64_t>(kMinChunkBlocks, run_blocks_ / (fanin + 1));

  struct Cursor {
    const Run* run;
    uint64_t next = 0;                 // next item index within the run
    std::vector<Bytes> chunk_payloads;  // decrypted look-ahead
    uint64_t chunk_begin = 0;          // run index of chunk_payloads[0]
  };
  std::vector<Cursor> cursors;
  cursors.reserve(fanin);
  for (const Run& run : runs_) cursors.push_back(Cursor{&run, 0, {}, 0});

  auto refill = [&](Cursor& c) -> Status {
    c.chunk_begin = c.next;
    const uint64_t end =
        std::min<uint64_t>(c.next + chunk, c.run->tags.size());
    c.chunk_payloads.clear();
    std::vector<uint64_t> ids;
    ids.reserve(end - c.chunk_begin);
    for (uint64_t i = c.chunk_begin; i < end; ++i) {
      ids.push_back(c.run->base + i);
    }
    Bytes blocks;
    STEGHIDE_RETURN_IF_ERROR(device_->ReadBlocks(ids, blocks));
    stats_.reads += ids.size();
    for (size_t i = 0; i < ids.size(); ++i) {
      Bytes payload(codec_->payload_size());
      STEGHIDE_RETURN_IF_ERROR(codec_->Open(
          *cipher_, blocks.data() + i * codec_->block_size(),
          payload.data()));
      c.chunk_payloads.push_back(std::move(payload));
    }
    return Status::OK();
  };

  std::vector<uint64_t> order;
  std::vector<Bytes> out_chunk;
  uint64_t out_pos = 0;

  auto flush_output = [&]() -> Status {
    if (out_chunk.empty()) return Status::OK();
    Bytes images(out_chunk.size() * codec_->block_size());
    std::vector<uint64_t> ids;
    ids.reserve(out_chunk.size());
    for (size_t i = 0; i < out_chunk.size(); ++i) {
      STEGHIDE_RETURN_IF_ERROR(
          codec_->Seal(*cipher_, *drbg_, out_chunk[i].data(),
                       images.data() + i * codec_->block_size()));
      ids.push_back(dst_base + out_pos);
      ++out_pos;
    }
    STEGHIDE_RETURN_IF_ERROR(device_->WriteBlocks(ids, images.data()));
    stats_.writes += ids.size();
    out_chunk.clear();
    return Status::OK();
  };

  for (;;) {
    // Pick the cursor with the smallest pending tag.
    Cursor* best = nullptr;
    for (Cursor& c : cursors) {
      if (c.next >= c.run->tags.size()) continue;
      if (best == nullptr || c.run->tags[c.next] < best->run->tags[best->next]) {
        best = &c;
      }
    }
    if (best == nullptr) break;

    if (best->next >= best->chunk_begin + best->chunk_payloads.size() ||
        best->chunk_payloads.empty()) {
      STEGHIDE_RETURN_IF_ERROR(refill(*best));
    }
    order.push_back(best->run->labels[best->next]);
    out_chunk.push_back(
        std::move(best->chunk_payloads[best->next - best->chunk_begin]));
    ++best->next;
    if (out_chunk.size() >= chunk) STEGHIDE_RETURN_IF_ERROR(flush_output());
  }
  STEGHIDE_RETURN_IF_ERROR(flush_output());
  runs_.clear();
  scratch_used_ = 0;
  return order;
}

}  // namespace steghide::oblivious
