#include "oblivious/oblivious_store.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstring>
#include <limits>

#include "crypto/key.h"
#include "storage/async/sharded_io_scheduler.h"
#include "storage/volume_set.h"

namespace steghide::oblivious {

namespace {
bool IsPowerOfTwo(uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }

// Re-order run size floor: at least the agent buffer B, floored at 256
// blocks (1 MB at 4 KB blocks — inside the agent-buffer envelope the
// paper's own Figure 12 sweep explores, and the same order of memory the
// merge's chunked look-ahead already uses). Small re-orders (levels 1-2
// always, deeper levels on small hierarchies) then sort entirely in
// memory and write the destination in one ascending sweep, skipping the
// scratch round-trip; the shuffle is unchanged (same random-tag order),
// and the observable pattern stays data-independent: read every live
// slot ascending, write the target sequentially. Large levels still
// spill and merge externally.
constexpr uint64_t kReorderRunFloor = 256;
}  // namespace

ObliviousStore::ObliviousStore(storage::BlockDevice* device,
                               const ObliviousStoreOptions& options)
    : device_(device),
      options_(options),
      codec_(device->block_size()),
      drbg_(options.drbg_seed) {
  // A sharded backing volume gets the scheduler fan-out: per-level
  // batches split by shard and drained in parallel on the shard threads.
  if (auto* sharded = dynamic_cast<storage::ShardedBlockDevice*>(device)) {
    io_shards_ = sharded->shard_count();
    scheduler_ = std::make_unique<storage::ShardedIoScheduler>(sharded);
  } else {
    scheduler_ = std::make_unique<storage::IoScheduler>(device);
  }
  // Probe counts are part of the attacker-visible pattern; the scheduler
  // must issue them verbatim (no coalescing of colliding decoys).
  scheduler_->set_preserve_pattern(true);
  if (options_.io_retry.has_value()) {
    scheduler_->set_retry_policy(*options_.io_retry);
    // The re-order / merge path issues straight device calls outside the
    // scheduler; give it the same budget via the decorator so a transient
    // fault mid-chain cannot fail the serving call that paid the tax.
    maintenance_retry_ = std::make_unique<storage::RetryingBlockDevice>(
        device_, *options_.io_retry);
  }
  maint_device_ =
      maintenance_retry_ != nullptr ? maintenance_retry_.get() : device_;
  // One persistent sorter per store: its run buffer and seal scratch are
  // recycled across re-orders instead of reconstructed per call.
  sorter_ = std::make_unique<ExternalMergeSorter>(
      maint_device_, &codec_, &cipher_, &drbg_.root(), options_.scratch_base,
      std::max<uint64_t>(options_.buffer_blocks, kReorderRunFloor));
}

Result<std::unique_ptr<ObliviousStore>> ObliviousStore::Create(
    storage::BlockDevice* device, const ObliviousStoreOptions& options) {
  const uint64_t b = options.buffer_blocks;
  const uint64_t n = options.capacity_blocks;
  if (b == 0 || n <= b || n % b != 0 || !IsPowerOfTwo(n / b)) {
    return Status::InvalidArgument(
        "capacity must be buffer * 2^k with k >= 1");
  }
  std::unique_ptr<ObliviousStore> store(new ObliviousStore(device, options));

  Bytes key = options.store_key.empty()
                  ? store->Drbg().Generate(crypto::kDefaultKeyLen)
                  : options.store_key;
  STEGHIDE_RETURN_IF_ERROR(store->cipher_.SetKey(key));

  uint64_t base = options.partition_base;
  for (uint64_t cap = 2 * b; cap <= n; cap *= 2) {
    Level level;
    level.base = base;
    level.alt_base = base;  // shadow assigned below when double-buffered
    level.capacity = cap;
    base += cap;
    store->levels_.push_back(std::move(level));
  }
  const uint64_t hierarchy_end = base;
  const uint64_t mirror = hierarchy_end - options.partition_base;

  // Geometry checks: hierarchy and scratch must fit the device and not
  // overlap each other.
  if (hierarchy_end > device->num_blocks() ||
      options.scratch_base + n > device->num_blocks()) {
    return Status::InvalidArgument("oblivious partitions exceed device");
  }
  const bool overlap = options.scratch_base < hierarchy_end &&
                       options.partition_base < options.scratch_base + n;
  if (overlap) {
    return Status::InvalidArgument("scratch overlaps level hierarchy");
  }

  // Double buffering pays a constant seek overhead (rebuilds read one
  // region and write its twin; scans probe mixed-epoch regions), worth
  // it only when rebuild stalls are long — i.e. when the hierarchy is
  // deep. Shallow stores (one or two levels) keep the blocking
  // schedule: their largest rebuild is already a short stall, and the
  // deamortized machinery would cost ~10% steady-state throughput for
  // nothing.
  if (store->levels_.size() < 3) {
    store->options_.deamortize_reorders = false;
  }
  if (store->options_.deamortize_reorders) {
    // Shadow mirror: a second hierarchy-shaped region the double-buffered
    // rebuilds ping-pong with; per-level offsets match the primary.
    if (options.shadow_base + mirror > device->num_blocks()) {
      return Status::InvalidArgument("shadow mirror exceeds device");
    }
    const bool shadow_hier = options.shadow_base < hierarchy_end &&
                             options.partition_base <
                                 options.shadow_base + mirror;
    const bool shadow_scratch =
        options.shadow_base < options.scratch_base + n &&
        options.scratch_base < options.shadow_base + mirror;
    if (shadow_hier || shadow_scratch) {
      return Status::InvalidArgument(
          "shadow mirror overlaps hierarchy or scratch");
    }
    for (Level& level : store->levels_) {
      level.alt_base =
          options.shadow_base + (level.base - options.partition_base);
    }
  }

  store->stats_.reorder_ms.assign(store->levels_.size(), 0.0);
  store->projection_.assign(store->levels_.size(), LevelProjection{});
  store->ConfigureObservability();
  return store;
}

void ObliviousStore::ConfigureObservability() {
  trace_ = options_.trace;
  if (trace_ != nullptr) {
    trace_track_ = trace_->RegisterTrack(options_.obs_prefix);
    scheduler_->set_trace(trace_, trace_->RegisterTrack("io"));
  }
  if (options_.registry != nullptr) {
    const std::string& p = options_.obs_prefix;
    registration_ = obs::Registration(options_.registry);
    registration_.Counter(p + ".user_reads", &cells_.user_reads);
    registration_.Counter(p + ".user_writes", &cells_.user_writes);
    registration_.Counter(p + ".dummy_reads", &cells_.dummy_reads);
    registration_.Counter(p + ".buffer_hits", &cells_.buffer_hits);
    registration_.Counter(p + ".level_probe_reads",
                          &cells_.level_probe_reads);
    registration_.Counter(p + ".index_io", &cells_.index_io);
    registration_.Counter(p + ".reorder_reads", &cells_.reorder_reads);
    registration_.Counter(p + ".reorder_writes", &cells_.reorder_writes);
    registration_.Counter(p + ".reorders", &cells_.reorders);
    registration_.Counter(p + ".buffer_flushes", &cells_.buffer_flushes);
    registration_.Counter(p + ".batched_requests",
                          &cells_.batched_requests);
    registration_.Counter(p + ".scan_passes", &cells_.scan_passes);
    registration_.Counter(p + ".probes_saved", &cells_.probes_saved);
    registration_.Counter(p + ".reorder_steps", &cells_.reorder_steps);
    registration_.Counter(p + ".deferred_flushes",
                          &cells_.deferred_flushes);
    registration_.Histogram(p + ".stall_ms", &cells_.stall);
    registration_.Gauge(p + ".chain_pending_steps",
                        &cells_.chain_pending_steps);
    registration_.Gauge(p + ".chain_remaining_blocks",
                        &cells_.chain_remaining_blocks);
    // Virtual-time doubles accumulate under mu_; export via callbacks.
    registration_.Callback(p + ".retrieve_ms", [this] {
      std::lock_guard<std::mutex> lock(mu_);
      return stats_.retrieve_ms;
    });
    registration_.Callback(p + ".sort_ms", [this] {
      std::lock_guard<std::mutex> lock(mu_);
      return stats_.sort_ms;
    });
    registration_.Callback(p + ".stall_total_ms", [this] {
      std::lock_guard<std::mutex> lock(mu_);
      return stats_.stall_ms;
    });
    scheduler_->RegisterMetrics(options_.registry, "io");
    if (maintenance_retry_ != nullptr) {
      // Re-order / merge path re-drives, separate from the scheduler's
      // "io.shardK.retries" (both fold into io_stats().retries).
      maintenance_retry_->RegisterMetrics(options_.registry, "io.reorder");
    }
  }
}

ObliviousStats ObliviousStore::stats() const {
  ObliviousStats s;
  {
    std::lock_guard<std::mutex> lock(mu_);
    s = stats_;
  }
  s.user_reads = cells_.user_reads.value();
  s.user_writes = cells_.user_writes.value();
  s.dummy_reads = cells_.dummy_reads.value();
  s.buffer_hits = cells_.buffer_hits.value();
  s.level_probe_reads = cells_.level_probe_reads.value();
  s.index_io = cells_.index_io.value();
  s.reorder_reads = cells_.reorder_reads.value();
  s.reorder_writes = cells_.reorder_writes.value();
  s.reorders = cells_.reorders.value();
  s.buffer_flushes = cells_.buffer_flushes.value();
  s.batched_requests = cells_.batched_requests.value();
  s.scan_passes = cells_.scan_passes.value();
  s.probes_saved = cells_.probes_saved.value();
  s.reorder_steps = cells_.reorder_steps.value();
  s.deferred_flushes = cells_.deferred_flushes.value();
  s.stall_p99_ms = cells_.stall.Percentile(99.0);
  return s;
}

void ObliviousStore::ResetStats() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stats_ = ObliviousStats();
    stats_.reorder_ms.assign(levels_.size(), 0.0);
  }
  cells_.user_reads.Reset();
  cells_.user_writes.Reset();
  cells_.dummy_reads.Reset();
  cells_.buffer_hits.Reset();
  cells_.level_probe_reads.Reset();
  cells_.index_io.Reset();
  cells_.reorder_reads.Reset();
  cells_.reorder_writes.Reset();
  cells_.reorders.Reset();
  cells_.buffer_flushes.Reset();
  cells_.batched_requests.Reset();
  cells_.scan_passes.Reset();
  cells_.probes_saved.Reset();
  cells_.reorder_steps.Reset();
  cells_.deferred_flushes.Reset();
  cells_.stall.Reset();
}

uint64_t ObliviousStore::hierarchy_blocks() const {
  return 2 * options_.capacity_blocks - 2 * options_.buffer_blocks;
}

std::vector<uint64_t> ObliviousStore::LevelOccupancy() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<uint64_t> occ;
  occ.reserve(levels_.size());
  for (const Level& level : levels_) occ.push_back(level.live_count());
  return occ;
}

std::vector<uint64_t> ObliviousStore::LevelBases() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<uint64_t> bases;
  bases.reserve(levels_.size());
  for (const Level& level : levels_) bases.push_back(level.base);
  return bases;
}

bool ObliviousStore::shadow_spindle_separated() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (io_shards_ <= 1) return false;
  // Slot s of a level lives at base + s and its shadow twin at
  // alt_base + s; under the g % K stripe they differ for *every* s
  // exactly when the bases differ mod the shard count.
  for (const Level& level : levels_) {
    if (!level.double_buffered()) continue;
    if (level.base % io_shards_ == level.alt_base % io_shards_) return false;
  }
  return true;
}

Status ObliviousStore::ChargeIndexRebuild(const Level& level) {
  if (!options_.charge_index_io) return Status::OK();
  // 16 bytes per entry (hashed key + slot), written sequentially.
  const uint64_t entry_bytes = 16 * level.live_count();
  const uint64_t blocks =
      (entry_bytes + codec_.block_size() - 1) / codec_.block_size();
  Bytes block(codec_.block_size(), 0);
  for (uint64_t i = 0; i < blocks && i < level.capacity; ++i) {
    STEGHIDE_RETURN_IF_ERROR(
        maint_device_->WriteBlock(level.base + i, block.data()));
    cells_.index_io.Increment();
  }
  return Status::OK();
}

Status ObliviousStore::PlanScan(std::span<const RecordId> ids,
                                std::span<const uint8_t> scan,
                                std::span<const uint8_t> decoy_only) {
  cells_.scan_passes.Increment();
  const size_t k = ids.size();
  size_t scan_k = 0;
  for (size_t i = 0; i < k; ++i) scan_k += scan[i] != 0;

  plan_.Reset();
  std::vector<uint8_t> found(k, 0);
  const bool chain = ChainActiveLocked();
  for (size_t li = 0; li < levels_.size(); ++li) {
    Level& level = levels_[li];
    // A level already emptied by an earlier chain install but still being
    // refilled keeps its blocking probe shape: decoys over the projected
    // occupancy of the region that will become active. The projection is
    // fixed at the flush trigger, so the shape depends only on the
    // schedule, never on the data.
    const bool pending_fill = chain && level.empty() &&
                              projection_[li].involved &&
                              projection_[li].projected_occ > 0;
    if (level.empty() && !pending_fill) continue;
    const uint64_t probe_base =
        pending_fill ? projection_[li].projected_base : level.base;
    const uint64_t probe_occ =
        pending_fill ? projection_[li].projected_occ : level.occupied();
    ScanPlan::LevelPass& pass = plan_.AppendPass();
    pass.probes.reserve(scan_k + 1);
    if (options_.charge_index_io) {
      // The spilled index "in the front of the corresponding level" is
      // read once per pass and answers every lookup of the group — this
      // amortization is what lowers the overhead *factor* with k.
      pass.probes.push_back({probe_base, ScanPlan::kDecoy});
      cells_.index_io.Increment();
      cells_.probes_saved.Add(scan_k - 1);
    }
    for (size_t i = 0; i < k; ++i) {
      if (!scan[i]) continue;
      std::optional<uint64_t> hit;
      if (!pending_fill) hit = level.index.Get(ids[i]);
      if (!decoy_only[i] && !found[i] && hit.has_value()) {
        found[i] = 1;
        pass.probes.push_back({level.base + *hit, i});
      } else {
        // Decoy: uniformly random occupied slot. Stale slots are
        // eligible — to the observer every slot is the same.
        pass.probes.push_back(
            {probe_base + Drbg().Uniform(probe_occ), ScanPlan::kDecoy});
      }
      cells_.level_probe_reads.Increment();
    }
    // Elevator order within the pass: the probe multiset is a fresh set
    // of uniform draws plus real slots of a concealed permutation, so
    // its sorted image is data-independent. stable_sort keeps the index
    // probe ahead of a colliding slot-0 probe, preserving the k = 1
    // issue sequence bit-for-bit.
    std::stable_sort(
        pass.probes.begin(), pass.probes.end(),
        [](const ScanPlan::Probe& a, const ScanPlan::Probe& b) {
          return a.block < b.block;
        });
  }
  for (size_t i = 0; i < k; ++i) {
    if (scan[i] && !decoy_only[i] && !found[i]) {
      return Status::Internal("record in present set but not found in levels");
    }
  }
  return Status::OK();
}

Status ObliviousStore::ExecuteScan(uint8_t* out_payloads) {
  obs::ScopedSpan span(trace_, "store.scan", trace_track_,
                       {{"passes", static_cast<int64_t>(plan_.count)}});
  // One IoBatch per level pass, one drain for the whole sweep. The
  // pattern-preserving scheduler issues each pass as a vectored read, so
  // a cache or timing model underneath sees whole per-level batches
  // while the per-block sequence stays exactly the planned one.
  const size_t bs = codec_.block_size();
  if (pass_bufs_.size() < plan_.count) pass_bufs_.resize(plan_.count);
  for (size_t p = 0; p < plan_.count; ++p) {
    const auto& probes = plan_.passes[p].probes;
    pass_bufs_[p].resize(probes.size() * bs);
    storage::IoBatch batch;
    batch.requests.reserve(probes.size());
    for (size_t i = 0; i < probes.size(); ++i) {
      batch.Read(probes[i].block, pass_bufs_[p].data() + i * bs);
    }
    scheduler_->Submit(std::move(batch));
  }
  STEGHIDE_RETURN_IF_ERROR(scheduler_->Drain());

  // Batched decrypt + extract (decoys stay sealed): the real probes of
  // every pass in the sweep go through one scattered codec open, which
  // pipelines their CBC chains across the AES units. Payloads land
  // directly in the caller's buffer — real slots own distinct requests,
  // so the destinations never alias.
  const size_t ps = codec_.payload_size();
  open_blocks_scratch_.clear();
  open_payloads_scratch_.clear();
  for (size_t p = 0; p < plan_.count; ++p) {
    const auto& probes = plan_.passes[p].probes;
    for (size_t i = 0; i < probes.size(); ++i) {
      if (probes[i].owner == ScanPlan::kDecoy) continue;
      open_blocks_scratch_.push_back(pass_bufs_[p].data() + i * bs);
      open_payloads_scratch_.push_back(
          out_payloads != nullptr ? out_payloads + probes[i].owner * ps
                                  : nullptr);
    }
  }
  if (open_blocks_scratch_.empty()) return Status::OK();
  if (out_payloads == nullptr) {
    // Write-shaped scans discard the plaintext; still run the opens (same
    // work as the read path) into per-chain scratch slots.
    payload_scratch_.resize(open_blocks_scratch_.size() * ps);
    for (size_t i = 0; i < open_payloads_scratch_.size(); ++i) {
      open_payloads_scratch_[i] = payload_scratch_.data() + i * ps;
    }
  }
  const auto crypto_t0 = std::chrono::steady_clock::now();
  STEGHIDE_RETURN_IF_ERROR(
      codec_.OpenScatter(cipher_, open_blocks_scratch_, open_payloads_scratch_));
  stats_.crypto_wall_ms +=
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - crypto_t0)
          .count();
  return Status::OK();
}

Status ObliviousStore::ReadGroup(std::span<const RecordId> ids,
                                 uint8_t* out_payloads) {
  const size_t k = ids.size();
  const size_t ps = codec_.payload_size();
  obs::ScopedSpan span(trace_, "store.read_group", trace_track_,
                       {{"n", static_cast<int64_t>(k)}});
  cells_.user_reads.Add(k);
  if (k > 1) cells_.batched_requests.Add(k);
  const double t0 = Clock();

  scan_scratch_.assign(k, 0);
  dup_scratch_.assign(k, 0);
  ghost_scratch_.assign(k, 0);
  std::vector<uint8_t>& scan = scan_scratch_;
  std::vector<uint8_t>& dup = dup_scratch_;
  std::vector<uint8_t>& ghost = ghost_scratch_;
  std::unordered_map<RecordId, size_t> first_scan;
  bool any_scan = false;
  for (size_t i = 0; i < k; ++i) {
    const auto buf_it = buffer_.find(ids[i]);
    if (buf_it != buffer_.end()) {
      // Buffer hit: served from agent memory, no observable I/O.
      cells_.buffer_hits.Increment();
      std::memcpy(out_payloads + i * ps, buf_it->second.data(),
                  buf_it->second.size());
      continue;
    }
    const auto flush_it = flushing_.find(ids[i]);
    if (flush_it != flushing_.end()) {
      // Ghost: the record sits in the pending flush snapshot a re-order
      // chain is still installing. Served from agent memory, but traced
      // like the blocking schedule — where it would occupy the freshly
      // rebuilt level — with a full decoy sweep.
      scan[i] = 1;
      dup[i] = 1;
      ghost[i] = 1;
      any_scan = true;
      std::memcpy(out_payloads + i * ps, flush_it->second.data(),
                  flush_it->second.size());
      continue;
    }
    scan[i] = 1;
    any_scan = true;
    const auto [it, inserted] = first_scan.try_emplace(ids[i], i);
    if (!inserted) dup[i] = 1;  // duplicated real slot: all-decoy probes
  }

  if (any_scan) {
    STEGHIDE_RETURN_IF_ERROR(PlanScan(ids, scan, dup));
    STEGHIDE_RETURN_IF_ERROR(ExecuteScan(out_payloads));
    for (size_t i = 0; i < k; ++i) {
      if (dup[i] && !ghost[i]) {
        std::memcpy(out_payloads + i * ps,
                    out_payloads + first_scan[ids[i]] * ps, ps);
      }
    }
  }
  stats_.retrieve_ms += Clock() - t0;

  // Scanned records re-join the buffer so the slots just exposed are
  // never read again before a re-order; ghosts re-join too, exactly as
  // their blocking twins would after their level-1 probe. The flush runs
  // once per group.
  for (size_t i = 0; i < k; ++i) {
    if (scan[i] && (!dup[i] || ghost[i])) {
      BufferStage(ids[i], out_payloads + i * ps);
    }
  }
  STEGHIDE_RETURN_IF_ERROR(MaybeFlush());
  return PaceChainLocked(k);
}

Status ObliviousStore::WriteGroup(std::span<const RecordId> ids,
                                  const uint8_t* payloads) {
  const size_t k = ids.size();
  const size_t ps = codec_.payload_size();
  obs::ScopedSpan span(trace_, "store.write_group", trace_track_,
                       {{"n", static_cast<int64_t>(k)}});
  if (k > 1) cells_.batched_requests.Add(k);

  // Capacity pre-check so the group applies atomically.
  uint64_t fresh = 0;
  {
    std::unordered_set<RecordId> seen;
    for (size_t i = 0; i < k; ++i) {
      if (!ContainsLocked(ids[i]) && seen.insert(ids[i]).second) ++fresh;
    }
    if (present_index_.size() + fresh > options_.capacity_blocks) {
      return Status::NoSpace("oblivious store at capacity");
    }
  }

  const double t0 = Clock();
  scan_scratch_.assign(k, 0);
  dup_scratch_.assign(k, 0);
  std::vector<uint8_t>& scan = scan_scratch_;
  std::vector<uint8_t>& decoy_only = dup_scratch_;
  // Ids that will be in the buffer by the time a later group member is
  // processed (insert or scan earlier in the group): later occurrences
  // take the buffer-hit shape, exactly as the sequential path would.
  std::unordered_set<RecordId> staged;
  // First-time ids register only after the fallible scan below, so a
  // failed group never strands a present id that is stored nowhere.
  std::vector<RecordId> fresh_ids;
  bool any_scan = false;
  for (size_t i = 0; i < k; ++i) {
    const RecordId id = ids[i];
    if (!ContainsLocked(id) && staged.count(id) == 0) {
      // First-time insertion: buffer-only, no level touches (the caller's
      // fetch from the StegFS partition was the observable I/O).
      fresh_ids.push_back(id);
      staged.insert(id);
      continue;
    }
    cells_.user_writes.Increment();
    if (buffer_.find(id) != buffer_.end() || staged.count(id) != 0) continue;
    // Same touch pattern as a read — an observer cannot tell a hidden
    // update from a retrieval. The fetched content is superseded. A
    // record parked in the pending flush snapshot gets the ghost shape:
    // all-decoy probes, new payload through the buffer.
    scan[i] = 1;
    any_scan = true;
    staged.insert(id);
    if (flushing_.find(id) != flushing_.end()) decoy_only[i] = 1;
  }

  if (any_scan) {
    STEGHIDE_RETURN_IF_ERROR(PlanScan(ids, scan, decoy_only));
    STEGHIDE_RETURN_IF_ERROR(ExecuteScan(nullptr));
  }
  stats_.retrieve_ms += Clock() - t0;

  for (const RecordId id : fresh_ids) {
    // Infallible: the capacity pre-check above covered every fresh id.
    STEGHIDE_RETURN_IF_ERROR(RegisterPresent(id));
  }
  for (size_t i = 0; i < k; ++i) BufferStage(ids[i], payloads + i * ps);
  STEGHIDE_RETURN_IF_ERROR(MaybeFlush());
  return PaceChainLocked(k);
}

Status ObliviousStore::Read(RecordId id, uint8_t* out_payload) {
  std::lock_guard<std::mutex> lock(mu_);
  return MultiReadLocked(std::span<const RecordId>(&id, 1), out_payload);
}

Status ObliviousStore::MultiRead(std::span<const RecordId> ids,
                                 uint8_t* out_payloads) {
  std::lock_guard<std::mutex> lock(mu_);
  return MultiReadLocked(ids, out_payloads);
}

Status ObliviousStore::MultiReadLocked(std::span<const RecordId> ids,
                                       uint8_t* out_payloads) {
  for (const RecordId id : ids) {
    if (!ContainsLocked(id)) return Status::NotFound("record not cached");
  }
  const size_t max_k = options_.buffer_blocks;
  for (size_t off = 0; off < ids.size(); off += max_k) {
    const size_t n = std::min(max_k, ids.size() - off);
    STEGHIDE_RETURN_IF_ERROR(ReadGroup(
        ids.subspan(off, n), out_payloads + off * codec_.payload_size()));
  }
  return Status::OK();
}

Status ObliviousStore::Write(RecordId id, const uint8_t* payload) {
  std::lock_guard<std::mutex> lock(mu_);
  return MultiWriteLocked(std::span<const RecordId>(&id, 1), payload);
}

Status ObliviousStore::MultiWrite(std::span<const RecordId> ids,
                                  const uint8_t* payloads) {
  std::lock_guard<std::mutex> lock(mu_);
  return MultiWriteLocked(ids, payloads);
}

Status ObliviousStore::MultiWriteLocked(std::span<const RecordId> ids,
                                        const uint8_t* payloads) {
  const size_t max_k = options_.buffer_blocks;
  for (size_t off = 0; off < ids.size(); off += max_k) {
    const size_t n = std::min(max_k, ids.size() - off);
    STEGHIDE_RETURN_IF_ERROR(WriteGroup(
        ids.subspan(off, n), payloads + off * codec_.payload_size()));
  }
  return Status::OK();
}

Status ObliviousStore::Insert(RecordId id, const uint8_t* payload) {
  std::lock_guard<std::mutex> lock(mu_);
  STEGHIDE_RETURN_IF_ERROR(RegisterPresent(id));
  BufferStage(id, payload);
  STEGHIDE_RETURN_IF_ERROR(MaybeFlush());
  return PaceChainLocked(1);
}

Status ObliviousStore::MultiInsert(std::span<const RecordId> ids,
                                   const uint8_t* payloads) {
  std::lock_guard<std::mutex> lock(mu_);
  return MultiInsertLocked(ids, payloads);
}

Status ObliviousStore::MultiInsertLocked(std::span<const RecordId> ids,
                                         const uint8_t* payloads) {
  const size_t max_k = options_.buffer_blocks;
  const size_t ps = codec_.payload_size();
  for (size_t off = 0; off < ids.size(); off += max_k) {
    const size_t n = std::min(max_k, ids.size() - off);
    uint64_t fresh = 0;
    std::unordered_set<RecordId> seen;
    for (size_t i = 0; i < n; ++i) {
      const RecordId id = ids[off + i];
      if (!ContainsLocked(id) && seen.insert(id).second) ++fresh;
    }
    if (present_index_.size() + fresh > options_.capacity_blocks) {
      return Status::NoSpace("oblivious store at capacity");
    }
    for (size_t i = 0; i < n; ++i) {
      STEGHIDE_RETURN_IF_ERROR(RegisterPresent(ids[off + i]));
      BufferStage(ids[off + i], payloads + (off + i) * ps);
    }
    STEGHIDE_RETURN_IF_ERROR(MaybeFlush());
    STEGHIDE_RETURN_IF_ERROR(PaceChainLocked(n));
  }
  return Status::OK();
}

Status ObliviousStore::Remove(RecordId id) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = present_index_.find(id);
  if (it == present_index_.end()) return Status::NotFound("record not cached");
  buffer_.erase(id);
  flushing_.erase(id);
  // A chain snapshot may still carry the record; the tombstone strips it
  // from every index the chain installs, so an evicted record can never
  // be resurrected by an in-flight rebuild.
  if (ChainActiveLocked()) chain_tombstones_.insert(id);
  // Any authoritative level copy turns stale: still probed as a decoy
  // target, dropped at the next re-order.
  for (Level& level : levels_) level.index.Erase(id);
  // Swap-and-pop keeps dummy-read sampling uniform and O(1).
  const size_t pos = it->second;
  const RecordId last = present_list_.back();
  present_list_[pos] = last;
  present_index_[last] = pos;
  present_list_.pop_back();
  present_index_.erase(id);
  return Status::OK();
}

Status ObliviousStore::DummyRead() {
  std::lock_guard<std::mutex> lock(mu_);
  if (present_list_.empty()) return Status::OK();
  const RecordId id = present_list_[Drbg().Uniform(present_list_.size())];
  Bytes payload(codec_.payload_size());
  // Count as dummy, not user read.
  cells_.dummy_reads.Increment();
  cells_.user_reads.Subtract(1);  // the read below increments user_reads
  return MultiReadLocked(std::span<const RecordId>(&id, 1), payload.data());
}

Status ObliviousStore::StepReorder(uint64_t budget_blocks, bool* more) {
  std::lock_guard<std::mutex> lock(mu_);
  if (budget_blocks == 0) budget_blocks = options_.reorder_step_blocks;
  Status status = Status::OK();
  if (ChainActiveLocked()) {
    status = StepChainLocked(std::max<uint64_t>(1, budget_blocks),
                             /*stall=*/false);
  }
  if (more != nullptr) *more = ChainActiveLocked();
  return status;
}

Status ObliviousStore::RegisterPresent(RecordId id) {
  if (ContainsLocked(id)) return Status::OK();
  if (present_index_.size() >= options_.capacity_blocks) {
    return Status::NoSpace("oblivious store at capacity");
  }
  present_index_.emplace(id, present_list_.size());
  present_list_.push_back(id);
  return Status::OK();
}

void ObliviousStore::BufferStage(RecordId id, const uint8_t* payload) {
  Bytes& slot = buffer_[id];
  slot.assign(payload, payload + codec_.payload_size());
}

Status ObliviousStore::MaybeFlush() {
  if (buffer_.size() < options_.buffer_blocks) return Status::OK();
  return FlushBuffer();
}

Status ObliviousStore::FlushBuffer() {
  if (!options_.deamortize_reorders) {
    const double t0 = Clock();
    cells_.buffer_flushes.Increment();
    obs::ScopedSpan span(trace_, "store.flush", trace_track_,
                         {{"records", static_cast<int64_t>(buffer_.size())}});

    Level& level1 = levels_.front();
    // With a single level (k = 1) the level is also the last one; dedup at
    // re-order guarantees fit because distinct records never exceed N.
    // Deferred group flushes can stage up to 2B - 1 records, which still
    // fits level 1 (capacity 2B) once a dump empties it.
    if (levels_.size() > 1 &&
        level1.live_count() + buffer_.size() > level1.capacity) {
      STEGHIDE_RETURN_IF_ERROR(Dump(0));
    }

    std::vector<std::pair<RecordId, const Bytes*>> in_memory;
    in_memory.reserve(buffer_.size());
    for (const auto& [id, payload] : buffer_) {
      in_memory.emplace_back(id, &payload);
    }

    STEGHIDE_RETURN_IF_ERROR(ReorderInto(level1, nullptr, in_memory));
    buffer_.clear();
    // The whole flush/dump cascade ran inside this serving operation —
    // the stall the deamortized path exists to break up.
    const double dt = Clock() - t0;
    stats_.sort_ms += dt;
    stats_.stall_ms += dt;
    stats_.max_stall_ms = std::max(stats_.max_stall_ms, dt);
    cells_.stall.Record(dt);
    return Status::OK();
  }

  if (ChainActiveLocked()) {
    if (!options_.strict_reorder_schedule &&
        buffer_.size() < DeferLimitRecords()) {
      // Coalesce: let the running chain finish while the buffer keeps
      // absorbing stagings (bounded by defer_flush_limit). One rebuild
      // then absorbs the whole set, and a set that outgrows the upper
      // levels folds them — those records skip per-level rewrites.
      cells_.deferred_flushes.Increment();
      return Status::OK();
    }
    // Hard backstop (or strict schedule): finish the remaining chain
    // work synchronously. With pacing and idle pumping this remainder is
    // small — it is what max_stall_ms measures.
    STEGHIDE_RETURN_IF_ERROR(DrainChainLocked());
  }
  return StartFlushChainLocked();
}

Status ObliviousStore::Dump(size_t i) {
  // Levels are 0-indexed here; the paper's dump(i) merges level i into
  // level i+1, cascading when the target is itself full.
  if (i + 1 >= levels_.size()) {
    return Status::Internal("dump called on the last level");
  }
  Level& source = levels_[i];
  Level& target = levels_[i + 1];
  if (i + 2 < levels_.size() &&
      target.live_count() + source.live_count() > target.capacity) {
    STEGHIDE_RETURN_IF_ERROR(Dump(i + 1));
  }
  // For the last level the capacity equals the store's record capacity,
  // so the merged (deduplicated) content always fits.
  return ReorderInto(target, &source, {});
}

Status ObliviousStore::ReorderInto(
    Level& target, Level* source,
    const std::vector<std::pair<RecordId, const Bytes*>>& in_memory) {
  const size_t level_idx = static_cast<size_t>(&target - levels_.data());
  const double t0 = Clock();
  obs::ScopedSpan span(trace_, "store.reorder", trace_track_,
                       {{"level", static_cast<int64_t>(level_idx) + 1}});
  sorter_->Reset();
  reorder_added_.clear();
  reorder_added_.reserve(target.capacity);

  // Priority: in-memory (newest) > source level > target level.
  for (const auto& [id, payload] : in_memory) {
    STEGHIDE_RETURN_IF_ERROR(
        sorter_->AddInMemory(*payload, Drbg().NextUint64(), id));
    reorder_added_.insert(id);
  }
  for (Level* src : {source, &target}) {
    if (src == nullptr) continue;
    for (uint64_t slot = 0; slot < src->occupied(); ++slot) {
      const RecordId id = src->slot_ids[slot];
      if (src->IsStale(slot)) continue;
      if (reorder_added_.find(id) != reorder_added_.end()) continue;
      reorder_added_.insert(id);
      STEGHIDE_RETURN_IF_ERROR(
          sorter_->Add(src->base + slot, Drbg().NextUint64(), id));
    }
  }

  if (reorder_added_.size() > target.capacity) {
    return Status::Internal("re-order overflow: level capacity exceeded");
  }

  STEGHIDE_ASSIGN_OR_RETURN(std::vector<uint64_t> order,
                            sorter_->Finish(target.base));
  target.InstallOrder(std::move(order), Drbg().NextUint64());
  if (source != nullptr) source->Clear(Drbg().NextUint64());

  cells_.reorders.Increment();
  ++reorder_epoch_;
  cells_.reorder_reads.Add(sorter_->stats().reads);
  cells_.reorder_writes.Add(sorter_->stats().writes);
  STEGHIDE_RETURN_IF_ERROR(ChargeIndexRebuild(target));
  stats_.reorder_ms[level_idx] += Clock() - t0;
  return Status::OK();
}

// ---- Deamortized chain machinery -----------------------------------------

Status ObliviousStore::StartFlushChainLocked() {
  assert(!ChainActiveLocked() && flushing_.empty());
  cells_.buffer_flushes.Increment();
  flushing_ = std::move(buffer_);
  buffer_.clear();
  const uint64_t flush_size = flushing_.size();

  // Choose the flush target: the first level whose capacity covers the
  // flush set plus every level folded above it (conservative, pre-dedup
  // — the last level always qualifies because distinct records never
  // exceed N). In the strict schedule the flush set is at most 2B - 1,
  // so t == 0 and the plan is exactly the blocking recursion; deferral
  // can grow the set past 2B, which folds level 1 (and, in principle,
  // deeper levels) into the flush job.
  size_t t = 0;
  uint64_t folded_live = 0;
  while (t + 1 < levels_.size() &&
         levels_[t].capacity < flush_size + folded_live) {
    folded_live += levels_[t].live_count();
    ++t;
  }

  // Mirror the blocking Dump recursion (deepest re-order first) with
  // live counts frozen at this trigger.
  std::vector<size_t> dump_sources;
  bool include_target_live = true;
  if (t + 1 < levels_.size() &&
      levels_[t].live_count() + flush_size + folded_live >
          levels_[t].capacity) {
    include_target_live = false;
    const std::function<void(size_t)> plan_dump = [&](size_t s) {
      if (s + 2 < levels_.size() &&
          levels_[s + 1].live_count() + levels_[s].live_count() >
              levels_[s + 1].capacity) {
        plan_dump(s + 1);
      }
      dump_sources.push_back(s);
    };
    plan_dump(t);
  }

  chain_ = std::make_unique<ReorderChain>();
  projection_.assign(levels_.size(), LevelProjection{});

  // Snapshot one job's inputs: ascending live-slot sweeps with the
  // blocking dedup priority (memory > higher levels > target), tags
  // drawn per item exactly as the blocking adds would.
  const auto sweep_level = [&](size_t li, ReorderJob::Inputs& inputs) {
    const Level& level = levels_[li];
    for (uint64_t slot = 0; slot < level.occupied(); ++slot) {
      const RecordId id = level.slot_ids[slot];
      if (level.IsStale(slot)) continue;
      if (!reorder_added_.insert(id).second) continue;
      inputs.device.push_back(
          {level.base + slot, id, Drbg().NextUint64()});
    }
  };
  const auto make_job = [&](size_t target_idx, ReorderJob::Inputs inputs,
                            std::vector<size_t> clears, bool is_flush)
      -> Status {
    const uint64_t count = inputs.device.size() + inputs.memory.size();
    if (count > levels_[target_idx].capacity) {
      return Status::Internal("re-order overflow: level capacity exceeded");
    }
    ChainStep step;
    step.job = std::make_unique<ReorderJob>(
        maint_device_, &codec_, &cipher_, sorter_.get(), target_idx,
        levels_[target_idx].alt_base, std::move(inputs));
    step.clears = std::move(clears);
    step.is_flush = is_flush;
    projection_[target_idx] = LevelProjection{
        true, count, levels_[target_idx].alt_base};
    chain_->steps.push_back(std::move(step));
    return Status::OK();
  };

  for (size_t j = 0; j < dump_sources.size(); ++j) {
    const size_t s = dump_sources[j];
    reorder_added_.clear();
    reorder_added_.reserve(levels_[s + 1].capacity);
    ReorderJob::Inputs inputs;
    sweep_level(s, inputs);
    if (j == 0) sweep_level(s + 1, inputs);  // deepest target keeps its live set
    STEGHIDE_RETURN_IF_ERROR(
        make_job(s + 1, std::move(inputs), {s}, /*is_flush=*/false));
  }

  reorder_added_.clear();
  reorder_added_.reserve(levels_[t].capacity);
  ReorderJob::Inputs flush_inputs;
  flush_inputs.memory.reserve(flush_size);
  for (const auto& [id, payload] : flushing_) {
    flush_inputs.memory.push_back({id, payload, Drbg().NextUint64()});
    reorder_added_.insert(id);
  }
  std::vector<size_t> flush_clears;
  for (size_t li = 0; li < t; ++li) {
    sweep_level(li, flush_inputs);
    flush_clears.push_back(li);
    if (!projection_[li].involved) {
      // Folded level: emptied at the flush install and not refilled by
      // this chain; projected empty so no pending-fill probes.
      projection_[li] = LevelProjection{true, 0, levels_[li].alt_base};
    }
  }
  if (include_target_live) sweep_level(t, flush_inputs);
  STEGHIDE_RETURN_IF_ERROR(make_job(t, std::move(flush_inputs),
                                    std::move(flush_clears),
                                    /*is_flush=*/true));
  UpdateChainGaugesLocked();
  if (trace_ != nullptr) {
    trace_->Instant("store.chain_start", trace_track_,
                    {{"records", static_cast<int64_t>(flush_size)},
                     {"steps", static_cast<int64_t>(chain_->steps.size())}});
  }
  return Status::OK();
}

Status ObliviousStore::InstallFrontJobLocked() {
  // The install proper is all-memory and infallible: flip, tombstones,
  // source clears, snapshot retirement, step pop. Only then runs the
  // fallible index-rebuild charge — so an I/O error there leaves the
  // chain in a consistent, resumable state instead of re-entering a
  // half-installed flip on the retry.
  ChainStep front = std::move(chain_->steps.front());
  chain_->steps.pop_front();
  chain_->front_reads_seen = 0;
  chain_->front_writes_seen = 0;
  ReorderJob& job = *front.job;
  Level& target = levels_[job.target_level()];
  target.InstallOrderAt(job.dst_base(), job.TakeOrder(), Drbg().NextUint64());
  // Strip records evicted while the snapshot was in flight: their slots
  // turn stale (decoy fodder until the next re-order), unreachable.
  for (const RecordId id : chain_tombstones_) target.index.Erase(id);
  for (const size_t li : front.clears) levels_[li].Clear(Drbg().NextUint64());
  if (front.is_flush) flushing_.clear();
  cells_.reorders.Increment();
  ++reorder_epoch_;
  if (trace_ != nullptr) {
    trace_->Instant(
        "store.install", trace_track_,
        {{"level", static_cast<int64_t>(job.target_level()) + 1}});
  }
  if (chain_->steps.empty()) {
    chain_.reset();
    chain_tombstones_.clear();
    projection_.assign(levels_.size(), LevelProjection{});
  }
  return ChargeIndexRebuild(target);
}

Status ObliviousStore::StepChainLocked(uint64_t budget_blocks, bool stall) {
  if (!ChainActiveLocked()) return Status::OK();
  cells_.reorder_steps.Increment();
  obs::ScopedSpan span(trace_, "store.reorder_step", trace_track_,
                       {{"stall", stall ? 1 : 0}});
  const double t0 = Clock();
  uint64_t used = 0;
  while (ChainActiveLocked()) {
    ChainStep& front = chain_->steps.front();
    ReorderJob& job = *front.job;
    if (job.done()) {
      STEGHIDE_RETURN_IF_ERROR(InstallFrontJobLocked());
      continue;
    }
    if (used >= budget_blocks) break;
    const double jt0 = Clock();
    uint64_t consumed = 0;
    const Status status = job.Step(budget_blocks - used, &consumed);
    // Account the job's I/O and per-level time as it happens, so stats
    // snapshots mid-chain stay meaningful.
    cells_.reorder_reads.Add(job.reads() - chain_->front_reads_seen);
    cells_.reorder_writes.Add(job.writes() - chain_->front_writes_seen);
    chain_->front_reads_seen = job.reads();
    chain_->front_writes_seen = job.writes();
    stats_.reorder_ms[job.target_level()] += Clock() - jt0;
    STEGHIDE_RETURN_IF_ERROR(status);
    used += consumed;
  }
  span.AddArg("used", static_cast<int64_t>(used));
  const double dt = Clock() - t0;
  stats_.sort_ms += dt;
  if (stall) {
    stats_.stall_ms += dt;
    stats_.max_stall_ms = std::max(stats_.max_stall_ms, dt);
    cells_.stall.Record(dt);
  }
  UpdateChainGaugesLocked();
  return Status::OK();
}

Status ObliviousStore::DrainChainLocked() {
  return StepChainLocked(std::numeric_limits<uint64_t>::max(),
                         /*stall=*/true);
}

Status ObliviousStore::PaceChainLocked(uint64_t staged) {
  if (!ChainActiveLocked()) return Status::OK();
  // Self-pacing serving tax: spread the chain's remaining work evenly
  // over the stagings left before the hard flush backstop would force a
  // drain — proportionally to how many records this op just staged, so
  // a B-request group pays B stagings' worth, not one op's. Idle pumping
  // (StepReorder) shrinks the remainder, and with it this tax — toward
  // zero when the dispatcher has real idle gaps.
  uint64_t remaining = 0;
  for (const ChainStep& step : chain_->steps) {
    remaining += step.job->remaining_blocks();
  }
  const uint64_t backstop = options_.strict_reorder_schedule
                                ? options_.buffer_blocks
                                : DeferLimitRecords();
  const uint64_t room =
      backstop > buffer_.size() ? backstop - buffer_.size() : 1;
  const uint64_t share =
      (remaining * std::max<uint64_t>(1, staged) + room - 1) / room;
  const uint64_t budget =
      std::max<uint64_t>(options_.reorder_step_blocks, share);
  return StepChainLocked(budget, /*stall=*/true);
}

void ObliviousStore::UpdateChainGaugesLocked() {
  uint64_t steps = 0;
  uint64_t remaining = 0;
  if (chain_ != nullptr) {
    steps = chain_->steps.size();
    for (const ChainStep& step : chain_->steps) {
      remaining += step.job->remaining_blocks();
    }
  }
  cells_.chain_pending_steps.Set(static_cast<double>(steps));
  cells_.chain_remaining_blocks.Set(static_cast<double>(remaining));
}

}  // namespace steghide::oblivious
