#include "oblivious/oblivious_store.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <unordered_set>

#include "crypto/key.h"
#include "oblivious/merge_sort.h"

namespace steghide::oblivious {

namespace {
bool IsPowerOfTwo(uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }
}  // namespace

ObliviousStore::ObliviousStore(storage::BlockDevice* device,
                               const ObliviousStoreOptions& options)
    : device_(device),
      options_(options),
      codec_(device->block_size()),
      drbg_(options.drbg_seed),
      scheduler_(device) {
  // Probe counts are part of the attacker-visible pattern; the scheduler
  // must issue them verbatim (no coalescing of colliding decoys).
  scheduler_.set_preserve_pattern(true);
}

Result<std::unique_ptr<ObliviousStore>> ObliviousStore::Create(
    storage::BlockDevice* device, const ObliviousStoreOptions& options) {
  const uint64_t b = options.buffer_blocks;
  const uint64_t n = options.capacity_blocks;
  if (b == 0 || n <= b || n % b != 0 || !IsPowerOfTwo(n / b)) {
    return Status::InvalidArgument(
        "capacity must be buffer * 2^k with k >= 1");
  }
  std::unique_ptr<ObliviousStore> store(new ObliviousStore(device, options));

  Bytes key = options.store_key.empty()
                  ? store->drbg_.Generate(crypto::kDefaultKeyLen)
                  : options.store_key;
  STEGHIDE_RETURN_IF_ERROR(store->cipher_.SetKey(key));

  uint64_t base = options.partition_base;
  for (uint64_t cap = 2 * b; cap <= n; cap *= 2) {
    Level level;
    level.base = base;
    level.capacity = cap;
    base += cap;
    store->levels_.push_back(std::move(level));
  }
  const uint64_t hierarchy_end = base;

  // Geometry checks: hierarchy and scratch must fit the device and not
  // overlap each other.
  if (hierarchy_end > device->num_blocks() ||
      options.scratch_base + n > device->num_blocks()) {
    return Status::InvalidArgument("oblivious partitions exceed device");
  }
  const bool overlap = options.scratch_base < hierarchy_end &&
                       options.partition_base < options.scratch_base + n;
  if (overlap) {
    return Status::InvalidArgument("scratch overlaps level hierarchy");
  }
  return store;
}

uint64_t ObliviousStore::hierarchy_blocks() const {
  return 2 * options_.capacity_blocks - 2 * options_.buffer_blocks;
}

std::vector<uint64_t> ObliviousStore::LevelOccupancy() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<uint64_t> occ;
  occ.reserve(levels_.size());
  for (const Level& level : levels_) occ.push_back(level.live_count());
  return occ;
}

Status ObliviousStore::ChargeIndexRebuild(const Level& level) {
  if (!options_.charge_index_io) return Status::OK();
  // 16 bytes per entry (hashed key + slot), written sequentially.
  const uint64_t entry_bytes = 16 * level.live_count();
  const uint64_t blocks =
      (entry_bytes + codec_.block_size() - 1) / codec_.block_size();
  Bytes block(codec_.block_size(), 0);
  for (uint64_t i = 0; i < blocks && i < level.capacity; ++i) {
    STEGHIDE_RETURN_IF_ERROR(
        device_->WriteBlock(level.base + i, block.data()));
    ++stats_.index_io;
  }
  return Status::OK();
}

Status ObliviousStore::PlanScan(std::span<const RecordId> ids,
                                std::span<const uint8_t> scan,
                                std::span<const uint8_t> dup) {
  ++stats_.scan_passes;
  const size_t k = ids.size();
  size_t scan_k = 0;
  for (size_t i = 0; i < k; ++i) scan_k += scan[i] != 0;

  plan_.Reset();
  std::vector<uint8_t> found(k, 0);
  for (Level& level : levels_) {
    if (level.empty()) continue;
    ScanPlan::LevelPass& pass = plan_.AppendPass();
    pass.probes.reserve(scan_k + 1);
    if (options_.charge_index_io) {
      // The spilled index "in the front of the corresponding level" is
      // read once per pass and answers every lookup of the group — this
      // amortization is what lowers the overhead *factor* with k.
      pass.probes.push_back({level.base, ScanPlan::kDecoy});
      ++stats_.index_io;
      stats_.probes_saved += scan_k - 1;
    }
    for (size_t i = 0; i < k; ++i) {
      if (!scan[i]) continue;
      const auto hit = level.index.Get(ids[i]);
      if (!dup[i] && !found[i] && hit.has_value()) {
        found[i] = 1;
        pass.probes.push_back({level.base + *hit, i});
      } else {
        // Decoy: uniformly random occupied slot. Stale slots are
        // eligible — to the observer every slot is the same.
        pass.probes.push_back(
            {level.base + drbg_.Uniform(level.occupied()), ScanPlan::kDecoy});
      }
      ++stats_.level_probe_reads;
    }
    // Elevator order within the pass: the probe multiset is a fresh set
    // of uniform draws plus real slots of a concealed permutation, so
    // its sorted image is data-independent. stable_sort keeps the index
    // probe ahead of a colliding slot-0 probe, preserving the k = 1
    // issue sequence bit-for-bit.
    std::stable_sort(
        pass.probes.begin(), pass.probes.end(),
        [](const ScanPlan::Probe& a, const ScanPlan::Probe& b) {
          return a.block < b.block;
        });
  }
  for (size_t i = 0; i < k; ++i) {
    if (scan[i] && !dup[i] && !found[i]) {
      return Status::Internal("record in present set but not found in levels");
    }
  }
  return Status::OK();
}

Status ObliviousStore::ExecuteScan(uint8_t* out_payloads) {
  // One IoBatch per level pass, one drain for the whole sweep. The
  // pattern-preserving scheduler issues each pass as a vectored read, so
  // a cache or timing model underneath sees whole per-level batches
  // while the per-block sequence stays exactly the planned one.
  const size_t bs = codec_.block_size();
  if (pass_bufs_.size() < plan_.count) pass_bufs_.resize(plan_.count);
  for (size_t p = 0; p < plan_.count; ++p) {
    const auto& probes = plan_.passes[p].probes;
    pass_bufs_[p].resize(probes.size() * bs);
    storage::IoBatch batch;
    batch.requests.reserve(probes.size());
    for (size_t i = 0; i < probes.size(); ++i) {
      batch.Read(probes[i].block, pass_bufs_[p].data() + i * bs);
    }
    scheduler_.Submit(std::move(batch));
  }
  STEGHIDE_RETURN_IF_ERROR(scheduler_.Drain());

  // Per-request decrypt + extract (decoys stay sealed).
  payload_scratch_.resize(codec_.payload_size());
  for (size_t p = 0; p < plan_.count; ++p) {
    const auto& probes = plan_.passes[p].probes;
    for (size_t i = 0; i < probes.size(); ++i) {
      if (probes[i].owner == ScanPlan::kDecoy) continue;
      STEGHIDE_RETURN_IF_ERROR(codec_.Open(cipher_, pass_bufs_[p].data() + i * bs,
                                           payload_scratch_.data()));
      if (out_payloads != nullptr) {
        std::memcpy(out_payloads + probes[i].owner * codec_.payload_size(),
                    payload_scratch_.data(), payload_scratch_.size());
      }
    }
  }
  return Status::OK();
}

Status ObliviousStore::ReadGroup(std::span<const RecordId> ids,
                                 uint8_t* out_payloads) {
  const size_t k = ids.size();
  const size_t ps = codec_.payload_size();
  stats_.user_reads += k;
  if (k > 1) stats_.batched_requests += k;
  const double t0 = Clock();

  scan_scratch_.assign(k, 0);
  dup_scratch_.assign(k, 0);
  std::vector<uint8_t>& scan = scan_scratch_;
  std::vector<uint8_t>& dup = dup_scratch_;
  std::unordered_map<RecordId, size_t> first_scan;
  bool any_scan = false;
  for (size_t i = 0; i < k; ++i) {
    const auto buf_it = buffer_.find(ids[i]);
    if (buf_it != buffer_.end()) {
      // Buffer hit: served from agent memory, no observable I/O.
      ++stats_.buffer_hits;
      std::memcpy(out_payloads + i * ps, buf_it->second.data(),
                  buf_it->second.size());
      continue;
    }
    scan[i] = 1;
    any_scan = true;
    const auto [it, inserted] = first_scan.try_emplace(ids[i], i);
    if (!inserted) dup[i] = 1;  // duplicated real slot: all-decoy probes
  }

  if (any_scan) {
    STEGHIDE_RETURN_IF_ERROR(PlanScan(ids, scan, dup));
    STEGHIDE_RETURN_IF_ERROR(ExecuteScan(out_payloads));
    for (size_t i = 0; i < k; ++i) {
      if (dup[i]) {
        std::memcpy(out_payloads + i * ps,
                    out_payloads + first_scan[ids[i]] * ps, ps);
      }
    }
  }
  stats_.retrieve_ms += Clock() - t0;

  // Scanned records re-join the buffer so the slots just exposed are
  // never read again before a re-order; the flush runs once per group.
  for (size_t i = 0; i < k; ++i) {
    if (scan[i] && !dup[i]) BufferStage(ids[i], out_payloads + i * ps);
  }
  return MaybeFlush();
}

Status ObliviousStore::WriteGroup(std::span<const RecordId> ids,
                                  const uint8_t* payloads) {
  const size_t k = ids.size();
  const size_t ps = codec_.payload_size();
  if (k > 1) stats_.batched_requests += k;

  // Capacity pre-check so the group applies atomically.
  uint64_t fresh = 0;
  {
    std::unordered_set<RecordId> seen;
    for (size_t i = 0; i < k; ++i) {
      if (!ContainsLocked(ids[i]) && seen.insert(ids[i]).second) ++fresh;
    }
    if (present_index_.size() + fresh > options_.capacity_blocks) {
      return Status::NoSpace("oblivious store at capacity");
    }
  }

  const double t0 = Clock();
  scan_scratch_.assign(k, 0);
  std::vector<uint8_t>& scan = scan_scratch_;
  std::vector<uint8_t>& none = dup_scratch_;
  // Ids that will be in the buffer by the time a later group member is
  // processed (insert or scan earlier in the group): later occurrences
  // take the buffer-hit shape, exactly as the sequential path would.
  std::unordered_set<RecordId> staged;
  // First-time ids register only after the fallible scan below, so a
  // failed group never strands a present id that is stored nowhere.
  std::vector<RecordId> fresh_ids;
  bool any_scan = false;
  for (size_t i = 0; i < k; ++i) {
    const RecordId id = ids[i];
    if (!ContainsLocked(id) && staged.count(id) == 0) {
      // First-time insertion: buffer-only, no level touches (the caller's
      // fetch from the StegFS partition was the observable I/O).
      fresh_ids.push_back(id);
      staged.insert(id);
      continue;
    }
    ++stats_.user_writes;
    if (buffer_.find(id) != buffer_.end() || staged.count(id) != 0) continue;
    // Same touch pattern as a read — an observer cannot tell a hidden
    // update from a retrieval. The fetched content is superseded.
    scan[i] = 1;
    any_scan = true;
    staged.insert(id);
  }

  if (any_scan) {
    none.assign(k, 0);
    STEGHIDE_RETURN_IF_ERROR(PlanScan(ids, scan, none));
    STEGHIDE_RETURN_IF_ERROR(ExecuteScan(nullptr));
  }
  stats_.retrieve_ms += Clock() - t0;

  for (const RecordId id : fresh_ids) {
    // Infallible: the capacity pre-check above covered every fresh id.
    STEGHIDE_RETURN_IF_ERROR(RegisterPresent(id));
  }
  for (size_t i = 0; i < k; ++i) BufferStage(ids[i], payloads + i * ps);
  return MaybeFlush();
}

Status ObliviousStore::Read(RecordId id, uint8_t* out_payload) {
  std::lock_guard<std::mutex> lock(mu_);
  return MultiReadLocked(std::span<const RecordId>(&id, 1), out_payload);
}

Status ObliviousStore::MultiRead(std::span<const RecordId> ids,
                                 uint8_t* out_payloads) {
  std::lock_guard<std::mutex> lock(mu_);
  return MultiReadLocked(ids, out_payloads);
}

Status ObliviousStore::MultiReadLocked(std::span<const RecordId> ids,
                                       uint8_t* out_payloads) {
  for (const RecordId id : ids) {
    if (!ContainsLocked(id)) return Status::NotFound("record not cached");
  }
  const size_t max_k = options_.buffer_blocks;
  for (size_t off = 0; off < ids.size(); off += max_k) {
    const size_t n = std::min(max_k, ids.size() - off);
    STEGHIDE_RETURN_IF_ERROR(ReadGroup(
        ids.subspan(off, n), out_payloads + off * codec_.payload_size()));
  }
  return Status::OK();
}

Status ObliviousStore::Write(RecordId id, const uint8_t* payload) {
  std::lock_guard<std::mutex> lock(mu_);
  return MultiWriteLocked(std::span<const RecordId>(&id, 1), payload);
}

Status ObliviousStore::MultiWrite(std::span<const RecordId> ids,
                                  const uint8_t* payloads) {
  std::lock_guard<std::mutex> lock(mu_);
  return MultiWriteLocked(ids, payloads);
}

Status ObliviousStore::MultiWriteLocked(std::span<const RecordId> ids,
                                        const uint8_t* payloads) {
  const size_t max_k = options_.buffer_blocks;
  for (size_t off = 0; off < ids.size(); off += max_k) {
    const size_t n = std::min(max_k, ids.size() - off);
    STEGHIDE_RETURN_IF_ERROR(WriteGroup(
        ids.subspan(off, n), payloads + off * codec_.payload_size()));
  }
  return Status::OK();
}

Status ObliviousStore::Insert(RecordId id, const uint8_t* payload) {
  std::lock_guard<std::mutex> lock(mu_);
  STEGHIDE_RETURN_IF_ERROR(RegisterPresent(id));
  BufferStage(id, payload);
  return MaybeFlush();
}

Status ObliviousStore::MultiInsert(std::span<const RecordId> ids,
                                   const uint8_t* payloads) {
  std::lock_guard<std::mutex> lock(mu_);
  return MultiInsertLocked(ids, payloads);
}

Status ObliviousStore::MultiInsertLocked(std::span<const RecordId> ids,
                                         const uint8_t* payloads) {
  const size_t max_k = options_.buffer_blocks;
  const size_t ps = codec_.payload_size();
  for (size_t off = 0; off < ids.size(); off += max_k) {
    const size_t n = std::min(max_k, ids.size() - off);
    uint64_t fresh = 0;
    std::unordered_set<RecordId> seen;
    for (size_t i = 0; i < n; ++i) {
      const RecordId id = ids[off + i];
      if (!ContainsLocked(id) && seen.insert(id).second) ++fresh;
    }
    if (present_index_.size() + fresh > options_.capacity_blocks) {
      return Status::NoSpace("oblivious store at capacity");
    }
    for (size_t i = 0; i < n; ++i) {
      STEGHIDE_RETURN_IF_ERROR(RegisterPresent(ids[off + i]));
      BufferStage(ids[off + i], payloads + (off + i) * ps);
    }
    STEGHIDE_RETURN_IF_ERROR(MaybeFlush());
  }
  return Status::OK();
}

Status ObliviousStore::Remove(RecordId id) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = present_index_.find(id);
  if (it == present_index_.end()) return Status::NotFound("record not cached");
  buffer_.erase(id);
  // Any authoritative level copy turns stale: still probed as a decoy
  // target, dropped at the next re-order.
  for (Level& level : levels_) level.index.Erase(id);
  // Swap-and-pop keeps dummy-read sampling uniform and O(1).
  const size_t pos = it->second;
  const RecordId last = present_list_.back();
  present_list_[pos] = last;
  present_index_[last] = pos;
  present_list_.pop_back();
  present_index_.erase(id);
  return Status::OK();
}

Status ObliviousStore::DummyRead() {
  std::lock_guard<std::mutex> lock(mu_);
  if (present_list_.empty()) return Status::OK();
  const RecordId id = present_list_[drbg_.Uniform(present_list_.size())];
  Bytes payload(codec_.payload_size());
  // Count as dummy, not user read.
  ++stats_.dummy_reads;
  --stats_.user_reads;  // the read below increments user_reads
  return MultiReadLocked(std::span<const RecordId>(&id, 1), payload.data());
}

Status ObliviousStore::RegisterPresent(RecordId id) {
  if (ContainsLocked(id)) return Status::OK();
  if (present_index_.size() >= options_.capacity_blocks) {
    return Status::NoSpace("oblivious store at capacity");
  }
  present_index_.emplace(id, present_list_.size());
  present_list_.push_back(id);
  return Status::OK();
}

void ObliviousStore::BufferStage(RecordId id, const uint8_t* payload) {
  Bytes& slot = buffer_[id];
  slot.assign(payload, payload + codec_.payload_size());
}

Status ObliviousStore::MaybeFlush() {
  if (buffer_.size() < options_.buffer_blocks) return Status::OK();
  return FlushBuffer();
}

Status ObliviousStore::FlushBuffer() {
  const double t0 = Clock();
  ++stats_.buffer_flushes;

  Level& level1 = levels_.front();
  // With a single level (k = 1) the level is also the last one; dedup at
  // re-order guarantees fit because distinct records never exceed N.
  // Deferred group flushes can stage up to 2B - 1 records, which still
  // fits level 1 (capacity 2B) once a dump empties it.
  if (levels_.size() > 1 &&
      level1.live_count() + buffer_.size() > level1.capacity) {
    STEGHIDE_RETURN_IF_ERROR(Dump(0));
  }

  std::vector<std::pair<RecordId, const Bytes*>> in_memory;
  in_memory.reserve(buffer_.size());
  for (const auto& [id, payload] : buffer_) in_memory.emplace_back(id, &payload);

  STEGHIDE_RETURN_IF_ERROR(ReorderInto(level1, nullptr, in_memory));
  buffer_.clear();
  stats_.sort_ms += Clock() - t0;
  return Status::OK();
}

Status ObliviousStore::Dump(size_t i) {
  // Levels are 0-indexed here; the paper's dump(i) merges level i into
  // level i+1, cascading when the target is itself full.
  if (i + 1 >= levels_.size()) {
    return Status::Internal("dump called on the last level");
  }
  Level& source = levels_[i];
  Level& target = levels_[i + 1];
  if (i + 2 < levels_.size() &&
      target.live_count() + source.live_count() > target.capacity) {
    STEGHIDE_RETURN_IF_ERROR(Dump(i + 1));
  }
  // For the last level the capacity equals the store's record capacity,
  // so the merged (deduplicated) content always fits.
  return ReorderInto(target, &source, {});
}

Status ObliviousStore::ReorderInto(
    Level& target, Level* source,
    const std::vector<std::pair<RecordId, const Bytes*>>& in_memory) {
  // Re-order run size: at least the agent buffer B, floored at 256
  // blocks (1 MB at 4 KB blocks — inside the agent-buffer envelope the
  // paper's own Figure 12 sweep explores, and the same order of memory
  // the merge's chunked look-ahead already uses). Small re-orders
  // (levels 1-2 always, deeper levels on small hierarchies) then sort
  // entirely in memory and write the destination in one ascending sweep,
  // skipping the scratch round-trip; the shuffle is unchanged (same
  // random-tag order), and the observable pattern stays data-
  // independent: read every live slot ascending, write the target
  // sequentially. Large levels still spill and merge externally.
  constexpr uint64_t kReorderRunFloor = 256;
  ExternalMergeSorter sorter(
      device_, &codec_, &cipher_, &drbg_, options_.scratch_base,
      std::max<uint64_t>(options_.buffer_blocks, kReorderRunFloor));
  std::unordered_set<RecordId> added;

  // Priority: in-memory (newest) > source level > target level.
  for (const auto& [id, payload] : in_memory) {
    STEGHIDE_RETURN_IF_ERROR(
        sorter.AddInMemory(*payload, drbg_.NextUint64(), id));
    added.insert(id);
  }
  for (Level* src : {source, &target}) {
    if (src == nullptr) continue;
    for (uint64_t slot = 0; slot < src->occupied(); ++slot) {
      const RecordId id = src->slot_ids[slot];
      if (src->IsStale(slot)) continue;
      if (added.find(id) != added.end()) continue;
      added.insert(id);
      STEGHIDE_RETURN_IF_ERROR(
          sorter.Add(src->base + slot, drbg_.NextUint64(), id));
    }
  }

  if (added.size() > target.capacity) {
    return Status::Internal("re-order overflow: level capacity exceeded");
  }

  STEGHIDE_ASSIGN_OR_RETURN(std::vector<uint64_t> order,
                            sorter.Finish(target.base));
  target.InstallOrder(std::move(order), drbg_.NextUint64());
  if (source != nullptr) source->Clear(drbg_.NextUint64());

  ++stats_.reorders;
  stats_.reorder_reads += sorter.stats().reads;
  stats_.reorder_writes += sorter.stats().writes;
  STEGHIDE_RETURN_IF_ERROR(ChargeIndexRebuild(target));
  return Status::OK();
}

}  // namespace steghide::oblivious
