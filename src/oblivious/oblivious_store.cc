#include "oblivious/oblivious_store.h"

#include <cassert>
#include <cstring>

#include "crypto/key.h"
#include "oblivious/merge_sort.h"

namespace steghide::oblivious {

namespace {
bool IsPowerOfTwo(uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }
}  // namespace

ObliviousStore::ObliviousStore(storage::BlockDevice* device,
                               const ObliviousStoreOptions& options)
    : device_(device),
      options_(options),
      codec_(device->block_size()),
      drbg_(options.drbg_seed) {}

Result<std::unique_ptr<ObliviousStore>> ObliviousStore::Create(
    storage::BlockDevice* device, const ObliviousStoreOptions& options) {
  const uint64_t b = options.buffer_blocks;
  const uint64_t n = options.capacity_blocks;
  if (b == 0 || n <= b || n % b != 0 || !IsPowerOfTwo(n / b)) {
    return Status::InvalidArgument(
        "capacity must be buffer * 2^k with k >= 1");
  }
  std::unique_ptr<ObliviousStore> store(new ObliviousStore(device, options));

  Bytes key = options.store_key.empty()
                  ? store->drbg_.Generate(crypto::kDefaultKeyLen)
                  : options.store_key;
  STEGHIDE_RETURN_IF_ERROR(store->cipher_.SetKey(key));

  uint64_t base = options.partition_base;
  for (uint64_t cap = 2 * b; cap <= n; cap *= 2) {
    Level level;
    level.base = base;
    level.capacity = cap;
    base += cap;
    store->levels_.push_back(std::move(level));
  }
  const uint64_t hierarchy_end = base;

  // Geometry checks: hierarchy and scratch must fit the device and not
  // overlap each other.
  if (hierarchy_end > device->num_blocks() ||
      options.scratch_base + n > device->num_blocks()) {
    return Status::InvalidArgument("oblivious partitions exceed device");
  }
  const bool overlap = options.scratch_base < hierarchy_end &&
                       options.partition_base < options.scratch_base + n;
  if (overlap) {
    return Status::InvalidArgument("scratch overlaps level hierarchy");
  }
  return store;
}

uint64_t ObliviousStore::hierarchy_blocks() const {
  return 2 * options_.capacity_blocks - 2 * options_.buffer_blocks;
}

bool ObliviousStore::Contains(RecordId id) const {
  return present_.find(id) != present_.end();
}

std::vector<uint64_t> ObliviousStore::LevelOccupancy() const {
  std::vector<uint64_t> occ;
  occ.reserve(levels_.size());
  for (const Level& level : levels_) occ.push_back(level.live_count());
  return occ;
}

Status ObliviousStore::ChargeIndexRebuild(const Level& level) {
  if (!options_.charge_index_io) return Status::OK();
  // 16 bytes per entry (hashed key + slot), written sequentially.
  const uint64_t entry_bytes = 16 * level.live_count();
  const uint64_t blocks =
      (entry_bytes + codec_.block_size() - 1) / codec_.block_size();
  Bytes block(codec_.block_size(), 0);
  for (uint64_t i = 0; i < blocks && i < level.capacity; ++i) {
    STEGHIDE_RETURN_IF_ERROR(
        device_->WriteBlock(level.base + i, block.data()));
    ++stats_.index_io;
  }
  return Status::OK();
}

Status ObliviousStore::ScanLevels(RecordId id, uint8_t* out_payload) {
  // Plan the whole touch pattern first — one slot per non-empty level
  // (plus the charge_index_io probe, which models reading the spilled
  // index block "in the front of the corresponding level") — then issue
  // it as a single vectored read. The id sequence is exactly the
  // per-level issue order, so a trace device sees the same stream as the
  // one-call-one-block path, while a cache or scheduler underneath can
  // batch the probes.
  std::vector<uint64_t> probe_ids;
  probe_ids.reserve(2 * levels_.size());
  size_t found_probe = 0;
  bool found = false;
  for (Level& level : levels_) {
    if (level.empty()) continue;
    if (options_.charge_index_io) {
      probe_ids.push_back(level.base);
      ++stats_.index_io;
    }
    uint64_t slot;
    const auto hit = level.index.Get(id);
    if (!found && hit.has_value()) {
      slot = *hit;
      found = true;
      found_probe = probe_ids.size();
    } else {
      // Decoy: uniformly random occupied slot. Stale slots are eligible —
      // to the observer every slot is the same.
      slot = drbg_.Uniform(level.occupied());
    }
    probe_ids.push_back(level.base + slot);
    ++stats_.level_probe_reads;
  }
  if (!found) {
    return Status::Internal("record in present set but not found in levels");
  }

  Bytes blocks(probe_ids.size() * codec_.block_size());
  STEGHIDE_RETURN_IF_ERROR(device_->ReadBlocks(probe_ids, blocks.data()));

  Bytes payload(codec_.payload_size());
  STEGHIDE_RETURN_IF_ERROR(codec_.Open(
      cipher_, blocks.data() + found_probe * codec_.block_size(),
      payload.data()));
  if (out_payload != nullptr) {
    std::memcpy(out_payload, payload.data(), payload.size());
  }
  return Status::OK();
}

Status ObliviousStore::Read(RecordId id, uint8_t* out_payload) {
  if (!Contains(id)) return Status::NotFound("record not cached");
  ++stats_.user_reads;
  const double t0 = Clock();

  const auto buf_it = buffer_.find(id);
  if (buf_it != buffer_.end()) {
    // Buffer hit: served from agent memory, no observable I/O.
    ++stats_.buffer_hits;
    std::memcpy(out_payload, buf_it->second.data(), buf_it->second.size());
    stats_.retrieve_ms += Clock() - t0;
    return Status::OK();
  }

  STEGHIDE_RETURN_IF_ERROR(ScanLevels(id, out_payload));
  stats_.retrieve_ms += Clock() - t0;

  // The record joins the buffer so the slot just exposed is never read
  // again before a re-order.
  return BufferInsert(id, out_payload);
}

Status ObliviousStore::Write(RecordId id, const uint8_t* payload) {
  if (!Contains(id)) return Insert(id, payload);
  ++stats_.user_writes;
  const double t0 = Clock();
  if (buffer_.find(id) == buffer_.end()) {
    // Same touch pattern as a read — an observer cannot tell a hidden
    // update from a retrieval. The fetched content is superseded.
    STEGHIDE_RETURN_IF_ERROR(ScanLevels(id, nullptr));
  }
  stats_.retrieve_ms += Clock() - t0;
  return BufferInsert(id, payload);
}

Status ObliviousStore::Insert(RecordId id, const uint8_t* payload) {
  if (!Contains(id)) {
    if (record_count() >= options_.capacity_blocks) {
      return Status::NoSpace("oblivious store at capacity");
    }
    present_.insert(id);
    present_list_.push_back(id);
  }
  return BufferInsert(id, payload);
}

Status ObliviousStore::DummyRead() {
  if (present_list_.empty()) return Status::OK();
  const RecordId id = present_list_[drbg_.Uniform(present_list_.size())];
  Bytes payload(codec_.payload_size());
  // Count as dummy, not user read.
  ++stats_.dummy_reads;
  --stats_.user_reads;  // Read() below increments user_reads
  return Read(id, payload.data());
}

Status ObliviousStore::BufferInsert(RecordId id, const uint8_t* payload) {
  Bytes& slot = buffer_[id];
  slot.assign(payload, payload + codec_.payload_size());
  if (buffer_.size() >= options_.buffer_blocks) return FlushBuffer();
  return Status::OK();
}

Status ObliviousStore::FlushBuffer() {
  const double t0 = Clock();
  ++stats_.buffer_flushes;

  Level& level1 = levels_.front();
  // With a single level (k = 1) the level is also the last one; dedup at
  // re-order guarantees fit because distinct records never exceed N.
  if (levels_.size() > 1 &&
      level1.live_count() + buffer_.size() > level1.capacity) {
    STEGHIDE_RETURN_IF_ERROR(Dump(0));
  }

  std::vector<std::pair<RecordId, const Bytes*>> in_memory;
  in_memory.reserve(buffer_.size());
  for (const auto& [id, payload] : buffer_) in_memory.emplace_back(id, &payload);

  STEGHIDE_RETURN_IF_ERROR(ReorderInto(level1, nullptr, in_memory));
  buffer_.clear();
  stats_.sort_ms += Clock() - t0;
  return Status::OK();
}

Status ObliviousStore::Dump(size_t i) {
  // Levels are 0-indexed here; the paper's dump(i) merges level i into
  // level i+1, cascading when the target is itself full.
  if (i + 1 >= levels_.size()) {
    return Status::Internal("dump called on the last level");
  }
  Level& source = levels_[i];
  Level& target = levels_[i + 1];
  if (i + 2 < levels_.size() &&
      target.live_count() + source.live_count() > target.capacity) {
    STEGHIDE_RETURN_IF_ERROR(Dump(i + 1));
  }
  // For the last level the capacity equals the store's record capacity,
  // so the merged (deduplicated) content always fits.
  return ReorderInto(target, &source, {});
}

Status ObliviousStore::ReorderInto(
    Level& target, Level* source,
    const std::vector<std::pair<RecordId, const Bytes*>>& in_memory) {
  ExternalMergeSorter sorter(device_, &codec_, &cipher_, &drbg_,
                             options_.scratch_base, options_.buffer_blocks);
  std::unordered_set<RecordId> added;

  // Priority: in-memory (newest) > source level > target level.
  for (const auto& [id, payload] : in_memory) {
    STEGHIDE_RETURN_IF_ERROR(
        sorter.AddInMemory(*payload, drbg_.NextUint64(), id));
    added.insert(id);
  }
  for (Level* src : {source, &target}) {
    if (src == nullptr) continue;
    for (uint64_t slot = 0; slot < src->occupied(); ++slot) {
      const RecordId id = src->slot_ids[slot];
      if (src->IsStale(slot)) continue;
      if (added.find(id) != added.end()) continue;
      added.insert(id);
      STEGHIDE_RETURN_IF_ERROR(
          sorter.Add(src->base + slot, drbg_.NextUint64(), id));
    }
  }

  if (added.size() > target.capacity) {
    return Status::Internal("re-order overflow: level capacity exceeded");
  }

  STEGHIDE_ASSIGN_OR_RETURN(std::vector<uint64_t> order,
                            sorter.Finish(target.base));
  target.InstallOrder(std::move(order), drbg_.NextUint64());
  if (source != nullptr) source->Clear(drbg_.NextUint64());

  ++stats_.reorders;
  stats_.reorder_reads += sorter.stats().reads;
  stats_.reorder_writes += sorter.stats().writes;
  STEGHIDE_RETURN_IF_ERROR(ChargeIndexRebuild(target));
  return Status::OK();
}

}  // namespace steghide::oblivious
