#ifndef STEGHIDE_OBLIVIOUS_LEVEL_H_
#define STEGHIDE_OBLIVIOUS_LEVEL_H_

#include <cstdint>
#include <vector>

#include "oblivious/hash_index.h"

namespace steghide::oblivious {

/// One level of the oblivious-storage hierarchy (Figure 7). Level i
/// (1-based) spans `capacity = 2^i * B` device blocks starting at `base`.
///
/// Slots [0, occupied()) hold sealed records appended since the last
/// re-order. A slot is *stale* when a newer copy of its record exists
/// higher up (in a lower-numbered level or later slot); the index tracks
/// only the authoritative copy per record. Stale slots are still read by
/// dummy probes — to an observer every slot is equally opaque — and are
/// dropped at the next re-order.
///
/// Double buffering (deamortized re-orders): a level may own a second,
/// equally sized *shadow* region at `alt_base`. An incremental re-order
/// builds the next permutation there while scans keep probing the old
/// one at `base`; InstallOrderAt() then flips the two atomically (under
/// the store lock). The regions ping-pong across re-orders, and both are
/// publicly dedicated to this level, so which one a rebuild targets is a
/// deterministic function of the re-order count — data-independent.
/// When double buffering is off, alt_base == base and installs are
/// in-place, exactly the blocking layout.
struct Level {
  uint64_t base = 0;
  /// Inactive (shadow) region; == base when double buffering is off.
  uint64_t alt_base = 0;
  uint64_t capacity = 0;

  /// slot -> record id, for every occupied slot (including stale ones).
  std::vector<RecordId> slot_ids;

  /// record id -> authoritative slot.
  HashIndex index;

  uint64_t occupied() const { return slot_ids.size(); }
  uint64_t live_count() const { return index.size(); }
  bool empty() const { return slot_ids.empty(); }
  bool double_buffered() const { return alt_base != base; }

  /// True when the slot's record has been superseded within this level.
  bool IsStale(uint64_t slot) const {
    const auto s = index.Get(slot_ids[slot]);
    return !s.has_value() || *s != slot;
  }

  /// Registers a record appended at the next free slot.
  void AppendSlot(RecordId id) {
    index.Put(id, slot_ids.size());
    slot_ids.push_back(id);
  }

  /// Installs a post-re-order layout: `order` lists the record ids slot by
  /// slot (all authoritative, no duplicates).
  void InstallOrder(std::vector<RecordId> order, uint64_t index_nonce);

  /// Installs a layout that was built at `new_base` (the shadow region of
  /// a double-buffered rebuild): flips the active base to it, demoting
  /// the old region to shadow. With new_base == base this is InstallOrder.
  void InstallOrderAt(uint64_t new_base, std::vector<RecordId> order,
                      uint64_t index_nonce);

  /// Empties the level (after its content was dumped downward).
  void Clear(uint64_t index_nonce);
};

}  // namespace steghide::oblivious

#endif  // STEGHIDE_OBLIVIOUS_LEVEL_H_
