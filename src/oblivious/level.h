#ifndef STEGHIDE_OBLIVIOUS_LEVEL_H_
#define STEGHIDE_OBLIVIOUS_LEVEL_H_

#include <cstdint>
#include <vector>

#include "oblivious/hash_index.h"

namespace steghide::oblivious {

/// One level of the oblivious-storage hierarchy (Figure 7). Level i
/// (1-based) spans `capacity = 2^i * B` device blocks starting at `base`.
///
/// Slots [0, occupied()) hold sealed records appended since the last
/// re-order. A slot is *stale* when a newer copy of its record exists
/// higher up (in a lower-numbered level or later slot); the index tracks
/// only the authoritative copy per record. Stale slots are still read by
/// dummy probes — to an observer every slot is equally opaque — and are
/// dropped at the next re-order.
struct Level {
  uint64_t base = 0;
  uint64_t capacity = 0;

  /// slot -> record id, for every occupied slot (including stale ones).
  std::vector<RecordId> slot_ids;

  /// record id -> authoritative slot.
  HashIndex index;

  uint64_t occupied() const { return slot_ids.size(); }
  uint64_t live_count() const { return index.size(); }
  bool empty() const { return slot_ids.empty(); }

  /// True when the slot's record has been superseded within this level.
  bool IsStale(uint64_t slot) const {
    const auto s = index.Get(slot_ids[slot]);
    return !s.has_value() || *s != slot;
  }

  /// Registers a record appended at the next free slot.
  void AppendSlot(RecordId id) {
    index.Put(id, slot_ids.size());
    slot_ids.push_back(id);
  }

  /// Installs a post-re-order layout: `order` lists the record ids slot by
  /// slot (all authoritative, no duplicates).
  void InstallOrder(std::vector<RecordId> order, uint64_t index_nonce);

  /// Empties the level (after its content was dumped downward).
  void Clear(uint64_t index_nonce);
};

}  // namespace steghide::oblivious

#endif  // STEGHIDE_OBLIVIOUS_LEVEL_H_
