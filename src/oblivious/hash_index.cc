#include "oblivious/hash_index.h"

namespace steghide::oblivious {

void HashIndex::Rebuild(uint64_t nonce) {
  nonce_ = nonce;
  map_.clear();
}

uint64_t HashIndex::HashKey(RecordId id) const {
  // splitmix64-style mix of (nonce, id); the nonce re-keys the mapping on
  // every rebuild.
  uint64_t z = id + nonce_ + 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

void HashIndex::Put(RecordId id, uint64_t slot) { map_[HashKey(id)] = slot; }

std::optional<uint64_t> HashIndex::Get(RecordId id) const {
  const auto it = map_.find(HashKey(id));
  if (it == map_.end()) return std::nullopt;
  return it->second;
}

void HashIndex::Erase(RecordId id) { map_.erase(HashKey(id)); }

}  // namespace steghide::oblivious
