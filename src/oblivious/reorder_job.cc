#include "oblivious/reorder_job.h"

#include <algorithm>

namespace steghide::oblivious {

ReorderJob::ReorderJob(storage::BlockDevice* device,
                       const stegfs::BlockCodec* codec,
                       const crypto::CbcCipher* cipher,
                       ExternalMergeSorter* sorter, size_t target_level,
                       uint64_t dst_base, Inputs inputs)
    : device_(device),
      codec_(codec),
      cipher_(cipher),
      sorter_(sorter),
      target_level_(target_level),
      dst_base_(dst_base),
      inputs_(std::move(inputs)) {
  if (record_count() == 0) phase_ = Phase::kDone;
}

Status ReorderJob::StepBuildRuns(uint64_t budget_blocks, uint64_t& used) {
  // The flush set first: it carries the newest copies, and feeding it
  // before the device sweep reproduces the blocking add order (in-memory
  // > source > target), so equal tags — impossible anyway with a 64-bit
  // DRBG — would resolve identically. Memory adds cost no reads, but a
  // full run spills sequentially through the sorter, which we charge.
  const auto sorter_io = [&] {
    return sorter_->stats().reads + sorter_->stats().writes;
  };
  while (next_memory_ < inputs_.memory.size()) {
    if (used >= budget_blocks) return Status::OK();
    const MemoryInput& in = inputs_.memory[next_memory_];
    // Consume the input before the fallible add: on a spill error the
    // item already sits in the sorter's pending run (which the retry
    // re-spills), so re-adding it would duplicate the record.
    ++next_memory_;
    const uint64_t before = sorter_io();
    STEGHIDE_RETURN_IF_ERROR(sorter_->AddInMemory(in.payload, in.tag, in.id));
    used += sorter_io() - before;
  }

  while (next_device_ < inputs_.device.size()) {
    if (used >= budget_blocks) return Status::OK();
    // One vectored chunk of the ascending live-slot sweep.
    const uint64_t left = inputs_.device.size() - next_device_;
    const uint64_t take = std::min<uint64_t>(
        std::min<uint64_t>(kInputChunkBlocks, left),
        std::max<uint64_t>(1, budget_blocks - used));
    std::vector<uint64_t> ids;
    ids.reserve(take);
    for (uint64_t i = 0; i < take; ++i) {
      ids.push_back(inputs_.device[next_device_ + i].block);
    }
    STEGHIDE_RETURN_IF_ERROR(device_->ReadBlocks(ids, read_scratch_));
    input_reads_ += take;
    used += take;
    // Decrypt the whole chunk in one multi-chain batch (side-effect
    // free, so a re-driven step simply decrypts its fresh read again),
    // then feed the sorter from the contiguous plaintext.
    payload_scratch_.resize(take * codec_->payload_size());
    STEGHIDE_RETURN_IF_ERROR(codec_->OpenBlocks(
        *cipher_, read_scratch_.data(), take, payload_scratch_.data()));
    for (uint64_t i = 0; i < take; ++i) {
      const DeviceInput& in = inputs_.device[next_device_];
      // Consumed before the fallible add — see the memory loop above.
      // A re-driven step then re-reads any not-yet-added tail of this
      // chunk through a fresh vectored read, never re-adds this item.
      ++next_device_;
      const uint64_t before = sorter_io();
      STEGHIDE_RETURN_IF_ERROR(sorter_->AddInMemory(
          payload_scratch_.data() + i * codec_->payload_size(), in.tag,
          in.id));
      used += sorter_io() - before;
    }
  }

  STEGHIDE_RETURN_IF_ERROR(sorter_->BeginMerge(dst_base_));
  phase_ = Phase::kMerge;
  return Status::OK();
}

Status ReorderJob::Step(uint64_t budget_blocks, uint64_t* consumed) {
  if (!started_ && phase_ != Phase::kDone) {
    // The sorter is shared by every job of a chain (and the blocking
    // path); claim it only when this job actually starts — jobs are all
    // constructed at the flush trigger but run strictly one at a time.
    sorter_->Reset();
    started_ = true;
  }
  uint64_t used = 0;
  budget_blocks = std::max<uint64_t>(1, budget_blocks);
  while (used < budget_blocks && phase_ != Phase::kDone) {
    if (phase_ == Phase::kBuildRuns) {
      STEGHIDE_RETURN_IF_ERROR(StepBuildRuns(budget_blocks, used));
      continue;
    }
    bool done = false;
    uint64_t merged = 0;
    STEGHIDE_RETURN_IF_ERROR(
        sorter_->MergeStep(budget_blocks - used, &done, &merged));
    used += merged;
    if (done) phase_ = Phase::kDone;
  }
  if (consumed != nullptr) *consumed = used;
  return Status::OK();
}

uint64_t ReorderJob::remaining_blocks() const {
  switch (phase_) {
    case Phase::kDone:
      return 0;
    case Phase::kMerge:
      return sorter_->merge_remaining_blocks();
    case Phase::kBuildRuns: {
      // Unread inputs each cost ~1 read + 1 run write, then the merge
      // re-reads and writes everything once more.
      const uint64_t device_left = inputs_.device.size() - next_device_;
      const uint64_t memory_left = inputs_.memory.size() - next_memory_;
      return 2 * device_left + memory_left + 2 * record_count();
    }
  }
  return 0;
}

}  // namespace steghide::oblivious
