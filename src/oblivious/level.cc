#include "oblivious/level.h"

namespace steghide::oblivious {

void Level::InstallOrder(std::vector<RecordId> order, uint64_t index_nonce) {
  slot_ids = std::move(order);
  index.Rebuild(index_nonce);
  for (uint64_t slot = 0; slot < slot_ids.size(); ++slot) {
    index.Put(slot_ids[slot], slot);
  }
}

void Level::Clear(uint64_t index_nonce) {
  slot_ids.clear();
  index.Rebuild(index_nonce);
}

}  // namespace steghide::oblivious
