#include "oblivious/level.h"

#include <utility>

namespace steghide::oblivious {

void Level::InstallOrder(std::vector<RecordId> order, uint64_t index_nonce) {
  slot_ids = std::move(order);
  index.Rebuild(index_nonce);
  for (uint64_t slot = 0; slot < slot_ids.size(); ++slot) {
    index.Put(slot_ids[slot], slot);
  }
}

void Level::InstallOrderAt(uint64_t new_base, std::vector<RecordId> order,
                           uint64_t index_nonce) {
  if (new_base != base) {
    // Ping-pong flip: the freshly built region becomes active, the old
    // permutation's region becomes the next rebuild's target.
    std::swap(base, alt_base);
  }
  InstallOrder(std::move(order), index_nonce);
}

void Level::Clear(uint64_t index_nonce) {
  slot_ids.clear();
  index.Rebuild(index_nonce);
}

}  // namespace steghide::oblivious
