#ifndef STEGHIDE_OBLIVIOUS_STEG_PARTITION_READER_H_
#define STEGHIDE_OBLIVIOUS_STEG_PARTITION_READER_H_

#include <span>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "oblivious/oblivious_store.h"
#include "stegfs/stegfs_core.h"

namespace steghide::oblivious {

/// Read-path front end combining the StegFS partition with the oblivious
/// storage, per §5.1.1 and Figure 8(a).
///
/// The first read of any file block fetches it from the StegFS partition
/// and copies it into the oblivious store; all later reads are served
/// obliviously from the store. To keep the *fetch* pattern random too, a
/// fetch is preceded by a geometrically distributed number of decoy reads
/// of already-fetched blocks: with S blocks fetched so far out of an
/// M-block partition, each loop iteration re-reads a random fetched block
/// with probability |S|/M (Figure 8(a)'s "if X < sizeof(S)" branch).
/// Combined with the one-fetch-per-block rule, every observable read of
/// the StegFS partition is uniformly distributed.
///
/// Thread safety: the reader keeps per-pass scratch state and the fetched
/// set without internal locking; it must be driven by one thread at a
/// time. ObliviousAgent serializes all access under its I/O lock, which
/// is also what the RequestDispatcher's single issuing thread goes
/// through.
class StegPartitionReader {
 public:
  /// Snapshot view assembled from atomic cells: the reader itself is
  /// single-threaded by contract, but stats() may be polled from bench /
  /// monitoring threads while the issuing thread serves.
  struct Stats {
    uint64_t cache_hits = 0;   // served by the oblivious store
    uint64_t real_fetches = 0;  // first-time fetches from the partition
    uint64_t decoy_reads = 0;   // Figure 8(a) re-reads of fetched blocks
    uint64_t dummy_reads = 0;   // idle-time dummy reads
    /// Level-permutation installs observed *mid-batch* (a deamortized
    /// re-order chain flipping a level between this batch's store
    /// groups). Evidence for tests that serving kept flowing across
    /// installs; see the epoch-consistency note in ReadRefBatch.
    uint64_t reorder_epoch_flips = 0;
  };

  /// Neither pointer is owned. `core` is the StegFS partition (its whole
  /// device is the partition); `store` is the oblivious cache.
  StegPartitionReader(stegfs::StegFsCore* core, ObliviousStore* store);

  /// Record id for a file block; file.agent_tag and logical must each fit
  /// in 32 bits.
  static RecordId MakeRecordId(const stegfs::HiddenFile& file,
                               uint64_t logical) {
    return (file.agent_tag << 32) | logical;
  }

  /// Reads logical block `logical` of `file` into `out_payload`.
  /// Equivalent to a single-block ReadBlockBatch.
  Status ReadBlock(const stegfs::HiddenFile& file, uint64_t logical,
                   uint8_t* out_payload);

  /// Batched read: logical block `logicals[i]` lands at
  /// out_payloads + i * payload_size. Blocks absent from the oblivious
  /// store are miss-filled in one pass — the Figure 8(a) decoy draws run
  /// per miss in order (the fetched set grows between misses exactly as
  /// sequential fetches would, preserving the uniformity argument), the
  /// fetches go down as one vectored partition read, and the fills enter
  /// the store with a single deferred flush. Cached blocks are then
  /// served through one MultiRead group per buffer-size chunk.
  Status ReadBlockBatch(const stegfs::HiddenFile& file,
                        std::span<const uint64_t> logicals,
                        uint8_t* out_payloads);

  /// One block of a cross-file batched read.
  struct BlockRef {
    const stegfs::HiddenFile* file = nullptr;
    uint64_t logical = 0;
  };

  /// Cross-file batched read — the aggregation seam the request
  /// dispatcher feeds: `refs[i]` (any mix of files) lands at
  /// out_payloads + i * payload_size. Misses across *all* files share one
  /// Figure-8(a) decoy pass (the draw sequence depends only on the size
  /// of the fetched set, so grouping by file for the vectored fetches
  /// leaves the observable distribution untouched), enter the store with
  /// one MultiInsert, and every cached block across files is served by
  /// one MultiRead group per buffer-size chunk — which is where k
  /// concurrent users cost one level-scan pass instead of k.
  Status ReadRefBatch(std::span<const BlockRef> refs, uint8_t* out_payloads);

  /// Idle-time dummy read on the StegFS partition: one uniformly random
  /// block (Figure 8(a), else-branch).
  Status DummyStegRead();

  /// Idle-time dummy op exercising both partitions the way a cached read
  /// plus a fetch would: a dummy oblivious read and a dummy partition
  /// read.
  Status IdleDummyOp();

  Stats stats() const {
    Stats s;
    s.cache_hits = cells_.cache_hits.value();
    s.real_fetches = cells_.real_fetches.value();
    s.decoy_reads = cells_.decoy_reads.value();
    s.dummy_reads = cells_.dummy_reads.value();
    s.reorder_epoch_flips = cells_.reorder_epoch_flips.value();
    return s;
  }
  uint64_t fetched_count() const { return fetched_.size(); }

  /// Registers the reader's counters under `prefix` (e.g. "reader").
  void RegisterMetrics(obs::Registry* registry, const std::string& prefix);

 private:
  struct Cells {
    obs::CounterCell cache_hits;
    obs::CounterCell real_fetches;
    obs::CounterCell decoy_reads;
    obs::CounterCell dummy_reads;
    obs::CounterCell reorder_epoch_flips;
  };

  stegfs::StegFsCore* core_;
  ObliviousStore* store_;
  std::vector<uint64_t> fetched_;  // physical blocks already copied (the set S)
  Cells cells_;
  obs::Registration registration_;

  // Per-pass scratch reused across batches (single-threaded by contract)
  // so the hot miss-fill/cached path stops reallocating per call.
  std::vector<uint64_t> decoys_;
  std::vector<uint64_t> new_fetches_;
  std::vector<RecordId> miss_ids_;
  std::vector<RecordId> cached_ids_;
  std::vector<size_t> cached_at_;
  std::vector<uint64_t> file_logicals_;
  std::vector<size_t> file_positions_;
  std::vector<uint8_t> miss_consumed_;
  Bytes fetch_scratch_;
  Bytes file_scratch_;
  Bytes cached_scratch_;
  Bytes decoy_scratch_;
};

}  // namespace steghide::oblivious

#endif  // STEGHIDE_OBLIVIOUS_STEG_PARTITION_READER_H_
