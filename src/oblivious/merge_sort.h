#ifndef STEGHIDE_OBLIVIOUS_MERGE_SORT_H_
#define STEGHIDE_OBLIVIOUS_MERGE_SORT_H_

#include <cstdint>
#include <vector>

#include "crypto/cbc.h"
#include "crypto/drbg.h"
#include "stegfs/block_codec.h"
#include "storage/block_device.h"
#include "util/result.h"

namespace steghide::oblivious {

/// External merge sort over sealed blocks, the re-order primitive of
/// §5.1.2 ("we apply the external merge sort algorithm").
///
/// Usage: feed blocks with Add() — each is read from the device, decrypted,
/// and assigned the caller's 64-bit sort tag (a random tag yields a
/// uniformly random concealed permutation). The sorter buffers up to
/// `run_blocks` payloads in memory (the agent's buffer), spilling sorted,
/// re-encrypted runs to the scratch region. Finish() merges the runs in a
/// single chunked multi-way pass into the destination region and returns
/// the caller-supplied labels in final order.
///
/// I/O pattern matters more than the sort itself here: run formation and
/// the merge read/write chunks sequentially, which is why the paper's
/// sorting overhead, despite costing the most I/Os, takes under 30 % of
/// the time (Figure 12(b)).
class ExternalMergeSorter {
 public:
  struct Stats {
    uint64_t reads = 0;
    uint64_t writes = 0;
  };

  /// None of the pointers are owned; all must outlive the sorter.
  /// `scratch_base` is the first block of the scratch (sort) partition;
  /// `run_blocks` is the in-memory run size in blocks (the agent buffer
  /// size B of the paper).
  ExternalMergeSorter(storage::BlockDevice* device,
                      const stegfs::BlockCodec* codec,
                      const crypto::CbcCipher* cipher, crypto::HashDrbg* drbg,
                      uint64_t scratch_base, uint64_t run_blocks);

  /// Reads the sealed block at device position `src_block`, attaching
  /// `tag` (sort key) and `label` (opaque, returned in final order).
  Status Add(uint64_t src_block, uint64_t tag, uint64_t label);

  /// Adds an item whose payload is already in memory (e.g. the agent's
  /// buffer contents) — no device read.
  Status AddInMemory(const Bytes& payload, uint64_t tag, uint64_t label);

  /// Merges everything to device positions [dst_base, dst_base + n) in
  /// ascending tag order and returns the labels in that order. The sorter
  /// is spent afterwards.
  Result<std::vector<uint64_t>> Finish(uint64_t dst_base);

  const Stats& stats() const { return stats_; }

 private:
  struct Item {
    uint64_t tag;
    uint64_t label;
    Bytes payload;
  };
  struct Run {
    uint64_t base;  // first scratch block
    std::vector<uint64_t> tags;
    std::vector<uint64_t> labels;
  };

  Status SpillRun();

  storage::BlockDevice* device_;
  const stegfs::BlockCodec* codec_;
  const crypto::CbcCipher* cipher_;
  crypto::HashDrbg* drbg_;
  uint64_t scratch_base_;
  uint64_t scratch_used_ = 0;
  uint64_t run_blocks_;
  std::vector<Item> pending_;
  std::vector<Run> runs_;
  Stats stats_;
};

}  // namespace steghide::oblivious

#endif  // STEGHIDE_OBLIVIOUS_MERGE_SORT_H_
