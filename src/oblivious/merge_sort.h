#ifndef STEGHIDE_OBLIVIOUS_MERGE_SORT_H_
#define STEGHIDE_OBLIVIOUS_MERGE_SORT_H_

#include <cstdint>
#include <vector>

#include "obs/metrics.h"

#include "crypto/cbc.h"
#include "crypto/drbg.h"
#include "stegfs/block_codec.h"
#include "storage/block_device.h"
#include "util/result.h"

namespace steghide::oblivious {

/// External merge sort over sealed blocks, the re-order primitive of
/// §5.1.2 ("we apply the external merge sort algorithm").
///
/// Usage: feed blocks with Add() — each is read from the device, decrypted,
/// and assigned the caller's 64-bit sort tag (a random tag yields a
/// uniformly random concealed permutation). The sorter buffers up to
/// `run_blocks` payloads in memory (the agent's buffer), spilling sorted,
/// re-encrypted runs to the scratch region. Finish() merges the runs in a
/// single chunked multi-way pass into the destination region and returns
/// the caller-supplied labels in final order.
///
/// The merge phase is resumable: BeginMerge() prepares it and
/// MergeStep(budget) advances it by a bounded number of device I/Os, so a
/// deamortized re-order can interleave merge chunks with serving.
/// Finish() is the blocking wrapper (BeginMerge + MergeStep to completion
/// + TakeOrder). After either, Reset() recycles the sorter — including
/// its in-memory run and seal scratch allocations — for the next
/// re-order.
///
/// I/O pattern matters more than the sort itself here: run formation and
/// the merge read/write chunks sequentially, which is why the paper's
/// sorting overhead, despite costing the most I/Os, takes under 30 % of
/// the time (Figure 12(b)). Chunked resumption preserves that: each
/// MergeStep issues whole run/output chunks, never per-block I/O.
class ExternalMergeSorter {
 public:
  /// Snapshot view assembled from atomic cells, so re-order progress can
  /// be polled from monitoring threads while a chain step is mid-merge.
  struct Stats {
    uint64_t reads = 0;
    uint64_t writes = 0;
  };

  /// None of the pointers are owned; all must outlive the sorter.
  /// `scratch_base` is the first block of the scratch (sort) partition;
  /// `run_blocks` is the in-memory run size in blocks (the agent buffer
  /// size B of the paper).
  ExternalMergeSorter(storage::BlockDevice* device,
                      const stegfs::BlockCodec* codec,
                      const crypto::CbcCipher* cipher, crypto::HashDrbg* drbg,
                      uint64_t scratch_base, uint64_t run_blocks);

  /// Reads the sealed block at device position `src_block`, attaching
  /// `tag` (sort key) and `label` (opaque, returned in final order).
  Status Add(uint64_t src_block, uint64_t tag, uint64_t label);

  /// Adds an item whose payload is already in memory (e.g. the agent's
  /// buffer contents) — no device read.
  Status AddInMemory(const Bytes& payload, uint64_t tag, uint64_t label);
  /// Same, from a raw payload_size()-byte pointer (batch-decrypt callers
  /// slice one contiguous plaintext buffer instead of materializing a
  /// Bytes per item).
  Status AddInMemory(const uint8_t* payload, uint64_t tag, uint64_t label);

  /// Merges everything to device positions [dst_base, dst_base + n) in
  /// ascending tag order and returns the labels in that order. The sorter
  /// is spent afterwards (Reset() recycles it).
  Result<std::vector<uint64_t>> Finish(uint64_t dst_base);

  // ---- Resumable merge phase ---------------------------------------------

  /// Ends the add phase: spills the pending tail (or, when everything
  /// fits in one run, sorts it in place for a scratch-free sweep) and
  /// arms MergeStep() toward [dst_base, dst_base + n).
  Status BeginMerge(uint64_t dst_base);

  /// Advances the merge by roughly `budget_blocks` device block I/Os.
  /// Chunk granularity: a step finishes the run-refill or output-flush it
  /// starts, so it may overshoot by up to one chunk; `consumed` (optional)
  /// reports the true count and at least one block of progress is made
  /// per call. Sets *done when the merge is complete.
  Status MergeStep(uint64_t budget_blocks, bool* done,
                   uint64_t* consumed = nullptr);

  /// Labels in final slot order; valid once MergeStep reported done.
  /// Leaves the sorter spent (Reset() recycles it).
  std::vector<uint64_t> TakeOrder();

  /// Device-I/O estimate for the remaining merge work (for self-pacing
  /// callers). Zero once done.
  uint64_t merge_remaining_blocks() const;

  /// Recycles the sorter for the next re-order: clears items, runs and
  /// merge state and zeroes stats(), but keeps the run buffer and seal
  /// scratch allocations — re-orders are hot enough that reconstructing
  /// them per call shows up in the profile.
  void Reset();

  uint64_t item_count() const { return item_count_; }
  Stats stats() const {
    Stats s;
    s.reads = cells_.reads.value();
    s.writes = cells_.writes.value();
    return s;
  }

 private:
  struct Item {
    uint64_t tag;
    uint64_t label;
    Bytes payload;
  };
  struct Run {
    uint64_t base;  // first scratch block
    std::vector<uint64_t> tags;
    std::vector<uint64_t> labels;
  };
  /// Chunked look-ahead into one run during the merge.
  struct Cursor {
    size_t run = 0;           // index into runs_
    uint64_t next = 0;        // next item index within the run
    uint64_t chunk_begin = 0; // run index of chunk_payloads[0]
    std::vector<Bytes> chunk_payloads;  // decrypted look-ahead
  };

  Status SpillRun();
  Status RefillCursor(Cursor& c);
  Status FlushOutput();

  storage::BlockDevice* device_;
  const stegfs::BlockCodec* codec_;
  const crypto::CbcCipher* cipher_;
  crypto::HashDrbg* drbg_;
  uint64_t scratch_base_;
  uint64_t scratch_used_ = 0;
  uint64_t run_blocks_;
  std::vector<Item> pending_;
  std::vector<Run> runs_;
  uint64_t item_count_ = 0;
  struct Cells {
    obs::CounterCell reads;
    obs::CounterCell writes;
  };
  Cells cells_;

  // Merge-phase state (valid while merging_).
  bool merging_ = false;
  bool merge_done_ = false;
  bool mem_merge_ = false;    // single-run case: pending_ sorted in place
  uint64_t dst_base_ = 0;
  uint64_t out_pos_ = 0;      // destination blocks written so far
  uint64_t chunk_ = 0;        // per-run / output chunk size in blocks
  uint64_t mem_next_ = 0;     // next pending_ index (mem_merge_ case)
  std::vector<Cursor> cursors_;
  std::vector<Bytes> out_chunk_;
  std::vector<uint64_t> order_;
  Bytes seal_scratch_;        // sealed-images staging, reused across calls
  // Pointer tables feeding the codec's scattered batch seal/open, reused
  // across spill/refill/flush calls.
  std::vector<const uint8_t*> batch_in_;
  std::vector<uint8_t*> batch_out_;
};

}  // namespace steghide::oblivious

#endif  // STEGHIDE_OBLIVIOUS_MERGE_SORT_H_
