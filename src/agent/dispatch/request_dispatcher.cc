#include "agent/dispatch/request_dispatcher.h"

#include <algorithm>
#include <cmath>

namespace steghide::agent {

RequestDispatcher::RequestDispatcher(ObliviousAgent* agent,
                                     DispatcherOptions options)
    : agent_(agent), options_(std::move(options)) {
  if (options_.max_batch == 0) options_.max_batch = 1;
  // Wire observability before the worker starts so the thread never
  // races a registration (the thread-create is the synchronizing edge).
  if (options_.trace != nullptr) {
    trace_track_ = options_.trace->RegisterTrack(options_.obs_prefix);
  }
  if (options_.registry != nullptr) {
    registration_ = obs::Registration(options_.registry);
    const std::string& p = options_.obs_prefix;
    registration_.Counter(p + ".requests", &cells_.requests);
    registration_.Counter(p + ".read_requests", &cells_.read_requests);
    registration_.Counter(p + ".write_requests", &cells_.write_requests);
    registration_.Counter(p + ".groups", &cells_.groups);
    registration_.Counter(p + ".read_groups", &cells_.read_groups);
    registration_.Counter(p + ".write_groups", &cells_.write_groups);
    registration_.Counter(p + ".grouped_requests", &cells_.grouped_requests);
    registration_.Counter(p + ".maintenance_pumps",
                          &cells_.maintenance_pumps);
    registration_.Counter(p + ".maintenance_pump_errors",
                          &cells_.maintenance_pump_errors);
    registration_.Counter(p + ".maintenance_pump_retries",
                          &cells_.maintenance_pump_retries);
    registration_.Counter(p + ".maintenance_escalations",
                          &cells_.maintenance_escalations);
    registration_.Histogram(p + ".latency_ms", &cells_.latency_ms);
    registration_.Histogram(p + ".fill", &cells_.fill);
    registration_.Gauge(p + ".queue_depth", &cells_.queue_depth);
  }
  worker_ = std::thread([this] { WorkerLoop(); });
}

RequestDispatcher::~RequestDispatcher() { Stop(); }

std::unique_ptr<RequestDispatcher::Session> RequestDispatcher::OpenSession() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++open_sessions_;
    sessions_seen_ = true;
  }
  return std::unique_ptr<Session>(new Session(this));
}

void RequestDispatcher::CloseSession() {
  std::lock_guard<std::mutex> lock(mu_);
  --open_sessions_;
  // A shrinking session population can lower the fill target below the
  // current queue depth; wake the worker so it does not wait the window
  // out for users that no longer exist.
  cv_.notify_all();
}

RequestDispatcher::Session::~Session() { dispatcher_->CloseSession(); }

Result<Bytes> RequestDispatcher::Session::Read(FileId file, uint64_t offset,
                                               size_t n) {
  return AsyncRead(file, offset, n).get();
}

Status RequestDispatcher::Session::Write(FileId file, uint64_t offset,
                                         Bytes data) {
  return AsyncWrite(file, offset, std::move(data)).get();
}

std::future<Result<Bytes>> RequestDispatcher::Session::AsyncRead(
    FileId file, uint64_t offset, size_t n) {
  return dispatcher_->SubmitRead(file, offset, n);
}

std::future<Status> RequestDispatcher::Session::AsyncWrite(FileId file,
                                                           uint64_t offset,
                                                           Bytes data) {
  return dispatcher_->SubmitWrite(file, offset, std::move(data));
}

std::future<Result<Bytes>> RequestDispatcher::SubmitRead(FileId file,
                                                         uint64_t offset,
                                                         size_t n) {
  Pending pending;
  pending.kind = Pending::Kind::kRead;
  pending.read = ObliviousAgent::ReadRequest{file, offset, n};
  pending.arrive_clock = Clock();
  std::future<Result<Bytes>> future = pending.read_promise.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      pending.read_promise.set_value(
          Status::FailedPrecondition("dispatcher stopped"));
      return future;
    }
    pending.seq = next_seq_++;
    if (options_.trace != nullptr) {
      options_.trace->AsyncBegin("dispatch.request", pending.seq,
                                 trace_track_, {{"write", 0}});
    }
    queue_.push_back(std::move(pending));
  }
  cv_.notify_all();
  return future;
}

std::future<Status> RequestDispatcher::SubmitWrite(FileId file,
                                                   uint64_t offset,
                                                   Bytes data) {
  Pending pending;
  pending.kind = Pending::Kind::kWrite;
  pending.write = ObliviousAgent::WriteRequest{file, offset, std::move(data)};
  pending.arrive_clock = Clock();
  std::future<Status> future = pending.write_promise.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      pending.write_promise.set_value(
          Status::FailedPrecondition("dispatcher stopped"));
      return future;
    }
    pending.seq = next_seq_++;
    if (options_.trace != nullptr) {
      options_.trace->AsyncBegin("dispatch.request", pending.seq,
                                 trace_track_, {{"write", 1}});
    }
    queue_.push_back(std::move(pending));
  }
  cv_.notify_all();
  return future;
}

void RequestDispatcher::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  // call_once so concurrent Stop()s (e.g. an explicit Stop racing the
  // destructor) cannot double-join.
  std::call_once(join_once_, [this] {
    if (worker_.joinable()) worker_.join();
  });
}

size_t RequestDispatcher::FillTargetLocked() const {
  // Under session usage each user has at most one request in flight, so
  // once every open session has submitted there is nothing to wait for.
  // When every session has *closed*, the same rule holds vacuously: the
  // requests already queued (submitted async, session since torn down)
  // are the whole group, and waiting the window out would stall them for
  // users that no longer exist. Only a dispatcher that never saw a
  // session (direct submits) targets the full batch and lets the commit
  // window bound the tail.
  if (open_sessions_ == 0) {
    return sessions_seen_ ? 1 : options_.max_batch;
  }
  return std::min(options_.max_batch, open_sessions_);
}

RequestDispatcher::PumpResult RequestDispatcher::PumpMaintenance() {
  if (options_.maintenance_budget == 0) return PumpResult::kIdle;
  if (agent_->store().reorder_pending()) {
    obs::ScopedSpan span(options_.trace, "dispatch.pump", trace_track_);
    auto more = agent_->PumpReorder(options_.maintenance_budget);
    if (!more.ok()) {
      // A failed slice must not read as "drained": the chain stays
      // pending, and the worker must keep polling (bounded backoff) —
      // parking on the condvar here is the historical wedge: nothing
      // ever signals it while the only remaining work is the chain's.
      cells_.maintenance_pump_errors.Increment();
      return PumpResult::kFailed;
    }
    // Counts slices that advanced work — including the one that drains
    // the chain dry.
    cells_.maintenance_pumps.Increment();
    if (*more) return PumpResult::kMore;
  }
  // Chain idle: spend the gap on secondary maintenance (replica repair).
  if (options_.extra_maintenance) {
    obs::ScopedSpan span(options_.trace, "dispatch.repair", trace_track_);
    auto more = options_.extra_maintenance(options_.maintenance_budget);
    if (!more.ok()) {
      cells_.maintenance_pump_errors.Increment();
      return PumpResult::kFailed;
    }
    if (*more) {
      cells_.maintenance_pumps.Increment();
      return PumpResult::kMore;
    }
  }
  return PumpResult::kIdle;
}

std::chrono::microseconds RequestDispatcher::RetryBackoff(
    size_t consecutive_failures) const {
  constexpr std::chrono::microseconds kCap{50'000};
  std::chrono::microseconds delay = options_.maintenance_retry_backoff;
  if (delay <= std::chrono::microseconds::zero()) {
    delay = std::chrono::microseconds{500};
  }
  for (size_t i = 1; i < consecutive_failures && delay < kCap; ++i) {
    delay *= 2;
  }
  return std::min(delay, kCap);
}

void RequestDispatcher::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  // Consecutive failed maintenance slices; drives the retry backoff and
  // the escalation alarm, reset by any slice that succeeds.
  size_t pump_failures = 0;
  for (;;) {
    // Idle: while no requests are pending, spend the gap pumping any
    // deamortized re-order backlog (one bounded slice per poll, so a
    // fresh submission is picked up at chunk granularity); block on the
    // condvar only once the backlog is drained. A *failed* slice is not
    // a drained one: it retries after a bounded backoff — an indefinite
    // wait here with the chain still pending is the stuck-maintenance
    // bug (nothing signals the condvar when the only remaining work is
    // the chain's own).
    while (!stopping_ && queue_.empty()) {
      lock.unlock();
      const PumpResult pump = PumpMaintenance();
      lock.lock();
      if (stopping_ || !queue_.empty()) break;
      if (pump == PumpResult::kMore) {
        pump_failures = 0;
        continue;
      }
      if (pump == PumpResult::kFailed) {
        ++pump_failures;
        cells_.maintenance_pump_retries.Increment();
        if (pump_failures == options_.maintenance_retry_limit) {
          cells_.maintenance_escalations.Increment();
          if (options_.trace != nullptr) {
            options_.trace->Instant(
                "dispatch.pump_stuck", trace_track_,
                {{"failures", static_cast<int64_t>(pump_failures)}});
          }
        }
        cv_.wait_for(lock, RetryBackoff(pump_failures),
                     [&] { return stopping_ || !queue_.empty(); });
        continue;
      }
      pump_failures = 0;
      cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
    }
    if (queue_.empty()) {
      if (stopping_) return;
      continue;
    }

    // Group commit: linger (bounded) for the group to fill. Submissions
    // and session closes signal cv_, so the loop re-evaluates the fill
    // target as the population changes; stopping flushes immediately.
    // The linger is another idle gap: re-order slices run while the
    // group fills, with the deadline still capping scheduling latency.
    const auto deadline =
        std::chrono::steady_clock::now() + options_.commit_window;
    while (!stopping_ && queue_.size() < FillTargetLocked()) {
      lock.unlock();
      // kFailed counts as "no more": the linger loop is already bounded
      // by the deadline, so the retry happens on the next idle pass.
      const bool more = PumpMaintenance() == PumpResult::kMore;
      lock.lock();
      if (std::chrono::steady_clock::now() >= deadline) break;
      if (stopping_ || queue_.size() >= FillTargetLocked()) break;
      if (!more &&
          cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
        break;
      }
    }

    std::vector<Pending> group;
    cells_.queue_depth.Set(static_cast<double>(queue_.size()));
    const size_t take = std::min(options_.max_batch, queue_.size());
    group.reserve(take);
    for (size_t i = 0; i < take; ++i) {
      group.push_back(std::move(queue_.front()));
      queue_.pop_front();
    }

    lock.unlock();
    CommitGroup(group);
    // Post-commit gap: callers are busy digesting their futures; slip
    // one re-order slice in before looking for the next group.
    PumpMaintenance();
    if (options_.snapshotter != nullptr) options_.snapshotter->MaybeSample();
    lock.lock();
  }
}

void RequestDispatcher::CommitGroup(std::vector<Pending>& group) {
  obs::ScopedSpan span(options_.trace, "dispatch.commit", trace_track_,
                       {{"n", static_cast<int64_t>(group.size())}});
  // Partition while preserving arrival order within each kind.
  std::vector<size_t> read_at, write_at;
  for (size_t i = 0; i < group.size(); ++i) {
    (group[i].kind == Pending::Kind::kRead ? read_at : write_at).push_back(i);
  }

  // Writes first: a caller that completed a write before submitting a
  // dependent read must observe its own data even when both land in the
  // same cycle.
  //
  // Failure isolation for writes: each member's file handle is
  // validated before the commit (a metadata lookup, no storage I/O), so
  // one user's stale handle fails that user alone instead of poisoning
  // the group. A failure *during* the committed group is different —
  // earlier members may already be persisted, and re-running them would
  // duplicate their relocating updates — so it propagates to the whole
  // group as-is.
  if (!write_at.empty()) {
    std::vector<size_t> valid_at;
    std::vector<ObliviousAgent::WriteRequest> requests;
    valid_at.reserve(write_at.size());
    requests.reserve(write_at.size());
    for (const size_t i : write_at) {
      const auto size = agent_->FileSize(group[i].write.file);
      if (!size.ok()) {
        group[i].write_promise.set_value(size.status());
        continue;
      }
      valid_at.push_back(i);
      requests.push_back(std::move(group[i].write));
    }
    if (!valid_at.empty()) {
      const Status status = agent_->WriteGroup(requests);
      for (const size_t i : valid_at) {
        group[i].write_promise.set_value(status);
      }
    }
  }

  // Reads have no side effects on the StegFS partition, so a failed
  // group (e.g. one stale handle) simply retries each member
  // individually — per-request semantics on the error path, batched on
  // the common one.
  if (!read_at.empty()) {
    std::vector<ObliviousAgent::ReadRequest> requests;
    requests.reserve(read_at.size());
    for (const size_t i : read_at) requests.push_back(group[i].read);
    auto result = agent_->ReadGroup(requests);
    if (result.ok()) {
      std::vector<Bytes>& payloads = *result;
      for (size_t r = 0; r < read_at.size(); ++r) {
        group[read_at[r]].read_promise.set_value(std::move(payloads[r]));
      }
    } else {
      for (size_t r = 0; r < read_at.size(); ++r) {
        auto single = agent_->ReadGroup(
            std::span<const ObliviousAgent::ReadRequest>(&requests[r], 1));
        group[read_at[r]].read_promise.set_value(
            single.ok() ? Result<Bytes>(std::move(single->front()))
                        : Result<Bytes>(single.status()));
      }
    }
  }

  // Record the aggregation counters and per-request latency stamps —
  // all atomic cells, so a concurrent stats() poll never tears.
  const double complete = Clock();
  span.AddArg("reads", static_cast<int64_t>(read_at.size()));
  span.AddArg("writes", static_cast<int64_t>(write_at.size()));
  cells_.requests.Add(group.size());
  cells_.read_requests.Add(read_at.size());
  cells_.write_requests.Add(write_at.size());
  if (!read_at.empty()) {
    cells_.groups.Increment();
    cells_.read_groups.Increment();
    cells_.fill.Record(static_cast<double>(read_at.size()));
    if (read_at.size() > 1) cells_.grouped_requests.Add(read_at.size());
  }
  if (!write_at.empty()) {
    cells_.groups.Increment();
    cells_.write_groups.Increment();
    cells_.fill.Record(static_cast<double>(write_at.size()));
    if (write_at.size() > 1) cells_.grouped_requests.Add(write_at.size());
  }
  for (const Pending& pending : group) {
    cells_.latency_ms.Record(complete - pending.arrive_clock);
    if (options_.trace != nullptr) {
      options_.trace->AsyncEnd("dispatch.request", pending.seq,
                               trace_track_);
    }
  }
}

DispatcherStats RequestDispatcher::stats() const {
  DispatcherStats out;
  out.requests = cells_.requests.value();
  out.read_requests = cells_.read_requests.value();
  out.write_requests = cells_.write_requests.value();
  out.groups = cells_.groups.value();
  out.read_groups = cells_.read_groups.value();
  out.write_groups = cells_.write_groups.value();
  out.max_fill = static_cast<uint64_t>(cells_.fill.max());
  out.grouped_requests = cells_.grouped_requests.value();
  out.maintenance_pumps = cells_.maintenance_pumps.value();
  out.maintenance_pump_errors = cells_.maintenance_pump_errors.value();
  out.maintenance_pump_retries = cells_.maintenance_pump_retries.value();
  out.maintenance_escalations = cells_.maintenance_escalations.value();
  if (cells_.latency_ms.count() > 0) {
    out.p50_latency_ms = cells_.latency_ms.Percentile(50);
    out.p90_latency_ms = cells_.latency_ms.Percentile(90);
    out.p99_latency_ms = cells_.latency_ms.Percentile(99);
  }
  return out;
}

}  // namespace steghide::agent
