#include "agent/dispatch/request_dispatcher.h"

#include <algorithm>
#include <cmath>

namespace steghide::agent {

RequestDispatcher::RequestDispatcher(ObliviousAgent* agent,
                                     DispatcherOptions options)
    : agent_(agent), options_(std::move(options)) {
  if (options_.max_batch == 0) options_.max_batch = 1;
  worker_ = std::thread([this] { WorkerLoop(); });
}

RequestDispatcher::~RequestDispatcher() { Stop(); }

std::unique_ptr<RequestDispatcher::Session> RequestDispatcher::OpenSession() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++open_sessions_;
    sessions_seen_ = true;
  }
  return std::unique_ptr<Session>(new Session(this));
}

void RequestDispatcher::CloseSession() {
  std::lock_guard<std::mutex> lock(mu_);
  --open_sessions_;
  // A shrinking session population can lower the fill target below the
  // current queue depth; wake the worker so it does not wait the window
  // out for users that no longer exist.
  cv_.notify_all();
}

RequestDispatcher::Session::~Session() { dispatcher_->CloseSession(); }

Result<Bytes> RequestDispatcher::Session::Read(FileId file, uint64_t offset,
                                               size_t n) {
  return AsyncRead(file, offset, n).get();
}

Status RequestDispatcher::Session::Write(FileId file, uint64_t offset,
                                         Bytes data) {
  return AsyncWrite(file, offset, std::move(data)).get();
}

std::future<Result<Bytes>> RequestDispatcher::Session::AsyncRead(
    FileId file, uint64_t offset, size_t n) {
  return dispatcher_->SubmitRead(file, offset, n);
}

std::future<Status> RequestDispatcher::Session::AsyncWrite(FileId file,
                                                           uint64_t offset,
                                                           Bytes data) {
  return dispatcher_->SubmitWrite(file, offset, std::move(data));
}

std::future<Result<Bytes>> RequestDispatcher::SubmitRead(FileId file,
                                                         uint64_t offset,
                                                         size_t n) {
  Pending pending;
  pending.kind = Pending::Kind::kRead;
  pending.read = ObliviousAgent::ReadRequest{file, offset, n};
  pending.arrive_clock = Clock();
  std::future<Result<Bytes>> future = pending.read_promise.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      pending.read_promise.set_value(
          Status::FailedPrecondition("dispatcher stopped"));
      return future;
    }
    queue_.push_back(std::move(pending));
  }
  cv_.notify_all();
  return future;
}

std::future<Status> RequestDispatcher::SubmitWrite(FileId file,
                                                   uint64_t offset,
                                                   Bytes data) {
  Pending pending;
  pending.kind = Pending::Kind::kWrite;
  pending.write = ObliviousAgent::WriteRequest{file, offset, std::move(data)};
  pending.arrive_clock = Clock();
  std::future<Status> future = pending.write_promise.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      pending.write_promise.set_value(
          Status::FailedPrecondition("dispatcher stopped"));
      return future;
    }
    queue_.push_back(std::move(pending));
  }
  cv_.notify_all();
  return future;
}

void RequestDispatcher::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  // call_once so concurrent Stop()s (e.g. an explicit Stop racing the
  // destructor) cannot double-join.
  std::call_once(join_once_, [this] {
    if (worker_.joinable()) worker_.join();
  });
}

size_t RequestDispatcher::FillTargetLocked() const {
  // Under session usage each user has at most one request in flight, so
  // once every open session has submitted there is nothing to wait for.
  // When every session has *closed*, the same rule holds vacuously: the
  // requests already queued (submitted async, session since torn down)
  // are the whole group, and waiting the window out would stall them for
  // users that no longer exist. Only a dispatcher that never saw a
  // session (direct submits) targets the full batch and lets the commit
  // window bound the tail.
  if (open_sessions_ == 0) {
    return sessions_seen_ ? 1 : options_.max_batch;
  }
  return std::min(options_.max_batch, open_sessions_);
}

bool RequestDispatcher::PumpMaintenance() {
  if (options_.maintenance_budget == 0) return false;
  if (!agent_->store().reorder_pending()) return false;
  auto more = agent_->PumpReorder(options_.maintenance_budget);
  if (!more.ok()) {
    // A failed slice must not read as "drained": record it and back off
    // to the condvar. The chain stays pending, and the same error will
    // surface to a caller through the serving path's own taxes/drains.
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++counters_.maintenance_pump_errors;
    return false;
  }
  {
    // Counts slices that advanced work — including the one that drains
    // the chain dry.
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++counters_.maintenance_pumps;
  }
  return *more;
}

void RequestDispatcher::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    // Idle: while no requests are pending, spend the gap pumping any
    // deamortized re-order backlog (one bounded slice per poll, so a
    // fresh submission is picked up at chunk granularity); block on the
    // condvar only once the backlog is drained.
    while (!stopping_ && queue_.empty()) {
      lock.unlock();
      const bool more = PumpMaintenance();
      lock.lock();
      if (stopping_ || !queue_.empty()) break;
      if (!more) {
        cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      }
    }
    if (queue_.empty()) {
      if (stopping_) return;
      continue;
    }

    // Group commit: linger (bounded) for the group to fill. Submissions
    // and session closes signal cv_, so the loop re-evaluates the fill
    // target as the population changes; stopping flushes immediately.
    // The linger is another idle gap: re-order slices run while the
    // group fills, with the deadline still capping scheduling latency.
    const auto deadline =
        std::chrono::steady_clock::now() + options_.commit_window;
    while (!stopping_ && queue_.size() < FillTargetLocked()) {
      lock.unlock();
      const bool more = PumpMaintenance();
      lock.lock();
      if (std::chrono::steady_clock::now() >= deadline) break;
      if (stopping_ || queue_.size() >= FillTargetLocked()) break;
      if (!more &&
          cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
        break;
      }
    }

    std::vector<Pending> group;
    const size_t take = std::min(options_.max_batch, queue_.size());
    group.reserve(take);
    for (size_t i = 0; i < take; ++i) {
      group.push_back(std::move(queue_.front()));
      queue_.pop_front();
    }

    lock.unlock();
    CommitGroup(group);
    // Post-commit gap: callers are busy digesting their futures; slip
    // one re-order slice in before looking for the next group.
    PumpMaintenance();
    lock.lock();
  }
}

void RequestDispatcher::CommitGroup(std::vector<Pending>& group) {
  // Partition while preserving arrival order within each kind.
  std::vector<size_t> read_at, write_at;
  for (size_t i = 0; i < group.size(); ++i) {
    (group[i].kind == Pending::Kind::kRead ? read_at : write_at).push_back(i);
  }

  // Writes first: a caller that completed a write before submitting a
  // dependent read must observe its own data even when both land in the
  // same cycle.
  //
  // Failure isolation for writes: each member's file handle is
  // validated before the commit (a metadata lookup, no storage I/O), so
  // one user's stale handle fails that user alone instead of poisoning
  // the group. A failure *during* the committed group is different —
  // earlier members may already be persisted, and re-running them would
  // duplicate their relocating updates — so it propagates to the whole
  // group as-is.
  if (!write_at.empty()) {
    std::vector<size_t> valid_at;
    std::vector<ObliviousAgent::WriteRequest> requests;
    valid_at.reserve(write_at.size());
    requests.reserve(write_at.size());
    for (const size_t i : write_at) {
      const auto size = agent_->FileSize(group[i].write.file);
      if (!size.ok()) {
        group[i].write_promise.set_value(size.status());
        continue;
      }
      valid_at.push_back(i);
      requests.push_back(std::move(group[i].write));
    }
    if (!valid_at.empty()) {
      const Status status = agent_->WriteGroup(requests);
      for (const size_t i : valid_at) {
        group[i].write_promise.set_value(status);
      }
    }
  }

  // Reads have no side effects on the StegFS partition, so a failed
  // group (e.g. one stale handle) simply retries each member
  // individually — per-request semantics on the error path, batched on
  // the common one.
  if (!read_at.empty()) {
    std::vector<ObliviousAgent::ReadRequest> requests;
    requests.reserve(read_at.size());
    for (const size_t i : read_at) requests.push_back(group[i].read);
    auto result = agent_->ReadGroup(requests);
    if (result.ok()) {
      std::vector<Bytes>& payloads = *result;
      for (size_t r = 0; r < read_at.size(); ++r) {
        group[read_at[r]].read_promise.set_value(std::move(payloads[r]));
      }
    } else {
      for (size_t r = 0; r < read_at.size(); ++r) {
        auto single = agent_->ReadGroup(
            std::span<const ObliviousAgent::ReadRequest>(&requests[r], 1));
        group[read_at[r]].read_promise.set_value(
            single.ok() ? Result<Bytes>(std::move(single->front()))
                        : Result<Bytes>(single.status()));
      }
    }
  }

  // Record the aggregation counters and per-request latency stamps.
  const double complete = Clock();
  std::lock_guard<std::mutex> lock(stats_mu_);
  counters_.requests += group.size();
  counters_.read_requests += read_at.size();
  counters_.write_requests += write_at.size();
  if (!read_at.empty()) {
    ++counters_.groups;
    ++counters_.read_groups;
    counters_.max_fill = std::max<uint64_t>(counters_.max_fill,
                                            read_at.size());
    if (read_at.size() > 1) counters_.grouped_requests += read_at.size();
  }
  if (!write_at.empty()) {
    ++counters_.groups;
    ++counters_.write_groups;
    counters_.max_fill = std::max<uint64_t>(counters_.max_fill,
                                            write_at.size());
    if (write_at.size() > 1) counters_.grouped_requests += write_at.size();
  }
  for (const Pending& pending : group) {
    const double sample = complete - pending.arrive_clock;
    ++latency_count_;
    if (latency_samples_.size() < kLatencyReservoir) {
      latency_samples_.push_back(sample);
    } else {
      // Algorithm R: keep each of the latency_count_ samples with equal
      // probability. xorshift64 is plenty for sampling.
      latency_rng_ ^= latency_rng_ << 13;
      latency_rng_ ^= latency_rng_ >> 7;
      latency_rng_ ^= latency_rng_ << 17;
      const uint64_t j = latency_rng_ % latency_count_;
      if (j < kLatencyReservoir) latency_samples_[j] = sample;
    }
  }
}

DispatcherStats RequestDispatcher::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  DispatcherStats out = counters_;
  if (!latency_samples_.empty()) {
    std::vector<double> sorted = latency_samples_;
    std::sort(sorted.begin(), sorted.end());
    const auto at = [&](double q) {
      const size_t idx = std::min(
          sorted.size() - 1,
          static_cast<size_t>(q * static_cast<double>(sorted.size())));
      return sorted[idx];
    };
    out.p50_latency_ms = at(0.50);
    out.p99_latency_ms = at(0.99);
  }
  return out;
}

}  // namespace steghide::agent
