#ifndef STEGHIDE_AGENT_DISPATCH_REQUEST_DISPATCHER_H_
#define STEGHIDE_AGENT_DISPATCH_REQUEST_DISPATCHER_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "agent/oblivious_agent.h"
#include "obs/metrics.h"
#include "obs/snapshotter.h"
#include "obs/trace_log.h"

namespace steghide::agent {

struct DispatcherOptions {
  /// Group-commit fill target: a commit is issued as soon as this many
  /// requests are pending (or every open session has one outstanding, or
  /// the commit window expires). Matching the oblivious store's
  /// buffer_blocks B makes one committed group cost one level-scan pass.
  size_t max_batch = 16;
  /// Upper bound on how long the dispatcher lingers after the first
  /// pending request, waiting for the group to fill. Wall-clock: it
  /// bounds *scheduling* latency of co-arriving threads, not the virtual
  /// disk time the experiments measure.
  std::chrono::microseconds commit_window{500};
  /// Virtual-clock sampler (e.g. SimBlockDevice::clock_ms) used to stamp
  /// request arrival/completion for the latency percentiles. May be
  /// empty; latencies then read 0.
  std::function<double()> clock_fn;
  /// Maintenance pump budget (device blocks per slice): the I/O thread
  /// drives the oblivious store's pending deamortized re-order work —
  /// ObliviousAgent::PumpReorder — during commit-window idle gaps,
  /// while the queue is empty, and right after each committed group, so
  /// rebuild I/O rides the gaps instead of stalling a serving request.
  /// 0 disables the pump (the store still self-paces via serving taxes).
  uint64_t maintenance_budget = 64;
  /// Extra idle-gap maintenance (e.g. VolumeSet::PumpRepair driving a
  /// replica rebuild). Called from the I/O thread — the single storage
  /// issuer — with the maintenance budget, only when the re-order chain
  /// has no work, returning whether more remains. May be empty.
  std::function<Result<bool>(uint64_t budget)> extra_maintenance;
  /// Consecutive failed maintenance slices before the dispatcher counts
  /// an escalation (stats().maintenance_escalations — the "a spindle is
  /// not coming back" alarm). Retrying continues past the limit at the
  /// capped backoff: a pending chain is never abandoned to an unbounded
  /// condvar wait, which is how a transient fault used to wedge the
  /// worker (see WorkerLoop).
  size_t maintenance_retry_limit = 8;
  /// Base wall-clock delay between failed-slice retries; doubles per
  /// consecutive failure, capped at ~50ms.
  std::chrono::microseconds maintenance_retry_backoff{500};
  /// Observability sinks, all optional (null = zero-cost). The registry
  /// gets the dispatcher's counters/histograms under `obs_prefix`; the
  /// trace log gets commit/maintenance spans on a dispatcher track plus
  /// one async interval per request (id = submission sequence number);
  /// the snapshotter — if given — is pumped from the worker loop after
  /// each commit so periodic counter samples ride the serving cadence.
  obs::Registry* registry = nullptr;
  obs::TraceLog* trace = nullptr;
  obs::StatsSnapshotter* snapshotter = nullptr;
  std::string obs_prefix = "dispatcher";
};

/// Counters describing the dispatcher's aggregation behaviour. The
/// latency percentiles are in virtual milliseconds (queueing + service
/// on the virtual disk clock).
struct DispatcherStats {
  uint64_t requests = 0;
  uint64_t read_requests = 0;
  uint64_t write_requests = 0;
  /// Group commits issued; a cycle serving both reads and writes counts
  /// one group per kind.
  uint64_t groups = 0;
  uint64_t read_groups = 0;
  uint64_t write_groups = 0;
  /// Largest single committed group.
  uint64_t max_fill = 0;
  /// Requests that shared their group with at least one other request.
  uint64_t grouped_requests = 0;
  /// Idle-gap maintenance slices that advanced re-order work.
  uint64_t maintenance_pumps = 0;
  /// Maintenance slices that failed with an I/O error (the chain stays
  /// pending; the error also surfaces through the serving path).
  uint64_t maintenance_pump_errors = 0;
  /// Failed slices re-attempted after a bounded backoff.
  uint64_t maintenance_pump_retries = 0;
  /// Failure streaks that crossed maintenance_retry_limit.
  uint64_t maintenance_escalations = 0;

  double p50_latency_ms = 0.0;
  double p90_latency_ms = 0.0;
  double p99_latency_ms = 0.0;

  double MeanFill() const {
    return groups == 0 ? 0.0
                       : static_cast<double>(requests) /
                             static_cast<double>(groups);
  }
};

/// Multi-threaded request dispatcher — the layer that turns the batched
/// oblivious entry points into a *servable* system. Real std::thread
/// users submit reads/writes through session handles; the dispatcher's
/// single I/O thread group-commits up to max_batch outstanding requests
/// into one ObliviousAgent::ReadGroup / WriteGroup (one cross-file
/// level-scan group per store-buffer chunk) and completes each caller
/// through a future.
///
/// Concurrency architecture:
///
///   user threads ──Submit──▶ queue (mutex + condvar)
///                              │ group commit (≤ B, bounded wait)
///                              ▼
///                    dispatcher I/O thread            ← the ONLY thread
///                              │                        issuing storage
///                              ▼                        I/O
///            ObliviousAgent::ReadGroup / WriteGroup
///
/// Because all storage I/O funnels through the one dispatcher thread,
/// every device below keeps seeing single-issuer call sequences
/// (block_device.h), and the attacker-visible trace of a committed group
/// of k equals k sequential requests (one touch per non-empty level per
/// request) regardless of thread arrival order.
///
/// Within one commit cycle writes are issued before reads, so a caller
/// that awaited its write before submitting a dependent read always
/// observes its own data. Two *concurrent* requests to the same block
/// race exactly as they would against a POSIX file.
class RequestDispatcher {
 public:
  using FileId = ObliviousAgent::FileId;

  /// `agent` is borrowed and must outlive the dispatcher. The I/O thread
  /// starts immediately.
  explicit RequestDispatcher(ObliviousAgent* agent,
                             DispatcherOptions options = {});
  ~RequestDispatcher();

  RequestDispatcher(const RequestDispatcher&) = delete;
  RequestDispatcher& operator=(const RequestDispatcher&) = delete;

  /// Worker-facing session handle. Opening a session tells the group
  /// commit how many users may have a request in flight: a commit fires
  /// as soon as every open session has one pending (without waiting out
  /// the window), which is what fills groups under load. Close (destroy)
  /// the session when the user thread is done.
  class Session {
   public:
    ~Session();
    Session(const Session&) = delete;
    Session& operator=(const Session&) = delete;

    /// Blocking oblivious read of [offset, offset+n) of `file`.
    Result<Bytes> Read(FileId file, uint64_t offset, size_t n);
    /// Blocking hidden write.
    Status Write(FileId file, uint64_t offset, Bytes data);

    std::future<Result<Bytes>> AsyncRead(FileId file, uint64_t offset,
                                         size_t n);
    std::future<Status> AsyncWrite(FileId file, uint64_t offset, Bytes data);

   private:
    friend class RequestDispatcher;
    explicit Session(RequestDispatcher* dispatcher)
        : dispatcher_(dispatcher) {}
    RequestDispatcher* dispatcher_;
  };

  std::unique_ptr<Session> OpenSession();

  /// Sessionless submission (the Session methods forward here).
  std::future<Result<Bytes>> SubmitRead(FileId file, uint64_t offset,
                                        size_t n);
  std::future<Status> SubmitWrite(FileId file, uint64_t offset, Bytes data);

  /// Drains every pending request, then joins the I/O thread. Further
  /// submissions fail with FailedPrecondition. Idempotent; the
  /// destructor calls it.
  void Stop();

  /// Snapshot of the aggregation counters. Lock-free: assembled from
  /// atomic instrument cells, so a stats() poll concurrent with the
  /// worker never sees a torn value. Percentiles come from a log-linear
  /// latency histogram (<= ~0.8% relative bucket error).
  DispatcherStats stats() const;

  ObliviousAgent& agent() { return *agent_; }

 private:
  struct Pending {
    enum class Kind : uint8_t { kRead, kWrite } kind = Kind::kRead;
    ObliviousAgent::ReadRequest read;
    ObliviousAgent::WriteRequest write;
    std::promise<Result<Bytes>> read_promise;
    std::promise<Status> write_promise;
    double arrive_clock = 0.0;
    /// Submission sequence number; the id of the request's async trace
    /// interval (dispatch.request begin at submit, end at completion).
    uint64_t seq = 0;
  };

  void WorkerLoop();
  void CommitGroup(std::vector<Pending>& group);
  /// What a maintenance slice did: advanced work that remains (kMore),
  /// found nothing left to do (kIdle), or failed and left its chain
  /// pending (kFailed — the worker must keep polling, never block
  /// indefinitely, or the chain wedges).
  enum class PumpResult : uint8_t { kIdle, kMore, kFailed };
  /// One maintenance slice (caller must NOT hold mu_): re-order chain
  /// first, then options_.extra_maintenance once the chain is idle.
  PumpResult PumpMaintenance();
  /// Exponential failed-slice retry delay, capped at ~50ms.
  std::chrono::microseconds RetryBackoff(size_t consecutive_failures) const;
  double Clock() const {
    return options_.clock_fn ? options_.clock_fn() : 0.0;
  }
  /// Pending count that triggers an immediate commit (callers hold mu_).
  size_t FillTargetLocked() const;
  void CloseSession();

  ObliviousAgent* agent_;
  DispatcherOptions options_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Pending> queue_;
  size_t open_sessions_ = 0;
  /// Latched by the first OpenSession(): once callers use session
  /// accounting, an empty session population means "nobody left to wait
  /// for", not "direct-submit mode" (see FillTargetLocked).
  bool sessions_seen_ = false;
  bool stopping_ = false;
  std::once_flag join_once_;

  // Atomic instrument cells (obs/metrics.h): the worker bumps them
  // without a lock, stats() sums stripes, and — when a registry is wired
  // — the same cells export under "<obs_prefix>.*". The latency
  // histogram replaces the old bounded reservoir: O(1) memory, no
  // stats mutex on the hot path, and p90 for free.
  struct Cells {
    obs::CounterCell requests;
    obs::CounterCell read_requests;
    obs::CounterCell write_requests;
    obs::CounterCell groups;
    obs::CounterCell read_groups;
    obs::CounterCell write_groups;
    obs::CounterCell grouped_requests;
    obs::CounterCell maintenance_pumps;
    obs::CounterCell maintenance_pump_errors;
    obs::CounterCell maintenance_pump_retries;
    obs::CounterCell maintenance_escalations;
    /// Per-request virtual latency (queueing + service), ms.
    obs::HistogramCell latency_ms;
    /// Committed group sizes (per kind); max() is the old max_fill.
    obs::HistogramCell fill;
    /// Queue depth sampled at each commit take.
    obs::GaugeCell queue_depth;
  };
  Cells cells_;
  obs::Registration registration_;
  uint64_t next_seq_ = 0;  // guarded by mu_
  uint32_t trace_track_ = 0;

  std::thread worker_;
};

}  // namespace steghide::agent

#endif  // STEGHIDE_AGENT_DISPATCH_REQUEST_DISPATCHER_H_
