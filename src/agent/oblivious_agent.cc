#include "agent/oblivious_agent.h"

#include <algorithm>
#include <cstring>

namespace steghide::agent {

using oblivious::StegPartitionReader;
using stegfs::HiddenFile;

ObliviousAgent::ObliviousAgent(
    stegfs::StegFsCore* core,
    std::unique_ptr<oblivious::ObliviousStore> store)
    : core_(core), agent_(core), store_(std::move(store)) {
  reader_ = std::make_unique<StegPartitionReader>(core_, store_.get());
}

Result<std::unique_ptr<ObliviousAgent>> ObliviousAgent::Create(
    stegfs::StegFsCore* core, storage::BlockDevice* cache_device,
    const oblivious::ObliviousStoreOptions& store_options) {
  STEGHIDE_ASSIGN_OR_RETURN(auto store, oblivious::ObliviousStore::Create(
                                            cache_device, store_options));
  return std::unique_ptr<ObliviousAgent>(
      new ObliviousAgent(core, std::move(store)));
}

Result<Bytes> ObliviousAgent::Read(FileId id, uint64_t offset, size_t n) {
  STEGHIDE_ASSIGN_OR_RETURN(const HiddenFile* file, agent_.InspectFile(id));
  if (offset >= file->file_size) return Bytes{};
  const uint64_t end = std::min<uint64_t>(offset + n, file->file_size);
  const size_t payload = core_->payload_size();

  Bytes out;
  out.reserve(end - offset);
  Bytes buf(payload);
  for (uint64_t logical = offset / payload; logical * payload < end;
       ++logical) {
    STEGHIDE_RETURN_IF_ERROR(reader_->ReadBlock(*file, logical, buf.data()));
    const uint64_t begin = logical * payload;
    const uint64_t lo = std::max<uint64_t>(offset, begin);
    const uint64_t hi = std::min<uint64_t>(end, begin + payload);
    out.insert(out.end(), buf.data() + (lo - begin), buf.data() + (hi - begin));
  }
  return out;
}

Status ObliviousAgent::Write(FileId id, uint64_t offset, const uint8_t* data,
                             size_t n) {
  if (n == 0) return Status::OK();
  STEGHIDE_ASSIGN_OR_RETURN(const HiddenFile* file, agent_.InspectFile(id));
  const size_t payload = core_->payload_size();
  const uint64_t end = offset + n;

  Bytes block(payload);
  for (uint64_t logical = offset / payload; logical * payload < end;
       ++logical) {
    const uint64_t begin = logical * payload;
    const uint64_t lo = std::max<uint64_t>(offset, begin);
    const uint64_t hi = std::min<uint64_t>(end, begin + payload);

    const bool partial = (lo != begin || hi != begin + payload);
    const bool existing = logical < file->num_data_blocks();
    if (partial && existing) {
      // Read-modify-write through the hidden read path, so the fetch is
      // as pattern-free as any other read.
      STEGHIDE_RETURN_IF_ERROR(
          reader_->ReadBlock(*file, logical, block.data()));
    } else {
      std::fill(block.begin(), block.end(), 0);
    }
    std::memcpy(block.data() + (lo - begin), data + (lo - offset), hi - lo);

    // Persist on the StegFS partition via the Figure-6 relocating update
    // (this also extends the file for appends). Write the whole cached
    // block, but never extend the file past max(old end, new end) —
    // clamping avoids rounding a trailing partial block up to a full one.
    const uint64_t keep =
        existing ? std::min<uint64_t>(payload, file->file_size - begin) : 0;
    const uint64_t write_len = std::max<uint64_t>(hi - begin, keep);
    STEGHIDE_RETURN_IF_ERROR(
        agent_.Write(id, begin, block.data(), write_len));
    // ...and refresh the cached copy with a hidden update, so subsequent
    // oblivious reads see the new content.
    if (existing || store_->Contains(StegPartitionReader::MakeRecordId(
                        *file, logical))) {
      STEGHIDE_RETURN_IF_ERROR(store_->Write(
          StegPartitionReader::MakeRecordId(*file, logical), block.data()));
    }
    // The file image may have been reallocated by growth; re-inspect.
    STEGHIDE_ASSIGN_OR_RETURN(file, agent_.InspectFile(id));
  }
  return Status::OK();
}

Status ObliviousAgent::IdleDummyOp() {
  STEGHIDE_RETURN_IF_ERROR(agent_.IdleDummyUpdates(1));
  return reader_->IdleDummyOp();
}

}  // namespace steghide::agent
