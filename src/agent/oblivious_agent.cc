#include "agent/oblivious_agent.h"

#include <algorithm>
#include <cstring>
#include <map>
#include <unordered_map>

namespace steghide::agent {

using oblivious::RecordId;
using oblivious::StegPartitionReader;
using stegfs::HiddenFile;

ObliviousAgent::ObliviousAgent(
    stegfs::StegFsCore* core,
    std::unique_ptr<oblivious::ObliviousStore> store)
    : core_(core), agent_(core), store_(std::move(store)) {
  reader_ = std::make_unique<StegPartitionReader>(core_, store_.get());
}

Result<std::unique_ptr<ObliviousAgent>> ObliviousAgent::Create(
    stegfs::StegFsCore* core, storage::BlockDevice* cache_device,
    const oblivious::ObliviousStoreOptions& store_options) {
  STEGHIDE_ASSIGN_OR_RETURN(auto store, oblivious::ObliviousStore::Create(
                                            cache_device, store_options));
  auto agent = std::unique_ptr<ObliviousAgent>(
      new ObliviousAgent(core, std::move(store)));
  // The agent rides the store's observability wiring: its group spans go
  // on an "agent" track of the same log, and the reader's counters join
  // the same registry.
  if (store_options.trace != nullptr) {
    agent->trace_ = store_options.trace;
    agent->trace_track_ = store_options.trace->RegisterTrack("agent");
  }
  if (store_options.registry != nullptr) {
    agent->reader_->RegisterMetrics(store_options.registry, "reader");
  }
  return agent;
}

Result<Bytes> ObliviousAgent::Read(FileId id, uint64_t offset, size_t n) {
  const ReadRequest request{id, offset, n};
  std::lock_guard<std::mutex> lock(io_mu_);
  STEGHIDE_ASSIGN_OR_RETURN(
      auto out, ReadGroupImpl(std::span<const ReadRequest>(&request, 1)));
  return std::move(out.front());
}

Result<std::vector<Bytes>> ObliviousAgent::ReadBatch(
    FileId id, std::span<const ByteRange> ranges) {
  std::vector<ReadRequest> requests(ranges.size());
  for (size_t i = 0; i < ranges.size(); ++i) {
    requests[i] = ReadRequest{id, ranges[i].offset, ranges[i].length};
  }
  std::lock_guard<std::mutex> lock(io_mu_);
  return ReadGroupImpl(requests);
}

Result<std::vector<Bytes>> ObliviousAgent::ReadGroup(
    std::span<const ReadRequest> requests) {
  std::lock_guard<std::mutex> lock(io_mu_);
  return ReadGroupImpl(requests);
}

Result<std::vector<Bytes>> ObliviousAgent::ReadGroupImpl(
    std::span<const ReadRequest> requests) {
  obs::ScopedSpan span(trace_, "agent.read_group", trace_track_,
                       {{"n", static_cast<int64_t>(requests.size())}});
  const size_t payload = core_->payload_size();

  // One InspectFile per distinct file; the pointers stay valid for the
  // whole group (no session mutation happens on this path).
  std::unordered_map<FileId, const HiddenFile*> files;
  for (const ReadRequest& request : requests) {
    auto [it, inserted] = files.try_emplace(request.file, nullptr);
    if (inserted) {
      STEGHIDE_ASSIGN_OR_RETURN(it->second, agent_.InspectFile(request.file));
    }
  }

  // Union of logical blocks covered by the clamped ranges across all
  // files, ascending per file — one miss-fill/oblivious-group pass
  // serves all of them.
  std::vector<StegPartitionReader::BlockRef> refs;
  std::unordered_map<RecordId, size_t> block_index;
  for (const ReadRequest& request : requests) {
    const HiddenFile* file = files.at(request.file);
    if (request.offset >= file->file_size || request.length == 0) continue;
    const uint64_t end =
        std::min<uint64_t>(request.offset + request.length, file->file_size);
    for (uint64_t logical = request.offset / payload;
         logical * payload < end; ++logical) {
      refs.push_back({file, logical});
    }
  }
  std::sort(refs.begin(), refs.end(),
            [](const StegPartitionReader::BlockRef& a,
               const StegPartitionReader::BlockRef& b) {
              return a.file->agent_tag != b.file->agent_tag
                         ? a.file->agent_tag < b.file->agent_tag
                         : a.logical < b.logical;
            });
  refs.erase(std::unique(refs.begin(), refs.end(),
                         [](const StegPartitionReader::BlockRef& a,
                            const StegPartitionReader::BlockRef& b) {
                           return a.file == b.file && a.logical == b.logical;
                         }),
             refs.end());
  for (size_t i = 0; i < refs.size(); ++i) {
    block_index.emplace(
        StegPartitionReader::MakeRecordId(*refs[i].file, refs[i].logical), i);
  }

  Bytes blocks(refs.size() * payload);
  STEGHIDE_RETURN_IF_ERROR(reader_->ReadRefBatch(refs, blocks.data()));

  std::vector<Bytes> out(requests.size());
  for (size_t r = 0; r < requests.size(); ++r) {
    const ReadRequest& request = requests[r];
    const HiddenFile* file = files.at(request.file);
    if (request.offset >= file->file_size || request.length == 0) continue;
    const uint64_t end =
        std::min<uint64_t>(request.offset + request.length, file->file_size);
    out[r].reserve(end - request.offset);
    for (uint64_t logical = request.offset / payload;
         logical * payload < end; ++logical) {
      const uint64_t begin = logical * payload;
      const uint64_t lo = std::max<uint64_t>(request.offset, begin);
      const uint64_t hi = std::min<uint64_t>(end, begin + payload);
      const size_t idx =
          block_index.at(StegPartitionReader::MakeRecordId(*file, logical));
      const uint8_t* src = blocks.data() + idx * payload;
      out[r].insert(out[r].end(), src + (lo - begin), src + (hi - begin));
    }
  }
  return out;
}

Status ObliviousAgent::Write(FileId id, uint64_t offset, const uint8_t* data,
                             size_t n) {
  if (n == 0) return Status::OK();
  const WriteView view{id, offset, std::span<const uint8_t>(data, n)};
  std::lock_guard<std::mutex> lock(io_mu_);
  return WriteGroupImpl(std::span<const WriteView>(&view, 1));
}

Status ObliviousAgent::WriteBatch(FileId id, std::span<const WriteOp> ops) {
  std::vector<WriteView> views(ops.size());
  for (size_t i = 0; i < ops.size(); ++i) {
    views[i] = WriteView{id, ops[i].offset, ops[i].data};
  }
  std::lock_guard<std::mutex> lock(io_mu_);
  return WriteGroupImpl(views);
}

Status ObliviousAgent::WriteGroup(std::span<const WriteRequest> requests) {
  std::vector<WriteView> views(requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    views[i] = WriteView{requests[i].file, requests[i].offset,
                         requests[i].data};
  }
  std::lock_guard<std::mutex> lock(io_mu_);
  return WriteGroupImpl(views);
}

Status ObliviousAgent::WriteGroupImpl(std::span<const WriteView> views) {
  obs::ScopedSpan span(trace_, "agent.write_group", trace_track_,
                       {{"n", static_cast<int64_t>(views.size())}});
  const size_t payload = core_->payload_size();

  // Per-file image pointer (re-inspected after relocating writes) and
  // the data-block count at group entry, which decides what stage 1 may
  // prefetch.
  struct FileState {
    const HiddenFile* file = nullptr;
    uint64_t initial_blocks = 0;
  };
  std::unordered_map<FileId, FileState> files;
  for (const WriteView& view : views) {
    auto [it, inserted] = files.try_emplace(view.file);
    if (inserted) {
      STEGHIDE_ASSIGN_OR_RETURN(it->second.file,
                                agent_.InspectFile(view.file));
      it->second.initial_blocks = it->second.file->num_data_blocks();
    }
  }

  // Stage 1 — batched read-modify-write prefetch: every block whose first
  // touch in this group is a partial overwrite of initially existing
  // content comes in through the hidden read path — one cross-file group,
  // so the fetches are as pattern-free as any other read. Blocks first
  // touched by a full overwrite (or created by this group) are staged
  // without I/O.
  std::map<std::pair<FileId, uint64_t>, Bytes> images;
  {
    std::map<std::pair<FileId, uint64_t>, bool> first_touch_partial;
    for (const WriteView& op : views) {
      if (op.data.empty()) continue;
      const uint64_t end = op.offset + op.data.size();
      for (uint64_t logical = op.offset / payload; logical * payload < end;
           ++logical) {
        const uint64_t begin = logical * payload;
        const uint64_t lo = std::max<uint64_t>(op.offset, begin);
        const uint64_t hi = std::min<uint64_t>(end, begin + payload);
        const bool partial = (lo != begin || hi != begin + payload);
        first_touch_partial.try_emplace({op.file, logical}, partial);
      }
    }
    std::vector<StegPartitionReader::BlockRef> prefetch;
    std::vector<std::pair<FileId, uint64_t>> prefetch_keys;
    for (const auto& [key, partial] : first_touch_partial) {
      const FileState& state = files.at(key.first);
      if (partial && key.second < state.initial_blocks) {
        prefetch.push_back({state.file, key.second});
        prefetch_keys.push_back(key);
      }
    }
    if (!prefetch.empty()) {
      Bytes fetched(prefetch.size() * payload);
      STEGHIDE_RETURN_IF_ERROR(
          reader_->ReadRefBatch(prefetch, fetched.data()));
      for (size_t i = 0; i < prefetch.size(); ++i) {
        images[prefetch_keys[i]].assign(fetched.data() + i * payload,
                                        fetched.data() + (i + 1) * payload);
      }
    }
  }

  // Stage 2 — apply ops in order. Persistence on the StegFS partition
  // stays per block: each Figure-6 relocating update reshapes the
  // selection domain the next one draws from, so their sequence is the
  // observable pattern and cannot be merged. The oblivious-cache
  // refreshes, by contrast, batch into one cross-file group below.
  std::vector<RecordId> refresh_order;
  std::unordered_map<RecordId, Bytes> refresh;
  Status persist_status;
  for (const WriteView& op : views) {
    if (!persist_status.ok()) break;
    if (op.data.empty()) continue;
    FileState& state = files.at(op.file);
    const uint64_t end = op.offset + op.data.size();
    for (uint64_t logical = op.offset / payload; logical * payload < end;
         ++logical) {
      const uint64_t begin = logical * payload;
      const uint64_t lo = std::max<uint64_t>(op.offset, begin);
      const uint64_t hi = std::min<uint64_t>(end, begin + payload);

      auto [it, inserted] = images.try_emplace({op.file, logical});
      if (inserted) it->second.assign(payload, 0);
      Bytes& block = it->second;
      std::memcpy(block.data() + (lo - begin), op.data.data() + (lo - op.offset),
                  hi - lo);

      // Persist via the relocating update (this also extends the file for
      // appends). Write the whole staged block, but never extend the file
      // past max(old end, new end) — clamping avoids rounding a trailing
      // partial block up to a full one.
      const HiddenFile* file = state.file;
      const bool existing = logical < file->num_data_blocks();
      const uint64_t keep =
          existing ? std::min<uint64_t>(payload, file->file_size - begin) : 0;
      const uint64_t write_len = std::max<uint64_t>(hi - begin, keep);
      persist_status = agent_.Write(op.file, begin, block.data(), write_len);
      if (!persist_status.ok()) break;

      // Record the cache refresh first (agent_tag is stable across
      // relocation, so the record id does not depend on the re-inspect).
      const RecordId rec = StegPartitionReader::MakeRecordId(*file, logical);
      if (existing || store_->Contains(rec)) {
        auto [rit, rinserted] = refresh.try_emplace(rec);
        if (rinserted) refresh_order.push_back(rec);
        rit->second = block;  // later duplicates win
      }

      // The file image may have been reallocated by growth; re-inspect.
      // Failures break (not return) so Stage 3 still refreshes the
      // blocks persisted so far.
      auto reinspect = agent_.InspectFile(op.file);
      if (!reinspect.ok()) {
        persist_status = reinspect.status();
        break;
      }
      state.file = *reinspect;
    }
  }

  // Stage 3 — one hidden-update group refreshes the cached copies, so
  // subsequent oblivious reads see the new content. This runs even when
  // a mid-group persist failed: every block persisted *before* the
  // failure must not keep serving stale cached content.
  if (!refresh_order.empty()) {
    Bytes flat(refresh_order.size() * payload);
    for (size_t i = 0; i < refresh_order.size(); ++i) {
      const Bytes& image = refresh[refresh_order[i]];
      std::copy(image.begin(), image.end(), flat.data() + i * payload);
    }
    STEGHIDE_RETURN_IF_ERROR(store_->MultiWrite(refresh_order, flat.data()));
  }
  return persist_status;
}

Status ObliviousAgent::IdleDummyOp() {
  std::lock_guard<std::mutex> lock(io_mu_);
  STEGHIDE_RETURN_IF_ERROR(agent_.IdleDummyUpdates(1));
  return reader_->IdleDummyOp();
}

Result<bool> ObliviousAgent::PumpReorder(uint64_t budget_blocks) {
  bool more = false;
  STEGHIDE_RETURN_IF_ERROR(store_->StepReorder(budget_blocks, &more));
  return more;
}

}  // namespace steghide::agent
