#include "agent/oblivious_agent.h"

#include <algorithm>
#include <cstring>
#include <map>
#include <unordered_map>

namespace steghide::agent {

using oblivious::RecordId;
using oblivious::StegPartitionReader;
using stegfs::HiddenFile;

ObliviousAgent::ObliviousAgent(
    stegfs::StegFsCore* core,
    std::unique_ptr<oblivious::ObliviousStore> store)
    : core_(core), agent_(core), store_(std::move(store)) {
  reader_ = std::make_unique<StegPartitionReader>(core_, store_.get());
}

Result<std::unique_ptr<ObliviousAgent>> ObliviousAgent::Create(
    stegfs::StegFsCore* core, storage::BlockDevice* cache_device,
    const oblivious::ObliviousStoreOptions& store_options) {
  STEGHIDE_ASSIGN_OR_RETURN(auto store, oblivious::ObliviousStore::Create(
                                            cache_device, store_options));
  return std::unique_ptr<ObliviousAgent>(
      new ObliviousAgent(core, std::move(store)));
}

Result<Bytes> ObliviousAgent::Read(FileId id, uint64_t offset, size_t n) {
  const ByteRange range{offset, n};
  STEGHIDE_ASSIGN_OR_RETURN(
      auto out, ReadBatch(id, std::span<const ByteRange>(&range, 1)));
  return std::move(out.front());
}

Result<std::vector<Bytes>> ObliviousAgent::ReadBatch(
    FileId id, std::span<const ByteRange> ranges) {
  STEGHIDE_ASSIGN_OR_RETURN(const HiddenFile* file, agent_.InspectFile(id));
  const size_t payload = core_->payload_size();

  // Union of logical blocks covered by the clamped ranges, ascending —
  // one miss-fill/oblivious-group pass serves all of them.
  std::vector<uint64_t> logicals;
  for (const ByteRange& range : ranges) {
    if (range.offset >= file->file_size || range.length == 0) continue;
    const uint64_t end =
        std::min<uint64_t>(range.offset + range.length, file->file_size);
    for (uint64_t logical = range.offset / payload; logical * payload < end;
         ++logical) {
      logicals.push_back(logical);
    }
  }
  std::sort(logicals.begin(), logicals.end());
  logicals.erase(std::unique(logicals.begin(), logicals.end()),
                 logicals.end());

  Bytes blocks(logicals.size() * payload);
  STEGHIDE_RETURN_IF_ERROR(
      reader_->ReadBlockBatch(*file, logicals, blocks.data()));

  std::vector<Bytes> out(ranges.size());
  for (size_t r = 0; r < ranges.size(); ++r) {
    const ByteRange& range = ranges[r];
    if (range.offset >= file->file_size || range.length == 0) continue;
    const uint64_t end =
        std::min<uint64_t>(range.offset + range.length, file->file_size);
    out[r].reserve(end - range.offset);
    for (uint64_t logical = range.offset / payload; logical * payload < end;
         ++logical) {
      const uint64_t begin = logical * payload;
      const uint64_t lo = std::max<uint64_t>(range.offset, begin);
      const uint64_t hi = std::min<uint64_t>(end, begin + payload);
      const size_t idx = static_cast<size_t>(
          std::lower_bound(logicals.begin(), logicals.end(), logical) -
          logicals.begin());
      const uint8_t* src = blocks.data() + idx * payload;
      out[r].insert(out[r].end(), src + (lo - begin), src + (hi - begin));
    }
  }
  return out;
}

Status ObliviousAgent::Write(FileId id, uint64_t offset, const uint8_t* data,
                             size_t n) {
  if (n == 0) return Status::OK();
  WriteOp op;
  op.offset = offset;
  op.data.assign(data, data + n);
  return WriteBatch(id, std::span<const WriteOp>(&op, 1));
}

Status ObliviousAgent::WriteBatch(FileId id, std::span<const WriteOp> ops) {
  STEGHIDE_ASSIGN_OR_RETURN(const HiddenFile* file, agent_.InspectFile(id));
  const size_t payload = core_->payload_size();

  // Stage 1 — batched read-modify-write prefetch: every block whose first
  // touch in this batch is a partial overwrite of initially existing
  // content comes in through the hidden read path, so the fetches are as
  // pattern-free as any other read. Blocks first touched by a full
  // overwrite (or created by this batch) are staged without I/O.
  std::map<uint64_t, Bytes> images;  // logical -> staged payload image
  {
    const uint64_t initial_blocks = file->num_data_blocks();
    std::vector<uint64_t> prefetch;
    std::unordered_map<uint64_t, bool> first_touch_partial;
    for (const WriteOp& op : ops) {
      if (op.data.empty()) continue;
      const uint64_t end = op.offset + op.data.size();
      for (uint64_t logical = op.offset / payload; logical * payload < end;
           ++logical) {
        const uint64_t begin = logical * payload;
        const uint64_t lo = std::max<uint64_t>(op.offset, begin);
        const uint64_t hi = std::min<uint64_t>(end, begin + payload);
        const bool partial = (lo != begin || hi != begin + payload);
        first_touch_partial.try_emplace(logical, partial);
      }
    }
    for (const auto& [logical, partial] : first_touch_partial) {
      if (partial && logical < initial_blocks) prefetch.push_back(logical);
    }
    std::sort(prefetch.begin(), prefetch.end());
    if (!prefetch.empty()) {
      Bytes fetched(prefetch.size() * payload);
      STEGHIDE_RETURN_IF_ERROR(
          reader_->ReadBlockBatch(*file, prefetch, fetched.data()));
      for (size_t i = 0; i < prefetch.size(); ++i) {
        images[prefetch[i]].assign(fetched.data() + i * payload,
                                   fetched.data() + (i + 1) * payload);
      }
    }
  }

  // Stage 2 — apply ops in order. Persistence on the StegFS partition
  // stays per block: each Figure-6 relocating update reshapes the
  // selection domain the next one draws from, so their sequence is the
  // observable pattern and cannot be merged. The oblivious-cache
  // refreshes, by contrast, batch into one group below.
  std::vector<RecordId> refresh_order;
  std::unordered_map<RecordId, Bytes> refresh;
  Status persist_status;
  for (const WriteOp& op : ops) {
    if (!persist_status.ok()) break;
    if (op.data.empty()) continue;
    const uint64_t end = op.offset + op.data.size();
    for (uint64_t logical = op.offset / payload; logical * payload < end;
         ++logical) {
      const uint64_t begin = logical * payload;
      const uint64_t lo = std::max<uint64_t>(op.offset, begin);
      const uint64_t hi = std::min<uint64_t>(end, begin + payload);

      auto [it, inserted] = images.try_emplace(logical);
      if (inserted) it->second.assign(payload, 0);
      Bytes& block = it->second;
      std::memcpy(block.data() + (lo - begin), op.data.data() + (lo - op.offset),
                  hi - lo);

      // Persist via the relocating update (this also extends the file for
      // appends). Write the whole staged block, but never extend the file
      // past max(old end, new end) — clamping avoids rounding a trailing
      // partial block up to a full one.
      const bool existing = logical < file->num_data_blocks();
      const uint64_t keep =
          existing ? std::min<uint64_t>(payload, file->file_size - begin) : 0;
      const uint64_t write_len = std::max<uint64_t>(hi - begin, keep);
      persist_status = agent_.Write(id, begin, block.data(), write_len);
      if (!persist_status.ok()) break;

      // Record the cache refresh first (agent_tag is stable across
      // relocation, so the record id does not depend on the re-inspect).
      const RecordId rec = StegPartitionReader::MakeRecordId(*file, logical);
      if (existing || store_->Contains(rec)) {
        auto [rit, rinserted] = refresh.try_emplace(rec);
        if (rinserted) refresh_order.push_back(rec);
        rit->second = block;  // later duplicates win
      }

      // The file image may have been reallocated by growth; re-inspect.
      // Failures break (not return) so Stage 3 still refreshes the
      // blocks persisted so far.
      auto reinspect = agent_.InspectFile(id);
      if (!reinspect.ok()) {
        persist_status = reinspect.status();
        break;
      }
      file = *reinspect;
    }
  }

  // Stage 3 — one hidden-update group refreshes the cached copies, so
  // subsequent oblivious reads see the new content. This runs even when
  // a mid-batch persist failed: every block persisted *before* the
  // failure must not keep serving stale cached content.
  if (!refresh_order.empty()) {
    Bytes flat(refresh_order.size() * payload);
    for (size_t i = 0; i < refresh_order.size(); ++i) {
      const Bytes& image = refresh[refresh_order[i]];
      std::copy(image.begin(), image.end(), flat.data() + i * payload);
    }
    STEGHIDE_RETURN_IF_ERROR(store_->MultiWrite(refresh_order, flat.data()));
  }
  return persist_status;
}

Status ObliviousAgent::IdleDummyOp() {
  STEGHIDE_RETURN_IF_ERROR(agent_.IdleDummyUpdates(1));
  return reader_->IdleDummyOp();
}

}  // namespace steghide::agent
