#ifndef STEGHIDE_AGENT_VOLATILE_AGENT_H_
#define STEGHIDE_AGENT_VOLATILE_AGENT_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "agent/update_engine.h"
#include "stegfs/stegfs_core.h"
#include "util/result.h"

namespace steghide::agent {

/// Construction 2 (§4.2) — the volatile agent, "StegHide" in the paper's
/// evaluation (the construction the authors implemented on Linux).
///
/// The agent persists *nothing*. Each hidden file is encrypted under its
/// own FAK components, dummy blocks are organised into per-user dummy
/// files "of approximately the size of data files", and the keys are
/// disclosed to the agent only while their owner is logged in. A coerced
/// administrator has nothing to give up, and a coerced user can surrender
/// dummy files — or real files with a decoy content key — without the
/// adversary being able to tell the difference.
///
/// The update algorithm's selection domain is the union of the blocks of
/// all currently disclosed files; as users log in, the agent discovers
/// more blocks to spread its updates over (§4.2.2).
///
/// Consistency note: block relocation may re-home a vacated block into
/// *any* disclosed dummy file, including another user's. The affected
/// dummy file is marked dirty and flushed no later than its owner's
/// logout, which keeps on-disk headers consistent. Crash-atomicity of
/// flushes is out of scope, as in the paper.
///
/// Thread safety: one internal recursive mutex serializes every public
/// operation — session disclosure/creation, file I/O (which runs the
/// update engine and its BlockRegistry callbacks under the same lock
/// hold), and introspection. Per-user session state therefore stays
/// consistent under real std::thread users; throughput-level concurrency
/// comes from the RequestDispatcher aggregating requests above this
/// lock, not from intra-agent parallelism. Pointers handed out by
/// InspectFile() remain valid across map growth (files are
/// heap-anchored) but are invalidated by Logout/DeleteFile of the owning
/// session; callers must not race a logout against in-flight I/O on the
/// same session's files (the dispatcher drains before logout).
class VolatileAgent : public BlockRegistry {
 public:
  using UserId = std::string;
  using FileId = uint64_t;

  /// `core` must outlive the agent.
  explicit VolatileAgent(stegfs::StegFsCore* core);

  // ---- Sessions and disclosure ------------------------------------------

  /// Discloses an existing hidden file's FAK; the agent loads its header
  /// tree and adds its blocks to the selection domain.
  Result<FileId> DiscloseHiddenFile(const UserId& user,
                                    const stegfs::FileAccessKey& fak);

  /// Discloses a dummy file: same loading, but the agent is told (by the
  /// user — it is recorded nowhere on disk) that the content is
  /// meaningless, so its blocks become relocation targets.
  Result<FileId> DiscloseDummyFile(const UserId& user,
                                   const stegfs::FileAccessKey& fak);

  /// Flushes and forgets everything the user disclosed. After logout the
  /// agent retains no knowledge of those files.
  Status Logout(const UserId& user);

  /// Flushes every dirty file of every user (e.g. before taking a
  /// defender-side snapshot in an experiment).
  Status FlushAll();

  // ---- File lifecycle ----------------------------------------------------

  /// Creates an empty hidden file for `user` with a fresh random FAK.
  Result<FileId> CreateHiddenFile(const UserId& user);

  /// Creates a dummy file spanning `num_blocks` content blocks of fresh
  /// randomness. Users provision dummy files alongside their real files
  /// (§4.2.1); the resulting dummy blocks are what keeps the volume's
  /// effective utilisation below 1 and the update overhead near N/D.
  Result<FileId> CreateDummyFile(const UserId& user, uint64_t num_blocks);

  /// Releases the file's blocks into the user's first dummy file and
  /// scrubs the header.
  Status DeleteFile(FileId id);

  // ---- I/O ----------------------------------------------------------------

  Result<Bytes> Read(FileId id, uint64_t offset, size_t n);
  Status Write(FileId id, uint64_t offset, const uint8_t* data, size_t n);
  Status Write(FileId id, uint64_t offset, const Bytes& data) {
    return Write(id, offset, data.data(), data.size());
  }
  Status Truncate(FileId id, uint64_t new_size);

  /// Writes the header tree; indirect blocks are relocated when the
  /// owning user has a dummy file to absorb the vacated ones, otherwise
  /// rewritten in place. Dummy files always flush in place.
  Status Flush(FileId id);

  /// Issues `count` idle-time dummy updates over the disclosed domain.
  Status IdleDummyUpdates(uint64_t count);

  // ---- Introspection -------------------------------------------------------

  Result<stegfs::FileAccessKey> GetFak(FileId id) const;
  Result<uint64_t> FileSize(FileId id) const;

  /// Read-only view of the in-memory file image (block map, keys,
  /// agent_tag). Used by the oblivious read path (ObliviousAgent /
  /// StegPartitionReader), which needs the block map to fetch from the
  /// StegFS partition. The pointer is invalidated by Logout/DeleteFile.
  Result<const stegfs::HiddenFile*> InspectFile(FileId id) const;
  uint64_t domain_size() const {
    std::lock_guard<std::recursive_mutex> lock(mu_);
    return domain_.size();
  }
  /// Dummy (claimable) blocks currently in the domain.
  uint64_t dummy_block_count() const {
    std::lock_guard<std::recursive_mutex> lock(mu_);
    return dummy_count_;
  }
  /// Snapshot of the update-engine counters (copied under the lock).
  UpdateStats update_stats() const {
    std::lock_guard<std::recursive_mutex> lock(mu_);
    return engine_.stats();
  }
  void ResetUpdateStats() {
    std::lock_guard<std::recursive_mutex> lock(mu_);
    engine_.ResetStats();
  }
  stegfs::StegFsCore& core() { return *core_; }

  // ---- BlockRegistry --------------------------------------------------------
  // Invoked by the update engine from within Write/Flush/IdleDummyUpdates,
  // i.e. while mu_ is already held (it is recursive, so the re-entrant
  // locking below is cheap and keeps direct callers safe too).

  uint64_t DomainSize() const override {
    std::lock_guard<std::recursive_mutex> lock(mu_);
    return domain_.size();
  }
  uint64_t DomainBlock(uint64_t index) const override {
    std::lock_guard<std::recursive_mutex> lock(mu_);
    return domain_[index];
  }
  bool IsDummy(uint64_t physical) const override;
  Status DummyUpdate(uint64_t physical) override;
  void OnRelocate(stegfs::HiddenFile& file, uint64_t logical, uint64_t from,
                  uint64_t to) override;
  void OnClaim(stegfs::HiddenFile& file, uint64_t physical) override;
  void OnClaimTree(stegfs::HiddenFile& file, uint64_t physical) override;

 private:
  enum class BlockKind : uint8_t { kHeader, kTree, kData };
  struct OwnerInfo {
    FileId file_id = 0;
    BlockKind kind = BlockKind::kData;
    uint64_t index = 0;  // logical index for kData; tree index for kTree
  };
  struct OpenFile {
    stegfs::HiddenFile file;
    UserId user;
  };

  Result<OpenFile*> Lookup(FileId id);
  Result<const OpenFile*> Lookup(FileId id) const;

  /// Draws a uniformly random block that no disclosed file owns. May, with
  /// the probability the paper accepts for undisclosed data, collide with
  /// a logged-out user's block — the documented StegFS trade-off.
  uint64_t RandomUnownedBlock();

  void AddToDomain(uint64_t physical, const OwnerInfo& owner);
  void RemoveFromDomain(uint64_t physical);

  /// Registers a loaded file's blocks in domain/owner maps.
  Result<FileId> AdoptFile(const UserId& user, stegfs::HiddenFile file);

  /// Detaches `physical` from the dummy file that currently owns it
  /// (swap-remove of the pointer). Precondition: IsDummy(physical).
  void DetachFromDummyFile(uint64_t physical);

  /// Appends `physical` to the user's first dummy file (bookkeeping
  /// only); fails if the user has none.
  Status AbsorbIntoDummyFile(const UserId& user, uint64_t physical);

  Result<stegfs::HiddenFile*> FirstDummyFileOf(const UserId& user);

  /// Serializes public operations and the engine callbacks they trigger.
  /// Recursive: compound operations (Logout → Flush, engine →
  /// BlockRegistry) re-enter the public surface.
  mutable std::recursive_mutex mu_;
  stegfs::StegFsCore* core_;
  UpdateEngine engine_;
  std::map<FileId, std::unique_ptr<OpenFile>> files_;
  std::map<UserId, std::vector<FileId>> user_files_;
  std::unordered_map<uint64_t, OwnerInfo> owners_;
  std::vector<uint64_t> domain_;
  std::unordered_map<uint64_t, size_t> domain_index_;
  uint64_t dummy_count_ = 0;
  FileId next_id_ = 1;
  /// DummyUpdate staging reused across calls (guarded by mu_): the block
  /// image and the codec's transient refresh plaintext.
  Bytes dummy_block_scratch_;
  Bytes refresh_scratch_;
};

}  // namespace steghide::agent

#endif  // STEGHIDE_AGENT_VOLATILE_AGENT_H_
