#ifndef STEGHIDE_AGENT_UPDATE_ENGINE_H_
#define STEGHIDE_AGENT_UPDATE_ENGINE_H_

#include <cstdint>
#include <functional>

#include "stegfs/stegfs_core.h"
#include "util/histogram.h"

namespace steghide::agent {

/// The agent-specific knowledge the update algorithm needs: which blocks
/// it may touch (the selection domain), which of them are dummies, and how
/// to account for role changes.
///
/// Construction 1 (non-volatile agent): the domain is the whole volume and
/// dummy-ness comes from the agent's persistent bitmap.
///
/// Construction 2 (volatile agent): the domain is the union of the blocks
/// of all files disclosed by currently logged-in users, and dummy blocks
/// are the content blocks of disclosed dummy files.
class BlockRegistry {
 public:
  virtual ~BlockRegistry() = default;

  /// Size of the random-selection domain.
  virtual uint64_t DomainSize() const = 0;

  /// Maps a domain index in [0, DomainSize()) to a physical block id.
  virtual uint64_t DomainBlock(uint64_t index) const = 0;

  /// True if `physical` currently holds no real data and may be claimed.
  virtual bool IsDummy(uint64_t physical) const = 0;

  /// Performs one dummy update on `physical`: read the block, decrypt it,
  /// draw a fresh IV, re-encrypt, write it back (2 I/Os). The registry
  /// implements this because only it knows which key governs the block.
  virtual Status DummyUpdate(uint64_t physical) = 0;

  /// Bookkeeping after the engine moved `file`'s data block for logical
  /// index `logical` from `from` to the previously-dummy block `to`. The
  /// engine has already written the data at `to` and updated
  /// file.block_ptrs; the registry flips roles (and, for the volatile
  /// agent, re-points the dummy file that owned `to` at `from`).
  virtual void OnRelocate(stegfs::HiddenFile& file, uint64_t logical,
                          uint64_t from, uint64_t to) = 0;

  /// Bookkeeping after the engine claimed the dummy block `physical` as a
  /// brand-new data block of `file` (append); the engine has already
  /// written the data and pushed the pointer, so the logical index is
  /// file.block_ptrs.size() - 1.
  virtual void OnClaim(stegfs::HiddenFile& file, uint64_t physical) = 0;

  /// Bookkeeping after the engine claimed the dummy block `physical` for
  /// `file`'s header tree (indirect block). Called before the caller
  /// writes the block, so back-to-back claims never hand out the same
  /// block twice.
  virtual void OnClaimTree(stegfs::HiddenFile& file, uint64_t physical) = 0;
};

/// Mutates the decrypted payload of a block in place. Used so that the
/// engine's mandatory read of B1 (the paper charges read+write per
/// iteration) doubles as the read half of a read-modify-write.
using PayloadEditor = std::function<void(uint8_t* payload)>;

/// Counters for the overhead analysis of §4.1.5.
struct UpdateStats {
  uint64_t data_updates = 0;       // user-requested block updates
  uint64_t allocations = 0;        // new blocks claimed
  uint64_t dummy_updates = 0;      // standalone idle dummy updates
  uint64_t loop_iterations = 0;    // total Figure-6 iterations
  uint64_t io_reads = 0;
  uint64_t io_writes = 0;

  /// Mean iterations per data update; §4.1.5 predicts E = N/D.
  double MeanIterations() const {
    const uint64_t ops = data_updates + allocations;
    return ops == 0 ? 0.0
                    : static_cast<double>(loop_iterations) /
                          static_cast<double>(ops);
  }
};

/// The update algorithm of Figure 6, shared by both agent constructions.
///
/// Every user update relocates the target block to a uniformly random
/// position (retrying over data blocks with dummy updates), so the write
/// pattern the attacker observes is exactly the pattern of dummy updates:
/// uniform over the selection domain. Section 4.1.4 proves this perfectly
/// secure under Definition 1.
class UpdateEngine {
 public:
  /// Does not take ownership; both must outlive the engine.
  UpdateEngine(stegfs::StegFsCore* core, BlockRegistry* registry);

  /// Updates logical block `logical` of `file` through `edit`
  /// (read-modify-write). Relocates the block per Figure 6 and marks the
  /// file dirty on relocation.
  Status Update(stegfs::HiddenFile& file, uint64_t logical,
                const PayloadEditor& edit);

  /// Appends a new data block with `payload` to `file`, claiming a
  /// uniformly random dummy block with the same selection loop (so
  /// allocations are indistinguishable from updates). On success the block
  /// is file.block_ptrs.back().
  Status Append(stegfs::HiddenFile& file, const uint8_t* payload);

  /// Claims a uniformly random dummy block *without* binding it to a data
  /// file's content (used for indirect/header-tree blocks; the caller
  /// writes the block). The selection loop still dummy-updates data blocks
  /// it lands on, so the observable pattern is unchanged.
  Result<uint64_t> ClaimDummyBlock(stegfs::HiddenFile& file);

  /// One standalone dummy update on a uniformly random domain block — the
  /// idle-time traffic of §4.1.3.
  Status DummyUpdate();

  const UpdateStats& stats() const { return stats_; }
  void ResetStats() { stats_ = UpdateStats(); }

 private:
  /// Runs the Figure-6 selection loop until a dummy block (or `self`, if
  /// valid) is hit; returns the selected physical block. Dummy-updates any
  /// data blocks drawn along the way. `self` = kNullBlock for allocations.
  Result<uint64_t> SelectTarget(uint64_t self);

  stegfs::StegFsCore* core_;
  BlockRegistry* registry_;
  UpdateStats stats_;
};

}  // namespace steghide::agent

#endif  // STEGHIDE_AGENT_UPDATE_ENGINE_H_
