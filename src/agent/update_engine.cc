#include "agent/update_engine.h"

#include <cstring>

namespace steghide::agent {

using stegfs::HiddenFile;
using stegfs::kNullBlock;

UpdateEngine::UpdateEngine(stegfs::StegFsCore* core, BlockRegistry* registry)
    : core_(core), registry_(registry) {}

Result<uint64_t> UpdateEngine::SelectTarget(uint64_t self) {
  const uint64_t domain = registry_->DomainSize();
  if (domain == 0) {
    return Status::FailedPrecondition("empty selection domain");
  }
  // The expected number of iterations is N/D (§4.1.5); the cap only guards
  // against a mis-configured volume with no dummy blocks at all.
  const uint64_t max_iterations = 64 * domain + 64;
  for (uint64_t attempt = 0; attempt < max_iterations; ++attempt) {
    ++stats_.loop_iterations;
    const uint64_t candidate =
        registry_->DomainBlock(core_->drbg().Uniform(domain));
    if (candidate == self || registry_->IsDummy(candidate)) return candidate;
    // Landed on another data block: dummy-update it and draw again
    // (Figure 6, the "goto Re" branch).
    STEGHIDE_RETURN_IF_ERROR(registry_->DummyUpdate(candidate));
    stats_.io_reads += 1;
    stats_.io_writes += 1;
  }
  return Status::NoSpace("no dummy block found in selection domain");
}

Status UpdateEngine::Update(HiddenFile& file, uint64_t logical,
                            const PayloadEditor& edit) {
  if (logical >= file.num_data_blocks()) {
    return Status::OutOfRange("update beyond end of file");
  }
  const uint64_t b1 = file.block_ptrs[logical];
  ++stats_.data_updates;

  STEGHIDE_ASSIGN_OR_RETURN(const uint64_t target, SelectTarget(b1));

  // Final iteration: read B1 (the read half of the paper's two I/Os),
  // apply the edit, and write the result to the selected block.
  Bytes payload(core_->payload_size());
  STEGHIDE_RETURN_IF_ERROR(core_->ReadFileBlock(file, logical, payload.data()));
  ++stats_.io_reads;
  edit(payload.data());

  STEGHIDE_RETURN_IF_ERROR(
      core_->WriteDataBlockAt(file, target, payload.data()));
  ++stats_.io_writes;

  if (target != b1) {
    file.block_ptrs[logical] = target;
    file.dirty = true;
    registry_->OnRelocate(file, logical, b1, target);
  }
  return Status::OK();
}

Status UpdateEngine::Append(HiddenFile& file, const uint8_t* payload) {
  if (file.num_data_blocks() >=
      stegfs::MaxFileBlocks(core_->codec().block_size())) {
    return Status::NoSpace("file reached maximum size");
  }
  ++stats_.allocations;
  STEGHIDE_ASSIGN_OR_RETURN(const uint64_t target, SelectTarget(kNullBlock));

  STEGHIDE_RETURN_IF_ERROR(core_->WriteDataBlockAt(file, target, payload));
  ++stats_.io_writes;

  file.block_ptrs.push_back(target);
  file.dirty = true;
  registry_->OnClaim(file, target);
  return Status::OK();
}

Result<uint64_t> UpdateEngine::ClaimDummyBlock(HiddenFile& file) {
  ++stats_.allocations;
  STEGHIDE_ASSIGN_OR_RETURN(const uint64_t target, SelectTarget(kNullBlock));
  registry_->OnClaimTree(file, target);
  return target;
}

Status UpdateEngine::DummyUpdate() {
  const uint64_t domain = registry_->DomainSize();
  if (domain == 0) {
    return Status::FailedPrecondition("empty selection domain");
  }
  const uint64_t block = registry_->DomainBlock(core_->drbg().Uniform(domain));
  STEGHIDE_RETURN_IF_ERROR(registry_->DummyUpdate(block));
  ++stats_.dummy_updates;
  stats_.io_reads += 1;
  stats_.io_writes += 1;
  return Status::OK();
}

}  // namespace steghide::agent
