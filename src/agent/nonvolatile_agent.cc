#include "agent/nonvolatile_agent.h"

#include "agent/file_io.h"
#include "crypto/key.h"

namespace steghide::agent {

using stegfs::FileAccessKey;
using stegfs::HiddenFile;

NonVolatileAgent::NonVolatileAgent(stegfs::StegFsCore* core,
                                   const Options& options)
    : core_(core),
      agent_key_(options.agent_key.empty()
                     ? core->drbg().Generate(crypto::kDefaultKeyLen)
                     : options.agent_key),
      bitmap_(core->num_blocks()),
      engine_(core, this) {}

Result<HiddenFile*> NonVolatileAgent::Lookup(FileId id) {
  auto it = open_files_.find(id);
  if (it == open_files_.end()) return Status::NotFound("unknown file handle");
  return it->second.get();
}

Result<const HiddenFile*> NonVolatileAgent::Lookup(FileId id) const {
  auto it = open_files_.find(id);
  if (it == open_files_.end()) return Status::NotFound("unknown file handle");
  return static_cast<const HiddenFile*>(it->second.get());
}

Result<NonVolatileAgent::FileId> NonVolatileAgent::CreateFile() {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  if (bitmap_.dummy_count() == 0) return Status::NoSpace("volume full");
  // The header needs a home among the dummy blocks. A uniformly random
  // draw keeps header placement indistinguishable from the rest of the
  // update traffic.
  uint64_t location;
  do {
    location = core_->drbg().Uniform(core_->num_blocks());
  } while (bitmap_.IsData(location));

  auto file = std::make_unique<HiddenFile>();
  // Construction 1 encrypts every block under the agent's single secret
  // key (§4.1.2), so the per-file FAK carries the agent key; only the
  // location component distinguishes files.
  file->fak = FileAccessKey{location, agent_key_, agent_key_};
  file->dirty = true;
  bitmap_.MarkData(location);
  STEGHIDE_RETURN_IF_ERROR(core_->StoreFile(*file));

  const FileId id = next_id_++;
  open_files_.emplace(id, std::move(file));
  return id;
}

Result<NonVolatileAgent::FileId> NonVolatileAgent::OpenFile(
    const FileAccessKey& fak) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  // Construction 1 decrypts with the agent key regardless of what the
  // caller supplies in the key fields; the location is the credential the
  // user actually needs to remember.
  FileAccessKey effective{fak.header_location, agent_key_, agent_key_};
  STEGHIDE_ASSIGN_OR_RETURN(HiddenFile file, core_->LoadFile(effective));
  auto holder = std::make_unique<HiddenFile>(std::move(file));
  const FileId id = next_id_++;
  open_files_.emplace(id, std::move(holder));
  return id;
}

Status NonVolatileAgent::CloseFile(FileId id) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  STEGHIDE_ASSIGN_OR_RETURN(HiddenFile * file, Lookup(id));
  if (file->dirty) STEGHIDE_RETURN_IF_ERROR(Flush(id));
  open_files_.erase(id);
  return Status::OK();
}

Result<Bytes> NonVolatileAgent::Read(FileId id, uint64_t offset, size_t n) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  STEGHIDE_ASSIGN_OR_RETURN(HiddenFile * file, Lookup(id));
  return ReadBytes(*core_, *file, offset, n);
}

Status NonVolatileAgent::Write(FileId id, uint64_t offset, const uint8_t* data,
                               size_t n) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  STEGHIDE_ASSIGN_OR_RETURN(HiddenFile * file, Lookup(id));
  return WriteBytes(*core_, engine_, *file, offset, data, n);
}

Status NonVolatileAgent::Truncate(FileId id, uint64_t new_size) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  STEGHIDE_ASSIGN_OR_RETURN(HiddenFile * file, Lookup(id));
  std::vector<uint64_t> released;
  STEGHIDE_RETURN_IF_ERROR(TruncateBytes(*core_, *file, new_size, &released));
  // Released blocks keep their stale ciphertext, which is already
  // indistinguishable from abandonment; freeing costs no I/O.
  for (uint64_t b : released) bitmap_.MarkDummy(b);
  return Status::OK();
}

Status NonVolatileAgent::Flush(FileId id) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  STEGHIDE_ASSIGN_OR_RETURN(HiddenFile * file, Lookup(id));
  // Relocate the indirect blocks: release the old ones and claim fresh
  // uniformly random homes, so repeated flushes do not hammer fixed
  // positions.
  for (uint64_t old : file->indirect_locs) bitmap_.MarkDummy(old);
  const uint64_t needed = HiddenFile::IndirectNeeded(
      file->num_data_blocks(), core_->codec().block_size());
  file->indirect_locs.clear();
  file->indirect_locs.reserve(needed);
  for (uint64_t i = 0; i < needed; ++i) {
    STEGHIDE_ASSIGN_OR_RETURN(const uint64_t loc,
                              engine_.ClaimDummyBlock(*file));
    file->indirect_locs.push_back(loc);
  }
  return core_->StoreFile(*file);
}

Status NonVolatileAgent::DeleteFile(FileId id) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  STEGHIDE_ASSIGN_OR_RETURN(HiddenFile * file, Lookup(id));
  for (uint64_t b : file->block_ptrs) bitmap_.MarkDummy(b);
  for (uint64_t b : file->indirect_locs) bitmap_.MarkDummy(b);
  // Scrub the header so the file cannot be re-opened, then abandon it. To
  // an observer this is one more uniformly distributed update.
  STEGHIDE_RETURN_IF_ERROR(core_->RandomizeBlock(file->fak.header_location));
  bitmap_.MarkDummy(file->fak.header_location);
  open_files_.erase(id);
  return Status::OK();
}

Result<FileAccessKey> NonVolatileAgent::GetFak(FileId id) const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  STEGHIDE_ASSIGN_OR_RETURN(const HiddenFile* file, Lookup(id));
  return file->fak;
}

Result<uint64_t> NonVolatileAgent::FileSize(FileId id) const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  STEGHIDE_ASSIGN_OR_RETURN(const HiddenFile* file, Lookup(id));
  return file->file_size;
}

Status NonVolatileAgent::IdleDummyUpdates(uint64_t count) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  for (uint64_t i = 0; i < count; ++i) {
    STEGHIDE_RETURN_IF_ERROR(engine_.DummyUpdate());
  }
  return Status::OK();
}

Status NonVolatileAgent::RestoreBitmap(const Bytes& data) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  STEGHIDE_ASSIGN_OR_RETURN(stegfs::BlockBitmap restored,
                            stegfs::BlockBitmap::Deserialize(data));
  if (restored.num_blocks() != core_->num_blocks()) {
    return Status::InvalidArgument("bitmap does not match volume size");
  }
  bitmap_ = std::move(restored);
  return Status::OK();
}

Status NonVolatileAgent::DummyUpdate(uint64_t physical) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  // Read, decrypt under the agent key, fresh IV, re-encrypt, write back
  // (§4.1.3). Works uniformly for data, tree, header and abandoned blocks
  // because construction 1 encrypts them all under one key (for abandoned
  // blocks the "plaintext" is meaningless, which is fine — it is never
  // interpreted).
  STEGHIDE_ASSIGN_OR_RETURN(const crypto::CbcCipher* cipher,
                            core_->CipherFor(agent_key_));
  Bytes& block = dummy_block_scratch_;
  STEGHIDE_RETURN_IF_ERROR(core_->ReadRaw(physical, block));
  STEGHIDE_RETURN_IF_ERROR(core_->codec().RefreshBlocks(
      *cipher, core_->drbg(), block.data(), 1, &refresh_scratch_));
  return core_->WriteRaw(physical, block);
}

void NonVolatileAgent::OnRelocate(HiddenFile& /*file*/, uint64_t /*logical*/,
                                  uint64_t from, uint64_t to) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  bitmap_.MarkDummy(from);
  bitmap_.MarkData(to);
}

void NonVolatileAgent::OnClaim(HiddenFile& /*file*/, uint64_t physical) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  bitmap_.MarkData(physical);
}

void NonVolatileAgent::OnClaimTree(HiddenFile& /*file*/, uint64_t physical) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  bitmap_.MarkData(physical);
}

}  // namespace steghide::agent
