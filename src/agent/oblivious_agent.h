#ifndef STEGHIDE_AGENT_OBLIVIOUS_AGENT_H_
#define STEGHIDE_AGENT_OBLIVIOUS_AGENT_H_

#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "agent/volatile_agent.h"
#include "oblivious/oblivious_store.h"
#include "oblivious/steg_partition_reader.h"
#include "obs/trace_log.h"

namespace steghide::agent {

/// The complete system of Section 5: a volatile agent whose *updates* are
/// hidden by the Figure-6 mechanism on the StegFS partition, and whose
/// *reads* are diverted to the oblivious storage.
///
/// Consistency rule (§5.1.2): a write enters the oblivious cache as a
/// hidden update (indistinguishable from a read on the wire) and is
/// "repeated on the StegFS partition to ensure consistency" through the
/// update engine. The cache keys records by (file, logical block), so
/// relocations on the StegFS partition never invalidate cached content.
///
/// The two partitions may live on the same device (disjoint block ranges)
/// or on separate devices; the constructor takes them independently.
///
/// Thread safety: hidden-access I/O (Read/Write, the batch and group
/// entry points, IdleDummyOp) serializes on one internal I/O mutex at
/// group granularity — the cross-file ReadGroup/WriteGroup seam is where
/// the RequestDispatcher commits k concurrent user requests as one
/// level-scan group. Session calls forward to the (internally locked)
/// volatile agent and may run concurrently with I/O; logging out a user
/// with in-flight I/O on their files is a caller error (the dispatcher
/// drains first).
class ObliviousAgent {
 public:
  using UserId = VolatileAgent::UserId;
  using FileId = VolatileAgent::FileId;

  /// `core` is the StegFS partition; `cache_device` hosts the oblivious
  /// hierarchy + scratch per `store_options`. Neither is owned.
  static Result<std::unique_ptr<ObliviousAgent>> Create(
      stegfs::StegFsCore* core, storage::BlockDevice* cache_device,
      const oblivious::ObliviousStoreOptions& store_options);

  // ---- Sessions (forwarded to the volatile agent) -----------------------

  Result<FileId> DiscloseHiddenFile(const UserId& user,
                                    const stegfs::FileAccessKey& fak) {
    return agent_.DiscloseHiddenFile(user, fak);
  }
  Result<FileId> DiscloseDummyFile(const UserId& user,
                                   const stegfs::FileAccessKey& fak) {
    return agent_.DiscloseDummyFile(user, fak);
  }
  Result<FileId> CreateHiddenFile(const UserId& user) {
    return agent_.CreateHiddenFile(user);
  }
  Result<FileId> CreateDummyFile(const UserId& user, uint64_t num_blocks) {
    return agent_.CreateDummyFile(user, num_blocks);
  }
  Status Logout(const UserId& user) { return agent_.Logout(user); }
  Result<stegfs::FileAccessKey> GetFak(FileId id) const {
    return agent_.GetFak(id);
  }
  Result<uint64_t> FileSize(FileId id) const { return agent_.FileSize(id); }
  Status Flush(FileId id) { return agent_.Flush(id); }

  // ---- Hidden-access I/O -------------------------------------------------

  /// One byte range of a batched hidden access.
  struct ByteRange {
    uint64_t offset = 0;
    uint64_t length = 0;
  };
  /// One write of a batched hidden update.
  struct WriteOp {
    uint64_t offset = 0;
    Bytes data;
  };
  /// One read of a cross-file group (dispatcher aggregation unit).
  struct ReadRequest {
    FileId file = 0;
    uint64_t offset = 0;
    uint64_t length = 0;
  };
  /// One write of a cross-file group.
  struct WriteRequest {
    FileId file = 0;
    uint64_t offset = 0;
    Bytes data;
  };

  /// Oblivious read: buffer/levels of the cache, with first-time fetches
  /// randomised per Figure 8(a). Equivalent to a one-range ReadBatch.
  Result<Bytes> Read(FileId id, uint64_t offset, size_t n);

  /// Batched oblivious read: serves every range through one miss-fill
  /// pass and one cached MultiRead group per covered block set, so k
  /// ranges cost one level-scan pass per store-buffer-size chunk instead
  /// of one per block.
  Result<std::vector<Bytes>> ReadBatch(FileId id,
                                       std::span<const ByteRange> ranges);

  /// Cross-file batched oblivious read: requests[i] may address any mix
  /// of files; the union of covered blocks across *all* files is served
  /// by one miss-fill pass and one MultiRead group per store-buffer-size
  /// chunk. This is the group-commit entry point of the request
  /// dispatcher: k concurrent users' reads cost one level-scan pass per
  /// chunk instead of one pass each.
  Result<std::vector<Bytes>> ReadGroup(std::span<const ReadRequest> requests);

  /// Hidden write: cache write (read-shaped on the wire) + Figure-6
  /// relocating update on the StegFS partition. Equivalent to a one-op
  /// WriteBatch.
  Status Write(FileId id, uint64_t offset, const uint8_t* data, size_t n);
  Status Write(FileId id, uint64_t offset, const Bytes& data) {
    return Write(id, offset, data.data(), data.size());
  }

  /// Batched hidden write: read-modify-write fetches are batched through
  /// the oblivious read path, the StegFS-partition persistence runs per
  /// block (Figure-6 relocating updates are inherently sequential), and
  /// the cache refreshes land in one MultiWrite group. Ops apply in
  /// order; overlapping writes resolve last-wins.
  Status WriteBatch(FileId id, std::span<const WriteOp> ops);

  /// Cross-file batched hidden write (dispatcher group commit): the RMW
  /// prefetches of every request share one oblivious read group, the
  /// per-block Figure-6 relocating updates run in request order, and all
  /// cache refreshes land in one MultiWrite group.
  Status WriteGroup(std::span<const WriteRequest> requests);

  /// One idle-time dummy op on every traffic surface: a dummy update on
  /// the StegFS partition (§4.1.3), a dummy partition read and a dummy
  /// oblivious read (§5.1.1).
  Status IdleDummyOp();

  /// Advances pending deamortized re-order work in the oblivious cache
  /// by roughly `budget_blocks` device I/Os; returns whether work
  /// remains. The idle-gap hook the request dispatcher's I/O thread
  /// pumps between group commits. Serializes on the store's own lock
  /// (not io_mu_), so a pump can never deadlock against a group commit
  /// and rebuild increments interleave with serving only at scan-pass
  /// granularity.
  Result<bool> PumpReorder(uint64_t budget_blocks);

  // ---- Introspection -------------------------------------------------------

  VolatileAgent& volatile_agent() { return agent_; }
  oblivious::ObliviousStore& store() { return *store_; }
  const oblivious::StegPartitionReader& reader() const { return *reader_; }

 private:
  ObliviousAgent(stegfs::StegFsCore* core,
                 std::unique_ptr<oblivious::ObliviousStore> store);

  /// One write of a group, with the data borrowed from the caller so the
  /// single-file WriteBatch path stays copy-free.
  struct WriteView {
    FileId file = 0;
    uint64_t offset = 0;
    std::span<const uint8_t> data;
  };

  // Unlocked implementations; callers hold io_mu_.
  Result<std::vector<Bytes>> ReadGroupImpl(
      std::span<const ReadRequest> requests);
  Status WriteGroupImpl(std::span<const WriteView> views);

  stegfs::StegFsCore* core_;
  VolatileAgent agent_;
  std::unique_ptr<oblivious::ObliviousStore> store_;
  std::unique_ptr<oblivious::StegPartitionReader> reader_;
  /// Span sink shared with the store (ObliviousStoreOptions::trace);
  /// null when observability is off.
  obs::TraceLog* trace_ = nullptr;
  uint32_t trace_track_ = 0;
  /// Serializes hidden-access I/O at group granularity (the reader and
  /// its Figure-8(a) state are single-threaded by contract).
  std::mutex io_mu_;
};

}  // namespace steghide::agent

#endif  // STEGHIDE_AGENT_OBLIVIOUS_AGENT_H_
