#include "agent/file_io.h"

#include <algorithm>
#include <cstring>

namespace steghide::agent {

using stegfs::HiddenFile;

Result<Bytes> ReadBytes(stegfs::StegFsCore& core, const HiddenFile& file,
                        uint64_t offset, size_t n) {
  if (n == 0 || offset >= file.file_size) return Bytes{};
  const uint64_t end = std::min<uint64_t>(offset + n, file.file_size);
  const size_t payload = core.payload_size();

  // One vectored fetch for the whole logical span, so the storage stack
  // (cache, scheduler, simulated disk) sees the request as a batch.
  const uint64_t first = offset / payload;
  const uint64_t last = (end - 1) / payload;  // inclusive; end > 0 from n > 0
  const uint64_t count = last - first + 1;
  Bytes payloads(count * payload);
  STEGHIDE_RETURN_IF_ERROR(
      core.ReadFileBlocks(file, first, count, payloads.data()));

  Bytes out;
  out.reserve(end - offset);
  for (uint64_t logical = first; logical <= last; ++logical) {
    const uint8_t* buf = payloads.data() + (logical - first) * payload;
    const uint64_t block_begin = logical * payload;
    const uint64_t lo = std::max<uint64_t>(offset, block_begin);
    const uint64_t hi = std::min<uint64_t>(end, block_begin + payload);
    out.insert(out.end(), buf + (lo - block_begin), buf + (hi - block_begin));
  }
  return out;
}

Status WriteBytes(stegfs::StegFsCore& core, UpdateEngine& engine,
                  HiddenFile& file, uint64_t offset, const uint8_t* data,
                  size_t n) {
  if (n == 0) return Status::OK();
  const size_t payload = core.payload_size();
  const uint64_t end = offset + n;

  // Zero-fill any gap between the current end of file and `offset` so the
  // block map stays dense.
  if (offset > file.file_size) {
    const Bytes zeros(payload, 0);
    while (file.num_data_blocks() * payload < offset) {
      STEGHIDE_RETURN_IF_ERROR(engine.Append(file, zeros.data()));
    }
  }

  for (uint64_t logical = offset / payload; logical * payload < end;
       ++logical) {
    const uint64_t block_begin = logical * payload;
    const uint64_t lo = std::max<uint64_t>(offset, block_begin);
    const uint64_t hi = std::min<uint64_t>(end, block_begin + payload);
    const uint8_t* src = data + (lo - offset);
    const size_t len = hi - lo;
    const size_t dst_off = lo - block_begin;

    if (logical < file.num_data_blocks()) {
      STEGHIDE_RETURN_IF_ERROR(engine.Update(
          file, logical, [&](uint8_t* p) { std::memcpy(p + dst_off, src, len); }));
    } else {
      Bytes fresh(payload, 0);
      std::memcpy(fresh.data() + dst_off, src, len);
      STEGHIDE_RETURN_IF_ERROR(engine.Append(file, fresh.data()));
    }
  }

  if (end > file.file_size) {
    file.file_size = end;
    file.dirty = true;
  }
  return Status::OK();
}

Status TruncateBytes(stegfs::StegFsCore& core, HiddenFile& file,
                     uint64_t new_size, std::vector<uint64_t>* released) {
  if (new_size > file.file_size) {
    return Status::InvalidArgument("TruncateBytes cannot grow a file");
  }
  const size_t payload = core.payload_size();
  const uint64_t keep_blocks = (new_size + payload - 1) / payload;
  while (file.num_data_blocks() > keep_blocks) {
    released->push_back(file.block_ptrs.back());
    file.block_ptrs.pop_back();
  }
  file.file_size = new_size;
  file.dirty = true;
  return Status::OK();
}

}  // namespace steghide::agent
