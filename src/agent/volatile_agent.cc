#include "agent/volatile_agent.h"

#include <algorithm>
#include <cassert>

#include "agent/file_io.h"

namespace steghide::agent {

using stegfs::FileAccessKey;
using stegfs::HiddenFile;

VolatileAgent::VolatileAgent(stegfs::StegFsCore* core)
    : core_(core), engine_(core, this) {}

Result<VolatileAgent::OpenFile*> VolatileAgent::Lookup(FileId id) {
  auto it = files_.find(id);
  if (it == files_.end()) return Status::NotFound("unknown file handle");
  return it->second.get();
}

Result<const VolatileAgent::OpenFile*> VolatileAgent::Lookup(FileId id) const {
  auto it = files_.find(id);
  if (it == files_.end()) return Status::NotFound("unknown file handle");
  return static_cast<const OpenFile*>(it->second.get());
}

uint64_t VolatileAgent::RandomUnownedBlock() {
  // The agent cannot see undisclosed files, so "unowned" means "not owned
  // by any *disclosed* file". The residual chance of landing on a
  // logged-out user's block is the data-loss risk inherent to StegFS;
  // deployments keep utilisation low precisely to bound it.
  for (;;) {
    const uint64_t b = core_->drbg().Uniform(core_->num_blocks());
    if (owners_.find(b) == owners_.end()) return b;
  }
}

bool VolatileAgent::IsDummy(uint64_t physical) const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  const auto it = owners_.find(physical);
  if (it == owners_.end() || it->second.kind != BlockKind::kData) return false;
  const auto fit = files_.find(it->second.file_id);
  assert(fit != files_.end());
  return fit->second->file.is_dummy;
}

void VolatileAgent::AddToDomain(uint64_t physical, const OwnerInfo& owner) {
  assert(owners_.find(physical) == owners_.end());
  assert(domain_index_.find(physical) == domain_index_.end());
  owners_[physical] = owner;
  domain_index_[physical] = domain_.size();
  domain_.push_back(physical);
  if (IsDummy(physical)) ++dummy_count_;
}

void VolatileAgent::RemoveFromDomain(uint64_t physical) {
  if (IsDummy(physical)) --dummy_count_;
  const auto it = domain_index_.find(physical);
  assert(it != domain_index_.end());
  const size_t idx = it->second;
  const uint64_t last = domain_.back();
  domain_[idx] = last;
  domain_index_[last] = idx;
  domain_.pop_back();
  domain_index_.erase(it);
  owners_.erase(physical);
}

Result<VolatileAgent::FileId> VolatileAgent::AdoptFile(const UserId& user,
                                                       HiddenFile file) {
  // Reject overlapping disclosures: a block already registered means the
  // same file (or a corrupted one) was disclosed twice.
  auto taken = [&](uint64_t b) { return owners_.find(b) != owners_.end(); };
  if (taken(file.fak.header_location)) {
    return Status::AlreadyExists("header block already disclosed");
  }
  for (uint64_t b : file.indirect_locs) {
    if (taken(b)) return Status::AlreadyExists("tree block already disclosed");
  }
  for (uint64_t b : file.block_ptrs) {
    if (taken(b)) return Status::AlreadyExists("data block already disclosed");
  }

  const FileId id = next_id_++;
  file.agent_tag = id;
  auto holder = std::make_unique<OpenFile>();
  holder->file = std::move(file);
  holder->user = user;
  const HiddenFile& f = holder->file;
  files_.emplace(id, std::move(holder));
  user_files_[user].push_back(id);

  AddToDomain(f.fak.header_location, {id, BlockKind::kHeader, 0});
  for (uint64_t i = 0; i < f.indirect_locs.size(); ++i) {
    AddToDomain(f.indirect_locs[i], {id, BlockKind::kTree, i});
  }
  for (uint64_t i = 0; i < f.block_ptrs.size(); ++i) {
    AddToDomain(f.block_ptrs[i], {id, BlockKind::kData, i});
  }
  return id;
}

Result<VolatileAgent::FileId> VolatileAgent::DiscloseHiddenFile(
    const UserId& user, const FileAccessKey& fak) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  STEGHIDE_ASSIGN_OR_RETURN(HiddenFile file, core_->LoadFile(fak));
  file.is_dummy = false;
  return AdoptFile(user, std::move(file));
}

Result<VolatileAgent::FileId> VolatileAgent::DiscloseDummyFile(
    const UserId& user, const FileAccessKey& fak) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  STEGHIDE_ASSIGN_OR_RETURN(HiddenFile file, core_->LoadFile(fak));
  file.is_dummy = true;
  return AdoptFile(user, std::move(file));
}

Result<VolatileAgent::FileId> VolatileAgent::CreateHiddenFile(
    const UserId& user) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  HiddenFile file;
  file.fak = FileAccessKey::Random(core_->drbg(), core_->num_blocks());
  file.fak.header_location = RandomUnownedBlock();
  file.dirty = true;
  STEGHIDE_RETURN_IF_ERROR(core_->StoreFile(file));
  return AdoptFile(user, std::move(file));
}

Result<VolatileAgent::FileId> VolatileAgent::CreateDummyFile(
    const UserId& user, uint64_t num_blocks) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  if (num_blocks > stegfs::MaxFileBlocks(core_->codec().block_size())) {
    return Status::InvalidArgument(
        "dummy file exceeds the maximum file size; create several");
  }
  HiddenFile file;
  file.is_dummy = true;
  file.fak = FileAccessKey::Random(core_->drbg(), core_->num_blocks());
  file.fak.header_location = RandomUnownedBlock();

  // Reserve the header eagerly so content placement cannot collide with
  // it. A temporary owner entry keeps RandomUnownedBlock honest while the
  // rest of the file is being placed; AdoptFile re-registers everything.
  std::vector<uint64_t> placed;
  auto reserve = [&](uint64_t b) {
    owners_[b] = OwnerInfo{};
    placed.push_back(b);
  };
  auto unreserve_all = [&] {
    for (uint64_t b : placed) owners_.erase(b);
    placed.clear();
  };
  reserve(file.fak.header_location);

  file.block_ptrs.reserve(num_blocks);
  for (uint64_t i = 0; i < num_blocks; ++i) {
    const uint64_t b = RandomUnownedBlock();
    reserve(b);
    // Fresh randomness; dummy content is never interpreted.
    const Status st = core_->RandomizeBlock(b);
    if (!st.ok()) {
      unreserve_all();
      return st;
    }
    file.block_ptrs.push_back(b);
  }
  file.file_size = num_blocks * core_->payload_size();

  const uint64_t tree_needed = HiddenFile::IndirectNeeded(
      num_blocks, core_->codec().block_size());
  for (uint64_t i = 0; i < tree_needed; ++i) {
    const uint64_t b = RandomUnownedBlock();
    reserve(b);
    file.indirect_locs.push_back(b);
  }

  const Status st = core_->StoreFile(file);
  unreserve_all();
  STEGHIDE_RETURN_IF_ERROR(st);
  return AdoptFile(user, std::move(file));
}

Result<HiddenFile*> VolatileAgent::FirstDummyFileOf(const UserId& user) {
  const auto it = user_files_.find(user);
  if (it != user_files_.end()) {
    // First dummy file with spare pointer capacity, so absorption can
    // never push a file past the representable maximum.
    const uint64_t cap = stegfs::MaxFileBlocks(core_->codec().block_size());
    for (FileId id : it->second) {
      OpenFile& of = *files_.at(id);
      if (of.file.is_dummy && of.file.num_data_blocks() < cap) {
        return &of.file;
      }
    }
  }
  return Status::FailedPrecondition("user '" + user +
                                    "' has no dummy file with capacity");
}

void VolatileAgent::DetachFromDummyFile(uint64_t physical) {
  const auto it = owners_.find(physical);
  assert(it != owners_.end() && it->second.kind == BlockKind::kData);
  OpenFile& df = *files_.at(it->second.file_id);
  assert(df.file.is_dummy);
  HiddenFile& f = df.file;
  const uint64_t j = it->second.index;
  const uint64_t last = f.block_ptrs.back();
  if (last != physical) {
    f.block_ptrs[j] = last;
    owners_.at(last).index = j;
  }
  f.block_ptrs.pop_back();
  f.file_size = f.num_data_blocks() * core_->payload_size();
  f.dirty = true;
  owners_.erase(it);
  --dummy_count_;
  // The block stays in the domain; the caller registers its new owner.
}

Status VolatileAgent::AbsorbIntoDummyFile(const UserId& user,
                                          uint64_t physical) {
  STEGHIDE_ASSIGN_OR_RETURN(HiddenFile * df, FirstDummyFileOf(user));
  assert(owners_.find(physical) == owners_.end());
  owners_[physical] =
      OwnerInfo{df->agent_tag, BlockKind::kData, df->num_data_blocks()};
  df->block_ptrs.push_back(physical);
  df->file_size = df->num_data_blocks() * core_->payload_size();
  df->dirty = true;
  ++dummy_count_;
  return Status::OK();
}

Status VolatileAgent::DummyUpdate(uint64_t physical) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  const auto it = owners_.find(physical);
  if (it == owners_.end()) {
    return Status::Internal("dummy update outside disclosed domain");
  }
  const OpenFile& of = *files_.at(it->second.file_id);

  Bytes& block = dummy_block_scratch_;
  STEGHIDE_RETURN_IF_ERROR(core_->ReadRaw(physical, block));
  if (it->second.kind == BlockKind::kData && of.file.is_dummy) {
    // Unkeyed dummy content: a rewrite with fresh randomness is the
    // IV-refresh equivalent (the read keeps the 2-I/O pattern of §4.1.3).
    core_->codec().Randomize(core_->drbg(), block.data());
  } else {
    const Bytes& key = it->second.kind == BlockKind::kData
                           ? of.file.fak.content_key
                           : of.file.fak.header_key;
    STEGHIDE_ASSIGN_OR_RETURN(const crypto::CbcCipher* cipher,
                              core_->CipherFor(key));
    STEGHIDE_RETURN_IF_ERROR(core_->codec().RefreshBlocks(
        *cipher, core_->drbg(), block.data(), 1, &refresh_scratch_));
  }
  return core_->WriteRaw(physical, block);
}

void VolatileAgent::OnRelocate(HiddenFile& file, uint64_t logical,
                               uint64_t from, uint64_t to) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  // `to` was a dummy block owned by some disclosed dummy file; that file
  // adopts the vacated `from` in its place, so the dummy pool keeps its
  // size and every block keeps an owner.
  const auto it = owners_.find(to);
  assert(it != owners_.end() && it->second.kind == BlockKind::kData);
  const OwnerInfo dummy_owner = it->second;
  OpenFile& df = *files_.at(dummy_owner.file_id);
  assert(df.file.is_dummy);
  df.file.block_ptrs[dummy_owner.index] = from;
  df.file.dirty = true;
  owners_[from] = dummy_owner;
  owners_[to] = OwnerInfo{file.agent_tag, BlockKind::kData, logical};
}

void VolatileAgent::OnClaim(HiddenFile& file, uint64_t physical) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  DetachFromDummyFile(physical);
  owners_[physical] = OwnerInfo{file.agent_tag, BlockKind::kData,
                                file.num_data_blocks() - 1};
}

void VolatileAgent::OnClaimTree(HiddenFile& file, uint64_t physical) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  DetachFromDummyFile(physical);
  // The caller records the slot in file.indirect_locs; the index here is
  // fixed up by Flush before it matters.
  owners_[physical] = OwnerInfo{file.agent_tag, BlockKind::kTree, 0};
}

Result<Bytes> VolatileAgent::Read(FileId id, uint64_t offset, size_t n) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  STEGHIDE_ASSIGN_OR_RETURN(OpenFile * of, Lookup(id));
  return ReadBytes(*core_, of->file, offset, n);
}

Status VolatileAgent::Write(FileId id, uint64_t offset, const uint8_t* data,
                            size_t n) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  STEGHIDE_ASSIGN_OR_RETURN(OpenFile * of, Lookup(id));
  if (of->file.is_dummy) {
    return Status::InvalidArgument("cannot write user data to a dummy file");
  }
  return WriteBytes(*core_, engine_, of->file, offset, data, n);
}

Status VolatileAgent::Truncate(FileId id, uint64_t new_size) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  STEGHIDE_ASSIGN_OR_RETURN(OpenFile * of, Lookup(id));
  std::vector<uint64_t> released;
  STEGHIDE_RETURN_IF_ERROR(
      TruncateBytes(*core_, of->file, new_size, &released));
  for (uint64_t b : released) {
    owners_.erase(b);
    STEGHIDE_RETURN_IF_ERROR(AbsorbIntoDummyFile(of->user, b));
  }
  return Status::OK();
}

Status VolatileAgent::Flush(FileId id) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  STEGHIDE_ASSIGN_OR_RETURN(OpenFile * of, Lookup(id));
  HiddenFile& f = of->file;

  const bool can_relocate_tree =
      !f.is_dummy && FirstDummyFileOf(of->user).ok();
  if (can_relocate_tree) {
    // Hand the old tree blocks to the user's dummy file and claim fresh
    // uniformly random homes, as for data relocations.
    for (uint64_t old : f.indirect_locs) {
      owners_.erase(old);
      STEGHIDE_RETURN_IF_ERROR(AbsorbIntoDummyFile(of->user, old));
    }
    f.indirect_locs.clear();
  }

  // Size the tree. Claims may detach blocks from this very file when it is
  // a dummy (shrinking block_ptrs), so recompute the requirement each
  // round until it stabilises.
  for (;;) {
    const uint64_t needed = HiddenFile::IndirectNeeded(
        f.num_data_blocks(), core_->codec().block_size());
    if (f.indirect_locs.size() == needed) break;
    if (f.indirect_locs.size() < needed) {
      STEGHIDE_ASSIGN_OR_RETURN(const uint64_t b, engine_.ClaimDummyBlock(f));
      f.indirect_locs.push_back(b);
    } else {
      const uint64_t extra = f.indirect_locs.back();
      f.indirect_locs.pop_back();
      owners_.erase(extra);
      STEGHIDE_RETURN_IF_ERROR(AbsorbIntoDummyFile(of->user, extra));
    }
  }
  // Fix up tree indices in the owner map.
  for (uint64_t i = 0; i < f.indirect_locs.size(); ++i) {
    owners_[f.indirect_locs[i]] =
        OwnerInfo{f.agent_tag, BlockKind::kTree, i};
  }
  return core_->StoreFile(f);
}

Status VolatileAgent::DeleteFile(FileId id) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  STEGHIDE_ASSIGN_OR_RETURN(OpenFile * of, Lookup(id));
  HiddenFile& f = of->file;
  const UserId user = of->user;
  if (!f.is_dummy) {
    // The user needs a dummy file to absorb the released blocks; check
    // before mutating anything so failure leaves the agent consistent.
    STEGHIDE_RETURN_IF_ERROR(FirstDummyFileOf(user).status());
  } else {
    // Deleting a dummy file requires another dummy file to absorb it.
    // (Deleting the last dummy file would leave the domain with no
    // relocation targets.)
    bool has_other = false;
    for (FileId other : user_files_[user]) {
      if (other != id && files_.at(other)->file.is_dummy) has_other = true;
    }
    if (!has_other) {
      return Status::FailedPrecondition(
          "cannot delete the user's last dummy file");
    }
  }

  // Scrub the header so the FAK no longer opens anything.
  STEGHIDE_RETURN_IF_ERROR(core_->RandomizeBlock(f.fak.header_location));

  std::vector<uint64_t> blocks;
  blocks.push_back(f.fak.header_location);
  blocks.insert(blocks.end(), f.indirect_locs.begin(), f.indirect_locs.end());
  blocks.insert(blocks.end(), f.block_ptrs.begin(), f.block_ptrs.end());

  // Remove this file before re-homing its blocks, so IsDummy() during
  // re-registration reflects the new owner, not the dying file.
  for (uint64_t b : blocks) RemoveFromDomain(b);
  auto& list = user_files_[user];
  list.erase(std::find(list.begin(), list.end(), id));
  files_.erase(id);

  for (uint64_t b : blocks) {
    STEGHIDE_RETURN_IF_ERROR(AbsorbIntoDummyFile(user, b));
    // AbsorbIntoDummyFile sets the owner; restore domain membership.
    const OwnerInfo owner = owners_[b];
    owners_.erase(b);
    --dummy_count_;  // AddToDomain will re-increment
    AddToDomain(b, owner);
  }
  return Status::OK();
}

Status VolatileAgent::Logout(const UserId& user) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  const auto it = user_files_.find(user);
  if (it == user_files_.end()) return Status::NotFound("unknown user");

  // Flush everything first: relocations may have dirtied this user's
  // dummy files on behalf of other users' updates.
  for (FileId id : it->second) {
    if (files_.at(id)->file.dirty) STEGHIDE_RETURN_IF_ERROR(Flush(id));
  }
  for (FileId id : it->second) {
    const HiddenFile& f = files_.at(id)->file;
    RemoveFromDomain(f.fak.header_location);
    for (uint64_t b : f.indirect_locs) RemoveFromDomain(b);
    for (uint64_t b : f.block_ptrs) RemoveFromDomain(b);
    files_.erase(id);
  }
  user_files_.erase(it);
  return Status::OK();
}

Status VolatileAgent::FlushAll() {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  for (auto& [id, of] : files_) {
    if (of->file.dirty) STEGHIDE_RETURN_IF_ERROR(Flush(id));
  }
  return Status::OK();
}

Result<FileAccessKey> VolatileAgent::GetFak(FileId id) const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  STEGHIDE_ASSIGN_OR_RETURN(const OpenFile* of, Lookup(id));
  return of->file.fak;
}

Result<const HiddenFile*> VolatileAgent::InspectFile(FileId id) const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  STEGHIDE_ASSIGN_OR_RETURN(const OpenFile* of, Lookup(id));
  return &of->file;
}

Result<uint64_t> VolatileAgent::FileSize(FileId id) const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  STEGHIDE_ASSIGN_OR_RETURN(const OpenFile* of, Lookup(id));
  return of->file.file_size;
}

Status VolatileAgent::IdleDummyUpdates(uint64_t count) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  for (uint64_t i = 0; i < count; ++i) {
    STEGHIDE_RETURN_IF_ERROR(engine_.DummyUpdate());
  }
  return Status::OK();
}

}  // namespace steghide::agent
