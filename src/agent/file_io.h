#ifndef STEGHIDE_AGENT_FILE_IO_H_
#define STEGHIDE_AGENT_FILE_IO_H_

#include "agent/update_engine.h"
#include "stegfs/stegfs_core.h"
#include "util/result.h"

namespace steghide::agent {

/// Byte-granularity read over a hidden file's block map. Reads past
/// file_size are truncated; a read entirely past the end returns an empty
/// buffer.
Result<Bytes> ReadBytes(stegfs::StegFsCore& core,
                        const stegfs::HiddenFile& file, uint64_t offset,
                        size_t n);

/// Byte-granularity write. Blocks already backing the range are updated
/// through the engine (Figure-6 relocation); blocks past the current end
/// are appended through the engine's claim loop. Gaps between the old end
/// and `offset` are zero-filled. Extends file_size as needed and marks the
/// file dirty.
Status WriteBytes(stegfs::StegFsCore& core, UpdateEngine& engine,
                  stegfs::HiddenFile& file, uint64_t offset,
                  const uint8_t* data, size_t n);

/// Shrinks `file` to `new_size` bytes, returning the released physical
/// blocks in `released` (the caller — the agent — re-registers them as
/// dummies). Growth is not supported here; use WriteBytes.
Status TruncateBytes(stegfs::StegFsCore& core, stegfs::HiddenFile& file,
                     uint64_t new_size, std::vector<uint64_t>* released);

}  // namespace steghide::agent

#endif  // STEGHIDE_AGENT_FILE_IO_H_
