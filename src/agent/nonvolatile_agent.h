#ifndef STEGHIDE_AGENT_NONVOLATILE_AGENT_H_
#define STEGHIDE_AGENT_NONVOLATILE_AGENT_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>

#include "agent/update_engine.h"
#include "stegfs/bitmap.h"
#include "stegfs/stegfs_core.h"
#include "util/result.h"

namespace steghide::agent {

/// Construction 1 (§4.1) — the non-volatile agent, "StegHide*" in the
/// paper's evaluation.
///
/// The agent persistently holds two secrets: the FAK of the (virtual)
/// dummy file that owns every abandoned block, and the single secret key
/// under which every storage block is encrypted. We realise the first as a
/// data-vs-dummy bitmap (the membership of the paper's dummy file, which
/// is exactly what a non-volatile agent would persist) and the second as
/// `agent_key`.
///
/// The selection domain of the update algorithm is the entire volume, so
/// data updates are uniform over all N blocks and the scheme is perfectly
/// secure against update analysis (§4.1.4).
///
/// Thread safety: as for VolatileAgent, one internal recursive mutex
/// serializes every public operation (file ops, update-engine callbacks,
/// bitmap persistence), so real threads may share the agent; aggregation
/// for throughput happens in the RequestDispatcher above.
class NonVolatileAgent : public BlockRegistry {
 public:
  struct Options {
    /// The agent's persistent block-encryption key (16/24/32 bytes). If
    /// empty, a random key is drawn from the core's DRBG.
    Bytes agent_key;
  };

  /// Handle for an open file.
  using FileId = uint64_t;

  /// `core` must outlive the agent and must be freshly formatted, unless
  /// RestoreBitmap() is used to resume an existing volume.
  NonVolatileAgent(stegfs::StegFsCore* core, const Options& options);

  // ---- File operations -------------------------------------------------

  /// Creates an empty hidden file at a fresh random header location and
  /// returns its handle. The credential for re-opening later is GetFak().
  Result<FileId> CreateFile();

  /// Opens the file whose header sits at fak.header_location.
  Result<FileId> OpenFile(const stegfs::FileAccessKey& fak);

  /// Flushes (if dirty) and forgets the handle.
  Status CloseFile(FileId id);

  Result<Bytes> Read(FileId id, uint64_t offset, size_t n);
  Status Write(FileId id, uint64_t offset, const uint8_t* data, size_t n);
  Status Write(FileId id, uint64_t offset, const Bytes& data) {
    return Write(id, offset, data.data(), data.size());
  }

  /// Shrinks the file; released blocks rejoin the dummy pool.
  Status Truncate(FileId id, uint64_t new_size);

  /// Writes the header tree. Indirect blocks are relocated to fresh
  /// uniformly random positions on every flush, so tree writes follow the
  /// same distribution as data writes; only the header block itself is
  /// rewritten in place (its location must stay derivable from the FAK).
  Status Flush(FileId id);

  /// Releases every block of the file back to the dummy pool and scrubs
  /// the header block with fresh randomness.
  Status DeleteFile(FileId id);

  /// The credential to reopen this file later.
  Result<stegfs::FileAccessKey> GetFak(FileId id) const;

  Result<uint64_t> FileSize(FileId id) const;

  /// Issues `count` idle-time dummy updates (§4.1.3).
  Status IdleDummyUpdates(uint64_t count);

  // ---- Introspection ---------------------------------------------------

  double utilization() const {
    std::lock_guard<std::recursive_mutex> lock(mu_);
    return bitmap_.utilization();
  }
  /// Snapshot of the data/dummy bitmap (copied under the lock; the live
  /// bitmap mutates under concurrent Write/Flush via engine callbacks).
  stegfs::BlockBitmap bitmap() const {
    std::lock_guard<std::recursive_mutex> lock(mu_);
    return bitmap_;
  }
  /// Snapshot of the update-engine counters (copied under the lock).
  UpdateStats update_stats() const {
    std::lock_guard<std::recursive_mutex> lock(mu_);
    return engine_.stats();
  }
  void ResetUpdateStats() {
    std::lock_guard<std::recursive_mutex> lock(mu_);
    engine_.ResetStats();
  }
  stegfs::StegFsCore& core() { return *core_; }

  /// Persistence of the agent's non-volatile secret state (the bitmap).
  /// Callers encrypt the serialization under the agent key before writing
  /// it to an untrusted medium.
  Bytes SerializeBitmap() const {
    std::lock_guard<std::recursive_mutex> lock(mu_);
    return bitmap_.Serialize();
  }
  Status RestoreBitmap(const Bytes& data);

  // ---- BlockRegistry ---------------------------------------------------

  uint64_t DomainSize() const override { return core_->num_blocks(); }
  uint64_t DomainBlock(uint64_t index) const override { return index; }
  bool IsDummy(uint64_t physical) const override {
    std::lock_guard<std::recursive_mutex> lock(mu_);
    return bitmap_.IsDummy(physical);
  }
  Status DummyUpdate(uint64_t physical) override;
  void OnRelocate(stegfs::HiddenFile& file, uint64_t logical, uint64_t from,
                  uint64_t to) override;
  void OnClaim(stegfs::HiddenFile& file, uint64_t physical) override;
  void OnClaimTree(stegfs::HiddenFile& file, uint64_t physical) override;

 private:
  Result<stegfs::HiddenFile*> Lookup(FileId id);
  Result<const stegfs::HiddenFile*> Lookup(FileId id) const;

  /// Serializes public operations; recursive for the engine-callback
  /// re-entry during Write/Flush.
  mutable std::recursive_mutex mu_;
  stegfs::StegFsCore* core_;
  Bytes agent_key_;
  stegfs::BlockBitmap bitmap_;
  UpdateEngine engine_;
  std::map<FileId, std::unique_ptr<stegfs::HiddenFile>> open_files_;
  FileId next_id_ = 1;
  /// DummyUpdate staging reused across calls (guarded by mu_): the block
  /// image and the codec's transient refresh plaintext — the §4.1.3 hot
  /// loop allocates nothing per update.
  Bytes dummy_block_scratch_;
  Bytes refresh_scratch_;
};

}  // namespace steghide::agent

#endif  // STEGHIDE_AGENT_NONVOLATILE_AGENT_H_
