#include "util/histogram.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <sstream>

namespace steghide {

void Histogram::Add(double v) {
  samples_.push_back(v);
  sum_ += v;
  sorted_valid_ = false;
}

double Histogram::mean() const {
  if (samples_.empty()) return 0.0;
  return sum_ / static_cast<double>(samples_.size());
}

double Histogram::min() const {
  if (samples_.empty()) return 0.0;
  return *std::min_element(samples_.begin(), samples_.end());
}

double Histogram::max() const {
  if (samples_.empty()) return 0.0;
  return *std::max_element(samples_.begin(), samples_.end());
}

double Histogram::stddev() const {
  if (samples_.size() < 2) return 0.0;
  const double m = mean();
  double acc = 0.0;
  for (double v : samples_) acc += (v - m) * (v - m);
  return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
}

void Histogram::EnsureSorted() const {
  if (sorted_valid_) return;
  sorted_ = samples_;
  std::sort(sorted_.begin(), sorted_.end());
  sorted_valid_ = true;
}

double Histogram::percentile(double q) const {
  if (samples_.empty()) return 0.0;
  EnsureSorted();
  if (q <= 0.0) return sorted_.front();
  if (q >= 100.0) return sorted_.back();
  const double rank = q / 100.0 * static_cast<double>(sorted_.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= sorted_.size()) return sorted_.back();
  return sorted_[lo] * (1.0 - frac) + sorted_[lo + 1] * frac;
}

void Histogram::Clear() {
  samples_.clear();
  sorted_.clear();
  sorted_valid_ = false;
  sum_ = 0.0;
}

std::string Histogram::ToString() const {
  std::ostringstream os;
  os << "n=" << count() << " mean=" << mean() << " min=" << min()
     << " p50=" << percentile(50) << " p99=" << percentile(99)
     << " max=" << max();
  return os.str();
}

uint64_t CountHistogram::total() const {
  return std::accumulate(counts_.begin(), counts_.end(), uint64_t{0});
}

}  // namespace steghide
