#ifndef STEGHIDE_UTIL_HISTOGRAM_H_
#define STEGHIDE_UTIL_HISTOGRAM_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace steghide {

/// Accumulates scalar samples (latencies, iteration counts, ...) and
/// reports summary statistics. Stores all samples, which is fine at
/// experiment scale (<= a few million values).
class Histogram {
 public:
  void Add(double v);

  size_t count() const { return samples_.size(); }
  double sum() const { return sum_; }
  double mean() const;
  double min() const;
  double max() const;
  /// Sample standard deviation (n-1 denominator); 0 for fewer than 2
  /// samples.
  double stddev() const;
  /// Linear-interpolated percentile, q in [0,100].
  double percentile(double q) const;
  double median() const { return percentile(50.0); }

  void Clear();

  /// One-line summary, e.g. "n=100 mean=1.23 p50=1.1 p99=4.5".
  std::string ToString() const;

 private:
  void EnsureSorted() const;

  std::vector<double> samples_;
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
  double sum_ = 0.0;
};

/// Counts occurrences over a fixed number of integer-labeled bins; the
/// analysis module feeds these into the chi-square uniformity test.
class CountHistogram {
 public:
  explicit CountHistogram(size_t num_bins) : counts_(num_bins, 0) {}

  void Add(size_t bin) { counts_.at(bin)++; }
  uint64_t count(size_t bin) const { return counts_.at(bin); }
  size_t num_bins() const { return counts_.size(); }
  uint64_t total() const;
  const std::vector<uint64_t>& counts() const { return counts_; }

 private:
  std::vector<uint64_t> counts_;
};

}  // namespace steghide

#endif  // STEGHIDE_UTIL_HISTOGRAM_H_
