#ifndef STEGHIDE_UTIL_BYTES_H_
#define STEGHIDE_UTIL_BYTES_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

namespace steghide {

using Bytes = std::vector<uint8_t>;

/// Lowercase hex encoding of `data`.
std::string ToHex(const uint8_t* data, size_t n);
std::string ToHex(const Bytes& data);

/// Parses lowercase/uppercase hex into bytes. Returns empty vector on
/// malformed input (odd length or non-hex character).
Bytes FromHex(std::string_view hex);

/// Constant-time equality; returns false on length mismatch without
/// shortcutting the comparison of the common prefix.
bool ConstantTimeEqual(const uint8_t* a, const uint8_t* b, size_t n);
bool ConstantTimeEqual(const Bytes& a, const Bytes& b);

/// Big-endian encode/decode of fixed-width integers (used by crypto and the
/// on-disk formats, which are defined big-endian for readability in hex
/// dumps).
void StoreBigEndian32(uint8_t* out, uint32_t v);
void StoreBigEndian64(uint8_t* out, uint64_t v);
uint32_t LoadBigEndian32(const uint8_t* in);
uint64_t LoadBigEndian64(const uint8_t* in);

/// XORs `n` bytes of `src` into `dst`.
void XorBytes(uint8_t* dst, const uint8_t* src, size_t n);

}  // namespace steghide

#endif  // STEGHIDE_UTIL_BYTES_H_
