#ifndef STEGHIDE_UTIL_STATUS_H_
#define STEGHIDE_UTIL_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace steghide {

/// Error categories used across the library. Modeled after the
/// RocksDB/Arrow convention: functions that can fail return a Status (or a
/// Result<T>, see result.h) instead of throwing.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kNoSpace,
  kCorruption,
  kPermissionDenied,
  kFailedPrecondition,
  kIoError,
  kUnimplemented,
  kInternal,
  kDeadlineExceeded,
};

/// Returns a human-readable name for `code` (e.g. "InvalidArgument").
std::string_view StatusCodeToString(StatusCode code);

/// A cheap value type describing the outcome of an operation.
///
/// The OK status carries no allocation; error statuses carry a code and a
/// message. Statuses are copyable and movable.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NoSpace(std::string msg) {
    return Status(StatusCode::kNoSpace, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status PermissionDenied(std::string msg) {
    return Status(StatusCode::kPermissionDenied, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsNoSpace() const { return code_ == StatusCode::kNoSpace; }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsPermissionDenied() const {
    return code_ == StatusCode::kPermissionDenied;
  }
  bool IsDeadlineExceeded() const {
    return code_ == StatusCode::kDeadlineExceeded;
  }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Propagates a non-OK status to the caller.
#define STEGHIDE_RETURN_IF_ERROR(expr)             \
  do {                                             \
    ::steghide::Status _st = (expr);               \
    if (!_st.ok()) return _st;                     \
  } while (0)

}  // namespace steghide

#endif  // STEGHIDE_UTIL_STATUS_H_
