#include "util/random.h"

#include <cassert>

namespace steghide {

namespace {

// SplitMix64, used to expand the single seed into xoshiro state.
uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(sm);
  // All-zero state is invalid for xoshiro; SplitMix64 cannot produce four
  // zeros from any seed, but guard anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::Uniform(uint64_t bound) {
  assert(bound > 0);
  // Rejection sampling: draw until the value falls in the largest multiple
  // of `bound` that fits in 64 bits.
  const uint64_t threshold = -bound % bound;  // (2^64 - bound) mod bound
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

uint64_t Rng::UniformRange(uint64_t lo, uint64_t hi) {
  assert(lo <= hi);
  return lo + Uniform(hi - lo + 1);
}

double Rng::NextDouble() {
  // 53 high bits -> [0,1) double.
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

void Rng::Fill(uint8_t* out, size_t n) {
  size_t i = 0;
  while (i + 8 <= n) {
    uint64_t r = Next();
    for (int b = 0; b < 8; ++b) out[i++] = static_cast<uint8_t>(r >> (8 * b));
  }
  if (i < n) {
    uint64_t r = Next();
    while (i < n) {
      out[i++] = static_cast<uint8_t>(r);
      r >>= 8;
    }
  }
}

}  // namespace steghide
