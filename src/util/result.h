#ifndef STEGHIDE_UTIL_RESULT_H_
#define STEGHIDE_UTIL_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "util/status.h"

namespace steghide {

/// Either a value of type T or an error Status. Analogous to
/// absl::StatusOr / arrow::Result.
///
/// Usage:
///   Result<FileHandle> r = fs.Open(key);
///   if (!r.ok()) return r.status();
///   FileHandle h = std::move(r).value();
template <typename T>
class Result {
 public:
  /// Constructs a Result holding a value.
  Result(T value) : value_(std::move(value)) {}  // NOLINT: implicit by design

  /// Constructs a Result holding an error. `status` must not be OK.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the contained value or `fallback` if this holds an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;  // OK iff value_ engaged
  std::optional<T> value_;
};

/// Assigns the value of a Result expression to `lhs`, or returns its error.
#define STEGHIDE_ASSIGN_OR_RETURN(lhs, expr)                    \
  auto STEGHIDE_CONCAT_(_res_, __LINE__) = (expr);              \
  if (!STEGHIDE_CONCAT_(_res_, __LINE__).ok())                  \
    return STEGHIDE_CONCAT_(_res_, __LINE__).status();          \
  lhs = std::move(STEGHIDE_CONCAT_(_res_, __LINE__)).value()

#define STEGHIDE_CONCAT_(a, b) STEGHIDE_CONCAT_IMPL_(a, b)
#define STEGHIDE_CONCAT_IMPL_(a, b) a##b

}  // namespace steghide

#endif  // STEGHIDE_UTIL_RESULT_H_
