#include "util/bytes.h"

namespace steghide {

namespace {
constexpr char kHexDigits[] = "0123456789abcdef";

int HexValue(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}
}  // namespace

std::string ToHex(const uint8_t* data, size_t n) {
  std::string out;
  out.reserve(2 * n);
  for (size_t i = 0; i < n; ++i) {
    out.push_back(kHexDigits[data[i] >> 4]);
    out.push_back(kHexDigits[data[i] & 0x0f]);
  }
  return out;
}

std::string ToHex(const Bytes& data) { return ToHex(data.data(), data.size()); }

Bytes FromHex(std::string_view hex) {
  if (hex.size() % 2 != 0) return {};
  Bytes out;
  out.reserve(hex.size() / 2);
  for (size_t i = 0; i < hex.size(); i += 2) {
    int hi = HexValue(hex[i]);
    int lo = HexValue(hex[i + 1]);
    if (hi < 0 || lo < 0) return {};
    out.push_back(static_cast<uint8_t>((hi << 4) | lo));
  }
  return out;
}

bool ConstantTimeEqual(const uint8_t* a, const uint8_t* b, size_t n) {
  uint8_t acc = 0;
  for (size_t i = 0; i < n; ++i) acc |= static_cast<uint8_t>(a[i] ^ b[i]);
  return acc == 0;
}

bool ConstantTimeEqual(const Bytes& a, const Bytes& b) {
  if (a.size() != b.size()) {
    // Still touch the data to keep timing independent of content.
    uint8_t acc = 0;
    for (uint8_t v : a) acc |= v;
    (void)acc;
    return false;
  }
  return ConstantTimeEqual(a.data(), b.data(), a.size());
}

void StoreBigEndian32(uint8_t* out, uint32_t v) {
  out[0] = static_cast<uint8_t>(v >> 24);
  out[1] = static_cast<uint8_t>(v >> 16);
  out[2] = static_cast<uint8_t>(v >> 8);
  out[3] = static_cast<uint8_t>(v);
}

void StoreBigEndian64(uint8_t* out, uint64_t v) {
  StoreBigEndian32(out, static_cast<uint32_t>(v >> 32));
  StoreBigEndian32(out + 4, static_cast<uint32_t>(v));
}

uint32_t LoadBigEndian32(const uint8_t* in) {
  return (static_cast<uint32_t>(in[0]) << 24) |
         (static_cast<uint32_t>(in[1]) << 16) |
         (static_cast<uint32_t>(in[2]) << 8) | static_cast<uint32_t>(in[3]);
}

uint64_t LoadBigEndian64(const uint8_t* in) {
  return (static_cast<uint64_t>(LoadBigEndian32(in)) << 32) |
         LoadBigEndian32(in + 4);
}

void XorBytes(uint8_t* dst, const uint8_t* src, size_t n) {
  for (size_t i = 0; i < n; ++i) dst[i] ^= src[i];
}

}  // namespace steghide
