#ifndef STEGHIDE_UTIL_RANDOM_H_
#define STEGHIDE_UTIL_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace steghide {

/// Deterministic, fast, non-cryptographic PRNG (xoshiro256**), used for
/// workload generation and simulation decisions that do not carry security
/// weight. Security-relevant randomness (IVs, block selection in the update
/// engine, shuffle tags) comes from crypto::HashDrbg instead.
///
/// Every experiment takes an explicit seed so results reproduce
/// bit-for-bit.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, bound). `bound` must be > 0. Uses rejection
  /// sampling, so there is no modulo bias.
  uint64_t Uniform(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  uint64_t UniformRange(uint64_t lo, uint64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// True with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Fills `out` with random bytes.
  void Fill(uint8_t* out, size_t n);

  /// Fisher-Yates shuffle of `v`.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(Uniform(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

 private:
  uint64_t s_[4];
};

}  // namespace steghide

#endif  // STEGHIDE_UTIL_RANDOM_H_
