#include <gtest/gtest.h>

#include "agent/oblivious_agent.h"
#include "storage/mem_block_device.h"
#include "testing/rng.h"
#include "util/random.h"

namespace steghide::agent {
namespace {

class ObliviousAgentTest : public ::testing::Test {
 protected:
  ObliviousAgentTest()
      : steg_mem_(4096, 4096),
        cache_mem_(512, 4096),
        core_(&steg_mem_, stegfs::StegFsOptions{91, true}) {
    EXPECT_TRUE(core_.Format().ok());
    oblivious::ObliviousStoreOptions opts;
    opts.buffer_blocks = 8;
    opts.capacity_blocks = 128;  // k = 4
    opts.partition_base = 0;
    opts.scratch_base = 2 * 128 - 2 * 8;
    auto agent = ObliviousAgent::Create(&core_, &cache_mem_, opts);
    EXPECT_TRUE(agent.ok()) << agent.status().ToString();
    agent_ = std::move(agent).value();
    EXPECT_TRUE(agent_->CreateDummyFile("u", 400).ok());
  }

  Bytes Pattern(size_t n, uint8_t seed) {
    Bytes out(n);
    for (size_t i = 0; i < n; ++i) out[i] = static_cast<uint8_t>(seed + i * 3);
    return out;
  }

  storage::MemBlockDevice steg_mem_;
  storage::MemBlockDevice cache_mem_;
  stegfs::StegFsCore core_;
  std::unique_ptr<ObliviousAgent> agent_;
};

TEST_F(ObliviousAgentTest, WriteThenObliviousReadRoundTrip) {
  auto id = agent_->CreateHiddenFile("u");
  ASSERT_TRUE(id.ok());
  const Bytes data = Pattern(30000, 5);
  ASSERT_TRUE(agent_->Write(*id, 0, data).ok());
  const auto back = agent_->Read(*id, 0, data.size());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, data);
}

TEST_F(ObliviousAgentTest, RepeatedReadsComeFromCache) {
  auto id = agent_->CreateHiddenFile("u");
  ASSERT_TRUE(id.ok());
  const size_t payload = core_.payload_size();
  ASSERT_TRUE(agent_->Write(*id, 0, Pattern(payload * 4, 1)).ok());

  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(agent_->Read(*id, 0, payload * 4).ok());
  }
  // §5.1.1: each block is fetched from the partition at most once.
  EXPECT_LE(agent_->reader().stats().real_fetches, 4u);
}

TEST_F(ObliviousAgentTest, WriteAfterReadIsVisibleObliviously) {
  auto id = agent_->CreateHiddenFile("u");
  ASSERT_TRUE(id.ok());
  const size_t payload = core_.payload_size();
  ASSERT_TRUE(agent_->Write(*id, 0, Bytes(payload * 3, 0x11)).ok());
  // Prime the cache.
  ASSERT_TRUE(agent_->Read(*id, 0, payload * 3).ok());

  // Overwrite the middle block, then read through the cache again.
  ASSERT_TRUE(agent_->Write(*id, payload, Bytes(payload, 0x22)).ok());
  const auto back = agent_->Read(*id, 0, payload * 3);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(Bytes(back->begin(), back->begin() + payload),
            Bytes(payload, 0x11));
  EXPECT_EQ(Bytes(back->begin() + payload, back->begin() + 2 * payload),
            Bytes(payload, 0x22));
  EXPECT_EQ(Bytes(back->begin() + 2 * payload, back->end()),
            Bytes(payload, 0x11));
}

TEST_F(ObliviousAgentTest, PartialWritesPreserveSurroundings) {
  auto id = agent_->CreateHiddenFile("u");
  ASSERT_TRUE(id.ok());
  const Bytes data = Pattern(10000, 9);
  ASSERT_TRUE(agent_->Write(*id, 0, data).ok());
  ASSERT_TRUE(agent_->Read(*id, 0, data.size()).ok());  // prime cache

  ASSERT_TRUE(agent_->Write(*id, 5000, Bytes(100, 0xee)).ok());
  const auto back = agent_->Read(*id, 4990, 120);
  ASSERT_TRUE(back.ok());
  for (int i = 0; i < 10; ++i) EXPECT_EQ((*back)[i], data[4990 + i]);
  for (int i = 10; i < 110; ++i) EXPECT_EQ((*back)[i], 0xee);
  for (int i = 110; i < 120; ++i) EXPECT_EQ((*back)[i], data[5100 + i - 110]);
  EXPECT_EQ(*agent_->FileSize(*id), data.size());  // no accidental growth
}

TEST_F(ObliviousAgentTest, WritesArePersistedOnStegPartition) {
  auto id = agent_->CreateHiddenFile("u");
  ASSERT_TRUE(id.ok());
  const Bytes data = Pattern(20000, 13);
  ASSERT_TRUE(agent_->Write(*id, 0, data).ok());
  ASSERT_TRUE(agent_->Read(*id, 0, 1).ok());  // cache holds block 0
  ASSERT_TRUE(agent_->Write(*id, 0, Bytes(10, 0x77)).ok());
  ASSERT_TRUE(agent_->Flush(*id).ok());
  const auto fak = agent_->GetFak(*id);
  ASSERT_TRUE(agent_->Logout("u").ok());

  // The cache dies with the agent (it is volatile memory + a shuffled
  // scratch area); the StegFS partition alone must carry the truth.
  auto re = agent_->DiscloseHiddenFile("u", *fak);
  ASSERT_TRUE(re.ok());
  const auto back = agent_->volatile_agent().Read(*re, 0, 10);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, Bytes(10, 0x77));
}

TEST_F(ObliviousAgentTest, SoakMixedOpsWithMirror) {
  auto id = agent_->CreateHiddenFile("u");
  ASSERT_TRUE(id.ok());
  const size_t payload = core_.payload_size();
  constexpr uint64_t kBlocks = 20;
  std::vector<Bytes> mirror(kBlocks, Bytes(payload, 0));
  ASSERT_TRUE(agent_->Write(*id, 0, Bytes(kBlocks * payload, 0)).ok());

  Rng rng = testing::MakeTestRng();
  for (int op = 0; op < 300; ++op) {
    const uint64_t b = rng.Uniform(kBlocks);
    if (rng.Bernoulli(0.4)) {
      Bytes fresh(payload);
      rng.Fill(fresh.data(), fresh.size());
      ASSERT_TRUE(agent_->Write(*id, b * payload, fresh).ok());
      mirror[b] = fresh;
    } else {
      const auto got = agent_->Read(*id, b * payload, payload);
      ASSERT_TRUE(got.ok());
      ASSERT_EQ(*got, mirror[b]) << "op " << op << " block " << b;
    }
    if (op % 25 == 0) ASSERT_TRUE(agent_->IdleDummyOp().ok());
  }
}

TEST_F(ObliviousAgentTest, GeometryErrorsSurfaceAtCreate) {
  oblivious::ObliviousStoreOptions bad;
  bad.buffer_blocks = 8;
  bad.capacity_blocks = 24;  // not B * 2^k
  EXPECT_FALSE(ObliviousAgent::Create(&core_, &cache_mem_, bad).ok());
}

}  // namespace
}  // namespace steghide::agent
