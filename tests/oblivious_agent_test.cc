#include <gtest/gtest.h>

#include "agent/oblivious_agent.h"
#include "storage/mem_block_device.h"
#include "testing/rng.h"
#include "util/random.h"

namespace steghide::agent {
namespace {

class ObliviousAgentTest : public ::testing::Test {
 protected:
  ObliviousAgentTest()
      : steg_mem_(4096, 4096),
        cache_mem_(512, 4096),
        core_(&steg_mem_, stegfs::StegFsOptions{91, true}) {
    EXPECT_TRUE(core_.Format().ok());
    oblivious::ObliviousStoreOptions opts;
    opts.buffer_blocks = 8;
    opts.capacity_blocks = 128;  // k = 4
    opts.partition_base = 0;
    opts.scratch_base = 2 * 128 - 2 * 8;
    auto agent = ObliviousAgent::Create(&core_, &cache_mem_, opts);
    EXPECT_TRUE(agent.ok()) << agent.status().ToString();
    agent_ = std::move(agent).value();
    EXPECT_TRUE(agent_->CreateDummyFile("u", 400).ok());
  }

  Bytes Pattern(size_t n, uint8_t seed) {
    Bytes out(n);
    for (size_t i = 0; i < n; ++i) out[i] = static_cast<uint8_t>(seed + i * 3);
    return out;
  }

  storage::MemBlockDevice steg_mem_;
  storage::MemBlockDevice cache_mem_;
  stegfs::StegFsCore core_;
  std::unique_ptr<ObliviousAgent> agent_;
};

TEST_F(ObliviousAgentTest, WriteThenObliviousReadRoundTrip) {
  auto id = agent_->CreateHiddenFile("u");
  ASSERT_TRUE(id.ok());
  const Bytes data = Pattern(30000, 5);
  ASSERT_TRUE(agent_->Write(*id, 0, data).ok());
  const auto back = agent_->Read(*id, 0, data.size());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, data);
}

TEST_F(ObliviousAgentTest, RepeatedReadsComeFromCache) {
  auto id = agent_->CreateHiddenFile("u");
  ASSERT_TRUE(id.ok());
  const size_t payload = core_.payload_size();
  ASSERT_TRUE(agent_->Write(*id, 0, Pattern(payload * 4, 1)).ok());

  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(agent_->Read(*id, 0, payload * 4).ok());
  }
  // §5.1.1: each block is fetched from the partition at most once.
  EXPECT_LE(agent_->reader().stats().real_fetches, 4u);
}

TEST_F(ObliviousAgentTest, WriteAfterReadIsVisibleObliviously) {
  auto id = agent_->CreateHiddenFile("u");
  ASSERT_TRUE(id.ok());
  const size_t payload = core_.payload_size();
  ASSERT_TRUE(agent_->Write(*id, 0, Bytes(payload * 3, 0x11)).ok());
  // Prime the cache.
  ASSERT_TRUE(agent_->Read(*id, 0, payload * 3).ok());

  // Overwrite the middle block, then read through the cache again.
  ASSERT_TRUE(agent_->Write(*id, payload, Bytes(payload, 0x22)).ok());
  const auto back = agent_->Read(*id, 0, payload * 3);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(Bytes(back->begin(), back->begin() + payload),
            Bytes(payload, 0x11));
  EXPECT_EQ(Bytes(back->begin() + payload, back->begin() + 2 * payload),
            Bytes(payload, 0x22));
  EXPECT_EQ(Bytes(back->begin() + 2 * payload, back->end()),
            Bytes(payload, 0x11));
}

TEST_F(ObliviousAgentTest, PartialWritesPreserveSurroundings) {
  auto id = agent_->CreateHiddenFile("u");
  ASSERT_TRUE(id.ok());
  const Bytes data = Pattern(10000, 9);
  ASSERT_TRUE(agent_->Write(*id, 0, data).ok());
  ASSERT_TRUE(agent_->Read(*id, 0, data.size()).ok());  // prime cache

  ASSERT_TRUE(agent_->Write(*id, 5000, Bytes(100, 0xee)).ok());
  const auto back = agent_->Read(*id, 4990, 120);
  ASSERT_TRUE(back.ok());
  for (int i = 0; i < 10; ++i) EXPECT_EQ((*back)[i], data[4990 + i]);
  for (int i = 10; i < 110; ++i) EXPECT_EQ((*back)[i], 0xee);
  for (int i = 110; i < 120; ++i) EXPECT_EQ((*back)[i], data[5100 + i - 110]);
  EXPECT_EQ(*agent_->FileSize(*id), data.size());  // no accidental growth
}

TEST_F(ObliviousAgentTest, WritesArePersistedOnStegPartition) {
  auto id = agent_->CreateHiddenFile("u");
  ASSERT_TRUE(id.ok());
  const Bytes data = Pattern(20000, 13);
  ASSERT_TRUE(agent_->Write(*id, 0, data).ok());
  ASSERT_TRUE(agent_->Read(*id, 0, 1).ok());  // cache holds block 0
  ASSERT_TRUE(agent_->Write(*id, 0, Bytes(10, 0x77)).ok());
  ASSERT_TRUE(agent_->Flush(*id).ok());
  const auto fak = agent_->GetFak(*id);
  ASSERT_TRUE(agent_->Logout("u").ok());

  // The cache dies with the agent (it is volatile memory + a shuffled
  // scratch area); the StegFS partition alone must carry the truth.
  auto re = agent_->DiscloseHiddenFile("u", *fak);
  ASSERT_TRUE(re.ok());
  const auto back = agent_->volatile_agent().Read(*re, 0, 10);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, Bytes(10, 0x77));
}

TEST_F(ObliviousAgentTest, SoakMixedOpsWithMirror) {
  auto id = agent_->CreateHiddenFile("u");
  ASSERT_TRUE(id.ok());
  const size_t payload = core_.payload_size();
  constexpr uint64_t kBlocks = 20;
  std::vector<Bytes> mirror(kBlocks, Bytes(payload, 0));
  ASSERT_TRUE(agent_->Write(*id, 0, Bytes(kBlocks * payload, 0)).ok());

  Rng rng = testing::MakeTestRng();
  for (int op = 0; op < 300; ++op) {
    const uint64_t b = rng.Uniform(kBlocks);
    if (rng.Bernoulli(0.4)) {
      Bytes fresh(payload);
      rng.Fill(fresh.data(), fresh.size());
      ASSERT_TRUE(agent_->Write(*id, b * payload, fresh).ok());
      mirror[b] = fresh;
    } else {
      const auto got = agent_->Read(*id, b * payload, payload);
      ASSERT_TRUE(got.ok());
      ASSERT_EQ(*got, mirror[b]) << "op " << op << " block " << b;
    }
    if (op % 25 == 0) ASSERT_TRUE(agent_->IdleDummyOp().ok());
  }
}

TEST_F(ObliviousAgentTest, ReadBatchServesMultipleRanges) {
  auto id = agent_->CreateHiddenFile("u");
  ASSERT_TRUE(id.ok());
  const Bytes data = Pattern(40000, 3);
  ASSERT_TRUE(agent_->Write(*id, 0, data).ok());

  const std::vector<ObliviousAgent::ByteRange> ranges = {
      {100, 500}, {19000, 2500}, {100, 500}, {39990, 100}};
  auto out = agent_->ReadBatch(*id, ranges);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ASSERT_EQ(out->size(), ranges.size());
  EXPECT_EQ((*out)[0], Bytes(data.begin() + 100, data.begin() + 600));
  EXPECT_EQ((*out)[1], Bytes(data.begin() + 19000, data.begin() + 21500));
  EXPECT_EQ((*out)[2], (*out)[0]);
  EXPECT_EQ((*out)[3], Bytes(data.begin() + 39990, data.end()));  // clamped
}

TEST_F(ObliviousAgentTest, ReadBatchGroupsObliviousScans) {
  auto id = agent_->CreateHiddenFile("u");
  ASSERT_TRUE(id.ok());
  const size_t payload = core_.payload_size();
  ASSERT_TRUE(agent_->Write(*id, 0, Pattern(payload * 12, 5)).ok());
  // Prime the cache, then drain the agent buffer's view with more reads
  // so the batch below actually scans levels.
  ASSERT_TRUE(agent_->Read(*id, 0, payload * 12).ok());

  agent_->store().ResetStats();
  std::vector<ObliviousAgent::ByteRange> ranges;
  for (uint64_t b = 0; b < 12; ++b) ranges.push_back({b * payload, payload});
  auto out = agent_->ReadBatch(*id, ranges);
  ASSERT_TRUE(out.ok());
  // 12 cached blocks with an 8-block store buffer: at most 2 scan passes
  // (the one-at-a-time path would pay up to 12).
  EXPECT_LE(agent_->store().stats().scan_passes, 2u);
}

TEST_F(ObliviousAgentTest, WriteBatchAppliesOpsInOrder) {
  auto id = agent_->CreateHiddenFile("u");
  ASSERT_TRUE(id.ok());
  const Bytes base = Pattern(20000, 7);
  ASSERT_TRUE(agent_->Write(*id, 0, base).ok());
  ASSERT_TRUE(agent_->Read(*id, 0, base.size()).ok());  // prime cache

  std::vector<ObliviousAgent::WriteOp> ops(3);
  ops[0].offset = 1000;
  ops[0].data = Bytes(3000, 0x11);
  ops[1].offset = 2500;
  ops[1].data = Bytes(200, 0x22);  // overlaps op 0; must win
  ops[2].offset = 19990;
  ops[2].data = Bytes(120, 0x33);  // grows the file by 110 bytes
  ASSERT_TRUE(agent_->WriteBatch(*id, ops).ok());

  const auto back = agent_->Read(*id, 0, 30000);
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->size(), 20110u);
  for (int i = 0; i < 1000; ++i) ASSERT_EQ((*back)[i], base[i]);
  for (int i = 1000; i < 2500; ++i) ASSERT_EQ((*back)[i], 0x11);
  for (int i = 2500; i < 2700; ++i) ASSERT_EQ((*back)[i], 0x22);
  for (int i = 2700; i < 4000; ++i) ASSERT_EQ((*back)[i], 0x11);
  for (int i = 4000; i < 19990; ++i) ASSERT_EQ((*back)[i], base[i]);
  for (int i = 19990; i < 20110; ++i) ASSERT_EQ((*back)[i], 0x33);
}

TEST_F(ObliviousAgentTest, BatchSoakMatchesMirrorProperty) {
  auto id = agent_->CreateHiddenFile("u");
  ASSERT_TRUE(id.ok());
  const size_t payload = core_.payload_size();
  constexpr uint64_t kBlocks = 16;
  std::vector<Bytes> mirror(kBlocks, Bytes(payload, 0));
  ASSERT_TRUE(agent_->Write(*id, 0, Bytes(kBlocks * payload, 0)).ok());

  Rng rng = testing::MakeTestRng();
  for (int round = 0; round < 60; ++round) {
    const size_t k = 1 + rng.Uniform(4);
    if (rng.Bernoulli(0.5)) {
      std::vector<ObliviousAgent::WriteOp> ops(k);
      for (size_t i = 0; i < k; ++i) {
        const uint64_t b = rng.Uniform(kBlocks);
        ops[i].offset = b * payload;
        ops[i].data.resize(payload);
        rng.Fill(ops[i].data.data(), payload);
        mirror[b] = ops[i].data;
      }
      ASSERT_TRUE(agent_->WriteBatch(*id, ops).ok()) << "round " << round;
    } else {
      std::vector<ObliviousAgent::ByteRange> ranges(k);
      std::vector<uint64_t> blocks(k);
      for (size_t i = 0; i < k; ++i) {
        blocks[i] = rng.Uniform(kBlocks);
        ranges[i] = {blocks[i] * payload, payload};
      }
      auto out = agent_->ReadBatch(*id, ranges);
      ASSERT_TRUE(out.ok()) << "round " << round;
      for (size_t i = 0; i < k; ++i) {
        ASSERT_EQ((*out)[i], mirror[blocks[i]])
            << "round " << round << " block " << blocks[i];
      }
    }
  }
}

TEST_F(ObliviousAgentTest, GeometryErrorsSurfaceAtCreate) {
  oblivious::ObliviousStoreOptions bad;
  bad.buffer_blocks = 8;
  bad.capacity_blocks = 24;  // not B * 2^k
  EXPECT_FALSE(ObliviousAgent::Create(&core_, &cache_mem_, bad).ok());
}

}  // namespace
}  // namespace steghide::agent
