// Remote-matrix suite for the block-RPC subsystem: wire framing
// round-trips and content-independent frame sizes, SocketTransport
// deadline semantics, the full BlockDevice contract of a
// RemoteBlockDevice over a loopback endpoint (in-band server errors,
// crash/restart reconnect-and-re-drive), and the scripted transport
// fault kinds (kDelayRpc, kDropConnection, kPartition) plus the
// delivered-frame log the RPC-stream distinguisher compares.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "storage/fault_device.h"
#include "storage/mem_block_device.h"
#include "storage/remote/block_server.h"
#include "storage/remote/remote_device.h"
#include "storage/remote/transport.h"
#include "storage/remote/wire.h"
#include "testing/golden.h"
#include "util/bytes.h"

namespace steghide::storage::remote {
namespace {

using steghide::testing::FillGolden;
using steghide::testing::GoldenBlock;

// ---- Wire format ---------------------------------------------------------

TEST(WireTest, HeaderRoundTrip) {
  uint8_t buf[kFrameHeaderSize];
  EncodeFrameHeader(FrameType::kWrite, 0x1122334455667788ULL, 4096, buf);
  FrameHeader h;
  ASSERT_TRUE(DecodeFrameHeader(buf, &h).ok());
  EXPECT_EQ(h.type, FrameType::kWrite);
  EXPECT_EQ(h.request_id, 0x1122334455667788ULL);
  EXPECT_EQ(h.payload_len, 4096u);
}

TEST(WireTest, HeaderRejectsCorruption) {
  uint8_t buf[kFrameHeaderSize];
  EncodeFrameHeader(FrameType::kRead, 7, 16, buf);
  FrameHeader h;

  uint8_t bad_magic[kFrameHeaderSize];
  std::copy(buf, buf + kFrameHeaderSize, bad_magic);
  bad_magic[0] ^= 0xff;
  EXPECT_EQ(DecodeFrameHeader(bad_magic, &h).code(), StatusCode::kCorruption);

  uint8_t bad_type[kFrameHeaderSize];
  std::copy(buf, buf + kFrameHeaderSize, bad_type);
  bad_type[4] = 0x7f;  // no such FrameType
  EXPECT_EQ(DecodeFrameHeader(bad_type, &h).code(), StatusCode::kCorruption);

  // A hostile header cannot make the receiver allocate unboundedly.
  EncodeFrameHeader(FrameType::kWrite, 7, kMaxFramePayload + 1, buf);
  EXPECT_EQ(DecodeFrameHeader(buf, &h).code(), StatusCode::kCorruption);
}

TEST(WireTest, RequestRoundTrips) {
  const std::vector<uint64_t> ids = {5, 0, 11};
  Bytes data(3 * 64);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<uint8_t>(i * 13);
  }
  const std::vector<uint8_t> frame = BuildWrite(42, ids, data.data(), 64);
  FrameHeader h;
  ASSERT_TRUE(DecodeFrameHeader(frame.data(), &h).ok());
  EXPECT_EQ(h.type, FrameType::kWrite);
  EXPECT_EQ(h.request_id, 42u);
  ASSERT_EQ(frame.size(), kFrameHeaderSize + h.payload_len);

  std::vector<uint64_t> got_ids;
  const uint8_t* got_data = nullptr;
  ASSERT_TRUE(ParseIds({frame.data() + kFrameHeaderSize, h.payload_len}, 64,
                       /*with_data=*/true, &got_ids, &got_data)
                  .ok());
  EXPECT_EQ(got_ids, ids);
  ASSERT_NE(got_data, nullptr);
  EXPECT_EQ(Bytes(got_data, got_data + data.size()), data);
}

TEST(WireTest, ReplyCarriesStatusAndData) {
  // An error travels with its code and message, no data.
  const std::vector<uint8_t> err =
      BuildReply(9, Status::IoError("spindle on fire"));
  FrameHeader h;
  ASSERT_TRUE(DecodeFrameHeader(err.data(), &h).ok());
  Status in_band;
  std::span<const uint8_t> data;
  ASSERT_TRUE(
      ParseReply({err.data() + kFrameHeaderSize, h.payload_len}, &in_band,
                 &data)
          .ok());
  EXPECT_EQ(in_band.code(), StatusCode::kIoError);
  EXPECT_TRUE(data.empty());

  // A successful read reply carries the blocks verbatim.
  const Bytes blocks(2 * 32, 0xd7);
  const std::vector<uint8_t> ok_reply =
      BuildReply(10, Status::OK(), blocks.data(), blocks.size());
  ASSERT_TRUE(DecodeFrameHeader(ok_reply.data(), &h).ok());
  ASSERT_TRUE(ParseReply({ok_reply.data() + kFrameHeaderSize, h.payload_len},
                         &in_band, &data)
                  .ok());
  EXPECT_TRUE(in_band.ok());
  EXPECT_EQ(Bytes(data.begin(), data.end()), blocks);
}

TEST(WireTest, FrameSizeDependsOnShapeNotContents) {
  // The oblivious-transport premise: two frames of the same (type,
  // count, block_size) are the same length regardless of ids or data.
  const std::vector<uint64_t> ids_a = {0, 1, 2};
  const std::vector<uint64_t> ids_b = {7, 93, 2048};
  const Bytes zeros(3 * 128, 0x00);
  const Bytes noise(3 * 128, 0xa5);
  EXPECT_EQ(BuildWrite(1, ids_a, zeros.data(), 128).size(),
            BuildWrite(2, ids_b, noise.data(), 128).size());
  EXPECT_EQ(BuildRead(3, ids_a).size(), BuildRead(4, ids_b).size());
  EXPECT_EQ(BuildReply(5, Status::OK(), zeros.data(), zeros.size()).size(),
            BuildReply(6, Status::OK(), noise.data(), noise.size()).size());
}

// ---- SocketTransport -----------------------------------------------------

TEST(SocketTransportTest, RoundTripAndDeadline) {
  std::unique_ptr<SocketTransport> a, b;
  ASSERT_TRUE(SocketTransport::MakePair(&a, &b).ok());

  const Bytes msg = {1, 2, 3, 4, 5};
  ASSERT_TRUE(a->Send(msg.data(), msg.size(), 1000.0).ok());
  Bytes got(msg.size());
  ASSERT_TRUE(b->Recv(got.data(), got.size(), 1000.0).ok());
  EXPECT_EQ(got, msg);

  // Nothing pending: a bounded Recv expires instead of hanging.
  EXPECT_EQ(b->Recv(got.data(), 1, 20.0).code(),
            StatusCode::kDeadlineExceeded);

  // Close wakes the peer with an I/O error, not a deadline.
  a->Close();
  EXPECT_EQ(b->Recv(got.data(), 1, 1000.0).code(), StatusCode::kIoError);
}

// ---- RemoteBlockDevice over a loopback endpoint --------------------------

struct LoopbackFixture {
  explicit LoopbackFixture(uint64_t blocks = 32, size_t block_size = 512,
                           FaultPlan server_faults = {},
                           RemoteDeviceOptions options = {
                               .rpc_deadline_ms = 5000.0,
                               .retry = {.max_attempts = 3,
                                         .backoff_ms = 1.0,
                                         .backoff_multiplier = 2.0}},
                           FaultPlan transport_faults = {})
      : mem(blocks, block_size),
        fault(&mem, std::move(server_faults)),
        controller(std::move(transport_faults)),
        endpoint(&fault) {
    endpoint.set_transport_wrapper([this](std::unique_ptr<Transport> t) {
      return controller.Wrap(std::move(t),
                             TransportFaultController::Side::kServer);
    });
    auto created = RemoteBlockDevice::Create(
        [this]() -> Result<std::unique_ptr<Transport>> {
          Result<std::unique_ptr<Transport>> conn = endpoint.Connect();
          if (!conn.ok()) return conn.status();
          return controller.Wrap(std::move(conn).value(),
                                 TransportFaultController::Side::kClient);
        },
        options);
    EXPECT_TRUE(created.ok()) << created.status().ToString();
    remote = std::move(created).value();
  }

  MemBlockDevice mem;
  FaultInjectionBlockDevice fault;
  // The controller outlives the endpoint: server-side wrappers queued
  // in the endpoint deregister from the controller on destruction.
  TransportFaultController controller;
  LoopbackEndpoint endpoint;
  std::unique_ptr<RemoteBlockDevice> remote;
};

TEST(RemoteDeviceTest, GeometryAndFullContractOverLoopback) {
  LoopbackFixture fx(32, 512);
  EXPECT_EQ(fx.remote->num_blocks(), 32u);
  EXPECT_EQ(fx.remote->block_size(), 512u);

  // Single-block, vectored, flush: the remote device is a drop-in
  // BlockDevice — the golden round-trip lands on the backing volume.
  ASSERT_TRUE(FillGolden(*fx.remote, 17).ok());
  EXPECT_TRUE(steghide::testing::DeviceMatchesGolden(fx.mem, 17));

  const std::vector<uint64_t> ids = {3, 9, 27};
  Bytes batch(3 * 512);
  for (size_t i = 0; i < ids.size(); ++i) {
    const Bytes block = GoldenBlock(99, ids[i], 512);
    std::copy(block.begin(), block.end(), batch.begin() + i * 512);
  }
  ASSERT_TRUE(fx.remote->WriteBlocks(ids, batch.data()).ok());
  Bytes back(3 * 512);
  ASSERT_TRUE(fx.remote->ReadBlocks(ids, back.data()).ok());
  EXPECT_EQ(back, batch);
  EXPECT_TRUE(fx.remote->Flush().ok());

  // Range errors are client-side: no RPC is burned on them.
  Bytes out(512);
  const uint64_t rpcs_before = fx.remote->stats().rpcs;
  EXPECT_EQ(fx.remote->ReadBlock(32, out.data()).code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(fx.remote->stats().rpcs, rpcs_before);
}

TEST(RemoteDeviceTest, ServerErrorsTravelInBandWithoutReconnect) {
  FaultPlan plan;
  FaultSpec spec;
  spec.kind = FaultSpec::Kind::kTransientError;
  spec.max_fires = 1;
  plan.faults.push_back(spec);
  LoopbackFixture fx(16, 512, std::move(plan));

  // The backing volume fails the op; the client sees exactly that
  // status, and the connection survives — no reconnect, no retry (the
  // transport never failed).
  Bytes out(512);
  EXPECT_EQ(fx.remote->ReadBlock(0, out.data()).code(), StatusCode::kIoError);
  ASSERT_TRUE(fx.remote->ReadBlock(0, out.data()).ok());
  const RemoteStats stats = fx.remote->stats();
  EXPECT_EQ(stats.reconnects, 0u);
  EXPECT_EQ(stats.rpc_retries, 0u);
  EXPECT_EQ(stats.timeouts, 0u);
}

TEST(RemoteDeviceTest, CrashSeversRestartRedrives) {
  LoopbackFixture fx(16, 512);
  ASSERT_TRUE(FillGolden(*fx.remote, 5).ok());

  // Crash with the connection up, restart immediately: the next RPC's
  // first attempt dies on the severed socket, the reconnect succeeds,
  // and the re-driven op completes — invisible to the caller.
  fx.endpoint.Crash();
  fx.endpoint.Restart();
  Bytes out(512);
  ASSERT_TRUE(fx.remote->ReadBlock(2, out.data()).ok());
  EXPECT_EQ(out, GoldenBlock(5, 2, 512));
  EXPECT_GE(fx.remote->stats().reconnects, 1u);
  EXPECT_GE(fx.remote->stats().rpc_retries, 1u);

  // Crash without restart: the retry budget exhausts and the failure
  // surfaces. Connect refusals fail fast, so no deadline is burned.
  fx.endpoint.Crash();
  EXPECT_FALSE(fx.remote->ReadBlock(2, out.data()).ok());
  EXPECT_FALSE(fx.remote->connected());

  // Restart: service resumes with the volume's durable state intact.
  fx.endpoint.Restart();
  ASSERT_TRUE(fx.remote->ReadBlock(2, out.data()).ok());
  EXPECT_EQ(out, GoldenBlock(5, 2, 512));
}

TEST(RemoteDeviceTest, BackoffChargesTheSinkOnRedrive) {
  LoopbackFixture fx(16, 512);
  double charged = 0.0;
  fx.remote->set_backoff_fn([&charged](double ms) { charged += ms; });
  ASSERT_TRUE(FillGolden(*fx.remote, 5).ok());

  fx.endpoint.Crash();
  fx.endpoint.Restart();
  Bytes out(512);
  ASSERT_TRUE(fx.remote->ReadBlock(0, out.data()).ok());
  // One re-drive, first backoff step of the policy: 1.0 ms.
  EXPECT_DOUBLE_EQ(charged, 1.0);
}

// ---- Transport fault kinds -----------------------------------------------

TEST(TransportFaultTest, DelayRpcChargesTheLatencySink) {
  FaultPlan plan;
  FaultSpec spec;
  spec.kind = FaultSpec::Kind::kDelayRpc;
  spec.latency_ms = 7.5;
  spec.every_nth = 2;
  plan.faults.push_back(spec);
  LoopbackFixture fx(16, 512, /*server_faults=*/{},
                     RemoteDeviceOptions{}, std::move(plan));
  double charged = 0.0;
  fx.controller.set_latency_fn([&charged](double ms) { charged += ms; });

  // Frame 0 is the construction-time Hello (already counted before the
  // sink was installed). Frames 1..4: every second client frame pays.
  Bytes out(512);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(fx.remote->ReadBlock(0, out.data()).ok());
  }
  EXPECT_DOUBLE_EQ(charged, 2 * 7.5);
  EXPECT_EQ(fx.controller.stats().delayed_frames, 3u);  // hello + 2 reads
}

TEST(TransportFaultTest, DropConnectionRedrivesTransparently) {
  FaultPlan plan;
  FaultSpec spec;
  spec.kind = FaultSpec::Kind::kDropConnection;
  spec.start_after = 3;  // hello, write, read pass; the next frame drops
  spec.max_fires = 1;
  plan.faults.push_back(spec);
  LoopbackFixture fx(16, 512, /*server_faults=*/{},
                     RemoteDeviceOptions{}, std::move(plan));

  const Bytes image = GoldenBlock(8, 4, 512);
  ASSERT_TRUE(fx.remote->WriteBlock(4, image.data()).ok());
  Bytes out(512);
  ASSERT_TRUE(fx.remote->ReadBlock(4, out.data()).ok());
  // This op's frame hits the drop: its connection dies, the client
  // reconnects and re-drives, the caller never notices.
  ASSERT_TRUE(fx.remote->ReadBlock(4, out.data()).ok());
  EXPECT_EQ(out, image);
  EXPECT_EQ(fx.controller.stats().dropped_connections, 1u);
  EXPECT_EQ(fx.remote->stats().reconnects, 1u);
}

TEST(TransportFaultTest, ScriptedPartitionFailsFastUntilHealed) {
  FaultPlan plan;
  FaultSpec spec;
  spec.kind = FaultSpec::Kind::kPartition;
  spec.start_after = 2;  // hello + one op, then the link black-holes
  spec.max_fires = 1;    // one partition event; the latch does the rest
  plan.faults.push_back(spec);
  LoopbackFixture fx(16, 512, /*server_faults=*/{},
                     RemoteDeviceOptions{}, std::move(plan));

  Bytes out(512);
  ASSERT_TRUE(fx.remote->ReadBlock(0, out.data()).ok());
  // The partition latches: every attempt (including reconnect Hellos)
  // fails fast with kDeadlineExceeded — no wall-clock timeout is spent
  // simulating a black-holed link.
  EXPECT_EQ(fx.remote->ReadBlock(0, out.data()).code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(fx.controller.partitioned());
  EXPECT_GT(fx.remote->stats().timeouts, 0u);

  // Healing restores service; the volume state was never at risk.
  fx.controller.Heal();
  ASSERT_TRUE(FillGolden(*fx.remote, 21).ok());
  EXPECT_TRUE(steghide::testing::DeviceMatchesGolden(fx.mem, 21));
}

TEST(TransportFaultTest, FrameLogIsContentIndependent) {
  // Twin clients, identical op pattern, different block contents: the
  // delivered-frame logs — direction, type, and byte length of every
  // frame both ways, Hello included — must be identical. This is the
  // per-replica trace-content-independence distinguisher extended to
  // the RPC stream.
  auto run = [](uint8_t fill, std::vector<FrameRecord>* log) {
    MemBlockDevice mem(16, 512);
    TransportFaultController controller;  // outlives the endpoint's wrappers
    LoopbackEndpoint endpoint(&mem);
    controller.set_frame_log(log);
    endpoint.set_transport_wrapper(
        [&controller](std::unique_ptr<Transport> t) {
          return controller.Wrap(std::move(t),
                                 TransportFaultController::Side::kServer);
        });
    auto created = RemoteBlockDevice::Create(
        [&]() -> Result<std::unique_ptr<Transport>> {
          Result<std::unique_ptr<Transport>> conn = endpoint.Connect();
          if (!conn.ok()) return conn.status();
          return controller.Wrap(std::move(conn).value(),
                                 TransportFaultController::Side::kClient);
        });
    ASSERT_TRUE(created.ok());
    std::unique_ptr<RemoteBlockDevice> remote = std::move(created).value();

    const Bytes image(512, fill);
    ASSERT_TRUE(remote->WriteBlock(3, image.data()).ok());
    const std::vector<uint64_t> ids = {1, 2, 7};
    Bytes batch(3 * 512, static_cast<uint8_t>(fill ^ 0x5a));
    ASSERT_TRUE(remote->WriteBlocks(ids, batch.data()).ok());
    Bytes out(3 * 512);
    ASSERT_TRUE(remote->ReadBlocks(ids, out.data()).ok());
    ASSERT_TRUE(remote->Flush().ok());
  };

  std::vector<FrameRecord> log_a, log_b;
  run(0x11, &log_a);
  run(0xee, &log_b);
  ASSERT_FALSE(log_a.empty());
  EXPECT_EQ(log_a, log_b);

  // Spot-check the shape: strict request/reply alternation starting
  // with the Hello handshake.
  ASSERT_GE(log_a.size(), 2u);
  EXPECT_EQ(log_a[0].dir, 0u);
  EXPECT_EQ(log_a[0].type, static_cast<uint8_t>(FrameType::kHello));
  EXPECT_EQ(log_a[1].dir, 1u);
  EXPECT_EQ(log_a[1].type, static_cast<uint8_t>(FrameType::kHelloReply));
  for (size_t i = 0; i < log_a.size(); ++i) {
    EXPECT_EQ(log_a[i].dir, i % 2) << "frame " << i;
  }
}

}  // namespace
}  // namespace steghide::storage::remote
