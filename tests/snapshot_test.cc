#include "storage/snapshot.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "analysis/snapshot_diff.h"
#include "testing/device_factory.h"
#include "testing/golden.h"
#include "testing/rng.h"

namespace steghide::storage {
namespace {

using steghide::testing::FillGolden;
using steghide::testing::GoldenBlock;
using steghide::testing::MakeMemDevice;
using steghide::testing::MakeTestRng;

TEST(SnapshotTest, CaptureCoversWholeDevice) {
  auto dev = MakeMemDevice(24, 512);
  auto snap = Snapshot::Capture(*dev);
  ASSERT_TRUE(snap.ok());
  EXPECT_EQ(snap->num_blocks(), 24u);
}

TEST(SnapshotTest, FingerprintIsContentDeterministic) {
  const Bytes a = GoldenBlock(1, 0, 512);
  const Bytes b = GoldenBlock(1, 1, 512);
  EXPECT_EQ(Snapshot::FingerprintBlock(a.data(), a.size()),
            Snapshot::FingerprintBlock(a.data(), a.size()));
  EXPECT_NE(Snapshot::FingerprintBlock(a.data(), a.size()),
            Snapshot::FingerprintBlock(b.data(), b.size()));
}

TEST(SnapshotTest, FingerprintSensitiveToSingleTrailingBitFlip) {
  Bytes a(4096, 0);
  Bytes b = a;
  b[4095] ^= 1;
  EXPECT_NE(Snapshot::FingerprintBlock(a.data(), a.size()),
            Snapshot::FingerprintBlock(b.data(), b.size()));
}

TEST(SnapshotTest, FingerprintCollisionsRareProperty) {
  // 10k random 64-byte blocks: no collisions expected at 64-bit output.
  Rng rng = MakeTestRng();
  std::set<uint64_t> fps;
  Bytes block(64);
  for (int i = 0; i < 10000; ++i) {
    rng.Fill(block.data(), block.size());
    fps.insert(Snapshot::FingerprintBlock(block.data(), block.size()));
  }
  EXPECT_EQ(fps.size(), 10000u);
}

TEST(SnapshotTest, IdenticalContentGivesIdenticalSnapshots) {
  auto dev1 = MakeMemDevice(16, 512);
  auto dev2 = MakeMemDevice(16, 512);
  ASSERT_TRUE(FillGolden(*dev1, /*seed=*/42).ok());
  ASSERT_TRUE(FillGolden(*dev2, /*seed=*/42).ok());
  auto s1 = Snapshot::Capture(*dev1);
  auto s2 = Snapshot::Capture(*dev2);
  ASSERT_TRUE(s1.ok());
  ASSERT_TRUE(s2.ok());
  for (uint64_t b = 0; b < s1->num_blocks(); ++b) {
    EXPECT_EQ(s1->fingerprint(b), s2->fingerprint(b)) << "block " << b;
  }
}

TEST(SnapshotTest, DiffRoundTripRecoversExactlyTheTouchedBlocks) {
  auto dev = MakeMemDevice(64, 512);
  ASSERT_TRUE(FillGolden(*dev, /*seed=*/7).ok());
  auto before = Snapshot::Capture(*dev);
  ASSERT_TRUE(before.ok());

  // Mutate a known, scattered set of blocks.
  const std::set<uint64_t> touched = {0, 5, 6, 31, 63};
  for (uint64_t b : touched) {
    ASSERT_TRUE(dev->WriteBlock(b, GoldenBlock(/*seed=*/99, b, 512)).ok());
  }
  auto after = Snapshot::Capture(*dev);
  ASSERT_TRUE(after.ok());

  auto diff = analysis::DiffSnapshots(*before, *after);
  ASSERT_TRUE(diff.ok());
  EXPECT_EQ(std::set<uint64_t>(diff->begin(), diff->end()), touched);
  EXPECT_TRUE(std::is_sorted(diff->begin(), diff->end()));
}

TEST(SnapshotTest, RewritingIdenticalContentIsInvisible) {
  auto dev = MakeMemDevice(16, 512);
  ASSERT_TRUE(FillGolden(*dev, /*seed=*/3).ok());
  auto before = Snapshot::Capture(*dev);
  ASSERT_TRUE(before.ok());
  // An in-place rewrite of the same bytes must not register as a change:
  // the attacker fingerprints content, not I/O.
  ASSERT_TRUE(dev->WriteBlock(4, GoldenBlock(/*seed=*/3, 4, 512)).ok());
  auto after = Snapshot::Capture(*dev);
  ASSERT_TRUE(after.ok());
  auto diff = analysis::DiffSnapshots(*before, *after);
  ASSERT_TRUE(diff.ok());
  EXPECT_TRUE(diff->empty());
}

TEST(SnapshotTest, DiffRejectsMismatchedGeometry) {
  auto small = MakeMemDevice(8, 512);
  auto large = MakeMemDevice(9, 512);
  auto s1 = Snapshot::Capture(*small);
  auto s2 = Snapshot::Capture(*large);
  ASSERT_TRUE(s1.ok());
  ASSERT_TRUE(s2.ok());
  EXPECT_FALSE(analysis::DiffSnapshots(*s1, *s2).ok());
}

TEST(SnapshotTest, RandomisedDiffRoundTrip) {
  auto dev = MakeMemDevice(128, 512);
  ASSERT_TRUE(FillGolden(*dev, /*seed=*/11).ok());
  auto before = Snapshot::Capture(*dev);
  ASSERT_TRUE(before.ok());

  Rng rng = MakeTestRng();
  std::set<uint64_t> touched;
  for (int i = 0; i < 40; ++i) {
    const uint64_t b = rng.Uniform(dev->num_blocks());
    Bytes content = GoldenBlock(/*seed=*/1000 + i, b, 512);
    ASSERT_TRUE(dev->WriteBlock(b, content).ok());
    touched.insert(b);
  }
  auto after = Snapshot::Capture(*dev);
  ASSERT_TRUE(after.ok());
  auto diff = analysis::DiffSnapshots(*before, *after);
  ASSERT_TRUE(diff.ok());
  EXPECT_EQ(std::set<uint64_t>(diff->begin(), diff->end()), touched);
}

}  // namespace
}  // namespace steghide::storage
