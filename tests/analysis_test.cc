#include <gtest/gtest.h>

#include <cmath>

#include "analysis/chi_square.h"
#include "analysis/distinguisher.h"
#include "analysis/ks_test.h"
#include "analysis/snapshot_diff.h"
#include "storage/mem_block_device.h"
#include "testing/rng.h"
#include "util/random.h"

namespace steghide::analysis {
namespace {

// ---- chi-square machinery -------------------------------------------------

TEST(GammaTest, KnownValues) {
  // Q(1, x) = exp(-x).
  EXPECT_NEAR(RegularizedGammaQ(1.0, 2.0), std::exp(-2.0), 1e-9);
  // Q(0.5, x) = erfc(sqrt(x)).
  EXPECT_NEAR(RegularizedGammaQ(0.5, 1.0), std::erfc(1.0), 1e-9);
  EXPECT_NEAR(RegularizedGammaQ(3.0, 0.0), 1.0, 1e-12);
}

TEST(ChiSquareTest, SurvivalKnownValues) {
  // Chi-square with 1 dof at 3.841 → p ≈ 0.05.
  EXPECT_NEAR(ChiSquareSurvival(3.841, 1), 0.05, 0.001);
  // 10 dof at 18.307 → p ≈ 0.05.
  EXPECT_NEAR(ChiSquareSurvival(18.307, 10), 0.05, 0.001);
}

TEST(ChiSquareTest, UniformCountsPass) {
  Rng rng = testing::MakeTestRng();
  std::vector<uint64_t> counts(32, 0);
  for (int i = 0; i < 32000; ++i) counts[rng.Uniform(32)]++;
  const auto r = ChiSquareUniformTest(counts);
  EXPECT_FALSE(r.RejectAt(0.01)) << "p=" << r.p_value;
}

TEST(ChiSquareTest, SkewedCountsRejected) {
  std::vector<uint64_t> counts(32, 100);
  counts[5] = 400;  // hot bin
  const auto r = ChiSquareUniformTest(counts);
  EXPECT_TRUE(r.RejectAt(0.01));
  EXPECT_LT(r.p_value, 1e-6);
}

TEST(ChiSquareTest, GoodnessOfFitAgainstNonUniformExpectation) {
  // Observed matching a 2:1 expectation passes; against uniform it fails.
  std::vector<uint64_t> counts = {2000, 1000, 2000, 1000};
  const auto fit =
      ChiSquareGoodnessOfFit(counts, {2.0, 1.0, 2.0, 1.0});
  EXPECT_FALSE(fit.RejectAt(0.01));
  const auto uniform = ChiSquareUniformTest(counts);
  EXPECT_TRUE(uniform.RejectAt(0.01));
}

TEST(ChiSquareTest, TwoSampleSameDistributionPasses) {
  Rng rng = testing::MakeTestRng();
  std::vector<uint64_t> a(16, 0), b(16, 0);
  for (int i = 0; i < 8000; ++i) a[rng.Uniform(16)]++;
  for (int i = 0; i < 12000; ++i) b[rng.Uniform(16)]++;  // unequal sizes
  const auto r = ChiSquareTwoSampleTest(a, b);
  EXPECT_FALSE(r.RejectAt(0.01)) << "p=" << r.p_value;
}

TEST(ChiSquareTest, TwoSampleDifferentDistributionsRejected) {
  Rng rng = testing::MakeTestRng();
  std::vector<uint64_t> a(16, 0), b(16, 0);
  for (int i = 0; i < 8000; ++i) a[rng.Uniform(16)]++;
  for (int i = 0; i < 8000; ++i) b[rng.Uniform(8)]++;  // half the range
  const auto r = ChiSquareTwoSampleTest(a, b);
  EXPECT_TRUE(r.RejectAt(0.01));
}

TEST(ChiSquareTest, DegenerateInputsSafe) {
  EXPECT_FALSE(ChiSquareUniformTest({}).RejectAt(0.01));
  EXPECT_FALSE(ChiSquareUniformTest({5}).RejectAt(0.01));
  EXPECT_FALSE(ChiSquareTwoSampleTest({1, 2}, {1}).RejectAt(0.01));
  EXPECT_FALSE(ChiSquareTwoSampleTest({0, 0}, {0, 0}).RejectAt(0.01));
}

// ---- KS test -----------------------------------------------------------------

TEST(KsTest, KolmogorovSurvivalKnownValues) {
  EXPECT_NEAR(KolmogorovSurvival(1.36), 0.05, 0.005);
  EXPECT_NEAR(KolmogorovSurvival(1.63), 0.01, 0.003);
  EXPECT_DOUBLE_EQ(KolmogorovSurvival(0.0), 1.0);
}

TEST(KsTest, SameDistributionPasses) {
  Rng rng = testing::MakeTestRng();
  std::vector<double> a, b;
  for (int i = 0; i < 2000; ++i) a.push_back(rng.NextDouble());
  for (int i = 0; i < 2000; ++i) b.push_back(rng.NextDouble());
  EXPECT_FALSE(KsTwoSampleTest(a, b).RejectAt(0.01));
}

TEST(KsTest, ShiftedDistributionRejected) {
  Rng rng = testing::MakeTestRng();
  std::vector<double> a, b;
  for (int i = 0; i < 2000; ++i) a.push_back(rng.NextDouble());
  for (int i = 0; i < 2000; ++i) b.push_back(0.1 + 0.9 * rng.NextDouble());
  EXPECT_TRUE(KsTwoSampleTest(a, b).RejectAt(0.01));
}

TEST(KsTest, UniformTest) {
  Rng rng = testing::MakeTestRng();
  std::vector<double> uniform, squared;
  for (int i = 0; i < 3000; ++i) {
    const double u = rng.NextDouble();
    uniform.push_back(u);
    squared.push_back(u * u);
  }
  EXPECT_FALSE(KsUniformTest(uniform).RejectAt(0.01));
  EXPECT_TRUE(KsUniformTest(squared).RejectAt(0.01));
}

// ---- snapshot diff / observer ---------------------------------------------------

TEST(SnapshotDiffTest, FindsExactChanges) {
  storage::MemBlockDevice dev(64, 512);
  auto s1 = storage::Snapshot::Capture(dev);
  ASSERT_TRUE(s1.ok());
  Bytes data(512, 1);
  ASSERT_TRUE(dev.WriteBlock(10, data.data()).ok());
  ASSERT_TRUE(dev.WriteBlock(20, data.data()).ok());
  auto s2 = storage::Snapshot::Capture(dev);
  ASSERT_TRUE(s2.ok());
  const auto diff = DiffSnapshots(*s1, *s2);
  ASSERT_TRUE(diff.ok());
  EXPECT_EQ(*diff, (std::vector<uint64_t>{10, 20}));
}

TEST(SnapshotDiffTest, MismatchedSizesRejected) {
  storage::MemBlockDevice a(4, 512), b(8, 512);
  auto sa = storage::Snapshot::Capture(a);
  auto sb = storage::Snapshot::Capture(b);
  EXPECT_FALSE(DiffSnapshots(*sa, *sb).ok());
}

TEST(ObserverTest, AccumulatesAcrossCampaign) {
  storage::MemBlockDevice dev(32, 512);
  UpdateAnalysisObserver observer(32);
  Bytes data(512, 0);
  auto prev = storage::Snapshot::Capture(dev);
  ASSERT_TRUE(prev.ok());
  for (int round = 1; round <= 3; ++round) {
    data[0] = static_cast<uint8_t>(round);
    ASSERT_TRUE(dev.WriteBlock(7, data.data()).ok());
    auto next = storage::Snapshot::Capture(dev);
    ASSERT_TRUE(next.ok());
    ASSERT_TRUE(observer.ObserveDiff(*prev, *next).ok());
    prev = std::move(next);
  }
  EXPECT_EQ(observer.total_updates(), 3u);
  EXPECT_EQ(observer.counts()[7], 3u);
  EXPECT_EQ(observer.counts()[8], 0u);
}

TEST(BinCountsTest, PartitionsEvenly) {
  std::vector<uint64_t> counts(100, 1);
  const auto bins = BinCounts(counts, 10);
  ASSERT_EQ(bins.size(), 10u);
  for (uint64_t b : bins) EXPECT_EQ(b, 10u);
}

TEST(BinCountsTest, HandlesUnevenSizes) {
  std::vector<uint64_t> counts(10, 1);
  const auto bins = BinCounts(counts, 3);
  ASSERT_EQ(bins.size(), 3u);
  EXPECT_EQ(bins[0] + bins[1] + bins[2], 10u);
}

// ---- distinguisher -----------------------------------------------------------------

TEST(DistinguisherTest, UniformVsUniformIndistinguishable) {
  Rng rng = testing::MakeTestRng();
  std::vector<uint64_t> suspect(1024, 0), reference(1024, 0);
  for (int i = 0; i < 20000; ++i) suspect[rng.Uniform(1024)]++;
  for (int i = 0; i < 20000; ++i) reference[rng.Uniform(1024)]++;
  const auto verdict =
      DistinguishUpdateCounts(suspect, reference, DistinguisherOptions{});
  EXPECT_FALSE(verdict.distinguished) << verdict.ToString();
}

TEST(DistinguisherTest, HotSpotDetected) {
  Rng rng = testing::MakeTestRng();
  std::vector<uint64_t> suspect(1024, 0), reference(1024, 0);
  for (int i = 0; i < 20000; ++i) reference[rng.Uniform(1024)]++;
  // Suspect: a table being updated in place — a hot 16-block region.
  for (int i = 0; i < 18000; ++i) suspect[rng.Uniform(1024)]++;
  for (int i = 0; i < 2000; ++i) suspect[512 + rng.Uniform(16)]++;
  const auto verdict =
      DistinguishUpdateCounts(suspect, reference, DistinguisherOptions{});
  EXPECT_TRUE(verdict.distinguished) << verdict.ToString();
}

TEST(DistinguisherTest, TraceComparison) {
  using storage::TraceEvent;
  Rng rng = testing::MakeTestRng();
  storage::IoTrace dummy_only, with_data;
  for (int i = 0; i < 5000; ++i) {
    dummy_only.push_back({TraceEvent::Kind::kWrite, rng.Uniform(256)});
    with_data.push_back({TraceEvent::Kind::kWrite, rng.Uniform(256)});
  }
  // Hidden activity: repeated writes to one block.
  for (int i = 0; i < 500; ++i) {
    with_data.push_back({TraceEvent::Kind::kWrite, 42});
  }
  const auto caught =
      DistinguishTraces(with_data, dummy_only, 256, DistinguisherOptions{});
  EXPECT_TRUE(caught.distinguished);

  storage::IoTrace clean;
  for (int i = 0; i < 5500; ++i) {
    clean.push_back({TraceEvent::Kind::kWrite, rng.Uniform(256)});
  }
  const auto missed =
      DistinguishTraces(clean, dummy_only, 256, DistinguisherOptions{});
  EXPECT_FALSE(missed.distinguished) << missed.ToString();
}

TEST(DistinguisherTest, CountHelpers) {
  using storage::TraceEvent;
  storage::IoTrace trace = {{TraceEvent::Kind::kWrite, 1},
                            {TraceEvent::Kind::kRead, 1},
                            {TraceEvent::Kind::kWrite, 3}};
  const auto writes = WriteCountsByBlock(trace, 4);
  const auto reads = ReadCountsByBlock(trace, 4);
  EXPECT_EQ(writes, (std::vector<uint64_t>{0, 1, 0, 1}));
  EXPECT_EQ(reads, (std::vector<uint64_t>{0, 1, 0, 0}));
}

}  // namespace
}  // namespace steghide::analysis
